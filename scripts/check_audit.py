#!/usr/bin/env python3
"""Structural validator for tempest-audit JSON output.

Used by CI (e2e-asan) after auditing the instrumented example binary:

    check_audit.py /tmp/e2e.audit.json

Checks go beyond json.load: required keys, a non-empty instrumented set
with a consistent instrumented/uninstrumented split, call-graph edge
counts that add up, a descending overhead ranking whose shares sum to
~1, and well-formed coverage gap entries. Exit 0 when clean, 1 with a
message per violation otherwise.
"""
import json
import sys


def fail(errors):
    for e in errors:
        print(f"check_audit: {e}", file=sys.stderr)
    return 1


def check_audit(doc, expect_instrumented):
    errors = []
    for key in ("binary", "elf_type", "hooks_linked", "functions",
                "instrumented", "uninstrumented", "call_graph", "coverage",
                "instrumented_functions"):
        if key not in doc:
            errors.append(f"missing top-level key {key!r}")
    if errors:
        return errors

    if doc["elf_type"] not in ("rel", "exec", "dyn", "other"):
        errors.append(f"unexpected elf_type {doc['elf_type']!r}")
    if doc["instrumented"] + doc["uninstrumented"] != doc["functions"]:
        errors.append(
            f"instrumented {doc['instrumented']} + uninstrumented "
            f"{doc['uninstrumented']} != functions {doc['functions']}")
    if expect_instrumented:
        if not doc["hooks_linked"]:
            errors.append("hooks_linked is false on an instrumented binary")
        if doc["instrumented"] == 0:
            errors.append("no instrumented functions found")

    graph = doc["call_graph"]
    for key in ("edges", "reloc_edges", "scan_edges"):
        if key not in graph:
            errors.append(f"call_graph missing {key!r}")
    if not errors and graph["reloc_edges"] + graph["scan_edges"] \
            != graph["edges"]:
        errors.append("call_graph edge counts do not add up")
    if expect_instrumented and graph.get("edges", 0) == 0:
        errors.append("call graph is empty")

    coverage = doc["coverage"]
    for key in ("stripped_hook_sites", "silent_subtree_functions", "gaps"):
        if key not in coverage:
            errors.append(f"coverage missing {key!r}")
    for i, gap in enumerate(coverage.get("gaps", [])):
        for key in ("name", "addr", "reachable_from_instrumented"):
            if key not in gap:
                errors.append(f"coverage.gaps[{i}] missing {key!r}")
        addr = gap.get("addr", "")
        if not (isinstance(addr, str) and addr.startswith("0x")):
            errors.append(f"coverage.gaps[{i}].addr {addr!r} is not hex")

    n_ranked = 0
    if "overhead" in doc:
        overhead = doc["overhead"]
        for key in ("from_trace", "total_probe_events",
                    "unattributed_events", "ranked"):
            if key not in overhead:
                errors.append(f"overhead missing {key!r}")
        prev = None
        share_sum = 0.0
        for i, entry in enumerate(overhead.get("ranked", [])):
            for key in ("name", "addr", "calls", "predicted_probe_events",
                        "share", "static_callers", "static_callees"):
                if key not in entry:
                    errors.append(f"overhead.ranked[{i}] missing {key!r}")
            probes = entry.get("predicted_probe_events", 0)
            if entry.get("calls", 0) * 2 != probes:
                errors.append(
                    f"overhead.ranked[{i}]: {entry.get('calls')} calls but "
                    f"{probes} predicted probes (expected 2 per call)")
            if prev is not None and probes > prev:
                errors.append(
                    f"overhead.ranked[{i}] not in descending probe order")
            prev = probes
            share_sum += entry.get("share", 0.0)
            n_ranked += 1
        # The list may be capped, so shares can sum below 1 — never above.
        if share_sum > 1.0 + 1e-6:
            errors.append(f"overhead shares sum to {share_sum:.4f} > 1")

    for i, fn in enumerate(doc["instrumented_functions"]):
        for key in ("name", "addr", "instrumented"):
            if key not in fn:
                errors.append(f"instrumented_functions[{i}] missing {key!r}")
        if not fn.get("instrumented", False):
            errors.append(
                f"instrumented_functions[{i}] ({fn.get('name')!r}) "
                "is not marked instrumented")

    print(f"audit: {doc['functions']} functions "
          f"({doc['instrumented']} instrumented), "
          f"{graph.get('edges', 0)} call-graph edges, "
          f"{n_ranked} ranked by probe overhead")
    return errors


def main(argv):
    args = [a for a in argv[1:] if a != "--allow-uninstrumented"]
    if len(args) != 1:
        print("usage: check_audit.py [--allow-uninstrumented] FILE",
              file=sys.stderr)
        return 2
    with open(args[0]) as f:
        doc = json.load(f)
    errors = check_audit(doc, "--allow-uninstrumented" not in argv)
    return fail(errors) if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
