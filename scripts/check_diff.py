#!/usr/bin/env python3
"""Structural validator for tempest-diff output.

Used by the CI differential-profiling leg after recording a baseline
and a seeded-regression run of the instrumented demo:

    check_diff.py regression DIFF.json FUNCTION [--min-confidence 0.95]
    check_diff.py self DIFF.json
    check_diff.py trend TREND.jsonl --runs N

Modes:

  * regression — FUNCTION must be ranked FIRST among the significant
    regressions, at or above the confidence threshold. Catching the
    perturbed function somewhere in the list is not enough: the whole
    point of Welch gating is that the leaf culprit outranks inclusive
    ancestors and noise. FUNCTION matches as a substring of the ranked
    key, so `matrix_mult_pass` matches the full demangled signature.
  * self — a run diffed against itself must produce zero significant
    regressions and zero significant improvements (identical numbers
    carry no evidence of change).
  * trend — the JSONL series must open with the schema-versioned
    header, declare the expected run count, and contain exactly one
    entry per run for every function that appears in any run (a
    function surviving filters in every run yields an unbroken series).

Exit 0 when clean, 1 with a message per violation otherwise.
"""
import argparse
import json
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def check_regression(args):
    doc = load_json(args.diff_json)
    errors = []
    if doc.get("schema") != "tempest-diff":
        errors.append(f"schema is {doc.get('schema')!r}, not 'tempest-diff'")
    regressions = doc.get("regressions", [])
    if not regressions:
        errors.append("no significant regressions found at all")
    else:
        top = regressions[0]
        if args.function not in top.get("function", ""):
            ranked = [r.get("function") for r in regressions[:5]]
            errors.append(
                f"expected {args.function!r} ranked first, got {ranked}")
        if top.get("confidence", 0.0) < args.min_confidence:
            errors.append(
                f"top regression confidence {top.get('confidence')} below "
                f"{args.min_confidence}")
        if not top.get("significant", False):
            errors.append("top regression not marked significant")
        if not top.get("time_significant", True):
            errors.append("top regression ranked on sensor evidence only, "
                          "not rankable time evidence")
        if top.get("delta_time_s", 0.0) <= 0.0:
            errors.append(
                f"top regression delta_time_s {top.get('delta_time_s')} "
                "is not a slowdown")
    return errors


def check_self(args):
    doc = load_json(args.diff_json)
    errors = []
    if doc.get("schema") != "tempest-diff":
        errors.append(f"schema is {doc.get('schema')!r}, not 'tempest-diff'")
    for kind in ("regressions", "improvements"):
        entries = doc.get(kind, [])
        if entries:
            names = [e.get("function") for e in entries[:5]]
            errors.append(
                f"self-diff produced {len(entries)} significant {kind}: "
                f"{names}")
    if not doc.get("insignificant"):
        errors.append("self-diff reported no functions at all "
                      "(did both loads succeed?)")
    return errors


def check_trend(args):
    errors = []
    with open(args.trend_jsonl, "r", encoding="utf-8") as fh:
        lines = [ln for ln in (l.strip() for l in fh) if ln]
    if not lines:
        return ["trend file is empty"]
    header = json.loads(lines[0])
    if header.get("schema") != "tempest-diff-trend":
        errors.append(
            f"header schema is {header.get('schema')!r}, "
            "not 'tempest-diff-trend'")
    if header.get("schema_version") != 1:
        errors.append(
            f"header schema_version is {header.get('schema_version')!r}")
    if header.get("runs") != args.runs:
        errors.append(
            f"header declares {header.get('runs')} runs, expected {args.runs}")

    per_run = {}  # run -> {function: count}
    for i, line in enumerate(lines[1:], start=2):
        entry = json.loads(line)
        for key in ("run", "function", "calls", "total_time_s"):
            if key not in entry:
                errors.append(f"line {i}: missing {key!r}")
        run = entry.get("run")
        fn = entry.get("function")
        per_run.setdefault(run, {})
        per_run[run][fn] = per_run[run].get(fn, 0) + 1

    if sorted(per_run) != list(range(args.runs)):
        errors.append(
            f"entries cover runs {sorted(per_run)}, expected 0..{args.runs - 1}")
    else:
        all_fns = set()
        for fns in per_run.values():
            all_fns.update(fns)
        for run in range(args.runs):
            for fn in sorted(all_fns):
                n = per_run[run].get(fn, 0)
                if n != 1:
                    errors.append(
                        f"function {fn!r} has {n} entries in run {run}, "
                        "expected exactly 1 per run")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    p_reg = sub.add_parser("regression")
    p_reg.add_argument("diff_json")
    p_reg.add_argument("function")
    p_reg.add_argument("--min-confidence", type=float, default=0.95)
    p_reg.set_defaults(func=check_regression)

    p_self = sub.add_parser("self")
    p_self.add_argument("diff_json")
    p_self.set_defaults(func=check_self)

    p_trend = sub.add_parser("trend")
    p_trend.add_argument("trend_jsonl")
    p_trend.add_argument("--runs", type=int, required=True)
    p_trend.set_defaults(func=check_trend)

    args = parser.parse_args()
    errors = args.func(args)
    if errors:
        for err in errors:
            print(f"check_diff [{args.mode}]: {err}", file=sys.stderr)
        return 1
    print(f"check_diff [{args.mode}]: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
