#!/usr/bin/env python3
"""Structural + equivalence validator for the tempest-collectd query plane.

Used by CI (e2e-asan) after streaming a recording session into a live
collector daemon:

    check_collectd.py http://127.0.0.1:PORT /tmp/cluster4.json

The second argument is `tempest_parse --format json` output for the
SAME trace the session also wrote locally (TEMPEST_OUT). Checks go
beyond json.load:

  * /healthz reports ok and no still-live sessions,
  * /sessions shows exactly the expected folded sessions, with events,
    heartbeats and a monotone heartbeat seq actually observed,
  * /profile matches the offline profile folded by function name:
    call counts exactly, inclusive times to 1% (the collector folds in
    the raw clock domain; per-rank alignment only rescales interval
    lengths by drift, well under that),
  * /runstats satisfies the conservation invariant server-side and
    matches the offline RUNSTATS trailer counter-for-counter,
  * /metrics is a flat heartbeat-schema snapshot whose collector
    counters are consistent (frames >= events frames, one fold per
    session, zero protocol errors).

Exit 0 when clean, 1 with a message per violation otherwise.
"""
import json
import sys
import urllib.request


def fetch(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        if resp.status != 200:
            raise RuntimeError(f"GET {path} -> HTTP {resp.status}")
        return json.loads(resp.read().decode())


def fold_offline(doc):
    """Fold tempest_parse output by function name — mirrors the
    collector's fold_profile (calls and inclusive time sum per name)."""
    fns = {}
    for node in doc["nodes"]:
        for fn in node["functions"]:
            cur = fns.setdefault(fn["name"], {"calls": 0, "total_time_s": 0.0})
            cur["calls"] += fn["calls"]
            cur["total_time_s"] += fn["total_time_s"]
    return fns


def check(base, offline, expect_sessions):
    errors = []

    health = fetch(base, "/healthz")
    if health.get("status") != "ok":
        errors.append(f"/healthz status {health.get('status')!r}, want 'ok'")
    if health.get("sessions_active") != 0:
        errors.append(
            f"/healthz sessions_active {health.get('sessions_active')}, "
            "want 0 after the recording ended")

    sessions = fetch(base, "/sessions").get("sessions", [])
    folded = [s for s in sessions if s.get("state") == "folded"]
    if len(folded) != expect_sessions:
        errors.append(
            f"/sessions has {len(folded)} folded sessions, "
            f"want {expect_sessions}: {sessions}")
    for s in folded:
        if s.get("events", 0) <= 0:
            errors.append(f"folded session {s.get('id')} streamed no events")
        if s.get("heartbeats", 0) < 1:
            errors.append(f"folded session {s.get('id')} sent no heartbeats")
        if s.get("last_seq", 0) < s.get("heartbeats", 0):
            errors.append(
                f"session {s.get('id')}: last_seq {s.get('last_seq')} < "
                f"heartbeats {s.get('heartbeats')} (seq not monotone?)")
        if s.get("heartbeat_restarts", 0) != 0:
            errors.append(
                f"session {s.get('id')} reported heartbeat restarts in a "
                "single clean run")

    profile = fetch(base, "/profile?top=1000")
    if profile.get("sessions_folded") != expect_sessions:
        errors.append(
            f"/profile sessions_folded {profile.get('sessions_folded')}, "
            f"want {expect_sessions}")
    fleet = {f["name"]: f for f in profile.get("functions", [])}
    expected = fold_offline(offline)
    if set(fleet) != set(expected):
        errors.append(
            f"/profile function set differs from offline parse: "
            f"only-fleet={sorted(set(fleet) - set(expected))} "
            f"only-offline={sorted(set(expected) - set(fleet))}")
    for name, off in expected.items():
        fn = fleet.get(name)
        if fn is None:
            continue
        if fn["calls"] != off["calls"]:
            errors.append(
                f"{name}: fleet calls {fn['calls']} != offline "
                f"{off['calls']}")
        tol = 0.01 * (1.0 + abs(off["total_time_s"]))
        if abs(fn["total_time_s"] - off["total_time_s"]) > tol:
            errors.append(
                f"{name}: fleet time {fn['total_time_s']} vs offline "
                f"{off['total_time_s']} (tol {tol})")
        if fn.get("sessions") != expect_sessions:
            errors.append(
                f"{name}: seen in {fn.get('sessions')} sessions, "
                f"want {expect_sessions}")

    runstats = fetch(base, "/runstats")
    if not runstats.get("present"):
        errors.append("/runstats present=false after a folded session")
    if not runstats.get("conservation_ok"):
        errors.append(f"/runstats conservation violated: {runstats}")
    if runstats.get("sessions_aborted", 0) != 0:
        errors.append(
            f"/runstats sessions_aborted {runstats.get('sessions_aborted')} "
            "in a clean run")
    off_rs = offline.get("run_stats", {})
    for key in ("events_recorded", "events_dropped", "events_suppressed",
                "events_throttled", "events_overwritten", "calls_observed",
                "tempd_samples"):
        if key in off_rs and runstats.get(key) != off_rs[key] * expect_sessions:
            errors.append(
                f"/runstats {key} {runstats.get(key)} != offline "
                f"{off_rs[key]} x {expect_sessions} sessions")

    metrics = fetch(base, "/metrics")
    for key in ("t", "collect_frames", "collect_events",
                "collect_sessions_folded", "collect_protocol_errors"):
        if key not in metrics:
            errors.append(f"/metrics missing {key!r}")
    if not errors:
        if metrics["collect_sessions_folded"] != expect_sessions:
            errors.append(
                f"/metrics collect_sessions_folded "
                f"{metrics['collect_sessions_folded']}, want {expect_sessions}")
        if metrics["collect_protocol_errors"] != 0:
            errors.append(
                f"/metrics collect_protocol_errors "
                f"{metrics['collect_protocol_errors']} in a clean run")
        total_events = sum(s.get("events", 0) for s in folded)
        if metrics["collect_events"] != total_events:
            errors.append(
                f"/metrics collect_events {metrics['collect_events']} != "
                f"sum of session events {total_events}")

    return errors


def main(argv):
    if len(argv) not in (3, 4):
        print(
            "usage: check_collectd.py BASE_URL OFFLINE_JSON [EXPECT_SESSIONS]",
            file=sys.stderr)
        return 2
    base = argv[1].rstrip("/")
    with open(argv[2]) as f:
        offline = json.load(f)
    expect_sessions = int(argv[3]) if len(argv) == 4 else 1
    errors = check(base, offline, expect_sessions)
    for e in errors:
        print(f"check_collectd: {e}", file=sys.stderr)
    if not errors:
        print(f"check_collectd: query plane consistent with offline parse "
              f"({expect_sessions} session(s))")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
