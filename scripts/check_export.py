#!/usr/bin/env python3
"""Structural validator for tempest export output.

Used by CI (e2e-asan) after exporting a recorded trace:

    check_export.py perfetto   /tmp/e2e.perfetto.json
    check_export.py speedscope /tmp/e2e.speedscope.json

Checks go beyond json.load: required keys for each format, balanced
B/E (perfetto) and O/C (speedscope) nesting per thread with name/frame
matching on close, non-decreasing timestamps per track, counter-series
monotonicity, and frame indices in range. Exit 0 when clean, 1 with a
message per violation otherwise.
"""
import json
import sys

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def fail(errors):
    for e in errors:
        print(f"check_export: {e}", file=sys.stderr)
    return 1


def check_perfetto(doc):
    errors = []
    for key in ("displayTimeUnit", "traceEvents", "metadata"):
        if key not in doc:
            errors.append(f"missing top-level key {key!r}")
    if errors:
        return errors
    meta = doc["metadata"]
    for key in ("exporter", "trace_format_version", "clock_correlation",
                "export_stats"):
        if key not in meta:
            errors.append(f"metadata missing {key!r}")
    corr = meta.get("clock_correlation", {})
    if not isinstance(corr.get("ranks"), list) or not corr["ranks"]:
        errors.append("clock_correlation.ranks missing or empty")
    for rank in corr.get("ranks", []):
        for key in ("node_id", "skew_us", "drift_ppm", "residual_us"):
            if key not in rank:
                errors.append(f"rank entry missing {key!r}: {rank}")

    stacks = {}      # (pid, tid) -> [name, ...]
    last_ts = {}     # (pid, tid) -> ts, duration-event order per thread
    counter_ts = {}  # (pid, name) -> ts, counter-series order
    n_duration = n_counter = 0
    for i, ev in enumerate(doc["traceEvents"]):
        ph = ev.get("ph")
        where = f"traceEvents[{i}]"
        if ph is None:
            errors.append(f"{where}: missing ph")
            continue
        if ph == "M":
            continue
        if "ts" not in ev and ph != "M":
            errors.append(f"{where}: missing ts")
            continue
        if ph in ("B", "E"):
            key = (ev.get("pid"), ev.get("tid"))
            if None in key:
                errors.append(f"{where}: {ph} event without pid/tid")
                continue
            if last_ts.get(key, ev["ts"]) > ev["ts"]:
                errors.append(
                    f"{where}: ts {ev['ts']} goes backwards on {key}")
            last_ts[key] = ev["ts"]
            n_duration += 1
            if ph == "B":
                if "name" not in ev:
                    errors.append(f"{where}: B event without name")
                stacks.setdefault(key, []).append(ev.get("name"))
            else:
                stack = stacks.get(key)
                if not stack:
                    errors.append(f"{where}: E with empty stack on {key}")
                    continue
                opened = stack.pop()
                if "name" in ev and ev["name"] != opened:
                    errors.append(
                        f"{where}: E name {ev['name']!r} closes {opened!r}")
        elif ph == "C":
            key = (ev.get("pid"), ev.get("name"))
            if None in key:
                errors.append(f"{where}: C event without pid/name")
                continue
            if counter_ts.get(key, ev["ts"]) > ev["ts"]:
                errors.append(
                    f"{where}: counter {key} ts {ev['ts']} not monotonic")
            counter_ts[key] = ev["ts"]
            if "celsius" not in ev.get("args", {}):
                errors.append(f"{where}: counter without args.celsius")
            n_counter += 1
        elif ph == "i":
            if "name" not in ev:
                errors.append(f"{where}: instant without name")
        else:
            errors.append(f"{where}: unexpected ph {ph!r}")
    for key, stack in stacks.items():
        if stack:
            errors.append(f"unclosed B events on {key}: {stack}")
    if n_duration == 0:
        errors.append("no duration events exported")
    print(f"perfetto: {n_duration} duration events balanced, "
          f"{n_counter} counter samples monotonic, "
          f"{len(corr.get('ranks', []))} rank clock(s)")
    return errors


def check_speedscope(doc):
    errors = []
    if doc.get("$schema") != SPEEDSCOPE_SCHEMA:
        errors.append(f"$schema is {doc.get('$schema')!r}")
    frames = doc.get("shared", {}).get("frames")
    if not isinstance(frames, list) or not frames:
        errors.append("shared.frames missing or empty")
        frames = []
    for i, frame in enumerate(frames):
        if not frame.get("name"):
            errors.append(f"frames[{i}] has no name")
    profiles = doc.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        errors.append("profiles missing or empty")
        profiles = []
    n_events = 0
    for p, prof in enumerate(profiles):
        where = f"profiles[{p}]"
        if prof.get("type") != "evented":
            errors.append(f"{where}: type is {prof.get('type')!r}")
        if prof.get("unit") != "microseconds":
            errors.append(f"{where}: unit is {prof.get('unit')!r}")
        start, end = prof.get("startValue"), prof.get("endValue")
        if start is None or end is None or start > end:
            errors.append(f"{where}: bad startValue/endValue {start}..{end}")
        stack = []
        last_at = None
        for i, ev in enumerate(prof.get("events", [])):
            at = ev.get("at")
            frame = ev.get("frame")
            ev_where = f"{where}.events[{i}]"
            if at is None or frame is None:
                errors.append(f"{ev_where}: missing at/frame")
                continue
            if not isinstance(frame, int) or not 0 <= frame < len(frames):
                errors.append(f"{ev_where}: frame {frame} out of range")
            if last_at is not None and at < last_at:
                errors.append(f"{ev_where}: at {at} goes backwards")
            last_at = at
            if start is not None and end is not None \
                    and not start <= at <= end:
                errors.append(f"{ev_where}: at {at} outside {start}..{end}")
            if ev.get("type") == "O":
                stack.append(frame)
            elif ev.get("type") == "C":
                if not stack:
                    errors.append(f"{ev_where}: C with empty stack")
                    continue
                opened = stack.pop()
                if opened != frame:
                    errors.append(
                        f"{ev_where}: C frame {frame} closes {opened}")
            else:
                errors.append(f"{ev_where}: unexpected type {ev.get('type')!r}")
            n_events += 1
        if stack:
            errors.append(f"{where}: unclosed frames {stack}")
    if n_events == 0:
        errors.append("no profile events exported")
    print(f"speedscope: {len(frames)} frames, {len(profiles)} profiles, "
          f"{n_events} events balanced")
    return errors


def main(argv):
    if len(argv) != 3 or argv[1] not in ("perfetto", "speedscope"):
        print("usage: check_export.py perfetto|speedscope FILE",
              file=sys.stderr)
        return 2
    with open(argv[2]) as f:
        doc = json.load(f)
    check = check_perfetto if argv[1] == "perfetto" else check_speedscope
    errors = check(doc)
    return fail(errors) if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
