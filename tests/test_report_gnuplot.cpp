// Gnuplot writers: structure of the emitted data and script.
#include <gtest/gtest.h>

#include <sstream>

#include "report/gnuplot.hpp"

namespace {

using namespace tempest::report;

ThermalSeries two_node_series() {
  ThermalSeries s;
  s.unit = tempest::TempUnit::kFahrenheit;
  s.duration_s = 4.0;
  SensorSeries a;
  a.node_id = 0;
  a.node_name = "node1";
  a.sensor_name = "cpu";
  a.points = {{0.0, 100.0}, {1.0, 104.0}, {2.0, 108.0}};
  SensorSeries b;
  b.node_id = 1;
  b.node_name = "node2";
  b.sensor_name = "cpu";
  b.points = {{0.0, 98.0}, {2.0, 99.0}};
  s.sensors = {a, b};
  s.spans = {{0, "hot_fn", 0.5, 1.5}};
  return s;
}

TEST(Gnuplot, DataFileHasIndexableBlocks) {
  std::ostringstream out;
  write_series_gnuplot_data(out, two_node_series());
  const std::string text = out.str();
  EXPECT_NE(text.find("# node=node1 sensor=cpu"), std::string::npos);
  EXPECT_NE(text.find("# node=node2 sensor=cpu"), std::string::npos);
  EXPECT_NE(text.find("\n\n\n"), std::string::npos);  // double blank separator
  EXPECT_NE(text.find("1 104"), std::string::npos);
}

TEST(Gnuplot, ScriptPlotsOnePanelPerNode) {
  std::ostringstream out;
  write_series_gnuplot_script(out, two_node_series(), "prof.dat", "prof.png");
  const std::string text = out.str();
  EXPECT_NE(text.find("set multiplot layout 2,1"), std::string::npos);
  EXPECT_NE(text.find("set output 'prof.png'"), std::string::npos);
  EXPECT_NE(text.find("'prof.dat' index 0"), std::string::npos);
  EXPECT_NE(text.find("'prof.dat' index 1"), std::string::npos);
  // Span rendered as a shaded rectangle on node 1's panel only.
  EXPECT_NE(text.find("set object 1 rect from 0.5"), std::string::npos);
  EXPECT_NE(text.find("title 'node 1'"), std::string::npos);
  EXPECT_NE(text.find("title 'node 2'"), std::string::npos);
}

TEST(Gnuplot, EmptySeriesProducesComment) {
  std::ostringstream out;
  write_series_gnuplot_script(out, ThermalSeries{}, "x.dat");
  EXPECT_NE(out.str().find("# no data"), std::string::npos);
}

}  // namespace
