// Sensor backends: hwmon parsing against a fabricated sysfs tree,
// simulated sensors (quantisation, noise, offsets), replay, constant.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "sensors/hwmon.hpp"
#include "sensors/replay.hpp"
#include "sensors/sim_backend.hpp"
#include "thermal/rc_network.hpp"

namespace {

namespace fs = std::filesystem;
using namespace tempest::sensors;

class HwmonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "hwmon_fake";
    fs::remove_all(root_);
    fs::create_directories(root_ / "hwmon0");
    fs::create_directories(root_ / "hwmon1");
    write(root_ / "hwmon0" / "name", "k8temp");
    write(root_ / "hwmon0" / "temp1_input", "34000");
    write(root_ / "hwmon0" / "temp1_label", "Core0");
    write(root_ / "hwmon0" / "temp2_input", "36500");
    write(root_ / "hwmon1" / "name", "acpitz");
    write(root_ / "hwmon1" / "temp1_input", "28000");
  }
  void write(const fs::path& p, const std::string& content) {
    std::ofstream out(p);
    out << content << "\n";
  }
  fs::path root_;
};

TEST_F(HwmonTest, EnumeratesChipsAndLabels) {
  HwmonBackend backend(root_);
  ASSERT_TRUE(backend.available());
  const auto sensors = backend.enumerate();
  ASSERT_EQ(sensors.size(), 3u);
  EXPECT_EQ(sensors[0].name, "Core0");            // explicit label
  EXPECT_EQ(sensors[1].name, "k8temp.temp2");     // chip-derived name
  EXPECT_EQ(sensors[2].name, "acpitz.temp1");
  EXPECT_EQ(sensors[0].source, "hwmon0/temp1");
}

TEST_F(HwmonTest, ReadsMillidegrees) {
  HwmonBackend backend(root_);
  EXPECT_DOUBLE_EQ(backend.read_celsius(0).value(), 34.0);
  EXPECT_DOUBLE_EQ(backend.read_celsius(1).value(), 36.5);
  EXPECT_DOUBLE_EQ(backend.read_celsius(2).value(), 28.0);
}

TEST_F(HwmonTest, OutOfRangeAndCorruptReadsError) {
  HwmonBackend backend(root_);
  EXPECT_FALSE(backend.read_celsius(9).is_ok());
  write(root_ / "hwmon0" / "temp1_input", "garbage");
  EXPECT_FALSE(backend.read_celsius(0).is_ok());
}

TEST(Hwmon, MissingRootYieldsNoSensors) {
  HwmonBackend backend("/nonexistent/path/hwmon");
  EXPECT_FALSE(backend.available());
  EXPECT_TRUE(backend.enumerate().empty());
}

TEST(SimBackend, QuantisesOffsetsAndValidatesNodes) {
  tempest::thermal::RcNetwork net;
  net.set_ambient_temp(25.0);
  net.add_node("die", 1.0, 38.6);
  net.add_node("sink", 1.0, 31.2);

  std::vector<SimSensorSpec> specs = {
      {"cpu", "die", 1.0, 0.0, 0.0},
      {"cpu_offset", "die", 1.0, 0.0, 2.0},
      {"sink_fine", "sink", 0.5, 0.0, 0.0},
      {"sink_raw", "sink", 0.0, 0.0, 0.0},
  };
  SimBackend backend(&net, specs);
  EXPECT_DOUBLE_EQ(backend.read_celsius(0).value(), 39.0);  // 38.6 -> 39
  EXPECT_DOUBLE_EQ(backend.read_celsius(1).value(), 41.0);  // 40.6 -> 41
  EXPECT_DOUBLE_EQ(backend.read_celsius(2).value(), 31.0);  // 31.2 -> 31.0 (0.5 step)
  EXPECT_DOUBLE_EQ(backend.read_celsius(3).value(), 31.2);  // raw
  EXPECT_FALSE(backend.read_celsius(4).is_ok());

  EXPECT_THROW(SimBackend(&net, {{"x", "missing_node", 1.0, 0.0, 0.0}}),
               std::out_of_range);
}

TEST(SimBackend, NoiseIsDeterministicPerSeed) {
  tempest::thermal::RcNetwork net;
  net.add_node("die", 1.0, 40.0);
  std::vector<SimSensorSpec> specs = {{"cpu", "die", 0.0, 0.5, 0.0}};
  SimBackend a(&net, specs, 123), b(&net, specs, 123), c(&net, specs, 456);
  const double ra = a.read_celsius(0).value();
  const double rb = b.read_celsius(0).value();
  const double rc = c.read_celsius(0).value();
  EXPECT_DOUBLE_EQ(ra, rb);
  EXPECT_NE(ra, rc);
  EXPECT_NEAR(ra, 40.0, 3.0);  // within 6 sigma
}

TEST(ReplayBackend, StepHoldSemantics) {
  std::vector<SensorInfo> sensors(1);
  sensors[0].name = "cpu";
  ReplayBackend backend(std::move(sensors),
                        {{{0.0, 30.0}, {1.0, 35.0}, {2.0, 40.0}}});
  backend.set_time(0.0);
  EXPECT_DOUBLE_EQ(backend.read_celsius(0).value(), 30.0);
  backend.set_time(1.5);
  EXPECT_DOUBLE_EQ(backend.read_celsius(0).value(), 35.0);
  backend.set_time(99.0);
  EXPECT_DOUBLE_EQ(backend.read_celsius(0).value(), 40.0);
  backend.set_time(-1.0);
  EXPECT_FALSE(backend.read_celsius(0).is_ok());
}

TEST(ReplayBackend, MismatchedSeriesCountThrows) {
  std::vector<SensorInfo> sensors(2);
  EXPECT_THROW(ReplayBackend(std::move(sensors), {{}}), std::invalid_argument);
}

TEST(ConstantBackend, FixedReadings) {
  ConstantBackend backend(3, 37.5);
  EXPECT_EQ(backend.enumerate().size(), 3u);
  EXPECT_DOUBLE_EQ(backend.read_celsius(2).value(), 37.5);
  backend.set_value(40.0);
  EXPECT_DOUBLE_EQ(backend.read_celsius(0).value(), 40.0);
  EXPECT_FALSE(backend.read_celsius(3).is_ok());
}

}  // namespace
