// Trace container, binary round-trip, corruption handling, clock
// alignment.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "trace/align.hpp"
#include "trace/reader.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"

namespace {

using namespace tempest::trace;

Trace sample_trace() {
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.executable = "/bin/fake";
  t.load_bias = 0x555500000000ULL;
  t.nodes = {{0, "node1"}, {1, "node2"}};
  t.sensors = {{0, 0, "cpu", 1.0}, {0, 1, "sink", 0.5}, {1, 0, "cpu", 1.0}};
  t.threads = {{0, 0, 0}, {1, 1, 0}};
  t.synthetic_symbols = {{kSyntheticAddrBase, "region_a"}};
  t.fn_events = {
      {100, 0xdead, 0, 0, FnEventKind::kEnter},
      {900, 0xdead, 0, 0, FnEventKind::kExit},
      {200, 0xbeef, 1, 1, FnEventKind::kEnter},
      {800, 0xbeef, 1, 1, FnEventKind::kExit},
  };
  t.temp_samples = {{150, 34.0, 0, 0}, {450, 36.0, 0, 1}, {300, 35.0, 1, 0}};
  t.clock_syncs = {{100, 100, 0}, {1100, 1100, 0}};
  return t;
}

TEST(Trace, SortAndBounds) {
  Trace t = sample_trace();
  t.sort_by_time();
  EXPECT_EQ(t.fn_events.front().tsc, 100u);
  EXPECT_EQ(t.fn_events.back().tsc, 900u);
  EXPECT_EQ(t.start_tsc(), 100u);
  EXPECT_EQ(t.end_tsc(), 900u);
  EXPECT_DOUBLE_EQ(t.seconds_from_start(600), 500e-9);
}

TEST(Trace, EmptyTraceBounds) {
  Trace t;
  EXPECT_EQ(t.start_tsc(), 0u);
  EXPECT_EQ(t.end_tsc(), 0u);
  EXPECT_DOUBLE_EQ(t.seconds_from_start(5), 0.0);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  auto loaded = read_trace(buffer);
  ASSERT_TRUE(loaded.is_ok()) << loaded.message();
  const Trace& t = loaded.value();

  EXPECT_EQ(t.tsc_ticks_per_second, original.tsc_ticks_per_second);
  EXPECT_EQ(t.executable, original.executable);
  EXPECT_EQ(t.load_bias, original.load_bias);
  ASSERT_EQ(t.nodes.size(), 2u);
  EXPECT_EQ(t.nodes[1].hostname, "node2");
  ASSERT_EQ(t.sensors.size(), 3u);
  EXPECT_EQ(t.sensors[1].name, "sink");
  EXPECT_EQ(t.sensors[1].quant_step_c, 0.5);
  ASSERT_EQ(t.threads.size(), 2u);
  ASSERT_EQ(t.synthetic_symbols.size(), 1u);
  EXPECT_EQ(t.synthetic_symbols[0].name, "region_a");
  ASSERT_EQ(t.fn_events.size(), 4u);
  EXPECT_EQ(t.fn_events[0].addr, 0xdeadu);
  EXPECT_EQ(t.fn_events[1].kind, FnEventKind::kExit);
  ASSERT_EQ(t.temp_samples.size(), 3u);
  EXPECT_DOUBLE_EQ(t.temp_samples[1].temp_c, 36.0);
  ASSERT_EQ(t.clock_syncs.size(), 2u);
}

TEST(TraceIo, RejectsBadMagicAndVersion) {
  std::stringstream buffer;
  buffer << "NOT A TRACE FILE AT ALL";
  EXPECT_FALSE(read_trace(buffer).is_ok());
}

TEST(TraceIo, RejectsTruncation) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  const std::string full = buffer.str();
  // Truncate at several byte positions; all must fail cleanly.
  for (std::size_t cut : {std::size_t{10}, std::size_t{40}, std::size_t{100},
                          full.size() - 3}) {
    std::stringstream cut_buffer(full.substr(0, cut));
    EXPECT_FALSE(read_trace(cut_buffer).is_ok()) << "cut at " << cut;
  }
}

// Byte offsets in a v2 trace with empty executable and no metadata:
// header (magic 8 + version 4 + rate 8 + exe-len 4 + bias 8) = 32,
// four u32 metadata counts = 16, so the fn_events section framing sits
// at [48, 56) (count u64) and [56, 60) (record_size u32).
constexpr std::size_t kMinimalFnCountOffset = 48;
constexpr std::size_t kMinimalFnRecordSizeOffset = 56;

std::string minimal_trace_bytes() {
  Trace t;
  t.fn_events = {{100, 0xaaa, 0, 0, FnEventKind::kEnter},
                 {200, 0xaaa, 0, 0, FnEventKind::kExit}};
  std::stringstream buffer;
  EXPECT_TRUE(write_trace(buffer, t));
  return buffer.str();
}

TEST(TraceIo, RejectsOldVersionWithClearMessage) {
  // A v1 trace (or any foreign version) must be refused up front with a
  // message that names both versions, not misparsed as garbage records.
  std::string bytes = minimal_trace_bytes();
  const std::uint32_t old_version = 1;
  std::memcpy(bytes.data() + sizeof(kTraceMagic), &old_version, sizeof(old_version));
  std::stringstream buffer(bytes);
  auto result = read_trace(buffer);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.message().find("unsupported trace version 1"), std::string::npos)
      << result.message();
  EXPECT_NE(result.message().find(std::to_string(kTraceVersion)), std::string::npos)
      << result.message();
}

TEST(TraceIo, RejectsRecordSizeMismatch) {
  // Corrupt section framing: a record_size the reader was not built for
  // means the payload layout is unknowable.
  std::string bytes = minimal_trace_bytes();
  bytes[kMinimalFnRecordSizeOffset] = static_cast<char>(kFnEventRecordSize + 1);
  std::stringstream buffer(bytes);
  auto result = read_trace(buffer);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.message().find("record size mismatch"), std::string::npos)
      << result.message();
}

TEST(TraceIo, RejectsTruncatedBulkPayload) {
  const std::string bytes = minimal_trace_bytes();
  // Cut inside the first packed fn event record.
  std::stringstream buffer(
      bytes.substr(0, kMinimalFnRecordSizeOffset + sizeof(std::uint32_t) + 10));
  auto result = read_trace(buffer);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.message().find("truncated fn event"), std::string::npos)
      << result.message();
}

TEST(TraceIo, CorruptHugeCountFailsBounded) {
  // A flipped count field must fail at the first missing chunk — the
  // chunked section reader never allocates count * record_size.
  std::string bytes = minimal_trace_bytes();
  const std::uint64_t over_cap = 0xFFFF'FFFF'FFULL;  // > kMaxRecords
  std::memcpy(bytes.data() + kMinimalFnCountOffset, &over_cap, sizeof(over_cap));
  std::stringstream buffer(bytes);
  auto result = read_trace(buffer);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.message().find("oversized"), std::string::npos) << result.message();

  bytes = minimal_trace_bytes();
  const std::uint64_t under_cap = 1ULL << 31;  // plausible but absent payload
  std::memcpy(bytes.data() + kMinimalFnCountOffset, &under_cap, sizeof(under_cap));
  std::stringstream buffer2(bytes);
  result = read_trace(buffer2);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.message().find("truncated fn event"), std::string::npos)
      << result.message();
}

TEST(TraceIo, CorruptFnEventKindRejected) {
  std::string bytes = minimal_trace_bytes();
  // kind is the last byte of the first packed record.
  const std::size_t kind_offset =
      kMinimalFnRecordSizeOffset + sizeof(std::uint32_t) + kFnEventRecordSize - 1;
  bytes[kind_offset] = 7;
  std::stringstream buffer(bytes);
  auto result = read_trace(buffer);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.message().find("corrupt fn event"), std::string::npos)
      << result.message();
}

TEST(TraceIo, MissingFileErrors) {
  EXPECT_FALSE(read_trace_file("/nonexistent/trace.bin").is_ok());
  EXPECT_FALSE(write_trace_file("/nonexistent/dir/trace.bin", Trace{}).is_ok());
}

TEST(ClockFit, OffsetOnlySingleSync) {
  Trace t;
  t.clock_syncs = {{1000, 5000, 0}};
  const auto fits = fit_clocks(t);
  ASSERT_EQ(fits.size(), 1u);
  EXPECT_EQ(fits.at(0).to_global(1000), 5000u);
  EXPECT_EQ(fits.at(0).to_global(1500), 5500u);
}

TEST(ClockFit, RecoversOffsetAndDrift) {
  // Node clock runs 2% fast with offset 1e6: node = 1.02*global + 1e6,
  // so global = (node - 1e6) / 1.02.
  Trace t;
  for (std::uint64_t g = 0; g <= 1'000'000'000ULL; g += 100'000'000ULL) {
    const auto node_tsc = static_cast<std::uint64_t>(1.02 * static_cast<double>(g) + 1e6);
    t.clock_syncs.push_back({node_tsc, g, 3});
  }
  const auto fits = fit_clocks(t);
  ASSERT_TRUE(fits.count(3));
  const auto& fit = fits.at(3);
  // Check round-trip accuracy at an arbitrary point.
  const std::uint64_t node_at = static_cast<std::uint64_t>(1.02 * 567'000'000.0 + 1e6);
  EXPECT_NEAR(static_cast<double>(fit.to_global(node_at)), 567'000'000.0, 2000.0);
}

TEST(AlignClocks, RewritesEventsIntoGlobalDomain) {
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.nodes = {{0, "a"}, {1, "b"}};
  t.threads = {{0, 0, 0}, {1, 1, 0}};
  // Node 1's clock is global + 10000.
  t.clock_syncs = {{10000, 0, 1}, {20000, 10000, 1}, {0, 0, 0}, {10000, 10000, 0}};
  t.fn_events = {
      {500, 1, 0, 0, FnEventKind::kEnter},   // node 0: already global
      {10500, 2, 1, 1, FnEventKind::kEnter}, // node 1: global 500
  };
  t.temp_samples = {{10600, 40.0, 1, 0}};
  ASSERT_TRUE(align_clocks(&t));
  EXPECT_EQ(t.fn_events[0].tsc, 500u);
  EXPECT_EQ(t.fn_events[1].tsc, 500u);
  EXPECT_EQ(t.temp_samples[0].tsc, 600u);
  EXPECT_TRUE(t.clock_syncs.empty());
}

TEST(AlignClocks, NoSyncsIsIdentity) {
  Trace t;
  t.fn_events = {{123, 1, 0, 0, FnEventKind::kEnter}};
  ASSERT_TRUE(align_clocks(&t));
  EXPECT_EQ(t.fn_events[0].tsc, 123u);
}

// -- RUNSTATS trailer --------------------------------------------------

RunStats sample_run_stats() {
  RunStats rs;
  rs.events_recorded = 123456;
  rs.events_dropped = 7;
  rs.buffer_flushes = 3;
  rs.threads_registered = 4;
  rs.tempd_ticks = 40;
  rs.tempd_missed_ticks = 2;
  rs.tempd_samples = 240;
  rs.tempd_read_errors = 1;
  rs.sensor_read_failures = 1;
  rs.heartbeats = 11;
  rs.peak_rss_kb = 20480;
  rs.wall_seconds = 9.875;
  rs.tempd_cpu_seconds = 0.0625;
  rs.probe_cost_ns_mean = 38.5;
  rs.cadence_jitter_us_mean = 120.25;
  rs.present = true;
  return rs;
}

TEST(RunStatsIo, RoundTripPreservesEveryField) {
  Trace original = sample_trace();
  original.run_stats = sample_run_stats();
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  auto loaded = read_trace(buffer);
  ASSERT_TRUE(loaded.is_ok()) << loaded.message();
  const RunStats& rs = loaded.value().run_stats;
  ASSERT_TRUE(rs.present);
  EXPECT_EQ(rs.events_recorded, 123456u);
  EXPECT_EQ(rs.events_dropped, 7u);
  EXPECT_EQ(rs.buffer_flushes, 3u);
  EXPECT_EQ(rs.threads_registered, 4u);
  EXPECT_EQ(rs.tempd_ticks, 40u);
  EXPECT_EQ(rs.tempd_missed_ticks, 2u);
  EXPECT_EQ(rs.tempd_samples, 240u);
  EXPECT_EQ(rs.tempd_read_errors, 1u);
  EXPECT_EQ(rs.sensor_read_failures, 1u);
  EXPECT_EQ(rs.heartbeats, 11u);
  EXPECT_EQ(rs.peak_rss_kb, 20480u);
  // Doubles cross the wire bit-exact (memcpy of the IEEE representation).
  EXPECT_EQ(rs.wall_seconds, 9.875);
  EXPECT_EQ(rs.tempd_cpu_seconds, 0.0625);
  EXPECT_EQ(rs.probe_cost_ns_mean, 38.5);
  EXPECT_EQ(rs.cadence_jitter_us_mean, 120.25);
}

TEST(RunStatsIo, AdmissionCountersRoundTrip) {
  Trace original = sample_trace();
  original.run_stats = sample_run_stats();
  original.run_stats.events_suppressed = 1001;
  original.run_stats.events_throttled = 2002;
  original.run_stats.events_overwritten = 3003;
  original.run_stats.calls_observed = 129469;
  original.run_stats.ring_snapshots = 2;
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  auto loaded = read_trace(buffer);
  ASSERT_TRUE(loaded.is_ok()) << loaded.message();
  const RunStats& rs = loaded.value().run_stats;
  EXPECT_EQ(rs.events_suppressed, 1001u);
  EXPECT_EQ(rs.events_throttled, 2002u);
  EXPECT_EQ(rs.events_overwritten, 3003u);
  EXPECT_EQ(rs.calls_observed, 129469u);
  EXPECT_EQ(rs.ring_snapshots, 2u);
}

TEST(RunStatsIo, LegacyFifteenFieldRecordReadsWithZeroAdmission) {
  // Traces written before the admission counters carry a 120-byte
  // RUNSTATS record. Manufacture one by byte surgery on a current
  // trace: shrink the declared size and truncate the payload.
  Trace original = sample_trace();
  original.run_stats = sample_run_stats();
  original.run_stats.events_suppressed = 999;  // must NOT survive surgery
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  std::string bytes = buffer.str();
  const std::size_t record = 4 + 4 + kRunStatsRecordSize;
  ASSERT_GE(bytes.size(), record);
  const std::size_t trailer = bytes.size() - record;
  ASSERT_EQ(static_cast<unsigned char>(bytes[trailer]), 'R');  // "RSTA"
  ASSERT_EQ(static_cast<unsigned char>(bytes[trailer + 1]), 'S');
  std::string legacy = bytes.substr(0, trailer);
  legacy += bytes.substr(trailer, 4);  // marker
  const std::uint32_t size = kRunStatsRecordSizeLegacy;
  legacy.append(reinterpret_cast<const char*>(&size), 4);
  legacy += bytes.substr(trailer + 8, kRunStatsRecordSizeLegacy);

  std::stringstream surgery(legacy);
  auto loaded = read_trace(surgery);
  ASSERT_TRUE(loaded.is_ok()) << loaded.message();
  const RunStats& rs = loaded.value().run_stats;
  ASSERT_TRUE(rs.present);
  EXPECT_EQ(rs.events_recorded, 123456u);  // legacy fields intact
  EXPECT_EQ(rs.cadence_jitter_us_mean, 120.25);
  EXPECT_EQ(rs.events_suppressed, 0u);  // admission counters zero-filled
  EXPECT_EQ(rs.events_throttled, 0u);
  EXPECT_EQ(rs.events_overwritten, 0u);
  EXPECT_EQ(rs.calls_observed, 0u);
  EXPECT_EQ(rs.ring_snapshots, 0u);
}

TEST(FilterDeclIo, RoundTripThroughTraceAndFile) {
  Trace original = sample_trace();
  original.filter.present = true;
  original.filter.source = "/etc/tempest/hot.filter";
  original.filter.resolved = 2;
  original.filter.suppressed = {"_ZN4slowEv", "plain_c_fn", "unresolved_fn"};
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  auto loaded = read_trace(buffer);
  ASSERT_TRUE(loaded.is_ok()) << loaded.message();
  const FilterDecl& fd = loaded.value().filter;
  ASSERT_TRUE(fd.present);
  EXPECT_EQ(fd.source, original.filter.source);
  EXPECT_EQ(fd.resolved, 2u);
  EXPECT_EQ(fd.suppressed, original.filter.suppressed);

  const std::string path = ::testing::TempDir() + "/filter_decl.trace";
  ASSERT_TRUE(write_trace_file(path, original));
  auto from_file = read_trace_file(path);
  ASSERT_TRUE(from_file.is_ok()) << from_file.message();
  EXPECT_TRUE(from_file.value().filter.present);
  EXPECT_EQ(from_file.value().filter.suppressed, original.filter.suppressed);
  std::remove(path.c_str());
}

TEST(FilterDeclIo, AbsentTrailerReadsAsNotPresent) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  auto loaded = read_trace(buffer);
  ASSERT_TRUE(loaded.is_ok()) << loaded.message();
  EXPECT_FALSE(loaded.value().filter.present);
}

TEST(FilterDeclIo, AppendMergesRankDeclarations) {
  FilterDecl a;
  a.present = true;
  a.source = "rank0.filter";
  a.resolved = 3;
  a.suppressed = {"alpha", "beta"};
  FilterDecl b;
  b.present = true;
  b.resolved = 5;
  b.suppressed = {"beta", "gamma"};
  a.append(b);
  EXPECT_TRUE(a.present);
  EXPECT_EQ(a.source, "rank0.filter");  // first non-empty wins
  EXPECT_EQ(a.resolved, 5u);            // max across ranks
  ASSERT_EQ(a.suppressed.size(), 3u);   // union, duplicates folded
}

TEST(RunStatsIo, PreRunstatsTracesReadAsAbsent) {
  // A trace written without run stats is byte-identical to the format
  // before the trailer existed — readers must treat it as absent, not
  // as an error and not as zeros-present.
  const Trace original = sample_trace();
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  auto loaded = read_trace(buffer);
  ASSERT_TRUE(loaded.is_ok()) << loaded.message();
  EXPECT_FALSE(loaded.value().run_stats.present);
}

TEST(RunStatsIo, TruncatedTrailerRejected) {
  Trace original = sample_trace();
  original.run_stats = sample_run_stats();
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  const std::string full = buffer.str();
  // Cut inside the trailer payload (after the marker + size words).
  std::stringstream cut(full.substr(0, full.size() - 16));
  EXPECT_FALSE(read_trace(cut).is_ok());
}

TEST(RunStatsIo, TrailingGarbageStillRejectedByFileReader) {
  const std::string path = ::testing::TempDir() + "/runstats_garbage.trace";
  Trace original = sample_trace();
  original.run_stats = sample_run_stats();
  ASSERT_TRUE(write_trace_file(path, original));
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "JUNKJUNK";
  }
  // Garbage after a complete trailer is not silently swallowed.
  EXPECT_FALSE(read_trace_file(path).is_ok());
  std::remove(path.c_str());
}

TEST(RunStatsIo, FileRoundTripThroughReaderHeader) {
  const std::string path = ::testing::TempDir() + "/runstats_file.trace";
  Trace original = sample_trace();
  original.run_stats = sample_run_stats();
  ASSERT_TRUE(write_trace_file(path, original));
  auto loaded = read_trace_file(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.message();
  EXPECT_TRUE(loaded.value().run_stats.present);
  EXPECT_EQ(loaded.value().run_stats.events_recorded, 123456u);
  std::remove(path.c_str());
}

TEST(RunStats, AppendFoldsCountsMeansAndWall) {
  RunStats a = sample_run_stats();  // 123456 events, probe mean 38.5
  RunStats b;
  b.present = true;
  b.events_recorded = 123456;  // equal weight: folded mean is the average
  b.tempd_ticks = 10;
  b.tempd_samples = 60;
  b.wall_seconds = 12.5;   // ranks overlap: wall is the max, not the sum
  b.tempd_cpu_seconds = 0.1;  // cpu genuinely adds
  b.probe_cost_ns_mean = 40.5;
  b.cadence_jitter_us_mean = 0.0;
  a.append(b);
  EXPECT_EQ(a.events_recorded, 246912u);
  EXPECT_EQ(a.tempd_ticks, 50u);
  EXPECT_EQ(a.tempd_samples, 300u);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 12.5);
  EXPECT_DOUBLE_EQ(a.tempd_cpu_seconds, 0.1625);
  EXPECT_DOUBLE_EQ(a.probe_cost_ns_mean, 39.5);
  EXPECT_TRUE(a.present);

  // Appending an absent RunStats changes nothing.
  const RunStats before = a;
  a.append(RunStats{});
  EXPECT_EQ(a.events_recorded, before.events_recorded);
  EXPECT_DOUBLE_EQ(a.probe_cost_ns_mean, before.probe_cost_ns_mean);
}

}  // namespace
