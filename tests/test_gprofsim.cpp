// The gprof-style flat bucket profiler: bucket semantics (self vs
// inclusive time, recursion) and its agreement with Tempest on the same
// instrumented workload (paper §3.4: "both tools provided similar
// results for total execution time").
#include <gtest/gtest.h>

#include "core/workbench.hpp"
#include "gprofsim/flat_profiler.hpp"
#include "micro/micro.hpp"
#include "simnode/cluster.hpp"

namespace {

using gprofsim::FlatProfiler;

micro::MicroParams make_params(tempest::core::Workbench* bench) {
  return micro::MicroParams{bench, 0.01};
}

TEST(FlatProfiler, BucketsSelfAndInclusiveTime) {
  auto node_config = tempest::simnode::make_node_config(
      tempest::simnode::NodeKind::kX86Basic);
  tempest::simnode::SimNode node(node_config);
  tempest::core::Workbench bench(&node, 0);

  auto& profiler = FlatProfiler::instance();
  profiler.reset();
  profiler.start();
  micro::run_micro_d(make_params(&bench));  // foo1 { burn; foo2 } ; foo2
  profiler.stop();

  const auto profile = profiler.flat_profile();
  ASSERT_FALSE(profile.empty());

  const gprofsim::FlatEntry* foo1 = nullptr;
  const gprofsim::FlatEntry* foo2 = nullptr;
  for (const auto& e : profile) {
    if (e.name.find("foo1") != std::string::npos) foo1 = &e;
    if (e.name.find("foo2") != std::string::npos) foo2 = &e;
  }
  ASSERT_NE(foo1, nullptr);
  ASSERT_NE(foo2, nullptr);
  EXPECT_EQ(foo1->calls, 1u);
  EXPECT_EQ(foo2->calls, 2u);
  // foo1's burn dominates its self time; foo2's waits are its own.
  EXPECT_GT(foo1->self_s, 0.3);
  // Inclusive foo1 covers its nested foo2 call, so self < total; the
  // nested wait is ~half of foo2's accumulated self time.
  EXPECT_GE(foo1->total_s, foo1->self_s + 0.3 * foo2->self_s);
  EXPECT_LT(foo1->self_s, foo1->total_s);
}

TEST(FlatProfiler, RecursionDoesNotDoubleCountInclusive) {
  auto node_config = tempest::simnode::make_node_config(
      tempest::simnode::NodeKind::kX86Basic);
  tempest::simnode::SimNode node(node_config);
  tempest::core::Workbench bench(&node, 0);

  auto& profiler = FlatProfiler::instance();
  profiler.reset();
  profiler.start();
  micro::run_micro_e(make_params(&bench));  // recursive rec_fn
  profiler.stop();

  // flat_profile() returns a snapshot copy; keep it alive while we
  // hold pointers into it.
  const auto profile = profiler.flat_profile();
  const gprofsim::FlatEntry* rec = nullptr;
  for (const auto& e : profile) {
    if (e.name.find("rec_fn") != std::string::npos) rec = &e;
  }
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->calls, 6u);  // depths 3+1 -> 4 + 2 activations
  // Inclusive counted only for outermost activations: strictly less
  // than calls * per-call time would suggest, and >= self.
  EXPECT_GE(rec->total_s, rec->self_s);
  EXPECT_LT(rec->total_s, rec->self_s * 3.0);
}

TEST(FlatProfiler, InactiveHooksCostNothing) {
  auto& profiler = FlatProfiler::instance();
  profiler.reset();
  EXPECT_FALSE(profiler.active());
  profiler.on_enter(reinterpret_cast<void*>(0x1));  // ignored
  profiler.on_exit(reinterpret_cast<void*>(0x1));
  profiler.stop();  // no-op
  EXPECT_TRUE(profiler.flat_profile().empty());
}

TEST(FlatProfiler, SelfSecondsLookupByName) {
  auto node_config = tempest::simnode::make_node_config(
      tempest::simnode::NodeKind::kX86Basic);
  tempest::simnode::SimNode node(node_config);
  tempest::core::Workbench bench(&node, 0);

  auto& profiler = FlatProfiler::instance();
  profiler.reset();
  profiler.start();
  micro::run_micro_b(make_params(&bench));
  profiler.stop();

  double found = 0.0;
  for (const auto& e : profiler.flat_profile()) {
    if (e.name.find("work_small") != std::string::npos) {
      found = profiler.self_seconds(e.name);
    }
  }
  EXPECT_GT(found, 0.02);
  EXPECT_DOUBLE_EQ(profiler.self_seconds("no_such_function"), 0.0);
}

}  // namespace
