// Timeline reconstruction: the Table 1 conditions (single function,
// multiple, interleaving, recursion + interleaving) plus unbalanced
// traces.
#include <gtest/gtest.h>

#include "parser/timeline.hpp"

namespace {

using namespace tempest::parser;
using tempest::trace::FnEvent;
using tempest::trace::FnEventKind;
using tempest::trace::Trace;

Trace trace_with(std::vector<FnEvent> events) {
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.threads = {{0, 0, 0}, {1, 1, 0}};
  t.fn_events = std::move(events);
  t.sort_by_time();
  return t;
}

FnEvent enter(std::uint64_t tsc, std::uint64_t addr, std::uint32_t tid = 0) {
  return {tsc, addr, tid, 0, FnEventKind::kEnter};
}
FnEvent exit_(std::uint64_t tsc, std::uint64_t addr, std::uint32_t tid = 0) {
  return {tsc, addr, tid, 0, FnEventKind::kExit};
}

TEST(Timeline, SingleFunction) {  // Table 1 case B
  const auto tl = build_timeline(trace_with({enter(100, 1), exit_(600, 1)}));
  ASSERT_EQ(tl.size(), 1u);
  const auto& fn = tl.at({0, 1});
  EXPECT_EQ(fn.calls, 1u);
  EXPECT_EQ(fn.total_ticks, 500u);
  ASSERT_EQ(fn.merged.size(), 1u);
  EXPECT_TRUE(fn.contains(100));
  EXPECT_TRUE(fn.contains(599));
  EXPECT_FALSE(fn.contains(600));
  EXPECT_FALSE(fn.contains(99));
}

TEST(Timeline, MultipleSequentialFunctions) {  // Table 1 case C
  const auto tl = build_timeline(trace_with({
      enter(0, 1), exit_(100, 1),
      enter(100, 2), exit_(300, 2),
      enter(300, 3), exit_(600, 3),
  }));
  EXPECT_EQ(tl.at({0, 1}).total_ticks, 100u);
  EXPECT_EQ(tl.at({0, 2}).total_ticks, 200u);
  EXPECT_EQ(tl.at({0, 3}).total_ticks, 300u);
}

TEST(Timeline, InterleavedNesting) {  // Table 1 case D
  // main(10) { foo1(20) { foo2(30..40) } (50) } foo2(60..70) main exit 80.
  const auto tl = build_timeline(trace_with({
      enter(10, 100),             // main
      enter(20, 1),               // foo1
      enter(30, 2), exit_(40, 2), // foo2 inside foo1
      exit_(50, 1),               // foo1
      enter(60, 2), exit_(70, 2), // foo2 from main
      exit_(80, 100),
  }));
  EXPECT_EQ(tl.at({0, 100}).total_ticks, 70u);  // inclusive main
  EXPECT_EQ(tl.at({0, 1}).total_ticks, 30u);    // foo1 inclusive of foo2
  EXPECT_EQ(tl.at({0, 2}).total_ticks, 20u);    // two activations
  EXPECT_EQ(tl.at({0, 2}).calls, 2u);
  ASSERT_EQ(tl.at({0, 2}).merged.size(), 2u);
  EXPECT_TRUE(tl.at({0, 1}).contains(35));      // inclusive attribution
}

TEST(Timeline, RecursionCollapsesToOutermost) {  // Table 1 case E
  // f enters at 0, recurses at 10 and 20, unwinds 30/40, exits 100.
  const auto tl = build_timeline(trace_with({
      enter(0, 7), enter(10, 7), enter(20, 7),
      exit_(30, 7), exit_(40, 7), exit_(100, 7),
  }));
  const auto& fn = tl.at({0, 7});
  EXPECT_EQ(fn.calls, 3u);
  EXPECT_EQ(fn.total_ticks, 100u);  // not 100+30+10 double-counted
  ASSERT_EQ(fn.merged.size(), 1u);
  EXPECT_EQ(fn.merged[0].begin, 0u);
  EXPECT_EQ(fn.merged[0].end, 100u);
}

TEST(Timeline, RecursionWithInterleaving) {
  // f { g { f } } — mutual nesting; f's inclusive time spans everything.
  const auto tl = build_timeline(trace_with({
      enter(0, 1), enter(10, 2), enter(20, 1),
      exit_(30, 1), exit_(40, 2), exit_(50, 1),
  }));
  EXPECT_EQ(tl.at({0, 1}).total_ticks, 50u);
  EXPECT_EQ(tl.at({0, 2}).total_ticks, 30u);
  EXPECT_EQ(tl.at({0, 1}).calls, 2u);
}

TEST(Timeline, UnmatchedExitIsCountedAndIgnored) {
  TimelineDiagnostics diag;
  const auto tl = build_timeline(
      trace_with({exit_(50, 9), enter(100, 1), exit_(200, 1)}), &diag);
  EXPECT_EQ(diag.unmatched_exits, 1u);
  EXPECT_EQ(tl.count({0, 9}), 0u);
  EXPECT_EQ(tl.at({0, 1}).total_ticks, 100u);
}

TEST(Timeline, OpenFunctionsForceClosedAtTraceEnd) {
  TimelineDiagnostics diag;
  const auto tl = build_timeline(
      trace_with({enter(0, 1), enter(100, 2), exit_(300, 2)}), &diag);
  EXPECT_EQ(diag.force_closed, 1u);
  EXPECT_EQ(tl.at({0, 1}).total_ticks, 300u);  // closed at end (tsc 300)
}

TEST(Timeline, ThreadsAreIndependent) {
  // Same address on two threads; each timeline replay is separate and
  // total_ticks sums the per-thread inclusive times.
  const auto tl = build_timeline(trace_with({
      enter(0, 5, 0), enter(50, 5, 1), exit_(100, 5, 0), exit_(200, 5, 1),
  }));
  // thread 0 node 0: [0,100); thread 1 node 1: [50,200).
  EXPECT_EQ(tl.at({0, 5}).total_ticks, 100u);
  EXPECT_EQ(tl.at({1, 5}).total_ticks, 150u);
}

TEST(Timeline, MergeIntervalsCoalesces) {
  std::vector<Interval> ivs = {{10, 20}, {15, 30}, {40, 50}, {30, 40}, {60, 70}};
  merge_intervals(&ivs);
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[0].begin, 10u);
  EXPECT_EQ(ivs[0].end, 50u);
  EXPECT_EQ(ivs[1].begin, 60u);
  EXPECT_EQ(ivs[1].end, 70u);
}

TEST(Timeline, EmptyTrace) {
  TimelineDiagnostics diag;
  const auto tl = build_timeline(trace_with({}), &diag);
  EXPECT_TRUE(tl.empty());
  EXPECT_EQ(diag.unmatched_exits, 0u);
}

}  // namespace
