// IS benchmark: sorting correctness, population preservation across
// rank counts, and the alltoallv path it exercises.
#include <gtest/gtest.h>

#include "minimpi/runtime.hpp"
#include "npb/is.hpp"

namespace {

using namespace npb;

class IsParallel : public ::testing::TestWithParam<int> {};

TEST_P(IsParallel, MatchesSerialPopulationAndSorts) {
  const int np = GetParam();
  IsConfig config{12, 10, 4};
  IsResult result;
  minimpi::run(np, [&](minimpi::Comm& comm) { result = is_run(comm, config); });
  const VerifyResult v = is_verify(result, config);
  EXPECT_TRUE(v.passed) << v.detail;
  EXPECT_EQ(result.total_keys, 1 << 12);
  EXPECT_TRUE(result.globally_sorted);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, IsParallel, ::testing::Values(1, 2, 4, 8));

TEST(Is, KeysRoughlyCentered) {
  // Four averaged draws centre the distribution: mean near max_key/2,
  // clearly non-uniform (low variance vs uniform).
  const IsResult r = is_serial(IsConfig{12, 10, 1});
  const double n = static_cast<double>(r.total_keys);
  const double mean = r.key_sum / n;
  const double var = r.key_sq_sum / n - mean * mean;
  const double max_key = 1 << 10;
  EXPECT_NEAR(mean, max_key / 2, max_key * 0.03);
  // Uniform variance would be max_key^2/12; averaging 4 draws quarters it.
  EXPECT_LT(var, max_key * max_key / 12.0 * 0.5);
}

TEST(Is, IndivisibleRankCountRejected) {
  EXPECT_THROW(minimpi::run(3,
                            [](minimpi::Comm& comm) {
                              (void)is_run(comm, IsConfig{4, 8, 1});
                            }),
               std::invalid_argument);
}

TEST(Is, DeterministicAcrossRuns) {
  IsConfig config = IsConfig::for_class(ProblemClass::S);
  IsResult a, b;
  minimpi::run(2, [&](minimpi::Comm& comm) { a = is_run(comm, config); });
  minimpi::run(2, [&](minimpi::Comm& comm) { b = is_run(comm, config); });
  EXPECT_EQ(a.key_sum, b.key_sum);
  EXPECT_EQ(a.key_sq_sum, b.key_sq_sum);
}

}  // namespace
