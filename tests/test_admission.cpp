// Admission pipeline: TEMPEST_FILTER suppression, per-function
// throttling, min-duration elision, and the flight-recorder ring —
// including the conservation invariant
//   calls_observed == recorded + suppressed + throttled
//                     + dropped + overwritten
// that tempest-lint enforces, and the ring-snapshot -> parse -> export
// round trip.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "analysis/lint.hpp"
#include "common/filter_file.hpp"
#include "core/admission.hpp"
#include "core/api.hpp"
#include "core/session.hpp"
#include "export/run.hpp"
#include "simnode/cluster.hpp"
#include "trace/reader.hpp"

namespace {

using namespace tempest;
using core::AddrSet;
using core::Session;
using core::SessionConfig;

simnode::NodeConfig fast_node() {
  auto config = simnode::make_node_config(simnode::NodeKind::kX86Basic);
  config.package.time_scale = 30.0;
  return config;
}

SessionConfig test_config() {
  SessionConfig c;
  c.sample_hz = 50.0;
  c.bind_affinity = false;
  return c;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Write a TEMPEST_FILTER v1 file suppressing the given names.
std::string write_filter(const std::string& name,
                         const std::vector<std::string>& symbols) {
  common::FilterFile ff;
  for (const auto& s : symbols) ff.rules.push_back({s, "test"});
  const std::string path = temp_path(name);
  EXPECT_TRUE(common::write_filter_file(path, ff));
  return path;
}

void expect_conservation(const trace::RunStats& rs) {
  ASSERT_TRUE(rs.present);
  EXPECT_EQ(rs.calls_observed,
            rs.events_recorded + rs.events_suppressed + rs.events_throttled +
                rs.events_dropped + rs.events_overwritten);
}

std::uint64_t count_addr(const trace::Trace& t, std::uint64_t addr) {
  std::uint64_t n = 0;
  for (const auto& e : t.fn_events) {
    if (e.addr == addr) ++n;
  }
  return n;
}

TEST(AddrSet, InsertAndContains) {
  AddrSet set(4);
  EXPECT_FALSE(set.contains(0x1000));
  EXPECT_TRUE(set.insert(0x1000));
  EXPECT_TRUE(set.insert(0x1000));  // idempotent
  EXPECT_TRUE(set.contains(0x1000));
  EXPECT_FALSE(set.contains(0x1008));
  EXPECT_FALSE(set.insert(0));  // sentinel is never a function
  EXPECT_EQ(set.size(), 1u);
  EXPECT_GE(set.capacity(), 64u);
}

TEST(AddrSet, RefusesBeyondLoadFactor) {
  AddrSet set(0);  // minimum capacity: 64 slots, 32 usable
  std::size_t inserted = 0;
  for (std::uint64_t a = 8; a < 8 + 64 * 8; a += 8) {
    if (set.insert(a)) ++inserted;
  }
  EXPECT_EQ(inserted, set.capacity() / 2);
  // Everything that got in is still findable after refusals.
  std::size_t found = 0;
  for (std::uint64_t a = 8; a < 8 + 64 * 8; a += 8) {
    if (set.contains(a)) ++found;
  }
  EXPECT_EQ(found, inserted);
}

TEST(AddrSet, ConcurrentInsertAndProbe) {
  AddrSet set(4096);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 512;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&set, &ok, t] {
      std::size_t mine = 0;
      for (std::uint64_t i = 1; i <= kPerThread; ++i) {
        // Half the addresses are shared across threads (CAS races on
        // identical keys), half are unique per thread.
        const std::uint64_t shared = i * 16;
        const std::uint64_t unique =
            0x100000 + (static_cast<std::uint64_t>(t) << 32) + i * 8;
        if (set.insert(shared)) ++mine;
        if (set.insert(unique)) ++mine;
        if (!set.contains(shared) || !set.contains(unique)) {
          mine = 0;  // poison: lookups must never miss after insert
          break;
        }
      }
      ok.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread * 2);
  // Shared addresses count once, unique ones per thread.
  EXPECT_EQ(set.size(), kPerThread + kThreads * kPerThread);
}

TEST(Admission, FilterSuppressesRegionsWithConservation) {
  auto& session = Session::instance();
  session.clear_nodes();
  simnode::SimNode node(fast_node());
  session.register_sim_node(&node);

  SessionConfig c = test_config();
  c.filter_path = write_filter("adm_filter.txt", {"adm_noisy_leaf"});
  ASSERT_TRUE(session.start(c));
  const std::uint64_t noisy = session.synthetic_addr("adm_noisy_leaf");
  const std::uint64_t kept = session.synthetic_addr("adm_kept_work");
  for (int i = 0; i < 1000; ++i) {
    session.record_enter(kept);
    session.record_enter(noisy);
    session.record_exit(noisy);
    session.record_exit(kept);
  }
  ASSERT_TRUE(session.stop());
  session.clear_nodes();

  const trace::Trace& t = session.last_trace();
  EXPECT_EQ(count_addr(t, noisy), 0u);
  EXPECT_EQ(count_addr(t, kept), 2000u);
  EXPECT_EQ(t.run_stats.events_suppressed, 2000u);
  EXPECT_EQ(t.run_stats.calls_observed, 4000u);
  expect_conservation(t.run_stats);

  // The trace declares its filter, so lint treats suppression as
  // intentional: zero errors, and no filter-undeclared warning.
  EXPECT_TRUE(t.filter.present);
  EXPECT_EQ(t.filter.source, c.filter_path);
  ASSERT_EQ(t.filter.suppressed.size(), 1u);
  EXPECT_EQ(t.filter.suppressed[0], "adm_noisy_leaf");
  EXPECT_GE(t.filter.resolved, 1u);
  const analysis::LintReport report = analysis::lint_trace(t);
  EXPECT_EQ(report.error_count, 0u) << analysis::to_json(report);
  for (const auto& f : report.findings) {
    EXPECT_NE(f.check, "filter-undeclared") << f.message;
  }
}

TEST(Admission, SuppressedEventsWithoutDeclWarnInLint) {
  // Hand-build the inconsistent case: suppression counted, no FLTR.
  trace::Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.run_stats.present = true;
  t.run_stats.events_recorded = 0;
  t.run_stats.events_suppressed = 10;
  t.run_stats.calls_observed = 10;
  const analysis::LintReport report = analysis::lint_trace(t);
  bool warned = false;
  for (const auto& f : report.findings) {
    if (f.check == "filter-undeclared") warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST(Admission, ConservationViolationIsLintError) {
  trace::Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.run_stats.present = true;
  t.run_stats.events_recorded = 5;
  t.run_stats.calls_observed = 9;  // 4 calls vanished unaccounted
  analysis::LintReport report = analysis::lint_trace(t);
  bool found = false;
  for (const auto& f : report.findings) {
    if (f.check == "admission-conservation") {
      found = true;
      EXPECT_EQ(f.severity, analysis::Severity::kError);
    }
  }
  // (events_recorded=5 vs 0 fn events also errors; that's fine here.)
  EXPECT_TRUE(found);
}

TEST(Admission, RateCapThrottlesInPairs) {
  auto& session = Session::instance();
  session.clear_nodes();
  simnode::SimNode node(fast_node());
  session.register_sim_node(&node);

  SessionConfig c = test_config();
  c.rate_cap = 8;  // per function/thread/100 ms window
  ASSERT_TRUE(session.start(c));
  const std::uint64_t hot = session.synthetic_addr("adm_rate_hot");
  constexpr int kPairs = 5000;
  for (int i = 0; i < kPairs; ++i) {
    session.record_enter(hot);
    session.record_exit(hot);
  }
  ASSERT_TRUE(session.stop());
  session.clear_nodes();

  const trace::Trace& t = session.last_trace();
  std::uint64_t enters = 0, exits = 0;
  for (const auto& e : t.fn_events) {
    if (e.addr != hot) continue;
    if (e.kind == trace::FnEventKind::kEnter) ++enters;
    if (e.kind == trace::FnEventKind::kExit) ++exits;
  }
  // Pairs are admitted or dropped together — never an orphan half.
  EXPECT_EQ(enters, exits);
  EXPECT_GT(enters, 0u);
  EXPECT_LT(enters, static_cast<std::uint64_t>(kPairs));
  EXPECT_GT(t.run_stats.events_throttled, 0u);
  EXPECT_EQ(t.run_stats.calls_observed,
            static_cast<std::uint64_t>(kPairs) * 2);
  expect_conservation(t.run_stats);
  const analysis::LintReport report = analysis::lint_trace(t);
  EXPECT_EQ(report.error_count, 0u) << analysis::to_json(report);
}

TEST(Admission, MinDurationElidesShortLeafPairs) {
  auto& session = Session::instance();
  session.clear_nodes();
  simnode::SimNode node(fast_node());
  session.register_sim_node(&node);

  SessionConfig c = test_config();
  c.min_duration_ns = 1'000'000'000;  // 1 s: every leaf pair is "short"
  ASSERT_TRUE(session.start(c));
  const std::uint64_t outer = session.synthetic_addr("adm_elide_outer");
  const std::uint64_t leaf = session.synthetic_addr("adm_elide_leaf");
  constexpr int kPairs = 1000;
  session.record_enter(outer);
  for (int i = 0; i < kPairs; ++i) {
    session.record_enter(leaf);
    session.record_exit(leaf);
  }
  session.record_exit(outer);
  ASSERT_TRUE(session.stop());
  session.clear_nodes();

  const trace::Trace& t = session.last_trace();
  // Leaf pairs elide; the outer pair is not a leaf (its exit's cursor
  // moved past its enter... unless every inner pair elided, leaving the
  // outer enter newest again — elision then legitimately takes it too).
  EXPECT_EQ(count_addr(t, leaf), 0u);
  EXPECT_GE(t.run_stats.events_throttled,
            static_cast<std::uint64_t>(kPairs) * 2);
  expect_conservation(t.run_stats);
}

TEST(Admission, RingWrapKeepsNewestWithConservation) {
  auto& session = Session::instance();
  session.clear_nodes();
  simnode::SimNode node(fast_node());
  session.register_sim_node(&node);

  SessionConfig c = test_config();
  c.ring_events = 1;  // rounds up to the 2-chunk minimum (128 Ki events)
  ASSERT_TRUE(session.start(c));
  const std::uint64_t spin = session.synthetic_addr("adm_ring_spin");
  // 3 chunks' worth of events guarantees at least one recycle.
  constexpr std::uint64_t kCalls = 3 * 64 * 1024;
  for (std::uint64_t i = 0; i < kCalls / 2; ++i) {
    session.record_enter(spin);
    session.record_exit(spin);
  }
  ASSERT_TRUE(session.stop());
  session.clear_nodes();

  const trace::Trace& t = session.last_trace();
  const trace::RunStats& rs = t.run_stats;
  EXPECT_GT(rs.events_overwritten, 0u);
  EXPECT_EQ(rs.events_recorded, t.fn_events.size());
  EXPECT_LE(t.fn_events.size(), std::size_t{2} * 64 * 1024);
  EXPECT_EQ(rs.calls_observed, kCalls);
  expect_conservation(rs);
  // The retained window is the *newest* events: the last exit survives.
  ASSERT_FALSE(t.fn_events.empty());
  EXPECT_EQ(t.fn_events.back().kind, trace::FnEventKind::kExit);
  const analysis::LintReport report = analysis::lint_trace(t);
  EXPECT_EQ(report.error_count, 0u) << analysis::to_json(report);
}

TEST(Admission, RingSnapshotParsesAndExports) {
  auto& session = Session::instance();
  session.clear_nodes();
  simnode::SimNode node(fast_node());
  session.register_sim_node(&node);

  SessionConfig c = test_config();
  c.ring_events = 1;
  c.output_path = temp_path("adm_snap.trace");
  ASSERT_TRUE(session.start(c));
  const std::uint64_t work = session.synthetic_addr("adm_snap_work");
  for (int i = 0; i < 20000; ++i) {
    session.record_enter(work);
    session.record_exit(work);
  }
  auto snap_path = session.request_snapshot(10.0);
  ASSERT_TRUE(snap_path.is_ok()) << snap_path.message();
  // Recording re-arms after the snapshot; the run continues.
  ASSERT_TRUE(session.active());
  session.record_enter(work);
  session.record_exit(work);
  ASSERT_TRUE(session.stop());
  session.clear_nodes();
  EXPECT_EQ(session.last_trace().run_stats.ring_snapshots, 1u);

  // The snapshot is a valid trace-v2 file in its own right.
  auto parsed = trace::read_trace_file(snap_path.value());
  ASSERT_TRUE(parsed.is_ok()) << parsed.message();
  const trace::Trace& snap = parsed.value();
  EXPECT_GT(snap.fn_events.size(), 0u);
  EXPECT_EQ(snap.run_stats.ring_snapshots, 1u);
  expect_conservation(snap.run_stats);
  const analysis::LintReport report = analysis::lint_trace(snap);
  EXPECT_EQ(report.error_count, 0u) << analysis::to_json(report);

  // ... and it flows through both exporters.
  {
    std::ostringstream out;
    exporter::ExportRunOptions options;
    options.format = exporter::Format::kPerfetto;
    auto ran = exporter::run_export({snap_path.value()}, out, options);
    ASSERT_TRUE(ran.is_ok()) << ran.message();
    EXPECT_NE(out.str().find("adm_snap_work"), std::string::npos);
  }
  {
    std::ostringstream out;
    exporter::ExportRunOptions options;
    options.format = exporter::Format::kSpeedscope;
    options.spool_prefix = temp_path("adm_snap_spool");
    auto ran = exporter::run_export({snap_path.value()}, out, options);
    ASSERT_TRUE(ran.is_ok()) << ran.message();
    EXPECT_NE(out.str().find("adm_snap_work"), std::string::npos);
  }
  std::remove(snap_path.value().c_str());
  std::remove(c.output_path.c_str());
}

// N threads hammer the suppression set and their own rings while a
// snapshot is taken mid-run. The worker<->main handoff goes through a
// mutex/condvar barrier, so every buffered write happens-before the
// snapshot read — the test is exact under TSan while still exercising
// snapshot-while-threads-alive.
TEST(Admission, ConcurrentHammerWithSnapshot) {
  auto& session = Session::instance();
  session.clear_nodes();
  simnode::SimNode node(fast_node());
  session.register_sim_node(&node);

  SessionConfig c = test_config();
  c.filter_path = write_filter("adm_hammer_filter.txt", {"adm_hammer_cold"});
  c.ring_events = 1;
  c.output_path = temp_path("adm_hammer.trace");
  ASSERT_TRUE(session.start(c));
  const std::uint64_t cold = session.synthetic_addr("adm_hammer_cold");
  const std::uint64_t hot = session.synthetic_addr("adm_hammer_hot");

  constexpr int kThreads = 4;
  constexpr int kPairsPerPhase = 40 * 1024;  // > 1 chunk: rings wrap
  std::mutex mu;
  std::condition_variable cv;
  int checked_in = 0;
  bool resume = false;

  auto hammer = [&] {
    for (int i = 0; i < kPairsPerPhase; ++i) {
      session.record_enter(hot);
      session.record_enter(cold);  // suppressed: shared AddrSet probe
      session.record_exit(cold);
      session.record_exit(hot);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      hammer();
      {
        std::unique_lock<std::mutex> lock(mu);
        ++checked_in;
        cv.notify_all();
        cv.wait(lock, [&] { return resume; });
      }
      hammer();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return checked_in == kThreads; });
  }
  auto snap = session.request_snapshot(10.0);
  EXPECT_TRUE(snap.is_ok()) << snap.message();
  {
    std::unique_lock<std::mutex> lock(mu);
    resume = true;
    cv.notify_all();
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(session.stop());
  session.clear_nodes();

  const trace::Trace& t = session.last_trace();
  const std::uint64_t total_calls =
      std::uint64_t{kThreads} * 2 * 2 * kPairsPerPhase * 2;
  EXPECT_EQ(t.run_stats.calls_observed, total_calls);
  EXPECT_EQ(t.run_stats.events_suppressed, total_calls / 2);
  EXPECT_EQ(count_addr(t, cold), 0u);
  EXPECT_GT(t.run_stats.events_overwritten, 0u);
  expect_conservation(t.run_stats);
  if (snap.is_ok()) {
    auto parsed = trace::read_trace_file(snap.value());
    ASSERT_TRUE(parsed.is_ok()) << parsed.message();
    expect_conservation(parsed.value().run_stats);
    std::remove(snap.value().c_str());
  }
  std::remove(c.output_path.c_str());
}

TEST(Admission, ApiSnapshotRequiresActiveSession) {
  auto& session = Session::instance();
  ASSERT_FALSE(session.active());
  EXPECT_FALSE(tempest::snapshot(0.1).is_ok());
}

}  // namespace
