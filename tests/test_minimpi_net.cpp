// Interconnect model: latency, bandwidth, and ingress-link congestion.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "common/tsc.hpp"
#include "minimpi/runtime.hpp"

// TSan instrumentation adds tens of milliseconds of constant overhead
// to a 4-thread run; upper wall-clock bounds get matching headroom
// (they only need to stay clearly below the serialised alternative).
#if defined(__SANITIZE_THREAD__)
#define TEMPEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TEMPEST_UNDER_TSAN 1
#endif
#endif
#ifndef TEMPEST_UNDER_TSAN
#define TEMPEST_UNDER_TSAN 0
#endif

namespace {

using minimpi::Comm;
using minimpi::NetParams;
using minimpi::RunOptions;

double timed_run(int nranks, NetParams net, const minimpi::RankFn& fn) {
  RunOptions options;
  options.net = net;
  options.attach_to_session = false;
  const std::uint64_t t0 = tempest::rdtsc();
  minimpi::run(nranks, fn, options);
  return tempest::tsc_to_seconds(tempest::rdtsc() - t0);
}

TEST(MiniMpiNet, LatencyDelaysDelivery) {
  // 20 ping-pong rounds at 5 ms latency >= 40 x 5 ms = 0.2 s.
  const auto pingpong = [](Comm& comm) {
    double token = 1.0;
    for (int i = 0; i < 20; ++i) {
      if (comm.rank() == 0) {
        comm.send_n(1, 1, &token, 1);
        comm.recv_n(1, 2, &token, 1);
      } else {
        comm.recv_n(0, 1, &token, 1);
        comm.send_n(0, 2, &token, 1);
      }
    }
  };
  const double instant = timed_run(2, {}, pingpong);
  const double latent = timed_run(2, {5e-3, 0.0}, pingpong);
  EXPECT_GT(latent, 0.18);
  EXPECT_LT(instant, 0.05);
}

TEST(MiniMpiNet, BandwidthScalesWithMessageSize) {
  // 1 MB at 10 MB/s takes ~100 ms; 100 KB takes ~10 ms.
  const auto transfer = [](std::size_t bytes) {
    return [bytes](Comm& comm) {
      std::vector<std::uint8_t> buf(bytes, 0x5a);
      if (comm.rank() == 0) {
        comm.send(1, 1, buf.data(), buf.size());
      } else {
        comm.recv(0, 1, buf.data(), buf.size());
      }
    };
  };
  const NetParams slow{0.0, 10e6};
  const double big = timed_run(2, slow, transfer(1'000'000));
  const double small = timed_run(2, slow, transfer(100'000));
  EXPECT_GT(big, 0.08);
  EXPECT_LT(small, big);
  EXPECT_GT(big, 5.0 * small);
}

TEST(MiniMpiNet, IngressLinkSerialisesConcurrentSenders) {
  // 3 senders each push 500 KB to rank 0 at 10 MB/s: a per-receiver
  // link must take ~150 ms total (serialised), not ~50 ms (parallel).
  const auto fan_in = [](Comm& comm) {
    std::vector<std::uint8_t> buf(500'000, 1);
    if (comm.rank() == 0) {
      for (int src = 1; src < comm.size(); ++src) {
        comm.recv(src, 1, buf.data(), buf.size());
      }
    } else {
      comm.send(0, 1, buf.data(), buf.size());
    }
  };
  const double elapsed = timed_run(4, {0.0, 10e6}, fan_in);
  EXPECT_GT(elapsed, 0.12);  // 3 x 50 ms serialised
}

TEST(MiniMpiNet, DistinctDestinationsDoNotSerialise) {
  // Rank 0 sends 500 KB to each of 3 receivers: separate ingress links
  // drain concurrently, so the whole exchange is ~one transfer time and
  // every receiver finishes at ~the same moment. A serialised link
  // would stagger the finishes by one 50 ms transfer each.
  std::array<std::uint64_t, 4> done{};
  const auto fan_out = [&done](Comm& comm) {
    std::vector<std::uint8_t> buf(500'000, 1);
    if (comm.rank() == 0) {
      for (int dst = 1; dst < comm.size(); ++dst) {
        comm.send(dst, 1, buf.data(), buf.size());
      }
    } else {
      comm.recv(0, 1, buf.data(), buf.size());
      done[static_cast<std::size_t>(comm.rank())] = tempest::rdtsc();
    }
  };
  const double elapsed = timed_run(4, {0.0, 10e6}, fan_out);
  EXPECT_GT(elapsed, 0.04);
  const auto [lo, hi] = std::minmax({done[1], done[2], done[3]});
  // Sender-side payload copies, machine load, and sanitizer overhead
  // can stagger the finishes by a few tens of ms — but a serialised
  // link puts two full 50 ms transfers between the first and last
  // receiver (>= 100 ms spread), so 80 ms separates the designs under
  // any conditions we run in.
  EXPECT_LT(tempest::tsc_to_seconds(hi - lo), 0.08);
#if !TEMPEST_UNDER_TSAN
  // Wall-clock total only without sanitizer overhead: ~50 ms + spawn,
  // clearly under the 150 ms a serialised exchange needs.
  EXPECT_LT(elapsed, 0.12);
#endif
}

TEST(MiniMpiNet, NpbStillVerifiesUnderSlowNetwork) {
  // Correctness is independent of the interconnect model.
  RunOptions options;
  options.net = {1e-4, 50e6};
  options.attach_to_session = false;
  double first = 0.0, second = 0.0;
  minimpi::run(2, [&](Comm& comm) {
    double v = comm.rank() + 1.0;
    comm.allreduce_sum_inplace(&v, 1);
    if (comm.rank() == 0) first = v;
  }, options);
  minimpi::run(2, [&](Comm& comm) {
    double v = comm.rank() + 1.0;
    comm.allreduce_sum_inplace(&v, 1);
    if (comm.rank() == 0) second = v;
  });
  EXPECT_DOUBLE_EQ(first, 3.0);
  EXPECT_DOUBLE_EQ(first, second);
}

}  // namespace
