// Property tests on timeline + attribution over randomly generated,
// well-formed call trees.
#include <gtest/gtest.h>

#include <random>

#include "parser/parse.hpp"
#include "parser/timeline.hpp"

namespace {

using namespace tempest::parser;
using tempest::trace::FnEvent;
using tempest::trace::FnEventKind;
using tempest::trace::Trace;

/// Generate a random balanced call tree on one thread: returns events
/// and the end timestamp.
struct TreeGen {
  std::mt19937 rng;
  std::vector<FnEvent> events;
  std::uint64_t now = 0;

  explicit TreeGen(unsigned seed) : rng(seed) {}

  void call(std::uint64_t addr, int depth) {
    events.push_back({now, addr, 0, 0, FnEventKind::kEnter});
    std::uniform_int_distribution<std::uint64_t> dt(1, 50);
    std::uniform_int_distribution<int> children(0, depth > 0 ? 3 : 0);
    std::uniform_int_distribution<std::uint64_t> addr_dist(1, 6);
    now += dt(rng);
    const int n = children(rng);
    for (int c = 0; c < n; ++c) {
      call(addr_dist(rng), depth - 1);
      now += dt(rng);
    }
    events.push_back({now, addr, 0, 0, FnEventKind::kExit});
    now += dt(rng);
  }
};

class ParserProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParserProperty, InclusiveTimesRespectNesting) {
  TreeGen gen(static_cast<unsigned>(GetParam()));
  gen.call(100, 4);  // root addr 100
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.threads = {{0, 0, 0}};
  t.fn_events = gen.events;
  t.sort_by_time();

  TimelineDiagnostics diag;
  const TimelineMap timeline = build_timeline(t, &diag);
  EXPECT_EQ(diag.unmatched_exits, 0u);
  EXPECT_EQ(diag.force_closed, 0u);

  const auto& root = timeline.at({0, 100});
  for (const auto& [key, fn] : timeline) {
    // Every function's inclusive time fits inside the root's.
    EXPECT_LE(fn.total_ticks, root.total_ticks) << "addr " << key.second;
    // Merged intervals are sorted and disjoint.
    for (std::size_t i = 1; i < fn.merged.size(); ++i) {
      EXPECT_GT(fn.merged[i].begin, fn.merged[i - 1].end - 1);
    }
    // total_ticks equals the union length (single thread: merged union
    // is exactly the per-thread intervals).
    std::uint64_t union_len = 0;
    for (const auto& iv : fn.merged) union_len += iv.length();
    EXPECT_EQ(fn.total_ticks, union_len) << "addr " << key.second;
  }
}

TEST_P(ParserProperty, EverySampleInsideRootAttributesToRoot) {
  TreeGen gen(static_cast<unsigned>(GetParam()) + 77);
  gen.call(100, 3);
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.nodes = {{0, "n"}};
  t.sensors = {{0, 0, "cpu", 1.0}};
  t.threads = {{0, 0, 0}};
  t.fn_events = gen.events;

  // Samples sprinkled across (and slightly beyond) the run.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 99);
  std::uniform_int_distribution<std::uint64_t> when(0, gen.now + 20);
  std::size_t inside_root = 0;
  const std::uint64_t root_begin = gen.events.front().tsc;
  std::uint64_t root_end = 0;
  for (const auto& e : gen.events) {
    if (e.addr == 100 && e.kind == FnEventKind::kExit) root_end = e.tsc;
  }
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t at = when(rng);
    t.temp_samples.push_back({at, 40.0, 0, 0});
    if (at >= root_begin && at < root_end) ++inside_root;
  }
  t.sort_by_time();

  ParseOptions options;
  options.profile.min_samples_significant = 0;
  auto parsed = parse_trace(std::move(t), options);
  ASSERT_TRUE(parsed.is_ok());
  const auto* root = parsed.value().find(0, "0x64");  // addr 100 unresolved
  ASSERT_NE(root, nullptr);
  ASSERT_FALSE(root->sensors.empty());
  EXPECT_EQ(root->sensors.front().sample_count, inside_root);
}

TEST_P(ParserProperty, ChildSampleCountsNeverExceedAncestors) {
  TreeGen gen(static_cast<unsigned>(GetParam()) + 31);
  gen.call(100, 4);
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.nodes = {{0, "n"}};
  t.sensors = {{0, 0, "cpu", 1.0}};
  t.threads = {{0, 0, 0}};
  t.fn_events = gen.events;
  for (std::uint64_t at = 0; at < gen.now; at += 7) {
    t.temp_samples.push_back({at, 42.0, 0, 0});
  }
  t.sort_by_time();

  ParseOptions options;
  options.profile.min_samples_significant = 0;
  auto parsed = parse_trace(std::move(t), options);
  ASSERT_TRUE(parsed.is_ok());
  const auto& fns = parsed.value().nodes[0].functions;
  ASSERT_FALSE(fns.empty());
  // Functions are sorted by inclusive time; the top one is the root.
  // Inclusive attribution: nobody collects more samples than the root.
  const std::size_t root_samples =
      fns.front().sensors.empty() ? 0 : fns.front().sensors.front().sample_count;
  for (const auto& fn : fns) {
    if (fn.sensors.empty()) continue;
    EXPECT_LE(fn.sensors.front().sample_count, root_samples) << fn.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserProperty, ::testing::Range(0, 15));

}  // namespace
