// Interactive trace export: clock correlation math, the span scrubber's
// nesting policy, Perfetto / speedscope document structure, and the
// byte-identity of the streaming and batch export paths (single file
// and 4-rank fan-in).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "export/clock.hpp"
#include "export/export.hpp"
#include "export/perfetto.hpp"
#include "export/run.hpp"
#include "export/speedscope.hpp"
#include "pipeline/source.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"

namespace {

using namespace tempest;
using namespace tempest::trace;
namespace pipeline = tempest::pipeline;
namespace exporter = tempest::exporter;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

/// One rank's trace with a rank-local clock `skew` ticks behind the
/// global clock, pinned by syncs at both ends (same shape as the
/// pipeline tests' multi-rank golden).
Trace rank_trace(std::uint16_t rank, std::uint64_t skew) {
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.executable = "";  // no symbol table: names fall back to hex/synthetic
  t.nodes = {{rank, "rank" + std::to_string(rank)}};
  t.sensors = {{rank, 0, "cpu", 1.0}};
  const std::uint32_t tid = rank;
  t.threads = {{tid, rank, 0}};

  const std::uint64_t base = 1000 + rank * 13;
  const auto local = [&](std::uint64_t global) { return global - skew; };
  const std::uint64_t kFnMain = 0x1000, kFnWork = 0x2000 + rank;
  t.fn_events = {
      {local(base + 0), kFnMain, tid, rank, FnEventKind::kEnter},
      {local(base + 100), kFnWork, tid, rank, FnEventKind::kEnter},
      {local(base + 700), kFnWork, tid, rank, FnEventKind::kExit},
      {local(base + 900), kFnMain, tid, rank, FnEventKind::kExit},
  };
  for (std::uint64_t g = base + 40; g < base + 900; g += 200) {
    t.temp_samples.push_back({local(g), 40.0 + rank, rank, 0});
  }
  t.clock_syncs = {{local(base), base, rank},
                   {local(base + 1000), base + 1000, rank}};
  return t;
}

/// A single-node trace exercising every scrubber branch: a force-closed
/// inner frame, an orphan exit, an unclosed frame at trace end, and a
/// synthetic region name.
Trace unbalanced_trace() {
  Trace t;
  t.tsc_ticks_per_second = 1e6;  // 1 tick = 1 us
  t.nodes = {{0, "host"}};
  t.sensors = {{0, 0, "cpu", 1.0}};
  t.threads = {{0, 0, 0}};
  const std::uint64_t kRegion = kSyntheticAddrBase + 1;
  t.synthetic_symbols = {{kRegion, "my region"}};
  t.fn_events = {
      {10, 0x1000, 0, 0, FnEventKind::kEnter},
      {20, 0x2000, 0, 0, FnEventKind::kEnter},
      {30, 0x1000, 0, 0, FnEventKind::kExit},  // closes 0x2000 first (forced)
      {40, 0x2000, 0, 0, FnEventKind::kExit},  // orphan: dropped
      {50, kRegion, 0, 0, FnEventKind::kEnter},  // open at end: force-closed
  };
  t.temp_samples = {{15, 41.0, 0, 0}, {35, 42.0, 0, 0}, {55, 43.0, 0, 0}};
  t.sort_by_time();
  return t;
}

TEST(ClockCorrelator, PureOffsetSkewReportedInMicroseconds) {
  // 1 tick = 1 us; the node clock runs exactly 500 ticks behind.
  std::vector<ClockSync> syncs = {{1000, 1500, 1}, {2000, 2500, 1}};
  exporter::ClockCorrelator correlator(1e6, syncs);
  ASSERT_EQ(correlator.ranks().size(), 1u);
  const exporter::RankClock& rank = correlator.ranks()[0];
  EXPECT_EQ(rank.node_id, 1);
  EXPECT_EQ(rank.sync_count, 2u);
  EXPECT_NEAR(rank.skew_us, 500.0, 1e-6);
  EXPECT_NEAR(rank.drift_ppm, 0.0, 1e-6);
  EXPECT_NEAR(rank.residual_us, 0.0, 1e-6);
  EXPECT_NEAR(correlator.max_residual_us(), 0.0, 1e-6);
}

TEST(ClockCorrelator, DriftReportedInPartsPerMillion) {
  // Global gains 1000 ticks over 1e6: slope 1.001 = 1000 ppm fast.
  std::vector<ClockSync> syncs = {{0, 0, 0}, {1000000, 1001000, 0}};
  exporter::ClockCorrelator correlator(1e6, syncs);
  ASSERT_EQ(correlator.ranks().size(), 1u);
  EXPECT_NEAR(correlator.ranks()[0].drift_ppm, 1000.0, 1e-3);
  EXPECT_NEAR(correlator.ranks()[0].residual_us, 0.0, 1e-6);
}

TEST(ClockCorrelator, NonlinearSyncsLeaveResidualAndTriggerWarning) {
  // Three observations no line explains: the middle one is 100 ticks
  // off any affine fit through the endpoints.
  std::vector<ClockSync> syncs = {{0, 0, 0}, {1000, 1100, 0}, {2000, 2000, 0}};
  exporter::ClockCorrelator correlator(1e6, syncs);
  EXPECT_GT(correlator.max_residual_us(), 10.0);
  // Residual above the sample period: warn. Below: quiet.
  EXPECT_EQ(exporter::correlation_warnings(correlator, 1.0).size(), 1u);
  EXPECT_TRUE(exporter::correlation_warnings(correlator, 1e9).empty());
  EXPECT_TRUE(exporter::correlation_warnings(correlator, 0.0).empty());
}

TEST(ClockCorrelator, BaseRebasesTimestampsToMicroseconds) {
  exporter::ClockCorrelator correlator(2e6, {});  // 2 ticks per us
  EXPECT_FALSE(correlator.has_base());
  correlator.set_base(1000);
  EXPECT_TRUE(correlator.has_base());
  EXPECT_DOUBLE_EQ(correlator.to_us(1000), 0.0);
  EXPECT_DOUBLE_EQ(correlator.to_us(1200), 100.0);
  EXPECT_DOUBLE_EQ(correlator.to_us(800), -100.0);  // pre-base maps negative
  EXPECT_DOUBLE_EQ(correlator.ticks_to_us(500.0), 250.0);
}

TEST(SamplePeriodEstimator, TracksTightestPerSensorMeanGap) {
  exporter::SamplePeriodEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.period_ticks(), 0.0);
  for (std::uint64_t tsc : {0, 100, 200}) {
    estimator.observe({tsc, 40.0, 0, 0});  // sensor 0: period 100
  }
  for (std::uint64_t tsc : {0, 300}) {
    estimator.observe({tsc, 40.0, 0, 1});  // sensor 1: period 300
  }
  EXPECT_DOUBLE_EQ(estimator.period_ticks(), 100.0);
}

TEST(SpanScrubber, DropsOrphansAndForceClosesInnerFrames) {
  exporter::SpanScrubber scrubber;
  const exporter::SpanScrubber::ThreadKey key{0, 0};
  std::vector<std::uint64_t> to_close;

  EXPECT_FALSE(scrubber.close(key, 0x1000, &to_close));  // nothing open

  scrubber.push(key, 0x1000);
  scrubber.push(key, 0x2000);
  scrubber.push(key, 0x3000);
  ASSERT_TRUE(scrubber.close(key, 0x1000, &to_close));
  // Innermost first: 0x3000 and 0x2000 are force-closures, then 0x1000.
  ASSERT_EQ(to_close.size(), 3u);
  EXPECT_EQ(to_close[0], 0x3000u);
  EXPECT_EQ(to_close[1], 0x2000u);
  EXPECT_EQ(to_close[2], 0x1000u);

  EXPECT_FALSE(scrubber.close(key, 0x2000, &to_close));  // now orphaned
  EXPECT_TRUE(to_close.empty());
}

TEST(PerfettoExporter, BalancedDocumentFromUnbalancedInput) {
  const Trace t = unbalanced_trace();
  pipeline::MemoryTraceSource source(t);
  std::ostringstream out;
  exporter::PerfettoExporter sink(
      out, exporter::ClockCorrelator(t.tsc_ticks_per_second, {}));
  const Status ran = pipeline::run_pipeline(&source, {}, {&sink});
  ASSERT_TRUE(ran) << ran.message();

  const std::string json = out.str();
  // Every emitted B has an E: 3 enters survive (one orphan exit
  // dropped), so 3 opens, 3 closes.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"C\""), 3u);  // temp samples
  // Name precedence: synthetic region resolves, code addresses render
  // hex without a symbol table.
  EXPECT_NE(json.find("\"name\":\"my region\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"0x1000\""), std::string::npos);
  // Track naming metadata and the correlation/accounting trailer.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"metadata\""), std::string::npos);

  EXPECT_EQ(sink.stats().spans_dropped, 1u);
  // 0x2000 closed by 0x1000's exit + the region open at trace end.
  EXPECT_EQ(sink.stats().spans_force_closed, 2u);
  EXPECT_EQ(sink.stats().events_exported, 9u);  // 3 B + 3 E + 3 C
  EXPECT_EQ(sink.stats().bytes_written, out.str().size());
}

TEST(SpeedscopeExporter, BalancedEventedProfileWithSharedFrames) {
  const Trace t = unbalanced_trace();
  pipeline::MemoryTraceSource source(t);
  std::ostringstream out;
  const std::string spool_prefix = temp_path("ss_unbalanced");
  exporter::SpeedscopeExporter sink(
      out, exporter::ClockCorrelator(t.tsc_ticks_per_second, {}),
      spool_prefix);
  const Status ran = pipeline::run_pipeline(&source, {}, {&sink});
  ASSERT_TRUE(ran) << ran.message();

  const std::string json = out.str();
  EXPECT_NE(json.find("speedscope.app/file-format-schema.json"),
            std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"type\":\"O\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"type\":\"C\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"type\":\"evented\""), 1u);
  EXPECT_NE(json.find("\"name\":\"my region\""), std::string::npos);
  EXPECT_EQ(sink.stats().spans_dropped, 1u);
  EXPECT_EQ(sink.stats().spans_force_closed, 2u);

  // The per-thread spool is scratch, removed after stitching.
  std::ifstream spool(spool_prefix + ".t0_0.spool");
  EXPECT_FALSE(spool.is_open());
}

TEST(RunExport, StreamAndBatchBytesIdentical) {
  Trace t = rank_trace(0, 25);
  t.sort_by_time();
  const std::string path = temp_path("export_eq.trace");
  ASSERT_TRUE(write_trace_file(path, t));

  for (const exporter::Format format :
       {exporter::Format::kPerfetto, exporter::Format::kSpeedscope}) {
    exporter::ExportRunOptions options;
    options.format = format;
    options.spool_prefix = temp_path("export_eq_spool");

    std::ostringstream batch_out, stream_out;
    options.stream = false;
    auto batch = exporter::run_export({path}, batch_out, options);
    ASSERT_TRUE(batch.is_ok()) << batch.message();
    options.stream = true;
    auto stream = exporter::run_export({path}, stream_out, options);
    ASSERT_TRUE(stream.is_ok()) << stream.message();

    EXPECT_EQ(batch_out.str(), stream_out.str());
    EXPECT_GT(batch.value().stats.events_exported, 0u);
    EXPECT_EQ(batch.value().stats.bytes_written,
              stream.value().stats.bytes_written);
  }
}

TEST(RunExport, FourRankFanInCorrelatesClocks) {
  std::vector<std::string> paths;
  for (std::uint16_t r = 0; r < 4; ++r) {
    Trace t = rank_trace(r, 40 * r);
    t.sort_by_time();
    paths.push_back(temp_path("export_rank" + std::to_string(r) + ".trace"));
    ASSERT_TRUE(write_trace_file(paths[r], t));
  }

  exporter::ExportRunOptions options;
  std::ostringstream out;
  auto ran = exporter::run_export(paths, out, options);
  ASSERT_TRUE(ran.is_ok()) << ran.message();

  const std::string json = out.str();
  // One process track per rank, all four event sets present, balanced.
  for (int r = 0; r < 4; ++r) {
    EXPECT_NE(json.find("\"name\":\"rank " + std::to_string(r)),
              std::string::npos);
    EXPECT_NE(json.find("\"node_id\":" + std::to_string(r)),
              std::string::npos);
  }
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 8u);  // 2 fns x 4 ranks
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 8u);
  // The 40-tick-per-rank skews the fits removed show up as metadata.
  EXPECT_NE(json.find("\"clock_correlation\""), std::string::npos);
  EXPECT_NE(json.find("\"max_residual_us\""), std::string::npos);
  EXPECT_EQ(ran.value().stats.spans_dropped, 0u);
}

TEST(RunExport, RejectsBadInputs) {
  EXPECT_FALSE(exporter::run_export({}, std::cout, {}).is_ok());

  exporter::ExportRunOptions options;
  options.align = false;
  auto two = exporter::run_export({"a.trace", "b.trace"}, std::cout, options);
  ASSERT_FALSE(two.is_ok());
  EXPECT_NE(two.message().find("--no-align"), std::string::npos);

  exporter::ExportRunOptions speedscope;
  speedscope.format = exporter::Format::kSpeedscope;  // no spool prefix
  EXPECT_FALSE(exporter::run_export({"a.trace"}, std::cout, speedscope).is_ok());

  exporter::ExportRunOptions ok;
  auto missing = exporter::run_export({temp_path("absent.trace")}, std::cout, ok);
  EXPECT_FALSE(missing.is_ok());
}

TEST(RunExport, ParseFormatNamesAndAliases) {
  exporter::Format format = exporter::Format::kSpeedscope;
  EXPECT_TRUE(exporter::parse_format("perfetto", &format));
  EXPECT_EQ(format, exporter::Format::kPerfetto);
  EXPECT_TRUE(exporter::parse_format("chrome", &format));
  EXPECT_EQ(format, exporter::Format::kPerfetto);
  EXPECT_TRUE(exporter::parse_format("speedscope", &format));
  EXPECT_EQ(format, exporter::Format::kSpeedscope);
  EXPECT_FALSE(exporter::parse_format("svg", &format));
}

}  // namespace
