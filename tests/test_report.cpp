// Report formats: the Fig 2a standard output layout, CSV series,
// ASCII plots, JSON.
#include <gtest/gtest.h>

#include <sstream>

#include "report/ascii_plot.hpp"
#include "report/json.hpp"
#include "report/series.hpp"
#include "report/stdout_format.hpp"

namespace {

using namespace tempest;
using namespace tempest::report;

parser::RunProfile sample_profile() {
  parser::RunProfile profile;
  profile.unit = TempUnit::kFahrenheit;
  profile.duration_s = 60.32;

  parser::NodeProfile node;
  node.node_id = 0;
  node.hostname = "node1";
  node.duration_s = 60.32;

  parser::FunctionProfile main_fn;
  main_fn.name = "main";
  main_fn.total_time_s = 60.319929;
  main_fn.calls = 1;
  main_fn.significant = true;
  parser::SensorProfile s1;
  s1.sensor_id = 0;
  s1.name = "sensor1";
  s1.sample_count = 240;
  s1.stats = {240, 114.0, 120.72, 124.0, 2.73, 7.45, 121.0, 124.0};
  parser::SensorProfile s2;
  s2.sensor_id = 1;
  s2.name = "sensor2";
  s2.sample_count = 240;
  s2.stats = {240, 94.0, 95.12, 97.0, 0.56, 0.32, 95.0, 95.0};
  main_fn.sensors = {s1, s2};

  parser::FunctionProfile foo2;
  foo2.name = "foo2";
  foo2.total_time_s = 0.000159;
  foo2.calls = 2;
  foo2.significant = false;
  foo2.sensors = {s1};

  node.functions = {main_fn, foo2};
  profile.nodes = {node};
  return profile;
}

TEST(StdoutFormat, MatchesPaperLayout) {
  std::ostringstream out;
  print_profile(out, sample_profile());
  const std::string text = out.str();
  EXPECT_NE(text.find("Function: main"), std::string::npos);
  EXPECT_NE(text.find("Total Time(sec): 60.319929"), std::string::npos);
  // Header row with the seven statistics, in the paper's order.
  EXPECT_NE(text.find("Min"), std::string::npos);
  const auto min_pos = text.find("Min");
  EXPECT_LT(min_pos, text.find("Avg"));
  EXPECT_LT(text.find("Avg"), text.find("Max"));
  EXPECT_LT(text.find("Max"), text.find("Sdv"));
  EXPECT_LT(text.find("Sdv"), text.find("Var"));
  EXPECT_LT(text.find("Var"), text.find("Med"));
  EXPECT_LT(text.find("Med"), text.find("Mod"));
  // Sensor rows with 2-decimal values.
  EXPECT_NE(text.find("sensor1"), std::string::npos);
  EXPECT_NE(text.find("120.72"), std::string::npos);
  EXPECT_NE(text.find("114.00"), std::string::npos);
  // Insignificant marker on foo2.
  EXPECT_NE(text.find("[thermal data not significant]"), std::string::npos);
}

TEST(StdoutFormat, OptionsFilterOutput) {
  std::ostringstream out;
  StdoutOptions options;
  options.show_insignificant = false;
  options.max_functions = 1;
  options.node_headers = false;
  print_profile(out, sample_profile(), options);
  const std::string text = out.str();
  EXPECT_NE(text.find("Function: main"), std::string::npos);
  EXPECT_EQ(text.find("foo2"), std::string::npos);
  EXPECT_EQ(text.find("== Node"), std::string::npos);
}

trace::Trace series_trace() {
  trace::Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.nodes = {{0, "node1"}, {1, "node2"}};
  t.sensors = {{0, 0, "cpu", 1.0}, {1, 0, "cpu", 1.0}};
  t.threads = {{0, 0, 0}};
  t.synthetic_symbols = {{trace::kSyntheticAddrBase, "phase1"}};
  t.fn_events = {{0, trace::kSyntheticAddrBase, 0, 0, trace::FnEventKind::kEnter},
                 {2'000'000'000, trace::kSyntheticAddrBase, 0, 0, trace::FnEventKind::kExit}};
  for (int i = 0; i < 8; ++i) {
    t.temp_samples.push_back(
        {static_cast<std::uint64_t>(i) * 500'000'000ULL, 30.0 + i, 0, 0});
    t.temp_samples.push_back(
        {static_cast<std::uint64_t>(i) * 500'000'000ULL, 28.0, 1, 0});
  }
  t.sort_by_time();
  return t;
}

TEST(Series, ExtractsPerNodeCurvesAndSpans) {
  const auto series = extract_series(series_trace(), TempUnit::kCelsius, {"phase1"});
  ASSERT_EQ(series.sensors.size(), 2u);
  EXPECT_EQ(series.sensors[0].node_name, "node1");
  EXPECT_EQ(series.sensors[0].points.size(), 8u);
  EXPECT_DOUBLE_EQ(series.sensors[0].points.front().temp, 30.0);
  EXPECT_DOUBLE_EQ(series.sensors[0].points.back().temp, 37.0);
  EXPECT_NEAR(series.duration_s, 3.5, 1e-9);
  ASSERT_EQ(series.spans.size(), 1u);
  EXPECT_EQ(series.spans[0].name, "phase1");
  EXPECT_NEAR(series.spans[0].end_s - series.spans[0].begin_s, 2.0, 1e-9);
}

TEST(Series, FahrenheitConversionAppliesToPoints) {
  const auto series = extract_series(series_trace(), TempUnit::kFahrenheit);
  EXPECT_DOUBLE_EQ(series.sensors[0].points.front().temp, 86.0);
  EXPECT_TRUE(series.spans.empty());  // no names requested
}

TEST(Series, CsvHasHeaderRowsAndSpans) {
  const auto series = extract_series(series_trace(), TempUnit::kCelsius, {"phase1"});
  std::ostringstream out;
  write_series_csv(out, series);
  const std::string text = out.str();
  EXPECT_NE(text.find("time_s,node,sensor,temp_C"), std::string::npos);
  EXPECT_NE(text.find("node1,cpu,30"), std::string::npos);
  EXPECT_NE(text.find("# span,0,phase1"), std::string::npos);
}

TEST(AsciiPlot, RendersChartsPerNode) {
  const auto series = extract_series(series_trace(), TempUnit::kFahrenheit, {"phase1"});
  std::ostringstream out;
  plot_series(out, series);
  const std::string text = out.str();
  EXPECT_NE(text.find("--- node1 ---"), std::string::npos);
  EXPECT_NE(text.find("--- node2 ---"), std::string::npos);
  EXPECT_NE(text.find("legend: *=cpu"), std::string::npos);
  EXPECT_NE(text.find("spans: phase1"), std::string::npos);
  EXPECT_NE(text.find("(F)"), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesDoesNotCrash) {
  std::ostringstream out;
  plot_series(out, ThermalSeries{});
  EXPECT_NE(out.str().find("no temperature samples"), std::string::npos);
}

TEST(Json, WellFormedAndComplete) {
  std::ostringstream out;
  write_profile_json(out, sample_profile());
  const std::string text = out.str();
  EXPECT_EQ(text.front(), '{');
  EXPECT_EQ(text.back(), '}');
  EXPECT_NE(text.find("\"unit\":\"F\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"main\""), std::string::npos);
  EXPECT_NE(text.find("\"significant\":false"), std::string::npos);
  EXPECT_NE(text.find("\"avg\":120.72"), std::string::npos);
  // Balanced braces/brackets.
  int depth = 0;
  for (char c : text) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Json, EscapesSpecialCharacters) {
  parser::RunProfile profile;
  parser::NodeProfile node;
  node.hostname = "evil\"node\\with\nnewline";
  profile.nodes.push_back(node);
  std::ostringstream out;
  write_profile_json(out, profile);
  EXPECT_NE(out.str().find("evil\\\"node\\\\with\\nnewline"), std::string::npos);
}

}  // namespace
