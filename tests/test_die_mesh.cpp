// The heavy-weight die mesh: hot-spot localisation, physical
// invariants, and agreement with the compact model in aggregate.
#include <gtest/gtest.h>

#include "thermal/cpu_package.hpp"
#include "thermal/die_mesh.hpp"

namespace {

using namespace tempest::thermal;

TEST(DieMesh, DefaultFloorplanCoversTheDie) {
  const auto plan = default_floorplan(8, 8);
  ASSERT_EQ(plan.size(), 5u);
  // Every cell belongs to exactly one unit.
  std::vector<int> owners(64, 0);
  for (const auto& u : plan) {
    for (int y = u.y0; y <= u.y1; ++y) {
      for (int x = u.x0; x <= u.x1; ++x) ++owners[static_cast<std::size_t>(y * 8 + x)];
    }
  }
  for (int c = 0; c < 64; ++c) EXPECT_EQ(owners[static_cast<std::size_t>(c)], 1) << c;
}

TEST(DieMesh, HotUnitLocalisesTheHotSpot) {
  DieMesh mesh{DieMeshParams{}};
  mesh.set_unit_power("core0.FPU", 12.0);  // only one unit burns
  mesh.set_unit_power("L2", 1.0);
  mesh.settle();
  const auto [hx, hy] = mesh.hottest_xy();
  // core0.FPU occupies columns [2,3], rows [2,7] on the 8x8 default plan.
  EXPECT_GE(hx, 2);
  EXPECT_LE(hx, 3);
  EXPECT_GE(hy, 2);
  // The gradient across the die is visible — the detail a single-diode
  // (or compact per-core) model cannot provide.
  EXPECT_GT(mesh.hottest_cell(), mesh.coolest_cell() + 1.0);
}

TEST(DieMesh, MirrorSymmetricLoadHeatsMirrorCellsEqually) {
  // The default floorplan mirrors core0.FPU (x 2-3) onto core1.ALU
  // (x 4-5) under x -> 7-x; loading that pair equally must produce a
  // left-right symmetric temperature field.
  DieMesh mesh{DieMeshParams{}};
  mesh.set_unit_power("core0.FPU", 8.0);
  mesh.set_unit_power("core1.ALU", 8.0);
  mesh.settle();
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_NEAR(mesh.cell_temp(x, y), mesh.cell_temp(7 - x, y), 1e-6)
          << x << "," << y;
    }
  }
}

TEST(DieMesh, AggregateAgreesWithCompactModelRegime) {
  // Same total power through comparable vertical/sink parameters: the
  // mesh's mean die temperature lands in the compact model's range
  // (the fidelity claim: the middle-weight model loses detail, not
  // aggregate truth).
  PackageParams compact;
  compact.cores = 2;
  CpuPackage pkg(compact);
  pkg.settle_at({1.0, 1.0});
  const double compact_die = pkg.die_temp(0);

  DieMeshParams mp;
  mp.vertical_g_w_per_k = compact.g_die_spreader * 2;  // two cores' worth
  mp.g_spreader_sink = compact.g_spreader_sink;
  mp.g_sink_ambient = 1.9;  // compact fan at 3000 rpm + chassis path
  DieMesh mesh(mp);
  const double total = pkg.power_model().busy_watts(0) * 2;
  mesh.set_unit_power("core0.ALU", total * 0.2);
  mesh.set_unit_power("core0.FPU", total * 0.3);
  mesh.set_unit_power("core1.ALU", total * 0.2);
  mesh.set_unit_power("core1.FPU", total * 0.3);
  mesh.settle();
  EXPECT_NEAR(mesh.mean_die_temp(), compact_die, 6.0);
}

TEST(DieMesh, StateSizeScalesWithResolution) {
  DieMeshParams small;
  small.width = small.height = 4;
  DieMeshParams big;
  big.width = big.height = 16;
  big.floorplan = default_floorplan(16, 16);
  EXPECT_EQ(DieMesh(small).state_size(), 4u * 4u + 2u);
  EXPECT_EQ(DieMesh(big).state_size(), 16u * 16u + 2u);
}

TEST(DieMesh, InvalidConfigsRejected) {
  DieMeshParams bad;
  bad.width = 1;
  EXPECT_THROW(DieMesh{bad}, std::invalid_argument);

  DieMeshParams out_of_bounds;
  out_of_bounds.floorplan = {{"rogue", 0, 0, 99, 99}};
  EXPECT_THROW(DieMesh{out_of_bounds}, std::invalid_argument);

  DieMesh mesh{DieMeshParams{}};
  EXPECT_THROW(mesh.set_unit_power("no_such_unit", 1.0), std::out_of_range);
}

TEST(DieMesh, TransientHeatingIsLocalisedBeforeItSpreads) {
  DieMesh mesh{DieMeshParams{}};
  mesh.set_unit_power("core1.FPU", 15.0);
  mesh.advance(0.05);  // brief burst
  // Early on, the burning unit leads the far corner by more than it
  // will at steady state relative to its own rise (diffusion lag).
  const double fpu_early = mesh.cell_temp(7, 7);
  const double far_early = mesh.cell_temp(0, 0);
  EXPECT_GT(fpu_early, far_early);
  mesh.settle();
  EXPECT_GT(mesh.cell_temp(7, 7), mesh.cell_temp(0, 0));
}

}  // namespace
