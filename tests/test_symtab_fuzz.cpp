// ELF-parser robustness: synthetic images, truncation, and corruption
// fuzzing. parse_elf_image must never crash or read out of bounds —
// malformed input either parses to a structurally valid ElfImage or
// fails with a Status (ASan/UBSan CI backs the "never OOB" claim).
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "symtab/elf.hpp"

namespace {

using namespace tempest::symtab;

// Mirror of the on-disk ELF64 structures (the parser defines its own
// copies privately; the builder needs the same layout to craft inputs).
#pragma pack(push, 1)
struct RawEhdr {
  unsigned char e_ident[16];
  std::uint16_t e_type, e_machine;
  std::uint32_t e_version;
  std::uint64_t e_entry, e_phoff, e_shoff;
  std::uint32_t e_flags;
  std::uint16_t e_ehsize, e_phentsize, e_phnum, e_shentsize, e_shnum,
      e_shstrndx;
};
struct RawShdr {
  std::uint32_t sh_name, sh_type;
  std::uint64_t sh_flags, sh_addr, sh_offset, sh_size;
  std::uint32_t sh_link, sh_info;
  std::uint64_t sh_addralign, sh_entsize;
};
struct RawSym {
  std::uint32_t st_name;
  unsigned char st_info, st_other;
  std::uint16_t st_shndx;
  std::uint64_t st_value, st_size;
};
struct RawRela {
  std::uint64_t r_offset, r_info;
  std::int64_t r_addend;
};
#pragma pack(pop)

static_assert(sizeof(RawEhdr) == 64);
static_assert(sizeof(RawShdr) == 64);
static_assert(sizeof(RawSym) == 24);
static_assert(sizeof(RawRela) == 24);

/// A hand-built ET_REL object: .text with one instrumented function
/// `f` (a PLT32 reloc against an undefined __cyg_profile_func_enter),
/// full symtab/strtab/shstrtab, and the section header table last.
/// Field offsets are exposed so tests can corrupt specific headers.
struct SyntheticElf {
  std::vector<char> bytes;
  std::size_t shoff = 0;        ///< section header table
  std::size_t text_off = 0;     ///< .text payload
  std::size_t symtab_off = 0;   ///< first Elf64Sym
  std::size_t rela_off = 0;     ///< first Elf64Rela

  std::size_t shdr_off(std::size_t index) const {
    return shoff + index * sizeof(RawShdr);
  }
  RawShdr* shdr(std::size_t index) {
    return reinterpret_cast<RawShdr*>(bytes.data() + shdr_off(index));
  }
  RawEhdr* ehdr() { return reinterpret_cast<RawEhdr*>(bytes.data()); }
};

SyntheticElf build_synthetic_rel() {
  SyntheticElf out;
  auto append = [&](const void* data, std::size_t n) {
    const char* p = static_cast<const char*>(data);
    out.bytes.insert(out.bytes.end(), p, p + n);
  };

  RawEhdr ehdr{};
  std::memcpy(ehdr.e_ident, "\x7f" "ELF", 4);
  ehdr.e_ident[4] = 2;  // ELFCLASS64
  ehdr.e_ident[5] = 1;  // little-endian
  ehdr.e_ident[6] = 1;
  ehdr.e_type = kEtRel;
  ehdr.e_machine = 62;  // EM_X86_64
  ehdr.e_version = 1;
  ehdr.e_ehsize = sizeof(RawEhdr);
  ehdr.e_shentsize = sizeof(RawShdr);
  ehdr.e_shnum = 6;
  ehdr.e_shstrndx = 5;
  append(&ehdr, sizeof(ehdr));  // e_shoff patched below

  // .text: 16 bytes; a call placeholder at offset 4 (the reloc target).
  out.text_off = out.bytes.size();
  const unsigned char text[16] = {0x55, 0x48, 0x89, 0xe5, 0xe8, 0, 0, 0,
                                  0,    0x90, 0x90, 0x5d, 0xc3, 0x90, 0x90, 0x90};
  append(text, sizeof(text));

  // .symtab: null, f (STT_FUNC in .text), undefined hook symbol.
  out.symtab_off = out.bytes.size();
  RawSym syms[3]{};
  syms[1].st_name = 1;  // "f"
  syms[1].st_info = 0x12;  // GLOBAL | FUNC
  syms[1].st_shndx = 1;
  syms[1].st_size = 16;
  syms[2].st_name = 3;  // "__cyg_profile_func_enter"
  syms[2].st_info = 0x10;  // GLOBAL | NOTYPE, undefined
  append(syms, sizeof(syms));

  // .strtab
  const char strtab[] = "\0f\0__cyg_profile_func_enter";
  const std::size_t strtab_off = out.bytes.size();
  append(strtab, sizeof(strtab));

  // .rela.text: one PLT32 against the hook symbol, patching .text+5.
  out.rela_off = out.bytes.size();
  RawRela rela{};
  rela.r_offset = 5;
  rela.r_info = (std::uint64_t{2} << 32) | kRX8664Plt32;
  rela.r_addend = -4;
  append(&rela, sizeof(rela));

  // .shstrtab
  const char shstrtab[] = "\0.text\0.symtab\0.strtab\0.rela.text\0.shstrtab";
  const std::size_t shstrtab_off = out.bytes.size();
  append(shstrtab, sizeof(shstrtab));

  // Section header table, last so every truncation clips it.
  out.shoff = out.bytes.size();
  RawShdr shdrs[6]{};
  shdrs[1] = {1, kShtProgbits, kShfExecinstr | 0x2, 0, out.text_off, 16,
              0, 0, 16, 0};
  shdrs[2] = {7, kShtSymtab, 0, 0, out.symtab_off, sizeof(syms),
              3, 1, 8, sizeof(RawSym)};
  shdrs[3] = {15, 3 /* SHT_STRTAB */, 0, 0, strtab_off, sizeof(strtab),
              0, 0, 1, 0};
  shdrs[4] = {23, kShtRela, 0, 0, out.rela_off, sizeof(rela),
              2, 1, 8, sizeof(RawRela)};
  shdrs[5] = {34, 3 /* SHT_STRTAB */, 0, 0, shstrtab_off, sizeof(shstrtab),
              0, 0, 1, 0};
  append(shdrs, sizeof(shdrs));

  out.ehdr()->e_shoff = out.shoff;
  return out;
}

TEST(SymtabFuzz, SyntheticRelParses) {
  SyntheticElf elf = build_synthetic_rel();
  auto image = parse_elf_image(elf.bytes);
  ASSERT_TRUE(image.is_ok()) << image.message();
  const ElfImage& im = image.value();
  EXPECT_EQ(im.elf_type, kEtRel);
  ASSERT_EQ(im.sections.size(), 6u);
  EXPECT_EQ(im.sections[1].name, ".text");
  EXPECT_TRUE(im.sections[1].executable());
  EXPECT_EQ(im.sections[1].bytes.size(), 16u);
  EXPECT_EQ(im.sections[1].bytes[4], 0xe8);
  ASSERT_EQ(im.symbols.size(), 3u);
  EXPECT_FALSE(im.symbols_from_dynsym);
  EXPECT_EQ(im.symbols[1].name, "f");
  EXPECT_TRUE(im.symbols[1].is_function());
  EXPECT_TRUE(im.symbols[1].is_defined());
  EXPECT_EQ(im.symbols[2].name, "__cyg_profile_func_enter");
  EXPECT_FALSE(im.symbols[2].is_defined());
  ASSERT_EQ(im.relocations.size(), 1u);
  EXPECT_EQ(im.relocations[0].type, kRX8664Plt32);
  EXPECT_EQ(im.relocations[0].sym_index, 2u);
  EXPECT_EQ(im.relocations[0].offset, 5u);
  EXPECT_EQ(im.relocations[0].addend, -4);
  EXPECT_EQ(im.relocations[0].target_section, 1u);  // lands in .text
}

TEST(SymtabFuzz, TruncationAtEveryOffsetFailsCleanly) {
  const SyntheticElf elf = build_synthetic_rel();
  // The section header table sits last, so every strict prefix is
  // missing at least part of it: parse must error, never crash.
  for (std::size_t cut = 0; cut < elf.bytes.size(); ++cut) {
    std::vector<char> damaged(elf.bytes.begin(),
                              elf.bytes.begin() + static_cast<long>(cut));
    auto result = parse_elf_image(damaged);
    ASSERT_FALSE(result.is_ok()) << "truncated image at " << cut << "/"
                                 << elf.bytes.size() << " parsed successfully";
    EXPECT_FALSE(result.message().empty());
  }
}

TEST(SymtabFuzz, NotElfRejected) {
  std::vector<char> garbage(128, 'x');
  auto result = parse_elf_image(garbage);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.message().find("not an ELF"), std::string::npos);
}

TEST(SymtabFuzz, Elf32AndBigEndianRejected) {
  SyntheticElf elf = build_synthetic_rel();
  elf.ehdr()->e_ident[4] = 1;  // ELFCLASS32
  EXPECT_FALSE(parse_elf_image(elf.bytes).is_ok());
  elf.ehdr()->e_ident[4] = 2;
  elf.ehdr()->e_ident[5] = 2;  // big-endian
  EXPECT_FALSE(parse_elf_image(elf.bytes).is_ok());
}

TEST(SymtabFuzz, SectionTableOffsetOverflowRejected) {
  SyntheticElf elf = build_synthetic_rel();
  // Hostile e_shoff near UINT64_MAX: offset + size wraps past zero, so a
  // naive `shoff + bytes > size` check would pass. Must still error.
  elf.ehdr()->e_shoff = UINT64_MAX - 32;
  auto result = parse_elf_image(elf.bytes);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.message().find("section headers"), std::string::npos);
}

TEST(SymtabFuzz, ExecSectionOffsetOverflowRejected) {
  SyntheticElf elf = build_synthetic_rel();
  elf.shdr(1)->sh_offset = UINT64_MAX - 8;  // wraps with sh_size = 16
  auto result = parse_elf_image(elf.bytes);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.message().find("executable section"), std::string::npos);
}

TEST(SymtabFuzz, SymtabWrongEntsizeRejected) {
  SyntheticElf elf = build_synthetic_rel();
  elf.shdr(2)->sh_entsize = 17;
  EXPECT_FALSE(parse_elf_image(elf.bytes).is_ok());
}

TEST(SymtabFuzz, SymtabDanglingStrtabLinkRejected) {
  SyntheticElf elf = build_synthetic_rel();
  elf.shdr(2)->sh_link = 99;
  auto result = parse_elf_image(elf.bytes);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.message().find("string table"), std::string::npos);
}

TEST(SymtabFuzz, UnterminatedStrtabYieldsEmptyNamesNotCrash) {
  SyntheticElf elf = build_synthetic_rel();
  // Point the hook symbol's name at the last strtab byte and strip the
  // terminator by shrinking the table: the name must come back empty
  // (no over-read), the rest of the table intact.
  elf.shdr(3)->sh_size -= 1;
  auto result = parse_elf_image(elf.bytes);
  ASSERT_TRUE(result.is_ok()) << result.message();
  ASSERT_EQ(result.value().symbols.size(), 3u);
  EXPECT_EQ(result.value().symbols[1].name, "f");
  EXPECT_TRUE(result.value().symbols[2].name.empty());
}

TEST(SymtabFuzz, BogusShstrndxLeavesSectionNamesEmpty) {
  SyntheticElf elf = build_synthetic_rel();
  elf.ehdr()->e_shstrndx = 1000;
  auto result = parse_elf_image(elf.bytes);
  ASSERT_TRUE(result.is_ok()) << result.message();
  for (const auto& sec : result.value().sections) {
    EXPECT_TRUE(sec.name.empty());
  }
  // Types and flags still drive the audit without names.
  EXPECT_TRUE(result.value().sections[1].executable());
}

TEST(SymtabFuzz, RelaDanglingSymbolIndexSkipsEntry) {
  SyntheticElf elf = build_synthetic_rel();
  auto* rela = reinterpret_cast<RawRela*>(elf.bytes.data() + elf.rela_off);
  rela->r_info = (std::uint64_t{99} << 32) | kRX8664Plt32;
  auto result = parse_elf_image(elf.bytes);
  ASSERT_TRUE(result.is_ok()) << result.message();
  EXPECT_TRUE(result.value().relocations.empty());
}

TEST(SymtabFuzz, RelaWrongEntsizeRejected) {
  SyntheticElf elf = build_synthetic_rel();
  elf.shdr(4)->sh_entsize = 12;
  EXPECT_FALSE(parse_elf_image(elf.bytes).is_ok());
}

class SymtabBitFlip : public ::testing::TestWithParam<int> {};

TEST_P(SymtabBitFlip, BitFlipsNeverCrash) {
  const SyntheticElf elf = build_synthetic_rel();
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<std::size_t> pos_dist(0, elf.bytes.size() - 1);
  std::uniform_int_distribution<int> bit_dist(0, 7);

  for (int trial = 0; trial < 80; ++trial) {
    std::vector<char> mutated = elf.bytes;
    for (int f = 0; f <= trial % 3; ++f) {
      mutated[pos_dist(rng)] ^= static_cast<char>(1 << bit_dist(rng));
    }
    auto result = parse_elf_image(mutated);
    if (result.is_ok()) {
      // Whatever parsed must be safe to walk in full.
      const ElfImage& im = result.value();
      for (const auto& sec : im.sections) {
        if (sec.executable()) EXPECT_LE(sec.bytes.size(), mutated.size());
      }
      for (const auto& sym : im.symbols) (void)sym.is_function();
      for (const auto& reloc : im.relocations) {
        EXPECT_LT(reloc.sym_index, im.symbols.size());
        EXPECT_LT(reloc.target_section, im.sections.size());
      }
    } else {
      EXPECT_FALSE(result.message().empty());
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymtabBitFlip, ::testing::Range(0, 10));

TEST(SymtabFuzz, SelfExeRoundTrip) {
  auto image = read_elf_image("/proc/self/exe");
  ASSERT_TRUE(image.is_ok()) << image.message();
  const ElfImage& im = image.value();
  EXPECT_TRUE(im.elf_type == kEtExec || im.elf_type == kEtDyn);
  bool has_exec_bytes = false;
  for (const auto& sec : im.sections) {
    if (sec.executable() && !sec.bytes.empty()) has_exec_bytes = true;
  }
  EXPECT_TRUE(has_exec_bytes);
  EXPECT_FALSE(im.symbols.empty());
}

TEST(SymtabFuzz, MissingFileIsError) {
  auto image = read_elf_image("/nonexistent/no-such-binary");
  ASSERT_FALSE(image.is_ok());
  EXPECT_NE(image.message().find("cannot open"), std::string::npos);
}

}  // namespace
