// Golden equivalence: the analysis fast path (k-way merge sort, v2 bulk
// trace I/O, flat-hash timeline, merge-join attribution) must produce
// results identical to the seed pipeline preserved in parser/reference.
// The synthetic trace exercises every semantic corner the optimisations
// could disturb: per-thread runs, cross-thread interleaving, recursion,
// an unmatched exit, an activation left open at trace end, duplicate
// sample timestamps, and functions too short to be significant.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "parser/profile.hpp"
#include "parser/reference.hpp"
#include "parser/timeline.hpp"
#include "pipeline/analysis.hpp"
#include "trace/reader.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"

namespace {

using namespace tempest;
using namespace tempest::trace;
using namespace tempest::parser;

constexpr std::uint64_t kFnA = 0x1000;  // long-running, recursive on t0
constexpr std::uint64_t kFnB = 0x2000;  // interleaved across threads
constexpr std::uint64_t kFnC = 0x3000;  // too short to be significant
constexpr std::uint64_t kFnD = 0x4000;  // left open at trace end

/// Three nodes, six threads; events appended per thread in time order
/// with run metadata, exactly as ThreadRegistry::drain_into emits them.
Trace golden_trace() {
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.executable = "golden";
  t.load_bias = 0x1000;
  t.nodes = {{0, "alpha"}, {1, "beta"}, {2, "gamma"}};
  t.sensors = {{0, 0, "cpu0", 1.0}, {0, 1, "sink0", 0.5},
               {1, 0, "cpu1", 1.0}, {2, 0, "cpu2", 1.0}};
  t.threads = {{0, 0, 0}, {1, 0, 1}, {2, 1, 0}, {3, 1, 1}, {4, 2, 0}, {5, 2, 1}};

  const auto push_run = [&t](std::uint32_t tid, std::uint16_t node,
                             std::vector<FnEvent> events) {
    const std::size_t begin = t.fn_events.size();
    for (auto& e : events) {
      e.thread_id = tid;
      e.node_id = node;
      t.fn_events.push_back(e);
    }
    t.fn_event_runs.push_back({begin, t.fn_events.size() - begin});
  };

  // t0 (node 0): recursion on A — nested activations collapse into one
  // interval per outermost call — plus a short C activation inside.
  push_run(0, 0,
           {{100, kFnA, 0, 0, FnEventKind::kEnter},
            {200, kFnA, 0, 0, FnEventKind::kEnter},
            {300, kFnC, 0, 0, FnEventKind::kEnter},
            {320, kFnC, 0, 0, FnEventKind::kExit},
            {700, kFnA, 0, 0, FnEventKind::kExit},
            {900, kFnA, 0, 0, FnEventKind::kExit}});
  // t1 (node 0): B interleaved with t0's A, plus an unmatched exit.
  push_run(1, 0,
           {{150, kFnB, 0, 0, FnEventKind::kEnter},
            {450, kFnB, 0, 0, FnEventKind::kExit},
            {460, kFnC, 0, 0, FnEventKind::kExit},  // unmatched
            {500, kFnB, 0, 0, FnEventKind::kEnter},
            {850, kFnB, 0, 0, FnEventKind::kExit}});
  // t2/t3 (node 1): overlapping B activations that merge into one
  // interval; D never exits (force-closed at trace end).
  push_run(2, 1,
           {{120, kFnB, 0, 0, FnEventKind::kEnter},
            {600, kFnB, 0, 0, FnEventKind::kExit}});
  push_run(3, 1,
           {{400, kFnB, 0, 0, FnEventKind::kEnter},
            {800, kFnB, 0, 0, FnEventKind::kExit},
            {820, kFnD, 0, 0, FnEventKind::kEnter}});
  // t4/t5 (node 2): A again on another node; t5 shares a timestamp with
  // t4 (stability-sensitive tie).
  push_run(4, 2,
           {{250, kFnA, 0, 0, FnEventKind::kEnter},
            {750, kFnA, 0, 0, FnEventKind::kExit}});
  push_run(5, 2,
           {{250, kFnC, 0, 0, FnEventKind::kEnter},
            {260, kFnC, 0, 0, FnEventKind::kExit}});

  // Per-node sample blocks (concatenation is time-unsorted globally),
  // with duplicate timestamps inside node 0 and across sensors.
  t.temp_samples = {
      {180, 40.0, 0, 0}, {180, 41.0, 0, 1}, {350, 42.0, 0, 0},
      {350, 42.5, 0, 0}, {640, 43.0, 0, 1}, {880, 44.0, 0, 0},
      {140, 50.0, 1, 0}, {500, 51.0, 1, 0}, {810, 52.0, 1, 0},
      {255, 60.0, 2, 0}, {700, 61.0, 2, 0},
  };
  t.clock_syncs = {{100, 100, 0}, {900, 900, 0}, {120, 121, 1},
                   {850, 852, 1}, {250, 249, 2}, {800, 799, 2}};
  return t;
}

std::vector<std::pair<std::uint64_t, std::string>> golden_names() {
  return {{kFnA, "alpha_fn"}, {kFnB, "beta_fn"}, {kFnC, "gamma_fn"}, {kFnD, "delta_fn"}};
}

void expect_events_equal(const std::vector<FnEvent>& a, const std::vector<FnEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tsc, b[i].tsc) << "event " << i;
    EXPECT_EQ(a[i].addr, b[i].addr) << "event " << i;
    EXPECT_EQ(a[i].thread_id, b[i].thread_id) << "event " << i;
    EXPECT_EQ(a[i].node_id, b[i].node_id) << "event " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
  }
}

void expect_timelines_equal(const TimelineMap& fast, const TimelineMap& seed) {
  ASSERT_EQ(fast.size(), seed.size());
  for (const auto& [key, sfi] : seed) {
    const auto it = fast.find(key);
    ASSERT_NE(it, fast.end()) << "missing (" << key.first << ", " << key.second << ")";
    const FunctionIntervals& ffi = it->second;
    EXPECT_EQ(ffi.addr, sfi.addr);
    EXPECT_EQ(ffi.node_id, sfi.node_id);
    EXPECT_EQ(ffi.total_ticks, sfi.total_ticks);
    EXPECT_EQ(ffi.calls, sfi.calls);
    ASSERT_EQ(ffi.merged.size(), sfi.merged.size());
    for (std::size_t i = 0; i < sfi.merged.size(); ++i) {
      EXPECT_EQ(ffi.merged[i].begin, sfi.merged[i].begin);
      EXPECT_EQ(ffi.merged[i].end, sfi.merged[i].end);
    }
  }
}

void expect_profiles_equal(const RunProfile& fast, const RunProfile& seed) {
  EXPECT_EQ(fast.unit, seed.unit);
  EXPECT_DOUBLE_EQ(fast.duration_s, seed.duration_s);
  EXPECT_EQ(fast.diagnostics.unmatched_exits, seed.diagnostics.unmatched_exits);
  EXPECT_EQ(fast.diagnostics.force_closed, seed.diagnostics.force_closed);
  ASSERT_EQ(fast.nodes.size(), seed.nodes.size());
  for (std::size_t n = 0; n < seed.nodes.size(); ++n) {
    const NodeProfile& fn_node = fast.nodes[n];
    const NodeProfile& sn = seed.nodes[n];
    EXPECT_EQ(fn_node.node_id, sn.node_id);
    EXPECT_EQ(fn_node.hostname, sn.hostname);
    EXPECT_DOUBLE_EQ(fn_node.duration_s, sn.duration_s);
    ASSERT_EQ(fn_node.functions.size(), sn.functions.size()) << "node " << sn.node_id;
    for (std::size_t f = 0; f < sn.functions.size(); ++f) {
      const FunctionProfile& ff = fn_node.functions[f];
      const FunctionProfile& sf = sn.functions[f];
      EXPECT_EQ(ff.addr, sf.addr) << sf.name;
      EXPECT_EQ(ff.name, sf.name);
      EXPECT_DOUBLE_EQ(ff.total_time_s, sf.total_time_s) << sf.name;
      EXPECT_EQ(ff.calls, sf.calls) << sf.name;
      EXPECT_EQ(ff.significant, sf.significant) << sf.name;
      ASSERT_EQ(ff.sensors.size(), sf.sensors.size()) << sf.name;
      for (std::size_t s = 0; s < sf.sensors.size(); ++s) {
        const SensorProfile& fs = ff.sensors[s];
        const SensorProfile& ss = sf.sensors[s];
        EXPECT_EQ(fs.sensor_id, ss.sensor_id) << sf.name;
        EXPECT_EQ(fs.name, ss.name) << sf.name;
        EXPECT_EQ(fs.sample_count, ss.sample_count) << sf.name;
        EXPECT_EQ(fs.stats.count, ss.stats.count) << sf.name;
        EXPECT_DOUBLE_EQ(fs.stats.min, ss.stats.min) << sf.name;
        EXPECT_DOUBLE_EQ(fs.stats.avg, ss.stats.avg) << sf.name;
        EXPECT_DOUBLE_EQ(fs.stats.max, ss.stats.max) << sf.name;
        EXPECT_DOUBLE_EQ(fs.stats.sdv, ss.stats.sdv) << sf.name;
        EXPECT_DOUBLE_EQ(fs.stats.var, ss.stats.var) << sf.name;
        EXPECT_DOUBLE_EQ(fs.stats.med, ss.stats.med) << sf.name;
        EXPECT_DOUBLE_EQ(fs.stats.mod, ss.stats.mod) << sf.name;
      }
    }
  }
}

TEST(GoldenPipeline, SortMatchesSeedStableSort) {
  Trace fast = golden_trace();
  Trace seed = golden_trace();
  fast.sort_by_time();  // k-way merge over the recorded runs
  reference::sort_by_time_seed(&seed);
  expect_events_equal(fast.fn_events, seed.fn_events);
  ASSERT_EQ(fast.temp_samples.size(), seed.temp_samples.size());
  for (std::size_t i = 0; i < seed.temp_samples.size(); ++i) {
    EXPECT_EQ(fast.temp_samples[i].tsc, seed.temp_samples[i].tsc) << i;
    EXPECT_DOUBLE_EQ(fast.temp_samples[i].temp_c, seed.temp_samples[i].temp_c) << i;
    EXPECT_EQ(fast.temp_samples[i].sensor_id, seed.temp_samples[i].sensor_id) << i;
  }
  // After the merge the whole vector is one run.
  ASSERT_EQ(fast.fn_event_runs.size(), 1u);
  EXPECT_EQ(fast.fn_event_runs[0].begin, 0u);
  EXPECT_EQ(fast.fn_event_runs[0].count, fast.fn_events.size());
  EXPECT_EQ(fast.start_tsc(), seed.start_tsc());
  EXPECT_EQ(fast.end_tsc(), seed.end_tsc());
}

TEST(GoldenPipeline, SortHandlesInvalidRunMetadata) {
  // Stale/overlapping run metadata must not corrupt the sort: the fast
  // path detects it and falls back to the seed-equivalent stable sort.
  Trace fast = golden_trace();
  Trace seed = golden_trace();
  fast.fn_event_runs = {{0, 3}, {2, fast.fn_events.size() - 2}};  // overlap
  fast.sort_by_time();
  reference::sort_by_time_seed(&seed);
  expect_events_equal(fast.fn_events, seed.fn_events);
}

TEST(GoldenPipeline, TimelineMatchesSeed) {
  Trace t = golden_trace();
  t.sort_by_time();
  TimelineDiagnostics fast_diag, seed_diag;
  const TimelineMap fast = build_timeline(t, &fast_diag);
  const TimelineMap seed = reference::build_timeline_seed(t, &seed_diag);
  EXPECT_EQ(fast_diag.unmatched_exits, seed_diag.unmatched_exits);
  EXPECT_EQ(fast_diag.force_closed, seed_diag.force_closed);
  EXPECT_EQ(fast_diag.unmatched_exits, 1u);
  EXPECT_EQ(fast_diag.force_closed, 1u);
  expect_timelines_equal(fast, seed);
}

TEST(GoldenPipeline, ProfileMatchesSeedExactly) {
  Trace t = golden_trace();
  t.sort_by_time();
  TimelineDiagnostics diag;
  const TimelineMap fast_tl = build_timeline(t, &diag);
  const TimelineMap seed_tl = reference::build_timeline_seed(t);
  const auto names = golden_names();
  for (const TempUnit unit : {TempUnit::kFahrenheit, TempUnit::kCelsius}) {
    ProfileOptions options;
    options.unit = unit;
    const RunProfile fast = ProfileBuilder(t, options).build(fast_tl, names, diag);
    const RunProfile seed =
        reference::build_profile_seed(t, seed_tl, names, diag, options);
    expect_profiles_equal(fast, seed);
  }
}

TEST(GoldenPipeline, ProfileMatchesSeedOnUnsortedTrace) {
  // Hand-built traces skip sort_by_time; attribution must not silently
  // assume sortedness.
  Trace t = golden_trace();
  TimelineDiagnostics diag;
  const TimelineMap fast_tl = build_timeline(t, &diag);
  const TimelineMap seed_tl = reference::build_timeline_seed(t);
  const auto names = golden_names();
  const ProfileOptions options;
  const RunProfile fast = ProfileBuilder(t, options).build(fast_tl, names, diag);
  const RunProfile seed =
      reference::build_profile_seed(t, seed_tl, names, diag, options);
  expect_profiles_equal(fast, seed);
}

TEST(GoldenPipeline, EndToEndThroughV2RoundTrip) {
  // Producer side: sort + serialise with the fast path; parser side:
  // deserialise, rebuild, and compare the final profile against the
  // all-seed pipeline fed the same original trace.
  Trace produced = golden_trace();
  produced.sort_by_time();
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, produced));
  auto loaded = read_trace(buffer);
  ASSERT_TRUE(loaded.is_ok()) << loaded.message();
  Trace fast_t = std::move(loaded).value();
  fast_t.sort_by_time();
  TimelineDiagnostics fast_diag;
  const TimelineMap fast_tl = build_timeline(fast_t, &fast_diag);
  const RunProfile fast =
      ProfileBuilder(fast_t, {}).build(fast_tl, golden_names(), fast_diag);

  Trace seed_t = golden_trace();
  reference::sort_by_time_seed(&seed_t);
  TimelineDiagnostics seed_diag;
  const TimelineMap seed_tl = reference::build_timeline_seed(seed_t, &seed_diag);
  const RunProfile seed = reference::build_profile_seed(
      seed_t, seed_tl, golden_names(), seed_diag, {});
  expect_profiles_equal(fast, seed);
}

TEST(GoldenPipeline, StreamingFoldMatchesSeedOracle) {
  // The streaming pipeline's consumer core, fed the sorted golden trace
  // in deliberately small, uneven batches, must reproduce the seed
  // pipeline's profile exactly. The seed gets hex names because the
  // fold's symboliser falls back to hex when the recorded executable
  // ("golden", which doesn't exist) has no symtab.
  Trace t = golden_trace();
  t.sort_by_time();
  TimelineDiagnostics seed_diag;
  const TimelineMap seed_tl = reference::build_timeline_seed(t, &seed_diag);
  const std::vector<std::pair<std::uint64_t, std::string>> hex_names = {
      {kFnA, "0x1000"}, {kFnB, "0x2000"}, {kFnC, "0x3000"}, {kFnD, "0x4000"}};
  const RunProfile seed =
      reference::build_profile_seed(t, seed_tl, hex_names, seed_diag, {});

  tempest::pipeline::AnalysisPipeline fold;
  fold.set_metadata(t);
  for (std::size_t i = 0; i < t.fn_events.size(); i += 3) {
    fold.add_fn_events(t.fn_events.data() + i,
                       std::min<std::size_t>(3, t.fn_events.size() - i));
  }
  for (std::size_t i = 0; i < t.temp_samples.size(); i += 2) {
    fold.add_temp_samples(t.temp_samples.data() + i,
                          std::min<std::size_t>(2, t.temp_samples.size() - i));
  }
  expect_profiles_equal(fold.finish().profile, seed);
}

TEST(GoldenPipeline, FindLocatesEveryFunctionLikeLinearScan) {
  Trace t = golden_trace();
  t.sort_by_time();
  TimelineDiagnostics diag;
  const TimelineMap tl = build_timeline(t, &diag);
  const RunProfile profile = ProfileBuilder(t, {}).build(tl, golden_names(), diag);
  for (const auto& node : profile.nodes) {
    for (const auto& fn : node.functions) {
      const FunctionProfile* hit = profile.find(node.node_id, fn.name);
      ASSERT_NE(hit, nullptr) << fn.name;
      EXPECT_EQ(hit->addr, fn.addr);
    }
  }
  EXPECT_EQ(profile.find(0, "no_such_fn"), nullptr);
  EXPECT_EQ(profile.find(77, "alpha_fn"), nullptr);
}

TEST(GoldenPipeline, SeedV1TraceRejectedByV2Reader) {
  Trace t = golden_trace();
  std::stringstream buffer;
  ASSERT_TRUE(reference::write_trace_seed(buffer, t));
  auto loaded = read_trace(buffer);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_NE(loaded.message().find("version"), std::string::npos) << loaded.message();
  // And the seed reader still accepts its own format.
  std::stringstream again;
  ASSERT_TRUE(reference::write_trace_seed(again, t));
  EXPECT_TRUE(reference::read_trace_seed(again).is_ok());
}

}  // namespace
