// TSan-targeted stress: ThreadRegistry::current() hammered from many
// threads while another thread loops reset(), and the same pattern
// against a live session with tempd sampling. The assertions are
// deliberately loose (no crash, re-registration works) — the real
// oracle is ThreadSanitizer on the `concurrency` ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/api.hpp"
#include "core/session.hpp"
#include "core/thread_buffer.hpp"
#include "simnode/cluster.hpp"

namespace {

using tempest::core::Session;
using tempest::core::ThreadRegistry;
using tempest::core::ThreadState;

TEST(RegistryStress, CurrentVsResetNeverTouchesFreedMemory) {
  ThreadRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 50'000;
  std::atomic<int> active_workers{kThreads};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &active_workers, t] {
      for (int i = 0; i < kIterations; ++i) {
        // Re-fetch every iteration, like the recording hot path: a
        // concurrent reset() retires the old state, and the fetched
        // pointer must never be freed memory. Scalar writes keep the
        // loop fast under TSan (a push would allocate a 1.5 MB chunk
        // per generation per thread) while still racing reset().
        ThreadState* ts = registry.current();
        ts->core = static_cast<std::uint16_t>(t);
        ts->node_id = 0;
      }
      // One real event on the final generation: the buffer path works
      // on whatever state the thread ends up with.
      ThreadState* ts = registry.current();
      ts->events.push({1, 0x1000, ts->thread_id, ts->node_id,
                       tempest::trace::FnEventKind::kEnter});
      active_workers.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  std::thread resetter([&registry, &active_workers] {
    while (active_workers.load(std::memory_order_relaxed) > 0) {
      registry.reset();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  for (auto& w : workers) w.join();
  resetter.join();

  // The registry is still functional: a fresh generation starts at id 0
  // and drains cleanly.
  registry.reset();
  EXPECT_EQ(registry.current()->thread_id, 0u);
  // Leave this thread's TLS slot stale (generation bumped past it)
  // before the local registry dies, so later tests that touch the
  // session's registry re-register instead of seeing a dangling state.
  registry.reset();
  EXPECT_EQ(registry.total_events(), 0u);
}

TEST(RegistryStress, ResetWhileSessionRecordsAndTempdSamples) {
  tempest::simnode::ClusterConfig cc;
  cc.nodes = 1;
  cc.kind = tempest::simnode::NodeKind::kX86Basic;
  cc.time_scale = 30.0;
  tempest::simnode::Cluster cluster(cc);

  auto& session = Session::instance();
  session.clear_nodes();
  session.register_sim_node(&cluster.node(0));
  tempest::core::SessionConfig sc;
  sc.sample_hz = 200.0;  // keep tempd busy alongside the resets
  sc.bind_affinity = false;
  ASSERT_TRUE(session.start(sc));

  constexpr int kThreads = 6;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&session, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        session.record_enter(0x2000);
        session.record_exit(0x2000);
      }
    });
  }
  // Mid-run resets: drops buffered events by design, but must never
  // let a recorder write into destroyed state or tear the registry.
  for (int i = 0; i < 50; ++i) {
    session.registry().reset();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  ASSERT_TRUE(session.stop());

  // tempd kept sampling throughout, and the surviving generation's
  // events drained into a well-formed trace.
  const auto& trace = session.last_trace();
  EXPECT_FALSE(trace.temp_samples.empty());
  EXPECT_LE(trace.threads.size(), static_cast<std::size_t>(kThreads) + 1);
  session.clear_nodes();
  (void)session.take_trace();
}

}  // namespace
