// Table 1 micro-benchmark validation: each interleaving/recursion
// variant traced through the full transparent-instrumentation pipeline
// produces the expected function inventory, call counts and orderings.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "core/workbench.hpp"
#include "micro/micro.hpp"
#include "parser/parse.hpp"
#include "simnode/cluster.hpp"

namespace {

using tempest::core::Session;
using tempest::core::SessionConfig;
using tempest::core::Workbench;

class MicroPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    auto node_config =
        tempest::simnode::make_node_config(tempest::simnode::NodeKind::kX86Basic);
    node_config.package.time_scale = 30.0;
    node_ = std::make_unique<tempest::simnode::SimNode>(node_config);
    auto& session = Session::instance();
    session.clear_nodes();
    node_id_ = session.register_sim_node(node_.get());
    bench_ = std::make_unique<Workbench>(node_.get(), node_id_);
  }

  tempest::parser::RunProfile profile_of(void (*variant)(const micro::MicroParams&),
                                         double scale = 0.004) {
    auto& session = Session::instance();
    SessionConfig config;
    config.sample_hz = 50.0;
    config.bind_affinity = false;
    EXPECT_TRUE(session.start(config));
    bench_->attach();
    variant(micro::MicroParams{bench_.get(), scale});
    bench_->detach();
    EXPECT_TRUE(session.stop());
    auto parsed = tempest::parser::parse_trace(session.take_trace());
    EXPECT_TRUE(parsed.is_ok()) << parsed.message();
    return std::move(parsed).value();
  }

  const tempest::parser::FunctionProfile* find(const tempest::parser::RunProfile& p,
                                               const std::string& substring) {
    for (const auto& node : p.nodes) {
      for (const auto& fn : node.functions) {
        if (fn.name.find(substring) != std::string::npos) return &fn;
      }
    }
    return nullptr;
  }

  std::unique_ptr<tempest::simnode::SimNode> node_;
  std::unique_ptr<Workbench> bench_;
  std::uint16_t node_id_ = 0;
};

TEST_F(MicroPipeline, VariantA_MainAlone) {
  const auto profile = profile_of(&micro::run_micro_a);
  const auto* a = find(profile, "run_micro_a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->calls, 1u);
  EXPECT_GT(a->total_time_s, 0.02);
  // No helper functions traced.
  EXPECT_EQ(find(profile, "foo1"), nullptr);
  EXPECT_EQ(find(profile, "work_small"), nullptr);
}

TEST_F(MicroPipeline, VariantB_OneFunction) {
  const auto profile = profile_of(&micro::run_micro_b);
  const auto* fn = find(profile, "work_small");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->calls, 1u);
  const auto* outer = find(profile, "run_micro_b");
  ASSERT_NE(outer, nullptr);
  EXPECT_GE(outer->total_time_s, fn->total_time_s);  // inclusive nesting
}

TEST_F(MicroPipeline, VariantC_MultipleFunctions) {
  // Larger scale: the 2:1 medium/small ratio must dominate scheduler
  // noise when the whole suite runs in parallel.
  const auto profile = profile_of(&micro::run_micro_c, 0.02);
  const auto* small = find(profile, "work_small");
  const auto* medium = find(profile, "work_medium");
  const auto* wait = find(profile, "cool_wait");
  ASSERT_NE(small, nullptr);
  ASSERT_NE(medium, nullptr);
  ASSERT_NE(wait, nullptr);
  // medium burns twice small's work.
  EXPECT_GT(medium->total_time_s, small->total_time_s * 1.4);
}

TEST_F(MicroPipeline, VariantD_Interleaving) {
  const auto profile = profile_of(&micro::run_micro_d);
  const auto* foo1 = find(profile, "foo1");
  const auto* foo2 = find(profile, "foo2");
  ASSERT_NE(foo1, nullptr);
  ASSERT_NE(foo2, nullptr);
  EXPECT_EQ(foo1->calls, 1u);
  EXPECT_EQ(foo2->calls, 2u);  // nested in foo1 + direct
  // foo1 dominates the run (the Fig 2 shape).
  const auto* driver = find(profile, "run_micro_d");
  ASSERT_NE(driver, nullptr);
  EXPECT_GT(foo1->total_time_s / driver->total_time_s, 0.6);
  // foo1 inclusive of its nested foo2 call, so > its burn share alone.
  EXPECT_GT(foo1->total_time_s, foo2->total_time_s);
}

TEST_F(MicroPipeline, VariantE_RecursionWithInterleaving) {
  const auto profile = profile_of(&micro::run_micro_e);
  const auto* rec = find(profile, "rec_fn");
  const auto* leaf = find(profile, "rec_leaf");
  const auto* driver = find(profile, "run_micro_e");
  ASSERT_NE(rec, nullptr);
  ASSERT_NE(leaf, nullptr);
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(rec->calls, 6u);   // depth-3 chain (4 calls) + depth-1 (2)
  EXPECT_EQ(leaf->calls, 4u);  // one per unwind level
  // Recursion must not double-count: rec_fn inclusive stays under the
  // driver's total.
  EXPECT_LE(rec->total_time_s, driver->total_time_s * 1.001);
}

TEST_F(MicroPipeline, VariantF_ShortFunctionsRecordCheaply) {
  auto& session = Session::instance();
  SessionConfig config;
  config.sample_hz = 20.0;
  config.bind_affinity = false;
  ASSERT_TRUE(session.start(config));
  bench_->attach();
  const std::uint64_t result =
      micro::run_micro_f(micro::MicroParams{bench_.get(), 1.0}, 50'000);
  bench_->detach();
  ASSERT_TRUE(session.stop());
  EXPECT_NE(result, 0u);

  auto parsed = tempest::parser::parse_trace(session.take_trace());
  ASSERT_TRUE(parsed.is_ok());
  const auto* tiny = find(parsed.value(), "tiny_fn");
  ASSERT_NE(tiny, nullptr);
  EXPECT_EQ(tiny->calls, 50'000u);
  // Too short for thermal significance at 20 Hz... unless the whole
  // loop happens to span samples; either way the profile must exist.
}

}  // namespace
