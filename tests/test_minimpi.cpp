// Message-passing runtime: point-to-point semantics, collectives,
// barrier ordering, placement and error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "minimpi/runtime.hpp"

namespace {

using minimpi::Comm;

TEST(MiniMpi, SendRecvDeliversInOrder) {
  minimpi::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send_n(1, 5, &i, 1);
    } else {
      for (int i = 0; i < 10; ++i) {
        int got = -1;
        comm.recv_n(0, 5, &got, 1);
        EXPECT_EQ(got, i);
      }
    }
  });
}

TEST(MiniMpi, TagsKeepStreamsSeparate) {
  minimpi::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int a = 111, b = 222;
      comm.send_n(1, 1, &a, 1);
      comm.send_n(1, 2, &b, 1);
    } else {
      int b = 0, a = 0;
      comm.recv_n(0, 2, &b, 1);  // receive tag 2 first
      comm.recv_n(0, 1, &a, 1);
      EXPECT_EQ(a, 111);
      EXPECT_EQ(b, 222);
    }
  });
}

TEST(MiniMpi, SizeMismatchThrows) {
  EXPECT_THROW(
      minimpi::run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) {
                       const double big[4] = {1, 2, 3, 4};
                       comm.send_n(1, 9, big, 4);
                     } else {
                       double small[2];
                       comm.recv_n(0, 9, small, 2);
                     }
                   }),
      std::length_error);
}

TEST(MiniMpi, BadRankThrows) {
  EXPECT_THROW(minimpi::run(2,
                            [](Comm& comm) {
                              if (comm.rank() == 0) {
                                int x = 0;
                                comm.send_n(5, 0, &x, 1);
                              }
                            }),
               std::out_of_range);
}

TEST(MiniMpi, BarrierSynchronises) {
  std::atomic<int> before{0}, after{0};
  minimpi::run(4, [&](Comm& comm) {
    before.fetch_add(1);
    comm.barrier();
    // Everyone incremented `before` by the time anyone passes.
    EXPECT_EQ(before.load(), 4);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 4);
}

TEST(MiniMpi, BcastFromEveryRoot) {
  for (int root = 0; root < 3; ++root) {
    minimpi::run(3, [root](Comm& comm) {
      double value = comm.rank() == root ? 42.5 : 0.0;
      comm.bcast(&value, sizeof(value), root);
      EXPECT_DOUBLE_EQ(value, 42.5);
    });
  }
}

TEST(MiniMpi, AllreduceSumAndMax) {
  minimpi::run(4, [](Comm& comm) {
    double v[2] = {static_cast<double>(comm.rank()), 1.0};
    comm.allreduce_sum_inplace(v, 2);
    EXPECT_DOUBLE_EQ(v[0], 6.0);  // 0+1+2+3
    EXPECT_DOUBLE_EQ(v[1], 4.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_max(static_cast<double>(comm.rank() * 10)), 30.0);
  });
}

TEST(MiniMpi, ReduceSumToRoot) {
  minimpi::run(3, [](Comm& comm) {
    const double in = 2.0 * comm.rank() + 1.0;  // 1, 3, 5
    double out = 0.0;
    comm.reduce_sum(&in, &out, 1, 2);
    if (comm.rank() == 2) {
      EXPECT_DOUBLE_EQ(out, 9.0);
    }
  });
}

TEST(MiniMpi, AlltoallPermutesBlocks) {
  minimpi::run(4, [](Comm& comm) {
    // Rank r sends value 100*r + d to destination d.
    std::vector<int> send(4), recv(4);
    for (int d = 0; d < 4; ++d) send[static_cast<std::size_t>(d)] = 100 * comm.rank() + d;
    comm.alltoall(send.data(), recv.data(), 1);
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(recv[static_cast<std::size_t>(s)], 100 * s + comm.rank());
    }
  });
}

TEST(MiniMpi, AllgatherCollectsEqualBlocks) {
  minimpi::run(3, [](Comm& comm) {
    const double mine[2] = {static_cast<double>(comm.rank()), 7.0};
    double all[6] = {};
    comm.allgather(mine, all, 2);
    for (int r = 0; r < 3; ++r) {
      EXPECT_DOUBLE_EQ(all[2 * r], static_cast<double>(r));
      EXPECT_DOUBLE_EQ(all[2 * r + 1], 7.0);
    }
  });
}

TEST(MiniMpi, CollectiveSequencesDoNotCollide) {
  // Back-to-back collectives of the same kind must not mix rounds.
  minimpi::run(3, [](Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      double v = comm.rank() + round;
      comm.allreduce_sum_inplace(&v, 1);
      EXPECT_DOUBLE_EQ(v, 3.0 + 3.0 * round);
    }
  });
}

TEST(MiniMpi, RankExceptionPropagates) {
  EXPECT_THROW(minimpi::run(2,
                            [](Comm& comm) {
                              if (comm.rank() == 1) throw std::runtime_error("rank boom");
                            }),
               std::runtime_error);
}

TEST(MiniMpi, PlacementRoundRobinAcrossCluster) {
  tempest::simnode::ClusterConfig cc;
  cc.nodes = 2;
  tempest::simnode::Cluster cluster(cc);
  minimpi::RunOptions options;
  options.cluster = &cluster;
  options.attach_to_session = false;

  std::vector<int> node_of_rank(4, -1);
  minimpi::run(4, [&](Comm& comm) {
    node_of_rank[static_cast<std::size_t>(comm.rank())] =
        comm.world().placement(comm.rank()).node_id;
  }, options);
  EXPECT_EQ(node_of_rank, (std::vector<int>{0, 1, 0, 1}));
}

TEST(MiniMpi, MessageCountersAdvance) {
  minimpi::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const char payload[16] = {};
      comm.send(1, 3, payload, sizeof(payload));
    } else {
      char payload[16];
      comm.recv(0, 3, payload, sizeof(payload));
      EXPECT_GE(comm.world().messages_sent(), 1u);
      EXPECT_GE(comm.world().bytes_sent(), 16u);
    }
  });
}

TEST(MiniMpi, WtimeAdvances) {
  minimpi::run(1, [](Comm& comm) {
    const double t0 = comm.wtime();
    double x = 0;
    for (int i = 0; i < 100000; ++i) x += i;
    volatile double sink = x; (void)sink;
    EXPECT_GE(comm.wtime(), t0);
  });
}

TEST(MiniMpi, ZeroRanksRejected) {
  EXPECT_THROW(minimpi::run(0, [](Comm&) {}), std::invalid_argument);
}

}  // namespace
