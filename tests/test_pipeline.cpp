// Streaming pipeline: source/stage/sink plumbing, bounded batches,
// multi-rank fan-in, and byte-identical equivalence with the batch
// path. The multi-rank golden test is the paper's parallel-hot-spot
// workflow: four per-rank traces, one streaming pass, output pinned
// against the batch parser run over the concatenated, aligned trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "parser/parse.hpp"
#include "pipeline/analysis.hpp"
#include "pipeline/rank_fanin.hpp"
#include "pipeline/sinks.hpp"
#include "pipeline/source.hpp"
#include "pipeline/stages.hpp"
#include "report/json.hpp"
#include "report/series.hpp"
#include "report/stdout_format.hpp"
#include "trace/align.hpp"
#include "trace/reader.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"

namespace {

using namespace tempest;
using namespace tempest::trace;
namespace pipeline = tempest::pipeline;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// One rank's trace: its own node, two threads, one sensor, and clock
/// syncs mapping the rank-local clock onto the global one. Timestamps
/// are strictly distinct across ranks (base offsets) so the k-way merge
/// has no cross-rank enter/exit ties to disambiguate.
Trace rank_trace(std::uint16_t rank, std::uint64_t skew) {
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.executable = "mpi_app";
  t.nodes = {{rank, "rank" + std::to_string(rank)}};
  t.sensors = {{rank, 0, "cpu", 1.0}};
  const std::uint32_t t0 = rank * 2u, t1 = rank * 2u + 1u;
  t.threads = {{t0, rank, 0}, {t1, rank, 1}};

  // Rank-local clocks run `skew` ticks behind the global clock; syncs
  // at both ends pin the linear fit exactly.
  const std::uint64_t base = 1000 + rank * 13;  // global-time base
  const auto local = [&](std::uint64_t global) { return global - skew; };
  const std::uint64_t kFnMain = 0x1000, kFnWork = 0x2000 + rank;

  const auto push = [&](std::uint32_t tid, std::uint64_t global_tsc,
                        std::uint64_t addr, FnEventKind kind) {
    t.fn_events.push_back({local(global_tsc), addr, tid, rank, kind});
  };
  const std::size_t run0 = t.fn_events.size();
  push(t0, base + 0, kFnMain, FnEventKind::kEnter);
  push(t0, base + 100, kFnWork, FnEventKind::kEnter);
  push(t0, base + 700, kFnWork, FnEventKind::kExit);
  push(t0, base + 900, kFnMain, FnEventKind::kExit);
  t.fn_event_runs.push_back({run0, t.fn_events.size() - run0});
  const std::size_t run1 = t.fn_events.size();
  push(t1, base + 50, kFnWork, FnEventKind::kEnter);
  push(t1, base + 650, kFnWork, FnEventKind::kExit);
  t.fn_event_runs.push_back({run1, t.fn_events.size() - run1});

  for (std::uint64_t g = base + 40; g < base + 900; g += 200) {
    t.temp_samples.push_back({local(g), 40.0 + rank + (g % 7) * 0.5, rank, 0});
  }
  t.clock_syncs = {{local(base), base, rank},
                   {local(base + 1000), base + 1000, rank}};
  return t;
}

/// The batch-path reference for a multi-rank run: concatenate the
/// per-rank traces in path order (metadata via TraceHeader::append,
/// record vectors appended) — what `cat`-style merging would produce.
Trace concatenated(const std::vector<Trace>& ranks) {
  Trace combined;
  for (const Trace& r : ranks) {
    combined.append(r);
    combined.fn_events.insert(combined.fn_events.end(), r.fn_events.begin(),
                              r.fn_events.end());
    combined.temp_samples.insert(combined.temp_samples.end(),
                                 r.temp_samples.begin(), r.temp_samples.end());
    combined.clock_syncs.insert(combined.clock_syncs.end(),
                                r.clock_syncs.begin(), r.clock_syncs.end());
  }
  return combined;
}

/// A single-rank trace with no clock syncs, written time-sorted — the
/// shape a recorded single-node session produces.
Trace sorted_single_trace() {
  Trace t = rank_trace(0, 0);
  t.clock_syncs.clear();
  t.sort_by_time();
  return t;
}

TEST(ChunkedTraceSource, StreamsWholeTraceInBoundedBatches) {
  const Trace t = sorted_single_trace();
  const std::string path = temp_path("chunked.trace");
  ASSERT_TRUE(write_trace_file(path, t));

  pipeline::BatchOptions options;
  options.batch_records = 2;  // force several batches per section
  auto opened = pipeline::ChunkedTraceSource::open(path, options);
  ASSERT_TRUE(opened.is_ok()) << opened.message();
  auto source = std::move(opened).value();

  pipeline::CountingSink counter;
  const Status ran = pipeline::run_pipeline(&source, {}, {&counter});
  ASSERT_TRUE(ran) << ran.message();
  EXPECT_EQ(counter.fn_events(), t.fn_events.size());
  EXPECT_EQ(counter.temp_samples(), t.temp_samples.size());
  EXPECT_EQ(counter.clock_syncs(), 0u);
  EXPECT_GE(counter.batches(),
            (t.fn_events.size() + 1) / 2 + (t.temp_samples.size() + 1) / 2);
}

TEST(ChunkedTraceSource, OpenRejectsMissingFile) {
  auto opened = pipeline::ChunkedTraceSource::open(temp_path("nope.trace"));
  ASSERT_FALSE(opened.is_ok());
  EXPECT_NE(opened.message().find("cannot open"), std::string::npos);
}

TEST(ChunkedTraceSource, TruncatedSectionSurfacesActionableError) {
  const Trace t = sorted_single_trace();
  const std::string full = temp_path("full.trace");
  ASSERT_TRUE(write_trace_file(full, t));
  std::ifstream in(full, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  const std::string cut = temp_path("cut.trace");
  std::ofstream out(cut, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 10));
  out.close();

  auto opened = pipeline::ChunkedTraceSource::open(cut);
  ASSERT_TRUE(opened.is_ok()) << opened.message();
  auto source = std::move(opened).value();
  pipeline::CountingSink counter;
  const Status ran = pipeline::run_pipeline(&source, {}, {&counter});
  ASSERT_FALSE(ran);
  EXPECT_NE(ran.message().find("truncated"), std::string::npos) << ran.message();
  EXPECT_NE(ran.message().find(cut), std::string::npos) << ran.message();
}

TEST(ChunkedTraceSource, TrailingBytesRejected) {
  const Trace t = sorted_single_trace();
  const std::string path = temp_path("trailing.trace");
  ASSERT_TRUE(write_trace_file(path, t));
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << "junk";
  out.close();

  auto opened = pipeline::ChunkedTraceSource::open(path);
  ASSERT_TRUE(opened.is_ok()) << opened.message();
  auto source = std::move(opened).value();
  pipeline::CountingSink counter;
  const Status ran = pipeline::run_pipeline(&source, {}, {&counter});
  ASSERT_FALSE(ran);
  EXPECT_NE(ran.message().find("trailing"), std::string::npos) << ran.message();
}

TEST(OrderCheckStage, RejectsOutOfOrderStream) {
  Trace t = sorted_single_trace();
  std::swap(t.fn_events.front(), t.fn_events.back());  // break the order
  t.fn_event_runs.clear();
  const std::string path = temp_path("unsorted.trace");
  ASSERT_TRUE(write_trace_file(path, t));

  auto opened = pipeline::ChunkedTraceSource::open(path);
  ASSERT_TRUE(opened.is_ok()) << opened.message();
  auto source = std::move(opened).value();
  pipeline::OrderCheckStage order;
  pipeline::CountingSink counter;
  const Status ran = pipeline::run_pipeline(&source, {&order}, {&counter});
  ASSERT_FALSE(ran);
  EXPECT_NE(ran.message().find("time order"), std::string::npos) << ran.message();
}

TEST(MemoryTraceSource, MatchesChunkedSource) {
  const Trace t = sorted_single_trace();
  const std::string path = temp_path("memvsfile.trace");
  ASSERT_TRUE(write_trace_file(path, t));

  pipeline::BatchOptions options;
  options.batch_records = 3;
  pipeline::MemoryTraceSource mem(t, options);
  pipeline::CountingSink mem_counter;
  ASSERT_TRUE(pipeline::run_pipeline(&mem, {}, {&mem_counter}));

  auto opened = pipeline::ChunkedTraceSource::open(path, options);
  ASSERT_TRUE(opened.is_ok());
  auto file_source = std::move(opened).value();
  pipeline::CountingSink file_counter;
  ASSERT_TRUE(pipeline::run_pipeline(&file_source, {}, {&file_counter}));

  EXPECT_EQ(mem_counter.fn_events(), file_counter.fn_events());
  EXPECT_EQ(mem_counter.temp_samples(), file_counter.temp_samples());
}

/// Render a profile + series exactly as tempest_parse does, for byte
/// comparison between the batch and streaming paths.
struct Rendered {
  std::string text, json, csv;
};

Rendered render(const parser::RunProfile& profile,
                const report::ThermalSeries& series) {
  Rendered r;
  std::ostringstream text, json, csv;
  report::print_profile(text, profile, {});
  r.text = text.str();
  report::write_profile_json(json, profile);
  json << "\n";
  r.json = json.str();
  report::write_series_csv(csv, series);
  r.csv = csv.str();
  return r;
}

Rendered render_streaming(pipeline::Source* source,
                          const std::vector<pipeline::Stage*>& stages) {
  pipeline::AnalysisOptions options;
  options.want_series = true;
  pipeline::AnalysisSink sink(options);
  const Status ran = pipeline::run_pipeline(source, stages, {&sink});
  EXPECT_TRUE(ran) << ran.message();
  return render(sink.result().profile, sink.result().series);
}

TEST(StreamingEquivalence, SingleFileMatchesBatchPath) {
  const Trace t = sorted_single_trace();
  const std::string path = temp_path("equiv.trace");
  ASSERT_TRUE(write_trace_file(path, t));

  // Batch: the tool's load + parse + extract_series path.
  auto loaded = read_trace_file(path);
  ASSERT_TRUE(loaded.is_ok());
  Trace batch_trace = std::move(loaded).value();
  const Status aligned = align_clocks(&batch_trace);
  ASSERT_TRUE(aligned) << aligned.message();
  auto parsed = parser::parse_trace(batch_trace);
  ASSERT_TRUE(parsed.is_ok()) << parsed.message();
  const Rendered batch = render(
      parsed.value(),
      report::extract_series(batch_trace, TempUnit::kFahrenheit));

  // Streaming: chunked source (tiny batches) + align + order check.
  pipeline::BatchOptions options;
  options.batch_records = 2;
  auto opened = pipeline::ChunkedTraceSource::open(path, options);
  ASSERT_TRUE(opened.is_ok()) << opened.message();
  auto source = std::move(opened).value();
  auto fits = source.clock_fits();
  ASSERT_TRUE(fits.is_ok()) << fits.message();
  pipeline::ClockAlignStage align_stage(std::move(fits).value());
  pipeline::OrderCheckStage order;
  const Rendered streaming = render_streaming(&source, {&align_stage, &order});

  EXPECT_EQ(streaming.text, batch.text);
  EXPECT_EQ(streaming.json, batch.json);
  EXPECT_EQ(streaming.csv, batch.csv);
}

TEST(StreamingEquivalence, RunStatsReachBothPathsIdentically) {
  // A trace carrying a RUNSTATS trailer must surface the same numbers
  // whether it is materialised in one read or streamed in tiny batches
  // — the report footer and JSON "run_stats" object are derived from
  // them, so any divergence is user-visible.
  Trace t = sorted_single_trace();
  t.run_stats.events_recorded = t.fn_events.size();
  t.run_stats.tempd_samples = t.temp_samples.size();
  t.run_stats.tempd_ticks = t.temp_samples.size();
  t.run_stats.threads_registered = 2;
  t.run_stats.wall_seconds = 1.5;
  t.run_stats.tempd_cpu_seconds = 0.004;
  t.run_stats.probe_cost_ns_mean = 37.0;
  t.run_stats.present = true;
  const std::string path = temp_path("runstats_equiv.trace");
  ASSERT_TRUE(write_trace_file(path, t));

  auto loaded = read_trace_file(path);
  ASSERT_TRUE(loaded.is_ok());
  const trace::RunStats& batch_rs = loaded.value().run_stats;
  ASSERT_TRUE(batch_rs.present);

  pipeline::BatchOptions options;
  options.batch_records = 2;  // many batches: meta refresh must still work
  auto opened = pipeline::ChunkedTraceSource::open(path, options);
  ASSERT_TRUE(opened.is_ok()) << opened.message();
  auto source = std::move(opened).value();
  pipeline::AnalysisSink sink(pipeline::AnalysisOptions{});
  const Status ran = pipeline::run_pipeline(&source, {}, {&sink});
  ASSERT_TRUE(ran) << ran.message();
  const trace::RunStats& stream_rs = sink.result().run_stats;
  ASSERT_TRUE(stream_rs.present);

  EXPECT_EQ(stream_rs.events_recorded, batch_rs.events_recorded);
  EXPECT_EQ(stream_rs.tempd_samples, batch_rs.tempd_samples);
  EXPECT_EQ(stream_rs.tempd_ticks, batch_rs.tempd_ticks);
  EXPECT_EQ(stream_rs.threads_registered, batch_rs.threads_registered);
  EXPECT_EQ(stream_rs.wall_seconds, batch_rs.wall_seconds);
  EXPECT_EQ(stream_rs.tempd_cpu_seconds, batch_rs.tempd_cpu_seconds);
  EXPECT_EQ(stream_rs.probe_cost_ns_mean, batch_rs.probe_cost_ns_mean);

  // And the JSON they feed is byte-identical.
  std::ostringstream batch_json, stream_json;
  report::write_profile_json(batch_json, parser::RunProfile{}, &batch_rs);
  report::write_profile_json(stream_json, parser::RunProfile{}, &stream_rs);
  EXPECT_EQ(stream_json.str(), batch_json.str());
}

TEST(StreamingEquivalence, FourRankFanInMatchesConcatenatedBatch) {
  // Four ranks, each with its own clock skew; globally unique node,
  // thread, and sensor ids, as the fan-in contract requires.
  std::vector<Trace> ranks;
  std::vector<std::string> paths;
  for (std::uint16_t r = 0; r < 4; ++r) {
    ranks.push_back(rank_trace(r, 40 + 17ull * r));
    ranks.back().sort_by_time();
    paths.push_back(temp_path("rank" + std::to_string(r) + ".trace"));
    ASSERT_TRUE(write_trace_file(paths.back(), ranks.back()));
  }

  // Batch reference: concatenate, align (fits from the concatenated
  // sync stream), sort, parse — the workflow the fan-in replaces.
  Trace combined = concatenated(ranks);
  const Status aligned = align_clocks(&combined);
  ASSERT_TRUE(aligned) << aligned.message();
  auto parsed = parser::parse_trace(combined);
  ASSERT_TRUE(parsed.is_ok()) << parsed.message();
  const Rendered batch = render(
      parsed.value(),
      report::extract_series(combined, TempUnit::kFahrenheit));

  // Streaming: one pass over the four files.
  pipeline::BatchOptions options;
  options.batch_records = 3;  // force refills mid-merge
  auto opened = pipeline::RankFanIn::open(paths, options);
  ASSERT_TRUE(opened.is_ok()) << opened.message();
  auto fan = std::move(opened).value();
  pipeline::OrderCheckStage order;
  const Rendered streaming = render_streaming(&fan, {&order});

  EXPECT_EQ(streaming.text, batch.text);
  EXPECT_EQ(streaming.json, batch.json);
  EXPECT_EQ(streaming.csv, batch.csv);
}

TEST(RankFanIn, CombinedMetadataKeepsPathOrder) {
  std::vector<std::string> paths;
  for (std::uint16_t r = 0; r < 3; ++r) {
    Trace t = rank_trace(r, 0);
    t.sort_by_time();
    paths.push_back(temp_path("meta_rank" + std::to_string(r) + ".trace"));
    ASSERT_TRUE(write_trace_file(paths[r], t));
  }
  auto opened = pipeline::RankFanIn::open(paths);
  ASSERT_TRUE(opened.is_ok()) << opened.message();
  const auto& meta = opened.value().meta();
  ASSERT_EQ(meta.nodes.size(), 3u);
  EXPECT_EQ(meta.nodes[0].hostname, "rank0");
  EXPECT_EQ(meta.nodes[2].hostname, "rank2");
  EXPECT_EQ(meta.threads.size(), 6u);
  EXPECT_EQ(meta.sensors.size(), 3u);
  EXPECT_DOUBLE_EQ(meta.tsc_ticks_per_second, 1e9);
  EXPECT_EQ(meta.executable, "mpi_app");
}

TEST(RankFanIn, RejectsEmptyPathListAndMissingFile) {
  auto none = pipeline::RankFanIn::open({});
  ASSERT_FALSE(none.is_ok());
  auto missing = pipeline::RankFanIn::open({temp_path("absent.trace")});
  ASSERT_FALSE(missing.is_ok());
  EXPECT_NE(missing.message().find("cannot open"), std::string::npos);
}

TEST(RankFanIn, ToleratesZeroEventRank) {
  // A rank that registered but recorded nothing (e.g. it spent the run
  // in MPI_Recv outside any instrumented function) must not stall or
  // corrupt the merge — its metadata still joins the combined header.
  Trace active = rank_trace(0, 0);
  active.sort_by_time();
  Trace idle = rank_trace(1, 0);
  idle.fn_events.clear();
  idle.fn_event_runs.clear();
  idle.temp_samples.clear();
  idle.sort_by_time();

  std::vector<std::string> paths = {temp_path("zero_rank0.trace"),
                                    temp_path("zero_rank1.trace")};
  ASSERT_TRUE(write_trace_file(paths[0], active));
  ASSERT_TRUE(write_trace_file(paths[1], idle));

  auto opened = pipeline::RankFanIn::open(paths);
  ASSERT_TRUE(opened.is_ok()) << opened.message();
  auto fan = std::move(opened).value();
  ASSERT_EQ(fan.meta().nodes.size(), 2u);

  pipeline::OrderCheckStage order;
  pipeline::CountingSink counter;
  const Status ran = pipeline::run_pipeline(&fan, {&order}, {&counter});
  ASSERT_TRUE(ran) << ran.message();
  EXPECT_EQ(counter.fn_events(), active.fn_events.size());
  EXPECT_EQ(counter.temp_samples(), active.temp_samples.size());
}

TEST(RankFanIn, MergesFullyDisjointTscRanges) {
  // Ranks whose aligned time ranges don't overlap at all (one finished
  // before the other started): the merge must drain them sequentially,
  // still in global order, with no events lost at the boundary.
  Trace early = rank_trace(0, 0);
  early.sort_by_time();
  Trace late = rank_trace(1, 0);
  const std::uint64_t shift = 1'000'000;  // far past rank 0's last tick
  for (auto& e : late.fn_events) e.tsc += shift;
  for (auto& s : late.temp_samples) s.tsc += shift;
  for (auto& c : late.clock_syncs) {
    c.node_tsc += shift;
    c.global_tsc += shift;
  }
  late.sort_by_time();

  std::vector<std::string> paths = {temp_path("disjoint_rank0.trace"),
                                    temp_path("disjoint_rank1.trace")};
  ASSERT_TRUE(write_trace_file(paths[0], early));
  ASSERT_TRUE(write_trace_file(paths[1], late));

  pipeline::BatchOptions options;
  options.batch_records = 2;  // several refills inside each rank's range
  auto opened = pipeline::RankFanIn::open(paths, options);
  ASSERT_TRUE(opened.is_ok()) << opened.message();
  auto fan = std::move(opened).value();

  pipeline::OrderCheckStage order;  // fails on any cross-rank inversion
  pipeline::CountingSink counter;
  const Status ran = pipeline::run_pipeline(&fan, {&order}, {&counter});
  ASSERT_TRUE(ran) << ran.message();
  EXPECT_EQ(counter.fn_events(),
            early.fn_events.size() + late.fn_events.size());
  EXPECT_EQ(counter.temp_samples(),
            early.temp_samples.size() + late.temp_samples.size());
}

TEST(LintSink, MatchesBatchLintReport) {
  Trace t = rank_trace(0, 0);
  t.sort_by_time();
  analysis::LintOptions options;
  options.expected_hz = 0.0;
  const analysis::LintReport batch = analysis::lint_trace(t, options);

  pipeline::BatchOptions batch_options;
  batch_options.batch_records = 2;
  pipeline::MemoryTraceSource source(t, batch_options);
  pipeline::LintSink sink(options);
  const Status ran = pipeline::run_pipeline(&source, {}, {&sink});
  ASSERT_TRUE(ran) << ran.message();

  EXPECT_EQ(analysis::to_json(sink.report()), analysis::to_json(batch));
}

TEST(AnalysisPipeline, EmptyRunProducesEmptyProfile) {
  pipeline::AnalysisPipeline fold;
  const pipeline::AnalysisResult result = fold.finish();
  EXPECT_TRUE(result.profile.nodes.empty());
  EXPECT_DOUBLE_EQ(result.profile.duration_s, 0.0);
  EXPECT_FALSE(result.has_series);
}

}  // namespace
