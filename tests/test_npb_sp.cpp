// SP benchmark: pentadiagonal solver correctness and
// parallel-vs-serial verification.
#include <gtest/gtest.h>

#include <random>

#include "minimpi/runtime.hpp"
#include "npb/sp.hpp"

namespace {

using namespace npb;

TEST(PentaSolver, SolvesAgainstDirectMultiplication) {
  // Build the banded matrix explicitly, pick x, form b = A x, and
  // check solve(b) == x.
  const int n = 17;
  const double a0 = 3.0, a1 = -0.8, a2 = 0.1;
  PentaSolver solver(n, a0, a1, a2);

  std::mt19937 rng(9);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = dist(rng);

  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int d = -2; d <= 2; ++d) {
      const int j = i + d;
      if (j < 0 || j >= n) continue;
      const double coeff = d == 0 ? a0 : (std::abs(d) == 1 ? a1 : a2);
      b[static_cast<std::size_t>(i)] += coeff * x[static_cast<std::size_t>(j)];
    }
  }
  solver.solve(b.data(), 1);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)], 1e-10)
        << i;
  }
}

TEST(PentaSolver, StridedSolveMatchesContiguous) {
  const int n = 9;
  PentaSolver solver(n, 4.0, -1.0, 0.2);
  std::vector<double> contiguous(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) contiguous[static_cast<std::size_t>(i)] = i + 1.0;
  std::vector<double> strided(static_cast<std::size_t>(n) * 3, 0.0);
  for (int i = 0; i < n; ++i) strided[static_cast<std::size_t>(i) * 3] = i + 1.0;
  solver.solve(contiguous.data(), 1);
  solver.solve(strided.data(), 3);
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(strided[static_cast<std::size_t>(i) * 3],
                     contiguous[static_cast<std::size_t>(i)]);
  }
}

TEST(PentaSolver, TooSmallSystemRejected) {
  EXPECT_THROW(PentaSolver(2, 1.0, 0.0, 0.0), std::invalid_argument);
}

class SpParallel : public ::testing::TestWithParam<int> {};

TEST_P(SpParallel, MatchesSerialAndConverges) {
  const int np = GetParam();
  SpConfig config{8, 8, 8, 5, 0.02, 0.05};
  SpResult result;
  minimpi::run(np, [&](minimpi::Comm& comm) { result = sp_run(comm, config); });
  const VerifyResult v = sp_verify(result, config);
  EXPECT_TRUE(v.passed) << v.detail;
  ASSERT_EQ(result.rhs_norms.size(), 5u);
  EXPECT_LT(result.rhs_norms.back(), result.rhs_norms.front());
}

INSTANTIATE_TEST_SUITE_P(RankCounts, SpParallel, ::testing::Values(1, 2, 4));

TEST(Sp, ErrorShrinksWithIterations) {
  SpConfig base{10, 10, 10, 2, 0.02, 0.05};
  SpConfig longer = base;
  longer.niter = 12;
  EXPECT_LT(sp_serial(longer).final_error, sp_serial(base).final_error);
}

TEST(Sp, InvalidDecompositionRejected) {
  EXPECT_THROW(minimpi::run(3,
                            [](minimpi::Comm& comm) {
                              (void)sp_run(comm, SpConfig{8, 8, 8, 1, 0.02, 0.05});
                            }),
               std::invalid_argument);
}

}  // namespace
