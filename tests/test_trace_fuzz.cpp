// Trace-format robustness: random round-trips and corruption fuzzing.
// The reader must never crash or hand back garbage silently — truncated
// and bit-flipped inputs either parse to a structurally valid trace or
// fail with a Status.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "trace/align.hpp"
#include "trace/reader.hpp"
#include "trace/writer.hpp"

namespace {

using namespace tempest::trace;

Trace random_trace(std::mt19937& rng) {
  std::uniform_int_distribution<int> small(0, 8);
  std::uniform_int_distribution<std::uint64_t> tsc(0, 1'000'000'000ULL);
  std::uniform_real_distribution<double> temp(20.0, 60.0);

  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.executable = "/fuzz/exe";
  t.load_bias = rng();
  const int nodes = 1 + small(rng) % 4;
  for (int n = 0; n < nodes; ++n) {
    t.nodes.push_back({static_cast<std::uint16_t>(n), "node" + std::to_string(n)});
    const int sensors = 1 + small(rng) % 3;
    for (int s = 0; s < sensors; ++s) {
      t.sensors.push_back({static_cast<std::uint16_t>(n),
                           static_cast<std::uint16_t>(s),
                           "s" + std::to_string(s), 1.0});
    }
  }
  const int threads = 1 + small(rng) % 3;
  for (int th = 0; th < threads; ++th) {
    t.threads.push_back({static_cast<std::uint32_t>(th),
                         static_cast<std::uint16_t>(th % nodes), 0});
  }
  const int events = small(rng) * 20;
  for (int e = 0; e < events; ++e) {
    t.fn_events.push_back({tsc(rng), 0x1000 + static_cast<std::uint64_t>(small(rng)),
                           static_cast<std::uint32_t>(small(rng) % threads),
                           static_cast<std::uint16_t>(small(rng) % nodes),
                           (e % 2 == 0) ? FnEventKind::kEnter : FnEventKind::kExit});
  }
  const int samples = small(rng) * 10;
  for (int s = 0; s < samples; ++s) {
    t.temp_samples.push_back({tsc(rng), temp(rng),
                              static_cast<std::uint16_t>(small(rng) % nodes), 0});
  }
  for (int c = 0; c < small(rng); ++c) {
    t.clock_syncs.push_back({tsc(rng), tsc(rng),
                             static_cast<std::uint16_t>(small(rng) % nodes)});
  }
  t.synthetic_symbols.push_back({kSyntheticAddrBase, "fuzz_region"});
  return t;
}

class TraceFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TraceFuzz, RoundTripIsLossless) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const Trace original = random_trace(rng);
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  auto loaded = read_trace(buffer);
  ASSERT_TRUE(loaded.is_ok()) << loaded.message();
  const Trace& t = loaded.value();
  EXPECT_EQ(t.nodes.size(), original.nodes.size());
  EXPECT_EQ(t.sensors.size(), original.sensors.size());
  EXPECT_EQ(t.threads.size(), original.threads.size());
  ASSERT_EQ(t.fn_events.size(), original.fn_events.size());
  ASSERT_EQ(t.temp_samples.size(), original.temp_samples.size());
  EXPECT_EQ(t.clock_syncs.size(), original.clock_syncs.size());
  for (std::size_t i = 0; i < t.fn_events.size(); ++i) {
    EXPECT_EQ(t.fn_events[i].tsc, original.fn_events[i].tsc);
    EXPECT_EQ(t.fn_events[i].addr, original.fn_events[i].addr);
    EXPECT_EQ(t.fn_events[i].kind, original.fn_events[i].kind);
  }
  for (std::size_t i = 0; i < t.temp_samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(t.temp_samples[i].temp_c, original.temp_samples[i].temp_c);
  }
}

TEST_P(TraceFuzz, TruncationAtEveryBoundaryFailsCleanly) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const Trace original = random_trace(rng);
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  const std::string full = buffer.str();

  std::uniform_int_distribution<std::size_t> cut_dist(0, full.size() - 1);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t cut = cut_dist(rng);
    std::stringstream damaged(full.substr(0, cut));
    auto result = read_trace(damaged);  // must not crash
    if (result.is_ok()) {
      // Only acceptable if the cut landed beyond all payload (never,
      // since we cut strictly inside) — so a success here is a bug.
      ADD_FAILURE() << "truncated trace at " << cut << "/" << full.size()
                    << " parsed successfully";
    } else {
      EXPECT_FALSE(result.message().empty());
    }
  }
}

TEST_P(TraceFuzz, BitFlipsNeverCrash) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 1000);
  const Trace original = random_trace(rng);
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  std::string bytes = buffer.str();

  std::uniform_int_distribution<std::size_t> pos_dist(0, bytes.size() - 1);
  std::uniform_int_distribution<int> bit_dist(0, 7);
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = bytes;
    // Flip 1-3 random bits.
    for (int f = 0; f <= trial % 3; ++f) {
      mutated[pos_dist(rng)] ^= static_cast<char>(1 << bit_dist(rng));
    }
    std::stringstream damaged(mutated);
    auto result = read_trace(damaged);
    if (result.is_ok()) {
      // Structurally valid result: alignment and sorting must also
      // survive whatever the flip produced.
      Trace t = std::move(result).value();
      EXPECT_TRUE(align_clocks(&t));
      t.sort_by_time();
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzz, ::testing::Range(0, 10));

}  // namespace
