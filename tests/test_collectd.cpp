// tempest-collectd: wire codec round-trips, collector fold equivalence
// against the offline RankFanIn path, and a multi-session hammer with
// abrupt disconnects, slow-loris stalls, and oversized-frame rejection.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "collectd/client.hpp"
#include "collectd/collector.hpp"
#include "collectd/net.hpp"
#include "collectd/profile_client.hpp"
#include "collectd/wire.hpp"
#include "parser/profile.hpp"
#include "pipeline/rank_fanin.hpp"
#include "pipeline/sinks.hpp"
#include "pipeline/stage.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"

namespace {

using namespace tempest;
using namespace tempest::trace;
namespace collectd = tempest::collectd;
namespace pipeline = tempest::pipeline;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Short socket path: sun_path is ~108 bytes and TempDir can be deep.
std::string sock_path(const std::string& name) {
  return "/tmp/tempest_test_" + std::to_string(::getpid()) + "_" + name;
}

bool wait_until(const std::function<bool()>& pred, double timeout_s = 10.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// One session's synthetic trace: its own node/thread/sensor ids
/// (disjoint across sessions, like real per-rank recordings), no clock
/// syncs (single clock domain — the collector folds raw timestamps, so
/// sync-free sessions make the offline comparison exact), time-sorted.
Trace session_trace(std::uint16_t id, std::size_t pairs) {
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.executable = "fleet_app";  // nonexistent: synthetic names resolve
  t.nodes = {{id, "host" + std::to_string(id)}};
  t.sensors = {{id, 0, "cpu", 0.0}};
  t.threads = {{id, id, 0}};
  const std::uint64_t kShared = kSyntheticAddrBase + 1;
  const std::uint64_t kOwn = kSyntheticAddrBase + 100 + id;
  t.synthetic_symbols = {{kShared, "shared_fn"},
                         {kOwn, "own_fn_" + std::to_string(id)}};

  const std::uint64_t base = 1000 + id * 7;
  for (std::size_t p = 0; p < pairs; ++p) {
    const std::uint64_t at = base + p * 1000;
    const std::uint64_t fn = (p % 2 == 0) ? kShared : kOwn;
    t.fn_events.push_back({at, fn, id, id, FnEventKind::kEnter});
    t.fn_events.push_back({at + 400 + id, fn, id, id, FnEventKind::kExit});
  }
  for (std::size_t s = 0; s < pairs / 4 + 1; ++s) {
    t.temp_samples.push_back(
        {base + s * 4000, 40.0 + id * 0.1 + s * 0.5, id, 0});
  }
  t.sort_by_time();

  t.run_stats.present = true;
  t.run_stats.events_recorded = t.fn_events.size();
  t.run_stats.calls_observed = t.fn_events.size();
  t.run_stats.tempd_samples = t.temp_samples.size();
  t.run_stats.threads_registered = 1;
  t.run_stats.wall_seconds = 0.5;
  t.run_stats.tempd_cpu_seconds = 0.001;
  return t;
}

/// Stream one sealed session over the client, exactly the recording
/// side's stop() order.
/// Streams a whole session; returns whether every send succeeded (the
/// connection was still alive when BYE went out, before close()).
bool stream_session(collectd::CollectClient* client, const Trace& t,
                    std::uint64_t pid) {
  client->send_hello(pid, t.executable);
  client->send_heartbeat("{\"t\":0.1,\"schema_version\":1,\"seq\":1,"
                         "\"events_recorded\":1}");
  client->send_meta(t);
  client->send_clock_syncs(t.clock_syncs);
  client->send_fn_events(t.fn_events.data(), t.fn_events.size());
  client->send_temp_samples(t.temp_samples.data(), t.temp_samples.size());
  client->send_bye(t.fn_events.size(), t.temp_samples.size());
  const bool ok = client->alive();
  client->close();
  return ok;
}

/// Offline reference: RankFanIn over the written session files, folded
/// with the same fleet fold the collector applies.
std::map<std::string, collectd::FleetFunction> offline_fleet(
    const std::vector<std::string>& paths) {
  auto opened = pipeline::RankFanIn::open(paths);
  EXPECT_TRUE(opened.is_ok()) << opened.message();
  auto fan = std::move(opened).value();
  pipeline::AnalysisSink sink;
  const Status ran = pipeline::run_pipeline(&fan, {}, {&sink});
  EXPECT_TRUE(ran) << ran.message();
  std::map<std::string, collectd::FleetFunction> fleet;
  collectd::fold_profile(sink.result().profile, &fleet);
  return fleet;
}

// -- wire codec --------------------------------------------------------

TEST(Wire, FrameHeaderRoundTrip) {
  char header[collectd::kFrameHeaderBytes];
  collectd::encode_frame_header(header, collectd::FrameType::kEvents, 12345);
  collectd::FrameType type;
  std::uint32_t len = 0;
  EXPECT_EQ(collectd::decode_frame_header(header, &type, &len),
            collectd::HeaderParse::kOk);
  EXPECT_EQ(type, collectd::FrameType::kEvents);
  EXPECT_EQ(len, 12345u);

  header[0] = 'X';
  EXPECT_EQ(collectd::decode_frame_header(header, &type, &len),
            collectd::HeaderParse::kBadMagic);
  collectd::encode_frame_header(header, collectd::FrameType::kEvents, 1);
  header[2] = 99;
  EXPECT_EQ(collectd::decode_frame_header(header, &type, &len),
            collectd::HeaderParse::kBadType);
}

TEST(Wire, HelloAndByeRoundTrip) {
  collectd::Hello hello;
  hello.pid = 4242;
  hello.name = "/usr/bin/app";
  collectd::Hello back;
  ASSERT_TRUE(collectd::unpack_hello(collectd::pack_hello(hello), &back));
  EXPECT_EQ(back.protocol, collectd::kProtocolVersion);
  EXPECT_EQ(back.pid, 4242u);
  EXPECT_EQ(back.name, "/usr/bin/app");
  EXPECT_FALSE(collectd::unpack_hello("short", &back));

  collectd::Bye bye;
  bye.events_sent = 7;
  bye.samples_sent = 9;
  collectd::Bye bye_back;
  ASSERT_TRUE(collectd::unpack_bye(collectd::pack_bye(bye), &bye_back));
  EXPECT_EQ(bye_back.events_sent, 7u);
  EXPECT_EQ(bye_back.samples_sent, 9u);
}

TEST(Wire, RecordSectionsRoundTrip) {
  const Trace t = session_trace(3, 8);
  std::vector<FnEvent> events;
  ASSERT_TRUE(collectd::unpack_fn_events(
      collectd::pack_fn_events(t.fn_events.data(), t.fn_events.size()),
      &events));
  ASSERT_EQ(events.size(), t.fn_events.size());
  EXPECT_EQ(events.front().tsc, t.fn_events.front().tsc);
  EXPECT_EQ(events.back().addr, t.fn_events.back().addr);

  std::vector<TempSample> samples;
  ASSERT_TRUE(collectd::unpack_temp_samples(
      collectd::pack_temp_samples(t.temp_samples.data(), t.temp_samples.size()),
      &samples));
  ASSERT_EQ(samples.size(), t.temp_samples.size());
  EXPECT_DOUBLE_EQ(samples.front().temp_c, t.temp_samples.front().temp_c);

  // A payload that is not a whole number of records is malformed.
  std::string truncated =
      collectd::pack_fn_events(t.fn_events.data(), t.fn_events.size());
  truncated.pop_back();
  std::vector<FnEvent> none;
  EXPECT_FALSE(collectd::unpack_fn_events(truncated, &none));
}

TEST(Wire, MetaRoundTripCarriesRunStatsAndSymbols) {
  const Trace t = session_trace(5, 4);
  const std::string payload = collectd::pack_meta(t);
  ASSERT_FALSE(payload.empty());
  Trace back;
  ASSERT_TRUE(collectd::unpack_meta(payload, &back));
  EXPECT_EQ(back.nodes.size(), 1u);
  EXPECT_EQ(back.nodes[0].hostname, "host5");
  EXPECT_EQ(back.threads.size(), 1u);
  EXPECT_EQ(back.synthetic_symbols.size(), 2u);
  EXPECT_EQ(back.synthetic_symbols[0].name, "shared_fn");
  EXPECT_TRUE(back.run_stats.present);
  EXPECT_EQ(back.run_stats.calls_observed, t.fn_events.size());
  // Bulk sections stay behind: META is metadata-only.
  EXPECT_TRUE(back.fn_events.empty());
  EXPECT_FALSE(collectd::unpack_meta("not a trace", &back));
}

TEST(Wire, JsonNumberScansFlatHeartbeatLines) {
  const std::string line = "{\"t\":1.5,\"schema_version\":1,\"seq\":42}";
  EXPECT_DOUBLE_EQ(collectd::json_number(line, "t", -1.0), 1.5);
  EXPECT_DOUBLE_EQ(collectd::json_number(line, "seq", -1.0), 42.0);
  EXPECT_DOUBLE_EQ(collectd::json_number(line, "absent", -1.0), -1.0);
}

TEST(Net, EndpointParsing) {
  collectd::Endpoint ep;
  EXPECT_TRUE(collectd::parse_endpoint("uds:/tmp/x.sock", &ep));
  EXPECT_TRUE(ep.uds);
  EXPECT_EQ(ep.path, "/tmp/x.sock");
  EXPECT_TRUE(collectd::parse_endpoint("tcp:localhost:9000", &ep));
  EXPECT_FALSE(ep.uds);
  EXPECT_EQ(ep.host, "localhost");
  EXPECT_EQ(ep.port, 9000);
  EXPECT_TRUE(collectd::parse_endpoint("127.0.0.1:80", &ep));
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_FALSE(collectd::parse_endpoint("uds:", &ep));
  EXPECT_FALSE(collectd::parse_endpoint("localhost", &ep));
  EXPECT_FALSE(collectd::parse_endpoint("host:99999", &ep));
  EXPECT_FALSE(collectd::parse_endpoint("host:12x", &ep));
}

// -- collector fold ----------------------------------------------------

TEST(Collector, SingleSessionMatchesOfflineFold) {
  collectd::CollectorOptions options;
  options.ingest_uds = sock_path("single");
  collectd::Collector collector(options);
  ASSERT_TRUE(collector.start());

  const Trace t = session_trace(1, 50);
  const std::string path = temp_path("single_session.trace");
  ASSERT_TRUE(write_trace_file(path, t));

  collectd::CollectClient client;
  ASSERT_TRUE(client.connect("uds:" + options.ingest_uds, 2.0));
  stream_session(&client, t, 111);

  ASSERT_TRUE(wait_until(
      [&] { return collector.fleet().sessions_folded == 1; }));
  const collectd::FleetSnapshot fleet = collector.fleet();
  EXPECT_EQ(fleet.sessions_aborted, 0u);

  const auto offline = offline_fleet({path});
  ASSERT_EQ(fleet.functions.size(), offline.size());
  for (const auto& [name, fn] : offline) {
    auto it = fleet.functions.find(name);
    ASSERT_NE(it, fleet.functions.end()) << name;
    EXPECT_EQ(it->second.calls, fn.calls) << name;
    EXPECT_NEAR(it->second.total_time_s, fn.total_time_s,
                1e-9 * (1.0 + std::abs(fn.total_time_s)))
        << name;
  }

  // RunStats ride through the fold with the conservation invariant.
  EXPECT_TRUE(fleet.run_stats.present);
  EXPECT_EQ(fleet.run_stats.calls_observed, t.fn_events.size());
  EXPECT_EQ(fleet.run_stats.events_recorded +
                fleet.run_stats.events_suppressed +
                fleet.run_stats.events_throttled +
                fleet.run_stats.events_dropped +
                fleet.run_stats.events_overwritten,
            fleet.run_stats.calls_observed);
  collector.stop();
}

TEST(Collector, HammerManySessionsWithDisconnects) {
  // 32 concurrent senders; every 4th vanishes mid-chunk (a partial
  // EVENTS frame then an abrupt close). The fleet rollup must equal the
  // offline RankFanIn of exactly the clean sessions.
  constexpr int kSessions = 32;
  collectd::CollectorOptions options;
  options.ingest_uds = sock_path("hammer");
  options.max_queue_frames = 8;  // exercise backpressure pause/resume
  collectd::Collector collector(options);
  ASSERT_TRUE(collector.start());

  std::vector<Trace> traces;
  std::vector<std::string> clean_paths;
  std::uint64_t clean_count = 0, dirty_count = 0;
  for (int i = 0; i < kSessions; ++i) {
    traces.push_back(session_trace(static_cast<std::uint16_t>(i), 120));
    if (i % 4 == 3) {
      ++dirty_count;
    } else {
      ++clean_count;
      const std::string path =
          temp_path("hammer_" + std::to_string(i) + ".trace");
      EXPECT_TRUE(write_trace_file(path, traces.back()));
      clean_paths.push_back(path);
    }
  }

  std::vector<std::thread> senders;
  senders.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    senders.emplace_back([&, i] {
      const Trace& t = traces[static_cast<std::size_t>(i)];
      if (i % 4 == 3) {
        // Abrupt mid-chunk death: a frame header promising more payload
        // than ever arrives, then close. Must abort, never fold.
        collectd::Endpoint ep;
        ASSERT_TRUE(
            collectd::parse_endpoint("uds:" + options.ingest_uds, &ep));
        auto fd = collectd::connect_endpoint(ep, 2.0);
        ASSERT_TRUE(fd.is_ok()) << fd.message();
        collectd::Hello hello;
        hello.pid = 1000 + static_cast<std::uint64_t>(i);
        hello.name = t.executable;
        const std::string hello_payload = collectd::pack_hello(hello);
        char header[collectd::kFrameHeaderBytes];
        collectd::encode_frame_header(
            header, collectd::FrameType::kHello,
            static_cast<std::uint32_t>(hello_payload.size()));
        ASSERT_TRUE(collectd::send_all(fd.value(), header, sizeof(header)));
        ASSERT_TRUE(collectd::send_all(fd.value(), hello_payload.data(),
                                       hello_payload.size()));
        const std::string events =
            collectd::pack_fn_events(t.fn_events.data(), t.fn_events.size());
        collectd::encode_frame_header(
            header, collectd::FrameType::kEvents,
            static_cast<std::uint32_t>(events.size()));
        ASSERT_TRUE(collectd::send_all(fd.value(), header, sizeof(header)));
        ASSERT_TRUE(
            collectd::send_all(fd.value(), events.data(), events.size() / 2));
        ::close(fd.value());
        return;
      }
      collectd::CollectClient client;
      ASSERT_TRUE(client.connect("uds:" + options.ingest_uds, 5.0));
      EXPECT_TRUE(stream_session(&client, t,
                                 1000 + static_cast<std::uint64_t>(i)))
          << "a send failed for clean session " << i;
    });
  }
  for (auto& s : senders) s.join();

  ASSERT_TRUE(wait_until([&] {
    const auto fleet = collector.fleet();
    return fleet.sessions_folded == clean_count &&
           fleet.sessions_aborted == dirty_count;
  })) << "folded=" << collector.fleet().sessions_folded
      << " aborted=" << collector.fleet().sessions_aborted;

  const collectd::FleetSnapshot fleet = collector.fleet();
  const auto offline = offline_fleet(clean_paths);
  ASSERT_EQ(fleet.functions.size(), offline.size());
  for (const auto& [name, fn] : offline) {
    auto it = fleet.functions.find(name);
    ASSERT_NE(it, fleet.functions.end()) << name;
    EXPECT_EQ(it->second.calls, fn.calls) << name;
    EXPECT_NEAR(it->second.total_time_s, fn.total_time_s,
                1e-6 * (1.0 + std::abs(fn.total_time_s)))
        << name;
  }
  // shared_fn ran in every folded session; the fleet fold tracks that
  // (the offline merged run can't — it is one run).
  auto shared = fleet.functions.find("shared_fn");
  ASSERT_NE(shared, fleet.functions.end());
  EXPECT_EQ(shared->second.sessions, clean_count);

  // Conservation across the count-weighted RunStats append fold.
  std::uint64_t expected_calls = 0;
  for (int i = 0; i < kSessions; ++i) {
    if (i % 4 != 3) expected_calls += traces[i].fn_events.size();
  }
  EXPECT_TRUE(fleet.run_stats.present);
  EXPECT_EQ(fleet.run_stats.calls_observed, expected_calls);
  EXPECT_EQ(fleet.run_stats.events_recorded +
                fleet.run_stats.events_suppressed +
                fleet.run_stats.events_throttled +
                fleet.run_stats.events_dropped +
                fleet.run_stats.events_overwritten,
            fleet.run_stats.calls_observed);
  collector.stop();
}

TEST(Collector, RejectsOversizedFrame) {
  collectd::CollectorOptions options;
  options.ingest_uds = sock_path("oversized");
  options.max_frame_bytes = 1024;
  collectd::Collector collector(options);
  ASSERT_TRUE(collector.start());

  collectd::Endpoint ep;
  ASSERT_TRUE(collectd::parse_endpoint("uds:" + options.ingest_uds, &ep));
  auto fd = collectd::connect_endpoint(ep, 2.0);
  ASSERT_TRUE(fd.is_ok()) << fd.message();
  char header[collectd::kFrameHeaderBytes];
  collectd::encode_frame_header(header, collectd::FrameType::kEvents,
                                1u << 20);
  ASSERT_TRUE(collectd::send_all(fd.value(), header, sizeof(header)));

  ASSERT_TRUE(wait_until(
      [&] { return collector.fleet().sessions_aborted == 1; }));
  EXPECT_EQ(collector.fleet().sessions_folded, 0u);
  ::close(fd.value());
  collector.stop();
}

TEST(Collector, SlowLorisIsReapedWhileOthersFold) {
  collectd::CollectorOptions options;
  options.ingest_uds = sock_path("loris");
  options.idle_timeout_s = 0.3;
  collectd::Collector collector(options);
  ASSERT_TRUE(collector.start());

  // The stalled connection: half a frame header, then silence.
  collectd::Endpoint ep;
  ASSERT_TRUE(collectd::parse_endpoint("uds:" + options.ingest_uds, &ep));
  auto stalled = collectd::connect_endpoint(ep, 2.0);
  ASSERT_TRUE(stalled.is_ok()) << stalled.message();
  ASSERT_TRUE(collectd::send_all(stalled.value(), "TC", 2));

  // A well-behaved session folds while the loris stalls.
  const Trace t = session_trace(9, 30);
  collectd::CollectClient client;
  ASSERT_TRUE(client.connect("uds:" + options.ingest_uds, 2.0));
  stream_session(&client, t, 99);

  ASSERT_TRUE(wait_until([&] {
    const auto fleet = collector.fleet();
    return fleet.sessions_folded == 1 && fleet.sessions_aborted == 1;
  }));
  ::close(stalled.value());
  collector.stop();
}

TEST(Collector, HeartbeatSeqGapsAndRestartsAreCounted) {
  collectd::CollectorOptions options;
  options.ingest_uds = sock_path("hbseq");
  collectd::Collector collector(options);
  ASSERT_TRUE(collector.start());

  collectd::CollectClient client;
  ASSERT_TRUE(client.connect("uds:" + options.ingest_uds, 2.0));
  client.send_hello(7, "hb_app");
  client.send_heartbeat("{\"t\":0.1,\"schema_version\":1,\"seq\":1}");
  client.send_heartbeat("{\"t\":0.5,\"schema_version\":1,\"seq\":5}");  // gap: 2..4 lost
  client.send_heartbeat("{\"t\":0.2,\"schema_version\":1,\"seq\":2}");  // restart

  std::string body;
  ASSERT_TRUE(wait_until([&] {
    body.clear();
    return collector.handle_query("/sessions", &body) == 200 &&
           body.find("\"heartbeats\":3") != std::string::npos;
  }));
  EXPECT_NE(body.find("\"heartbeat_gaps\":3"), std::string::npos) << body;
  EXPECT_NE(body.find("\"heartbeat_restarts\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"last_seq\":2"), std::string::npos) << body;
  client.close();
  collector.stop();
}

TEST(Collector, TopFadesOutFinishedSessions) {
  collectd::CollectorOptions options;
  options.ingest_uds = sock_path("topfade");
  options.top_freshness_s = 0.0;  // finished sessions drop out at once
  collectd::Collector collector(options);
  ASSERT_TRUE(collector.start());

  // One session folds (its stream_session heartbeat says
  // events_recorded:1), one stays live with events_recorded:10.
  const Trace t = session_trace(3, 8);
  collectd::CollectClient done;
  ASSERT_TRUE(done.connect("uds:" + options.ingest_uds, 2.0));
  ASSERT_TRUE(stream_session(&done, t, 31));
  ASSERT_TRUE(wait_until(
      [&] { return collector.fleet().sessions_folded == 1; }));

  collectd::CollectClient live;
  ASSERT_TRUE(live.connect("uds:" + options.ingest_uds, 2.0));
  live.send_hello(32, "live_app");
  live.send_heartbeat("{\"t\":1.5,\"schema_version\":1,\"seq\":1,"
                      "\"events_recorded\":10}");
  ASSERT_TRUE(wait_until([&] {
    std::string body;
    return collector.handle_query("/sessions", &body) == 200 &&
           body.find("\"last_t\":1.5") != std::string::npos;
  }));

  // The dead session's final heartbeat must not be double-counted into
  // the live fleet view: only the live session contributes.
  std::string top;
  ASSERT_EQ(collector.handle_query("/top", &top), 200);
  EXPECT_NE(top.find("\"events_recorded\":10"), std::string::npos) << top;
  live.close();
  collector.stop();
}

TEST(Collector, TerminalSessionsAreReapedBeyondRetentionCap) {
  collectd::CollectorOptions options;
  options.ingest_uds = sock_path("reap");
  options.max_terminal_sessions = 2;
  collectd::Collector collector(options);
  ASSERT_TRUE(collector.start());

  constexpr int kRuns = 5;
  for (int i = 0; i < kRuns; ++i) {
    const Trace t = session_trace(static_cast<std::uint16_t>(i + 1), 4);
    collectd::CollectClient client;
    ASSERT_TRUE(client.connect("uds:" + options.ingest_uds, 2.0));
    ASSERT_TRUE(stream_session(&client, t, 100 + i));
  }
  ASSERT_TRUE(wait_until([&] {
    return collector.fleet().sessions_folded == kRuns;
  }));

  // The /sessions detail map is bounded by the cap; the fleet rollup
  // still remembers every fold.
  ASSERT_TRUE(wait_until([&] {
    std::string body;
    if (collector.handle_query("/sessions", &body) != 200) return false;
    std::size_t entries = 0;
    for (std::size_t pos = body.find("\"id\":"); pos != std::string::npos;
         pos = body.find("\"id\":", pos + 1)) {
      ++entries;
    }
    return entries <= options.max_terminal_sessions;
  }));
  EXPECT_EQ(collector.fleet().sessions_folded,
            static_cast<std::uint64_t>(kRuns));
  collector.stop();
}

// -- query plane -------------------------------------------------------

TEST(Collector, QueryPlaneServesAllEndpoints) {
  collectd::CollectorOptions options;
  options.ingest_uds = sock_path("http");
  collectd::Collector collector(options);
  ASSERT_TRUE(collector.start());
  ASSERT_GT(collector.http_port(), 0);

  const Trace t = session_trace(2, 20);
  collectd::CollectClient client;
  ASSERT_TRUE(client.connect("uds:" + options.ingest_uds, 2.0));
  stream_session(&client, t, 22);
  ASSERT_TRUE(wait_until(
      [&] { return collector.fleet().sessions_folded == 1; }));

  // A second session that stays live: /top is a live fleet view, so
  // only this one's heartbeat may contribute to the aggregate.
  collectd::CollectClient live;
  ASSERT_TRUE(live.connect("uds:" + options.ingest_uds, 2.0));
  live.send_hello(23, "live_app");
  live.send_heartbeat("{\"t\":2.5,\"schema_version\":1,\"seq\":3,"
                      "\"events_recorded\":10}");
  ASSERT_TRUE(wait_until([&] {
    std::string body;
    return collector.handle_query("/sessions", &body) == 200 &&
           body.find("\"last_t\":2.5") != std::string::npos;
  }));

  const std::string spec =
      "127.0.0.1:" + std::to_string(collector.http_port());
  auto health = collectd::http_get(spec, "/healthz", 2.0);
  ASSERT_TRUE(health.is_ok()) << health.message();
  EXPECT_NE(health.value().find("\"status\":\"ok\""), std::string::npos);

  auto profile = collectd::http_get(spec, "/profile?top=1", 2.0);
  ASSERT_TRUE(profile.is_ok()) << profile.message();
  EXPECT_NE(profile.value().find("\"sessions_folded\":1"), std::string::npos);
  // top=1 keeps only the hottest function.
  EXPECT_EQ(profile.value().find("own_fn") != std::string::npos &&
                profile.value().find("shared_fn") != std::string::npos,
            false);

  auto runstats = collectd::http_get(spec, "/runstats", 2.0);
  ASSERT_TRUE(runstats.is_ok()) << runstats.message();
  EXPECT_NE(runstats.value().find("\"conservation_ok\":true"),
            std::string::npos);

  auto metrics = collectd::http_get(spec, "/metrics", 2.0);
  ASSERT_TRUE(metrics.is_ok()) << metrics.message();
  EXPECT_NE(metrics.value().find("\"collect_sessions_folded\":"),
            std::string::npos);

  auto top = collectd::http_get(spec, "/top", 2.0);
  ASSERT_TRUE(top.is_ok()) << top.message();
  EXPECT_NE(top.value().find("\"schema_version\":1"), std::string::npos);
  // The just-folded session is still inside the /top freshness window,
  // so its final heartbeat (events_recorded:1) sums with the live
  // session's (10). TopFadesOutFinishedSessions pins the fade-out.
  EXPECT_NE(top.value().find("\"events_recorded\":11"), std::string::npos)
      << top.value();
  live.close();

  auto missing = collectd::http_get(spec, "/nope", 2.0);
  EXPECT_FALSE(missing.is_ok());

  // The socket-free path used by tests and the daemon's own plumbing.
  std::string body;
  EXPECT_EQ(collector.handle_query("/sessions", &body), 200);
  EXPECT_NE(body.find("\"state\":\"folded\""), std::string::npos);
  EXPECT_EQ(collector.handle_query("/bogus", &body), 404);
  collector.stop();
}

TEST(Collector, StartRequiresAnIngestEndpoint) {
  collectd::CollectorOptions options;  // neither uds nor tcp
  collectd::Collector collector(options);
  EXPECT_FALSE(collector.start());
}

TEST(Collector, TcpIngestFoldsASession) {
  collectd::CollectorOptions options;
  options.ingest_tcp = "127.0.0.1:0";
  collectd::Collector collector(options);
  // Ephemeral TCP ingest: we cannot read the bound port back from the
  // options, so use a fixed high port with retry-on-busy semantics
  // instead — bind a throwaway listener to find a free port first.
  {
    collectd::Endpoint probe;
    ASSERT_TRUE(collectd::parse_endpoint("127.0.0.1:0", &probe));
    auto lfd = collectd::listen_endpoint(probe, 1);
    ASSERT_TRUE(lfd.is_ok());
    auto port = collectd::local_port(lfd.value());
    ASSERT_TRUE(port.is_ok());
    ::close(lfd.value());
    options.ingest_tcp = "127.0.0.1:" + std::to_string(port.value());
  }
  collectd::Collector bound(options);
  ASSERT_TRUE(bound.start());

  const Trace t = session_trace(4, 10);
  collectd::CollectClient client;
  ASSERT_TRUE(client.connect("tcp:" + options.ingest_tcp, 2.0));
  stream_session(&client, t, 44);
  ASSERT_TRUE(wait_until(
      [&] { return bound.fleet().sessions_folded == 1; }));
  bound.stop();
}

// -- fleet time-moment pooling and the Prometheus exposition ----------

TEST(Collector, FoldProfilePoolsTimeMoments) {
  // Two "sessions" with known per-activation moments: n=2 mean 10 var 4
  // then n=3 mean 20 var 9. Chan combine: n=5, mean 16,
  // M2 = 2*4 + 3*9 + (20-10)^2 * 2*3/5 = 155, var = 31.
  auto run_with = [](std::uint64_t count, double mean, double var) {
    parser::RunProfile profile;
    parser::NodeProfile node;
    node.node_id = 0;
    parser::FunctionProfile fn;
    fn.name = "pooled_fn";
    fn.calls = count;
    fn.total_time_s = mean * static_cast<double>(count);
    fn.time.count = count;
    fn.time.mean_s = mean;
    fn.time.var_s2 = var;
    fn.time.sdv_s = std::sqrt(var);
    node.functions.push_back(fn);
    profile.nodes.push_back(node);
    return profile;
  };

  std::map<std::string, collectd::FleetFunction> fleet;
  collectd::fold_profile(run_with(2, 10.0, 4.0), &fleet);
  collectd::fold_profile(run_with(3, 20.0, 9.0), &fleet);

  ASSERT_EQ(fleet.count("pooled_fn"), 1u);
  const collectd::FleetFunction& f = fleet["pooled_fn"];
  EXPECT_EQ(f.sessions, 2u);
  EXPECT_EQ(f.activations, 5u);
  EXPECT_NEAR(f.time_mean_s, 16.0, 1e-12);
  EXPECT_NEAR(f.time_m2, 155.0, 1e-9);
  EXPECT_NEAR(f.time_var_s2(), 31.0, 1e-9);

  // A profile with no activation stats still folds calls/time but
  // leaves the moments untouched.
  parser::RunProfile no_stats = run_with(0, 0.0, 0.0);
  no_stats.nodes[0].functions[0].calls = 7;
  no_stats.nodes[0].functions[0].total_time_s = 1.5;
  collectd::fold_profile(no_stats, &fleet);
  EXPECT_EQ(fleet["pooled_fn"].activations, 5u);
  EXPECT_EQ(fleet["pooled_fn"].calls, 12u);
}

TEST(Collector, MetricsServesPrometheusOnRequest) {
  collectd::CollectorOptions options;
  options.ingest_uds = sock_path("prom");
  collectd::Collector collector(options);
  ASSERT_TRUE(collector.start());

  std::string body, content_type;
  // Default stays JSON (existing scrapers and the 2-arg overload).
  EXPECT_EQ(collector.handle_query("/metrics", "", &body, &content_type), 200);
  EXPECT_EQ(content_type, "application/json");
  EXPECT_EQ(body.front(), '{');

  // Explicit query parameter wins regardless of Accept.
  EXPECT_EQ(collector.handle_query("/metrics?format=prometheus",
                                   "application/json", &body, &content_type),
            200);
  EXPECT_EQ(content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(body.find("# TYPE tempest_collect_sessions_folded counter"),
            std::string::npos);
  EXPECT_NE(body.find("tempest_uptime_seconds "), std::string::npos);
  // Histograms expose cumulative buckets with the canonical +Inf bound.
  EXPECT_NE(body.find("_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(body.find("# TYPE tempest_collect_fold_us histogram"),
            std::string::npos);

  // Accept-header negotiation picks Prometheus for text/plain scrapers…
  EXPECT_EQ(collector.handle_query("/metrics", "text/plain;version=0.0.4",
                                   &body, &content_type),
            200);
  EXPECT_EQ(content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(body.compare(0, 7, "# TYPE "), 0);

  // …and ?format=json forces JSON back even for such a scraper.
  EXPECT_EQ(collector.handle_query("/metrics?format=json", "text/plain", &body,
                                   &content_type),
            200);
  EXPECT_EQ(content_type, "application/json");
  EXPECT_EQ(body.front(), '{');
  collector.stop();
}

TEST(Collector, ProfileServesPooledTimeStats) {
  collectd::CollectorOptions options;
  options.ingest_uds = sock_path("timestats");
  collectd::Collector collector(options);
  ASSERT_TRUE(collector.start());

  const Trace t = session_trace(6, 20);
  collectd::CollectClient client;
  ASSERT_TRUE(client.connect("uds:" + options.ingest_uds, 2.0));
  ASSERT_TRUE(stream_session(&client, t, 66));
  ASSERT_TRUE(wait_until(
      [&] { return collector.fleet().sessions_folded == 1; }));

  std::string body;
  ASSERT_EQ(collector.handle_query("/profile", &body), 200);
  EXPECT_NE(body.find("\"activations\":"), std::string::npos) << body;
  EXPECT_NE(body.find("\"time_mean_s\":"), std::string::npos) << body;
  EXPECT_NE(body.find("\"time_var_s2\":"), std::string::npos) << body;

  // The diff's poll-mode client parses the same body back; every
  // session_trace activation lasts (400 + id) ticks at 1e9/s, so the
  // pooled mean is exact and the variance is zero.
  auto view = collectd::parse_fleet_profile(body);
  ASSERT_TRUE(view.is_ok()) << view.message();
  EXPECT_EQ(view.value().sessions_folded, 1u);
  bool shared_seen = false;
  for (const auto& fn : view.value().functions) {
    if (fn.name != "shared_fn") continue;
    shared_seen = true;
    EXPECT_EQ(fn.sessions, 1u);
    EXPECT_NEAR(fn.time_mean_s, 406e-9, 1e-15);
    EXPECT_NEAR(fn.time_var_s2, 0.0, 1e-18);
  }
  EXPECT_TRUE(shared_seen) << body;
  collector.stop();
}

}  // namespace
