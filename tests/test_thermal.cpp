// Thermal substrate: RC network physics, power model, fan, DVFS,
// CPU package behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "thermal/cpu_package.hpp"
#include "thermal/dvfs.hpp"
#include "thermal/fan.hpp"
#include "thermal/power.hpp"
#include "thermal/rc_network.hpp"

namespace {

using namespace tempest::thermal;

TEST(RcNetwork, SingleNodeExponentialApproach) {
  // One node: C dT/dt = P - G (T - Tamb); analytic steady state
  // T = Tamb + P/G, time constant tau = C/G.
  RcNetwork net;
  net.set_ambient_temp(25.0);
  const std::size_t n = net.add_node("die", 2.0, 25.0);
  net.connect_ambient(n, 0.5);
  net.set_power(n, 10.0);

  // After one tau (4 s), T should be ~63.2% of the way to steady state.
  net.advance(4.0);
  const double target = 25.0 + 10.0 / 0.5;
  const double expected = 25.0 + (target - 25.0) * (1.0 - std::exp(-1.0));
  EXPECT_NEAR(net.temperature(n), expected, 0.05);

  // After many taus: steady state.
  net.advance(40.0);
  EXPECT_NEAR(net.temperature(n), target, 0.01);
}

TEST(RcNetwork, SettleMatchesLongIntegration) {
  RcNetwork a;
  a.set_ambient_temp(20.0);
  const auto d = a.add_node("die", 1.0, 20.0);
  const auto s = a.add_node("sink", 50.0, 20.0);
  a.connect(d, s, 2.0);
  a.connect_ambient(s, 1.0);
  a.set_power(d, 15.0);

  RcNetwork b = a;
  a.settle();
  b.advance(2000.0);
  EXPECT_NEAR(a.temperature(d), b.temperature(d), 0.01);
  EXPECT_NEAR(a.temperature(s), b.temperature(s), 0.01);
  // Analytic: sink = 20 + 15/1 = 35; die = 35 + 15/2 = 42.5.
  EXPECT_NEAR(a.temperature(s), 35.0, 1e-6);
  EXPECT_NEAR(a.temperature(d), 42.5, 1e-6);
}

TEST(RcNetwork, EnergyFlowsHotToCold) {
  RcNetwork net;
  net.set_ambient_temp(25.0);
  const auto hot = net.add_node("hot", 1.0, 80.0);
  const auto cold = net.add_node("cold", 1.0, 20.0);
  net.connect(hot, cold, 1.0);
  net.advance(0.5);
  EXPECT_LT(net.temperature(hot), 80.0);
  EXPECT_GT(net.temperature(cold), 20.0);
  // No ambient coupling: total heat conserved -> temps sum constant.
  EXPECT_NEAR(net.temperature(hot) + net.temperature(cold), 100.0, 1e-6);
}

TEST(RcNetwork, InvalidConfigurationThrows) {
  RcNetwork net;
  EXPECT_THROW(net.add_node("bad", 0.0, 25.0), std::invalid_argument);
  const auto a = net.add_node("a", 1.0, 25.0);
  EXPECT_THROW(net.connect(a, a, 1.0), std::out_of_range);
  EXPECT_THROW(net.connect(a, 5, 1.0), std::out_of_range);
  EXPECT_THROW(net.connect_ambient(a, -1.0), std::invalid_argument);
  EXPECT_THROW(net.node_index("missing"), std::out_of_range);
  EXPECT_EQ(net.node_index("a"), a);
}

TEST(PowerModel, IdleBusyAndDvfsScaling) {
  PowerModel pm(PowerParams{6.0, 5.8}, PStateTable{});
  EXPECT_DOUBLE_EQ(pm.watts(0.0, 0), 6.0);
  EXPECT_GT(pm.busy_watts(0), pm.idle_watts());
  // Lower P-state draws less at full utilisation (V^2 f scaling).
  EXPECT_LT(pm.busy_watts(2), pm.busy_watts(0));
  // Utilisation clamps.
  EXPECT_DOUBLE_EQ(pm.watts(-2.0, 0), pm.watts(0.0, 0));
  EXPECT_DOUBLE_EQ(pm.watts(5.0, 0), pm.watts(1.0, 0));
}

TEST(PStateTable, SpeedFactors) {
  PStateTable t;
  EXPECT_DOUBLE_EQ(t.speed_factor(0), 1.0);
  EXPECT_LT(t.speed_factor(1), 1.0);
  EXPECT_LT(t.speed_factor(2), t.speed_factor(1));
  EXPECT_THROW(PStateTable(std::vector<PState>{}), std::invalid_argument);
}

TEST(Fan, ConductanceGrowsWithRpmAndAutoRegulates) {
  Fan fan{FanParams{}};
  fan.set_fixed_rpm(3000.0);
  const double g3000 = fan.conductance_w_per_k();
  fan.set_fixed_rpm(6000.0);
  EXPECT_GT(fan.conductance_w_per_k(), g3000);

  fan.set_auto(true);
  fan.regulate(30.0);  // cool sink -> minimum speed
  const double low = fan.rpm();
  fan.regulate(80.0);  // hot sink -> spins up
  EXPECT_GT(fan.rpm(), low);
}

TEST(Fan, FixedRpmClampsToRange) {
  Fan fan{FanParams{}};
  fan.set_fixed_rpm(100000.0);
  EXPECT_LE(fan.rpm(), FanParams{}.max_rpm);
  fan.set_fixed_rpm(0.0);
  EXPECT_GE(fan.rpm(), FanParams{}.min_rpm);
}

TEST(Dvfs, PerformanceModePinsTopState) {
  DvfsGovernor gov(GovernorParams{}, 3);
  EXPECT_EQ(gov.evaluate(95.0), 0u);  // hot but performance mode
  EXPECT_EQ(gov.throttle_events(), 0u);
}

TEST(Dvfs, ThresholdModeThrottlesWithHysteresis) {
  GovernorParams p;
  p.mode = GovernorMode::kThreshold;
  p.high_water_c = 50.0;
  p.low_water_c = 44.0;
  DvfsGovernor gov(p, 3);

  EXPECT_EQ(gov.evaluate(45.0), 0u);  // inside band: no change
  EXPECT_EQ(gov.evaluate(51.0), 1u);  // throttle
  EXPECT_EQ(gov.evaluate(52.0), 2u);  // throttle further
  EXPECT_EQ(gov.evaluate(53.0), 2u);  // floor of the table
  EXPECT_EQ(gov.evaluate(47.0), 2u);  // hysteresis: hold
  EXPECT_EQ(gov.evaluate(43.0), 1u);  // recover
  EXPECT_EQ(gov.evaluate(43.0), 0u);
  EXPECT_EQ(gov.throttle_events(), 2u);
}

TEST(CpuPackage, IdleAndBusySteadyStatesBracketPaperRange) {
  // Defaults target the paper's Figure 2 operating range: idle low-90s F
  // (33-36 C), fully busy around 124 F (~51 C).
  CpuPackage pkg(PackageParams{});
  pkg.settle_at({0.0, 0.0});
  const double idle_c = pkg.die_temp(0);
  EXPECT_GT(idle_c, 29.0);
  EXPECT_LT(idle_c, 38.0);

  pkg.settle_at({1.0, 1.0});
  const double busy_c = pkg.die_temp(0);
  EXPECT_GT(busy_c, 45.0);
  EXPECT_LT(busy_c, 60.0);
  EXPECT_GT(busy_c, idle_c + 10.0);
}

TEST(CpuPackage, TimeScaleCompressesDynamics) {
  PackageParams slow;
  PackageParams fast = slow;
  fast.time_scale = 50.0;
  CpuPackage a(slow), b(fast);
  a.settle_at({0.0, 0.0});
  b.settle_at({0.0, 0.0});
  const double a0 = a.die_temp(0), b0 = b.die_temp(0);
  a.advance(1.0, {1.0, 1.0});
  b.advance(1.0, {1.0, 1.0});
  // The time-scaled package heats much further in the same wall second
  // (one wall second = 50 thermal seconds: heatsink nearly saturated).
  EXPECT_GT(b.die_temp(0) - b0, 1.6 * (a.die_temp(0) - a0));

  // And both converge to the SAME steady state: time_scale compresses
  // dynamics without changing the physics.
  a.settle_at({1.0, 1.0});
  b.settle_at({1.0, 1.0});
  EXPECT_NEAR(a.die_temp(0), b.die_temp(0), 1e-6);
}

TEST(CpuPackage, PerCorePowerHeatsTheBusyCoreMore) {
  CpuPackage pkg(PackageParams{});
  pkg.settle_at({0.0, 0.0});
  for (int i = 0; i < 50; ++i) pkg.advance(0.1, {1.0, 0.0});
  EXPECT_GT(pkg.die_temp(0), pkg.die_temp(1) + 1.0);
  // Both above ambient (shared spreader couples them).
  EXPECT_GT(pkg.die_temp(1), pkg.ambient_temp());
}

TEST(CpuPackage, UtilisationVectorSizeIsChecked) {
  CpuPackage pkg(PackageParams{});
  EXPECT_THROW(pkg.advance(0.1, {1.0}), std::invalid_argument);
  EXPECT_THROW(pkg.settle_at({1.0, 0.5, 0.25}), std::invalid_argument);
}

TEST(CpuPackage, ThresholdGovernorCapsTemperature) {
  PackageParams throttled;
  throttled.governor.mode = GovernorMode::kThreshold;
  throttled.governor.high_water_c = 45.0;
  throttled.governor.low_water_c = 42.0;
  throttled.time_scale = 5.0;
  PackageParams unmanaged;
  unmanaged.time_scale = 5.0;

  CpuPackage hot(unmanaged), cool(throttled);
  hot.settle_at({0.0, 0.0});
  cool.settle_at({0.0, 0.0});
  for (int i = 0; i < 300; ++i) {
    hot.advance(0.05, {1.0, 1.0});
    cool.advance(0.05, {1.0, 1.0});
  }
  EXPECT_LT(cool.hottest_die_temp(), hot.hottest_die_temp() - 1.0);
  EXPECT_GT(cool.governor().throttle_events(), 0u);
  EXPECT_LT(cool.speed_factor(), 1.0);
}

}  // namespace
