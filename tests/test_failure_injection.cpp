// Failure injection: flaky sensors, unbalanced instrumentation,
// interrupted runs — the paper notes "thermal sensor technology is
// emergent and at times unstable", so the pipeline must degrade
// gracefully, never corrupt a profile.
#include <gtest/gtest.h>

#include <thread>

#include "core/api.hpp"
#include "core/session.hpp"
#include "core/workbench.hpp"
#include "parser/parse.hpp"
#include "sensors/backend.hpp"
#include "simnode/cluster.hpp"

namespace {

using namespace tempest;

/// Fails every k-th read; otherwise returns a fixed temperature.
class FlakyBackend : public sensors::SensorBackend {
 public:
  FlakyBackend(std::size_t count, int fail_every)
      : fail_every_(fail_every) {
    for (std::size_t i = 0; i < count; ++i) {
      sensors::SensorInfo info;
      info.id = static_cast<std::uint16_t>(i);
      info.name = "flaky" + std::to_string(i);
      info.source = "test";
      sensors_.push_back(info);
    }
  }
  std::vector<sensors::SensorInfo> enumerate() const override { return sensors_; }
  Result<double> read_celsius(std::uint16_t id) override {
    if (id >= sensors_.size()) return Result<double>::error("bad id");
    if (++reads_ % fail_every_ == 0) {
      return Result<double>::error("transient sensor failure");
    }
    return 40.0;
  }
  int reads() const { return reads_; }

 private:
  std::vector<sensors::SensorInfo> sensors_;
  int fail_every_;
  int reads_ = 0;
};

// Minimal binding surgery: register a sim node, then point tempd at a
// flaky backend via a custom SimNode-free binding. The public API only
// exposes sim/hwmon registration, so we exercise flakiness through a
// SimNode whose backend wrapper fails — simplest is to register the
// flaky backend through a friend-free path: use Session's hwmon-less
// branch by constructing the binding equivalent manually is not public;
// instead we validate tempd's error handling directly.
#include "core/tempd.hpp"

TEST(FailureInjection, TempdSkipsFailedReadsAndCounts) {
  FlakyBackend backend(3, 4);  // every 4th read fails
  std::vector<core::NodeBinding> bindings;
  core::NodeBinding binding;
  binding.node_id = 0;
  binding.hostname = "flaky-node";
  binding.backend = &backend;
  binding.sensors = backend.enumerate();
  bindings.push_back(std::move(binding));

  core::Tempd tempd;
  tempd.start(50.0, &bindings);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  tempd.stop();

  EXPECT_GT(tempd.stats().read_errors, 0u);
  EXPECT_GT(tempd.stats().samples, 0u);
  // Samples + errors account for every attempted read.
  EXPECT_EQ(tempd.stats().samples + tempd.stats().read_errors,
            static_cast<std::uint64_t>(backend.reads()));
  // All recorded samples carry the good value.
  for (const auto& s : tempd.samples()) EXPECT_DOUBLE_EQ(s.temp_c, 40.0);
}

TEST(FailureInjection, UnbalancedExplicitRegionsSurviveParsing) {
  auto& session = core::Session::instance();
  auto config = simnode::make_node_config(simnode::NodeKind::kX86Basic);
  simnode::SimNode node(config);
  session.clear_nodes();
  session.register_sim_node(&node);
  core::SessionConfig sc;
  sc.sample_hz = 50.0;
  sc.bind_affinity = false;
  ASSERT_TRUE(session.start(sc));

  region_enter("opened_never_closed");
  region_exit("closed_never_opened");
  {
    ScopedRegion ok("well_formed");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(session.stop());

  auto parsed = parser::parse_trace(session.take_trace());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().diagnostics.unmatched_exits, 1u);
  EXPECT_EQ(parsed.value().diagnostics.force_closed, 1u);
  EXPECT_NE(parsed.value().find(0, "well_formed"), nullptr);
  // The never-closed region still appears, closed at trace end.
  EXPECT_NE(parsed.value().find(0, "opened_never_closed"), nullptr);
  session.clear_nodes();
}

TEST(FailureInjection, EventsFromUnattachedThreadsLandOnNodeZero) {
  auto& session = core::Session::instance();
  auto config = simnode::make_node_config(simnode::NodeKind::kX86Basic);
  simnode::SimNode node(config);
  session.clear_nodes();
  session.register_sim_node(&node);
  core::SessionConfig sc;
  sc.sample_hz = 50.0;
  sc.bind_affinity = false;
  ASSERT_TRUE(session.start(sc));

  std::thread worker([] {
    // Never attached to any node: defaults must hold.
    ScopedRegion region("orphan_region");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  worker.join();
  ASSERT_TRUE(session.stop());

  auto parsed = parser::parse_trace(session.take_trace());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_NE(parsed.value().find(0, "orphan_region"), nullptr);
  session.clear_nodes();
}

TEST(FailureInjection, StopWithoutEventsProducesEmptyButValidProfile) {
  auto& session = core::Session::instance();
  auto config = simnode::make_node_config(simnode::NodeKind::kX86Basic);
  simnode::SimNode node(config);
  session.clear_nodes();
  session.register_sim_node(&node);
  core::SessionConfig sc;
  sc.sample_hz = 100.0;
  sc.bind_affinity = false;
  ASSERT_TRUE(session.start(sc));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(session.stop());

  auto parsed = parser::parse_trace(session.take_trace());
  ASSERT_TRUE(parsed.is_ok());
  // Samples exist (tempd ran); no functions were traced.
  for (const auto& n : parsed.value().nodes) EXPECT_TRUE(n.functions.empty());
  session.clear_nodes();
}

TEST(FailureInjection, ParserToleratesSamplesOutsideAnyFunction) {
  trace::Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.nodes = {{0, "n"}};
  t.sensors = {{0, 0, "cpu", 1.0}};
  t.threads = {{0, 0, 0}};
  t.synthetic_symbols = {{trace::kSyntheticAddrBase, "fn"}};
  t.fn_events = {{500, trace::kSyntheticAddrBase, 0, 0, trace::FnEventKind::kEnter},
                 {600, trace::kSyntheticAddrBase, 0, 0, trace::FnEventKind::kExit}};
  // Samples entirely before and after the only function.
  t.temp_samples = {{100, 30.0, 0, 0}, {900, 35.0, 0, 0}};
  auto parsed = parser::parse_trace(std::move(t));
  ASSERT_TRUE(parsed.is_ok());
  const auto* fn = parsed.value().find(0, "fn");
  ASSERT_NE(fn, nullptr);
  EXPECT_FALSE(fn->significant);  // zero in-interval samples
  // Snapshot fallback used the nearest reading.
  ASSERT_FALSE(fn->sensors.empty());
  EXPECT_EQ(fn->sensors.front().sample_count, 1u);
}

}  // namespace
