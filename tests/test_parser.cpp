// Profile building: sample attribution, significance rule, unit
// conversion, ordering, synthetic-symbol resolution.
#include <gtest/gtest.h>

#include "parser/parse.hpp"
#include "parser/profile.hpp"

namespace {

using namespace tempest::parser;
using tempest::trace::FnEventKind;
using tempest::trace::Trace;

/// A two-function trace on one node with a 4 Hz-like sample train.
/// Function 1 ("hot") runs [0, 8e9) ticks at 1e9 ticks/s = 8 s; function
/// 2 ("quick") runs [8e9, 8.05e9) = 50 ms, shorter than the sampling
/// interval.
Trace synthetic_trace() {
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.nodes = {{0, "node1"}};
  t.sensors = {{0, 0, "sensor1", 1.0}, {0, 1, "sensor2", 1.0}};
  t.threads = {{0, 0, 0}};
  t.synthetic_symbols = {{tempest::trace::kSyntheticAddrBase + 0, "hot"},
                         {tempest::trace::kSyntheticAddrBase + 1, "quick"}};
  const auto hot = tempest::trace::kSyntheticAddrBase + 0;
  const auto quick = tempest::trace::kSyntheticAddrBase + 1;
  t.fn_events = {
      {0, hot, 0, 0, FnEventKind::kEnter},
      {8'000'000'000ULL, hot, 0, 0, FnEventKind::kExit},
      {8'000'000'000ULL, quick, 0, 0, FnEventKind::kEnter},
      {8'050'000'000ULL, quick, 0, 0, FnEventKind::kExit},
  };
  // Samples every 0.25 s during hot: temperatures rising 30 -> 37 C.
  for (int i = 0; i < 32; ++i) {
    const auto tsc = static_cast<std::uint64_t>(i * 250'000'000ULL);
    t.temp_samples.push_back({tsc, 30.0 + i * 0.22, 0, 0});
    t.temp_samples.push_back({tsc, 25.0, 0, 1});  // flat board sensor
  }
  t.sort_by_time();
  return t;
}

TEST(Parser, AttributesSamplesAndConvertsUnits) {
  ParseOptions options;
  options.profile.unit = tempest::TempUnit::kFahrenheit;
  auto parsed = parse_trace(synthetic_trace(), options);
  ASSERT_TRUE(parsed.is_ok()) << parsed.message();
  const RunProfile& profile = parsed.value();

  ASSERT_EQ(profile.nodes.size(), 1u);
  const FunctionProfile* hot = profile.find(0, "hot");
  ASSERT_NE(hot, nullptr);
  EXPECT_NEAR(hot->total_time_s, 8.0, 1e-6);
  EXPECT_TRUE(hot->significant);
  ASSERT_EQ(hot->sensors.size(), 2u);
  // sensor1 rises: min 86 F (30 C), max ~99.7 F.
  EXPECT_NEAR(hot->sensors[0].stats.min, 86.0, 0.01);
  EXPECT_GT(hot->sensors[0].stats.max, 97.0);
  EXPECT_GT(hot->sensors[0].stats.sdv, 0.0);
  // Flat sensor2: Sdv = Var = 0 (the Tables 2/3 signature).
  EXPECT_DOUBLE_EQ(hot->sensors[1].stats.sdv, 0.0);
  EXPECT_DOUBLE_EQ(hot->sensors[1].stats.var, 0.0);
  EXPECT_DOUBLE_EQ(hot->sensors[1].stats.min, hot->sensors[1].stats.max);
}

TEST(Parser, CelsiusOutputSkipsConversion) {
  ParseOptions options;
  options.profile.unit = tempest::TempUnit::kCelsius;
  auto parsed = parse_trace(synthetic_trace(), options);
  ASSERT_TRUE(parsed.is_ok());
  const FunctionProfile* hot = parsed.value().find(0, "hot");
  ASSERT_NE(hot, nullptr);
  EXPECT_NEAR(hot->sensors[0].stats.min, 30.0, 0.01);
}

TEST(Parser, ShortFunctionFlaggedInsignificantWithSnapshot) {
  auto parsed = parse_trace(synthetic_trace());
  ASSERT_TRUE(parsed.is_ok());
  const FunctionProfile* quick = parsed.value().find(0, "quick");
  ASSERT_NE(quick, nullptr);
  EXPECT_FALSE(quick->significant);
  // Snapshot still reports the nearest reading per sensor (one sample).
  ASSERT_EQ(quick->sensors.size(), 2u);
  EXPECT_EQ(quick->sensors[0].sample_count, 1u);
  // Nearest sample to its start (t = 8 s) is the last one (t = 7.75 s).
  EXPECT_NEAR(quick->sensors[0].stats.min,
              tempest::celsius_to_fahrenheit(30.0 + 31 * 0.22), 0.01);
}

TEST(Parser, FunctionsSortedByTotalTime) {
  auto parsed = parse_trace(synthetic_trace());
  ASSERT_TRUE(parsed.is_ok());
  const auto& fns = parsed.value().nodes[0].functions;
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0].name, "hot");
  EXPECT_EQ(fns[1].name, "quick");
  EXPECT_GE(fns[0].total_time_s, fns[1].total_time_s);
}

TEST(Parser, MinSamplesOptionControlsSignificance) {
  ParseOptions options;
  options.profile.min_samples_significant = 1;
  auto parsed = parse_trace(synthetic_trace(), options);
  ASSERT_TRUE(parsed.is_ok());
  // "quick" has 0 in-interval samples, still insignificant at min 1;
  // lower to 0 and it becomes significant trivially.
  EXPECT_FALSE(parsed.value().find(0, "quick")->significant);

  options.profile.min_samples_significant = 0;
  auto parsed0 = parse_trace(synthetic_trace(), options);
  EXPECT_TRUE(parsed0.value().find(0, "quick")->significant);
}

TEST(Parser, RunDurationCoversEventsAndSamples) {
  auto parsed = parse_trace(synthetic_trace());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_NEAR(parsed.value().duration_s, 8.05, 1e-6);
  EXPECT_NEAR(parsed.value().nodes[0].duration_s, 8.05, 1e-6);
}

TEST(Parser, UnknownAddressesRenderHexWithoutResolver) {
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.nodes = {{0, "n"}};
  t.threads = {{0, 0, 0}};
  t.fn_events = {{0, 0xabc123, 0, 0, FnEventKind::kEnter},
                 {1000, 0xabc123, 0, 0, FnEventKind::kExit}};
  auto parsed = parse_trace(std::move(t));
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed.value().nodes[0].functions.size(), 1u);
  EXPECT_EQ(parsed.value().nodes[0].functions[0].name, "0xabc123");
}

TEST(Parser, EmptyTraceParsesToEmptyProfile) {
  auto parsed = parse_trace(Trace{});
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed.value().nodes.empty());
}

}  // namespace
