// Property-based sweeps over the thermal substrate: physical
// invariants that must hold for any parameterisation.
#include <gtest/gtest.h>

#include <random>

#include "common/units.hpp"
#include "thermal/cpu_package.hpp"
#include "thermal/rc_network.hpp"

namespace {

using namespace tempest::thermal;

class RcNetworkProperty : public ::testing::TestWithParam<int> {
 protected:
  /// Random chain network: die -> n intermediate nodes -> ambient.
  RcNetwork random_chain(std::mt19937& rng, std::size_t* die_out) {
    std::uniform_real_distribution<double> cap(0.5, 50.0);
    std::uniform_real_distribution<double> g(0.3, 5.0);
    std::uniform_int_distribution<int> len(1, 5);
    RcNetwork net;
    net.set_ambient_temp(25.0);
    const std::size_t die = net.add_node("die", cap(rng), 25.0);
    std::size_t prev = die;
    const int n = len(rng);
    for (int i = 0; i < n; ++i) {
      const std::size_t node =
          net.add_node("n" + std::to_string(i), cap(rng), 25.0);
      net.connect(prev, node, g(rng));
      prev = node;
    }
    net.connect_ambient(prev, g(rng));
    *die_out = die;
    return net;
  }
};

TEST_P(RcNetworkProperty, SteadyStateIsPowerOverPathConductance) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::size_t die = 0;
  RcNetwork net = random_chain(rng, &die);
  net.set_power(die, 10.0);
  RcNetwork settled = net;
  settled.settle();
  net.advance(5000.0);
  // Long integration converges to the algebraic steady state.
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    EXPECT_NEAR(net.temperature(i), settled.temperature(i), 0.05) << "node " << i;
  }
  // Die is the hottest node of a chain with a single heat source.
  for (std::size_t i = 0; i < settled.node_count(); ++i) {
    EXPECT_GE(settled.temperature(die) + 1e-9, settled.temperature(i));
  }
}

TEST_P(RcNetworkProperty, MorePowerMeansHotterEverywhere) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::size_t die = 0;
  RcNetwork net = random_chain(rng, &die);
  RcNetwork hot = net;
  net.set_power(die, 5.0);
  hot.set_power(die, 9.0);
  net.settle();
  hot.settle();
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    EXPECT_GT(hot.temperature(i), net.temperature(i)) << "node " << i;
  }
}

TEST_P(RcNetworkProperty, NoPowerDecaysToAmbientAndNeverUndershoots) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::size_t die = 0;
  RcNetwork net = random_chain(rng, &die);
  net.set_temperature(die, 80.0);  // hot start, zero power
  double prev = net.temperature(die);
  for (int step = 0; step < 50; ++step) {
    net.advance(2.0);
    const double now = net.temperature(die);
    EXPECT_LE(now, prev + 1e-9);          // monotone cooling at the source
    EXPECT_GE(now, 25.0 - 1e-6);          // never below ambient
    prev = now;
  }
}

TEST_P(RcNetworkProperty, StepSizeInvariance) {
  // Integrating 10 s in one call or in 100 calls must agree (the
  // sub-stepping logic hides the step size).
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::size_t die = 0;
  RcNetwork a = random_chain(rng, &die);
  RcNetwork b = a;
  a.set_power(die, 7.0);
  b.set_power(die, 7.0);
  a.advance(10.0);
  for (int i = 0; i < 100; ++i) b.advance(0.1);
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    EXPECT_NEAR(a.temperature(i), b.temperature(i), 1e-3);  // RK4 truncation differs slightly
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcNetworkProperty, ::testing::Range(0, 12));

class PackageProperty : public ::testing::TestWithParam<int> {};

TEST_P(PackageProperty, UtilisationMonotonicity) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> u(0.0, 1.0);
  PackageParams params;
  params.cores = 2;
  const double u_low = u(rng) * 0.5;
  const double u_high = u_low + 0.4;

  CpuPackage low(params), high(params);
  low.settle_at({u_low, u_low});
  high.settle_at({u_high, u_high});
  EXPECT_GT(high.die_temp(0), low.die_temp(0));
  EXPECT_GT(high.sink_temp(), low.sink_temp());
}

TEST_P(PackageProperty, FasterFanCoolsSteadyState) {
  PackageParams params;
  CpuPackage slow_fan(params), fast_fan(params);
  slow_fan.fan().set_fixed_rpm(1500.0 + 100.0 * GetParam());
  fast_fan.fan().set_fixed_rpm(5000.0);
  // Apply the fan state to the network via one advance, then settle.
  slow_fan.advance(0.01, {1.0, 1.0});
  fast_fan.advance(0.01, {1.0, 1.0});
  slow_fan.settle_at({1.0, 1.0});
  fast_fan.settle_at({1.0, 1.0});
  EXPECT_LT(fast_fan.die_temp(0), slow_fan.die_temp(0));
}

TEST_P(PackageProperty, TemperatureOrderingDieSpreaderSinkAmbient) {
  // Under load, heat flows die -> spreader -> sink -> ambient, so
  // temperatures are strictly ordered along the path.
  PackageParams params;
  params.cores = 2;
  CpuPackage pkg(params);
  const double util = 0.3 + 0.05 * GetParam();
  pkg.settle_at({util, util});
  EXPECT_GT(pkg.die_temp(0), pkg.spreader_temp());
  EXPECT_GT(pkg.spreader_temp(), pkg.sink_temp());
  EXPECT_GT(pkg.sink_temp(), pkg.ambient_temp());
}

INSTANTIATE_TEST_SUITE_P(Sweep, PackageProperty, ::testing::Range(0, 8));

TEST(QuantizationProperty, LadderIsStablePerStep) {
  // Quantised values are fixed points of quantisation.
  for (double step : {0.25, 0.5, 1.0, 2.0}) {
    for (double t = -10.0; t < 110.0; t += 0.37) {
      const double q = tempest::quantize(t, step);
      EXPECT_DOUBLE_EQ(tempest::quantize(q, step), q);
      EXPECT_LE(std::abs(q - t), step / 2 + 1e-9);
    }
  }
}

}  // namespace
