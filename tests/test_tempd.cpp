// Tempd lifecycle regressions: stop() must be idempotent, safe when
// the sampler thread never started, safe from many threads at once,
// and start/stop cycles must be repeatable on one instance.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/tempd.hpp"
#include "simnode/cluster.hpp"

namespace {

using tempest::core::NodeBinding;
using tempest::core::Tempd;

TEST(Tempd, StopBeforeStartIsSafe) {
  Tempd tempd;
  EXPECT_FALSE(tempd.running());
  tempd.stop();  // thread never started; must not crash or hang
  tempd.stop();
  EXPECT_FALSE(tempd.running());
}

TEST(Tempd, StopIsIdempotent) {
  Tempd tempd;
  std::vector<NodeBinding> no_nodes;
  tempd.start(500.0, &no_nodes);
  EXPECT_TRUE(tempd.running());
  tempd.stop();
  EXPECT_FALSE(tempd.running());
  // At least the final bracketing sample; the initial one too unless
  // stop() won the race before the loop's first iteration.
  const auto ticks = tempd.stats().ticks;
  EXPECT_GE(ticks, 1u);
  tempd.stop();          // second stop: no double-join, stats untouched
  EXPECT_EQ(tempd.stats().ticks, ticks);
}

TEST(Tempd, ConcurrentStopsJoinExactlyOnce) {
  Tempd tempd;
  std::vector<NodeBinding> no_nodes;
  tempd.start(500.0, &no_nodes);
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 8; ++i) {
    stoppers.emplace_back([&tempd] { tempd.stop(); });
  }
  for (auto& t : stoppers) t.join();
  EXPECT_FALSE(tempd.running());
  tempd.stop();  // and once more after the dust settles
}

TEST(Tempd, StartWhileRunningIsANoOp) {
  Tempd tempd;
  std::vector<NodeBinding> no_nodes;
  tempd.start(500.0, &no_nodes);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  tempd.start(500.0, &no_nodes);  // ignored; sampler keeps its state
  tempd.stop();
  EXPECT_GE(tempd.stats().ticks, 1u);
}

TEST(Tempd, RestartCyclesCollectFreshSamples) {
  tempest::simnode::ClusterConfig cc;
  cc.nodes = 1;
  cc.kind = tempest::simnode::NodeKind::kX86Basic;
  cc.time_scale = 30.0;
  tempest::simnode::Cluster cluster(cc);
  auto& node = cluster.node(0);

  NodeBinding binding;
  binding.node_id = 0;
  binding.hostname = node.hostname();
  binding.backend = &node.sensor_backend();
  binding.sim = &node;
  binding.sensors = binding.backend->enumerate();
  std::vector<NodeBinding> nodes;
  nodes.push_back(std::move(binding));

  Tempd tempd;
  for (int cycle = 0; cycle < 3; ++cycle) {
    tempd.start(200.0, &nodes);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    tempd.stop();
    // Each cycle starts from a clean slate (start() clears the previous
    // run) and ends with at least the bracketing samples.
    EXPECT_FALSE(tempd.samples().empty()) << "cycle " << cycle;
    EXPECT_EQ(tempd.stats().samples, tempd.samples().size());
    EXPECT_EQ(tempd.stats().read_errors, 0u);
  }
}

TEST(Tempd, DestructorStopsARunningSampler) {
  std::vector<NodeBinding> no_nodes;
  {
    Tempd tempd;
    tempd.start(500.0, &no_nodes);
    EXPECT_TRUE(tempd.running());
  }  // ~Tempd calls stop(); must join, not crash or leak the thread
}

}  // namespace
