// Tempd lifecycle regressions: stop() must be idempotent, safe when
// the sampler thread never started, safe from many threads at once,
// and start/stop cycles must be repeatable on one instance.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/tempd.hpp"
#include "simnode/cluster.hpp"

namespace {

using tempest::core::NodeBinding;
using tempest::core::Tempd;

TEST(Tempd, StopBeforeStartIsSafe) {
  Tempd tempd;
  EXPECT_FALSE(tempd.running());
  tempd.stop();  // thread never started; must not crash or hang
  tempd.stop();
  EXPECT_FALSE(tempd.running());
}

TEST(Tempd, StopIsIdempotent) {
  Tempd tempd;
  std::vector<NodeBinding> no_nodes;
  tempd.start(500.0, &no_nodes);
  EXPECT_TRUE(tempd.running());
  tempd.stop();
  EXPECT_FALSE(tempd.running());
  // At least the final bracketing sample; the initial one too unless
  // stop() won the race before the loop's first iteration.
  const auto ticks = tempd.stats().ticks;
  EXPECT_GE(ticks, 1u);
  tempd.stop();          // second stop: no double-join, stats untouched
  EXPECT_EQ(tempd.stats().ticks, ticks);
}

TEST(Tempd, ConcurrentStopsJoinExactlyOnce) {
  Tempd tempd;
  std::vector<NodeBinding> no_nodes;
  tempd.start(500.0, &no_nodes);
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 8; ++i) {
    stoppers.emplace_back([&tempd] { tempd.stop(); });
  }
  for (auto& t : stoppers) t.join();
  EXPECT_FALSE(tempd.running());
  tempd.stop();  // and once more after the dust settles
}

TEST(Tempd, StartWhileRunningIsANoOp) {
  Tempd tempd;
  std::vector<NodeBinding> no_nodes;
  tempd.start(500.0, &no_nodes);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  tempd.start(500.0, &no_nodes);  // ignored; sampler keeps its state
  tempd.stop();
  EXPECT_GE(tempd.stats().ticks, 1u);
}

TEST(Tempd, RestartCyclesCollectFreshSamples) {
  tempest::simnode::ClusterConfig cc;
  cc.nodes = 1;
  cc.kind = tempest::simnode::NodeKind::kX86Basic;
  cc.time_scale = 30.0;
  tempest::simnode::Cluster cluster(cc);
  auto& node = cluster.node(0);

  NodeBinding binding;
  binding.node_id = 0;
  binding.hostname = node.hostname();
  binding.backend = &node.sensor_backend();
  binding.sim = &node;
  binding.sensors = binding.backend->enumerate();
  std::vector<NodeBinding> nodes;
  nodes.push_back(std::move(binding));

  Tempd tempd;
  for (int cycle = 0; cycle < 3; ++cycle) {
    tempd.start(200.0, &nodes);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    tempd.stop();
    // Each cycle starts from a clean slate (start() clears the previous
    // run) and ends with at least the bracketing samples.
    EXPECT_FALSE(tempd.samples().empty()) << "cycle " << cycle;
    EXPECT_EQ(tempd.stats().samples, tempd.samples().size());
    EXPECT_EQ(tempd.stats().read_errors, 0u);
  }
}

TEST(Tempd, DestructorStopsARunningSampler) {
  std::vector<NodeBinding> no_nodes;
  {
    Tempd tempd;
    tempd.start(500.0, &no_nodes);
    EXPECT_TRUE(tempd.running());
  }  // ~Tempd calls stop(); must join, not crash or leak the thread
}

TEST(Tempd, AbsoluteCadenceHoldsWithoutDrift) {
  // 100 Hz over ~300 ms with an empty sweep: the absolute-deadline
  // schedule must land close to elapsed/period ticks, with every
  // shortfall declared in missed_ticks rather than smeared into drift.
  Tempd tempd;
  std::vector<NodeBinding> no_nodes;
  const auto t0 = std::chrono::steady_clock::now();
  tempd.start(100.0, &no_nodes);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  tempd.stop();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto& stats = tempd.stats();
  const auto deadlines = static_cast<std::uint64_t>(elapsed * 100.0);
  // Ticked + missed covers every elapsed deadline (the final
  // bracketing tick, the partial trailing period, and stop()'s join
  // window allow a few deadlines of slack).
  EXPECT_GE(stats.ticks + stats.missed_ticks + 4, deadlines);
  EXPECT_GE(stats.ticks, 2u);  // immediate first tick + final tick
  EXPECT_EQ(stats.read_errors, 0u);
  EXPECT_EQ(stats.samples, 0u);  // no nodes, no sensors
}

TEST(Tempd, SlowSweepCountsMissesInsteadOfDrifting) {
  // A sweep hook that overruns the 10 ms period forces misses; the
  // scheduler must declare them. With a ~25 ms on_tick hook at 100 Hz,
  // each tick skips ~2 deadlines.
  Tempd tempd;
  tempest::simnode::ClusterConfig cc;
  cc.nodes = 1;
  tempest::simnode::Cluster cluster(cc);
  std::vector<NodeBinding> nodes;
  NodeBinding binding;
  binding.node_id = 0;
  binding.backend = &cluster.node(0).sensor_backend();
  binding.sim = &cluster.node(0);
  binding.on_tick = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  };
  nodes.push_back(std::move(binding));
  tempd.start(100.0, &nodes);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  tempd.stop();
  const auto& stats = tempd.stats();
  EXPECT_GT(stats.missed_ticks, 0u);
  EXPECT_GE(stats.missed_ticks, stats.ticks);  // >=2 misses per tick here
}

}  // namespace
