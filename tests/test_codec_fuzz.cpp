// The vectorized trace-v2 codec against its portable scalar reference.
//
// The default entry points (SSE2 / NEON / little-endian copy, chosen at
// build time) must be field-wise indistinguishable from codec::scalar
// on every input — including hostile ones: random wire bytes, invalid
// kind bytes at every position, zero/one/odd record counts. Pack output
// is compared byte for byte (the wire layout is fully specified);
// unpacked structs are compared field by field (padding bytes are not
// part of the contract).
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "trace/codec.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"

namespace {

using namespace tempest::trace;

void expect_same_fn(const FnEvent& a, const FnEvent& b, std::size_t i) {
  EXPECT_EQ(a.tsc, b.tsc) << "record " << i;
  EXPECT_EQ(a.addr, b.addr) << "record " << i;
  EXPECT_EQ(a.thread_id, b.thread_id) << "record " << i;
  EXPECT_EQ(a.node_id, b.node_id) << "record " << i;
  EXPECT_EQ(a.kind, b.kind) << "record " << i;
}

void expect_same_sample(const TempSample& a, const TempSample& b,
                        std::size_t i) {
  EXPECT_EQ(a.tsc, b.tsc) << "record " << i;
  // Bit-exact double compare: the codec moves bytes, it does not do
  // arithmetic, so even NaN payloads must survive untouched.
  EXPECT_EQ(std::memcmp(&a.temp_c, &b.temp_c, sizeof(double)), 0)
      << "record " << i;
  EXPECT_EQ(a.node_id, b.node_id) << "record " << i;
  EXPECT_EQ(a.sensor_id, b.sensor_id) << "record " << i;
}

void expect_same_sync(const ClockSync& a, const ClockSync& b, std::size_t i) {
  EXPECT_EQ(a.node_tsc, b.node_tsc) << "record " << i;
  EXPECT_EQ(a.global_tsc, b.global_tsc) << "record " << i;
  EXPECT_EQ(a.node_id, b.node_id) << "record " << i;
}

std::vector<char> random_bytes(std::mt19937_64& rng, std::size_t n) {
  std::vector<char> bytes(n);
  for (char& b : bytes) b = static_cast<char>(rng() & 0xff);
  return bytes;
}

TEST(CodecFuzz, BackendIsNamed) {
  const std::string backend = codec::backend();
  EXPECT_TRUE(backend == "sse2" || backend == "neon" ||
              backend == "le-copy" || backend == "scalar")
      << backend;
}

TEST(CodecFuzz, FnEventUnpackMatchesScalarOnValidPayloads) {
  std::mt19937_64 rng(0xc0dec1u);
  for (const std::size_t n : {0u, 1u, 2u, 3u, 7u, 64u, 1000u, 4097u}) {
    std::vector<char> wire = random_bytes(rng, n * kFnEventRecordSize);
    // Overwrite every kind byte with a valid value so both paths accept.
    for (std::size_t i = 0; i < n; ++i) {
      wire[i * kFnEventRecordSize + 22] =
          static_cast<char>(1 + (rng() & 1));
    }
    std::vector<FnEvent> fast(n), ref(n);
    ASSERT_TRUE(codec::unpack_fn_events(wire.data(), n, fast.data()));
    ASSERT_TRUE(codec::scalar::unpack_fn_events(wire.data(), n, ref.data()));
    for (std::size_t i = 0; i < n; ++i) expect_same_fn(fast[i], ref[i], i);
  }
}

TEST(CodecFuzz, FnEventUnpackRejectsInvalidKindAtEveryPosition) {
  std::mt19937_64 rng(0xc0dec2u);
  const std::size_t n = 37;
  std::vector<char> wire = random_bytes(rng, n * kFnEventRecordSize);
  for (std::size_t i = 0; i < n; ++i) {
    wire[i * kFnEventRecordSize + 22] = static_cast<char>(1 + (rng() & 1));
  }
  for (const unsigned char bad : {0x00, 0x03, 0x7f, 0xff}) {
    for (const std::size_t pos : {std::size_t{0}, n / 2, n - 1}) {
      std::vector<char> corrupt = wire;
      corrupt[pos * kFnEventRecordSize + 22] = static_cast<char>(bad);
      std::vector<FnEvent> fast(n), ref(n);
      EXPECT_FALSE(codec::unpack_fn_events(corrupt.data(), n, fast.data()))
          << "kind " << int(bad) << " at " << pos;
      EXPECT_FALSE(
          codec::scalar::unpack_fn_events(corrupt.data(), n, ref.data()))
          << "kind " << int(bad) << " at " << pos;
    }
  }
}

TEST(CodecFuzz, TempSampleUnpackMatchesScalarOnRandomBytes) {
  std::mt19937_64 rng(0xc0dec3u);
  for (const std::size_t n : {0u, 1u, 5u, 63u, 1024u, 4099u}) {
    const std::vector<char> wire = random_bytes(rng, n * kTempSampleRecordSize);
    std::vector<TempSample> fast(n), ref(n);
    codec::unpack_temp_samples(wire.data(), n, fast.data());
    codec::scalar::unpack_temp_samples(wire.data(), n, ref.data());
    for (std::size_t i = 0; i < n; ++i) expect_same_sample(fast[i], ref[i], i);
  }
}

TEST(CodecFuzz, ClockSyncUnpackMatchesScalarOnRandomBytes) {
  std::mt19937_64 rng(0xc0dec4u);
  for (const std::size_t n : {0u, 1u, 9u, 255u, 4096u}) {
    const std::vector<char> wire = random_bytes(rng, n * kClockSyncRecordSize);
    std::vector<ClockSync> fast(n), ref(n);
    codec::unpack_clock_syncs(wire.data(), n, fast.data());
    codec::scalar::unpack_clock_syncs(wire.data(), n, ref.data());
    for (std::size_t i = 0; i < n; ++i) expect_same_sync(fast[i], ref[i], i);
  }
}

TEST(CodecFuzz, PackMatchesScalarByteForByte) {
  std::mt19937_64 rng(0xc0dec5u);
  const std::size_t n = 1337;  // odd: exercises the last-record tails
  std::vector<FnEvent> events(n);
  std::vector<TempSample> samples(n);
  std::vector<ClockSync> syncs(n);
  for (std::size_t i = 0; i < n; ++i) {
    events[i] = {rng(), rng(), static_cast<std::uint32_t>(rng()),
                 static_cast<std::uint16_t>(rng()),
                 (rng() & 1) ? FnEventKind::kEnter : FnEventKind::kExit};
    samples[i].tsc = rng();
    samples[i].temp_c = static_cast<double>(rng()) * 1e-9;
    samples[i].node_id = static_cast<std::uint16_t>(rng());
    samples[i].sensor_id = static_cast<std::uint16_t>(rng());
    syncs[i] = {rng(), rng(), static_cast<std::uint16_t>(rng())};
  }
  std::vector<char> fast(n * kFnEventRecordSize, 0);
  std::vector<char> ref(n * kFnEventRecordSize, 0);
  codec::pack_fn_events(events.data(), n, fast.data());
  codec::scalar::pack_fn_events(events.data(), n, ref.data());
  EXPECT_EQ(fast, ref);

  fast.assign(n * kTempSampleRecordSize, 0);
  ref.assign(n * kTempSampleRecordSize, 0);
  codec::pack_temp_samples(samples.data(), n, fast.data());
  codec::scalar::pack_temp_samples(samples.data(), n, ref.data());
  EXPECT_EQ(fast, ref);

  fast.assign(n * kClockSyncRecordSize, 0);
  ref.assign(n * kClockSyncRecordSize, 0);
  codec::pack_clock_syncs(syncs.data(), n, fast.data());
  codec::scalar::pack_clock_syncs(syncs.data(), n, ref.data());
  EXPECT_EQ(fast, ref);
}

TEST(CodecFuzz, RoundTripPreservesEveryField) {
  std::mt19937_64 rng(0xc0dec6u);
  for (const std::size_t n : {1u, 2u, 511u, 1000u}) {
    std::vector<FnEvent> events(n);
    for (auto& e : events) {
      e = {rng(), rng(), static_cast<std::uint32_t>(rng()),
           static_cast<std::uint16_t>(rng()),
           (rng() & 1) ? FnEventKind::kEnter : FnEventKind::kExit};
    }
    std::vector<char> wire(n * kFnEventRecordSize);
    codec::pack_fn_events(events.data(), n, wire.data());
    std::vector<FnEvent> back(n);
    ASSERT_TRUE(codec::unpack_fn_events(wire.data(), n, back.data()));
    for (std::size_t i = 0; i < n; ++i) expect_same_fn(events[i], back[i], i);

    std::vector<TempSample> samples(n);
    for (auto& s : samples) {
      s.tsc = rng();
      s.temp_c = static_cast<double>(static_cast<std::int64_t>(rng())) * 1e-6;
      s.node_id = static_cast<std::uint16_t>(rng());
      s.sensor_id = static_cast<std::uint16_t>(rng());
    }
    wire.assign(n * kTempSampleRecordSize, 0);
    codec::pack_temp_samples(samples.data(), n, wire.data());
    std::vector<TempSample> samples_back(n);
    codec::unpack_temp_samples(wire.data(), n, samples_back.data());
    for (std::size_t i = 0; i < n; ++i) {
      expect_same_sample(samples[i], samples_back[i], i);
    }

    std::vector<ClockSync> syncs(n);
    for (auto& s : syncs) {
      s = {rng(), rng(), static_cast<std::uint16_t>(rng())};
    }
    wire.assign(n * kClockSyncRecordSize, 0);
    codec::pack_clock_syncs(syncs.data(), n, wire.data());
    std::vector<ClockSync> syncs_back(n);
    codec::unpack_clock_syncs(wire.data(), n, syncs_back.data());
    for (std::size_t i = 0; i < n; ++i) {
      expect_same_sync(syncs[i], syncs_back[i], i);
    }
  }
}

}  // namespace
