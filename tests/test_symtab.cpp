// ELF symbol-table parsing and address resolution, exercised against
// this test binary itself.
#include <gtest/gtest.h>

#include <string>

#include "symtab/elf.hpp"
#include "symtab/resolver.hpp"

// External-linkage functions with known names to find in our own symtab.
extern "C" __attribute__((noinline)) int tempest_symtab_probe_fn(int x) {
  return x * 3 + 1;
}

namespace tempest_symtab_test {
__attribute__((noinline)) double cxx_probe_function(double v) { return v * 0.5; }
}  // namespace tempest_symtab_test

namespace {

using tempest::symtab::demangle;
using tempest::symtab::Resolver;

TEST(Elf, RejectsNonElfAndMissingFiles) {
  EXPECT_FALSE(tempest::symtab::read_function_symbols("/nonexistent").is_ok());
  EXPECT_FALSE(tempest::symtab::read_function_symbols("/etc/hostname").is_ok());
}

TEST(Elf, ReadsOwnSymbols) {
  auto symbols = tempest::symtab::read_function_symbols("/proc/self/exe");
  ASSERT_TRUE(symbols.is_ok()) << symbols.message();
  EXPECT_GT(symbols.value().size(), 100u);
  bool found_probe = false;
  for (const auto& s : symbols.value()) {
    if (s.name == "tempest_symtab_probe_fn") {
      found_probe = true;
      EXPECT_GT(s.size, 0u);
    }
  }
  EXPECT_TRUE(found_probe);
}

TEST(Resolver, ResolvesCFunctionByRuntimeAddress) {
  auto resolver = Resolver::for_current_process();
  ASSERT_TRUE(resolver.is_ok()) << resolver.message();
  // Force materialisation so the pointer is the real function.
  volatile int sink = tempest_symtab_probe_fn(2);
  (void)sink;
  const auto addr = reinterpret_cast<std::uint64_t>(&tempest_symtab_probe_fn);
  EXPECT_EQ(resolver.value().resolve(addr), "tempest_symtab_probe_fn");
  // Interior address (a few bytes in) still resolves to the function.
  EXPECT_EQ(resolver.value().resolve(addr + 3), "tempest_symtab_probe_fn");
}

TEST(Resolver, ResolvesAndDemanglesCxxFunction) {
  auto resolver = Resolver::for_current_process();
  ASSERT_TRUE(resolver.is_ok());
  volatile double sink = tempest_symtab_test::cxx_probe_function(4.0);
  (void)sink;
  const auto addr =
      reinterpret_cast<std::uint64_t>(&tempest_symtab_test::cxx_probe_function);
  const std::string name = resolver.value().resolve(addr);
  EXPECT_NE(name.find("cxx_probe_function"), std::string::npos) << name;
  EXPECT_NE(name.find("tempest_symtab_test"), std::string::npos) << name;
}

TEST(Resolver, UnknownAddressRendersHex) {
  Resolver resolver({}, 0);
  std::string name;
  EXPECT_FALSE(resolver.resolve_checked(0x12345678, &name));
  EXPECT_EQ(name, "0x12345678");
}

TEST(Resolver, ZeroSizedSymbolExtendsToNext) {
  Resolver resolver({{0x1000, 0, "stub"}, {0x1100, 0x10, "real"}}, 0);
  EXPECT_EQ(resolver.resolve(0x1050), "stub");
  EXPECT_EQ(resolver.resolve(0x1105), "real");
  std::string name;
  EXPECT_FALSE(resolver.resolve_checked(0x1150, &name));  // past "real"
}

TEST(Resolver, LoadBiasShiftsRanges) {
  Resolver resolver({{0x1000, 0x100, "fn"}}, 0x7f0000000000ULL);
  EXPECT_EQ(resolver.resolve(0x7f0000001080ULL), "fn");
  std::string name;
  EXPECT_FALSE(resolver.resolve_checked(0x1080, &name));  // unbiased misses
}

TEST(Demangle, HandlesMangledAndPlainNames) {
  EXPECT_EQ(demangle("_Z3foov"), "foo()");
  EXPECT_EQ(demangle("plain_c_name"), "plain_c_name");
  EXPECT_EQ(demangle(""), "");
}

}  // namespace
