// End-to-end CLI test: produce a trace in-process, then drive the
// tempest_parse binary over it in every output mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "core/api.hpp"
#include "core/workbench.hpp"
#include "simnode/cluster.hpp"

#ifndef TEMPEST_PARSE_BIN
#define TEMPEST_PARSE_BIN "tools/tempest_parse"
#endif
#ifndef TEMPEST_EXPORT_BIN
#define TEMPEST_EXPORT_BIN "tools/tempest-export"
#endif
#ifndef TEMPEST_TOP_BIN
#define TEMPEST_TOP_BIN "tools/tempest-top"
#endif
#ifndef TEMPEST_LINT_BIN
#define TEMPEST_LINT_BIN "tools/tempest-lint"
#endif
#ifndef TEMPEST_AUDIT_BIN
#define TEMPEST_AUDIT_BIN "tools/tempest-audit"
#endif
#ifndef TEMPEST_DIFF_BIN
#define TEMPEST_DIFF_BIN "tools/tempest-diff"
#endif

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Per-process paths: ctest runs each discovered test case as its
    // own process, concurrently under -jN, and every process records
    // its own copy of the trace in SetUpTestSuite. Shared fixed names
    // would race.
    trace_path_ = new std::string(::testing::TempDir() + "/cli." +
                                  std::to_string(getpid()) + ".trace");
    auto node_config =
        tempest::simnode::make_node_config(tempest::simnode::NodeKind::kX86Basic);
    node_config.package.time_scale = 30.0;
    static tempest::simnode::SimNode node(node_config);
    auto& session = tempest::core::Session::instance();
    session.clear_nodes();
    const auto node_id = session.register_sim_node(&node);
    tempest::core::SessionConfig config;
    config.sample_hz = 30.0;
    config.bind_affinity = false;
    config.output_path = *trace_path_;
    ASSERT_TRUE(session.start(config));
    tempest::core::Workbench bench(&node, node_id);
    bench.attach();
    {
      tempest::ScopedRegion region("cli_hot");
      bench.burn(0.4);
    }
    {
      tempest::ScopedRegion region("cli_cool");
      bench.idle(0.2);
    }
    bench.detach();
    ASSERT_TRUE(session.stop());
    session.clear_nodes();
  }

  /// Run the CLI; returns exit code, captures stdout to a file.
  int run_cli(const std::string& args, std::string* output) {
    const std::string out_path =
        ::testing::TempDir() + "/cli." + std::to_string(getpid()) + ".out";
    const std::string cmd = std::string(TEMPEST_PARSE_BIN) + " " + args + " \"" +
                            *trace_path_ + "\" > " + out_path + " 2>/dev/null";
    const int rc = std::system(cmd.c_str());
    *output = slurp(out_path);
    return rc;
  }

  static std::string* trace_path_;
};

std::string* CliTest::trace_path_ = nullptr;

TEST_F(CliTest, DefaultTextOutput) {
  std::string out;
  ASSERT_EQ(run_cli("", &out), 0);
  EXPECT_NE(out.find("Function: cli_hot"), std::string::npos);
  EXPECT_NE(out.find("Total Time(sec)"), std::string::npos);
  EXPECT_NE(out.find("(F)"), std::string::npos);
}

TEST_F(CliTest, CelsiusUnit) {
  std::string out;
  ASSERT_EQ(run_cli("--unit C", &out), 0);
  EXPECT_NE(out.find("(C)"), std::string::npos);
}

TEST_F(CliTest, CsvFormat) {
  std::string out;
  ASSERT_EQ(run_cli("--format csv --span cli_hot", &out), 0);
  EXPECT_NE(out.find("time_s,node,sensor,temp_F"), std::string::npos);
  EXPECT_NE(out.find("# span,0,cli_hot"), std::string::npos);
}

TEST_F(CliTest, JsonFormat) {
  std::string out;
  ASSERT_EQ(run_cli("--format json", &out), 0);
  EXPECT_EQ(out.front(), '{');
  EXPECT_NE(out.find("\"cli_hot\""), std::string::npos);
}

TEST_F(CliTest, AsciiPlot) {
  std::string out;
  ASSERT_EQ(run_cli("--plot CPU", &out), 0);
  EXPECT_NE(out.find("legend: *=CPU"), std::string::npos);
}

TEST_F(CliTest, GnuplotOutputs) {
  const std::string prefix = ::testing::TempDir() + "/cli_gp";
  std::string out;
  ASSERT_EQ(run_cli("--gnuplot " + prefix, &out), 0);
  const std::string dat = slurp(prefix + ".dat");
  const std::string gp = slurp(prefix + ".gp");
  EXPECT_NE(dat.find("# node=node1 sensor=CPU"), std::string::npos);
  EXPECT_NE(gp.find("set multiplot"), std::string::npos);
  EXPECT_NE(gp.find(prefix + ".dat"), std::string::npos);
}

TEST_F(CliTest, TopLimitsFunctions) {
  std::string out;
  ASSERT_EQ(run_cli("--top 1", &out), 0);
  EXPECT_NE(out.find("Function: cli_hot"), std::string::npos);
  EXPECT_EQ(out.find("Function: cli_cool"), std::string::npos);
}

/// Run the CLI with a raw argument string (no trace path appended) and
/// return its actual exit code.
int run_exit_code(const std::string& args) {
  const std::string cmd =
      std::string(TEMPEST_PARSE_BIN) + " " + args + " >/dev/null 2>/dev/null";
  const int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST_F(CliTest, UnknownFlagIsUsageError) {
  EXPECT_EQ(run_exit_code("--bogus \"" + *trace_path_ + "\""), 2);
}

TEST_F(CliTest, BadUnitIsUsageError) {
  EXPECT_EQ(run_exit_code("--unit K \"" + *trace_path_ + "\""), 2);
}

TEST_F(CliTest, BadFormatIsUsageError) {
  EXPECT_EQ(run_exit_code("--format yaml \"" + *trace_path_ + "\""), 2);
}

TEST_F(CliTest, NonNumericTopIsUsageError) {
  EXPECT_EQ(run_exit_code("--top banana \"" + *trace_path_ + "\""), 2);
}

TEST_F(CliTest, MissingOptionValueIsUsageError) {
  EXPECT_EQ(run_exit_code("--format"), 2);
}

TEST_F(CliTest, NoTraceFileIsUsageError) { EXPECT_EQ(run_exit_code(""), 2); }

TEST_F(CliTest, NonexistentTraceIsReadError) {
  EXPECT_EQ(run_exit_code("/nonexistent.trace"), 1);
  EXPECT_EQ(run_exit_code("--stream /nonexistent.trace"), 1);
}

TEST_F(CliTest, StreamedOutputMatchesBatch) {
  std::string batch, streamed;
  ASSERT_EQ(run_cli("", &batch), 0);
  ASSERT_EQ(run_cli("--stream", &streamed), 0);
  EXPECT_EQ(streamed, batch);
  ASSERT_EQ(run_cli("--format json", &batch), 0);
  ASSERT_EQ(run_cli("--stream --format json", &streamed), 0);
  EXPECT_EQ(streamed, batch);
  ASSERT_EQ(run_cli("--format csv --span cli_hot", &batch), 0);
  ASSERT_EQ(run_cli("--stream --format csv --span cli_hot", &streamed), 0);
  EXPECT_EQ(streamed, batch);
}

TEST_F(CliTest, ExportedTimelineStreamMatchesBatch) {
  std::string batch, streamed;
  ASSERT_EQ(run_cli("--export perfetto", &batch), 0);
  ASSERT_EQ(run_cli("--export perfetto --stream", &streamed), 0);
  EXPECT_FALSE(batch.empty());
  EXPECT_EQ(streamed, batch);
  EXPECT_NE(batch.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(batch.find("\"name\":\"cli_hot\""), std::string::npos);

  ASSERT_EQ(run_cli("--export speedscope", &batch), 0);
  ASSERT_EQ(run_cli("--export speedscope --stream", &streamed), 0);
  EXPECT_EQ(streamed, batch);
  EXPECT_NE(batch.find("speedscope.app/file-format-schema.json"),
            std::string::npos);
}

TEST_F(CliTest, ExportToolMatchesParseExport) {
  std::string via_parse;
  ASSERT_EQ(run_cli("--export perfetto", &via_parse), 0);

  const std::string out_path = ::testing::TempDir() + "/cli_export.json";
  const std::string cmd = std::string(TEMPEST_EXPORT_BIN) +
                          " --format perfetto --out \"" + out_path + "\" \"" +
                          *trace_path_ + "\" >/dev/null 2>/dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  EXPECT_EQ(slurp(out_path), via_parse);
  // The sidecar snapshot lets tempest-top show what the export did.
  EXPECT_NE(slurp(out_path + ".telemetry.jsonl").find("export_events_exported"),
            std::string::npos);
}

TEST_F(CliTest, BadExportFormatIsUsageError) {
  EXPECT_EQ(run_exit_code("--export svg \"" + *trace_path_ + "\""), 2);
}

TEST_F(CliTest, VersionFlagPrintsTraceFormatVersion) {
  const std::string out_path = ::testing::TempDir() + "/cli_version.out";
  const struct {
    const char* bin;
    const char* name;
  } tools[] = {{TEMPEST_PARSE_BIN, "tempest_parse"},
               {TEMPEST_EXPORT_BIN, "tempest-export"},
               {TEMPEST_TOP_BIN, "tempest-top"}};
  for (const auto& tool : tools) {
    const std::string cmd = std::string(tool.bin) + " --version > " + out_path +
                            " 2>/dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << tool.name;
    const std::string out = slurp(out_path);
    EXPECT_NE(out.find(tool.name), std::string::npos) << out;
    EXPECT_NE(out.find("trace format v"), std::string::npos) << out;
  }
}

TEST_F(CliTest, TopToleratesTruncatedHeartbeatTail) {
  // The recorder appends heartbeat lines while tempest-top reads; a
  // partially written last line must be skipped, not parsed or fatal.
  const std::string jsonl = ::testing::TempDir() + "/truncated.telemetry.jsonl";
  {
    std::ofstream out(jsonl, std::ios::trunc);
    out << "{\"t\":2.0,\"events_recorded\":100,\"events_dropped\":0}\n";
    out << "{\"t\":3.0,\"events_recorded\":250,\"events_dro";  // mid-write
  }
  const std::string out_path = ::testing::TempDir() + "/top.out";
  const std::string cmd = std::string(TEMPEST_TOP_BIN) + " --once \"" + jsonl +
                          "\" > " + out_path + " 2>/dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  const std::string out = slurp(out_path);
  // Rendered the last *complete* snapshot, not the torn one.
  EXPECT_NE(out.find("t=2.0s"), std::string::npos) << out;
  EXPECT_NE(out.find("100"), std::string::npos) << out;

  // A file holding only a torn line has no usable snapshot: exit 2.
  {
    std::ofstream out_trunc(jsonl, std::ios::trunc);
    out_trunc << "{\"t\":1.0,\"events_rec";
  }
  const int rc = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 2);
}

/// Run an arbitrary tool binary; returns the exit code, captures stdout.
int run_tool(const char* bin, const std::string& args, std::string* output) {
  const std::string out_path = ::testing::TempDir() + "/cli_tool.out";
  const std::string cmd =
      std::string(bin) + " " + args + " > " + out_path + " 2>/dev/null";
  const int rc = std::system(cmd.c_str());
  if (output != nullptr) *output = slurp(out_path);
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST_F(CliTest, LintSymtabMissingBinaryIsUsageError) {
  EXPECT_EQ(run_tool(TEMPEST_LINT_BIN,
                     "--symtab /nonexistent-binary \"" + *trace_path_ + "\"",
                     nullptr),
            2);
}

TEST_F(CliTest, LintSymtabWithoutValueIsUsageError) {
  EXPECT_EQ(run_tool(TEMPEST_LINT_BIN, "--symtab", nullptr), 2);
}

TEST_F(CliTest, LintSymtabCrossCheckPassesOnSyntheticTrace) {
  // The CLI trace holds only synthetic-region events, which the
  // coverage cross-check exempts; tempest_parse itself carries no
  // instrumentation, so there are no unused-probe warnings either.
  std::string out;
  EXPECT_EQ(run_tool(TEMPEST_LINT_BIN,
                     "--symtab " TEMPEST_PARSE_BIN " \"" + *trace_path_ + "\"",
                     &out),
            0);
  EXPECT_NE(out.find("clean"), std::string::npos) << out;
}

TEST_F(CliTest, AuditVersionFlagPrintsTraceFormatVersion) {
  std::string out;
  ASSERT_EQ(run_tool(TEMPEST_AUDIT_BIN, "--version", &out), 0);
  EXPECT_NE(out.find("tempest-audit"), std::string::npos) << out;
  EXPECT_NE(out.find("trace format v"), std::string::npos) << out;
}

TEST_F(CliTest, AuditUsageErrors) {
  EXPECT_EQ(run_tool(TEMPEST_AUDIT_BIN, "", nullptr), 2);  // no binary
  EXPECT_EQ(run_tool(TEMPEST_AUDIT_BIN, "--bogus " TEMPEST_PARSE_BIN, nullptr),
            2);
  EXPECT_EQ(run_tool(TEMPEST_AUDIT_BIN,
                     TEMPEST_PARSE_BIN " " TEMPEST_EXPORT_BIN, nullptr),
            2);  // exactly one binary
  EXPECT_EQ(run_tool(TEMPEST_AUDIT_BIN, "/nonexistent-binary", nullptr), 2);
  EXPECT_EQ(run_tool(TEMPEST_AUDIT_BIN,
                     "--trace /nonexistent.trace " TEMPEST_PARSE_BIN, nullptr),
            2);
}

TEST_F(CliTest, AuditUninstrumentedBinaryReportsNoHooks) {
  std::string out;
  // tempest_parse is built without -finstrument-functions: a valid
  // audit subject with zero instrumentation, not an error...
  EXPECT_EQ(run_tool(TEMPEST_AUDIT_BIN, "--json " TEMPEST_PARSE_BIN, &out), 0);
  EXPECT_NE(out.find("\"hooks_linked\":false"), std::string::npos) << out;
  // ...but --strict turns the blanket coverage gap into exit 1.
  EXPECT_EQ(run_tool(TEMPEST_AUDIT_BIN, "--strict -q " TEMPEST_PARSE_BIN, &out),
            1);
}

TEST_F(CliTest, AuditTraceJoinAndFilterOut) {
  const std::string filter_path = ::testing::TempDir() + "/cli.filter";
  std::string out;
  EXPECT_EQ(run_tool(TEMPEST_AUDIT_BIN,
                     "--json --trace \"" + *trace_path_ + "\" --filter-out \"" +
                         filter_path + "\" " TEMPEST_PARSE_BIN,
                     &out),
            0);
  EXPECT_NE(out.find("\"from_trace\":true"), std::string::npos) << out;
  EXPECT_NE(slurp(filter_path).find("# TEMPEST_FILTER v1"), std::string::npos);
}

TEST_F(CliTest, AuditFilterOutIsByteIdenticalAcrossInvocations) {
  // The suggestion ranking is a strict total order (overhead share
  // descending, function address ascending), so re-running the exact
  // same audit must reproduce the filter file byte for byte — filters
  // checked into a repo should diff clean across regenerations.
  const std::string a = ::testing::TempDir() + "/cli_repeat_a.filter";
  const std::string b = ::testing::TempDir() + "/cli_repeat_b.filter";
  const std::string args_tail = "--trace \"" + *trace_path_ +
                                "\" --filter-top 5 " TEMPEST_PARSE_BIN;
  ASSERT_EQ(run_tool(TEMPEST_AUDIT_BIN,
                     "-q --filter-out \"" + a + "\" " + args_tail, nullptr),
            0);
  ASSERT_EQ(run_tool(TEMPEST_AUDIT_BIN,
                     "-q --filter-out \"" + b + "\" " + args_tail, nullptr),
            0);
  const std::string first = slurp(a);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, slurp(b));
}

TEST_F(CliTest, BadInputsFailGracefully) {
  const std::string out_path = ::testing::TempDir() + "/cli.out";
  EXPECT_NE(std::system((std::string(TEMPEST_PARSE_BIN) + " /nonexistent.trace > " +
                         out_path + " 2>/dev/null")
                            .c_str()),
            0);
  EXPECT_NE(std::system((std::string(TEMPEST_PARSE_BIN) + " > " + out_path +
                         " 2>/dev/null")
                            .c_str()),
            0);
}

TEST_F(CliTest, DiffSelfHasNoSignificantDeltas) {
  std::string out;
  ASSERT_EQ(run_tool(TEMPEST_DIFF_BIN,
                     "\"" + *trace_path_ + "\" \"" + *trace_path_ + "\"", &out),
            0);
  EXPECT_NE(out.find("regressions (0)"), std::string::npos) << out;
  EXPECT_NE(out.find("improvements (0)"), std::string::npos) << out;

  // --fail-on-regression must stay exit 0 on a self-diff; the JSON
  // schema must declare itself.
  EXPECT_EQ(run_tool(TEMPEST_DIFF_BIN,
                     "--fail-on-regression \"" + *trace_path_ + "\" \"" +
                         *trace_path_ + "\"",
                     nullptr),
            0);
  ASSERT_EQ(run_tool(TEMPEST_DIFF_BIN,
                     "--format json \"" + *trace_path_ + "\" \"" + *trace_path_ +
                         "\"",
                     &out),
            0);
  EXPECT_NE(out.find("\"schema\":\"tempest-diff\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"regressions\":[]"), std::string::npos) << out;
}

TEST_F(CliTest, DiffUsageAndReadErrors) {
  EXPECT_EQ(run_tool(TEMPEST_DIFF_BIN, "", nullptr), 2);  // needs 2 traces
  EXPECT_EQ(run_tool(TEMPEST_DIFF_BIN, "\"" + *trace_path_ + "\"", nullptr), 2);
  EXPECT_EQ(run_tool(TEMPEST_DIFF_BIN,
                     "--bogus \"" + *trace_path_ + "\" \"" + *trace_path_ + "\"",
                     nullptr),
            2);
  EXPECT_EQ(run_tool(TEMPEST_DIFF_BIN,
                     "--confidence 1.5 \"" + *trace_path_ + "\" \"" +
                         *trace_path_ + "\"",
                     nullptr),
            2);
  EXPECT_EQ(run_tool(TEMPEST_DIFF_BIN,
                     "\"" + *trace_path_ + "\" /nonexistent.trace", nullptr),
            1);
}

TEST_F(CliTest, DiffVersionFlagPrintsTraceFormatVersion) {
  std::string out;
  ASSERT_EQ(run_tool(TEMPEST_DIFF_BIN, "--version", &out), 0);
  EXPECT_NE(out.find("tempest-diff"), std::string::npos) << out;
  EXPECT_NE(out.find("trace format v"), std::string::npos) << out;
}

TEST_F(CliTest, DiffTrendEmitsSchemaVersionedSeries) {
  std::string out;
  ASSERT_EQ(run_tool(TEMPEST_DIFF_BIN,
                     "--trend \"" + *trace_path_ + "\" \"" + *trace_path_ +
                         "\" \"" + *trace_path_ + "\"",
                     &out),
            0);
  EXPECT_NE(out.find("\"schema\":\"tempest-diff-trend\""), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"runs\":3"), std::string::npos) << out;
  EXPECT_NE(out.find("\"run\":2"), std::string::npos) << out;
  EXPECT_NE(out.find("\"function\":\"cli_hot\""), std::string::npos) << out;

  // Trend mode needs at least two runs.
  EXPECT_EQ(run_tool(TEMPEST_DIFF_BIN, "--trend \"" + *trace_path_ + "\"",
                     nullptr),
            2);
}

TEST_F(CliTest, TopConnectUnreachableCollectorIsOneLineError) {
  // Nothing listens on this port; the tool must fail fast with exit 2
  // and a single actionable stderr line naming the endpoint.
  const std::string err_path = ::testing::TempDir() + "/top_connect.err";
  const std::string cmd = std::string(TEMPEST_TOP_BIN) +
                          " --connect 127.0.0.1:1 --once >/dev/null 2> " +
                          err_path;
  const int rc = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 2);
  const std::string err = slurp(err_path);
  EXPECT_NE(err.find("collector at 127.0.0.1:1 unreachable"), std::string::npos)
      << err;
  EXPECT_EQ(std::count(err.begin(), err.end(), '\n'), 1) << err;
}

}  // namespace
