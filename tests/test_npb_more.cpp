// Deeper NPB coverage: algebraic properties of the generated problems
// and convergence behaviour beyond the basic serial-vs-parallel checks.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "minimpi/runtime.hpp"
#include "npb/bt.hpp"
#include "npb/cg.hpp"
#include "npb/ep.hpp"
#include "npb/ft.hpp"
#include "npb/mg.hpp"
#include "npb/nas_rng.hpp"

namespace {

using namespace npb;

TEST(CgMatrix, IsSymmetric) {
  const SparseMatrix a = cg_makea(CgConfig::for_class(ProblemClass::S));
  // Build a dense map of entries and check A[i][j] == A[j][i].
  std::map<std::pair<int, int>, double> entries;
  for (int i = 0; i < a.n; ++i) {
    for (int k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i + 1)]; ++k) {
      entries[{i, a.col[static_cast<std::size_t>(k)]}] = a.val[static_cast<std::size_t>(k)];
    }
  }
  for (const auto& [key, v] : entries) {
    const auto it = entries.find({key.second, key.first});
    ASSERT_NE(it, entries.end()) << key.first << "," << key.second;
    EXPECT_DOUBLE_EQ(it->second, v);
  }
}

TEST(CgMatrix, IsPositiveDefiniteOnRandomVectors) {
  const SparseMatrix a = cg_makea(CgConfig::for_class(ProblemClass::S));
  std::mt19937 rng(5);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(a.n));
    for (auto& v : x) v = dist(rng);
    // x^T A x > 0 (Gershgorin-dominant diagonal guarantees SPD).
    double xax = 0.0;
    for (int i = 0; i < a.n; ++i) {
      double row = 0.0;
      for (int k = a.row_ptr[static_cast<std::size_t>(i)];
           k < a.row_ptr[static_cast<std::size_t>(i + 1)]; ++k) {
        row += a.val[static_cast<std::size_t>(k)] *
               x[static_cast<std::size_t>(a.col[static_cast<std::size_t>(k)])];
      }
      xax += x[static_cast<std::size_t>(i)] * row;
    }
    EXPECT_GT(xax, 0.0);
  }
}

TEST(CgConvergence, ResidualShrinksWithMoreInnerIterations) {
  CgConfig few = CgConfig::for_class(ProblemClass::S);
  few.outer_iters = 1;
  few.inner_iters = 4;
  CgConfig many = few;
  many.inner_iters = 30;
  EXPECT_LT(cg_serial(many).final_rnorm, cg_serial(few).final_rnorm);
}

TEST(EpStatistics, CountsAreConsistent) {
  const EpResult r = ep_serial(EpConfig{14});
  std::int64_t in_bins = 0;
  for (std::int64_t c : r.counts) in_bins += c;
  // Every accepted pair lands in a bin (Gaussian deviates beyond 10
  // standard-normal units are essentially impossible at this n).
  EXPECT_EQ(in_bins, r.accepted);
  // Acceptance rate of the polar method is pi/4 ~ 0.785.
  const double rate = static_cast<double>(r.accepted) / (1 << 14);
  EXPECT_NEAR(rate, 0.785, 0.02);
  // Gaussian sums hover near zero relative to the count.
  EXPECT_LT(std::abs(r.sx) / r.accepted, 0.05);
  EXPECT_LT(std::abs(r.sy) / r.accepted, 0.05);
}

TEST(FtSpectral, EvolveOnlyDampens) {
  // The decay factors are <= 1, so per-iteration checksum magnitude of
  // the evolving field cannot grow.
  const FtResult r = ft_serial(FtConfig{16, 16, 16, 5});
  for (std::size_t i = 1; i < r.checksums.size(); ++i) {
    EXPECT_LE(std::abs(r.checksums[i]), std::abs(r.checksums[i - 1]) * 1.001)
        << "iteration " << i;
  }
}

TEST(FtGrid, NonCubicGridsWork) {
  for (auto config : {FtConfig{32, 16, 8, 2}, FtConfig{8, 32, 16, 2}}) {
    const FtResult parallel = [&] {
      FtResult out;
      minimpi::run(2, [&](minimpi::Comm& comm) { out = ft_run(comm, config); });
      return out;
    }();
    const VerifyResult v = ft_verify(parallel, config);
    EXPECT_TRUE(v.passed) << config.nx << "x" << config.ny << "x" << config.nz
                          << ": " << v.detail;
  }
}

TEST(BtConvergence, SmallerDtConvergesSlowerPerIteration) {
  BtConfig small_dt{10, 10, 10, 6, 0.005};
  BtConfig big_dt{10, 10, 10, 6, 0.02};
  const BtResult a = bt_serial(small_dt);
  const BtResult b = bt_serial(big_dt);
  // Larger (stable) dt makes more progress toward the manufactured
  // solution in the same iteration count.
  EXPECT_LT(b.final_error, a.final_error);
}

TEST(BtResidual, StrictlyDecreasesThroughTheRun) {
  const BtResult r = bt_serial(BtConfig{10, 10, 10, 8, 0.02});
  for (std::size_t i = 1; i < r.rhs_norms.size(); ++i) {
    EXPECT_LT(r.rhs_norms[i], r.rhs_norms[i - 1]) << "iteration " << i;
  }
}

TEST(MgLevels, MoreLevelsConvergeFasterPerCycle) {
  MgConfig shallow{32, 3, 1};  // pure smoothing
  MgConfig deep{32, 3, 3};
  const MgResult a = mg_serial(shallow);
  const MgResult b = mg_serial(deep);
  EXPECT_LT(b.rnorms.back(), a.rnorms.back());
}

TEST(MgParallel, ScalesToEightRanks) {
  MgConfig config{32, 2, 2};
  MgResult result;
  minimpi::run(8, [&](minimpi::Comm& comm) { result = mg_run(comm, config); });
  const VerifyResult v = mg_verify(result, config);
  EXPECT_TRUE(v.passed) << v.detail;
}

TEST(FtParallel, ScalesToEightRanks) {
  FtConfig config{32, 32, 32, 2};
  FtResult result;
  minimpi::run(8, [&](minimpi::Comm& comm) { result = ft_run(comm, config); });
  EXPECT_TRUE(ft_verify(result, config).passed);
}

TEST(NasRngProperty, StreamHasNoShortCycles) {
  // 100k draws with no repeat of the initial state (period is 2^44).
  double x = kNasSeed;
  for (int i = 0; i < 100'000; ++i) {
    (void)randlc(&x, kNasMult);
    ASSERT_NE(x, kNasSeed);
  }
}

TEST(NasRngProperty, UniformMoments) {
  double x = kNasSeed;
  double sum = 0.0, sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double v = randlc(&x, kNasMult);
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);          // mean of U(0,1)
  EXPECT_NEAR(sq / n, 1.0 / 3.0, 0.005);     // E[x^2]
}

}  // namespace
