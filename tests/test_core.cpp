// libtempest core: session lifecycle, tempd sampling, explicit and
// per-block APIs, config parsing, workbench DVFS stretching.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "core/api.hpp"
#include "core/config.hpp"
#include "core/perblk.hpp"
#include "core/session.hpp"
#include "core/workbench.hpp"
#include "simnode/cluster.hpp"

namespace {

using namespace tempest;
using core::Session;
using core::SessionConfig;
using core::Workbench;

simnode::NodeConfig fast_node() {
  auto config = simnode::make_node_config(simnode::NodeKind::kX86Basic);
  config.package.time_scale = 30.0;
  return config;
}

SessionConfig test_config(double hz = 50.0) {
  SessionConfig c;
  c.sample_hz = hz;
  c.bind_affinity = false;
  return c;
}

TEST(SessionConfig, EnvOverrides) {
  ::setenv("TEMPEST_HZ", "8", 1);
  ::setenv("TEMPEST_UNIT", "C", 1);
  ::setenv("TEMPEST_BIND", "0", 1);
  ::setenv("TEMPEST_OUT", "/tmp/t.trace", 1);
  ::setenv("TEMPEST_MIN_SAMPLES", "5", 1);
  const SessionConfig c = SessionConfig::from_env();
  EXPECT_DOUBLE_EQ(c.sample_hz, 8.0);
  EXPECT_EQ(c.unit, TempUnit::kCelsius);
  EXPECT_FALSE(c.bind_affinity);
  EXPECT_EQ(c.output_path, "/tmp/t.trace");
  EXPECT_EQ(c.min_samples_significant, 5u);
  ::unsetenv("TEMPEST_HZ");
  ::unsetenv("TEMPEST_UNIT");
  ::unsetenv("TEMPEST_BIND");
  ::unsetenv("TEMPEST_OUT");
  ::unsetenv("TEMPEST_MIN_SAMPLES");
}

TEST(SessionConfig, InvalidHzFallsBackToPaperRate) {
  ::setenv("TEMPEST_HZ", "-3", 1);
  EXPECT_DOUBLE_EQ(SessionConfig::from_env().sample_hz, 4.0);
  ::unsetenv("TEMPEST_HZ");
}

TEST(SessionConfig, MaxEventsRejectsZeroAndGarbage) {
  // An explicit cap of 0 reads as "record nothing" — never what anyone
  // meant; it warns and stays unbounded, as do garbage and negatives.
  for (const char* bad : {"0", "banana", "-5", "1e3"}) {
    ::setenv("TEMPEST_MAX_EVENTS", bad, 1);
    EXPECT_EQ(SessionConfig::from_env().max_events_per_thread, 0u)
        << "value '" << bad << "'";
  }
  ::setenv("TEMPEST_MAX_EVENTS", "65536", 1);
  EXPECT_EQ(SessionConfig::from_env().max_events_per_thread, 65536u);
  ::unsetenv("TEMPEST_MAX_EVENTS");
}

TEST(SessionConfig, AdmissionEnvOverrides) {
  ::setenv("TEMPEST_FILTER", "/tmp/f.filter", 1);
  ::setenv("TEMPEST_MIN_DURATION_NS", "2500", 1);
  ::setenv("TEMPEST_RATE_CAP", "1000", 1);
  ::setenv("TEMPEST_ADAPTIVE", "1", 1);
  ::setenv("TEMPEST_RING_EVENTS", "200000", 1);
  ::setenv("TEMPEST_RING_SECONDS", "30", 1);
  const SessionConfig c = SessionConfig::from_env();
  EXPECT_EQ(c.filter_path, "/tmp/f.filter");
  EXPECT_EQ(c.min_duration_ns, 2500);
  EXPECT_EQ(c.rate_cap, 1000);
  EXPECT_TRUE(c.adaptive);
  EXPECT_EQ(c.ring_events, 200000u);
  EXPECT_DOUBLE_EQ(c.ring_seconds, 30.0);
  ::unsetenv("TEMPEST_FILTER");
  ::unsetenv("TEMPEST_MIN_DURATION_NS");
  ::unsetenv("TEMPEST_RATE_CAP");
  ::unsetenv("TEMPEST_ADAPTIVE");
  ::unsetenv("TEMPEST_RING_EVENTS");
  ::unsetenv("TEMPEST_RING_SECONDS");
}

TEST(SessionConfig, MalformedAdmissionValuesFallBack) {
  ::setenv("TEMPEST_RATE_CAP", "often", 1);
  ::setenv("TEMPEST_RING_EVENTS", "-1", 1);
  ::setenv("TEMPEST_RING_SECONDS", "a minute", 1);
  const SessionConfig c = SessionConfig::from_env();
  EXPECT_EQ(c.rate_cap, 0);
  EXPECT_EQ(c.ring_events, 0u);
  EXPECT_DOUBLE_EQ(c.ring_seconds, 0.0);
  ::unsetenv("TEMPEST_RATE_CAP");
  ::unsetenv("TEMPEST_RING_EVENTS");
  ::unsetenv("TEMPEST_RING_SECONDS");
}

TEST(SessionConfig, SnapshotSignalParsing) {
  const auto signal_for = [](const char* spec) {
    ::setenv("TEMPEST_SNAPSHOT_SIGNAL", spec, 1);
    const int s = SessionConfig::from_env().snapshot_signal;
    ::unsetenv("TEMPEST_SNAPSHOT_SIGNAL");
    return s;
  };
  EXPECT_EQ(signal_for("USR2"), SIGUSR2);
  EXPECT_EQ(signal_for("SIGUSR2"), SIGUSR2);
  EXPECT_EQ(signal_for("USR1"), SIGUSR1);
  EXPECT_EQ(signal_for(std::to_string(SIGUSR2).c_str()), SIGUSR2);
  EXPECT_EQ(signal_for("WINCH-ish"), -1);
  EXPECT_EQ(signal_for(""), -1);
  EXPECT_EQ(SessionConfig::from_env().snapshot_signal, -1);  // unset
}

TEST(Session, LifecycleErrors) {
  auto& session = Session::instance();
  session.clear_nodes();
  // No nodes: start refuses.
  EXPECT_FALSE(session.start(test_config()));
  EXPECT_FALSE(session.stop());  // not active

  simnode::SimNode node(fast_node());
  session.register_sim_node(&node);
  ASSERT_TRUE(session.start(test_config()));
  EXPECT_TRUE(session.active());
  EXPECT_FALSE(session.start(test_config()));  // double start
  ASSERT_TRUE(session.stop());
  EXPECT_FALSE(session.active());
  session.clear_nodes();
}

TEST(Session, TempdSamplesAtConfiguredRate) {
  auto& session = Session::instance();
  session.clear_nodes();
  simnode::SimNode node(fast_node());
  session.register_sim_node(&node);

  ASSERT_TRUE(session.start(test_config(20.0)));
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ASSERT_TRUE(session.stop());

  const auto& trace = session.last_trace();
  // ~10 ticks x 3 sensors; allow generous scheduling slack.
  EXPECT_GE(trace.temp_samples.size(), 3u * 6u);
  EXPECT_LE(trace.temp_samples.size(), 3u * 20u);
  // Sensor metadata recorded for the x86 layout.
  EXPECT_EQ(trace.sensors.size(), 3u);
  EXPECT_EQ(trace.nodes.size(), 1u);
  EXPECT_GT(trace.tsc_ticks_per_second, 0.0);
  EXPECT_FALSE(trace.executable.empty());
  // tempd is light: well under the paper's 1% CPU bound even at 20 Hz.
  EXPECT_LT(session.tempd_stats().cpu_seconds, 0.05);
  EXPECT_EQ(session.tempd_stats().read_errors, 0u);
  session.clear_nodes();
}

TEST(Session, ExplicitRegionsAndBlocks) {
  auto& session = Session::instance();
  session.clear_nodes();
  simnode::SimNode node(fast_node());
  const auto node_id = session.register_sim_node(&node);
  ASSERT_TRUE(session.start(test_config()));
  (void)session.attach_current_thread(node_id, 0);

  {
    ScopedRegion outer("outer_region");
    tempest_blk_begin("outer_region", "block1");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    tempest_blk_end("outer_region", "block1");
    region_enter("manual");
    region_exit("manual");
  }
  ASSERT_TRUE(session.stop());
  const auto& trace = session.last_trace();

  // 3 synthetic names: outer_region, outer_region:block1, manual.
  ASSERT_EQ(trace.synthetic_symbols.size(), 3u);
  EXPECT_EQ(trace.fn_events.size(), 6u);
  bool found_block = false;
  for (const auto& s : trace.synthetic_symbols) {
    found_block |= s.name == "outer_region:block1";
  }
  EXPECT_TRUE(found_block);
  session.clear_nodes();
}

TEST(Session, SyntheticAddrStablePerName) {
  auto& session = Session::instance();
  const auto a1 = session.synthetic_addr("same_name");
  const auto a2 = session.synthetic_addr("same_name");
  const auto b = session.synthetic_addr("other_name");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_GE(a1, trace::kSyntheticAddrBase);
}

TEST(Session, EventsDroppedWhenInactive) {
  auto& session = Session::instance();
  const std::size_t before = session.registry().total_events();
  session.record_enter(0x1234);  // inactive: dropped
  session.record_exit(0x1234);
  EXPECT_EQ(session.registry().total_events(), before);
}

TEST(Session, AttachRejectsUnknownNode) {
  auto& session = Session::instance();
  session.clear_nodes();
  EXPECT_FALSE(session.attach_current_thread(7, 0));
}

TEST(Session, MultipleRunsInOneProcess) {
  auto& session = Session::instance();
  session.clear_nodes();
  simnode::SimNode node(fast_node());
  session.register_sim_node(&node);

  for (int run = 0; run < 3; ++run) {
    ASSERT_TRUE(session.start(test_config()));
    {
      ScopedRegion r("repeat_region");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(session.stop());
    EXPECT_EQ(session.last_trace().fn_events.size(), 2u) << "run " << run;
  }
  session.clear_nodes();
}

TEST(Session, RunStatsMatchTheAssembledTrace) {
  auto& session = Session::instance();
  session.clear_nodes();
  simnode::SimNode node(fast_node());
  session.register_sim_node(&node);
  ASSERT_TRUE(session.start(test_config()));
  for (int i = 0; i < 100; ++i) {
    session.record_enter(0x1000);
    session.record_exit(0x1000);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(session.stop());
  const auto& trace = session.last_trace();
  const trace::RunStats& rs = trace.run_stats;
  ASSERT_TRUE(rs.present);
  // The recorder's own accounting agrees with what it handed over —
  // exactly the invariant tempest-lint cross-checks on every trace.
  EXPECT_EQ(rs.events_recorded, trace.fn_events.size());
  EXPECT_EQ(rs.events_dropped, 0u);
  EXPECT_EQ(rs.tempd_samples, trace.temp_samples.size());
  EXPECT_GE(rs.threads_registered, 1u);
  EXPECT_GT(rs.wall_seconds, 0.0);
  EXPECT_GE(rs.tempd_ticks, 2u);  // immediate tick + final tick minimum
  session.clear_nodes();
}

TEST(Session, MaxEventsCapDropsLoudly) {
  auto& session = Session::instance();
  session.clear_nodes();
  simnode::SimNode node(fast_node());
  session.register_sim_node(&node);
  auto config = test_config();
  // One chunk (the cap rounds up to whole chunks); then drops begin.
  config.max_events_per_thread = 1;
  ASSERT_TRUE(session.start(config));
  constexpr std::size_t kPushed = 3 * core::EventBuffer::kChunkSize;
  for (std::size_t i = 0; i < kPushed; ++i) {
    session.record_enter(0x2000);
  }
  ASSERT_TRUE(session.stop());
  const auto& trace = session.last_trace();
  const trace::RunStats& rs = trace.run_stats;
  ASSERT_TRUE(rs.present);
  EXPECT_EQ(trace.fn_events.size(), core::EventBuffer::kChunkSize);
  EXPECT_EQ(rs.events_recorded, trace.fn_events.size());
  // Every pushed-but-not-kept event is accounted for, none silently.
  EXPECT_EQ(rs.events_dropped, kPushed - core::EventBuffer::kChunkSize);
  session.clear_nodes();
}

TEST(Session, WatchdogFailsStopWhenBudgetExceeded) {
  auto& session = Session::instance();
  session.clear_nodes();
  simnode::SimNode node(fast_node());
  session.register_sim_node(&node);
  auto config = test_config(200.0);  // busy sampler
  config.watchdog = true;
  config.watchdog_budget = 1e-9;  // impossible budget: any run trips it
  ASSERT_TRUE(session.start(config));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto status = session.stop();
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("watchdog"), std::string::npos);
  // The verdict is advisory-after-the-fact: the trace still assembled.
  EXPECT_TRUE(session.last_trace().run_stats.present);
  session.clear_nodes();
}

TEST(Session, WatchdogQuietWhenUnderBudget) {
  auto& session = Session::instance();
  session.clear_nodes();
  simnode::SimNode node(fast_node());
  session.register_sim_node(&node);
  auto config = test_config(4.0);  // the paper's gentle rate
  config.watchdog = true;          // default 1% budget
  ASSERT_TRUE(session.start(config));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_TRUE(session.stop());
  session.clear_nodes();
}

TEST(Session, HeartbeatSidecarWrittenNextToTrace) {
  auto& session = Session::instance();
  session.clear_nodes();
  simnode::SimNode node(fast_node());
  session.register_sim_node(&node);
  const std::string trace_path = ::testing::TempDir() + "/hb_session.trace";
  auto config = test_config();
  config.output_path = trace_path;
  config.heartbeat_period_s = 0.01;
  ASSERT_TRUE(session.start(config));
  session.record_enter(0x3000);
  session.record_exit(0x3000);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  ASSERT_TRUE(session.stop());

  std::ifstream hb(trace_path + ".telemetry.jsonl");
  ASSERT_TRUE(hb.is_open());
  std::string line, last;
  std::size_t lines = 0;
  while (std::getline(hb, line)) {
    if (!line.empty()) {
      last = line;
      ++lines;
    }
  }
  EXPECT_GE(lines, 3u);  // start + >=1 periodic + final
  // The final snapshot carries the drained totals.
  EXPECT_NE(last.find("\"events_recorded\":2"), std::string::npos) << last;
  // And the RUNSTATS trailer knows how many heartbeats were written.
  EXPECT_EQ(session.last_trace().run_stats.heartbeats, lines);
  std::remove((trace_path + ".telemetry.jsonl").c_str());
  std::remove(trace_path.c_str());
  session.clear_nodes();
}

TEST(Workbench, BurnHonoursDvfsSpeedFactor) {
  // A throttled node stretches the same work: compare wall time at
  // full speed vs pinned to the slowest P-state.
  auto config = fast_node();
  simnode::SimNode fast(config);
  simnode::SimNode slow(config);
  // Force the slow node's governor into its lowest state.
  slow.package().governor() =
      thermal::DvfsGovernor({thermal::GovernorMode::kThreshold, -100.0, -200.0}, 3);
  (void)slow.package().governor().evaluate(50.0);
  (void)slow.package().governor().evaluate(50.0);
  ASSERT_LT(slow.speed_factor(), 1.0);

  Workbench wb_fast(&fast, 0), wb_slow(&slow, 0);
  const auto t0 = std::chrono::steady_clock::now();
  wb_fast.burn(0.1);
  const auto t1 = std::chrono::steady_clock::now();
  wb_slow.burn(0.1);
  const auto t2 = std::chrono::steady_clock::now();
  const double fast_s = std::chrono::duration<double>(t1 - t0).count();
  const double slow_s = std::chrono::duration<double>(t2 - t1).count();
  EXPECT_GT(slow_s, fast_s * 1.3);
}

TEST(Workbench, IdleMarksMeterIdle) {
  simnode::SimNode node(fast_node());
  Workbench bench(&node, 0);
  bench.attach();
  EXPECT_TRUE(node.core_meter(0).busy());
  bench.idle(0.02);
  EXPECT_TRUE(node.core_meter(0).busy());  // restored after idle scope
  bench.detach();
  EXPECT_FALSE(node.core_meter(0).busy());
}

}  // namespace
