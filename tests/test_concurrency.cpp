// Concurrency stress: many threads hammering the instrumentation hot
// path while tempd samples; the event pipeline must lose nothing and
// the parser must reconstruct every thread's timeline.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "analysis/lint.hpp"
#include "core/api.hpp"
#include "core/session.hpp"
#include "parser/parse.hpp"
#include "simnode/cluster.hpp"

namespace {

using tempest::core::Session;

TEST(Concurrency, ParallelRegionsLoseNoEvents) {
  auto config = tempest::simnode::make_node_config(
      tempest::simnode::NodeKind::kOpteron);
  tempest::simnode::SimNode node(config);
  auto& session = Session::instance();
  session.clear_nodes();
  session.register_sim_node(&node);
  tempest::core::SessionConfig sc;
  sc.sample_hz = 100.0;  // sample aggressively while threads run
  sc.bind_affinity = false;
  ASSERT_TRUE(session.start(sc));

  constexpr int kThreads = 8;
  constexpr int kRegionsPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      (void)Session::instance().attach_current_thread(0, static_cast<std::uint16_t>(t % 4));
      const std::string name = "stress_region_" + std::to_string(t);
      for (int i = 0; i < kRegionsPerThread; ++i) {
        tempest::ScopedRegion region(name);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(session.stop());

  auto parsed = tempest::parser::parse_trace(session.take_trace());
  ASSERT_TRUE(parsed.is_ok()) << parsed.message();
  // Every region of every thread accounted for, perfectly balanced.
  EXPECT_EQ(parsed.value().diagnostics.unmatched_exits, 0u);
  EXPECT_EQ(parsed.value().diagnostics.force_closed, 0u);
  std::uint64_t total_calls = 0;
  for (const auto& n : parsed.value().nodes) {
    for (const auto& fn : n.functions) {
      if (fn.name.rfind("stress_region_", 0) == 0) total_calls += fn.calls;
    }
  }
  EXPECT_EQ(total_calls, static_cast<std::uint64_t>(kThreads) * kRegionsPerThread);
  session.clear_nodes();
}

TEST(Concurrency, RecordsWhileTempdAdvancesSharedNode) {
  // Threads bound to all four cores of one node while tempd advances
  // its thermal model at high rate: exercising the meter/advance locks.
  auto config = tempest::simnode::make_node_config(
      tempest::simnode::NodeKind::kOpteron);
  config.package.time_scale = 40.0;
  tempest::simnode::SimNode node(config);
  auto& session = Session::instance();
  session.clear_nodes();
  session.register_sim_node(&node);
  tempest::core::SessionConfig sc;
  sc.sample_hz = 200.0;
  sc.bind_affinity = false;
  ASSERT_TRUE(session.start(sc));

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      auto& meter = node.core_meter(static_cast<std::size_t>(c));
      while (!stop.load(std::memory_order_relaxed)) {
        meter.set_busy(tempest::rdtsc());
        meter.set_idle(tempest::rdtsc());
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& th : threads) th.join();
  ASSERT_TRUE(session.stop());

  // Samples collected, none failed, temperatures sane. The sampler
  // schedules against absolute deadlines and skips (and counts)
  // periods an overrunning sweep missed, so under lock contention —
  // or sanitizer slowdown — the raw sample count may dip to the
  // bracketing minimum; the structural oracle is that every elapsed
  // period is accounted for as either a tick or a counted miss, and
  // every tick swept all six sensors.
  const auto& trace = session.last_trace();
  const auto& stats = session.tempd_stats();
  EXPECT_GE(trace.temp_samples.size(), 6u * 2u);  // first + final tick
  EXPECT_EQ(stats.read_errors, 0u);
  EXPECT_GE(stats.ticks + stats.missed_ticks, 70u);  // ~80 periods in 400ms
  EXPECT_EQ(trace.temp_samples.size(), 6u * stats.ticks);
  for (const auto& s : trace.temp_samples) {
    EXPECT_GT(s.temp_c, 0.0);
    EXPECT_LT(s.temp_c, 120.0);
  }
  session.clear_nodes();
}

TEST(Concurrency, DrainedAndMergedTraceSatisfiesLintInvariants) {
  // The drain/merge fast path (per-thread runs recorded by drain_into,
  // k-way merge in sort_by_time) must still emit traces that satisfy
  // every tempest-lint invariant: monotonic per-thread timestamps,
  // balanced entry/exit nesting, conserved inclusive time, resolvable
  // references. Run under TSan via the concurrency label.
  auto config = tempest::simnode::make_node_config(
      tempest::simnode::NodeKind::kOpteron);
  tempest::simnode::SimNode node(config);
  auto& session = Session::instance();
  session.clear_nodes();
  session.register_sim_node(&node);
  tempest::core::SessionConfig sc;
  sc.sample_hz = 50.0;
  sc.bind_affinity = false;
  ASSERT_TRUE(session.start(sc));

  constexpr int kThreads = 6;
  constexpr int kRegionsPerThread = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      (void)Session::instance().attach_current_thread(
          0, static_cast<std::uint16_t>(t % 4));
      const std::string outer = "lint_outer_" + std::to_string(t);
      for (int i = 0; i < kRegionsPerThread; ++i) {
        tempest::ScopedRegion region(outer);
        tempest::ScopedRegion nested("lint_inner");
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(session.stop());

  const tempest::trace::Trace trace = session.take_trace();
  // stop() sorts, so the merged events form one covering run.
  ASSERT_EQ(trace.fn_event_runs.size(), 1u);
  EXPECT_EQ(trace.fn_event_runs[0].begin, 0u);
  EXPECT_EQ(trace.fn_event_runs[0].count, trace.fn_events.size());
  EXPECT_EQ(trace.fn_events.size(),
            static_cast<std::size_t>(kThreads) * kRegionsPerThread * 4);

  const auto report = tempest::analysis::lint_trace(trace);
  EXPECT_EQ(report.error_count, 0u) << tempest::analysis::to_json(report);
  session.clear_nodes();
}

TEST(Concurrency, SyntheticAddrRegistryIsThreadSafe) {
  auto& session = Session::instance();
  constexpr int kThreads = 8;
  std::vector<std::uint64_t> addrs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // All threads race to register the same name...
      addrs[static_cast<std::size_t>(t)] = session.synthetic_addr("racy_name");
      // ...and some distinct ones.
      (void)session.synthetic_addr("private_" + std::to_string(t));
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(addrs[static_cast<std::size_t>(t)], addrs[0]);
  }
}

}  // namespace
