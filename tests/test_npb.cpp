// NAS-like benchmarks: RNG exactness, FFT properties, and each
// benchmark's parallel-vs-serial verification at multiple rank counts.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

#include "minimpi/runtime.hpp"
#include "npb/bt.hpp"
#include "npb/cg.hpp"
#include "npb/ep.hpp"
#include "npb/ft.hpp"
#include "npb/mg.hpp"
#include "npb/nas_rng.hpp"

namespace {

using namespace npb;

TEST(NasRng, MatchesReferenceFirstDraws) {
  // First uniform from the canonical NAS seed/multiplier must be
  // x1 = (a * seed) mod 2^46, computed exactly in 128-bit integers
  // (the product overflows a double's 53-bit mantissa — avoiding that
  // loss is the whole point of randlc's split arithmetic).
  double x = kNasSeed;
  const double r1 = randlc(&x, kNasMult);
  const unsigned __int128 product =
      static_cast<unsigned __int128>(1220703125ULL) * 314159265ULL;
  const auto expected_x1 = static_cast<double>(
      static_cast<std::uint64_t>(product & ((1ULL << 46) - 1)));
  EXPECT_DOUBLE_EQ(x, expected_x1);
  EXPECT_DOUBLE_EQ(r1, expected_x1 / 70368744177664.0);
  EXPECT_GT(r1, 0.0);
  EXPECT_LT(r1, 1.0);
}

TEST(NasRng, VranlcMatchesScalarStream) {
  double x1 = kNasSeed, x2 = kNasSeed;
  double vec[100];
  vranlc(100, &x1, kNasMult, vec);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(vec[i], randlc(&x2, kNasMult)) << i;
  }
  EXPECT_DOUBLE_EQ(x1, x2);
}

TEST(NasRng, JumpEqualsSequentialAdvance) {
  for (std::uint64_t steps : {0ULL, 1ULL, 2ULL, 17ULL, 1000ULL, 123457ULL}) {
    double seq = kNasSeed;
    for (std::uint64_t i = 0; i < steps; ++i) (void)randlc(&seq, kNasMult);
    EXPECT_DOUBLE_EQ(seed_after(kNasSeed, kNasMult, steps), seq) << steps;
  }
}

TEST(Fft1d, RoundTripRecoversInput) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int n : {2, 8, 64, 256}) {
    std::vector<std::complex<double>> data(static_cast<std::size_t>(n)), orig;
    for (auto& v : data) v = {dist(rng), dist(rng)};
    orig = data;
    fft1d(data.data(), n, -1);
    fft1d(data.data(), n, +1);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(data[static_cast<std::size_t>(i)].real() / n,
                  orig[static_cast<std::size_t>(i)].real(), 1e-10);
      EXPECT_NEAR(data[static_cast<std::size_t>(i)].imag() / n,
                  orig[static_cast<std::size_t>(i)].imag(), 1e-10);
    }
  }
}

TEST(Fft1d, DeltaTransformsToConstant) {
  std::vector<std::complex<double>> data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  fft1d(data.data(), 8, -1);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft1d, ParsevalHolds) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> data(64);
  for (auto& v : data) v = {dist(rng), dist(rng)};
  double time_energy = 0.0;
  for (const auto& v : data) time_energy += std::norm(v);
  fft1d(data.data(), 64, -1);
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, 64.0 * time_energy, 1e-8 * freq_energy);
}

// ---- benchmark verification, parameterised over rank count -------------

class NpbParallel : public ::testing::TestWithParam<int> {};

TEST_P(NpbParallel, EpMatchesSerialExactly) {
  const int np = GetParam();
  EpConfig config;
  config.log2_pairs = 14;
  EpResult result;
  minimpi::run(np, [&](minimpi::Comm& comm) { result = ep_run(comm, config); });
  const VerifyResult v = ep_verify(result, config);
  EXPECT_TRUE(v.passed) << v.detail;
  EXPECT_GT(result.accepted, 0);
}

TEST_P(NpbParallel, CgMatchesSerial) {
  const int np = GetParam();
  CgConfig config = CgConfig::for_class(ProblemClass::S);
  config.outer_iters = 5;
  CgResult result;
  minimpi::run(np, [&](minimpi::Comm& comm) { result = cg_run(comm, config); });
  const VerifyResult v = cg_verify(result, config);
  EXPECT_TRUE(v.passed) << v.detail;
  EXPECT_GT(result.zeta, config.shift);  // shift + positive reciprocal
}

TEST_P(NpbParallel, FtMatchesSerial) {
  const int np = GetParam();
  FtConfig config{16, 16, 16, 3};
  FtResult result;
  minimpi::run(np, [&](minimpi::Comm& comm) { result = ft_run(comm, config); });
  const VerifyResult v = ft_verify(result, config);
  EXPECT_TRUE(v.passed) << v.detail;
  ASSERT_EQ(result.checksums.size(), 3u);
  EXPECT_GT(std::abs(result.checksums[0]), 0.0);
}

TEST_P(NpbParallel, MgMatchesSerialAndConverges) {
  const int np = GetParam();
  MgConfig config{16, 3, 2};
  MgResult result;
  minimpi::run(np, [&](minimpi::Comm& comm) { result = mg_run(comm, config); });
  const VerifyResult v = mg_verify(result, config);
  EXPECT_TRUE(v.passed) << v.detail;
}

TEST_P(NpbParallel, BtMatchesSerialAndConverges) {
  const int np = GetParam();
  BtConfig config{8, 8, 8, 4, 0.02};
  BtResult result;
  minimpi::run(np, [&](minimpi::Comm& comm) { result = bt_run(comm, config); });
  const VerifyResult v = bt_verify(result, config);
  EXPECT_TRUE(v.passed) << v.detail;
  ASSERT_EQ(result.rhs_norms.size(), 4u);
  EXPECT_LT(result.rhs_norms.back(), result.rhs_norms.front());
}

INSTANTIATE_TEST_SUITE_P(RankCounts, NpbParallel, ::testing::Values(1, 2, 4));

TEST(Bt, ErrorShrinksWithMoreIterations) {
  BtConfig base{8, 8, 8, 2, 0.02};
  BtConfig longer = base;
  longer.niter = 10;
  const BtResult short_run = bt_serial(base);
  const BtResult long_run = bt_serial(longer);
  EXPECT_LT(long_run.final_error, short_run.final_error);
}

TEST(Bt, InvalidDecompositionRejected) {
  EXPECT_THROW(minimpi::run(3, [](minimpi::Comm& comm) {
    bt_run(comm, BtConfig{8, 8, 8, 1, 0.02});
  }), std::invalid_argument);
}

TEST(Ft, InvalidDimensionsRejected) {
  EXPECT_THROW(ft_serial(FtConfig{12, 16, 16, 1}), std::invalid_argument);
}

TEST(Mg, TooManyLevelsRejected) {
  EXPECT_THROW(minimpi::run(4, [](minimpi::Comm& comm) {
    mg_run(comm, MgConfig{8, 1, 4});
  }), std::invalid_argument);
}

TEST(Ep, ClassSizesOrdered) {
  EXPECT_LT(EpConfig::for_class(ProblemClass::S).log2_pairs,
            EpConfig::for_class(ProblemClass::A).log2_pairs);
  EXPECT_LT(CgConfig::for_class(ProblemClass::S).n,
            CgConfig::for_class(ProblemClass::A).n);
  EXPECT_LT(BtConfig::for_class(ProblemClass::S).nx,
            BtConfig::for_class(ProblemClass::A).nx);
}

}  // namespace
