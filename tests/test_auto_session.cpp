// The transparent auto-profiling library: linking tempest_auto starts
// the session before main (this very test binary is the subject — its
// constructor ran before gtest did). Run with TEMPEST_REPORT=0 via the
// ctest ENVIRONMENT property so the exit-time report stays quiet.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/api.hpp"
#include "core/auto_session.hpp"
#include "core/session.hpp"

namespace {

TEST(AutoSession, StartedBeforeMain) {
  EXPECT_TRUE(tempest::core::auto_session_active());
  EXPECT_TRUE(tempest::core::Session::instance().active());
}

TEST(AutoSession, RecordsRegionsIntoTheAmbientSession) {
  auto& session = tempest::core::Session::instance();
  const std::size_t before = session.registry().total_events();
  {
    tempest::ScopedRegion region("auto_region");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(session.registry().total_events(), before + 2);
}

TEST(AutoSession, TempdIsSampling) {
  // Give tempd at least one tick at the default 4 Hz.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_GE(tempest::core::Session::instance().tempd_stats().ticks, 1u);
}

}  // namespace
