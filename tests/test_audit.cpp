// Static instrumentation audit: classification, call-graph extraction,
// coverage gaps, filter round-trips, and the trace overhead join —
// driven over hand-built ElfImages plus the real instrumented demo.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "audit/filter.hpp"
#include "audit/report.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"

namespace {

using namespace tempest::audit;
using tempest::symtab::ElfImage;
using tempest::symtab::RelocInfo;
using tempest::symtab::SectionInfo;
using tempest::symtab::SymbolInfo;

SymbolInfo make_symbol(std::string name, std::uint64_t value, std::uint64_t size,
                       std::uint16_t shndx, unsigned char type) {
  SymbolInfo sym;
  sym.name = std::move(name);
  sym.value = value;
  sym.size = size;
  sym.shndx = shndx;
  sym.type = type;
  return sym;
}

/// A relocatable object with three functions in .text (file offset
/// 0x100): f [0x00,0x20) and g [0x20,0x40) call the cyg hooks via PLT32
/// relocations; h [0x40,0x60) is deliberately hook-stripped (compiled
/// without instrumentation). f calls g, g calls h. One extra hook
/// relocation lands past every symbol — a stripped hook site.
ElfImage build_rel_image() {
  ElfImage image;
  image.elf_type = tempest::symtab::kEtRel;

  image.sections.resize(2);
  SectionInfo& text = image.sections[1];
  text.name = ".text";
  text.type = tempest::symtab::kShtProgbits;
  text.flags = tempest::symtab::kShfExecinstr;
  text.offset = 0x100;
  text.size = 0x80;

  image.symbols.push_back(SymbolInfo{});  // null entry
  image.symbols.push_back(make_symbol("f", 0x00, 0x20, 1, tempest::symtab::kSttFunc));
  image.symbols.push_back(make_symbol("g", 0x20, 0x20, 1, tempest::symtab::kSttFunc));
  image.symbols.push_back(make_symbol("h", 0x40, 0x20, 1, tempest::symtab::kSttFunc));
  image.symbols.push_back(
      make_symbol("__cyg_profile_func_enter", 0, 0, 0, 0));  // extern
  image.symbols.push_back(
      make_symbol("__cyg_profile_func_exit", 0, 0, 0, 0));   // extern

  auto add_reloc = [&](std::uint64_t offset, std::uint32_t type,
                       std::uint32_t sym) {
    RelocInfo reloc;
    reloc.offset = offset;
    reloc.type = type;
    reloc.sym_index = sym;
    reloc.addend = -4;
    reloc.target_section = 1;
    image.relocations.push_back(reloc);
  };
  add_reloc(0x05, tempest::symtab::kRX8664Plt32, 4);  // f: hook enter
  add_reloc(0x18, tempest::symtab::kRX8664Plt32, 5);  // f: hook exit
  add_reloc(0x10, tempest::symtab::kRX8664Plt32, 2);  // f -> g
  add_reloc(0x25, tempest::symtab::kRX8664Plt32, 4);  // g: hook enter
  add_reloc(0x30, tempest::symtab::kRX8664Pc32, 3);   // g -> h
  add_reloc(0x70, tempest::symtab::kRX8664Plt32, 4);  // hook site, no symbol
  return image;
}

int index_of(const Inventory& inv, const std::string& name) {
  for (std::size_t i = 0; i < inv.functions.size(); ++i) {
    if (inv.functions[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

TEST(AuditClassify, RelocObjectClassification) {
  const Inventory inv = analyze_image(build_rel_image(), "fake.o");
  EXPECT_EQ(inv.elf_type, tempest::symtab::kEtRel);
  EXPECT_TRUE(inv.hooks_linked);
  ASSERT_EQ(inv.functions.size(), 3u);  // hooks excluded, f/g/h in addr order
  EXPECT_EQ(inv.functions[0].name, "f");
  EXPECT_EQ(inv.functions[0].addr, 0x100u);
  EXPECT_EQ(inv.functions[2].name, "h");

  EXPECT_TRUE(inv.functions[0].instrumented);
  EXPECT_TRUE(inv.functions[1].instrumented);
  EXPECT_FALSE(inv.functions[2].instrumented);  // the hook-stripped object
  EXPECT_EQ(inv.instrumented_count, 2u);
  EXPECT_EQ(inv.stripped_hook_sites, 1u);
}

TEST(AuditClassify, RelocObjectCallGraph) {
  const Inventory inv = analyze_image(build_rel_image(), "fake.o");
  ASSERT_EQ(inv.edges.size(), 2u);
  EXPECT_EQ(inv.edges[0].caller, 0u);  // f -> g
  EXPECT_EQ(inv.edges[0].callee, 1u);
  EXPECT_EQ(inv.edges[0].source, EdgeSource::kReloc);
  EXPECT_EQ(inv.edges[1].caller, 1u);  // g -> h
  EXPECT_EQ(inv.edges[1].callee, 2u);
  EXPECT_EQ(inv.functions[0].static_callees, 1u);
  EXPECT_EQ(inv.functions[1].static_callers, 1u);
  EXPECT_EQ(inv.functions[2].static_callers, 1u);
  EXPECT_EQ(inv.functions[2].static_callees, 0u);
}

TEST(AuditCoverage, HookStrippedFunctionIsFlaggedAsGap) {
  const Inventory inv = analyze_image(build_rel_image(), "fake.o");
  const CoverageReport coverage = build_coverage(inv);
  EXPECT_EQ(coverage.total, 3u);
  EXPECT_EQ(coverage.instrumented, 2u);
  EXPECT_EQ(coverage.uninstrumented, 1u);
  EXPECT_TRUE(coverage.hooks_linked);
  EXPECT_EQ(coverage.stripped_hook_sites, 1u);
  const int h = index_of(inv, "h");
  ASSERT_GE(h, 0);
  // h shows up both as an uninstrumented function and — because the
  // instrumented g calls it — as a silent subtree inside profiled code.
  ASSERT_EQ(coverage.uninstrumented_fns.size(), 1u);
  EXPECT_EQ(coverage.uninstrumented_fns[0], static_cast<std::uint32_t>(h));
  ASSERT_EQ(coverage.silent_subtree_fns.size(), 1u);
  EXPECT_EQ(coverage.silent_subtree_fns[0], static_cast<std::uint32_t>(h));
}

/// A linked PIE: .text at vaddr 0x1000 with two functions and a defined
/// hook; no relocations survive linking, so classification and edges
/// must come from the E8/E9 byte scan.
ElfImage build_dyn_image() {
  ElfImage image;
  image.elf_type = tempest::symtab::kEtDyn;

  image.sections.resize(2);
  SectionInfo& text = image.sections[1];
  text.name = ".text";
  text.type = tempest::symtab::kShtProgbits;
  text.flags = tempest::symtab::kShfExecinstr;
  text.addr = 0x1000;
  text.offset = 0x1000;
  text.size = 0x50;
  text.bytes.assign(0x50, 0x90);  // nop sled

  auto put_call = [&](std::size_t off, unsigned char op, std::uint64_t target) {
    text.bytes[off] = op;
    const auto rel = static_cast<std::int32_t>(
        static_cast<std::int64_t>(target) -
        static_cast<std::int64_t>(0x1000 + off + 5));
    std::memcpy(text.bytes.data() + off + 1, &rel, sizeof(rel));
  };
  put_call(0x00, 0xE8, 0x1040);  // a: call hook enter -> instrumented
  put_call(0x08, 0xE8, 0x1020);  // a: call b -> scan edge
  put_call(0x25, 0xE9, 0x1020);  // b: jmp to own entry -> loop, not an edge
  put_call(0x2D, 0xE8, 0x1111);  // decode noise: target is no entry

  image.symbols.push_back(SymbolInfo{});
  image.symbols.push_back(make_symbol("a", 0x1000, 0x20, 1, tempest::symtab::kSttFunc));
  image.symbols.push_back(make_symbol("b", 0x1020, 0x20, 1, tempest::symtab::kSttFunc));
  image.symbols.push_back(make_symbol("__cyg_profile_func_enter", 0x1040, 0x10, 1,
                                      tempest::symtab::kSttFunc));
  return image;
}

TEST(AuditClassify, LinkedBinaryScanClassification) {
  const Inventory inv = analyze_image(build_dyn_image(), "fake-pie");
  EXPECT_TRUE(inv.hooks_linked);
  ASSERT_EQ(inv.functions.size(), 2u);  // the hook itself is not workload
  EXPECT_EQ(index_of(inv, "__cyg_profile_func_enter"), -1);
  EXPECT_TRUE(inv.functions[0].instrumented);   // a
  EXPECT_FALSE(inv.functions[1].instrumented);  // b

  ASSERT_EQ(inv.edges.size(), 1u);  // self-jmp and noise call sieved out
  EXPECT_EQ(inv.edges[0].caller, 0u);
  EXPECT_EQ(inv.edges[0].callee, 1u);
  EXPECT_EQ(inv.edges[0].source, EdgeSource::kScan);

  const CoverageReport coverage = build_coverage(inv);
  ASSERT_EQ(coverage.silent_subtree_fns.size(), 1u);
  EXPECT_EQ(inv.functions[coverage.silent_subtree_fns[0]].name, "b");
}

TEST(AuditClassify, ZeroSizeSymbolsExtendToNextEntry) {
  ElfImage image = build_dyn_image();
  image.symbols[1].size = 0;  // a: assembler stub without st_size
  image.symbols[2].size = 0;  // b: last function
  const Inventory inv = analyze_image(image, "fake-pie");
  ASSERT_EQ(inv.functions.size(), 2u);
  EXPECT_EQ(inv.functions[0].size, 0x20u);  // extends to b's entry
  EXPECT_EQ(inv.functions[1].size, 1u);     // last: minimal extent
  // The call at a+0x08 still attributes to a.
  EXPECT_EQ(inv.find_index(0x1008), 0);
}

TEST(AuditClassify, FindIndexBoundaries) {
  const Inventory inv = analyze_image(build_dyn_image(), "fake-pie");
  EXPECT_EQ(inv.find_index(0x0fff), -1);
  EXPECT_EQ(inv.find_index(0x1000), 0);
  EXPECT_EQ(inv.find_index(0x101f), 0);
  EXPECT_EQ(inv.find_index(0x1020), 1);
  EXPECT_EQ(inv.find_index(0x1040), -1);  // the hook's body is no function
  EXPECT_EQ(inv.find(0x1000)->name, "a");
  EXPECT_EQ(inv.find(0x9999), nullptr);
}

TEST(AuditClassify, UninstrumentedBinaryIsValidNotError) {
  ElfImage image = build_dyn_image();
  image.symbols.pop_back();        // drop the hook symbol
  image.sections[1].bytes.assign(0x50, 0x90);  // and every call site
  const Inventory inv = analyze_image(image, "plain");
  EXPECT_FALSE(inv.hooks_linked);
  EXPECT_EQ(inv.instrumented_count, 0u);
  const CoverageReport coverage = build_coverage(inv);
  EXPECT_EQ(coverage.uninstrumented, 2u);
  EXPECT_TRUE(coverage.silent_subtree_fns.empty());  // nothing to reach from
}

TEST(AuditFilter, RoundTripPreservesRules) {
  FilterFile filter;
  filter.rules.push_back({"_ZN4slowEv", "120 calls, 97% of predicted probe events"});
  filter.rules.push_back({"plain_c_fn", ""});
  std::stringstream buffer;
  write_filter_file(buffer, filter);
  EXPECT_NE(buffer.str().find("# TEMPEST_FILTER v1"), std::string::npos);

  auto loaded = read_filter_file(buffer);
  ASSERT_TRUE(loaded.is_ok()) << loaded.message();
  ASSERT_EQ(loaded.value().rules.size(), 2u);
  EXPECT_EQ(loaded.value().rules[0], filter.rules[0]);
  EXPECT_EQ(loaded.value().rules[1], filter.rules[1]);
}

TEST(AuditFilter, RejectsUnknownDirectiveWithLineNumber) {
  std::stringstream in("# TEMPEST_FILTER v1\n\nsupress typo_fn\n");
  auto loaded = read_filter_file(in);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_NE(loaded.message().find("line 3"), std::string::npos);
  EXPECT_NE(loaded.message().find("supress"), std::string::npos);
}

TEST(AuditFilter, RejectsSuppressWithoutSymbol) {
  std::stringstream in("suppress   # no symbol here\n");
  auto loaded = read_filter_file(in);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_NE(loaded.message().find("line 1"), std::string::npos);
}

TEST(AuditFilter, SuggestSkipsMainAndCapsAtTopN) {
  Inventory inv;
  for (const char* name : {"main", "hot", "warm", "cool"}) {
    FunctionRecord fn;
    fn.addr = 0x1000 + inv.functions.size() * 0x10;
    fn.size = 0x10;
    fn.name = name;
    fn.instrumented = true;
    inv.functions.push_back(fn);
  }
  inv.functions[0].trace_calls = 100;  // main: hottest but never suggested
  inv.functions[1].trace_calls = 50;
  inv.functions[2].trace_calls = 10;
  inv.functions[3].trace_calls = 1;
  const OverheadReport overhead = [&] {
    OverheadReport r;
    r.from_trace = true;
    for (std::uint32_t i = 0; i < 4; ++i) {
      const std::uint64_t calls = inv.functions[i].trace_calls;
      r.ranked.push_back({i, calls, calls * 2, 0.0});
      r.total_probes += calls * 2;
    }
    std::sort(r.ranked.begin(), r.ranked.end(),
              [](const OverheadEntry& a, const OverheadEntry& b) {
                return a.predicted_probes > b.predicted_probes;
              });
    for (auto& e : r.ranked) {
      e.share = static_cast<double>(e.predicted_probes) /
                static_cast<double>(r.total_probes);
    }
    return r;
  }();

  const FilterFile filter = suggest_filter(inv, overhead, 2);
  ASSERT_EQ(filter.rules.size(), 2u);
  EXPECT_EQ(filter.rules[0].symbol, "hot");
  EXPECT_EQ(filter.rules[1].symbol, "warm");
  EXPECT_NE(filter.rules[0].reason.find("50 calls"), std::string::npos);

  // Determinism: ties in overhead share break on function address, so
  // repeated suggestion + serialisation is byte-identical. Give every
  // function the same call count to make the tiebreak do all the work.
  Inventory tied = inv;
  OverheadReport flat;
  flat.from_trace = true;
  for (std::uint32_t i = 0; i < 4; ++i) {
    tied.functions[i].trace_calls = 10;
    flat.ranked.push_back({i, 10, 20, 0.25});
    flat.total_probes += 20;
  }
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    std::ostringstream buffer;
    write_filter_file(buffer, suggest_filter(tied, flat, 3));
    *out = buffer.str();
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Address order among the tied non-main functions: hot < warm < cool.
  EXPECT_LT(first.find("suppress hot"), first.find("suppress warm"));
  EXPECT_LT(first.find("suppress warm"), first.find("suppress cool"));
}

class AuditOverheadJoin : public ::testing::Test {
 protected:
  std::string trace_path() const {
    return ::testing::TempDir() + "audit_join.trace";
  }
  void TearDown() override { std::remove(trace_path().c_str()); }
};

TEST_F(AuditOverheadJoin, TraceCallCountsDriveRanking) {
  using namespace tempest::trace;
  constexpr std::uint64_t kBias = 0x555500000000ULL;

  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.executable = "fake-pie";
  t.load_bias = kBias;
  t.nodes.push_back({0, "node0"});
  t.threads.push_back({0, 0, 0});
  std::uint64_t tsc = 0;
  auto push = [&](std::uint64_t addr, FnEventKind kind) {
    t.fn_events.push_back({++tsc, addr, 0, 0, kind});
  };
  for (int i = 0; i < 3; ++i) {  // a: 3 calls
    push(kBias + 0x1000, FnEventKind::kEnter);
    push(kBias + 0x1000, FnEventKind::kExit);
  }
  push(kBias + 0x1020, FnEventKind::kEnter);  // b: 1 call
  push(kBias + 0x1020, FnEventKind::kExit);
  push(kBias + 0x4000, FnEventKind::kEnter);  // covered by no function
  t.synthetic_symbols.push_back({kSyntheticAddrBase, "region"});
  push(kSyntheticAddrBase, FnEventKind::kEnter);  // exempt from the join
  {
    std::ofstream out(trace_path(), std::ios::binary);
    ASSERT_TRUE(write_trace(out, t));
  }

  Inventory inv = analyze_image(build_dyn_image(), "fake-pie");
  auto overhead = predict_overhead(&inv, trace_path());
  ASSERT_TRUE(overhead.is_ok()) << overhead.message();
  const OverheadReport& report = overhead.value();
  EXPECT_TRUE(report.from_trace);
  EXPECT_EQ(report.unattributed_events, 1u);
  EXPECT_EQ(inv.functions[0].trace_calls, 3u);
  EXPECT_EQ(inv.functions[1].trace_calls, 1u);
  ASSERT_EQ(report.ranked.size(), 2u);
  EXPECT_EQ(report.ranked[0].fn, 0u);
  EXPECT_EQ(report.ranked[0].predicted_probes, 6u);
  EXPECT_EQ(report.total_probes, 8u);
  EXPECT_DOUBLE_EQ(report.ranked[0].share, 0.75);
}

TEST_F(AuditOverheadJoin, UnreadableTraceIsError) {
  Inventory inv = analyze_image(build_dyn_image(), "fake-pie");
  auto overhead = predict_overhead(&inv, "/nonexistent/never.trace");
  ASSERT_FALSE(overhead.is_ok());
  EXPECT_NE(overhead.message().find("cannot open"), std::string::npos);
}

TEST(AuditReport, JsonAndHumanCarryStableStructure) {
  const Inventory inv = analyze_image(build_rel_image(), "fake.o");
  const CoverageReport coverage = build_coverage(inv);
  const OverheadReport overhead = predict_overhead_static(inv);

  const std::string json = to_json(inv, coverage, &overhead);
  for (const char* key :
       {"\"binary\"", "\"elf_type\"", "\"hooks_linked\"", "\"functions\"",
        "\"instrumented\"", "\"uninstrumented\"", "\"call_graph\"",
        "\"coverage\"", "\"overhead\"", "\"stripped_hook_sites\"",
        "\"silent_subtree_functions\"", "\"gaps\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("\"elf_type\":\"rel\""), std::string::npos);
  EXPECT_NE(json.find("\"hooks_linked\":true"), std::string::npos);

  std::ostringstream human;
  write_human(human, inv, coverage, &overhead);
  EXPECT_NE(human.str().find("instrumentation audit"), std::string::npos);
  EXPECT_NE(human.str().find("coverage gaps"), std::string::npos);
  EXPECT_NE(human.str().find("h"), std::string::npos);
}

#ifdef TEMPEST_DEMO_BIN
// Structural golden against the real instrumented example binary: the
// audit must see its instrumentation, not just synthetic fixtures.
TEST(AuditGolden, TransparentDemoIsInstrumented) {
  auto analyzed = analyze_binary(TEMPEST_DEMO_BIN);
  ASSERT_TRUE(analyzed.is_ok()) << analyzed.message();
  const Inventory& inv = analyzed.value();

  EXPECT_TRUE(inv.hooks_linked);
  EXPECT_GT(inv.instrumented_count, 0u);
  EXPECT_FALSE(inv.edges.empty());
  const int main_idx = index_of(inv, "main");
  ASSERT_GE(main_idx, 0);
  EXPECT_TRUE(inv.functions[static_cast<std::size_t>(main_idx)].instrumented);
  EXPECT_EQ(index_of(inv, "__cyg_profile_func_enter"), -1);
  EXPECT_EQ(index_of(inv, "__cyg_profile_func_exit"), -1);
  ASSERT_TRUE(std::is_sorted(
      inv.functions.begin(), inv.functions.end(),
      [](const FunctionRecord& a, const FunctionRecord& b) { return a.addr < b.addr; }));

  const CoverageReport coverage = build_coverage(inv);
  EXPECT_EQ(coverage.instrumented + coverage.uninstrumented, coverage.total);
  const OverheadReport overhead = predict_overhead_static(inv);
  EXPECT_FALSE(overhead.from_trace);
  const std::string json = to_json(inv, coverage, &overhead);
  EXPECT_NE(json.find("\"hooks_linked\":true"), std::string::npos);
}
#endif

}  // namespace
