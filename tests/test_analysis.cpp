// tempest-lint: invariant checker over hand-crafted good/bad traces,
// plus the CLI binary driven over real and corrupted trace files.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "analysis/lint.hpp"
#include "core/api.hpp"
#include "core/session.hpp"
#include "core/workbench.hpp"
#include "simnode/cluster.hpp"
#include "trace/reader.hpp"
#include "trace/writer.hpp"

#ifndef TEMPEST_LINT_BIN
#define TEMPEST_LINT_BIN "tools/tempest-lint"
#endif

namespace {

using tempest::analysis::Finding;
using tempest::analysis::lint_trace;
using tempest::analysis::LintOptions;
using tempest::analysis::LintReport;
using tempest::analysis::Severity;
using tempest::trace::FnEvent;
using tempest::trace::FnEventKind;
using tempest::trace::Trace;

bool has_finding(const LintReport& report, const std::string& check,
                 Severity severity) {
  for (const Finding& f : report.findings) {
    if (f.check == check && f.severity == severity) return true;
  }
  return false;
}

/// A minimal, invariant-satisfying trace: one node, one sensor, one
/// thread running main(0x1000) -> child(0x2000), sampled at 4 Hz.
Trace good_trace() {
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.nodes.push_back({0, "node0"});
  t.sensors.push_back({0, 0, "cpu_temp", 1.0});
  t.threads.push_back({0, 0, 0});
  const std::uint64_t q = 250'000'000;  // 4 Hz in ticks
  t.fn_events = {
      {1 * q, 0x1000, 0, 0, FnEventKind::kEnter},
      {2 * q, 0x2000, 0, 0, FnEventKind::kEnter},
      {6 * q, 0x2000, 0, 0, FnEventKind::kExit},
      {11 * q, 0x1000, 0, 0, FnEventKind::kExit},
  };
  for (std::uint64_t i = 1; i <= 12; ++i) {
    t.temp_samples.push_back({i * q, 45.0 + static_cast<double>(i), 0, 0});
  }
  return t;
}

TEST(Lint, GoodTraceIsClean) {
  LintOptions options;
  options.expected_hz = 4.0;
  const LintReport report = lint_trace(good_trace(), options);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.error_count, 0u);
  EXPECT_EQ(report.warning_count, 0u) << tempest::analysis::to_json(report);
  EXPECT_EQ(report.fn_events, 4u);
  EXPECT_EQ(report.temp_samples, 12u);
}

TEST(Lint, BackwardsThreadTimestampIsAnError) {
  Trace t = good_trace();
  t.fn_events[2].tsc = 1;  // exit stamped before its enter
  const LintReport report = lint_trace(t);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_finding(report, "monotonic-timestamps", Severity::kError));
}

TEST(Lint, BackwardsSampleTimestampIsAnError) {
  Trace t = good_trace();
  std::swap(t.temp_samples[3].tsc, t.temp_samples[7].tsc);
  const LintReport report = lint_trace(t);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_finding(report, "monotonic-timestamps", Severity::kError));
}

TEST(Lint, UnknownSensorIdIsAnError) {
  Trace t = good_trace();
  t.temp_samples[5].sensor_id = 42;
  const LintReport report = lint_trace(t);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_finding(report, "sensor-unresolved", Severity::kError));
}

TEST(Lint, UnknownNodeAndThreadAreErrors) {
  Trace t = good_trace();
  t.fn_events[1].node_id = 9;
  t.fn_events[1].thread_id = 77;
  const LintReport report = lint_trace(t);
  EXPECT_TRUE(has_finding(report, "node-unresolved", Severity::kError));
  EXPECT_TRUE(has_finding(report, "thread-unresolved", Severity::kError));
}

TEST(Lint, UnnamedSyntheticAddressIsAnError) {
  Trace t = good_trace();
  t.fn_events.push_back(
      {12 * 250'000'000ULL, tempest::trace::kSyntheticAddrBase + 5, 0, 0,
       FnEventKind::kEnter});
  t.fn_events.push_back(
      {13 * 250'000'000ULL, tempest::trace::kSyntheticAddrBase + 5, 0, 0,
       FnEventKind::kExit});
  EXPECT_TRUE(has_finding(lint_trace(t), "synthetic-unresolved", Severity::kError));

  // Naming it in the synthetic table resolves the finding.
  t.synthetic_symbols.push_back({tempest::trace::kSyntheticAddrBase + 5, "region"});
  EXPECT_TRUE(lint_trace(t).clean());
}

TEST(Lint, MissingTscRateIsAnError) {
  Trace t = good_trace();
  t.tsc_ticks_per_second = 0.0;
  EXPECT_TRUE(has_finding(lint_trace(t), "tsc-rate", Severity::kError));
}

TEST(Lint, DuplicateMetadataIsAnError) {
  Trace t = good_trace();
  t.nodes.push_back({0, "imposter"});
  t.sensors.push_back({0, 0, "cpu_temp_again", 1.0});
  t.threads.push_back({0, 0, 1});
  const LintReport report = lint_trace(t);
  EXPECT_TRUE(has_finding(report, "duplicate-node", Severity::kError));
  EXPECT_TRUE(has_finding(report, "duplicate-sensor", Severity::kError));
  EXPECT_TRUE(has_finding(report, "duplicate-thread", Severity::kError));
}

TEST(Lint, FramesOpenAcrossSessionEdgesAreWarningsNotErrors) {
  Trace t = good_trace();
  // An exit whose enter predates the session, and an enter never closed:
  // routine for frames alive at start/stop (e.g. main).
  t.fn_events.insert(t.fn_events.begin(),
                     {250'000'000ULL / 2, 0x3000, 0, 0, FnEventKind::kExit});
  t.fn_events.push_back(
      {12 * 250'000'000ULL, 0x4000, 0, 0, FnEventKind::kEnter});
  const LintReport report = lint_trace(t);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(has_finding(report, "balanced-nesting", Severity::kWarning));
}

TEST(Lint, InterleavedRegionsAreLegal) {
  // A begin, B begin, A end, B end — legal under the parser's
  // per-(thread,addr) depth model (per-block API allows it).
  Trace t = good_trace();
  t.fn_events = {
      {100, 0xA, 0, 0, FnEventKind::kEnter},
      {200, 0xB, 0, 0, FnEventKind::kEnter},
      {300, 0xA, 0, 0, FnEventKind::kExit},
      {400, 0xB, 0, 0, FnEventKind::kExit},
  };
  const LintReport report = lint_trace(t);
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(has_finding(report, "balanced-nesting", Severity::kWarning));
}

TEST(Lint, InclusiveTimeBeyondThreadSpanIsAnError) {
  // Overlapping outermost activations of the same addr — e.g. an event
  // buffer replayed with skewed timestamps — accumulate more inclusive
  // time than the thread's whole span can hold.
  Trace t = good_trace();
  t.fn_events = {
      {100, 0x5000, 0, 0, FnEventKind::kEnter},
      {200, 0x5000, 0, 0, FnEventKind::kExit},
      {150, 0x5000, 0, 0, FnEventKind::kEnter},
      {250, 0x5000, 0, 0, FnEventKind::kExit},
  };
  // Inclusive(0x5000) = 100 + 100 = 200 ticks against a span of 150.
  const LintReport report = lint_trace(t);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_finding(report, "time-conservation", Severity::kError));
}

TEST(Lint, BackToBackActivationsConserveTime) {
  // Sequential activations that exactly tile the span are legal.
  Trace t = good_trace();
  t.fn_events = {
      {0, 0x5000, 0, 0, FnEventKind::kEnter},
      {10'000, 0x5000, 0, 0, FnEventKind::kExit},
      {10'000, 0x5000, 0, 0, FnEventKind::kEnter},
      {30'000, 0x5000, 0, 0, FnEventKind::kExit},
  };
  const LintReport report = lint_trace(t);
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(has_finding(report, "time-conservation", Severity::kError));
}

TEST(Lint, IrregularCadenceWarns) {
  Trace t = good_trace();
  // Bunch most samples together, then a few far apart.
  t.temp_samples.clear();
  std::uint64_t tsc = 1'000;
  for (int i = 0; i < 30; ++i) {
    tsc += (i % 3 == 0) ? 1'000'000'000ULL : 1'000;  // wild gap mix
    t.temp_samples.push_back({tsc, 50.0, 0, 0});
  }
  const LintReport report = lint_trace(t);
  EXPECT_TRUE(has_finding(report, "sample-cadence", Severity::kWarning));
  EXPECT_TRUE(report.clean());  // cadence never hard-fails
}

TEST(Lint, WrongAbsoluteCadenceWarnsWhenRateGiven) {
  Trace t = good_trace();  // 4 Hz samples
  LintOptions options;
  options.expected_hz = 100.0;  // claim 100 Hz
  const LintReport report = lint_trace(t, options);
  EXPECT_TRUE(has_finding(report, "sample-cadence", Severity::kWarning));
}

TEST(Lint, EmptyTraceWarns) {
  Trace t;
  const LintReport report = lint_trace(t);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(has_finding(report, "empty-trace", Severity::kWarning));
}

TEST(Lint, FindingsAreCappedButCountsExact) {
  Trace t = good_trace();
  for (int i = 0; i < 100; ++i) {
    t.temp_samples.push_back({20 * 250'000'000ULL, 50.0, 0, 99});
  }
  LintOptions options;
  options.max_findings_per_check = 4;
  const LintReport report = lint_trace(t, options);
  EXPECT_EQ(report.error_count, 100u);
  std::size_t recorded = 0;
  for (const Finding& f : report.findings) {
    if (f.check == "sensor-unresolved") ++recorded;
  }
  EXPECT_EQ(recorded, 5u);  // cap + one suppression marker
}

TEST(Lint, JsonOutputCarriesVerdictAndFindings) {
  Trace t = good_trace();
  t.temp_samples[5].sensor_id = 42;
  const std::string json = tempest::analysis::to_json(lint_trace(t));
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(json.find("\"check\":\"sensor-unresolved\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);

  const std::string clean_json = tempest::analysis::to_json(
      lint_trace(good_trace(), LintOptions{4.0, 2.0, 8, 8}));
  EXPECT_NE(clean_json.find("\"clean\":true"), std::string::npos);
  EXPECT_NE(clean_json.find("\"findings\":[]"), std::string::npos);
}

// ---------------------------------------------------------------------
// CLI: the tempest-lint binary over real session traces, corrupted
// variants, and junk files.

class LintCliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_path_ = new std::string(::testing::TempDir() + "/lint_cli.trace");
    tempest::simnode::ClusterConfig cc;
    cc.nodes = 1;
    cc.kind = tempest::simnode::NodeKind::kX86Basic;
    cc.time_scale = 30.0;
    static tempest::simnode::Cluster cluster(cc);
    auto& session = tempest::core::Session::instance();
    session.clear_nodes();
    const auto node_id = session.register_sim_node(&cluster.node(0));
    tempest::core::SessionConfig config;
    config.sample_hz = 30.0;
    config.bind_affinity = false;
    config.output_path = *trace_path_;
    ASSERT_TRUE(session.start(config).is_ok());
    tempest::core::Workbench bench(&cluster.node(0), node_id);
    bench.attach();
    {
      tempest::ScopedRegion region("lint_hot");
      bench.burn(0.3);
    }
    bench.detach();
    ASSERT_TRUE(session.stop().is_ok());
    session.clear_nodes();
  }

  static int run_lint(const std::string& args, const std::string& path) {
    const std::string cmd = std::string(TEMPEST_LINT_BIN) + " " + args + " \"" +
                            path + "\" > /dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }

  static std::string* trace_path_;
};

std::string* LintCliTest::trace_path_ = nullptr;

TEST_F(LintCliTest, SessionTraceIsClean) {
  EXPECT_EQ(run_lint("--hz 30", *trace_path_), 0);
  EXPECT_EQ(run_lint("--hz 30 --json", *trace_path_), 0);
}

TEST_F(LintCliTest, CorruptedTraceFailsLint) {
  auto trace = tempest::trace::read_trace_file(*trace_path_);
  ASSERT_TRUE(trace.is_ok());
  auto corrupted = std::move(trace).value();
  ASSERT_GE(corrupted.temp_samples.size(), 2u);
  // Point a sample at a sensor that does not exist and drag another
  // backwards in time.
  corrupted.temp_samples[0].sensor_id = 999;
  corrupted.temp_samples.back().tsc = 1;
  const std::string bad_path = ::testing::TempDir() + "/lint_cli_bad.trace";
  ASSERT_TRUE(tempest::trace::write_trace_file(bad_path, corrupted));
  EXPECT_EQ(run_lint("--hz 30", bad_path), 1);
}

TEST_F(LintCliTest, TruncatedFileIsAReadError) {
  std::ifstream in(*trace_path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 64u);
  const std::string trunc_path = ::testing::TempDir() + "/lint_cli_trunc.trace";
  std::ofstream out(trunc_path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  out.close();
  EXPECT_EQ(run_lint("", trunc_path), 2);
}

TEST_F(LintCliTest, TrailingBytesAfterTheTraceFailLint) {
  // A concatenated or partially-overwritten file parses as the leading
  // trace but must not lint clean.
  std::ifstream in(*trace_path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string doubled_path =
      ::testing::TempDir() + "/lint_cli_doubled.trace";
  std::ofstream out(doubled_path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_EQ(run_lint("--hz 30", doubled_path), 1);

  auto report = tempest::analysis::lint_trace_file(doubled_path);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(has_finding(report.value(), "file-trailing-bytes",
                          tempest::analysis::Severity::kError));
}

TEST_F(LintCliTest, UsageErrors) {
  EXPECT_EQ(run_lint("--no-such-flag", *trace_path_), 2);
  const int rc = std::system((std::string(TEMPEST_LINT_BIN) +
                              " > /dev/null 2>&1").c_str());
  EXPECT_EQ(WIFEXITED(rc) ? WEXITSTATUS(rc) : -1, 2);
}

TEST_F(LintCliTest, VersionFlagPrintsTraceFormatVersion) {
  const std::string out_path = ::testing::TempDir() + "/lint_version.out";
  const int rc = std::system((std::string(TEMPEST_LINT_BIN) + " --version > " +
                              out_path + " 2>&1").c_str());
  ASSERT_EQ(WIFEXITED(rc) ? WEXITSTATUS(rc) : -1, 0);
  std::ifstream in(out_path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("tempest-lint"), std::string::npos) << line;
  EXPECT_NE(line.find("trace format v"), std::string::npos) << line;
}

// -- RUNSTATS cross-checks ---------------------------------------------

/// good_trace() plus a RUNSTATS trailer that exactly matches it.
Trace good_trace_with_run_stats() {
  Trace t = good_trace();
  t.run_stats.events_recorded = t.fn_events.size();
  t.run_stats.tempd_samples = t.temp_samples.size();
  t.run_stats.tempd_ticks = t.temp_samples.size();  // one sensor
  t.run_stats.threads_registered = 1;
  t.run_stats.wall_seconds = 3.0;
  t.run_stats.present = true;
  return t;
}

TEST(Lint, ConsistentRunStatsStayClean) {
  const LintReport report = lint_trace(good_trace_with_run_stats());
  EXPECT_TRUE(report.clean()) << tempest::analysis::to_json(report);
}

TEST(Lint, RunStatsEventCountMismatchIsAnError) {
  Trace t = good_trace_with_run_stats();
  t.run_stats.events_recorded += 5;  // recorder claims more than the trace holds
  const LintReport report = lint_trace(t);
  EXPECT_TRUE(has_finding(report, "runstats-consistency", Severity::kError));
}

TEST(Lint, RunStatsSampleCountMismatchIsAnError) {
  Trace t = good_trace_with_run_stats();
  t.run_stats.tempd_samples -= 1;
  EXPECT_TRUE(has_finding(lint_trace(t), "runstats-consistency",
                          Severity::kError));
}

TEST(Lint, RunStatsMoreSamplesThanReadsIsAnError) {
  Trace t = good_trace_with_run_stats();
  t.run_stats.tempd_ticks = 2;  // 12 samples from 2 ticks x 1 sensor
  EXPECT_TRUE(has_finding(lint_trace(t), "runstats-consistency",
                          Severity::kError));
}

TEST(Lint, DeclaredDropsWarnButStayConsistent) {
  Trace t = good_trace_with_run_stats();
  t.run_stats.events_dropped = 100;  // loud, declared data loss
  const LintReport report = lint_trace(t);
  EXPECT_TRUE(has_finding(report, "events-dropped", Severity::kWarning));
  EXPECT_FALSE(has_finding(report, "runstats-consistency", Severity::kError));
}

TEST(Lint, AbsentRunStatsSkipAllCrossChecks) {
  // Pre-RUNSTATS traces must not suddenly fail lint.
  const LintReport report = lint_trace(good_trace());
  EXPECT_FALSE(has_finding(report, "runstats-consistency", Severity::kError));
  EXPECT_FALSE(has_finding(report, "events-dropped", Severity::kWarning));
}

/// Coverage inventory matching good_trace()'s two functions, plus one
/// hookless function and one instrumented-but-never-called function.
tempest::analysis::CoverageInventory demo_inventory() {
  tempest::analysis::CoverageInventory inv;
  inv.functions.push_back({0x1000, 0x100, "main", true});
  inv.functions.push_back({0x2000, 0x100, "child", true});
  inv.functions.push_back({0x3000, 0x100, "hookless", false});
  inv.functions.push_back({0x4000, 0x100, "unused_fn", true});
  return inv;
}

TEST(LintCoverage, CoveredEventsAreCleanButIdleProbesWarn) {
  const auto inv = demo_inventory();
  const LintReport report = lint_trace(good_trace(), {}, &inv);
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(
      has_finding(report, "instrumentation-coverage", Severity::kError));
  // unused_fn carries probes but recorded nothing: warn, don't fail.
  EXPECT_TRUE(
      has_finding(report, "instrumentation-unused", Severity::kWarning));
  EXPECT_EQ(report.warning_count, 1u);  // hookless stays silent: no probes
}

TEST(LintCoverage, EventOutsideInventoryIsAnError) {
  Trace t = good_trace();
  t.fn_events[1].addr = 0x9000;  // no function there
  t.fn_events[2].addr = 0x9000;
  const auto inv = demo_inventory();
  const LintReport report = lint_trace(t, {}, &inv);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(
      has_finding(report, "instrumentation-coverage", Severity::kError));
}

TEST(LintCoverage, EventFromHooklessFunctionIsAnError) {
  Trace t = good_trace();
  t.fn_events[1].addr = 0x3010;  // inside "hookless"
  t.fn_events[2].addr = 0x3010;
  const auto inv = demo_inventory();
  const LintReport report = lint_trace(t, {}, &inv);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(
      has_finding(report, "instrumentation-coverage", Severity::kError));
}

TEST(LintCoverage, RuntimeAddressesUnbiasThroughHeader) {
  Trace t = good_trace();
  t.load_bias = 0x7f0000000000;  // PIE: runtime = link + bias
  for (FnEvent& e : t.fn_events) e.addr += t.load_bias;
  const auto inv = demo_inventory();  // link-time addresses
  const LintReport report = lint_trace(t, {}, &inv);
  EXPECT_TRUE(report.clean()) << tempest::analysis::to_json(report);
  EXPECT_FALSE(
      has_finding(report, "instrumentation-coverage", Severity::kError));
}

TEST(LintCoverage, SyntheticRegionAddressesAreExempt) {
  Trace t = good_trace();
  t.synthetic_symbols.push_back(
      {tempest::trace::kSyntheticAddrBase, "region"});
  t.fn_events.push_back({12 * 250'000'000ULL, tempest::trace::kSyntheticAddrBase,
                         0, 0, FnEventKind::kEnter});
  t.fn_events.push_back({13 * 250'000'000ULL, tempest::trace::kSyntheticAddrBase,
                         0, 0, FnEventKind::kExit});
  const auto inv = demo_inventory();
  const LintReport report = lint_trace(t, {}, &inv);
  EXPECT_FALSE(
      has_finding(report, "instrumentation-coverage", Severity::kError));
}

TEST(LintCoverage, FileStreamingPathAppliesCoverageChecks) {
  Trace t = good_trace();
  t.fn_events[1].addr = 0x9000;
  t.fn_events[2].addr = 0x9000;
  const std::string path = ::testing::TempDir() + "/lint_coverage.trace";
  ASSERT_TRUE(tempest::trace::write_trace_file(path, t));
  const auto inv = demo_inventory();
  auto report = tempest::analysis::lint_trace_file(path, {}, &inv);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(has_finding(report.value(), "instrumentation-coverage",
                          Severity::kError));
  std::remove(path.c_str());
}

TEST(Lint, FileStreamingPathAppliesRunStatsChecks) {
  // The same cross-checks must fire on the bounded-batch file path the
  // CLI uses, where run stats come from the reader's header.
  Trace t = good_trace_with_run_stats();
  t.run_stats.events_recorded += 3;
  const std::string path = ::testing::TempDir() + "/lint_runstats.trace";
  ASSERT_TRUE(tempest::trace::write_trace_file(path, t));
  auto report = tempest::analysis::lint_trace_file(path);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(has_finding(report.value(), "runstats-consistency",
                          Severity::kError));
  std::remove(path.c_str());
}

}  // namespace
