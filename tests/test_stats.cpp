#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace {

using tempest::SampleSet;
using tempest::StatsSummary;
using tempest::StreamingStats;

TEST(SampleSet, EmptySummaryIsZeroed) {
  SampleSet s;
  const StatsSummary sum = s.summarize();
  EXPECT_EQ(sum.count, 0u);
  EXPECT_EQ(sum.min, 0.0);
  EXPECT_EQ(sum.max, 0.0);
}

TEST(SampleSet, SingleValue) {
  SampleSet s;
  s.add(42.5);
  const StatsSummary sum = s.summarize();
  EXPECT_EQ(sum.count, 1u);
  EXPECT_EQ(sum.min, 42.5);
  EXPECT_EQ(sum.avg, 42.5);
  EXPECT_EQ(sum.max, 42.5);
  EXPECT_EQ(sum.sdv, 0.0);
  EXPECT_EQ(sum.var, 0.0);
  EXPECT_EQ(sum.med, 42.5);
  EXPECT_EQ(sum.mod, 42.5);
}

TEST(SampleSet, KnownPopulation) {
  // Population: 2, 4, 4, 4, 5, 5, 7, 9 — classic sdv=2 example.
  SampleSet s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  const StatsSummary sum = s.summarize();
  EXPECT_EQ(sum.count, 8u);
  EXPECT_DOUBLE_EQ(sum.avg, 5.0);
  EXPECT_DOUBLE_EQ(sum.var, 4.0);
  EXPECT_DOUBLE_EQ(sum.sdv, 2.0);
  EXPECT_DOUBLE_EQ(sum.med, 4.5);  // midpoint of 4 and 5
  EXPECT_DOUBLE_EQ(sum.mod, 4.0);
  EXPECT_DOUBLE_EQ(sum.min, 2.0);
  EXPECT_DOUBLE_EQ(sum.max, 9.0);
}

TEST(SampleSet, MedianOddCount) {
  SampleSet s;
  for (double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.summarize().med, 2.0);
}

TEST(SampleSet, ModeTieBreaksTowardSmallest) {
  SampleSet s;
  for (double v : {7.0, 7.0, 3.0, 3.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.summarize().mod, 3.0);
}

TEST(SampleSet, ConstantSeriesHasZeroSpread) {
  // The quantised flat sensors of the paper's Tables 2/3: Min=Max,
  // Sdv=Var=0, Med=Mod=value.
  SampleSet s;
  for (int i = 0; i < 25; ++i) s.add(91.0);
  const StatsSummary sum = s.summarize();
  EXPECT_EQ(sum.min, 91.0);
  EXPECT_EQ(sum.max, 91.0);
  EXPECT_EQ(sum.sdv, 0.0);
  EXPECT_EQ(sum.var, 0.0);
  EXPECT_EQ(sum.med, 91.0);
  EXPECT_EQ(sum.mod, 91.0);
}

TEST(StreamingStats, MatchesSampleSetOnRandomData) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(80.0, 130.0);
  SampleSet set;
  StreamingStats stream;
  for (int i = 0; i < 1000; ++i) {
    const double v = dist(rng);
    set.add(v);
    stream.add(v);
  }
  const StatsSummary sum = set.summarize();
  EXPECT_NEAR(stream.mean(), sum.avg, 1e-9);
  EXPECT_NEAR(stream.variance(), sum.var, 1e-6);
  EXPECT_NEAR(stream.stddev(), sum.sdv, 1e-8);
  EXPECT_DOUBLE_EQ(stream.min(), sum.min);
  EXPECT_DOUBLE_EQ(stream.max(), sum.max);
  EXPECT_EQ(stream.count(), sum.count);
}

TEST(StreamingStats, FewerThanTwoSamplesHasZeroVariance) {
  StreamingStats s;
  EXPECT_EQ(s.variance(), 0.0);
  s.add(5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

// Property sweep: for any population, sdv^2 == var, min <= med <= max,
// min <= avg <= max, and mode is an element of the population.
class StatsProperty : public ::testing::TestWithParam<int> {};

TEST_P(StatsProperty, Invariants) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::normal_distribution<double> dist(100.0, 10.0);
  SampleSet s;
  const int n = 1 + static_cast<int>(rng() % 500);
  for (int i = 0; i < n; ++i) {
    // Quantise like a sensor so mode ties are realistic.
    s.add(std::round(dist(rng)));
  }
  const StatsSummary sum = s.summarize();
  EXPECT_NEAR(sum.sdv * sum.sdv, sum.var, 1e-9 * std::max(1.0, sum.var));
  EXPECT_LE(sum.min, sum.med);
  EXPECT_LE(sum.med, sum.max);
  EXPECT_LE(sum.min, sum.avg);
  EXPECT_LE(sum.avg, sum.max);
  bool mode_present = false;
  for (double v : s.values()) mode_present |= (v == sum.mod);
  EXPECT_TRUE(mode_present);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty, ::testing::Range(0, 20));

}  // namespace
