// End-to-end integration: instrumented workloads -> session/tempd ->
// trace -> parser -> profile, on simulated cluster nodes.
#include <gtest/gtest.h>

#include "analysis/lint.hpp"
#include "core/api.hpp"
#include "core/workbench.hpp"
#include "micro/micro.hpp"
#include "minimpi/runtime.hpp"
#include "npb/ft.hpp"
#include "parser/parse.hpp"
#include "report/series.hpp"
#include "report/stdout_format.hpp"
#include "trace/align.hpp"
#include "trace/reader.hpp"
#include "simnode/cluster.hpp"

namespace {

using tempest::core::Session;
using tempest::core::SessionConfig;
using tempest::core::Workbench;
using tempest::simnode::Cluster;
using tempest::simnode::ClusterConfig;

SessionConfig fast_config(double hz = 40.0) {
  SessionConfig config;
  config.sample_hz = hz;  // dense sampling keeps short test runs significant
  config.bind_affinity = false;
  config.unit = tempest::TempUnit::kFahrenheit;
  return config;
}

// Every trace a session emits must satisfy the tempest-lint invariants
// (monotonic timestamps, resolvable ids, conserved inclusive time).
// Warnings (frames open across session edges, cadence jitter) are fine.
void expect_lint_clean(const tempest::trace::Trace& trace, double hz) {
  tempest::analysis::LintOptions options;
  options.expected_hz = hz;
  const auto report = tempest::analysis::lint_trace(trace, options);
  EXPECT_TRUE(report.clean()) << tempest::analysis::to_json(report);
}

ClusterConfig one_node_cluster() {
  ClusterConfig cc;
  cc.nodes = 1;
  cc.kind = tempest::simnode::NodeKind::kX86Basic;
  cc.time_scale = 30.0;  // compress thermal time so a ~1 s run shows dynamics
  return cc;
}

TEST(Integration, MicroDProducesHotFoo1AndInsignificantFoo2) {
  Cluster cluster(one_node_cluster());
  auto& session = Session::instance();
  session.clear_nodes();
  const std::uint16_t node_id = session.register_sim_node(&cluster.node(0));

  ASSERT_TRUE(session.start(fast_config()));
  Workbench bench(&cluster.node(0), node_id);
  bench.attach();

  micro::MicroParams params{&bench, 0.02};
  micro::run_micro_d(params);

  bench.detach();
  ASSERT_TRUE(session.stop());
  expect_lint_clean(session.last_trace(), fast_config().sample_hz);

  auto parsed = tempest::parser::parse_trace(session.take_trace());
  ASSERT_TRUE(parsed.is_ok()) << parsed.message();
  const auto& profile = parsed.value();

  ASSERT_EQ(profile.nodes.size(), 1u);
  const auto* foo1 = profile.find(node_id, "micro::(anonymous namespace)::foo1(micro::MicroParams const&)");
  const auto* foo2 = profile.find(node_id, "micro::(anonymous namespace)::foo2(micro::MicroParams const&)");
  // Fallback: symbol naming may differ with compiler versions; find by substring.
  if (foo1 == nullptr || foo2 == nullptr) {
    for (const auto& fn : profile.nodes[0].functions) {
      if (fn.name.find("foo1") != std::string::npos) foo1 = &fn;
      if (fn.name.find("foo2") != std::string::npos) foo2 = &fn;
    }
  }
  ASSERT_NE(foo1, nullptr);
  ASSERT_NE(foo2, nullptr);

  // foo1 dominates execution (burn); foo2 is the short timer.
  EXPECT_GT(foo1->total_time_s, 0.5);
  EXPECT_GT(foo1->total_time_s, foo2->total_time_s);
  // foo1 called once; foo2 called twice (from foo1 and from the driver).
  EXPECT_EQ(foo1->calls, 1u);
  EXPECT_EQ(foo2->calls, 2u);

  // foo1 heats the die: its CPU-sensor max exceeds its min.
  ASSERT_FALSE(foo1->sensors.empty());
  const auto& cpu = foo1->sensors.front();
  EXPECT_GT(cpu.stats.max, cpu.stats.min);
  EXPECT_GE(cpu.sample_count, 2u);
}

TEST(Integration, TraceRoundTripsThroughFileAndSeries) {
  Cluster cluster(one_node_cluster());
  auto& session = Session::instance();
  session.clear_nodes();
  const std::uint16_t node_id = session.register_sim_node(&cluster.node(0));

  SessionConfig config = fast_config();
  config.output_path = ::testing::TempDir() + "/integration.trace";
  ASSERT_TRUE(session.start(config));
  Workbench bench(&cluster.node(0), node_id);
  bench.attach();
  {
    tempest::ScopedRegion region("hot_phase");
    bench.burn(0.3);
  }
  {
    tempest::ScopedRegion region("cool_phase");
    bench.idle(0.2);
  }
  bench.detach();
  ASSERT_TRUE(session.stop());
  expect_lint_clean(session.last_trace(), config.sample_hz);

  auto profile = tempest::parser::parse_trace_file(config.output_path);
  ASSERT_TRUE(profile.is_ok()) << profile.message();
  EXPECT_NE(profile.value().find(node_id, "hot_phase"), nullptr);
  EXPECT_NE(profile.value().find(node_id, "cool_phase"), nullptr);

  // Series extraction has 3 sensors (x86 basic layout) with points.
  const auto trace = tempest::trace::read_trace_file(config.output_path);
  ASSERT_TRUE(trace.is_ok());
  auto aligned = std::move(trace).value();
  ASSERT_TRUE(tempest::trace::align_clocks(&aligned));
  const auto series = tempest::report::extract_series(
      aligned, tempest::TempUnit::kFahrenheit, {"hot_phase"});
  EXPECT_EQ(series.sensors.size(), 3u);
  ASSERT_FALSE(series.sensors.empty());
  EXPECT_GT(series.sensors[0].points.size(), 5u);
  EXPECT_FALSE(series.spans.empty());
}

TEST(Integration, ClusterFtRunProfilesAllNodes) {
  ClusterConfig cc;
  cc.nodes = 4;
  cc.kind = tempest::simnode::NodeKind::kOpteron;
  cc.time_scale = 30.0;
  cc.max_tsc_offset_s = 0.01;
  cc.max_tsc_drift_ppm = 50.0;
  Cluster cluster(cc);

  auto& session = Session::instance();
  session.clear_nodes();
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    session.register_sim_node(&cluster.node(n));
  }
  ASSERT_TRUE(session.start(fast_config()));

  npb::FtConfig ft = npb::FtConfig::for_class(npb::ProblemClass::S);
  npb::FtResult result;
  minimpi::RunOptions options;
  options.cluster = &cluster;
  minimpi::run(4, [&](minimpi::Comm& comm) { result = npb::ft_run(comm, ft); }, options);

  ASSERT_TRUE(session.stop());
  EXPECT_EQ(result.checksums.size(), static_cast<std::size_t>(ft.niter));
  expect_lint_clean(session.last_trace(), fast_config().sample_hz);

  auto parsed = tempest::parser::parse_trace(session.take_trace());
  ASSERT_TRUE(parsed.is_ok()) << parsed.message();
  const auto& profile = parsed.value();
  ASSERT_EQ(profile.nodes.size(), 4u);
  for (const auto& node : profile.nodes) {
    EXPECT_NE(profile.find(node.node_id, "ft_run"), nullptr)
        << "node " << node.node_id;
    EXPECT_NE(profile.find(node.node_id, "transpose"), nullptr);
    EXPECT_NE(profile.find(node.node_id, "evolve"), nullptr);
  }
}

}  // namespace
