// Telemetry layer: lock-free metrics registry, bounded logger,
// heartbeat emitter, overhead watchdog. The multithreaded cases run
// under TSan via the `concurrency` label — the registry's whole claim
// is that recording from any thread is safe and exact.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/heartbeat.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/watchdog.hpp"
#include "trace/trace.hpp"

namespace {

using tempest::telemetry::Counter;
using tempest::telemetry::Gauge;
using tempest::telemetry::Histogram;
using tempest::telemetry::HistogramSnapshot;
using tempest::telemetry::Metrics;
using tempest::telemetry::MetricsSnapshot;

TEST(Metrics, CountersAccumulateAndReset) {
  auto& m = tempest::telemetry::metrics();
  m.reset();
  tempest::telemetry::count(Counter::kEventsRecorded);
  tempest::telemetry::count(Counter::kEventsRecorded, 41);
  tempest::telemetry::count(Counter::kTempdTicks, 7);
  MetricsSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.counter(Counter::kEventsRecorded), 42u);
  EXPECT_EQ(snap.counter(Counter::kTempdTicks), 7u);
  EXPECT_EQ(snap.counter(Counter::kEventsDropped), 0u);
  m.reset();
  snap = m.snapshot();
  EXPECT_EQ(snap.counter(Counter::kEventsRecorded), 0u);
  EXPECT_EQ(snap.counter(Counter::kTempdTicks), 0u);
}

TEST(Metrics, GaugesHoldLastValue) {
  auto& m = tempest::telemetry::metrics();
  m.reset();
  tempest::telemetry::gauge_set(Gauge::kActiveThreads, 5);
  tempest::telemetry::gauge_set(Gauge::kActiveThreads, 3);
  tempest::telemetry::gauge_set(Gauge::kSensorTemp0MilliC, -12345);
  const MetricsSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.gauge(Gauge::kActiveThreads), 3);
  EXPECT_EQ(snap.gauge(Gauge::kSensorTemp0MilliC), -12345);
}

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  auto& m = tempest::telemetry::metrics();
  m.reset();
  const double* bounds = tempest::telemetry::histogram_bounds(Histogram::kProbeCostNs);
  ASSERT_EQ(bounds[0], 4.0);
  // value <= bounds[i] lands in bucket i: exactly-on-bound stays low.
  tempest::telemetry::observe(Histogram::kProbeCostNs, 4.0);
  tempest::telemetry::observe(Histogram::kProbeCostNs, 4.5);
  tempest::telemetry::observe(Histogram::kProbeCostNs, 0.0);
  // Above the last preregistered bound -> the overflow bucket.
  tempest::telemetry::observe(Histogram::kProbeCostNs, bounds[14] + 1.0);
  const MetricsSnapshot snap = m.snapshot();
  const HistogramSnapshot& hs = snap.histogram(Histogram::kProbeCostNs);
  EXPECT_EQ(hs.buckets[0], 2u);  // 4.0 and 0.0
  EXPECT_EQ(hs.buckets[1], 1u);  // 4.5
  EXPECT_EQ(hs.buckets[tempest::telemetry::kHistogramBuckets - 1], 1u);
  EXPECT_EQ(hs.count, 4u);
  EXPECT_EQ(hs.max, static_cast<std::uint64_t>(bounds[14] + 1.0));
  // sum is integer-rounded per observation: 4 + 5 (4.5 rounds up) + 0 + overflow.
  EXPECT_EQ(hs.sum, 4u + 5u + 0u + static_cast<std::uint64_t>(bounds[14] + 1.0));
}

TEST(Metrics, NegativeAndNanObservationsClampToZero) {
  auto& m = tempest::telemetry::metrics();
  m.reset();
  tempest::telemetry::observe(Histogram::kCadenceJitterUs, -5.0);
  tempest::telemetry::observe(Histogram::kCadenceJitterUs,
                              std::numeric_limits<double>::quiet_NaN());
  const MetricsSnapshot snap = m.snapshot();
  const HistogramSnapshot& hs = snap.histogram(Histogram::kCadenceJitterUs);
  EXPECT_EQ(hs.count, 2u);
  EXPECT_EQ(hs.sum, 0u);
  EXPECT_EQ(hs.buckets[0], 2u);
}

TEST(Metrics, KillSwitchMakesRecordingANoOp) {
  auto& m = tempest::telemetry::metrics();
  m.reset();
  m.set_enabled(false);
  tempest::telemetry::count(Counter::kEventsRecorded, 100);
  tempest::telemetry::gauge_set(Gauge::kActiveThreads, 9);
  tempest::telemetry::observe(Histogram::kProbeCostNs, 50.0);
  m.set_enabled(true);  // restore for the rest of the suite
  const MetricsSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.counter(Counter::kEventsRecorded), 0u);
  EXPECT_EQ(snap.gauge(Gauge::kActiveThreads), 0);
  EXPECT_EQ(snap.histogram(Histogram::kProbeCostNs).count, 0u);
}

TEST(Metrics, SnapshotJsonHasEveryKey) {
  auto& m = tempest::telemetry::metrics();
  m.reset();
  tempest::telemetry::count(Counter::kHeartbeats, 3);
  std::ostringstream out;
  tempest::telemetry::write_snapshot_json(out, m.snapshot(), 1.25);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"t\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"heartbeats\":3"), std::string::npos);
  for (std::size_t c = 0; c < tempest::telemetry::kCounterCount; ++c) {
    const std::string key =
        std::string("\"") +
        tempest::telemetry::counter_name(static_cast<Counter>(c)) + "\":";
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"probe_cost_ns_mean\":"), std::string::npos);
  EXPECT_NE(json.find("\"stage_wall_us_max\":"), std::string::npos);
}

TEST(Metrics, PeakRssReadsPositiveOnLinux) {
#if defined(__linux__)
  EXPECT_GT(tempest::telemetry::read_peak_rss_kb(), 0);
#endif
}

// -- concurrency (run under TSan via the label) ------------------------

TEST(Metrics, HammerFromManyThreadsIsExact) {
  auto& m = tempest::telemetry::metrics();
  m.reset();
  // More threads than shards so sharing a shard is exercised too.
  const unsigned kThreads = 2 * Metrics::kShards > 96 ? 96 : 2 * Metrics::kShards;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        tempest::telemetry::count(Counter::kEventsRecorded);
        tempest::telemetry::observe(Histogram::kProbeCostNs, 16.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  const MetricsSnapshot snap = m.snapshot();
  const std::uint64_t expected = kThreads * kPerThread;
  EXPECT_EQ(snap.counter(Counter::kEventsRecorded), expected);
  const HistogramSnapshot& hs = snap.histogram(Histogram::kProbeCostNs);
  EXPECT_EQ(hs.count, expected);
  EXPECT_EQ(hs.sum, 16u * expected);
  EXPECT_EQ(hs.max, 16u);
}

TEST(Metrics, SnapshotDuringRecordingIsMonotonicAndConverges) {
  auto& m = tempest::telemetry::metrics();
  m.reset();
  std::atomic<bool> stop{false};
  constexpr unsigned kWriters = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kWriters; ++t) {
    writers.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        tempest::telemetry::count(Counter::kPipelineBatches);
      }
    });
  }
  std::uint64_t last = 0;
  std::uint64_t polls = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const std::uint64_t now =
        m.snapshot().counter(Counter::kPipelineBatches);
    EXPECT_GE(now, last);  // a monotonic counter never goes backwards
    last = now;
    ++polls;
    if (now == kWriters * kPerThread) stop.store(true);
    if (polls > 10'000'000) break;  // watchdog against a wedged test
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(m.snapshot().counter(Counter::kPipelineBatches),
            kWriters * kPerThread);
}

// -- watchdog ----------------------------------------------------------

tempest::trace::RunStats healthy_stats() {
  tempest::trace::RunStats rs;
  rs.present = true;
  rs.wall_seconds = 10.0;
  rs.tempd_cpu_seconds = 0.05;  // 0.5%
  rs.events_recorded = 1'000'000;
  rs.probe_cost_ns_mean = 40.0;  // 40e6 ns over 10 s = 0.4%
  return rs;
}

TEST(Watchdog, UnderBudgetDoesNotTrip) {
  const auto report = tempest::telemetry::evaluate_overhead(healthy_stats());
  EXPECT_FALSE(report.tripped());
  EXPECT_NEAR(report.tempd_cpu_share, 0.005, 1e-9);
  EXPECT_NEAR(report.probe_overhead_share, 0.004, 1e-9);
  EXPECT_NE(report.describe().find("ok"), std::string::npos);
}

TEST(Watchdog, TripsOnTempdCpuOverBudget) {
  auto rs = healthy_stats();
  rs.tempd_cpu_seconds = 0.5;  // 5% of wall
  const auto report = tempest::telemetry::evaluate_overhead(rs);
  EXPECT_TRUE(report.tripped());
  EXPECT_TRUE(report.tempd_over);
  EXPECT_FALSE(report.probe_over);
  EXPECT_NE(report.describe().find("OVER BUDGET"), std::string::npos);
}

TEST(Watchdog, TripsOnProbeCostOverBudget) {
  auto rs = healthy_stats();
  rs.events_recorded = 100'000'000;
  rs.probe_cost_ns_mean = 2000.0;  // 0.2 s of probes over 10 s = 2%
  const auto report = tempest::telemetry::evaluate_overhead(rs);
  EXPECT_TRUE(report.tripped());
  EXPECT_TRUE(report.probe_over);
}

TEST(Watchdog, CustomBudgetIsRespected) {
  // 0.5% tempd share: fine at the default 1%, over at 0.1%.
  const auto strict =
      tempest::telemetry::evaluate_overhead(healthy_stats(), 0.001);
  EXPECT_TRUE(strict.tripped());
  const auto lax = tempest::telemetry::evaluate_overhead(healthy_stats(), 0.10);
  EXPECT_FALSE(lax.tripped());
}

TEST(Watchdog, AbsentOrDegenerateStatsNeverTrip) {
  tempest::trace::RunStats absent;  // present == false
  EXPECT_FALSE(tempest::telemetry::evaluate_overhead(absent).tripped());
  auto zero_wall = healthy_stats();
  zero_wall.wall_seconds = 0.0;
  EXPECT_FALSE(tempest::telemetry::evaluate_overhead(zero_wall).tripped());
}

// -- logger ------------------------------------------------------------

TEST(Log, RingIsBoundedAndOldestFirst) {
  auto& logger = tempest::telemetry::Logger::instance();
  std::ostringstream sink;
  logger.set_sink(&sink);
  logger.set_threshold(tempest::telemetry::LogLevel::kError);  // quiet
  const std::uint64_t before = logger.total_logged();
  const std::size_t kBurst = tempest::telemetry::Logger::kRingCapacity + 50;
  for (std::size_t i = 0; i < kBurst; ++i) {
    tempest::telemetry::log_info("test", "msg " + std::to_string(i));
  }
  const auto ring = logger.ring();
  EXPECT_EQ(ring.size(), tempest::telemetry::Logger::kRingCapacity);
  EXPECT_EQ(logger.total_logged(), before + kBurst);
  // The 50 oldest were evicted; the ring starts at msg 50.
  EXPECT_EQ(ring.front().message, "msg 50");
  EXPECT_EQ(ring.back().message, "msg " + std::to_string(kBurst - 1));
  EXPECT_LE(ring.front().t_seconds, ring.back().t_seconds);
  logger.set_sink(nullptr);
  logger.set_threshold(tempest::telemetry::LogLevel::kWarn);
}

TEST(Log, ThresholdGatesEmissionButNotTheRing) {
  auto& logger = tempest::telemetry::Logger::instance();
  std::ostringstream sink;
  logger.set_sink(&sink);
  logger.set_threshold(tempest::telemetry::LogLevel::kWarn);
  tempest::telemetry::log_info("test", "below-threshold-info");
  tempest::telemetry::log_warn("test", "at-threshold-warn");
  const std::string emitted = sink.str();
  EXPECT_EQ(emitted.find("below-threshold-info"), std::string::npos);
  EXPECT_NE(emitted.find("at-threshold-warn"), std::string::npos);
  EXPECT_NE(emitted.find("level=warn"), std::string::npos);
  EXPECT_NE(emitted.find("comp=test"), std::string::npos);
  // The ring keeps both: post-mortems see more than stderr did.
  const auto ring = logger.ring();
  ASSERT_GE(ring.size(), 2u);
  EXPECT_EQ(ring.back().message, "at-threshold-warn");
  EXPECT_EQ(ring[ring.size() - 2].message, "below-threshold-info");
  logger.set_sink(nullptr);
}

// -- heartbeat ---------------------------------------------------------

TEST(Heartbeat, AppendsParseableJsonlSnapshots) {
  tempest::telemetry::metrics().reset();
  const std::string path = ::testing::TempDir() + "/hb_test.jsonl";
  tempest::telemetry::HeartbeatEmitter hb;
  ASSERT_TRUE(hb.start(path, 0.02).is_ok());
  EXPECT_TRUE(hb.running());
  tempest::telemetry::count(Counter::kEventsRecorded, 1234);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  hb.stop();
  EXPECT_FALSE(hb.running());

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  bool saw_count = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"t\":"), std::string::npos);
    if (line.find("\"events_recorded\":1234") != std::string::npos) {
      saw_count = true;
    }
    ++lines;
  }
  // One line at start, at least one period, one at stop.
  EXPECT_GE(lines, 3u);
  EXPECT_TRUE(saw_count);  // the final snapshot carries the counter
  std::remove(path.c_str());
}

TEST(Heartbeat, StartTruncatesAndDoubleStopIsSafe) {
  const std::string path = ::testing::TempDir() + "/hb_trunc.jsonl";
  {
    std::ofstream out(path);
    out << "stale line from a previous run\n";
  }
  tempest::telemetry::HeartbeatEmitter hb;
  ASSERT_TRUE(hb.start(path, 10.0).is_ok());
  EXPECT_FALSE(hb.start(path, 10.0).is_ok());  // already running
  hb.stop();
  hb.stop();  // idempotent
  std::ifstream in(path);
  std::string first;
  ASSERT_TRUE(std::getline(in, first));
  EXPECT_EQ(first.find("stale"), std::string::npos);
  EXPECT_EQ(first.front(), '{');
  std::remove(path.c_str());
}

TEST(Heartbeat, PathForTraceAppendsConventionalSuffix) {
  EXPECT_EQ(tempest::telemetry::HeartbeatEmitter::path_for_trace("/tmp/a.trace"),
            "/tmp/a.trace.telemetry.jsonl");
}

TEST(Heartbeat, LinesCarrySchemaVersionAndMonotonicSeq) {
  tempest::telemetry::metrics().reset();
  const std::string path = ::testing::TempDir() + "/hb_seq.jsonl";
  tempest::telemetry::HeartbeatEmitter hb;
  ASSERT_TRUE(hb.start(path, 0.01).is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  hb.stop();
  EXPECT_GE(hb.seq(), 3u);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::uint64_t last_seq = 0;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"schema_version\":1"), std::string::npos);
    const std::size_t at = line.find("\"seq\":");
    ASSERT_NE(at, std::string::npos);
    const auto seq = static_cast<std::uint64_t>(
        std::strtoull(line.c_str() + at + 6, nullptr, 10));
    EXPECT_EQ(seq, last_seq + 1);  // strictly monotonic, no gaps
    last_seq = seq;
  }
  EXPECT_EQ(last_seq, hb.seq());
  std::remove(path.c_str());
}

TEST(Heartbeat, LineSinkSeesEveryLineAndWorksWithoutAFile) {
  tempest::telemetry::metrics().reset();
  tempest::telemetry::HeartbeatEmitter hb;
  // Neither path nor sink is a configuration error.
  EXPECT_FALSE(hb.start("", 0.01).is_ok());

  std::mutex mu;
  std::vector<std::string> lines;
  hb.set_line_sink([&](const std::string& line) {
    const std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  ASSERT_TRUE(hb.start("", 0.01).is_ok());  // sink-only, no file
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  hb.stop();

  const std::lock_guard<std::mutex> lock(mu);
  ASSERT_GE(lines.size(), 2u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');  // no trailing newline through the sink
    EXPECT_NE(line.find("\"seq\":"), std::string::npos);
  }
}

#if defined(__SANITIZE_THREAD__)
#define TEMPEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TEMPEST_TSAN 1
#endif
#endif

TEST(Heartbeat, KilledMidRunNeverLeavesATornFinalLine) {
  // The emitter writes each line with a single write(): a process that
  // dies between heartbeats can lose whole lines but never leave a
  // partially buffered record for readers to choke on. Spawn a child
  // that heartbeats as fast as it can, SIGKILL it mid-run, and require
  // every line in the file to be complete.
#ifdef TEMPEST_TSAN
  GTEST_SKIP() << "fork with running threads is unsupported under TSan";
#else
  const std::string path = ::testing::TempDir() + "/hb_kill.jsonl";
  std::remove(path.c_str());
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    tempest::telemetry::HeartbeatEmitter hb;
    if (!hb.start(path, 0.0005).is_ok()) ::_exit(3);
    for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  // Let it write a bunch of lines, then kill it with no warning.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << "torn line " << lines << ": " << line;
    EXPECT_EQ(line.back(), '}') << "torn line " << lines << ": " << line;
    ++lines;
  }
  // The file must not end mid-record either (no unterminated tail).
  in.clear();
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  ASSERT_GT(size, 0);
  in.seekg(-1, std::ios::end);
  EXPECT_EQ(in.get(), '\n');
  EXPECT_GE(lines, 2u);
  std::remove(path.c_str());
#endif
}

}  // namespace
