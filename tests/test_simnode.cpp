// Activity metering, simulated nodes, cluster heterogeneity, layouts.
#include <gtest/gtest.h>

#include <set>

#include "common/tsc.hpp"
#include "simnode/activity.hpp"
#include "simnode/cluster.hpp"
#include "simnode/layouts.hpp"
#include "simnode/node.hpp"

namespace {

using namespace tempest::simnode;

TEST(ActivityMeter, FullyBusyWindow) {
  ActivityMeter m;
  m.set_busy(1000);
  EXPECT_NEAR(m.sample(2000), 1.0, 1e-12);
  EXPECT_TRUE(m.busy());
}

TEST(ActivityMeter, FullyIdleWindow) {
  ActivityMeter m;
  m.set_idle(1000);
  EXPECT_NEAR(m.sample(2000), 0.0, 1e-12);
  EXPECT_FALSE(m.busy());
}

TEST(ActivityMeter, HalfBusyWindow) {
  ActivityMeter m;
  m.set_busy(0);
  m.sample(0);  // open window at t=0
  m.set_idle(500);
  EXPECT_NEAR(m.sample(1000), 0.5, 1e-9);
}

TEST(ActivityMeter, MultipleTransitionsAccumulate) {
  ActivityMeter m;
  m.set_idle(0);
  m.sample(0);
  m.set_busy(100);
  m.set_idle(200);
  m.set_busy(300);
  m.set_idle(600);
  // Busy: [100,200) + [300,600) = 400 of 1000.
  EXPECT_NEAR(m.sample(1000), 0.4, 1e-9);
  // Window resets: nothing busy since.
  EXPECT_NEAR(m.sample(2000), 0.0, 1e-9);
}

TEST(ActivityMeter, SampleWhileBusySplitsAcrossWindows) {
  ActivityMeter m;
  m.set_busy(0);
  m.sample(0);
  EXPECT_NEAR(m.sample(1000), 1.0, 1e-9);  // busy the whole window
  m.set_idle(1500);
  EXPECT_NEAR(m.sample(2000), 0.5, 1e-9);  // busy [1000,1500) of [1000,2000)
}

TEST(ActivityMeter, IdleScopeRestoresBusy) {
  ActivityMeter m;
  m.set_busy(tempest::rdtsc());
  {
    IdleScope idle(m, tempest::rdtsc());
    EXPECT_FALSE(m.busy());
  }
  EXPECT_TRUE(m.busy());
}

TEST(Layouts, SensorCountsMatchThePaper) {
  EXPECT_EQ(x86_basic_layout().size(), 3u);    // "as few as 3 sensors on x86"
  EXPECT_EQ(opteron_layout(4).size(), 6u);     // Tables 2/3 print six
  EXPECT_EQ(g5_layout().size(), 7u);           // "up to 7 sensors on PowerPC G5"
  EXPECT_THROW(opteron_layout(1), std::invalid_argument);
}

TEST(SimNode, AdvanceIntegratesMeasuredUtilisation) {
  NodeConfig config = make_node_config(NodeKind::kX86Basic);
  config.package.time_scale = 50.0;
  SimNode node(config);
  const double idle = node.package().die_temp(0);

  const std::uint64_t t0 = tempest::rdtsc();
  const std::uint64_t one_s = tempest::seconds_to_tsc(1.0);
  node.advance_to(t0);
  node.core_meter(0).set_busy(t0);
  node.advance_to(t0 + one_s);
  EXPECT_GT(node.package().die_temp(0), idle + 3.0);

  // Going idle cools back toward the idle point.
  node.core_meter(0).set_idle(t0 + one_s);
  node.advance_to(t0 + 10 * one_s);
  EXPECT_LT(node.package().die_temp(0), idle + 1.0);
}

TEST(SimNode, AdvanceToleratesNonMonotonicCalls) {
  SimNode node(make_node_config(NodeKind::kX86Basic));
  node.advance_to(1000);
  node.advance_to(500);  // ignored, no crash
  node.advance_to(2000);
  SUCCEED();
}

TEST(SimNode, SensorBackendReflectsLayout) {
  SimNode node(make_node_config(NodeKind::kPowerPcG5));
  const auto sensors = node.sensor_backend().enumerate();
  ASSERT_EQ(sensors.size(), 7u);
  EXPECT_EQ(sensors[0].name, "CPU A DIODE");
  for (const auto& s : sensors) {
    EXPECT_TRUE(node.sensor_backend().read_celsius(s.id).is_ok());
  }
}

TEST(Cluster, HeterogeneityProducesNodeSpread) {
  ClusterConfig cc;
  cc.nodes = 4;
  cc.kind = NodeKind::kOpteron;
  cc.heterogeneity = 1.0;
  Cluster cluster(cc);
  ASSERT_EQ(cluster.size(), 4u);

  // Idle steady-state die temperatures differ across nodes (the paper's
  // "thermals vary between systems under the same load").
  std::set<int> distinct;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    distinct.insert(static_cast<int>(cluster.node(i).package().die_temp(0) * 10.0));
  }
  EXPECT_GE(distinct.size(), 2u);
  EXPECT_EQ(cluster.node(0).hostname(), "node1");
  EXPECT_EQ(cluster.node(3).hostname(), "node4");
}

TEST(Cluster, ZeroHeterogeneityMakesIdenticalNodes) {
  ClusterConfig cc;
  cc.nodes = 3;
  cc.heterogeneity = 0.0;
  Cluster cluster(cc);
  const double t0 = cluster.node(0).package().die_temp(0);
  for (std::size_t i = 1; i < cluster.size(); ++i) {
    EXPECT_DOUBLE_EQ(cluster.node(i).package().die_temp(0), t0);
  }
}

TEST(Cluster, DeterministicPerSeed) {
  ClusterConfig cc;
  cc.nodes = 2;
  cc.seed = 99;
  Cluster a(cc), b(cc);
  cc.seed = 100;
  Cluster c(cc);
  EXPECT_DOUBLE_EQ(a.node(0).package().die_temp(0), b.node(0).package().die_temp(0));
  EXPECT_NE(a.node(0).package().die_temp(0), c.node(0).package().die_temp(0));
}

TEST(Cluster, TscSkewConfigured) {
  ClusterConfig cc;
  cc.nodes = 4;
  cc.max_tsc_offset_s = 0.05;
  cc.max_tsc_drift_ppm = 100.0;
  Cluster cluster(cc);
  bool any_offset = false, any_drift = false;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    any_offset |= cluster.node(i).clock().offset_ticks() != 0;
    any_drift |= cluster.node(i).clock().drift_ppm() != 0.0;
  }
  EXPECT_TRUE(any_offset);
  EXPECT_TRUE(any_drift);
}

}  // namespace
