// Units, env parsing, TSC, affinity.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "common/affinity.hpp"
#include "common/env.hpp"
#include "common/tsc.hpp"
#include "common/units.hpp"

namespace {

TEST(Units, CelsiusFahrenheitRoundTrip) {
  EXPECT_DOUBLE_EQ(tempest::celsius_to_fahrenheit(0.0), 32.0);
  EXPECT_DOUBLE_EQ(tempest::celsius_to_fahrenheit(100.0), 212.0);
  EXPECT_DOUBLE_EQ(tempest::fahrenheit_to_celsius(98.6), 37.0);
  for (double c = -40.0; c <= 120.0; c += 7.3) {
    EXPECT_NEAR(tempest::fahrenheit_to_celsius(tempest::celsius_to_fahrenheit(c)), c, 1e-12);
  }
}

TEST(Units, MinusFortyIsTheFixedPoint) {
  EXPECT_DOUBLE_EQ(tempest::celsius_to_fahrenheit(-40.0), -40.0);
}

TEST(Units, QuantizeSteps) {
  EXPECT_DOUBLE_EQ(tempest::quantize(38.7, 1.0), 39.0);
  EXPECT_DOUBLE_EQ(tempest::quantize(38.4, 1.0), 38.0);
  EXPECT_DOUBLE_EQ(tempest::quantize(38.7, 0.5), 38.5);
  EXPECT_DOUBLE_EQ(tempest::quantize(38.7, 0.0), 38.7);  // disabled
  EXPECT_DOUBLE_EQ(tempest::quantize(-3.6, 1.0), -4.0);
}

TEST(Units, CelsiusQuantisationProducesPaperFahrenheitSteps) {
  // 39C, 40C, 41C -> 102.2F, 104.0F, 105.8F: the 1.8F ladder in Table 3.
  EXPECT_NEAR(tempest::celsius_to_fahrenheit(39.0), 102.2, 1e-9);
  EXPECT_NEAR(tempest::celsius_to_fahrenheit(40.0), 104.0, 1e-9);
  EXPECT_NEAR(tempest::celsius_to_fahrenheit(41.0), 105.8, 1e-9);
}

TEST(Units, ParseUnit) {
  tempest::TempUnit u = tempest::TempUnit::kCelsius;
  EXPECT_TRUE(tempest::parse_temp_unit("F", &u));
  EXPECT_EQ(u, tempest::TempUnit::kFahrenheit);
  EXPECT_TRUE(tempest::parse_temp_unit("celsius", &u));
  EXPECT_EQ(u, tempest::TempUnit::kCelsius);
  EXPECT_FALSE(tempest::parse_temp_unit("kelvin", &u));
}

TEST(Env, StringDoubleLongBool) {
  ::setenv("TEMPEST_TEST_STR", "hello", 1);
  ::setenv("TEMPEST_TEST_DBL", "2.5", 1);
  ::setenv("TEMPEST_TEST_LNG", "42", 1);
  ::setenv("TEMPEST_TEST_BOOL", "yes", 1);
  EXPECT_EQ(tempest::env_string("TEMPEST_TEST_STR", "x"), "hello");
  EXPECT_EQ(tempest::env_double("TEMPEST_TEST_DBL", 0.0), 2.5);
  EXPECT_EQ(tempest::env_long("TEMPEST_TEST_LNG", 0), 42);
  EXPECT_TRUE(tempest::env_bool("TEMPEST_TEST_BOOL", false));
  EXPECT_EQ(tempest::env_string("TEMPEST_TEST_MISSING", "fallback"), "fallback");
}

TEST(Env, MalformedValuesFallBack) {
  ::setenv("TEMPEST_TEST_BAD", "12abc", 1);
  EXPECT_EQ(tempest::env_double("TEMPEST_TEST_BAD", 4.0), 4.0);
  EXPECT_EQ(tempest::env_long("TEMPEST_TEST_BAD", 7), 7);
  ::setenv("TEMPEST_TEST_BAD2", "maybe", 1);
  EXPECT_TRUE(tempest::env_bool("TEMPEST_TEST_BAD2", true));
  EXPECT_FALSE(tempest::env_bool("TEMPEST_TEST_BAD2", false));
}

TEST(Env, CheckedLongTellsAbsentFromMalformed) {
  using tempest::EnvParse;
  long v = -1;
  ::unsetenv("TEMPEST_TEST_CHK");
  EXPECT_EQ(tempest::env_long_checked("TEMPEST_TEST_CHK", &v), EnvParse::kAbsent);

  ::setenv("TEMPEST_TEST_CHK", "131072", 1);
  EXPECT_EQ(tempest::env_long_checked("TEMPEST_TEST_CHK", &v), EnvParse::kOk);
  EXPECT_EQ(v, 131072);

  for (const char* bad : {"banana", "12abc", "", "  "}) {
    ::setenv("TEMPEST_TEST_CHK", bad, 1);
    v = -1;
    EXPECT_EQ(tempest::env_long_checked("TEMPEST_TEST_CHK", &v),
              EnvParse::kMalformed)
        << "value '" << bad << "'";
    EXPECT_EQ(v, -1) << "malformed parse must not touch *out";
  }
  ::unsetenv("TEMPEST_TEST_CHK");
}

TEST(Env, CheckedDoubleTellsAbsentFromMalformed) {
  using tempest::EnvParse;
  double v = -1.0;
  ::unsetenv("TEMPEST_TEST_CHKD");
  EXPECT_EQ(tempest::env_double_checked("TEMPEST_TEST_CHKD", &v),
            EnvParse::kAbsent);

  ::setenv("TEMPEST_TEST_CHKD", "2.75", 1);
  EXPECT_EQ(tempest::env_double_checked("TEMPEST_TEST_CHKD", &v), EnvParse::kOk);
  EXPECT_DOUBLE_EQ(v, 2.75);

  ::setenv("TEMPEST_TEST_CHKD", "not-a-number", 1);
  v = -1.0;
  EXPECT_EQ(tempest::env_double_checked("TEMPEST_TEST_CHKD", &v),
            EnvParse::kMalformed);
  EXPECT_DOUBLE_EQ(v, -1.0);
  ::unsetenv("TEMPEST_TEST_CHKD");
}

TEST(Tsc, MonotonicAndCalibrated) {
  const std::uint64_t a = tempest::rdtsc();
  const std::uint64_t b = tempest::rdtsc();
  EXPECT_GE(b, a);
  const double rate = tempest::tsc_ticks_per_second();
  EXPECT_GT(rate, 1e6);  // any real clock is way above 1 MHz

  // 50 ms sleep should measure near 50 ms (generous bounds for CI).
  const std::uint64_t t0 = tempest::rdtsc();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const double measured = tempest::tsc_to_seconds(tempest::rdtsc() - t0);
  EXPECT_GT(measured, 0.040);
  EXPECT_LT(measured, 0.50);
}

TEST(Tsc, SecondsTicksRoundTrip) {
  const double s = 1.25;
  EXPECT_NEAR(tempest::tsc_to_seconds(tempest::seconds_to_tsc(s)), s, 1e-6);
}

TEST(VirtualTsc, OffsetAndDrift) {
  tempest::VirtualTsc identity;
  EXPECT_EQ(identity.translate(1000), 1000u);

  tempest::VirtualTsc offset(500, 0.0);
  EXPECT_EQ(offset.translate(1000), 1500u);

  tempest::VirtualTsc drift(0, 100.0);  // 100 ppm fast
  const std::uint64_t big = 10'000'000'000ULL;
  const std::uint64_t translated = drift.translate(big);
  EXPECT_NEAR(static_cast<double>(translated - big), 1e-4 * static_cast<double>(big),
              static_cast<double>(big) * 1e-9 + 2.0);
}

TEST(Affinity, BindToCpuZeroSucceedsOrReportsError) {
  const tempest::Status status = tempest::bind_current_thread_to_cpu(0);
  // Containers may restrict the mask; either outcome must be explicit.
  if (!status) {
    EXPECT_FALSE(status.message().empty());
  }
}

TEST(Affinity, NegativeCpuRejected) {
  EXPECT_FALSE(tempest::bind_current_thread_to_cpu(-1));
  EXPECT_GE(tempest::online_cpu_count(), 1);
}

}  // namespace
