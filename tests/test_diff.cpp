// tempest-diff: Welch significance math against closed-form references,
// profile alignment (pooled and per-node, address fallback, FLTR
// tolerance), seeded-regression ranking, trend JSONL, and the Sdv/Var
// propagation chain the diff depends on (exact-integer timeline sums →
// streaming/sharded/batch equality → multi-rank append fold → RUNSTATS
// byte-for-byte round trip).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "diff/diff.hpp"
#include "diff/trend.hpp"
#include "parser/parse.hpp"
#include "pipeline/analysis.hpp"
#include "pipeline/rank_fanin.hpp"
#include "pipeline/sinks.hpp"
#include "pipeline/stage.hpp"
#include "trace/reader.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"

namespace {

using namespace tempest;
using namespace tempest::trace;
namespace diff = tempest::diff;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// One function's worth of sequential activations with the given tick
/// durations.
struct FnSpec {
  std::string name;
  std::vector<std::uint64_t> durations;
};

/// Synthetic single-node trace: each function's activations run back to
/// back with a 100-tick gap, functions laid out one after another, so
/// every duration is exactly what the timeline will reconstruct.
Trace make_run(const std::vector<FnSpec>& fns, std::uint16_t node_id = 0) {
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.executable = "diff_app";  // nonexistent: synthetic names resolve
  t.nodes = {{node_id, "host" + std::to_string(node_id)}};
  t.sensors = {{node_id, 0, "cpu", 0.0}};
  t.threads = {{node_id, node_id, 0}};

  std::uint64_t cursor = 1000;
  for (std::size_t i = 0; i < fns.size(); ++i) {
    const std::uint64_t addr = kSyntheticAddrBase + 1 + i;
    t.synthetic_symbols.push_back({addr, fns[i].name});
    for (const std::uint64_t d : fns[i].durations) {
      t.fn_events.push_back({cursor, addr, node_id, node_id, FnEventKind::kEnter});
      t.fn_events.push_back(
          {cursor + d, addr, node_id, node_id, FnEventKind::kExit});
      cursor += d + 100;
    }
  }
  t.temp_samples.push_back({1500, 42.0, node_id, 0});
  t.sort_by_time();

  t.run_stats.present = true;
  t.run_stats.events_recorded = t.fn_events.size();
  t.run_stats.calls_observed = t.fn_events.size();
  t.run_stats.tempd_samples = t.temp_samples.size();
  t.run_stats.threads_registered = 1;
  t.run_stats.wall_seconds = 0.5;
  return t;
}

diff::RunSummary summarize(Trace t, const std::string& label) {
  diff::RunSummary s;
  s.source = label;
  s.run_stats = t.run_stats;
  s.filter = t.filter;
  auto parsed = parser::parse_trace(std::move(t));
  EXPECT_TRUE(parsed.is_ok()) << parsed.message();
  s.profile = std::move(parsed).value();
  return s;
}

/// Hand-built profile entry for alignment tests that need exact control
/// over the pooled statistics.
parser::FunctionProfile fn_profile(const std::string& name, std::uint64_t calls,
                                   double total_s, std::uint64_t count,
                                   double mean_s, double var_s2,
                                   std::uint64_t addr = 0x1000) {
  parser::FunctionProfile fn;
  fn.addr = addr;
  fn.name = name;
  fn.calls = calls;
  fn.total_time_s = total_s;
  fn.time.count = count;
  fn.time.mean_s = mean_s;
  fn.time.var_s2 = var_s2;
  fn.time.sdv_s = std::sqrt(var_s2);
  return fn;
}

diff::RunSummary summary_of(std::vector<parser::NodeProfile> nodes,
                            const std::string& label) {
  diff::RunSummary s;
  s.source = label;
  s.profile.nodes = std::move(nodes);
  return s;
}

const parser::FunctionProfile* find_fn(const parser::RunProfile& profile,
                                       std::uint16_t node,
                                       const std::string& name) {
  return profile.find(node, name);
}

// -- significance math -------------------------------------------------

TEST(Welch, RegIncompleteBetaIdentities) {
  // I_x(1,1) = x.
  for (const double x : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(diff::reg_incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
  // I_x(2,2) = 3x^2 - 2x^3.
  EXPECT_NEAR(diff::reg_incomplete_beta(2.0, 2.0, 0.25), 0.15625, 1e-12);
  // Reflection: I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(diff::reg_incomplete_beta(2.5, 1.5, 0.3),
              1.0 - diff::reg_incomplete_beta(1.5, 2.5, 0.7), 1e-12);
  // Arcsine law: I_x(1/2,1/2) = (2/pi) asin(sqrt(x)).
  EXPECT_NEAR(diff::reg_incomplete_beta(0.5, 0.5, 0.3),
              2.0 / M_PI * std::asin(std::sqrt(0.3)), 1e-10);
  // Bounds clamp.
  EXPECT_EQ(diff::reg_incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(diff::reg_incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(Welch, ClosedFormTwoByTwo) {
  // Two samples per side with population variance 1 (samples ±1 around
  // the mean): sample variance 2, t = d/sqrt(2), Welch dof = 2, and the
  // dof-2 Student CDF has the closed form p = 1 - t/sqrt(t^2+2).
  const diff::WelchResult r = diff::welch_compare(0.0, 1.0, 2.0, 2.0, 1.0, 2.0);
  ASSERT_TRUE(r.computable);
  EXPECT_NEAR(r.t, std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(r.dof, 2.0, 1e-12);
  const double expected_p = 1.0 - std::sqrt(2.0) / 2.0;
  EXPECT_NEAR(r.confidence, 1.0 - expected_p, 1e-9);
}

TEST(Welch, NotComputableBelowTwoSamples) {
  EXPECT_FALSE(diff::welch_compare(1.0, 0.5, 1.0, 2.0, 0.5, 100.0).computable);
  EXPECT_FALSE(diff::welch_compare(1.0, 0.5, 100.0, 2.0, 0.5, 1.0).computable);
  EXPECT_FALSE(diff::welch_compare(1.0, 0.5, 0.0, 2.0, 0.5, 0.0).computable);
  EXPECT_EQ(diff::welch_compare(1.0, 0.5, 1.0, 2.0, 0.5, 100.0).confidence, 0.0);
}

TEST(Welch, ZeroSpreadIsDeterministic) {
  // Identical constants: no evidence of change.
  const diff::WelchResult same = diff::welch_compare(3.0, 0.0, 5.0, 3.0, 0.0, 5.0);
  EXPECT_TRUE(same.computable);
  EXPECT_EQ(same.confidence, 0.0);
  // Differing constants: the change is exact, confidence 1.
  const diff::WelchResult moved = diff::welch_compare(3.0, 0.0, 5.0, 4.0, 0.0, 5.0);
  EXPECT_TRUE(moved.computable);
  EXPECT_EQ(moved.confidence, 1.0);
  EXPECT_TRUE(std::isinf(moved.t));
  EXPECT_GT(moved.t, 0.0);
}

TEST(Welch, SymmetricUnderSideSwap) {
  const diff::WelchResult ab =
      diff::welch_compare(10.0, 4.0, 30.0, 12.0, 9.0, 40.0);
  const diff::WelchResult ba =
      diff::welch_compare(12.0, 9.0, 40.0, 10.0, 4.0, 30.0);
  ASSERT_TRUE(ab.computable);
  EXPECT_NEAR(ab.t, -ba.t, 1e-12);
  EXPECT_NEAR(ab.dof, ba.dof, 1e-12);
  EXPECT_NEAR(ab.confidence, ba.confidence, 1e-12);
  EXPECT_GT(ab.confidence, 0.9);  // clearly separated means
}

// -- Sdv/Var propagation ----------------------------------------------

TEST(TimeStats, ExactFromTimeline) {
  // Durations 1000 and 3000 ticks at 1e9 ticks/s: mean 2 us, population
  // variance (1 us)^2. Plus a recursive pattern: calls counts both
  // enters, activations only the closed outermost interval.
  Trace t = make_run({{"steady", {1000, 3000}}});
  const std::uint64_t rec = kSyntheticAddrBase + 900;
  t.synthetic_symbols.push_back({rec, "recursive"});
  const std::uint64_t base = t.end_tsc() + 1000;
  t.fn_events.push_back({base, rec, 0, 0, FnEventKind::kEnter});
  t.fn_events.push_back({base + 100, rec, 0, 0, FnEventKind::kEnter});
  t.fn_events.push_back({base + 200, rec, 0, 0, FnEventKind::kExit});
  t.fn_events.push_back({base + 500, rec, 0, 0, FnEventKind::kExit});
  t.sort_by_time();

  auto parsed = parser::parse_trace(t);
  ASSERT_TRUE(parsed.is_ok()) << parsed.message();
  const parser::RunProfile& profile = parsed.value();

  const parser::FunctionProfile* steady = find_fn(profile, 0, "steady");
  ASSERT_NE(steady, nullptr);
  EXPECT_EQ(steady->calls, 2u);
  EXPECT_EQ(steady->time.count, 2u);
  EXPECT_NEAR(steady->time.mean_s, 2e-6, 1e-18);
  EXPECT_NEAR(steady->time.var_s2, 1e-12, 1e-24);
  EXPECT_NEAR(steady->time.sdv_s, 1e-6, 1e-18);

  const parser::FunctionProfile* recursive = find_fn(profile, 0, "recursive");
  ASSERT_NE(recursive, nullptr);
  EXPECT_EQ(recursive->calls, 2u);
  EXPECT_EQ(recursive->time.count, 1u);  // one outermost activation
  EXPECT_NEAR(recursive->time.mean_s, 500e-9, 1e-18);
  EXPECT_EQ(recursive->time.var_s2, 0.0);
}

TEST(TimeStats, StreamingFoldMatchesBatchExactly) {
  // The CI byte-identity gates require the new stats to be identical —
  // not just close — between the batch wrapper and a streaming fold
  // that sees the events in arbitrary batch splits.
  const Trace t = make_run(
      {{"hot", {1000, 1200, 900, 1100, 1050, 950, 1000, 1300}},
       {"cold", {400, 600}}});
  auto batch = parser::parse_trace(t);
  ASSERT_TRUE(batch.is_ok()) << batch.message();

  for (const std::size_t split : {1u, 3u, 7u}) {
    pipeline::AnalysisPipeline fold(pipeline::AnalysisOptions{});
    fold.set_metadata(t);
    fold.set_bounds(t.start_tsc(), t.end_tsc());
    for (std::size_t i = 0; i < t.fn_events.size(); i += split) {
      const std::size_t n = std::min(split, t.fn_events.size() - i);
      fold.add_fn_events(t.fn_events.data() + i, n);
    }
    fold.add_temp_samples(t.temp_samples.data(), t.temp_samples.size());
    const pipeline::AnalysisResult streamed = fold.finish();

    for (const char* name : {"hot", "cold"}) {
      const parser::FunctionProfile* b = find_fn(batch.value(), 0, name);
      const parser::FunctionProfile* s = find_fn(streamed.profile, 0, name);
      ASSERT_NE(b, nullptr) << name;
      ASSERT_NE(s, nullptr) << name;
      EXPECT_EQ(s->time.count, b->time.count) << name;
      // Bit-identical, not approximately equal.
      EXPECT_EQ(s->time.mean_s, b->time.mean_s) << name;
      EXPECT_EQ(s->time.var_s2, b->time.var_s2) << name;
      EXPECT_EQ(s->time.sdv_s, b->time.sdv_s) << name;
    }
  }
}

TEST(TimeStats, ShardedFoldMatchesSingleThreadExactly) {
  const Trace t = make_run(
      {{"hot", {1000, 1200, 900, 1100, 1050, 950, 1000, 1300, 1010, 990}}});
  pipeline::AnalysisResult results[2];
  unsigned threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    pipeline::AnalysisOptions options;
    options.threads = threads[i];
    pipeline::AnalysisPipeline fold(options);
    fold.set_metadata(t);
    fold.set_bounds(t.start_tsc(), t.end_tsc());
    fold.add_fn_events(t.fn_events.data(), t.fn_events.size());
    results[i] = fold.finish();
  }
  const parser::FunctionProfile* one = find_fn(results[0].profile, 0, "hot");
  const parser::FunctionProfile* four = find_fn(results[1].profile, 0, "hot");
  ASSERT_NE(one, nullptr);
  ASSERT_NE(four, nullptr);
  EXPECT_EQ(four->time.count, one->time.count);
  EXPECT_EQ(four->time.mean_s, one->time.mean_s);
  EXPECT_EQ(four->time.var_s2, one->time.var_s2);
}

TEST(TimeStats, MultiRankAppendFoldPreservesPerNodeStats) {
  // Two ranks on distinct nodes fan in through RankFanIn; each node's
  // per-activation stats must equal its single-rank fold (the append
  // fold concatenates nodes, it must not blur their moments).
  const Trace r0 = make_run({{"shared", {1000, 1200, 900}}}, 0);
  const Trace r1 = make_run({{"shared", {2000, 2600}}}, 1);
  const std::string p0 = temp_path("rank0.trace");
  const std::string p1 = temp_path("rank1.trace");
  ASSERT_TRUE(write_trace_file(p0, r0));
  ASSERT_TRUE(write_trace_file(p1, r1));

  auto opened = pipeline::RankFanIn::open({p0, p1});
  ASSERT_TRUE(opened.is_ok()) << opened.message();
  auto fan = std::move(opened).value();
  pipeline::AnalysisSink sink;
  ASSERT_TRUE(pipeline::run_pipeline(&fan, {}, {&sink}));
  const parser::RunProfile& merged = sink.result().profile;

  auto single0 = parser::parse_trace(r0);
  auto single1 = parser::parse_trace(r1);
  ASSERT_TRUE(single0.is_ok() && single1.is_ok());
  const parser::FunctionProfile* m0 = find_fn(merged, 0, "shared");
  const parser::FunctionProfile* m1 = find_fn(merged, 1, "shared");
  const parser::FunctionProfile* s0 = find_fn(single0.value(), 0, "shared");
  const parser::FunctionProfile* s1 = find_fn(single1.value(), 1, "shared");
  ASSERT_NE(m0, nullptr);
  ASSERT_NE(m1, nullptr);
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(m0->time.count, s0->time.count);
  EXPECT_EQ(m0->time.mean_s, s0->time.mean_s);
  EXPECT_EQ(m0->time.var_s2, s0->time.var_s2);
  EXPECT_EQ(m1->time.count, s1->time.count);
  EXPECT_EQ(m1->time.mean_s, s1->time.mean_s);
  EXPECT_EQ(m1->time.var_s2, s1->time.var_s2);
}

TEST(TimeStats, RunStatsRoundTripByteForByte) {
  // A trace whose RUNSTATS trailer has every field nonzero (and a FLTR
  // trailer) must re-serialise byte-for-byte after a read — the diff
  // trusts these trailers, so silent lossy round-trips would corrupt
  // the tolerance logic downstream.
  Trace t = make_run({{"fn", {1000, 2000}}});
  RunStats& rs = t.run_stats;
  rs.events_recorded = 11;
  rs.events_dropped = 2;
  rs.buffer_flushes = 3;
  rs.threads_registered = 4;
  rs.tempd_ticks = 5;
  rs.tempd_missed_ticks = 6;
  rs.tempd_samples = 7;
  rs.tempd_read_errors = 8;
  rs.sensor_read_failures = 9;
  rs.heartbeats = 10;
  rs.peak_rss_kb = 1234;
  rs.wall_seconds = 1.25;
  rs.tempd_cpu_seconds = 0.0625;
  rs.probe_cost_ns_mean = 17.5;
  rs.cadence_jitter_us_mean = 3.75;
  rs.events_suppressed = 12;
  rs.events_throttled = 13;
  rs.events_overwritten = 14;
  rs.calls_observed = 52;
  rs.ring_snapshots = 15;
  t.filter.present = true;
  t.filter.source = "demo.filter";
  t.filter.resolved = 2;
  t.filter.suppressed = {"suppressed_a", "suppressed_b"};

  const std::string first = temp_path("runstats_a.trace");
  const std::string second = temp_path("runstats_b.trace");
  ASSERT_TRUE(write_trace_file(first, t));
  auto back = read_trace_file(first);
  ASSERT_TRUE(back.is_ok()) << back.message();
  EXPECT_TRUE(back.value().run_stats.present);
  EXPECT_EQ(back.value().run_stats.calls_observed, 52u);
  EXPECT_EQ(back.value().filter.suppressed.size(), 2u);
  ASSERT_TRUE(write_trace_file(second, back.value()));
  const std::string a = slurp(first);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(second));
}

// -- alignment and ranking ---------------------------------------------

TEST(Diff, SelfDiffHasZeroSignificantDeltas) {
  const diff::RunSummary run =
      summarize(make_run({{"hot", {1000, 1200, 900, 1100}}, {"cold", {500}}}),
                "self");
  const diff::DiffResult result = diff::diff_runs(run, run, {});
  EXPECT_TRUE(result.regressions.empty());
  EXPECT_TRUE(result.improvements.empty());
  EXPECT_FALSE(result.insignificant.empty());
  for (const auto& d : result.insignificant) {
    EXPECT_EQ(d.status, diff::MatchStatus::kMatched);
    EXPECT_EQ(d.delta_time_s, 0.0);
    EXPECT_FALSE(d.significant);
  }
}

TEST(Diff, SeededRegressionRanksFirstAndGatesUnrankables) {
  // 100 activations of ~1 ms with ±10 us spread; the current run is 20%
  // slower. A one-shot wrapper ("phase") also slows down, but with one
  // activation it has no variance and must never rank — this is the
  // gate that keeps leaf culprits on top instead of main().
  std::vector<std::uint64_t> base_hot, cur_hot;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t jitter = (i % 2 == 0) ? 10000 : 0;
    base_hot.push_back(1000000 - 5000 + jitter);
    cur_hot.push_back(1200000 - 5000 + jitter);
  }
  const diff::RunSummary base = summarize(
      make_run({{"hot", base_hot}, {"phase", {5000000}}, {"steady", {700, 700}}}),
      "base");
  const diff::RunSummary cur = summarize(
      make_run({{"hot", cur_hot}, {"phase", {9000000}}, {"steady", {700, 700}}}),
      "cur");

  const diff::DiffResult result = diff::diff_runs(base, cur, {});
  ASSERT_EQ(result.regressions.size(), 1u);
  const diff::FunctionDelta& top = result.regressions[0];
  EXPECT_EQ(top.key, "hot");
  EXPECT_TRUE(top.significant);
  EXPECT_GE(top.confidence, 0.95);
  EXPECT_NEAR(top.delta_time_s, 0.02, 1e-6);  // 100 * 0.2 ms
  EXPECT_GT(top.t_stat, 10.0);

  // "phase" grew by 4 ms — more than "hot" — but is unrankable.
  bool phase_reported = false;
  for (const auto& d : result.insignificant) {
    if (d.key != "phase") continue;
    phase_reported = true;
    EXPECT_FALSE(d.significant);
    EXPECT_EQ(d.confidence, 0.0);  // one activation: no spread estimate
  }
  EXPECT_TRUE(phase_reported);
  EXPECT_TRUE(result.improvements.empty());
}

TEST(Diff, AppearVanishAndFilterTolerance) {
  const diff::RunSummary base = summarize(
      make_run({{"stays", {1000, 1000}}, {"vanishes", {2000}}}), "base");
  diff::RunSummary cur = summarize(
      make_run({{"stays", {1000, 1000}}, {"appears", {3000}}}), "cur");

  diff::DiffResult plain = diff::diff_runs(base, cur, {});
  EXPECT_EQ(plain.filtered_tolerated, 0u);
  ASSERT_EQ(plain.regressions.size(), 1u);  // the appearance
  EXPECT_EQ(plain.regressions[0].key, "appears");
  EXPECT_EQ(plain.regressions[0].status, diff::MatchStatus::kCurrentOnly);
  EXPECT_EQ(plain.regressions[0].confidence, 1.0);
  ASSERT_EQ(plain.improvements.size(), 1u);  // the disappearance
  EXPECT_EQ(plain.improvements[0].key, "vanishes");
  EXPECT_EQ(plain.improvements[0].status, diff::MatchStatus::kBaselineOnly);

  // Declare "vanishes" in the current run's FLTR trailer: the absence
  // is deliberate suppression, tolerated instead of ranked.
  cur.filter.present = true;
  cur.filter.suppressed = {"vanishes"};
  const diff::DiffResult tolerant = diff::diff_runs(base, cur, {});
  EXPECT_EQ(tolerant.filtered_tolerated, 1u);
  EXPECT_TRUE(tolerant.improvements.empty());
  bool found = false;
  for (const auto& d : tolerant.insignificant) {
    if (d.key != "vanishes") continue;
    found = true;
    EXPECT_EQ(d.status, diff::MatchStatus::kFilteredCurrent);
  }
  EXPECT_TRUE(found);
}

TEST(Diff, PoolsAcrossNodesWithChanCombine) {
  // Node 0: 2 activations mean 10 var 4; node 1: 3 activations mean 20
  // var 9. Pooled: n=5, mean 16, M2 = 2*4 + 3*9 + (10-20)^2*2*3/5 = 155.
  parser::NodeProfile n0, n1;
  n0.node_id = 0;
  n0.functions = {fn_profile("fn", 2, 20.0, 2, 10.0, 4.0)};
  n1.node_id = 1;
  n1.functions = {fn_profile("fn", 3, 60.0, 3, 20.0, 9.0)};
  const diff::RunSummary run = summary_of({n0, n1}, "pooled");

  const diff::DiffResult result = diff::diff_runs(run, run, {});
  ASSERT_EQ(result.insignificant.size(), 1u);
  const diff::FunctionSide& side = result.insignificant[0].base;
  EXPECT_EQ(side.calls, 5u);
  EXPECT_EQ(side.time.count, 5u);
  EXPECT_NEAR(side.time.mean_s, 16.0, 1e-12);
  EXPECT_NEAR(side.time.var_s2, 155.0 / 5.0, 1e-12);
}

TEST(Diff, PerNodeKeepsNodesApart) {
  parser::NodeProfile n0, n1;
  n0.node_id = 0;
  n0.functions = {fn_profile("fn", 2, 20.0, 2, 10.0, 4.0)};
  n1.node_id = 1;
  n1.functions = {fn_profile("fn", 3, 60.0, 3, 20.0, 9.0)};
  const diff::RunSummary run = summary_of({n0, n1}, "per_node");

  diff::DiffOptions options;
  options.per_node = true;
  const diff::DiffResult result = diff::diff_runs(run, run, options);
  ASSERT_EQ(result.insignificant.size(), 2u);
  EXPECT_EQ(result.insignificant[0].node_id, 0u);
  EXPECT_EQ(result.insignificant[0].base.time.count, 2u);
  EXPECT_EQ(result.insignificant[1].node_id, 1u);
  EXPECT_EQ(result.insignificant[1].base.time.count, 3u);
}

TEST(Diff, UnresolvedNamesFallBackToAddressKeys) {
  parser::NodeProfile node;
  node.node_id = 0;
  node.functions = {fn_profile("", 1, 1.0, 1, 1.0, 0.0, 0x2a),
                    fn_profile("<unknown>", 1, 2.0, 1, 2.0, 0.0, 0xdead)};
  const diff::RunSummary run = summary_of({node}, "fallback");
  const diff::DiffResult result = diff::diff_runs(run, run, {});
  ASSERT_EQ(result.insignificant.size(), 2u);
  EXPECT_EQ(result.insignificant[0].key, "@0x2a");
  EXPECT_EQ(result.insignificant[1].key, "@0xdead");
}

TEST(Diff, SensorShiftAloneCanRank) {
  // Identical timing, but the function now runs 8 degrees hotter with a
  // tight spread: thermal evidence alone must carry the ranking (the
  // paper's thesis is that temperature is a first-class signal).
  auto with_sensor = [](double avg) {
    parser::NodeProfile node;
    node.node_id = 0;
    parser::FunctionProfile fn = fn_profile("warm", 4, 8.0, 4, 2.0, 0.25);
    parser::SensorProfile sp;
    sp.sensor_id = 0;
    sp.name = "CPU";
    sp.sample_count = 50;
    sp.stats.avg = avg;
    sp.stats.sdv = 0.5;
    sp.stats.var = 0.25;
    fn.sensors.push_back(sp);
    node.functions = {fn};
    return node;
  };
  const diff::RunSummary base = summary_of({with_sensor(60.0)}, "base");
  const diff::RunSummary cur = summary_of({with_sensor(68.0)}, "cur");

  const diff::DiffResult result = diff::diff_runs(base, cur, {});
  ASSERT_EQ(result.regressions.size(), 1u);
  const diff::FunctionDelta& d = result.regressions[0];
  EXPECT_EQ(d.key, "warm");
  ASSERT_EQ(d.sensors.size(), 1u);
  EXPECT_TRUE(d.sensors[0].significant);
  EXPECT_NEAR(d.sensors[0].delta_avg, 8.0, 1e-12);
  EXPECT_GE(d.confidence, 0.95);
}

TEST(Diff, TimeEvidenceOutranksSensorOnlyAncestors) {
  // "ancestor" (think main): one activation, so no rankable time
  // evidence — but the run got hotter, so its sensor delta is
  // significant, and its inclusive time delta (2 s) dwarfs the leaf's
  // (0.5 s). "leaf" carries real per-activation evidence. The leaf
  // must rank first anyway: ordering is evidence before magnitude.
  auto build = [](double ancestor_total, double leaf_mean, double temp) {
    parser::NodeProfile node;
    node.node_id = 0;
    parser::FunctionProfile ancestor =
        fn_profile("ancestor", 1, ancestor_total, 1, ancestor_total, 0.0);
    parser::SensorProfile sp;
    sp.sensor_id = 0;
    sp.name = "CPU";
    sp.sample_count = 80;
    sp.stats.avg = temp;
    sp.stats.sdv = 0.5;
    sp.stats.var = 0.25;
    ancestor.sensors.push_back(sp);
    node.functions = {ancestor,
                      fn_profile("leaf", 100, leaf_mean * 100.0, 100, leaf_mean,
                                 leaf_mean * leaf_mean * 0.0025)};
    return node;
  };
  const diff::RunSummary base = summary_of({build(10.0, 0.01, 60.0)}, "base");
  const diff::RunSummary cur = summary_of({build(12.0, 0.015, 70.0)}, "cur");

  const diff::DiffResult result = diff::diff_runs(base, cur, {});
  ASSERT_EQ(result.regressions.size(), 2u);
  EXPECT_EQ(result.regressions[0].key, "leaf");
  EXPECT_TRUE(result.regressions[0].time_significant);
  EXPECT_EQ(result.regressions[1].key, "ancestor");
  EXPECT_FALSE(result.regressions[1].time_significant);
  EXPECT_GT(std::fabs(result.regressions[1].delta_time_s),
            std::fabs(result.regressions[0].delta_time_s));
}

TEST(Diff, JsonOutputCarriesSchemaAndRanking) {
  const diff::RunSummary base =
      summarize(make_run({{"only_base", {1000}}}), "a.trace");
  const diff::RunSummary cur =
      summarize(make_run({{"only_cur", {2000}}}), "b.trace");
  const diff::DiffResult result = diff::diff_runs(base, cur, {});
  std::ostringstream os;
  diff::write_diff_json(os, result);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"schema\":\"tempest-diff\""), std::string::npos);
  EXPECT_NE(out.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(out.find("\"baseline\":\"a.trace\""), std::string::npos);
  EXPECT_NE(out.find("\"status\":\"appeared\""), std::string::npos);
  EXPECT_NE(out.find("\"status\":\"vanished\""), std::string::npos);
  EXPECT_NE(out.find("\"base\":null"), std::string::npos);
}

TEST(Diff, LoadRunReadsTrailerMetadata) {
  Trace t = make_run({{"fn", {1000, 1500}}});
  t.filter.present = true;
  t.filter.suppressed = {"elsewhere"};
  const std::string path = temp_path("load_run.trace");
  ASSERT_TRUE(write_trace_file(path, t));

  auto loaded = diff::load_run(path, {});
  ASSERT_TRUE(loaded.is_ok()) << loaded.message();
  EXPECT_EQ(loaded.value().source, path);
  EXPECT_TRUE(loaded.value().run_stats.present);
  EXPECT_TRUE(loaded.value().filter.present);
  ASSERT_EQ(loaded.value().filter.suppressed.size(), 1u);
  EXPECT_NE(find_fn(loaded.value().profile, 0, "fn"), nullptr);

  EXPECT_FALSE(diff::load_run(temp_path("absent.trace"), {}).is_ok());
}

// -- trend mode --------------------------------------------------------

TEST(Trend, EmitsSchemaVersionedSeries) {
  const std::string p0 = temp_path("trend0.trace");
  const std::string p1 = temp_path("trend1.trace");
  const std::string p2 = temp_path("trend2.trace");
  ASSERT_TRUE(write_trace_file(p0, make_run({{"a", {1000, 1000}}, {"b", {500}}})));
  ASSERT_TRUE(write_trace_file(p1, make_run({{"a", {1200, 1200}}, {"b", {500}}})));
  ASSERT_TRUE(write_trace_file(p2, make_run({{"a", {1400, 1400}}, {"b", {500}}})));

  std::ostringstream os;
  ASSERT_TRUE(diff::write_trend({p0, p1, p2}, os, {}));
  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"schema\":\"tempest-diff-trend\""), std::string::npos);
  EXPECT_NE(line.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(line.find("\"mode\":\"files\""), std::string::npos);
  EXPECT_NE(line.find("\"runs\":3"), std::string::npos);

  std::size_t entries = 0, runs_seen[3] = {0, 0, 0};
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_NE(line.find("\"function\":"), std::string::npos);
    EXPECT_NE(line.find("\"time_mean_s\":"), std::string::npos);
    EXPECT_NE(line.find("\"time_sdv_s\":"), std::string::npos);
    for (int r = 0; r < 3; ++r) {
      if (line.find("\"run\":" + std::to_string(r) + ",") == 1) ++runs_seen[r];
    }
    ++entries;
  }
  // One series entry per run per surviving function.
  EXPECT_EQ(entries, 6u);
  for (int r = 0; r < 3; ++r) EXPECT_EQ(runs_seen[r], 2u) << r;
}

TEST(Trend, TopTruncatesPerRun) {
  const std::string p0 = temp_path("trend_top0.trace");
  const std::string p1 = temp_path("trend_top1.trace");
  ASSERT_TRUE(write_trace_file(p0, make_run({{"big", {9000}}, {"small", {100}}})));
  ASSERT_TRUE(write_trace_file(p1, make_run({{"big", {9000}}, {"small", {100}}})));

  diff::TrendOptions options;
  options.top = 1;
  std::ostringstream os;
  ASSERT_TRUE(diff::write_trend({p0, p1}, os, options));
  const std::string out = os.str();
  EXPECT_NE(out.find("\"big\""), std::string::npos);
  EXPECT_EQ(out.find("\"small\""), std::string::npos);

  EXPECT_FALSE(diff::write_trend({p0, temp_path("gone.trace")}, os, {}));
}

}  // namespace
