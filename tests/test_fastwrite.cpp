// The fastwrite layer backs every exporter and report emitter, whose
// outputs are golden-pinned byte for byte — so the contract here is
// exact equivalence with what those emitters historically produced:
// snprintf for %llu/%llx/%.*f and default-formatted ostream doubles.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <random>
#include <sstream>

#include "common/fastwrite.hpp"

namespace {

namespace fastwrite = tempest::fastwrite;

std::string via_snprintf_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string via_snprintf_fixed(double v, int decimals) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

/// Deterministic magnitude sweep: mantissa bits scattered over the
/// exponent range the emitters actually see (timestamps, temperatures,
/// statistics), plus a handful of pathological exponents.
std::vector<double> fuzz_doubles(std::uint32_t seed, std::size_t count) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> mantissa(-1.0, 1.0);
  std::uniform_int_distribution<int> exponent(-12, 12);
  std::vector<double> values = {0.0,   -0.0,   1.0,      -1.0,  0.5,
                                123.456, -0.0001, 1e15,   -1e15, 93.2,
                                2.351848, 1e-300, -1e300};
  for (std::size_t i = 0; i < count; ++i) {
    values.push_back(std::ldexp(mantissa(rng), exponent(rng)));
  }
  return values;
}

TEST(Fastwrite, U64MatchesSnprintf) {
  std::mt19937_64 rng(0xfa57u);
  std::vector<std::uint64_t> values = {
      0, 1, 9, 10, 99, 12345, std::numeric_limits<std::uint64_t>::max()};
  for (int i = 0; i < 1000; ++i) values.push_back(rng());
  for (const std::uint64_t v : values) {
    std::string out;
    fastwrite::append_u64(out, v);
    EXPECT_EQ(out, via_snprintf_u64(v)) << v;
  }
}

TEST(Fastwrite, I64MatchesSnprintf) {
  std::mt19937_64 rng(0xfa58u);
  std::vector<std::int64_t> values = {
      0, -1, 1, std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<std::int64_t>(rng()));
  }
  for (const std::int64_t v : values) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    std::string out;
    fastwrite::append_i64(out, v);
    EXPECT_EQ(out, std::string(buf)) << v;
  }
}

TEST(Fastwrite, HexMatchesSnprintf) {
  std::mt19937_64 rng(0xfa59u);
  std::vector<std::uint64_t> values = {
      0, 0xf, 0x10, 0xdeadbeef, std::numeric_limits<std::uint64_t>::max()};
  for (int i = 0; i < 1000; ++i) values.push_back(rng());
  for (const std::uint64_t v : values) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIx64, v);
    std::string out;
    fastwrite::append_hex(out, v);
    EXPECT_EQ(out, std::string(buf)) << v;
  }
}

TEST(Fastwrite, FixedMatchesSnprintfAcrossPrecisions) {
  // The emitters use precisions 1..4 and 6 (stats tables, run stats,
  // exporter timestamps, JSON); hold every one to printf bytes.
  for (const int decimals : {0, 1, 2, 3, 4, 6, 9}) {
    for (const double v : fuzz_doubles(1000 + decimals, 2000)) {
      std::string out;
      fastwrite::append_fixed(out, v, decimals);
      EXPECT_EQ(out, via_snprintf_fixed(v, decimals))
          << v << " @ %." << decimals << "f";
    }
  }
}

TEST(Fastwrite, FixedNonFiniteMatchesPrintf) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const double v : {inf, -inf, nan}) {
    std::string out;
    fastwrite::append_fixed(out, v, 3);
    EXPECT_EQ(out, via_snprintf_fixed(v, 3));
  }
}

TEST(Fastwrite, GeneralMatchesDefaultOstream) {
  // The CSV series writer replaced `out << d` with append_general; the
  // two must agree on every value or series goldens shift.
  for (const double v : fuzz_doubles(77, 4000)) {
    std::ostringstream ref;
    ref << v;
    std::string out;
    fastwrite::append_general(out, v);
    EXPECT_EQ(out, ref.str()) << v;
  }
}

TEST(Fastwrite, PaddedMatchesSetw) {
  const struct {
    const char* text;
    std::size_t width;
    bool left;
  } cases[] = {{"CPU", 10, true}, {"93.20", 8, false}, {"", 10, true},
               {"overlong-name", 4, true}, {"overlong", 4, false}};
  for (const auto& c : cases) {
    std::ostringstream ref;
    ref << (c.left ? std::left : std::right)
        << std::setw(static_cast<int>(c.width)) << c.text;
    std::string out;
    fastwrite::append_padded(out, c.text, c.width, c.left);
    EXPECT_EQ(out, ref.str()) << c.text;
  }
}

TEST(BufferedWriter, ContentAndAccountingMatchDirectWrites) {
  std::ostringstream direct, buffered;
  fastwrite::BufferedWriter writer(buffered, 64);  // tiny: force flushes
  std::mt19937 rng(42);
  std::uint64_t expected_bytes = 0;
  for (int i = 0; i < 500; ++i) {
    std::string chunk(rng() % 23, static_cast<char>('a' + (rng() % 26)));
    direct << chunk;
    writer.append(chunk);
    expected_bytes += chunk.size();
    if (i % 7 == 0) {
      direct << 'x';
      writer.append('x');
      ++expected_bytes;
    }
  }
  // An append larger than the whole buffer takes the bypass path.
  const std::string huge(1000, 'z');
  direct << huge;
  writer.append(huge);
  expected_bytes += huge.size();

  EXPECT_EQ(writer.bytes_written(), expected_bytes);
  writer.flush();
  EXPECT_EQ(buffered.str(), direct.str());
  EXPECT_EQ(writer.bytes_written(), expected_bytes);  // flush adds nothing
}

TEST(BufferedWriter, DestructorFlushes) {
  std::ostringstream out;
  {
    fastwrite::BufferedWriter writer(out);
    writer.append("tail bytes");
    EXPECT_EQ(out.str(), "");  // still buffered
  }
  EXPECT_EQ(out.str(), "tail bytes");
}

}  // namespace
