// The parallel analysis fast path against the serial baseline.
//
// The tentpole guarantee is determinism: whatever --threads is set to,
// the profile emitted at the end is byte-identical to the historical
// single-threaded run. This suite holds the three moving parts to it —
// worker-pool section decode + read-ahead (PrefetchSource), the sharded
// timeline fold, and the full pipeline composition — across 1/2/4/8
// workers, over a single-file trace big enough to actually engage the
// parallel decode slicing and over the paper's 4-rank fan-in workflow.
// Runs under TSan in CI (concurrency label).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/worker_pool.hpp"
#include "parser/timeline.hpp"
#include "parser/timeline_shard.hpp"
#include "pipeline/analysis.hpp"
#include "pipeline/prefetch.hpp"
#include "pipeline/rank_fanin.hpp"
#include "pipeline/sinks.hpp"
#include "pipeline/source.hpp"
#include "pipeline/stages.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"

namespace {

using namespace tempest;
using namespace tempest::trace;
namespace pipeline = tempest::pipeline;
namespace parser = tempest::parser;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A single-node trace large enough that the staged reader's parallel
/// decode actually slices (the pool path needs thousands of records per
/// section read): 8 threads, ~n_events interleaved enters/exits with
/// recursion and some frames left open for the force-close path.
Trace big_trace(std::size_t n_events, std::uint32_t seed) {
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.executable = "bigapp";
  t.nodes = {{0, "node0"}};
  t.sensors = {{0, 0, "cpu", 1.0}};
  constexpr std::uint32_t kThreads = 8;
  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    t.threads.push_back({tid, 0, static_cast<std::uint16_t>(tid)});
  }

  std::mt19937_64 rng(seed);
  std::uint64_t tsc = 1000;
  std::vector<std::vector<std::uint64_t>> stacks(kThreads);
  for (std::size_t i = 0; i < n_events; ++i) {
    tsc += 1 + (rng() % 5);
    const std::uint32_t tid = static_cast<std::uint32_t>(rng() % kThreads);
    auto& stack = stacks[tid];
    const bool enter = stack.empty() || (stack.size() < 6 && (rng() & 1));
    if (enter) {
      const std::uint64_t addr = 0x1000 + (rng() % 32) * 16;
      stack.push_back(addr);
      t.fn_events.push_back({tsc, addr, tid, 0, FnEventKind::kEnter});
    } else {
      const std::uint64_t addr = stack.back();
      stack.pop_back();
      t.fn_events.push_back({tsc, addr, tid, 0, FnEventKind::kExit});
    }
    if (i % 97 == 0) {
      t.temp_samples.push_back(
          {tsc, 40.0 + static_cast<double>(rng() % 400) * 0.1, 0, 0});
    }
  }
  t.fn_event_runs.assign(1, {0, t.fn_events.size()});
  t.sort_by_time();
  return t;
}

/// One rank of a 4-rank run, clock-skewed, with syncs pinning the fit.
Trace rank_trace(std::uint16_t rank, std::uint64_t skew, std::size_t n_pairs) {
  Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.executable = "mpi_app";
  t.nodes = {{rank, "rank" + std::to_string(rank)}};
  t.sensors = {{rank, 0, "cpu", 1.0}};
  const std::uint32_t tid = rank;
  t.threads = {{tid, rank, 0}};
  const std::uint64_t base = 10000 + rank * 13;
  const auto local = [&](std::uint64_t global) { return global - skew; };
  std::uint64_t g = base;
  const std::size_t run = t.fn_events.size();
  for (std::size_t i = 0; i < n_pairs; ++i) {
    const std::uint64_t addr = 0x2000 + (i % 7) * 16;
    t.fn_events.push_back({local(g), addr, tid, rank, FnEventKind::kEnter});
    t.fn_events.push_back(
        {local(g + 40), addr, tid, rank, FnEventKind::kExit});
    if (i % 5 == 0) {
      t.temp_samples.push_back(
          {local(g + 20), 40.0 + rank + (i % 9) * 0.5, rank, 0});
    }
    g += 100;
  }
  t.fn_event_runs.push_back({run, t.fn_events.size() - run});
  t.clock_syncs = {{local(base), base, rank}, {local(g), g, rank}};
  return t;
}

/// Full streaming pipeline over one trace file at the given worker
/// count, emitting the JSON profile — the tool's composition, minus the
/// CLI: decode pool on the reader, PrefetchSource ahead of the fold,
/// sharded timeline in the sink.
std::string analyze_single(const std::string& path, unsigned threads) {
  auto opened = pipeline::ChunkedTraceSource::open(path);
  EXPECT_TRUE(opened.is_ok()) << opened.message();
  if (!opened.is_ok()) return {};
  auto chunked = std::move(opened).value();

  std::optional<WorkerPool> pool;
  if (threads > 1) {
    pool.emplace(threads);
    chunked.set_decode_pool(&*pool);
  }

  pipeline::AnalysisOptions options;
  options.threads = threads;
  options.want_series = true;
  std::ostringstream out;
  pipeline::JsonEmitter json(out);
  pipeline::CsvSeriesEmitter csv(out);  // series bytes must match too
  pipeline::AnalysisSink sink(options, {&json, &csv});

  pipeline::OrderCheckStage order;
  pipeline::Source* source = &chunked;
  std::optional<pipeline::PrefetchSource> prefetch;
  if (threads > 1) {
    prefetch.emplace(source);
    source = &*prefetch;
  }
  const Status ran = pipeline::run_pipeline(source, {&order}, {&sink});
  EXPECT_TRUE(ran) << ran.message();
  return out.str();
}

std::string analyze_fanin(const std::vector<std::string>& paths,
                          unsigned threads) {
  auto opened = pipeline::RankFanIn::open(paths);
  EXPECT_TRUE(opened.is_ok()) << opened.message();
  if (!opened.is_ok()) return {};
  auto fan = std::move(opened).value();

  pipeline::AnalysisOptions options;
  options.threads = threads;
  std::ostringstream out;
  pipeline::JsonEmitter json(out);
  pipeline::AnalysisSink sink(options, {&json});

  pipeline::OrderCheckStage order;
  pipeline::Source* source = &fan;
  std::optional<pipeline::PrefetchSource> prefetch;
  if (threads > 1) {
    prefetch.emplace(source);
    source = &*prefetch;
  }
  const Status ran = pipeline::run_pipeline(source, {&order}, {&sink});
  EXPECT_TRUE(ran) << ran.message();
  return out.str();
}

TEST(ParallelPipeline, SingleFileByteIdenticalAcrossWorkerCounts) {
  const Trace t = big_trace(20000, 0x9a11u);
  const std::string path = temp_path("parallel_big.trace");
  ASSERT_TRUE(write_trace_file(path, t));

  const std::string baseline = analyze_single(path, 1);
  ASSERT_FALSE(baseline.empty());
  for (const unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(analyze_single(path, threads), baseline)
        << threads << " workers";
  }
}

TEST(ParallelPipeline, FourRankFanInByteIdenticalAcrossWorkerCounts) {
  std::vector<std::string> paths;
  for (std::uint16_t rank = 0; rank < 4; ++rank) {
    Trace t = rank_trace(rank, 500 + rank * 1000, 200);
    t.sort_by_time();
    paths.push_back(temp_path("parallel_rank" + std::to_string(rank) +
                              ".trace"));
    ASSERT_TRUE(write_trace_file(paths.back(), t));
  }

  const std::string baseline = analyze_fanin(paths, 1);
  ASSERT_FALSE(baseline.empty());
  for (const unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(analyze_fanin(paths, threads), baseline)
        << threads << " workers";
  }
}

TEST(ParallelPipeline, PrefetchSourcePreservesBatchSequence) {
  const Trace t = big_trace(3000, 0x9a12u);
  pipeline::BatchOptions options;
  options.batch_records = 64;  // many small batches through the decorator

  pipeline::MemoryTraceSource direct(t, options);
  std::vector<std::size_t> direct_sizes;
  pipeline::EventBatch batch;
  bool done = false;
  while (!done) {
    batch.clear();
    ASSERT_TRUE(direct.next(&batch, &done));
    direct_sizes.push_back(batch.fn_events.size() + batch.temp_samples.size() +
                           batch.clock_syncs.size());
  }

  pipeline::MemoryTraceSource inner(t, options);
  pipeline::PrefetchSource prefetch(&inner, /*depth=*/3);
  std::vector<std::size_t> prefetch_sizes;
  done = false;
  while (!done) {
    batch.clear();
    ASSERT_TRUE(prefetch.next(&batch, &done));
    prefetch_sizes.push_back(batch.fn_events.size() +
                             batch.temp_samples.size() +
                             batch.clock_syncs.size());
  }
  EXPECT_EQ(prefetch_sizes, direct_sizes);
}

/// Sharded timeline fold vs the serial accumulator over a hostile
/// stream: unmatched exits, frames left open, events on thread ids the
/// metadata never declared, recursion — everything the drop-empty merge
/// rule has to get right.
TEST(ParallelPipeline, ShardedTimelineMatchesSerialOnFuzzedStreams) {
  for (const std::uint32_t seed : {1u, 2u, 3u, 4u}) {
    std::mt19937_64 rng(seed);
    std::vector<trace::ThreadInfo> threads;
    for (std::uint32_t tid = 0; tid < 6; ++tid) {
      threads.push_back({tid, static_cast<std::uint16_t>(tid % 3), 0});
    }
    std::vector<FnEvent> events;
    std::uint64_t tsc = 100;
    for (std::size_t i = 0; i < 5000; ++i) {
      tsc += 1 + (rng() % 3);
      // tids 6-7 are undeclared in the thread table: both folds must
      // account their activity the same way.
      const std::uint32_t tid = static_cast<std::uint32_t>(rng() % 8);
      const std::uint64_t addr = 0x4000 + (rng() % 5) * 16;
      const bool enter = (rng() % 3) != 0;  // deliberately unbalanced
      events.push_back({tsc, addr, tid, static_cast<std::uint16_t>(tid % 3),
                        enter ? FnEventKind::kEnter : FnEventKind::kExit});
    }
    const std::uint64_t end_tsc = tsc + 10;

    parser::TimelineDiagnostics serial_diag;
    parser::TimelineAccumulator serial(threads);
    serial.add_events(events.data(), events.size());
    const parser::TimelineMap expected =
        serial.finish(end_tsc, &serial_diag);

    for (const unsigned shards : {2u, 4u, 8u}) {
      parser::TimelineDiagnostics diag;
      parser::ShardedTimelineAccumulator sharded(threads, 0, shards);
      // Feed in uneven chunks to exercise the queue hand-off.
      std::size_t pos = 0;
      while (pos < events.size()) {
        const std::size_t n = std::min<std::size_t>(
            events.size() - pos, 1 + (rng() % 700));
        sharded.add_events(events.data() + pos, n);
        pos += n;
      }
      const parser::TimelineMap got = sharded.finish(end_tsc, &diag);

      EXPECT_EQ(diag.unmatched_exits, serial_diag.unmatched_exits)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(diag.force_closed, serial_diag.force_closed)
          << "seed " << seed << " shards " << shards;
      ASSERT_EQ(got.size(), expected.size())
          << "seed " << seed << " shards " << shards;
      auto e = expected.begin();
      for (auto g = got.begin(); g != got.end(); ++g, ++e) {
        EXPECT_EQ(g->first, e->first);
        EXPECT_EQ(g->second.addr, e->second.addr);
        EXPECT_EQ(g->second.node_id, e->second.node_id);
        EXPECT_EQ(g->second.total_ticks, e->second.total_ticks);
        EXPECT_EQ(g->second.calls, e->second.calls);
        ASSERT_EQ(g->second.merged.size(), e->second.merged.size());
        for (std::size_t i = 0; i < g->second.merged.size(); ++i) {
          EXPECT_EQ(g->second.merged[i].begin, e->second.merged[i].begin);
          EXPECT_EQ(g->second.merged[i].end, e->second.merged[i].end);
        }
      }
    }
  }
}

/// The pool's parallel-for must cover every index exactly once and be
/// reusable across jobs (the reader issues one for_slices per section).
TEST(ParallelPipeline, WorkerPoolCoversAllSlices) {
  WorkerPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::atomic<int>> hits(10007);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    pool.for_slices(hits.size(), 64, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1)
          << "round " << round << " index " << i;
    }
  }
}

}  // namespace
