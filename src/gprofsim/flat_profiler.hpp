// gprofsim: a gprof-style flat bucket profiler.
//
// The baseline of the paper's verification section, implemented as the
// paper characterises gprof: "gprof creates buckets for functions and
// adds to buckets as it spends time in various functions: gprof does
// not pinpoint which function was executing at time X". This profiler
// therefore keeps only per-function accumulators (calls, self time,
// inclusive time) with no timeline — exactly the design Tempest had to
// reject, retained here for the §3.4 overhead/accuracy comparison and
// as the bucket-vs-timeline ablation.
//
// It consumes the same -finstrument-functions events as Tempest by
// registering alternate hooks, so one instrumented binary can run under
// baseline / gprofsim / Tempest configurations.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace gprofsim {

struct Bucket {
  std::uint64_t calls = 0;
  std::uint64_t self_ticks = 0;   ///< time excluding instrumented children
  std::uint64_t total_ticks = 0;  ///< inclusive time of outermost activations
};

struct FlatEntry {
  std::string name;
  std::uint64_t addr = 0;
  std::uint64_t calls = 0;
  double self_s = 0.0;
  double total_s = 0.0;
};

class FlatProfiler {
 public:
  static FlatProfiler& instance();

  /// Arm the alternate instrumentation hooks. One profiler per process.
  void start();
  /// Disarm and aggregate per-thread buckets.
  void stop() EXCLUDES(mu_);
  bool active() const { return active_.load(std::memory_order_acquire); }

  /// Called from the instrumentation hooks (hot path, per thread).
  void on_enter(void* fn);
  void on_exit(void* fn);

  /// Flat profile sorted by self time, symbolised via the current
  /// process's ELF symbol table (valid after stop()).
  std::vector<FlatEntry> flat_profile() const EXCLUDES(mu_);

  /// Self-time seconds for one function (0 when absent).
  double self_seconds(const std::string& name) const EXCLUDES(mu_);

  void reset() EXCLUDES(mu_);

  struct Frame {
    std::uint64_t addr;
    std::uint64_t enter_tsc;
    std::uint64_t child_ticks;
    std::uint64_t depth_of_same;  ///< recursion depth of this addr at entry
  };
  struct ThreadBuckets {
    std::vector<Frame> stack;
    std::map<std::uint64_t, Bucket> buckets;
    std::map<std::uint64_t, std::uint64_t> open_depth;
  };

 private:
  FlatProfiler() = default;

  ThreadBuckets* current_thread() EXCLUDES(mu_);

  std::atomic<bool> active_{false};
  mutable tempest::common::Mutex mu_;
  std::vector<std::unique_ptr<ThreadBuckets>> threads_ GUARDED_BY(mu_);
  /// Previous-generation buckets parked by reset(); kept alive so a
  /// thread mid-record during a reset never touches freed memory.
  std::vector<std::unique_ptr<ThreadBuckets>> retired_ GUARDED_BY(mu_);
  std::map<std::uint64_t, Bucket> merged_ GUARDED_BY(mu_);
};

}  // namespace gprofsim
