#include "gprofsim/flat_profiler.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/tsc.hpp"
#include "symtab/resolver.hpp"

// Defined in tempest_hooks (core/hooks.cpp).
extern std::atomic<void (*)(void*)> tempest_alt_enter_hook;
extern std::atomic<void (*)(void*)> tempest_alt_exit_hook;

namespace gprofsim {
namespace {

thread_local FlatProfiler::ThreadBuckets* tls_buckets = nullptr;
std::atomic<std::uint64_t> g_generation{1};
thread_local std::uint64_t tls_generation = 0;

void enter_trampoline(void* fn) { FlatProfiler::instance().on_enter(fn); }
void exit_trampoline(void* fn) { FlatProfiler::instance().on_exit(fn); }

}  // namespace

FlatProfiler& FlatProfiler::instance() {
  static FlatProfiler* profiler = new FlatProfiler();
  return *profiler;
}

FlatProfiler::ThreadBuckets* FlatProfiler::current_thread() {
  if (tls_buckets == nullptr || tls_generation != g_generation.load(std::memory_order_relaxed)) {
    tempest::common::MutexLock lock(&mu_);
    threads_.push_back(std::make_unique<ThreadBuckets>());
    tls_buckets = threads_.back().get();
    tls_generation = g_generation.load(std::memory_order_relaxed);
  }
  return tls_buckets;
}

void FlatProfiler::start() {
  if (active_.exchange(true, std::memory_order_acq_rel)) return;
  tempest_alt_enter_hook.store(&enter_trampoline, std::memory_order_release);
  tempest_alt_exit_hook.store(&exit_trampoline, std::memory_order_release);
}

void FlatProfiler::stop() {
  if (!active_.exchange(false, std::memory_order_acq_rel)) return;
  tempest_alt_enter_hook.store(nullptr, std::memory_order_release);
  tempest_alt_exit_hook.store(nullptr, std::memory_order_release);

  tempest::common::MutexLock lock(&mu_);
  for (const auto& t : threads_) {
    for (const auto& [addr, bucket] : t->buckets) {
      Bucket& m = merged_[addr];
      m.calls += bucket.calls;
      m.self_ticks += bucket.self_ticks;
      m.total_ticks += bucket.total_ticks;
    }
  }
}

void FlatProfiler::on_enter(void* fn) {
  if (!active_.load(std::memory_order_relaxed)) return;
  ThreadBuckets* t = current_thread();
  const auto addr = reinterpret_cast<std::uint64_t>(fn);
  auto& depth = t->open_depth[addr];
  t->stack.push_back({addr, tempest::rdtsc(), 0, depth});
  ++depth;
  ++t->buckets[addr].calls;
}

void FlatProfiler::on_exit(void* fn) {
  if (!active_.load(std::memory_order_relaxed)) return;
  ThreadBuckets* t = current_thread();
  const auto addr = reinterpret_cast<std::uint64_t>(fn);
  if (t->stack.empty() || t->stack.back().addr != addr) return;  // unbalanced
  const Frame frame = t->stack.back();
  t->stack.pop_back();
  const std::uint64_t now = tempest::rdtsc();
  const std::uint64_t elapsed = now - frame.enter_tsc;

  Bucket& bucket = t->buckets[addr];
  bucket.self_ticks += elapsed - frame.child_ticks;
  auto& depth = t->open_depth[addr];
  if (depth > 0) --depth;
  if (frame.depth_of_same == 0) bucket.total_ticks += elapsed;  // outermost only
  if (!t->stack.empty()) t->stack.back().child_ticks += elapsed;
}

std::vector<FlatEntry> FlatProfiler::flat_profile() const {
  auto resolver = tempest::symtab::Resolver::for_current_process();
  std::map<std::uint64_t, Bucket> merged;
  {
    tempest::common::MutexLock lock(&mu_);
    merged = merged_;
  }
  std::vector<FlatEntry> out;
  for (const auto& [addr, bucket] : merged) {
    FlatEntry e;
    e.addr = addr;
    e.name = resolver.is_ok() ? resolver.value().resolve(addr) : "<unknown>";
    e.calls = bucket.calls;
    e.self_s = tempest::tsc_to_seconds(bucket.self_ticks);
    e.total_s = tempest::tsc_to_seconds(bucket.total_ticks);
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const FlatEntry& a, const FlatEntry& b) { return a.self_s > b.self_s; });
  return out;
}

double FlatProfiler::self_seconds(const std::string& name) const {
  for (const auto& e : flat_profile()) {
    if (e.name == name) return e.self_s;
  }
  return 0.0;
}

void FlatProfiler::reset() {
  tempest::common::MutexLock lock(&mu_);
  // Retire, don't destroy: a hook mid-record on another thread may
  // still hold its TLS buckets pointer (same discipline as
  // core::ThreadRegistry::reset).
  for (auto& t : threads_) retired_.push_back(std::move(t));
  threads_.clear();
  merged_.clear();
  g_generation.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace gprofsim
