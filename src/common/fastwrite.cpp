#include "common/fastwrite.hpp"

#include <charconv>
#include <cmath>

namespace tempest::fastwrite {
namespace {

// Worst cases: -1.8e308 at %.9f is ~320 digits; give fixed-point room
// for the full double range at sane precisions plus slack.
constexpr std::size_t kNumBuf = 512;

template <typename T>
void append_int(std::string& out, T v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(r.ptr - buf));
}

}  // namespace

void append_u64(std::string& out, std::uint64_t v) { append_int(out, v); }
void append_i64(std::string& out, std::int64_t v) { append_int(out, v); }

void append_hex(std::string& out, std::uint64_t v) {
  char buf[17];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v, 16);
  out.append(buf, static_cast<std::size_t>(r.ptr - buf));
}

void append_fixed(std::string& out, double v, int decimals) {
  // printf prints non-finite values without the precision; to_chars
  // fixed does the same ("inf"/"-inf"/"nan"), but make the contract
  // explicit rather than lean on the corner of the spec.
  if (!std::isfinite(v)) {
    if (std::isnan(v)) {
      out += std::signbit(v) ? "-nan" : "nan";
    } else {
      out += std::signbit(v) ? "-inf" : "inf";
    }
    return;
  }
  char buf[kNumBuf];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v,
                               std::chars_format::fixed, decimals);
  out.append(buf, static_cast<std::size_t>(r.ptr - buf));
}

void append_general(std::string& out, double v, int precision) {
  if (!std::isfinite(v)) {
    if (std::isnan(v)) {
      out += std::signbit(v) ? "-nan" : "nan";
    } else {
      out += std::signbit(v) ? "-inf" : "inf";
    }
    return;
  }
  char buf[kNumBuf];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v,
                               std::chars_format::general, precision);
  out.append(buf, static_cast<std::size_t>(r.ptr - buf));
}

void append_padded(std::string& out, std::string_view text, std::size_t width,
                   bool left_align) {
  if (!left_align && text.size() < width) {
    out.append(width - text.size(), ' ');
  }
  out.append(text.data(), text.size());
  if (left_align && text.size() < width) {
    out.append(width - text.size(), ' ');
  }
}

}  // namespace tempest::fastwrite
