#include "common/affinity.hpp"

#include <cerrno>
#include <cstring>
#include <string>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace tempest {

Status bind_current_thread_to_cpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0) return Status::error("negative cpu index");
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  if (sched_setaffinity(0, sizeof(set), &set) != 0) {
    return Status::error(std::string("sched_setaffinity: ") + std::strerror(errno));
  }
  return Status::ok();
#else
  (void)cpu;
  return Status::error("affinity binding unsupported on this platform");
#endif
}

int online_cpu_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace tempest
