#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace tempest {

bool env_raw(const char* name, std::string* out) {
  // Tempest never calls setenv/putenv, so the environment block is
  // immutable for the process lifetime and getenv is safe from any
  // thread. NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  *out = v;
  return true;
}

std::string env_string(const char* name, const std::string& fallback) {
  std::string v;
  return env_raw(name, &v) ? v : fallback;
}

double env_double(const char* name, double fallback) {
  double v = fallback;
  env_double_checked(name, &v);
  return v;
}

long env_long(const char* name, long fallback) {
  long v = fallback;
  env_long_checked(name, &v);
  return v;
}

EnvParse env_double_checked(const char* name, double* out) {
  std::string v;
  if (!env_raw(name, &v)) return EnvParse::kAbsent;
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) return EnvParse::kMalformed;
    *out = d;
    return EnvParse::kOk;
  } catch (...) {
    return EnvParse::kMalformed;
  }
}

EnvParse env_long_checked(const char* name, long* out) {
  std::string v;
  if (!env_raw(name, &v)) return EnvParse::kAbsent;
  try {
    std::size_t pos = 0;
    const long n = std::stol(v, &pos);
    if (pos != v.size()) return EnvParse::kMalformed;
    *out = n;
    return EnvParse::kOk;
  } catch (...) {
    return EnvParse::kMalformed;
  }
}

bool env_bool(const char* name, bool fallback) {
  std::string v;
  if (!env_raw(name, &v)) return fallback;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

}  // namespace tempest
