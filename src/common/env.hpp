// Environment-variable configuration helpers.
//
// Tempest is configured transparently (link the library, run the code),
// so all knobs have env-var overrides: TEMPEST_HZ, TEMPEST_OUT,
// TEMPEST_UNIT, ... These helpers parse them defensively — a malformed
// value falls back to the default rather than aborting the profiled run.
#pragma once

#include <string>

namespace tempest {

/// Raw lookup; empty optional semantics via found flag.
bool env_raw(const char* name, std::string* out);

std::string env_string(const char* name, const std::string& fallback);
double env_double(const char* name, double fallback);
long env_long(const char* name, long fallback);
bool env_bool(const char* name, bool fallback);

/// Checked variants: tell "unset" apart from "set but malformed" so
/// config can warn about the latter instead of silently falling back —
/// TEMPEST_MAX_EVENTS=banana should not quietly become unbounded.
enum class EnvParse { kAbsent, kOk, kMalformed };

EnvParse env_long_checked(const char* name, long* out);
EnvParse env_double_checked(const char* name, double* out);

}  // namespace tempest
