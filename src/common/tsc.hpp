// Cycle-accurate timestamping.
//
// The paper avoids OS timer syscalls and samples the hardware time-stamp
// counter directly (rdtsc on x86, the timebase register on PowerPC).
// This module wraps the platform instruction, calibrates ticks-per-second
// against std::chrono::steady_clock once at startup, and provides the
// conversion helpers the trace parser uses.
#pragma once

#include <cstdint>

namespace tempest {

/// Raw time-stamp-counter read. On x86 this compiles to `rdtsc`; on other
/// architectures it falls back to steady_clock nanoseconds, preserving
/// the paper's "identify the equivalent instruction" portability note.
std::uint64_t rdtsc();

/// Ticks of rdtsc() per second, measured once (thread-safe, cached).
/// Calibration busy-spins ~20 ms against steady_clock.
double tsc_ticks_per_second();

/// Convert a tick delta to seconds using the calibrated rate.
double tsc_to_seconds(std::uint64_t ticks);

/// Convert seconds to ticks (used by tests and the simulated clock).
std::uint64_t seconds_to_tsc(double seconds);

/// A per-node virtual TSC: real ticks skewed by an offset and a drift
/// rate, emulating unsynchronised counters across cluster nodes (the
/// clock-skew limitation in §3.3 of the paper). drift_ppm = 50 means the
/// virtual clock runs 50 parts-per-million fast.
class VirtualTsc {
 public:
  VirtualTsc() = default;
  VirtualTsc(std::int64_t offset_ticks, double drift_ppm)
      : offset_(offset_ticks), drift_ppm_(drift_ppm) {}

  std::uint64_t now() const { return translate(rdtsc()); }

  /// Map a real (global) TSC value into this node's clock domain.
  std::uint64_t translate(std::uint64_t real) const {
    const double skewed = static_cast<double>(real) * (1.0 + drift_ppm_ * 1e-6);
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(skewed) + offset_);
  }

  std::int64_t offset_ticks() const { return offset_; }
  double drift_ppm() const { return drift_ppm_; }

 private:
  std::int64_t offset_ = 0;
  double drift_ppm_ = 0.0;
};

}  // namespace tempest
