// Statistics used in Tempest reports.
//
// The paper's standard output prints, per function and per sensor:
// Min, Avg, Max, Sdv, Var, Med (median), Mod (mode). Median and mode
// need the sample population, so SampleSet keeps the values (temperature
// sample counts are tiny: 4 Hz * run length). StreamingStats is the
// allocation-free Welford variant used on hot paths (activity metering,
// overhead accounting).
#pragma once

#include <cstddef>
#include <vector>

namespace tempest {

/// Summary of a sample population; all fields valid when count > 0.
struct StatsSummary {
  std::size_t count = 0;
  double min = 0.0;
  double avg = 0.0;
  double max = 0.0;
  double sdv = 0.0;  ///< population standard deviation
  double var = 0.0;  ///< population variance
  double med = 0.0;  ///< median (midpoint average for even counts)
  double mod = 0.0;  ///< mode (smallest value among ties)
};

/// Collects raw samples and produces the full seven-statistic summary.
class SampleSet {
 public:
  void add(double value) { values_.push_back(value); }
  void reserve(std::size_t n) { values_.reserve(n); }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const std::vector<double>& values() const { return values_; }

  /// Compute the summary. Mode ties break toward the smallest value;
  /// mode equality uses exact double comparison, which is correct here
  /// because sensor readings are quantised before they reach the stats.
  StatsSummary summarize() const;

 private:
  std::vector<double> values_;
};

/// Welford online mean/variance with min/max; O(1) memory.
class StreamingStats {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return mean_; }
  /// Population variance (0 for fewer than 2 samples).
  double variance() const;
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace tempest
