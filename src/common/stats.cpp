#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace tempest {

StatsSummary SampleSet::summarize() const {
  StatsSummary s;
  s.count = values_.size();
  if (values_.empty()) return s;

  std::vector<double> sorted(values_);
  std::sort(sorted.begin(), sorted.end());

  s.min = sorted.front();
  s.max = sorted.back();

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.avg = sum / static_cast<double>(sorted.size());

  double sq = 0.0;
  for (double v : sorted) sq += (v - s.avg) * (v - s.avg);
  s.var = sq / static_cast<double>(sorted.size());
  s.sdv = std::sqrt(s.var);

  const std::size_t n = sorted.size();
  s.med = (n % 2 == 1) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);

  // Mode over the sorted run-length encoding; first (smallest) maximal run wins.
  std::size_t best_len = 0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && sorted[j] == sorted[i]) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      s.mod = sorted[i];
    }
    i = j;
  }
  return s;
}

void StreamingStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

}  // namespace tempest
