// TEMPEST_FILTER suppression files — the shared line format.
//
// The adaptive-instrumentation loop has two halves: tempest-audit
// (src/audit) *emits* suppression suggestions, and the recording
// runtime (src/core) *consumes* them at session start via the
// TEMPEST_FILTER environment variable. Both halves speak this
// deliberately trivial format:
//
//   # TEMPEST_FILTER v1
//   # <free-form comment>
//   suppress <raw-symbol-name>        # <reason>
//
// Blank lines and `#` comments are ignored; each directive line is the
// word `suppress`, one mangled symbol name, and an optional trailing
// `# reason`. Unknown directives are an error (a typo must not
// silently keep a hot function instrumented).
//
// The parser lives here in src/common so that src/core stays free of
// the audit library (which drags in the whole ELF analyzer); the audit
// layer re-exports these types for its callers.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace tempest::common {

struct FilterRule {
  std::string symbol;  ///< raw (mangled) name, matching the ELF symtab
  std::string reason;  ///< advisory; round-trips through the file
};

inline bool operator==(const FilterRule& a, const FilterRule& b) {
  return a.symbol == b.symbol && a.reason == b.reason;
}

struct FilterFile {
  std::vector<FilterRule> rules;
};

/// Emit the canonical file form (version header, one directive per rule).
void write_filter_file(std::ostream& out, const FilterFile& filter);
Status write_filter_file(const std::string& path, const FilterFile& filter);

/// Parse a filter file. Unknown directives and directives without a
/// symbol are errors naming the line number.
Result<FilterFile> read_filter_file(std::istream& in);
Result<FilterFile> read_filter_file(const std::string& path);

}  // namespace tempest::common
