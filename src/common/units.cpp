#include "common/units.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace tempest {

const char* unit_suffix(TempUnit unit) { return unit == TempUnit::kCelsius ? "C" : "F"; }

bool parse_temp_unit(const std::string& text, TempUnit* out) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "c" || lower == "celsius") {
    *out = TempUnit::kCelsius;
    return true;
  }
  if (lower == "f" || lower == "fahrenheit") {
    *out = TempUnit::kFahrenheit;
    return true;
  }
  return false;
}

double quantize(double value, double step) {
  if (step <= 0.0) return value;
  return std::round(value / step) * step;
}

}  // namespace tempest
