#include "common/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <thread>

#include "common/env.hpp"

namespace tempest::cli {

void ArgParser::add_flag(const std::string& name, std::function<void()> fn) {
  Option opt;
  opt.name = name;
  opt.kind = Kind::kFlag;
  opt.on_flag = std::move(fn);
  options_.push_back(std::move(opt));
}

void ArgParser::add_value(const std::string& name,
                          std::function<Status(const std::string&)> fn) {
  Option opt;
  opt.name = name;
  opt.kind = Kind::kValue;
  opt.on_value = std::move(fn);
  options_.push_back(std::move(opt));
}

void ArgParser::add_optional_value(const std::string& name,
                                   std::function<void(const std::string*)> fn) {
  Option opt;
  opt.name = name;
  opt.kind = Kind::kOptionalValue;
  opt.on_optional = std::move(fn);
  options_.push_back(std::move(opt));
}

Status ArgParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      return Status::ok();
    }
    if (arg.empty() || arg[0] != '-' || arg == "-") {
      positional_.push_back(arg);
      continue;
    }
    // --name=value attaches the value inline; split before matching so
    // both spellings hit the same option table.
    std::string name = arg;
    std::optional<std::string> inline_value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    const Option* match = nullptr;
    for (const Option& opt : options_) {
      if (opt.name == name) {
        match = &opt;
        break;
      }
    }
    if (match == nullptr) {
      return Status::error("unknown option " + name);
    }
    switch (match->kind) {
      case Kind::kFlag:
        if (inline_value) {
          return Status::error(name + " takes no value");
        }
        match->on_flag();
        break;
      case Kind::kValue: {
        std::string value;
        if (inline_value) {
          value = *inline_value;
        } else {
          if (i + 1 >= argc) {
            return Status::error("missing value for " + name);
          }
          value = argv[++i];
        }
        const Status handled = match->on_value(value);
        if (!handled) return handled;
        break;
      }
      case Kind::kOptionalValue: {
        if (inline_value) {
          match->on_optional(&*inline_value);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
          const std::string value = argv[++i];
          match->on_optional(&value);
        } else {
          match->on_optional(nullptr);
        }
        break;
      }
    }
  }
  return Status::ok();
}

void ArgParser::print_usage(std::ostream& os, const char* argv0) const {
  os << "usage: " << argv0 << " " << usage_ << "\n";
}

Status parse_size(const std::string& value, std::size_t* out) {
  if (value.empty()) return Status::error("expected a number, got ''");
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::error("number out of range: '" + value + "'");
  }
  if (end == value.c_str() || *end != '\0' || value[0] == '-') {
    return Status::error("expected a number, got '" + value + "'");
  }
  *out = static_cast<std::size_t>(parsed);
  return Status::ok();
}

Status parse_double(const std::string& value, double* out) {
  if (value.empty()) return Status::error("expected a number, got ''");
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (errno == ERANGE) {
    return Status::error("number out of range: '" + value + "'");
  }
  if (end == value.c_str() || *end != '\0' || !std::isfinite(parsed)) {
    return Status::error("expected a number, got '" + value + "'");
  }
  *out = parsed;
  return Status::ok();
}

unsigned default_analysis_threads() {
  const long from_env = env_long("TEMPEST_ANALYSIS_THREADS", 0);
  if (from_env > 0) return static_cast<unsigned>(from_env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

void print_version(std::ostream& os, const std::string& tool,
                   std::uint32_t trace_format_version) {
#ifdef TEMPEST_BUILD_TYPE
  const char* build_type = TEMPEST_BUILD_TYPE;
#else
  const char* build_type = "unknown";
#endif
  os << tool << " (tempest) trace format v" << trace_format_version << ", "
     << (build_type[0] != '\0' ? build_type : "unknown") << " build\n";
}

}  // namespace tempest::cli
