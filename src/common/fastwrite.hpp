// Shared zero-snprintf text formatting for the hot output paths.
//
// Every exporter and report emitter used to format numbers through its
// own snprintf/ostream calls — per-event, locale-aware, and slow. This
// layer funnels them through std::to_chars (integers, fixed-point and
// %g-style doubles are all correctly rounded and match printf's "C"
// locale output byte for byte), appends into caller-owned strings so
// fragments can be preformatted once and memcpy'd per event, and ships
// a coarse buffered writer so streams see 256 KiB appends instead of
// per-record write calls.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

namespace tempest::fastwrite {

/// Decimal integer append (equivalent to printf "%llu" / "%lld").
void append_u64(std::string& out, std::uint64_t v);
void append_i64(std::string& out, std::int64_t v);

/// Lowercase hex append without a "0x" prefix (printf "%llx").
void append_hex(std::string& out, std::uint64_t v);

/// Fixed-point append, byte-identical to printf("%.*f", decimals, v)
/// in the "C" locale (std::to_chars fixed is specified as exactly
/// that). Non-finite values come out as printf does: inf/-inf/nan.
void append_fixed(std::string& out, double v, int decimals);

/// Shortest-form append matching printf("%.*g", precision, v) — which
/// is also what a default-formatted ostream produces for doubles at
/// precision 6 (the CSV series emitter depends on that equivalence).
void append_general(std::string& out, double v, int precision = 6);

/// Space-pad `text` to `width` (std::setw semantics: no truncation,
/// left- or right-aligned).
void append_padded(std::string& out, std::string_view text, std::size_t width,
                   bool left_align);

/// Coarse write-behind buffer in front of a std::ostream. Appends are
/// memcpys into a byte buffer flushed in `capacity`-sized writes; an
/// oversized append bypasses the buffer. bytes_written() counts every
/// byte accepted (buffered or flushed) so exporters can report exact
/// output sizes without a final flush-and-tell dance.
class BufferedWriter {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{256} << 10;

  explicit BufferedWriter(std::ostream& out,
                          std::size_t capacity = kDefaultCapacity)
      : out_(&out), capacity_(capacity == 0 ? kDefaultCapacity : capacity) {
    buf_.reserve(capacity_);
  }
  ~BufferedWriter() { flush(); }

  BufferedWriter(const BufferedWriter&) = delete;
  BufferedWriter& operator=(const BufferedWriter&) = delete;

  void append(std::string_view s) {
    total_ += s.size();
    if (buf_.size() + s.size() > capacity_) {
      flush();
      if (s.size() >= capacity_) {  // oversized: straight through
        out_->write(s.data(), static_cast<std::streamsize>(s.size()));
        return;
      }
    }
    buf_.append(s.data(), s.size());
  }

  void append(char c) {
    ++total_;
    if (buf_.size() + 1 > capacity_) flush();
    buf_.push_back(c);
  }

  void flush() {
    if (!buf_.empty()) {
      out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
      buf_.clear();
    }
  }

  /// Bytes accepted so far (includes bytes still sitting in the buffer).
  std::uint64_t bytes_written() const { return total_; }

 private:
  std::ostream* out_;
  std::size_t capacity_;
  std::string buf_;
  std::uint64_t total_ = 0;
};

}  // namespace tempest::fastwrite
