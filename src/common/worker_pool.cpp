#include "common/worker_pool.hpp"

#include <algorithm>

namespace tempest {

WorkerPool::WorkerPool(unsigned workers) {
  if (workers <= 1) return;
  threads_.reserve(workers - 1);
  for (unsigned i = 1; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    common::MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::drain_slices(
    const std::function<void(std::size_t, std::size_t)>& fn, std::size_t n,
    std::size_t slice) {
  for (;;) {
    const std::size_t begin = cursor_.fetch_add(slice, std::memory_order_relaxed);
    if (begin >= n) return;
    fn(begin, std::min(begin + slice, n));
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t slice = 0;
    {
      common::MutexLock lock(&mu_);
      while (!stop_ && generation_ == seen) work_cv_.wait(mu_);
      if (stop_) return;
      seen = generation_;
      fn = job_;
      n = job_n_;
      slice = job_slice_;
    }
    drain_slices(*fn, n, slice);
    {
      common::MutexLock lock(&mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::for_slices(
    std::size_t n, std::size_t min_per_slice,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  min_per_slice = std::max<std::size_t>(1, min_per_slice);
  // Not worth waking anyone for: run on the caller.
  if (threads_.empty() || n <= min_per_slice) {
    fn(0, n);
    return;
  }
  common::MutexLock submit(&submit_mu_);
  // Aim for a few slices per worker (tail balancing) without dropping
  // below the caller's amortisation floor.
  const std::size_t target = std::size_t{size()} * 4;
  const std::size_t slice = std::max(min_per_slice, (n + target - 1) / target);
  {
    common::MutexLock lock(&mu_);
    job_ = &fn;
    job_n_ = n;
    job_slice_ = slice;
    cursor_.store(0, std::memory_order_relaxed);
    active_ = static_cast<unsigned>(threads_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  drain_slices(fn, n, slice);
  {
    common::MutexLock lock(&mu_);
    while (active_ != 0) done_cv_.wait(mu_);
  }
}

}  // namespace tempest
