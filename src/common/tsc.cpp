#include "common/tsc.hpp"

#include <chrono>
#include <mutex>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace tempest {
namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double calibrate() {
#if defined(__x86_64__) || defined(__i386__)
  // Two spins: the first warms caches/branch predictors, the second is
  // the measurement. 20 ms keeps startup cheap while bounding relative
  // error well under the paper's 5% run-to-run variance.
  double rate = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    const std::uint64_t t0_ns = steady_ns();
    const std::uint64_t t0 = rdtsc();
    while (steady_ns() - t0_ns < 20'000'000) {
    }
    const std::uint64_t t1 = rdtsc();
    const std::uint64_t t1_ns = steady_ns();
    rate = static_cast<double>(t1 - t0) / (static_cast<double>(t1_ns - t0_ns) * 1e-9);
  }
  return rate;
#else
  return 1e9;  // fallback clock ticks in nanoseconds
#endif
}

}  // namespace

std::uint64_t rdtsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return steady_ns();
#endif
}

double tsc_ticks_per_second() {
  static const double rate = [] {
    static std::once_flag flag;
    static double value = 0.0;
    std::call_once(flag, [] { value = calibrate(); });
    return value;
  }();
  return rate;
}

double tsc_to_seconds(std::uint64_t ticks) {
  return static_cast<double>(ticks) / tsc_ticks_per_second();
}

std::uint64_t seconds_to_tsc(double seconds) {
  return static_cast<std::uint64_t>(seconds * tsc_ticks_per_second());
}

}  // namespace tempest
