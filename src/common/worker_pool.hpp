// Persistent worker pool for blocking parallel-for over index ranges.
//
// The analysis fast path needs the same fork/join shape in several
// places (bulk record decode, per-shard timeline folds) without paying
// a thread spawn per call, so the pool keeps its threads parked on a
// condition variable between jobs. for_slices is deliberately minimal:
// contiguous [begin, end) slices handed out through an atomic cursor,
// the calling thread participates, and the call returns only when every
// slice has run — no futures, no task graph.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace tempest {

class WorkerPool {
 public:
  /// Spawns `workers - 1` threads (the caller is the remaining worker);
  /// `workers <= 1` spawns none and for_slices runs inline.
  explicit WorkerPool(unsigned workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total workers including the calling thread.
  unsigned size() const { return static_cast<unsigned>(threads_.size()) + 1; }

  /// Run fn(begin, end) over a partition of [0, n) and return when all
  /// slices are done. Slices hold at least `min_per_slice` indices (the
  /// final one may be short), so tiny inputs run inline on the caller.
  /// Safe to call from multiple threads; calls serialise.
  void for_slices(std::size_t n, std::size_t min_per_slice,
                  const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();
  void drain_slices(const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t n, std::size_t slice);

  std::vector<std::thread> threads_;
  common::Mutex submit_mu_;  ///< serialises concurrent for_slices callers

  common::Mutex mu_;
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  std::uint64_t generation_ GUARDED_BY(mu_) = 0;
  unsigned active_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;

  // Current job; written under mu_ before the generation bump publishes
  // it, read by workers after they observe the new generation.
  const std::function<void(std::size_t, std::size_t)>* job_ GUARDED_BY(mu_) =
      nullptr;
  std::size_t job_n_ GUARDED_BY(mu_) = 0;
  std::size_t job_slice_ GUARDED_BY(mu_) = 0;
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace tempest
