// Declarative command-line option parsing shared by the Tempest tools.
//
// Replaces each tool's hand-rolled argv loop, which silently treated
// unknown flags as trace paths and parsed "--top banana" as 0. Options
// register a handler; parse() walks argv once, rejects unknown options
// and missing/invalid values with an actionable Status (tools print it
// plus usage and exit 2), and collects the rest as positionals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace tempest::cli {

class ArgParser {
 public:
  /// `usage` is the option synopsis printed after "usage: <argv0> ".
  explicit ArgParser(std::string usage) : usage_(std::move(usage)) {}

  /// --name (no value).
  void add_flag(const std::string& name, std::function<void()> fn);

  /// --name VALUE; the handler may reject the value with an error
  /// Status, which parse() returns verbatim.
  void add_value(const std::string& name,
                 std::function<Status(const std::string&)> fn);

  /// --name [VALUE]: the next argv entry is consumed as the value only
  /// when present and not itself an option. The handler receives
  /// nullptr when the value was omitted.
  void add_optional_value(const std::string& name,
                          std::function<void(const std::string*)> fn);

  /// Walk argv. -h/--help set help_requested() and stop parsing (tools
  /// print usage and exit 2, the historical contract). Anything not
  /// starting with '-' is collected as a positional argument. Values
  /// attach either as the next argv entry or inline as --name=value;
  /// the inline form is an error for plain flags.
  Status parse(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }
  bool help_requested() const { return help_; }

  void print_usage(std::ostream& os, const char* argv0) const;

 private:
  enum class Kind { kFlag, kValue, kOptionalValue };
  struct Option {
    std::string name;
    Kind kind = Kind::kFlag;
    std::function<void()> on_flag;
    std::function<Status(const std::string&)> on_value;
    std::function<void(const std::string*)> on_optional;
  };

  std::string usage_;
  std::vector<Option> options_;
  std::vector<std::string> positional_;
  bool help_ = false;
};

/// Strict non-negative integer parse: rejects empty, trailing garbage,
/// and overflow ("--top banana" must be an error, not 0).
Status parse_size(const std::string& value, std::size_t* out);

/// Strict finite-double parse with the same rejection rules; negative
/// values are accepted (callers range-check their own options).
Status parse_double(const std::string& value, double* out);

/// Default worker count for --threads: TEMPEST_ANALYSIS_THREADS when
/// set to a positive value, else the hardware concurrency (minimum 1,
/// also the floor when the runtime cannot report a count). Shared by
/// every CLI that drives the parallel analysis pipeline so the env
/// override means the same thing everywhere.
unsigned default_analysis_threads();

/// Shared --version output: one line naming the tool, the trace format
/// version it reads/writes, and the build type it was compiled as.
/// Every Tempest CLI routes --version here so the fields stay aligned
/// across tools (scripts parse the "trace format v<N>" token to check
/// recorder/analyzer compatibility).
void print_version(std::ostream& os, const std::string& tool,
                   std::uint32_t trace_format_version);

}  // namespace tempest::cli
