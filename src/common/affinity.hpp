// CPU affinity binding.
//
// Tempest compensates for cross-core TSC skew by binding the profiled
// application to one processor/core for the duration of execution
// (paper §3.3). These helpers wrap sched_setaffinity for that purpose.
#pragma once

#include "common/status.hpp"

namespace tempest {

/// Pin the calling thread to `cpu` (logical index). Returns an error
/// status when the kernel rejects the mask (e.g. cpu out of range).
Status bind_current_thread_to_cpu(int cpu);

/// Number of logical CPUs currently available to this process.
int online_cpu_count();

}  // namespace tempest
