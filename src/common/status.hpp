// Minimal error-handling vocabulary used across Tempest.
//
// Sensor reads, trace I/O and ELF parsing can all fail for environmental
// reasons (missing /sys files, truncated traces); exceptions are reserved
// for programming errors, so fallible leaf operations return Status or
// Result<T>.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace tempest {

/// Outcome of an operation that produces no value.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  static Status ok() { return Status{}; }
  static Status error(std::string message) { return Status{std::move(message)}; }

  bool is_ok() const { return !message_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  /// Message of a failed status; empty string when OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::optional<std::string> message_;
};

/// Outcome of an operation that produces a T on success.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  static Result error(std::string message) { return Result{Status::error(std::move(message))}; }

  bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    if (!value_) throw std::logic_error("Result::value on error: " + status_.message());
    return *value_;
  }
  T&& value() && {
    if (!value_) throw std::logic_error("Result::value on error: " + status_.message());
    return std::move(*value_);
  }
  T value_or(T fallback) const { return value_ ? *value_ : std::move(fallback); }

  const Status& status() const { return status_; }
  const std::string& message() const { return status_.message(); }

 private:
  explicit Result(Status status) : status_(std::move(status)) {}
  Status status_;
  std::optional<T> value_;
};

}  // namespace tempest
