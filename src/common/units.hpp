// Temperature unit handling.
//
// The thermal model works in Celsius (SI-adjacent, matches hwmon's
// millidegree convention); the paper reports everything in Fahrenheit, so
// reports convert at the presentation layer only.
#pragma once

#include <string>

namespace tempest {

enum class TempUnit { kCelsius, kFahrenheit };

constexpr double celsius_to_fahrenheit(double c) { return c * 9.0 / 5.0 + 32.0; }
constexpr double fahrenheit_to_celsius(double f) { return (f - 32.0) * 5.0 / 9.0; }

/// Convert a Celsius reading into the requested display unit.
constexpr double to_unit(double celsius, TempUnit unit) {
  return unit == TempUnit::kCelsius ? celsius : celsius_to_fahrenheit(celsius);
}

/// "F" or "C"; used in report headers.
const char* unit_suffix(TempUnit unit);

/// Parse "C"/"celsius"/"F"/"fahrenheit" (case-insensitive).
bool parse_temp_unit(const std::string& text, TempUnit* out);

/// Quantise a reading to a sensor's step (e.g. 1.0 °F diode granularity,
/// 0.5 °C hwmon granularity). step <= 0 means no quantisation.
double quantize(double value, double step);

}  // namespace tempest
