#include "common/filter_file.hpp"

#include <fstream>
#include <sstream>

namespace tempest::common {
namespace {

constexpr const char* kVersionLine = "# TEMPEST_FILTER v1";

/// Strip leading/trailing spaces and tabs.
std::string trim(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return {};
  const std::size_t last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

}  // namespace

void write_filter_file(std::ostream& out, const FilterFile& filter) {
  out << kVersionLine << "\n";
  for (const FilterRule& rule : filter.rules) {
    out << "suppress " << rule.symbol;
    if (!rule.reason.empty()) out << "  # " << rule.reason;
    out << "\n";
  }
}

Status write_filter_file(const std::string& path, const FilterFile& filter) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::error("cannot write filter file " + path);
  write_filter_file(out, filter);
  out.flush();
  if (!out) return Status::error("write failed for filter file " + path);
  return Status::ok();
}

Result<FilterFile> read_filter_file(std::istream& in) {
  FilterFile filter;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string text = trim(line);
    if (text.empty() || text[0] == '#') continue;

    std::istringstream fields(text);
    std::string directive;
    fields >> directive;
    if (directive != "suppress") {
      return Result<FilterFile>::error("filter line " + std::to_string(line_no) +
                                       ": unknown directive '" + directive + "'");
    }
    FilterRule rule;
    fields >> rule.symbol;
    if (rule.symbol.empty() || rule.symbol[0] == '#') {
      return Result<FilterFile>::error("filter line " + std::to_string(line_no) +
                                       ": suppress needs a symbol name");
    }
    std::string rest;
    std::getline(fields, rest);
    const std::size_t hash = rest.find('#');
    if (hash != std::string::npos) rule.reason = trim(rest.substr(hash + 1));
    filter.rules.push_back(std::move(rule));
  }
  return filter;
}

Result<FilterFile> read_filter_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Result<FilterFile>::error("cannot open filter file " + path);
  return read_filter_file(in);
}

}  // namespace tempest::common
