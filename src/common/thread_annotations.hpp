// Clang thread-safety annotations (a.k.a. capability analysis).
//
// Tempest's concurrency surface is small but hot: lock-free per-thread
// event buffers registered through a mutex, the tempd sampler thread,
// and the message-passing world. These macros let Clang prove at
// compile time (-Wthread-safety) that every access to a lock-protected
// member actually holds the protecting lock. Under GCC (which has no
// capability analysis) they expand to nothing, so the annotations are
// free documentation.
//
// Because libstdc++'s std::mutex is not a capability type, annotating
// members with GUARDED_BY(std::mutex) would itself warn under Clang.
// We therefore provide tempest::common::Mutex — a trivial annotated
// wrapper — plus MutexLock, the RAII guard the analysis understands.
// Mutex is BasicLockable, so std::condition_variable_any waits on it
// directly.
//
// Usage:
//   class Registry {
//    public:
//     void add(Item item) EXCLUDES(mu_) {
//       MutexLock lock(&mu_);
//       items_.push_back(std::move(item));
//     }
//    private:
//     common::Mutex mu_;
//     std::vector<Item> items_ GUARDED_BY(mu_);
//   };
#pragma once

#include <mutex>

#if defined(__clang__)
#define TEMPEST_TS_ATTR(x) __attribute__((x))
#else
#define TEMPEST_TS_ATTR(x)  // no-op under GCC and others
#endif

#define CAPABILITY(x) TEMPEST_TS_ATTR(capability(x))
#define SCOPED_CAPABILITY TEMPEST_TS_ATTR(scoped_lockable)
#define GUARDED_BY(x) TEMPEST_TS_ATTR(guarded_by(x))
#define PT_GUARDED_BY(x) TEMPEST_TS_ATTR(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) TEMPEST_TS_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) TEMPEST_TS_ATTR(acquired_after(__VA_ARGS__))
#define REQUIRES(...) TEMPEST_TS_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) TEMPEST_TS_ATTR(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) TEMPEST_TS_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) TEMPEST_TS_ATTR(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) TEMPEST_TS_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) TEMPEST_TS_ATTR(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) TEMPEST_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) TEMPEST_TS_ATTR(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) TEMPEST_TS_ATTR(assert_capability(x))
#define RETURN_CAPABILITY(x) TEMPEST_TS_ATTR(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS TEMPEST_TS_ATTR(no_thread_safety_analysis)

namespace tempest::common {

/// std::mutex with the capability attribute the analysis needs.
/// BasicLockable (lock/unlock/try_lock), so it composes with
/// std::condition_variable_any.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock guard the analysis tracks (std::lock_guard is opaque to it).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace tempest::common
