#include "diff/trend.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <thread>

#include "collectd/profile_client.hpp"
#include "common/fastwrite.hpp"
#include "report/json.hpp"

namespace tempest::diff {
namespace {

void append_time(std::string& out, double v) {
  fastwrite::append_fixed(out, v, 9);
}

void write_header(std::ostream& out, const char* mode, std::size_t runs) {
  std::string buf = "{\"schema\":\"tempest-diff-trend\",\"schema_version\":1,";
  buf += "\"mode\":\"";
  buf += mode;
  buf += "\",\"runs\":";
  fastwrite::append_u64(buf, runs);
  buf += "}\n";
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void write_entry(std::ostream& out, std::size_t run, const std::string& source,
                 const std::string& function, std::uint64_t calls,
                 double total_time_s, const parser::TimeStats* time,
                 const std::uint64_t* sessions) {
  std::string buf = "{\"run\":";
  fastwrite::append_u64(buf, run);
  buf += ",\"source\":";
  report::append_json_string(&buf, source);
  buf += ",\"function\":";
  report::append_json_string(&buf, function);
  buf += ",\"calls\":";
  fastwrite::append_u64(buf, calls);
  buf += ",\"total_time_s\":";
  append_time(buf, total_time_s);
  if (time != nullptr) {
    buf += ",\"activations\":";
    fastwrite::append_u64(buf, time->count);
    buf += ",\"time_mean_s\":";
    append_time(buf, time->mean_s);
    buf += ",\"time_sdv_s\":";
    append_time(buf, time->sdv_s);
  }
  if (sessions != nullptr) {
    buf += ",\"sessions\":";
    fastwrite::append_u64(buf, *sessions);
  }
  buf += "}\n";
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

/// Pool one run across nodes the same way the diff aligns it, so the
/// series keys match `tempest-diff` output keys.
struct SeriesRow {
  std::uint64_t calls = 0;
  double total_time_s = 0.0;
  parser::TimeStats time;
};

std::map<std::string, SeriesRow> pool_for_series(
    const parser::RunProfile& profile) {
  std::map<std::string, SeriesRow> rows;
  for (const auto& node : profile.nodes) {
    for (const auto& fn : node.functions) {
      std::string key = fn.name;
      if (key.empty() || key == "<unknown>") {
        char buf[2 + 16 + 2];
        std::snprintf(buf, sizeof buf, "@0x%llx",
                      static_cast<unsigned long long>(fn.addr));
        key = buf;
      }
      SeriesRow& row = rows[key];
      // Combine per-activation stats across nodes via exact-enough
      // pooled moments (same Chan combine the diff pool uses).
      const double n0 = static_cast<double>(row.time.count);
      const double n1 = static_cast<double>(fn.time.count);
      if (n1 > 0.0) {
        const double total = n0 + n1;
        const double m2 = row.time.var_s2 * n0 + fn.time.var_s2 * n1 +
                          (fn.time.mean_s - row.time.mean_s) *
                              (fn.time.mean_s - row.time.mean_s) * n0 * n1 /
                              total;
        row.time.mean_s += (fn.time.mean_s - row.time.mean_s) * n1 / total;
        row.time.var_s2 = m2 / total;
        row.time.sdv_s = std::sqrt(row.time.var_s2);
        row.time.count += fn.time.count;
      }
      row.calls += fn.calls;
      row.total_time_s += fn.total_time_s;
    }
  }
  return rows;
}

}  // namespace

Status write_trend(const std::vector<std::string>& paths, std::ostream& out,
                   const TrendOptions& options) {
  if (paths.size() < 2) {
    return Status::error("trend mode needs at least 2 runs");
  }
  write_header(out, "files", paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    auto run = load_run(paths[i], options.load);
    if (!run.is_ok()) return Status::error(run.message());
    const auto rows = pool_for_series(run.value().profile);

    std::vector<std::pair<std::string, const SeriesRow*>> ordered;
    ordered.reserve(rows.size());
    for (const auto& [key, row] : rows) ordered.emplace_back(key, &row);
    std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
      if (a.second->total_time_s != b.second->total_time_s) {
        return a.second->total_time_s > b.second->total_time_s;
      }
      return a.first < b.first;
    });
    if (options.top > 0 && ordered.size() > options.top) {
      ordered.resize(options.top);
    }
    for (const auto& [key, row] : ordered) {
      write_entry(out, i, paths[i], key, row->calls, row->total_time_s,
                  &row->time, nullptr);
    }
  }
  return Status::ok();
}

Status write_trend_poll(const PollOptions& options, std::ostream& out) {
  if (options.count < 1) return Status::error("poll count must be at least 1");
  write_header(out, "poll", options.count);
  for (std::size_t i = 0; i < options.count; ++i) {
    if (i > 0 && options.interval_s > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.interval_s));
    }
    auto view = collectd::fetch_fleet_profile(options.endpoint, options.top,
                                              options.timeout_s);
    if (!view.is_ok()) return Status::error(view.message());
    for (const auto& fn : view.value().functions) {
      write_entry(out, i, options.endpoint, fn.name, fn.calls, fn.total_time_s,
                  nullptr, &fn.sessions);
    }
    out.flush();  // tailers read poll mode live
  }
  return Status::ok();
}

}  // namespace tempest::diff
