// Differential profiling: what changed between two runs.
//
// The paper mandates Sdv/Var next to every mean precisely so deltas can
// be judged: a 5% time shift means nothing without the spread it moved
// against. tempest-diff aligns two analyzed profiles by function key
// (symbol name primary, address fallback, tolerant of functions the
// FLTR trailer declares filter-suppressed), computes per-function
// call/time/temperature deltas, scores each with a Welch-style t
// statistic over the per-activation duration stats (and per-sensor
// temperature stats) the profiles already carry, and ranks significant
// regressions and improvements. Functions below the confidence
// threshold are reported but never ranked — inclusive attribution means
// `main` regresses whenever any child does, but with one activation it
// has no variance and therefore no rankable evidence, which is exactly
// the behaviour that keeps leaf culprits at the top. (DESIGN.md §15.)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "parser/profile.hpp"
#include "trace/trace.hpp"

namespace tempest::diff {

/// One analyzed run: the AnalysisPipeline profile plus the trailer
/// metadata the diff needs (RUNSTATS for context, FLTR for suppressed-
/// function tolerance).
struct RunSummary {
  std::string source;  ///< trace path (or label) the run came from
  parser::RunProfile profile;
  trace::RunStats run_stats;
  trace::FilterDecl filter;
};

struct LoadOptions {
  parser::ProfileOptions profile;
  bool align = true;
  std::string exe_override;
  unsigned threads = 1;
};

/// Read + align + analyze one trace file through the batch
/// AnalysisPipeline — the same fold `tempest_parse` runs, so a diff of
/// a run against itself is a diff of identical numbers.
Result<RunSummary> load_run(const std::string& path, const LoadOptions& options);

/// Welch's unequal-variance t-test between two populations described by
/// (mean, population variance, count). Confidence is 1 - p for the
/// two-tailed test (Student-t CDF via the regularized incomplete beta,
/// self-contained). Not computable (confidence 0) when either side has
/// fewer than 2 samples; a zero-variance exact difference is confidence
/// 1 (deterministic change).
struct WelchResult {
  double t = 0.0;
  double dof = 0.0;
  double confidence = 0.0;
  bool computable = false;
};
WelchResult welch_compare(double mean_a, double var_a, double n_a,
                          double mean_b, double var_b, double n_b);

/// Regularized incomplete beta I_x(a, b) — exposed for tests.
double reg_incomplete_beta(double a, double b, double x);

/// How a function key aligned across the two runs.
enum class MatchStatus {
  kMatched,          ///< present in both runs
  kBaselineOnly,     ///< vanished in the current run
  kCurrentOnly,      ///< appeared in the current run
  kFilteredBase,     ///< absent in baseline, declared in its FLTR trailer
  kFilteredCurrent,  ///< absent in current, declared in its FLTR trailer
};

const char* match_status_name(MatchStatus status);

/// One side's pooled numbers for an aligned function (pooled across
/// nodes unless DiffOptions::per_node).
struct FunctionSide {
  bool present = false;
  std::uint64_t calls = 0;
  double total_time_s = 0.0;
  parser::TimeStats time;  ///< pooled per-activation duration stats
};

struct SensorDelta {
  std::string name;
  std::size_t base_count = 0;
  std::size_t cur_count = 0;
  double base_avg = 0.0;
  double cur_avg = 0.0;
  double delta_avg = 0.0;
  double confidence = 0.0;  ///< Welch over the sensor stats
  bool significant = false;
};

struct FunctionDelta {
  std::string key;  ///< symbol name, or "@0x<addr>" for unresolved
  std::uint16_t node_id = 0;  ///< meaningful only with per_node
  MatchStatus status = MatchStatus::kMatched;
  FunctionSide base;
  FunctionSide cur;
  double delta_time_s = 0.0;  ///< cur.total_time_s - base.total_time_s
  std::int64_t delta_calls = 0;
  double rel_change = 0.0;  ///< delta / base total (+inf for appearances)
  double t_stat = 0.0;      ///< Welch t over per-activation durations
  double confidence = 0.0;  ///< max of time and sensor confidences
  bool significant = false;  ///< confidence and delta floors both passed
  /// The time evidence itself cleared the gates (not just a sensor).
  /// Ranked lists order time-significant entries before sensor-only
  /// ones regardless of |delta|: an inclusive ancestor with one
  /// activation can show a huge time delta and a significant thermal
  /// shift, but without rankable time evidence it must not outrank the
  /// leaf whose per-activation Welch test actually pinned the change.
  bool time_significant = false;
  std::vector<SensorDelta> sensors;
};

struct DiffOptions {
  /// Rank only deltas at or above this confidence (1 - p).
  double min_confidence = 0.95;
  /// Absolute and relative floors a time delta must also clear; both
  /// default permissive (the t-test is the primary gate).
  double min_time_delta_s = 0.0;
  double min_rel_change = 0.01;
  /// Floor for a sensor average delta, in the profile's display unit.
  double min_temp_delta = 0.1;
  /// Align per (node, function) instead of pooling across nodes.
  bool per_node = false;
};

struct DiffResult {
  std::string base_label;
  std::string cur_label;
  DiffOptions options;
  /// Significant deltas, regressions (time grew) and improvements (time
  /// shrank), each sorted by |delta_time_s| descending.
  std::vector<FunctionDelta> regressions;
  std::vector<FunctionDelta> improvements;
  /// Below-confidence or below-floor deltas: reported, never ranked.
  std::vector<FunctionDelta> insignificant;
  /// Functions absent on one side but declared by that side's FLTR
  /// trailer — tolerated, not treated as appear/vanish regressions.
  std::size_t filtered_tolerated = 0;
};

/// Align and score `cur` against `base`.
DiffResult diff_runs(const RunSummary& base, const RunSummary& cur,
                     const DiffOptions& options);

/// Human-readable ranking (regressions, improvements, then a short
/// insignificant summary).
void write_diff_text(std::ostream& out, const DiffResult& result);

/// Machine-readable dump of the same ranking.
void write_diff_json(std::ostream& out, const DiffResult& result);

}  // namespace tempest::diff
