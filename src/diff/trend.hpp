// Trend mode: per-function time series across many runs.
//
// tempest-collectd makes runs plentiful; the question shifts from "what
// changed between A and B" to "what is drifting". Trend mode walks an
// ordered list of trace files (or polls a live collector's /profile at
// an interval) and emits one JSONL series entry per run per surviving
// function — a shape `tempest-top`-style tailers and offline plotters
// consume without holding more than one line in memory.
//
// Schema (version 1): the first line is a header object
//   {"schema":"tempest-diff-trend","schema_version":1,"mode":...,"runs":N}
// and every following line one observation
//   {"run":i,"source":...,"function":...,"calls":...,"total_time_s":...,
//    "activations":...,"time_mean_s":...,"time_sdv_s":...}
// (poll mode adds "sessions" and omits activation stats the endpoint
// does not aggregate).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "diff/diff.hpp"

namespace tempest::diff {

struct TrendOptions {
  LoadOptions load;
  /// Keep only the top-N functions per run by total time (0 = all).
  std::size_t top = 0;
};

/// Analyze each trace in order and stream the series to `out`.
Status write_trend(const std::vector<std::string>& paths, std::ostream& out,
                   const TrendOptions& options);

struct PollOptions {
  std::string endpoint;    ///< collector spec ("uds:/path" | "host:port")
  double interval_s = 1.0;
  std::size_t count = 3;   ///< number of polls (runs in the series)
  std::size_t top = 0;     ///< /profile?top=N (0 = server default)
  double timeout_s = 5.0;
};

/// Poll a live collector's /profile `count` times, `interval_s` apart,
/// emitting the same series schema with mode "poll".
Status write_trend_poll(const PollOptions& options, std::ostream& out);

}  // namespace tempest::diff
