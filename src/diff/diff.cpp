#include "diff/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <ostream>
#include <set>

#include "common/fastwrite.hpp"
#include "pipeline/analysis.hpp"
#include "report/json.hpp"
#include "trace/align.hpp"
#include "trace/reader.hpp"

namespace tempest::diff {
namespace {

/// Continued-fraction evaluation for the incomplete beta (modified
/// Lentz); converges in a few dozen iterations for the t-CDF arguments
/// this file produces.
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-12;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

/// Two-tailed p-value of Student's t with `dof` degrees of freedom:
/// p = I_{v/(v+t²)}(v/2, 1/2).
double student_two_tailed_p(double t_abs, double dof) {
  if (dof <= 0.0) return 1.0;
  const double x = dof / (dof + t_abs * t_abs);
  return reg_incomplete_beta(dof / 2.0, 0.5, x);
}

/// Streaming-combinable population moments (count, mean, M2 — the sum
/// of squared deviations). Chan's pairwise formula, so pooling node
/// profiles is order-independent up to float rounding; the pool
/// iterates the std::map key order, which is deterministic.
struct Moments {
  double n = 0.0;
  double mean = 0.0;
  double m2 = 0.0;

  void combine(double on, double omean, double om2) {
    if (on <= 0.0) return;
    if (n <= 0.0) {
      n = on;
      mean = omean;
      m2 = om2;
      return;
    }
    const double total = n + on;
    const double delta = omean - mean;
    mean += delta * on / total;
    m2 += om2 + delta * delta * n * on / total;
    n = total;
  }

  double variance() const { return n > 0.0 ? m2 / n : 0.0; }  // population
};

struct PooledFunction {
  std::uint64_t calls = 0;
  double total_time_s = 0.0;
  Moments time;  ///< per-activation duration, seconds
  std::map<std::string, Moments> sensors;
};

/// (node, key) -> pooled stats; node is always 0 when pooling across
/// nodes, so one map type serves both alignment modes.
using Pool = std::map<std::pair<std::uint16_t, std::string>, PooledFunction>;

std::string function_key(const parser::FunctionProfile& fn) {
  if (!fn.name.empty() && fn.name != "<unknown>") return fn.name;
  // Address fallback for unresolved symbols; '@' cannot start a mangled
  // or hex name, so fallback keys never collide with real symbols.
  char buf[2 + 16 + 2];
  std::snprintf(buf, sizeof buf, "@0x%llx",
                static_cast<unsigned long long>(fn.addr));
  return buf;
}

Pool pool_profile(const parser::RunProfile& profile, bool per_node) {
  Pool pool;
  for (const auto& node : profile.nodes) {
    for (const auto& fn : node.functions) {
      const std::uint16_t slot = per_node ? node.node_id : 0;
      PooledFunction& p = pool[{slot, function_key(fn)}];
      p.calls += fn.calls;
      p.total_time_s += fn.total_time_s;
      p.time.combine(static_cast<double>(fn.time.count), fn.time.mean_s,
                     fn.time.var_s2 * static_cast<double>(fn.time.count));
      for (const auto& sp : fn.sensors) {
        p.sensors[sp.name].combine(static_cast<double>(sp.sample_count),
                                   sp.stats.avg,
                                   sp.stats.var *
                                       static_cast<double>(sp.sample_count));
      }
    }
  }
  return pool;
}

bool filter_declares(const trace::FilterDecl& filter, const std::string& name) {
  if (!filter.present) return false;
  return std::find(filter.suppressed.begin(), filter.suppressed.end(), name) !=
         filter.suppressed.end();
}

FunctionSide side_from(const PooledFunction& p) {
  FunctionSide s;
  s.present = true;
  s.calls = p.calls;
  s.total_time_s = p.total_time_s;
  s.time.count = static_cast<std::uint64_t>(p.time.n);
  s.time.mean_s = p.time.mean;
  s.time.var_s2 = p.time.variance();
  s.time.sdv_s = std::sqrt(s.time.var_s2);
  return s;
}

void append_num6(std::string& out, double v) {
  fastwrite::append_fixed(out, v, 6);
}

/// Time fields get 9 digits: per-activation means are often sub-
/// microsecond and would flush to 0.000000 at the report precision.
void append_time(std::string& out, double v) {
  fastwrite::append_fixed(out, v, 9);
}

void append_delta_entry(std::string& buf, const FunctionDelta& d,
                        bool per_node) {
  buf += "{\"function\":";
  report::append_json_string(&buf, d.key);
  if (per_node) {
    buf += ",\"node_id\":";
    fastwrite::append_u64(buf, d.node_id);
  }
  buf += ",\"status\":\"";
  buf += match_status_name(d.status);
  buf += "\",\"delta_time_s\":";
  append_time(buf, d.delta_time_s);
  buf += ",\"delta_calls\":";
  if (d.delta_calls < 0) buf += "-";
  fastwrite::append_u64(buf, static_cast<std::uint64_t>(
                                 d.delta_calls < 0 ? -d.delta_calls
                                                   : d.delta_calls));
  buf += ",\"rel_change\":";
  if (std::isfinite(d.rel_change)) {
    append_num6(buf, d.rel_change);
  } else {
    buf += "null";
  }
  buf += ",\"t\":";
  if (std::isfinite(d.t_stat)) {
    append_num6(buf, d.t_stat);
  } else {
    buf += "null";
  }
  buf += ",\"confidence\":";
  append_num6(buf, d.confidence);
  buf += ",\"significant\":";
  buf += d.significant ? "true" : "false";
  buf += ",\"time_significant\":";
  buf += d.time_significant ? "true" : "false";
  for (const char* which : {"base", "cur"}) {
    const FunctionSide& s = which[0] == 'b' ? d.base : d.cur;
    buf += ",\"";
    buf += which;
    buf += "\":";
    if (!s.present) {
      buf += "null";
      continue;
    }
    buf += "{\"calls\":";
    fastwrite::append_u64(buf, s.calls);
    buf += ",\"total_time_s\":";
    append_time(buf, s.total_time_s);
    buf += ",\"activations\":";
    fastwrite::append_u64(buf, s.time.count);
    buf += ",\"time_mean_s\":";
    append_time(buf, s.time.mean_s);
    buf += ",\"time_sdv_s\":";
    append_time(buf, s.time.sdv_s);
    buf += "}";
  }
  buf += ",\"sensors\":[";
  for (std::size_t i = 0; i < d.sensors.size(); ++i) {
    const SensorDelta& sd = d.sensors[i];
    if (i > 0) buf += ",";
    buf += "{\"name\":";
    report::append_json_string(&buf, sd.name);
    buf += ",\"base_avg\":";
    append_num6(buf, sd.base_avg);
    buf += ",\"cur_avg\":";
    append_num6(buf, sd.cur_avg);
    buf += ",\"delta_avg\":";
    append_num6(buf, sd.delta_avg);
    buf += ",\"confidence\":";
    append_num6(buf, sd.confidence);
    buf += ",\"significant\":";
    buf += sd.significant ? "true" : "false";
    buf += "}";
  }
  buf += "]}";
}

void write_ranked_text(std::string& buf, const char* title,
                       const std::vector<FunctionDelta>& list) {
  buf += title;
  buf += " (";
  fastwrite::append_u64(buf, list.size());
  buf += "):\n";
  std::size_t rank = 1;
  for (const FunctionDelta& d : list) {
    buf += "  ";
    fastwrite::append_u64(buf, rank++);
    buf += ". ";
    buf += d.key;
    buf += "  ";
    if (d.delta_time_s >= 0.0) buf += "+";
    append_time(buf, d.delta_time_s);
    buf += " s";
    if (std::isfinite(d.rel_change)) {
      buf += " (";
      if (d.rel_change >= 0.0) buf += "+";
      append_num6(buf, d.rel_change * 100.0);
      buf += "%)";
    } else if (d.status == MatchStatus::kCurrentOnly) {
      buf += " (appeared)";
    } else if (d.status == MatchStatus::kBaselineOnly) {
      buf += " (vanished)";
    }
    buf += "  calls ";
    fastwrite::append_u64(buf, d.base.calls);
    buf += " -> ";
    fastwrite::append_u64(buf, d.cur.calls);
    buf += "  confidence ";
    append_num6(buf, d.confidence);
    buf += "\n";
  }
}

}  // namespace

double reg_incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

WelchResult welch_compare(double mean_a, double var_a, double n_a,
                          double mean_b, double var_b, double n_b) {
  WelchResult r;
  if (n_a < 2.0 || n_b < 2.0) return r;  // no spread estimate: not computable
  // The profiles carry population variance; Welch wants the unbiased
  // sample variance.
  const double sa2 = var_a * n_a / (n_a - 1.0);
  const double sb2 = var_b * n_b / (n_b - 1.0);
  const double se2 = sa2 / n_a + sb2 / n_b;
  r.computable = true;
  r.dof = n_a + n_b - 2.0;
  if (se2 <= 0.0) {
    // Zero spread on both sides: the difference (if any) is exact.
    if (mean_a == mean_b) return r;  // t = 0, confidence 0
    r.t = mean_b > mean_a ? std::numeric_limits<double>::infinity()
                          : -std::numeric_limits<double>::infinity();
    r.confidence = 1.0;
    return r;
  }
  r.t = (mean_b - mean_a) / std::sqrt(se2);
  const double den = (sa2 / n_a) * (sa2 / n_a) / (n_a - 1.0) +
                     (sb2 / n_b) * (sb2 / n_b) / (n_b - 1.0);
  if (den > 0.0) r.dof = se2 * se2 / den;  // Welch–Satterthwaite
  r.confidence = 1.0 - student_two_tailed_p(std::fabs(r.t), r.dof);
  return r;
}

const char* match_status_name(MatchStatus status) {
  switch (status) {
    case MatchStatus::kMatched: return "matched";
    case MatchStatus::kBaselineOnly: return "vanished";
    case MatchStatus::kCurrentOnly: return "appeared";
    case MatchStatus::kFilteredBase: return "filtered_baseline";
    case MatchStatus::kFilteredCurrent: return "filtered_current";
  }
  return "unknown";
}

Result<RunSummary> load_run(const std::string& path,
                            const LoadOptions& options) {
  auto loaded = trace::read_trace_file(path);
  if (!loaded.is_ok()) {
    return Result<RunSummary>::error(path + ": " + loaded.message());
  }
  trace::Trace tr = std::move(loaded).value();
  if (options.align) {
    const Status aligned = trace::align_clocks(&tr);
    if (!aligned) return Result<RunSummary>::error(path + ": " + aligned.message());
  } else {
    tr.sort_by_time();
  }

  pipeline::AnalysisOptions analysis;
  analysis.profile = options.profile;
  analysis.exe_override = options.exe_override;
  analysis.threads = options.threads;
  analysis.timeline_hint =
      std::min(tr.fn_events.size() / 8 + 16, std::size_t{1} << 16);
  pipeline::AnalysisPipeline fold(analysis);
  fold.set_metadata(tr);
  fold.set_bounds(tr.start_tsc(), tr.end_tsc());
  fold.add_fn_events(tr.fn_events.data(), tr.fn_events.size());
  fold.add_temp_samples(tr.temp_samples.data(), tr.temp_samples.size());
  pipeline::AnalysisResult result = fold.finish();

  RunSummary summary;
  summary.source = path;
  summary.profile = std::move(result.profile);
  summary.run_stats = result.run_stats;
  summary.filter = tr.filter;
  return summary;
}

DiffResult diff_runs(const RunSummary& base, const RunSummary& cur,
                     const DiffOptions& options) {
  DiffResult out;
  out.base_label = base.source;
  out.cur_label = cur.source;
  out.options = options;

  const Pool base_pool = pool_profile(base.profile, options.per_node);
  const Pool cur_pool = pool_profile(cur.profile, options.per_node);

  std::set<std::pair<std::uint16_t, std::string>> keys;
  for (const auto& [k, v] : base_pool) keys.insert(k);
  for (const auto& [k, v] : cur_pool) keys.insert(k);

  std::vector<FunctionDelta> significant;
  for (const auto& key : keys) {
    const auto bit = base_pool.find(key);
    const auto cit = cur_pool.find(key);
    FunctionDelta d;
    d.key = key.second;
    d.node_id = key.first;

    if (bit != base_pool.end()) d.base = side_from(bit->second);
    if (cit != cur_pool.end()) d.cur = side_from(cit->second);
    d.delta_time_s = d.cur.total_time_s - d.base.total_time_s;
    d.delta_calls = static_cast<std::int64_t>(d.cur.calls) -
                    static_cast<std::int64_t>(d.base.calls);

    if (bit == base_pool.end() || cit == cur_pool.end()) {
      // One-sided key. A FLTR declaration on the absent side means the
      // recorder deliberately suppressed it there — tolerated, never
      // ranked as a regression.
      const bool absent_in_cur = cit == cur_pool.end();
      const trace::FilterDecl& filter = absent_in_cur ? cur.filter : base.filter;
      if (filter_declares(filter, d.key)) {
        d.status = absent_in_cur ? MatchStatus::kFilteredCurrent
                                 : MatchStatus::kFilteredBase;
        ++out.filtered_tolerated;
        out.insignificant.push_back(std::move(d));
        continue;
      }
      d.status = absent_in_cur ? MatchStatus::kBaselineOnly
                               : MatchStatus::kCurrentOnly;
      d.rel_change = absent_in_cur ? -1.0
                                   : std::numeric_limits<double>::infinity();
      // An appearance/disappearance is a deterministic difference.
      d.confidence = 1.0;
      d.significant = std::fabs(d.delta_time_s) >= options.min_time_delta_s;
      d.time_significant = d.significant;
      if (d.significant) {
        significant.push_back(std::move(d));
      } else {
        out.insignificant.push_back(std::move(d));
      }
      continue;
    }

    d.status = MatchStatus::kMatched;
    d.rel_change = d.base.total_time_s > 0.0
                       ? d.delta_time_s / d.base.total_time_s
                       : (d.delta_time_s != 0.0
                              ? std::numeric_limits<double>::infinity()
                              : 0.0);

    const WelchResult time_welch = welch_compare(
        d.base.time.mean_s, d.base.time.var_s2,
        static_cast<double>(d.base.time.count), d.cur.time.mean_s,
        d.cur.time.var_s2, static_cast<double>(d.cur.time.count));
    d.t_stat = time_welch.t;
    d.confidence = time_welch.confidence;
    const bool time_significant =
        time_welch.confidence >= options.min_confidence &&
        std::fabs(d.delta_time_s) >= options.min_time_delta_s &&
        (d.base.total_time_s <= 0.0 ||
         std::fabs(d.rel_change) >= options.min_rel_change);

    bool sensor_significant = false;
    const PooledFunction& bp = bit->second;
    const PooledFunction& cp = cit->second;
    for (const auto& [sname, bm] : bp.sensors) {
      const auto cs = cp.sensors.find(sname);
      if (cs == cp.sensors.end()) continue;
      const Moments& cm = cs->second;
      SensorDelta sd;
      sd.name = sname;
      sd.base_count = static_cast<std::size_t>(bm.n);
      sd.cur_count = static_cast<std::size_t>(cm.n);
      sd.base_avg = bm.mean;
      sd.cur_avg = cm.mean;
      sd.delta_avg = cm.mean - bm.mean;
      const WelchResult w = welch_compare(bm.mean, bm.variance(), bm.n,
                                          cm.mean, cm.variance(), cm.n);
      sd.confidence = w.confidence;
      sd.significant = w.confidence >= options.min_confidence &&
                       std::fabs(sd.delta_avg) >= options.min_temp_delta;
      sensor_significant = sensor_significant || sd.significant;
      d.confidence = std::max(d.confidence, sd.confidence);
      d.sensors.push_back(std::move(sd));
    }

    d.significant = time_significant || sensor_significant;
    d.time_significant = time_significant;
    if (d.significant) {
      significant.push_back(std::move(d));
    } else {
      out.insignificant.push_back(std::move(d));
    }
  }

  const auto by_magnitude = [](const FunctionDelta& a, const FunctionDelta& b) {
    // Time-evidence entries outrank sensor-only ones: an inclusive
    // ancestor (one activation, no time variance) can carry the
    // largest absolute delta plus a significant thermal shift, but the
    // leaf whose per-activation Welch test pinned the change is the
    // culprit the ranking exists to surface.
    if (a.time_significant != b.time_significant) return a.time_significant;
    const double ma = std::fabs(a.delta_time_s);
    const double mb = std::fabs(b.delta_time_s);
    if (ma != mb) return ma > mb;
    if (a.confidence != b.confidence) return a.confidence > b.confidence;
    if (a.key != b.key) return a.key < b.key;
    return a.node_id < b.node_id;
  };
  for (FunctionDelta& d : significant) {
    if (d.delta_time_s >= 0.0) {
      out.regressions.push_back(std::move(d));
    } else {
      out.improvements.push_back(std::move(d));
    }
  }
  std::sort(out.regressions.begin(), out.regressions.end(), by_magnitude);
  std::sort(out.improvements.begin(), out.improvements.end(), by_magnitude);
  return out;
}

void write_diff_text(std::ostream& out, const DiffResult& result) {
  std::string buf;
  buf.reserve(std::size_t{8} << 10);
  buf += "tempest-diff: baseline=";
  buf += result.base_label;
  buf += " current=";
  buf += result.cur_label;
  buf += "\nconfidence threshold ";
  append_num6(buf, result.options.min_confidence);
  buf += "\n\n";
  write_ranked_text(buf, "regressions", result.regressions);
  buf += "\n";
  write_ranked_text(buf, "improvements", result.improvements);
  buf += "\n";
  buf += "not ranked (";
  fastwrite::append_u64(buf, result.insignificant.size());
  buf += " below confidence/delta floors";
  if (result.filtered_tolerated > 0) {
    buf += ", ";
    fastwrite::append_u64(buf, result.filtered_tolerated);
    buf += " filter-suppressed";
  }
  buf += ")\n";
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void write_diff_json(std::ostream& out, const DiffResult& result) {
  std::string buf;
  buf.reserve(std::size_t{16} << 10);
  buf += "{\"schema\":\"tempest-diff\",\"schema_version\":1,\"baseline\":";
  report::append_json_string(&buf, result.base_label);
  buf += ",\"current\":";
  report::append_json_string(&buf, result.cur_label);
  buf += ",\"min_confidence\":";
  append_num6(buf, result.options.min_confidence);
  buf += ",\"filtered_tolerated\":";
  fastwrite::append_u64(buf, result.filtered_tolerated);
  const bool per_node = result.options.per_node;
  for (const auto& [name, list] :
       {std::pair<const char*, const std::vector<FunctionDelta>*>{
            "regressions", &result.regressions},
        {"improvements", &result.improvements},
        {"insignificant", &result.insignificant}}) {
    buf += ",\"";
    buf += name;
    buf += "\":[";
    for (std::size_t i = 0; i < list->size(); ++i) {
      if (i > 0) buf += ",";
      append_delta_entry(buf, (*list)[i], per_node);
    }
    buf += "]";
  }
  buf += "}";
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

}  // namespace tempest::diff
