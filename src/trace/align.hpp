// Cross-node clock alignment.
//
// Node TSCs are unsynchronised (offset + drift — the paper's §3.3
// limitation). During a run the runtime records ClockSync observations
// pairing each node's clock with the global clock at barriers. This
// module fits node_tsc -> global_tsc per node (least-squares line) and
// rewrites every event/sample into the global domain so the parser can
// correlate temperatures with code across nodes.
#pragma once

#include <cstdint>
#include <map>

#include "common/status.hpp"
#include "trace/trace.hpp"

namespace tempest::trace {

/// Per-node affine clock map: global = a * (node - ref) + b.
struct ClockFit {
  std::uint64_t ref = 0;  ///< node-domain reference point
  double a = 1.0;         ///< rate ratio (captures drift)
  double b = 0.0;         ///< global value at ref (captures offset)

  std::uint64_t to_global(std::uint64_t node_tsc) const;
};

/// Fit clock maps from sync records. Nodes with one sync get
/// offset-only fits; nodes with none get the identity map. The
/// streaming pipeline fits from a pre-pass over the sync sections
/// before any event batch flows, hence the vector overload.
std::map<std::uint16_t, ClockFit> fit_clocks(const std::vector<ClockSync>& syncs);

/// Fit clock maps from the trace's sync records.
std::map<std::uint16_t, ClockFit> fit_clocks(const Trace& trace);

/// Largest |fit(node_tsc) - global_tsc| over each node's sync records,
/// in ticks. Quantifies how well the affine fit explains the
/// observations: a big residual means the node's clock wandered
/// nonlinearly between barriers, so cross-node timestamps carry that
/// much uncertainty. Nodes with no fit (or no syncs) are absent.
std::map<std::uint16_t, double> fit_residuals(
    const std::map<std::uint16_t, ClockFit>& fits,
    const std::vector<ClockSync>& syncs);

/// Rewrite fn_events and temp_samples into the global clock domain and
/// re-sort. Idempotent once syncs are consumed (they are cleared).
Status align_clocks(Trace* trace);

}  // namespace tempest::trace
