#include "trace/codec.hpp"

#include <bit>
#include <cstddef>
#include <cstring>

#include "trace/writer.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#define TEMPEST_CODEC_SSE2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define TEMPEST_CODEC_NEON 1
#endif

namespace tempest::trace::codec {
namespace {

// The fast paths below reproduce the wire layout by copying leading
// struct bytes; these asserts pin the struct layouts they rely on. A
// platform that lays the structs out differently fails the build here
// instead of corrupting traces.
static_assert(offsetof(FnEvent, tsc) == 0 && offsetof(FnEvent, addr) == 8 &&
              offsetof(FnEvent, thread_id) == 16 &&
              offsetof(FnEvent, node_id) == 20 &&
              offsetof(FnEvent, kind) == 22 && sizeof(FnEvent) == 24);
static_assert(offsetof(TempSample, tsc) == 0 &&
              offsetof(TempSample, temp_c) == 8 &&
              offsetof(TempSample, node_id) == 16 &&
              offsetof(TempSample, sensor_id) == 18 &&
              sizeof(TempSample) == 24);
static_assert(offsetof(ClockSync, node_tsc) == 0 &&
              offsetof(ClockSync, global_tsc) == 8 &&
              offsetof(ClockSync, node_id) == 16 && sizeof(ClockSync) == 24);
static_assert(sizeof(double) == 8);

constexpr bool kLittleEndian = std::endian::native == std::endian::little;

// 16- and 8-byte unaligned copies, the only shapes the record layouts
// need. Each record is covered by one 16-byte copy plus one overlapping
// narrower copy, both fully inside the record on the load side and
// fully inside the struct on the store side — no tail over-read even on
// the final record of a section.
#if defined(TEMPEST_CODEC_SSE2)
inline void copy16(void* dst, const void* src) {
  _mm_storeu_si128(static_cast<__m128i*>(dst),
                   _mm_loadu_si128(static_cast<const __m128i*>(src)));
}
inline void copy8(void* dst, const void* src) {
  _mm_storel_epi64(static_cast<__m128i*>(dst),
                   _mm_loadl_epi64(static_cast<const __m128i*>(src)));
}
#elif defined(TEMPEST_CODEC_NEON)
inline void copy16(void* dst, const void* src) {
  vst1q_u8(static_cast<std::uint8_t*>(dst),
           vld1q_u8(static_cast<const std::uint8_t*>(src)));
}
inline void copy8(void* dst, const void* src) {
  vst1_u8(static_cast<std::uint8_t*>(dst),
          vld1_u8(static_cast<const std::uint8_t*>(src)));
}
#else
inline void copy16(void* dst, const void* src) { std::memcpy(dst, src, 16); }
inline void copy8(void* dst, const void* src) { std::memcpy(dst, src, 8); }
#endif
inline void copy2(void* dst, const void* src) { std::memcpy(dst, src, 2); }

// Byte-loop field converters shared by the scalar reference paths.
inline std::uint16_t load_u16(const char* p) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<std::uint16_t>(static_cast<unsigned char>(p[1])) << 8));
}
inline std::uint32_t load_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}
inline std::uint64_t load_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}
inline void store_u16(char* p, std::uint16_t v) {
  p[0] = static_cast<char>(v);
  p[1] = static_cast<char>(v >> 8);
}
inline void store_u32(char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>(v >> (8 * i));
}
inline void store_u64(char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>(v >> (8 * i));
}

}  // namespace

const char* backend() {
  if (!kLittleEndian) return "scalar";
#if defined(TEMPEST_CODEC_SSE2)
  return "sse2";
#elif defined(TEMPEST_CODEC_NEON)
  return "neon";
#else
  return "le-copy";
#endif
}

namespace scalar {

bool unpack_fn_events(const char* src, std::size_t n, FnEvent* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    const char* p = src + i * kFnEventRecordSize;
    FnEvent& e = dst[i];
    e.tsc = load_u64(p);
    e.addr = load_u64(p + 8);
    e.thread_id = load_u32(p + 16);
    e.node_id = load_u16(p + 20);
    const auto kind = static_cast<unsigned char>(p[22]);
    if (kind != 1 && kind != 2) return false;
    e.kind = static_cast<FnEventKind>(kind);
  }
  return true;
}

void unpack_temp_samples(const char* src, std::size_t n, TempSample* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    const char* p = src + i * kTempSampleRecordSize;
    TempSample& s = dst[i];
    s.tsc = load_u64(p);
    s.temp_c = std::bit_cast<double>(load_u64(p + 8));
    s.node_id = load_u16(p + 16);
    s.sensor_id = load_u16(p + 18);
  }
}

void unpack_clock_syncs(const char* src, std::size_t n, ClockSync* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    const char* p = src + i * kClockSyncRecordSize;
    ClockSync& c = dst[i];
    c.node_tsc = load_u64(p);
    c.global_tsc = load_u64(p + 8);
    c.node_id = load_u16(p + 16);
  }
}

void pack_fn_events(const FnEvent* src, std::size_t n, char* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    char* p = dst + i * kFnEventRecordSize;
    const FnEvent& e = src[i];
    store_u64(p, e.tsc);
    store_u64(p + 8, e.addr);
    store_u32(p + 16, e.thread_id);
    store_u16(p + 20, e.node_id);
    p[22] = static_cast<char>(e.kind);
  }
}

void pack_temp_samples(const TempSample* src, std::size_t n, char* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    char* p = dst + i * kTempSampleRecordSize;
    const TempSample& s = src[i];
    store_u64(p, s.tsc);
    store_u64(p + 8, std::bit_cast<std::uint64_t>(s.temp_c));
    store_u16(p + 16, s.node_id);
    store_u16(p + 18, s.sensor_id);
  }
}

void pack_clock_syncs(const ClockSync* src, std::size_t n, char* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    char* p = dst + i * kClockSyncRecordSize;
    const ClockSync& c = src[i];
    store_u64(p, c.node_tsc);
    store_u64(p + 8, c.global_tsc);
    store_u16(p + 16, c.node_id);
  }
}

}  // namespace scalar

// Wire record == leading struct bytes on little-endian hosts, so each
// record is two overlapping copies. The kind check folds into a
// branchless accumulator so the copy loop never mispredicts on valid
// sections.
bool unpack_fn_events(const char* src, std::size_t n, FnEvent* dst) {
  if (!kLittleEndian) return scalar::unpack_fn_events(src, n, dst);
  unsigned bad = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const char* p = src + i * kFnEventRecordSize;
    char* q = reinterpret_cast<char*>(dst + i);
    copy16(q, p);
    copy8(q + 15, p + 15);  // bytes 15..22: thread_id tail, node_id, kind
    bad |= static_cast<unsigned>(
        (static_cast<unsigned>(static_cast<unsigned char>(p[22])) - 1u) > 1u);
  }
  return bad == 0;
}

void unpack_temp_samples(const char* src, std::size_t n, TempSample* dst) {
  if (!kLittleEndian) return scalar::unpack_temp_samples(src, n, dst);
  for (std::size_t i = 0; i < n; ++i) {
    const char* p = src + i * kTempSampleRecordSize;
    char* q = reinterpret_cast<char*>(dst + i);
    copy16(q, p);
    copy8(q + 12, p + 12);  // bytes 12..19: temp tail, node_id, sensor_id
  }
}

void unpack_clock_syncs(const char* src, std::size_t n, ClockSync* dst) {
  if (!kLittleEndian) return scalar::unpack_clock_syncs(src, n, dst);
  for (std::size_t i = 0; i < n; ++i) {
    const char* p = src + i * kClockSyncRecordSize;
    char* q = reinterpret_cast<char*>(dst + i);
    copy16(q, p);
    copy2(q + 16, p + 16);
  }
}

void pack_fn_events(const FnEvent* src, std::size_t n, char* dst) {
  if (!kLittleEndian) return scalar::pack_fn_events(src, n, dst);
  for (std::size_t i = 0; i < n; ++i) {
    const char* q = reinterpret_cast<const char*>(src + i);
    char* p = dst + i * kFnEventRecordSize;
    copy16(p, q);
    copy8(p + 15, q + 15);
  }
}

void pack_temp_samples(const TempSample* src, std::size_t n, char* dst) {
  if (!kLittleEndian) return scalar::pack_temp_samples(src, n, dst);
  for (std::size_t i = 0; i < n; ++i) {
    const char* q = reinterpret_cast<const char*>(src + i);
    char* p = dst + i * kTempSampleRecordSize;
    copy16(p, q);
    copy8(p + 12, q + 12);
  }
}

void pack_clock_syncs(const ClockSync* src, std::size_t n, char* dst) {
  if (!kLittleEndian) return scalar::pack_clock_syncs(src, n, dst);
  for (std::size_t i = 0; i < n; ++i) {
    const char* q = reinterpret_cast<const char*>(src + i);
    char* p = dst + i * kClockSyncRecordSize;
    copy16(p, q);
    copy2(p + 16, q + 16);
  }
}

}  // namespace tempest::trace::codec
