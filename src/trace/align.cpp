#include "trace/align.hpp"

#include <cmath>
#include <vector>

namespace tempest::trace {

std::uint64_t ClockFit::to_global(std::uint64_t node_tsc) const {
  const double dx = static_cast<double>(node_tsc) - static_cast<double>(ref);
  const double g = a * dx + b;
  return g <= 0.0 ? 0 : static_cast<std::uint64_t>(g);
}

std::map<std::uint16_t, ClockFit> fit_clocks(const std::vector<ClockSync>& all_syncs) {
  std::map<std::uint16_t, std::vector<const ClockSync*>> by_node;
  for (const auto& s : all_syncs) by_node[s.node_id].push_back(&s);

  std::map<std::uint16_t, ClockFit> fits;
  for (const auto& [node, syncs] : by_node) {
    ClockFit fit;
    fit.ref = syncs.front()->node_tsc;
    if (syncs.size() == 1) {
      fit.a = 1.0;
      fit.b = static_cast<double>(syncs.front()->global_tsc);
    } else {
      // Least squares on (node - ref, global) — deltas keep the doubles
      // well inside their 53-bit exact range for any realistic run.
      double sx = 0, sy = 0, sxx = 0, sxy = 0;
      const double n = static_cast<double>(syncs.size());
      for (const ClockSync* s : syncs) {
        const double x = static_cast<double>(s->node_tsc) - static_cast<double>(fit.ref);
        const double y = static_cast<double>(s->global_tsc);
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
      }
      const double denom = n * sxx - sx * sx;
      if (denom > 0.0) {
        fit.a = (n * sxy - sx * sy) / denom;
        fit.b = (sy - fit.a * sx) / n;
      } else {
        fit.a = 1.0;
        fit.b = sy / n;
      }
    }
    fits[node] = fit;
  }
  return fits;
}

std::map<std::uint16_t, ClockFit> fit_clocks(const Trace& trace) {
  return fit_clocks(trace.clock_syncs);
}

std::map<std::uint16_t, double> fit_residuals(
    const std::map<std::uint16_t, ClockFit>& fits,
    const std::vector<ClockSync>& syncs) {
  std::map<std::uint16_t, double> residuals;
  for (const ClockSync& s : syncs) {
    const auto it = fits.find(s.node_id);
    if (it == fits.end()) continue;
    const ClockFit& fit = it->second;
    // Evaluate the fit in doubles (to_global rounds to ticks, which
    // would quantise sub-tick residuals away).
    const double dx =
        static_cast<double>(s.node_tsc) - static_cast<double>(fit.ref);
    const double predicted = fit.a * dx + fit.b;
    const double r = std::abs(predicted - static_cast<double>(s.global_tsc));
    auto [slot, inserted] = residuals.try_emplace(s.node_id, r);
    if (!inserted && r > slot->second) slot->second = r;
  }
  return residuals;
}

Status align_clocks(Trace* trace) {
  if (trace->clock_syncs.empty()) return Status::ok();  // single clock domain
  const auto fits = fit_clocks(*trace);

  for (auto& e : trace->fn_events) {
    const auto it = fits.find(e.node_id);
    if (it != fits.end()) e.tsc = it->second.to_global(e.tsc);
  }
  for (auto& s : trace->temp_samples) {
    const auto it = fits.find(s.node_id);
    if (it != fits.end()) s.tsc = it->second.to_global(s.tsc);
  }
  trace->clock_syncs.clear();
  trace->sort_by_time();
  return Status::ok();
}

}  // namespace tempest::trace
