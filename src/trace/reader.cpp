#include "trace/reader.hpp"

#include <fstream>
#include <limits>

#include "trace/writer.hpp"

namespace tempest::trace {
namespace {

class Cursor {
 public:
  explicit Cursor(std::istream& in) : in_(in) {}

  template <typename T>
  bool get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_.read(reinterpret_cast<char*>(out), sizeof(T));
    return static_cast<bool>(in_);
  }

  bool get_string(std::string* out) {
    std::uint32_t len = 0;
    if (!get(&len)) return false;
    if (len > kMaxString) return false;
    out->resize(len);
    in_.read(out->data(), len);
    return static_cast<bool>(in_);
  }

 private:
  static constexpr std::uint32_t kMaxString = 1 << 20;
  std::istream& in_;
};

// A corrupt count field must fail at the first missing record, not
// allocate count * sizeof(record) up front — so records are appended
// one at a time with a bounded initial reserve.
constexpr std::uint64_t kMaxRecords = 1ULL << 32;
constexpr std::uint64_t kReserveCap = 1ULL << 16;

}  // namespace

Result<Trace> read_trace(std::istream& in) {
  Cursor cur(in);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  Trace trace;

  if (!cur.get(&magic) || magic != kTraceMagic) {
    return Result<Trace>::error("not a Tempest trace (bad magic)");
  }
  if (!cur.get(&version) || version != kTraceVersion) {
    return Result<Trace>::error("unsupported trace version");
  }
  if (!cur.get(&trace.tsc_ticks_per_second) || !cur.get_string(&trace.executable) ||
      !cur.get(&trace.load_bias)) {
    return Result<Trace>::error("truncated trace header");
  }

  std::uint32_t n32 = 0;
  if (!cur.get(&n32)) return Result<Trace>::error("truncated node section");
  trace.nodes.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    NodeInfo n;
    if (!cur.get(&n.node_id) || !cur.get_string(&n.hostname)) {
      return Result<Trace>::error("truncated node record");
    }
    trace.nodes.push_back(std::move(n));
  }

  if (!cur.get(&n32)) return Result<Trace>::error("truncated sensor section");
  trace.sensors.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    SensorMeta s;
    if (!cur.get(&s.node_id) || !cur.get(&s.sensor_id) || !cur.get(&s.quant_step_c) ||
        !cur.get_string(&s.name)) {
      return Result<Trace>::error("truncated sensor record");
    }
    trace.sensors.push_back(std::move(s));
  }

  if (!cur.get(&n32)) return Result<Trace>::error("truncated thread section");
  trace.threads.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    ThreadInfo t;
    if (!cur.get(&t.thread_id) || !cur.get(&t.node_id) || !cur.get(&t.core)) {
      return Result<Trace>::error("truncated thread record");
    }
    trace.threads.push_back(t);
  }

  if (!cur.get(&n32)) return Result<Trace>::error("truncated synthetic-symbol section");
  trace.synthetic_symbols.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    SyntheticSymbol s;
    if (!cur.get(&s.addr) || !cur.get_string(&s.name)) {
      return Result<Trace>::error("truncated synthetic symbol");
    }
    trace.synthetic_symbols.push_back(std::move(s));
  }

  std::uint64_t n64 = 0;
  if (!cur.get(&n64) || n64 > kMaxRecords) {
    return Result<Trace>::error("truncated or oversized event section");
  }
  trace.fn_events.reserve(std::min(n64, kReserveCap));
  for (std::uint64_t i = 0; i < n64; ++i) {
    FnEvent e;
    std::uint8_t kind = 0;
    if (!cur.get(&e.tsc) || !cur.get(&e.addr) || !cur.get(&e.thread_id) ||
        !cur.get(&e.node_id) || !cur.get(&kind)) {
      return Result<Trace>::error("truncated fn event");
    }
    if (kind != 1 && kind != 2) return Result<Trace>::error("corrupt fn event kind");
    e.kind = static_cast<FnEventKind>(kind);
    trace.fn_events.push_back(e);
  }

  if (!cur.get(&n64) || n64 > kMaxRecords) {
    return Result<Trace>::error("truncated or oversized sample section");
  }
  trace.temp_samples.reserve(std::min(n64, kReserveCap));
  for (std::uint64_t i = 0; i < n64; ++i) {
    TempSample s;
    if (!cur.get(&s.tsc) || !cur.get(&s.temp_c) || !cur.get(&s.node_id) ||
        !cur.get(&s.sensor_id)) {
      return Result<Trace>::error("truncated temp sample");
    }
    trace.temp_samples.push_back(s);
  }

  if (!cur.get(&n64) || n64 > kMaxRecords) {
    return Result<Trace>::error("truncated or oversized clock-sync section");
  }
  trace.clock_syncs.reserve(std::min(n64, kReserveCap));
  for (std::uint64_t i = 0; i < n64; ++i) {
    ClockSync c;
    if (!cur.get(&c.node_tsc) || !cur.get(&c.global_tsc) || !cur.get(&c.node_id)) {
      return Result<Trace>::error("truncated clock sync");
    }
    trace.clock_syncs.push_back(c);
  }

  return trace;
}

Result<Trace> read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Result<Trace>::error("cannot open trace file: " + path);
  return read_trace(in);
}

}  // namespace tempest::trace
