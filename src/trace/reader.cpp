#include "trace/reader.hpp"

#include <atomic>
#include <bit>
#include <fstream>
#include <limits>
#include <vector>

#include "common/worker_pool.hpp"
#include "trace/codec.hpp"
#include "trace/writer.hpp"

namespace tempest::trace {
namespace {

class Cursor {
 public:
  explicit Cursor(std::istream& in) : in_(in) {}

  template <typename T>
  bool get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_.read(reinterpret_cast<char*>(out), sizeof(T));
    return static_cast<bool>(in_);
  }

  bool get_string(std::string* out) {
    std::uint32_t len = 0;
    if (!get(&len)) return false;
    if (len > kMaxString) return false;
    out->resize(len);
    in_.read(out->data(), len);
    return static_cast<bool>(in_);
  }

  /// Bulk read: true only when all `n` bytes arrived.
  bool get_bytes(char* out, std::size_t n) {
    in_.read(out, static_cast<std::streamsize>(n));
    return static_cast<bool>(in_) &&
           in_.gcount() == static_cast<std::streamsize>(n);
  }

 private:
  static constexpr std::uint32_t kMaxString = 1 << 20;
  std::istream& in_;
};

// Little-endian unpack mirrors of the writer's pack helpers.
inline std::uint16_t unpack_u16(const char* p) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<std::uint16_t>(static_cast<unsigned char>(p[1])) << 8));
}

inline std::uint32_t unpack_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

inline std::uint64_t unpack_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

inline double unpack_f64(const char* p) {
  return std::bit_cast<double>(unpack_u64(p));
}

// A corrupt count field must fail at the first missing chunk, not
// allocate count * record_size up front — sections stream through a
// bounded staging buffer and the vector reserve is capped by the bytes
// actually present (seekable streams) or by kReserveCap (pipes).
constexpr std::uint64_t kMaxRecords = 1ULL << 32;
constexpr std::uint64_t kReserveCap = 1ULL << 16;
constexpr std::size_t kStagingBytes = std::size_t{256} << 10;  // match writer.cpp

/// Upper bound on the bytes remaining in a seekable stream, or
/// UINT64_MAX when the stream cannot say (pipes, sockets, custom
/// streambufs). Used only to size vector reserves: with a real bound a
/// well-formed section reserves exactly once instead of doubling its
/// way up, and a corrupt count can never allocate more than the file
/// actually holds.
std::uint64_t remaining_bytes_bound(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  if (!in || pos == std::istream::pos_type(-1)) {
    in.clear();
    return UINT64_MAX;
  }
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.clear();
  in.seekg(pos);
  if (!in || end == std::istream::pos_type(-1) || end < pos) {
    in.clear();
    in.seekg(pos);
    return UINT64_MAX;
  }
  return static_cast<std::uint64_t>(end - pos);
}

// Records per decode slice when a worker pool is attached; below this a
// hand-off costs more than the conversion it parallelises.
constexpr std::size_t kDecodeSliceRecords = 4096;

}  // namespace

Result<TraceStreamReader> TraceStreamReader::open(std::istream& in) {
  TraceStreamReader reader(in);
  reader.stream_bound_ = remaining_bytes_bound(in);
  Cursor cur(in);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;

  if (!cur.get(&magic) || magic != kTraceMagic) {
    return Result<TraceStreamReader>::error("not a Tempest trace (bad magic)");
  }
  if (!cur.get(&version)) {
    return Result<TraceStreamReader>::error("truncated trace header (no version)");
  }
  if (version != kTraceVersion) {
    return Result<TraceStreamReader>::error(
        "unsupported trace version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kTraceVersion) +
        "; re-record the trace with a matching Tempest build)");
  }
  TraceHeader& h = reader.header_;
  if (!cur.get(&h.tsc_ticks_per_second) || !cur.get_string(&h.executable) ||
      !cur.get(&h.load_bias)) {
    return Result<TraceStreamReader>::error("truncated trace header");
  }

  std::uint32_t n32 = 0;
  if (!cur.get(&n32)) return Result<TraceStreamReader>::error("truncated node section");
  h.nodes.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    NodeInfo n;
    if (!cur.get(&n.node_id) || !cur.get_string(&n.hostname)) {
      return Result<TraceStreamReader>::error("truncated node record");
    }
    h.nodes.push_back(std::move(n));
  }

  if (!cur.get(&n32)) return Result<TraceStreamReader>::error("truncated sensor section");
  h.sensors.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    SensorMeta s;
    if (!cur.get(&s.node_id) || !cur.get(&s.sensor_id) || !cur.get(&s.quant_step_c) ||
        !cur.get_string(&s.name)) {
      return Result<TraceStreamReader>::error("truncated sensor record");
    }
    h.sensors.push_back(std::move(s));
  }

  if (!cur.get(&n32)) return Result<TraceStreamReader>::error("truncated thread section");
  h.threads.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    ThreadInfo t;
    if (!cur.get(&t.thread_id) || !cur.get(&t.node_id) || !cur.get(&t.core)) {
      return Result<TraceStreamReader>::error("truncated thread record");
    }
    h.threads.push_back(t);
  }

  if (!cur.get(&n32)) {
    return Result<TraceStreamReader>::error("truncated synthetic-symbol section");
  }
  h.synthetic_symbols.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    SyntheticSymbol s;
    if (!cur.get(&s.addr) || !cur.get_string(&s.name)) {
      return Result<TraceStreamReader>::error("truncated synthetic symbol");
    }
    h.synthetic_symbols.push_back(std::move(s));
  }

  return reader;
}

Status TraceStreamReader::read_section_frame(std::uint32_t expected_record_size,
                                             const char* what) {
  Cursor cur(*in_);
  std::uint64_t count = 0;
  std::uint32_t record_size = 0;
  if (!cur.get(&count) || count > kMaxRecords) {
    return Status::error(std::string("truncated or oversized ") + what +
                         " section");
  }
  if (!cur.get(&record_size) || record_size != expected_record_size) {
    return Status::error(std::string(what) +
                         " record size mismatch (corrupt section framing)");
  }
  remaining_ = count;
  section_count_ = count;
  frame_read_ = true;
  return Status::ok();
}

template <typename Record, typename UnpackFn>
Status TraceStreamReader::next_section(int section, std::uint32_t record_size,
                                       const char* what, std::vector<Record>* out,
                                       std::size_t max_records,
                                       std::size_t* appended, UnpackFn unpack_bulk) {
  *appended = 0;
  if (section_ != section) {
    // Earlier section: not reached yet; later section: already drained.
    // Either way there is nothing for this call to produce — the
    // canonical drain order issues the calls back to back.
    if (section_ > section) return Status::ok();
    return Status::error(std::string("stream reader: ") + what +
                         " section requested before the preceding section was "
                         "drained");
  }
  if (!frame_read_) {
    const Status frame = read_section_frame(record_size, what);
    if (!frame) return frame;
  }
  if (remaining_ == 0) {
    ++section_;
    frame_read_ = false;
    if (done()) return try_read_runstats();
    return Status::ok();
  }

  const std::uint64_t want = std::min<std::uint64_t>(remaining_, max_records);
  const std::uint64_t fit = stream_bound_ == UINT64_MAX
                                ? kReserveCap
                                : stream_bound_ / record_size;
  out->reserve(out->size() + static_cast<std::size_t>(std::min(want, fit)));

  Cursor cur(*in_);
  // With a decode pool the staging chunk scales with the worker count
  // (capped at 4 MiB) so every worker gets a slice worth converting.
  const std::size_t staging_budget =
      decode_pool_ == nullptr
          ? kStagingBytes
          : std::min<std::size_t>(kStagingBytes * decode_pool_->size(),
                                  std::size_t{4} << 20);
  const std::size_t per_chunk =
      std::max<std::size_t>(1, staging_budget / record_size);
  std::vector<char> staging;
  std::uint64_t left = want;
  while (left > 0) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(per_chunk, left));
    staging.resize(n * record_size);
    if (!cur.get_bytes(staging.data(), staging.size())) {
      return Status::error(std::string("truncated ") + what + " section (file "
                           "claims " + std::to_string(section_count_) +
                           " records but ends after " +
                           std::to_string(section_count_ - remaining_) + ")");
    }
    // Chunk-wise resize keeps growth geometric while skipping the
    // per-record capacity check push_back would pay; on a rejected
    // record the partially-filled vector is discarded with the trace.
    const std::size_t base = out->size();
    out->resize(base + n);
    Record* recs = out->data() + base;
    const char* bytes = staging.data();
    bool record_ok;
    if (decode_pool_ != nullptr && n >= kDecodeSliceRecords * 2) {
      // Slices convert disjoint [begin, end) ranges of the same chunk;
      // corruption anywhere poisons the whole chunk, same as serial.
      std::atomic<bool> ok{true};
      decode_pool_->for_slices(
          n, kDecodeSliceRecords,
          [&](std::size_t b, std::size_t e) {
            if (!unpack_bulk(bytes + b * record_size, e - b, recs + b)) {
              ok.store(false, std::memory_order_relaxed);
            }
          });
      record_ok = ok.load(std::memory_order_relaxed);
    } else {
      record_ok = unpack_bulk(bytes, n, recs);
    }
    if (!record_ok) {
      return Status::error(std::string("corrupt ") + what + " record");
    }
    left -= n;
    remaining_ -= n;
    *appended += n;
  }
  if (remaining_ == 0) {
    ++section_;
    frame_read_ = false;
    if (done()) return try_read_runstats();
  }
  return Status::ok();
}

Status TraceStreamReader::try_read_runstats() {
  // Trailer dispatch: each optional trailer is self-describing by its
  // 4-byte marker, so keep consuming trailers until the peeked bytes
  // are neither a known marker nor present at all.
  std::istream& in = *in_;
  for (;;) {
    const std::istream::pos_type pos = in.tellg();
    if (!in || pos == std::istream::pos_type(-1)) {
      in.clear();  // non-seekable: leave trailers absent
      return Status::ok();
    }
    char marker_buf[4];
    in.read(marker_buf, sizeof(marker_buf));
    if (in.gcount() != static_cast<std::streamsize>(sizeof(marker_buf))) {
      // Clean EOF or a short tail: no more trailers. Rewind so
      // expect_eof's trailing-byte count is exact.
      in.clear();
      in.seekg(pos);
      return Status::ok();
    }
    const std::uint32_t marker = unpack_u32(marker_buf);
    Status parsed = Status::ok();
    if (marker == kRunStatsMarker) {
      parsed = read_runstats_trailer();
    } else if (marker == kFilterMarker) {
      parsed = read_filter_trailer();
    } else {
      // Someone else's bytes: not a trailer. Give them back.
      in.clear();
      in.seekg(pos);
      return Status::ok();
    }
    if (!parsed) return parsed;
  }
}

Status TraceStreamReader::read_runstats_trailer() {
  Cursor cur(*in_);
  std::uint32_t record_size = 0;
  // Legacy 15-field records predate the admission pipeline; their
  // admission counters stay zero (value-initialised payload).
  char payload[kRunStatsRecordSize] = {};
  if (!cur.get(&record_size) ||
      (record_size != kRunStatsRecordSize &&
       record_size != kRunStatsRecordSizeLegacy)) {
    return Status::error("runstats record size mismatch (corrupt trailer)");
  }
  if (!cur.get_bytes(payload, record_size)) {
    return Status::error("truncated runstats trailer");
  }
  RunStats& rs = header_.run_stats;
  const char* p = payload;
  rs.events_recorded = unpack_u64(p); p += 8;
  rs.events_dropped = unpack_u64(p); p += 8;
  rs.buffer_flushes = unpack_u64(p); p += 8;
  rs.threads_registered = unpack_u64(p); p += 8;
  rs.tempd_ticks = unpack_u64(p); p += 8;
  rs.tempd_missed_ticks = unpack_u64(p); p += 8;
  rs.tempd_samples = unpack_u64(p); p += 8;
  rs.tempd_read_errors = unpack_u64(p); p += 8;
  rs.sensor_read_failures = unpack_u64(p); p += 8;
  rs.heartbeats = unpack_u64(p); p += 8;
  rs.peak_rss_kb = unpack_u64(p); p += 8;
  rs.wall_seconds = unpack_f64(p); p += 8;
  rs.tempd_cpu_seconds = unpack_f64(p); p += 8;
  rs.probe_cost_ns_mean = unpack_f64(p); p += 8;
  rs.cadence_jitter_us_mean = unpack_f64(p); p += 8;
  rs.events_suppressed = unpack_u64(p); p += 8;
  rs.events_throttled = unpack_u64(p); p += 8;
  rs.events_overwritten = unpack_u64(p); p += 8;
  rs.calls_observed = unpack_u64(p); p += 8;
  rs.ring_snapshots = unpack_u64(p);
  rs.present = true;
  return Status::ok();
}

Status TraceStreamReader::read_filter_trailer() {
  Cursor cur(*in_);
  char resolved_buf[8];
  FilterDecl& fd = header_.filter;
  if (!cur.get_bytes(resolved_buf, sizeof(resolved_buf))) {
    return Status::error("truncated filter trailer");
  }
  fd.resolved = unpack_u64(resolved_buf);
  std::uint32_t count = 0;
  if (!cur.get_string(&fd.source) || !cur.get(&count)) {
    return Status::error("truncated filter trailer");
  }
  if (count > (1u << 20)) {
    return Status::error("filter trailer symbol count implausible (corrupt)");
  }
  fd.suppressed.clear();
  fd.suppressed.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!cur.get_string(&fd.suppressed[i])) {
      return Status::error("truncated filter trailer symbol");
    }
  }
  fd.present = true;
  return Status::ok();
}

Status TraceStreamReader::next_fn_events(std::vector<FnEvent>* out,
                                         std::size_t max_records,
                                         std::size_t* appended) {
  return next_section(0, kFnEventRecordSize, "fn event", out, max_records,
                      appended, codec::unpack_fn_events);
}

Status TraceStreamReader::next_temp_samples(std::vector<TempSample>* out,
                                            std::size_t max_records,
                                            std::size_t* appended) {
  return next_section(1, kTempSampleRecordSize, "temp sample", out, max_records,
                      appended,
                      [](const char* src, std::size_t n, TempSample* dst) {
                        codec::unpack_temp_samples(src, n, dst);
                        return true;
                      });
}

Status TraceStreamReader::next_clock_syncs(std::vector<ClockSync>* out,
                                           std::size_t max_records,
                                           std::size_t* appended) {
  return next_section(2, kClockSyncRecordSize, "clock sync", out, max_records,
                      appended,
                      [](const char* src, std::size_t n, ClockSync* dst) {
                        codec::unpack_clock_syncs(src, n, dst);
                        return true;
                      });
}

bool TraceStreamReader::done() const { return section_ >= 3; }

Result<std::vector<ClockSync>> TraceStreamReader::read_clock_syncs_ahead() {
  using R = Result<std::vector<ClockSync>>;
  if (section_ != 0 || frame_read_) {
    return R::error("clock-sync pre-pass must run before the bulk sections "
                    "are consumed");
  }
  std::istream& in = *in_;
  const std::istream::pos_type pos = in.tellg();
  if (!in || pos == std::istream::pos_type(-1)) {
    in.clear();
    return R::error("clock-sync pre-pass needs a seekable stream "
                    "(pipe input: use the batch path)");
  }

  Cursor cur(in);
  const auto skip_section = [&](std::uint32_t record_size,
                                const char* what) -> Status {
    std::uint64_t count = 0;
    std::uint32_t rs = 0;
    if (!cur.get(&count) || count > kMaxRecords) {
      return Status::error(std::string("truncated or oversized ") + what +
                           " section");
    }
    if (!cur.get(&rs) || rs != record_size) {
      return Status::error(std::string(what) +
                           " record size mismatch (corrupt section framing)");
    }
    in.seekg(static_cast<std::istream::off_type>(count * record_size),
             std::ios::cur);
    if (!in || in.peek() == std::char_traits<char>::eof()) {
      // A seek past EOF only surfaces on the next read; peek forces it.
      // EOF right here is only legal if this was the last section, which
      // the caller's subsequent section reads will establish — for the
      // pre-pass it means there is no clock-sync section to read.
      return Status::error(std::string("truncated ") + what + " section");
    }
    return Status::ok();
  };

  Status skipped = skip_section(kFnEventRecordSize, "fn event");
  if (skipped) skipped = skip_section(kTempSampleRecordSize, "temp sample");
  std::vector<ClockSync> syncs;
  if (skipped) {
    // Reuse the frame+chunk reader on the sync section itself.
    std::uint64_t count = 0;
    std::uint32_t rs = 0;
    if (!cur.get(&count) || count > kMaxRecords) {
      skipped = Status::error("truncated or oversized clock sync section");
    } else if (!cur.get(&rs) || rs != kClockSyncRecordSize) {
      skipped = Status::error(
          "clock sync record size mismatch (corrupt section framing)");
    } else {
      syncs.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(count, kReserveCap)));
      std::vector<char> staging;
      const std::size_t per_chunk =
          std::max<std::size_t>(1, kStagingBytes / kClockSyncRecordSize);
      std::uint64_t left = count;
      while (left > 0 && skipped) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(per_chunk, left));
        staging.resize(n * kClockSyncRecordSize);
        if (!cur.get_bytes(staging.data(), staging.size())) {
          skipped = Status::error("truncated clock sync section");
          break;
        }
        const std::size_t base = syncs.size();
        syncs.resize(base + n);
        codec::unpack_clock_syncs(staging.data(), n, syncs.data() + base);
        left -= n;
      }
    }
  }

  in.clear();
  in.seekg(pos);
  if (!in) return R::error("stream rewind failed after clock-sync pre-pass");
  if (!skipped) return R::error(skipped.message());
  return syncs;
}

Status TraceStreamReader::expect_eof() {
  if (!done()) {
    return Status::error("trace not fully read (bulk sections still pending)");
  }
  std::istream& in = *in_;
  if (in.peek() == std::char_traits<char>::eof()) return Status::ok();
  const std::istream::pos_type pos = in.tellg();
  std::string count = "trailing";
  if (in && pos != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end = in.tellg();
    in.clear();
    in.seekg(pos);
    if (end != std::istream::pos_type(-1) && end > pos) {
      count = std::to_string(static_cast<std::uint64_t>(end - pos)) + " trailing";
    }
  }
  return Status::error(count + " byte(s) after the last trace section "
                       "(concatenated or partially overwritten file?)");
}

Result<Trace> read_trace(std::istream& in) {
  auto opened = TraceStreamReader::open(in);
  if (!opened.is_ok()) return Result<Trace>::error(opened.message());
  TraceStreamReader reader = std::move(opened).value();

  Trace trace;
  static_cast<TraceHeader&>(trace) = reader.header();
  std::size_t appended = 0;
  while (!reader.done()) {
    Status section = reader.next_fn_events(
        &trace.fn_events, std::numeric_limits<std::size_t>::max(), &appended);
    if (section) {
      section = reader.next_temp_samples(
          &trace.temp_samples, std::numeric_limits<std::size_t>::max(), &appended);
    }
    if (section) {
      section = reader.next_clock_syncs(
          &trace.clock_syncs, std::numeric_limits<std::size_t>::max(), &appended);
    }
    if (!section) return Result<Trace>::error(section.message());
  }
  // The trailers are parsed when the last section completes, after the
  // header copy above — refresh them.
  trace.run_stats = reader.header().run_stats;
  trace.filter = reader.header().filter;
  return trace;
}

Result<Trace> read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Result<Trace>::error("cannot open trace file: " + path);
  auto opened = TraceStreamReader::open(in);
  if (!opened.is_ok()) {
    return Result<Trace>::error(path + ": " + opened.message());
  }
  TraceStreamReader reader = std::move(opened).value();
  Trace trace;
  static_cast<TraceHeader&>(trace) = reader.header();
  std::size_t appended = 0;
  while (!reader.done()) {
    Status section = reader.next_fn_events(
        &trace.fn_events, std::numeric_limits<std::size_t>::max(), &appended);
    if (section) {
      section = reader.next_temp_samples(
          &trace.temp_samples, std::numeric_limits<std::size_t>::max(), &appended);
    }
    if (section) {
      section = reader.next_clock_syncs(
          &trace.clock_syncs, std::numeric_limits<std::size_t>::max(), &appended);
    }
    if (!section) return Result<Trace>::error(path + ": " + section.message());
  }
  trace.run_stats = reader.header().run_stats;
  trace.filter = reader.header().filter;
  const Status eof = reader.expect_eof();
  if (!eof) return Result<Trace>::error(path + ": " + eof.message());
  return trace;
}

}  // namespace tempest::trace
