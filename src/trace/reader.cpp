#include "trace/reader.hpp"

#include <bit>
#include <fstream>
#include <limits>
#include <vector>

#include "trace/writer.hpp"

namespace tempest::trace {
namespace {

class Cursor {
 public:
  explicit Cursor(std::istream& in) : in_(in) {}

  template <typename T>
  bool get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_.read(reinterpret_cast<char*>(out), sizeof(T));
    return static_cast<bool>(in_);
  }

  bool get_string(std::string* out) {
    std::uint32_t len = 0;
    if (!get(&len)) return false;
    if (len > kMaxString) return false;
    out->resize(len);
    in_.read(out->data(), len);
    return static_cast<bool>(in_);
  }

  /// Bulk read: true only when all `n` bytes arrived.
  bool get_bytes(char* out, std::size_t n) {
    in_.read(out, static_cast<std::streamsize>(n));
    return static_cast<bool>(in_) &&
           in_.gcount() == static_cast<std::streamsize>(n);
  }

 private:
  static constexpr std::uint32_t kMaxString = 1 << 20;
  std::istream& in_;
};

// Little-endian unpack mirrors of the writer's pack helpers.
inline std::uint16_t unpack_u16(const char* p) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<std::uint16_t>(static_cast<unsigned char>(p[1])) << 8));
}

inline std::uint32_t unpack_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

inline std::uint64_t unpack_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

inline double unpack_f64(const char* p) {
  return std::bit_cast<double>(unpack_u64(p));
}

// A corrupt count field must fail at the first missing chunk, not
// allocate count * record_size up front — sections stream through a
// bounded staging buffer and the vector reserve is capped by the bytes
// actually present (seekable streams) or by kReserveCap (pipes).
constexpr std::uint64_t kMaxRecords = 1ULL << 32;
constexpr std::uint64_t kReserveCap = 1ULL << 16;
constexpr std::size_t kStagingBytes = std::size_t{256} << 10;  // match writer.cpp

/// Upper bound on the bytes remaining in a seekable stream, or
/// UINT64_MAX when the stream cannot say (pipes, sockets, custom
/// streambufs). Used only to size vector reserves: with a real bound a
/// well-formed section reserves exactly once instead of doubling its
/// way up, and a corrupt count can never allocate more than the file
/// actually holds.
std::uint64_t remaining_bytes_bound(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  if (!in || pos == std::istream::pos_type(-1)) {
    in.clear();
    return UINT64_MAX;
  }
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.clear();
  in.seekg(pos);
  if (!in || end == std::istream::pos_type(-1) || end < pos) {
    in.clear();
    in.seekg(pos);
    return UINT64_MAX;
  }
  return static_cast<std::uint64_t>(end - pos);
}

/// Read one bulk section: validates the (count, record_size) framing,
/// then streams the payload chunk-wise, unpacking each record via
/// `unpack_one(const char*, Record*)` (which may reject a corrupt
/// record by returning false). `payload_bound` is the byte bound from
/// remaining_bytes_bound at header time.
template <typename Record, typename UnpackFn>
Status read_section(Cursor& cur, std::vector<Record>* out,
                    std::uint32_t expected_record_size, const char* what,
                    std::uint64_t payload_bound, UnpackFn unpack_one) {
  std::uint64_t count = 0;
  std::uint32_t record_size = 0;
  if (!cur.get(&count) || count > kMaxRecords) {
    return Status::error(std::string("truncated or oversized ") + what +
                         " section");
  }
  if (!cur.get(&record_size) || record_size != expected_record_size) {
    return Status::error(std::string(what) +
                         " record size mismatch (corrupt section framing)");
  }
  const std::uint64_t fit = payload_bound == UINT64_MAX
                                ? kReserveCap
                                : payload_bound / expected_record_size;
  out->reserve(static_cast<std::size_t>(std::min(count, fit)));

  const std::size_t per_chunk =
      std::max<std::size_t>(1, kStagingBytes / expected_record_size);
  std::vector<char> staging;
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(per_chunk, remaining));
    staging.resize(n * expected_record_size);
    if (!cur.get_bytes(staging.data(), staging.size())) {
      return Status::error(std::string("truncated ") + what + " section");
    }
    // Chunk-wise resize keeps growth geometric while skipping the
    // per-record capacity check push_back would pay; on a rejected
    // record the partially-filled vector is discarded with the trace.
    const std::size_t base = out->size();
    out->resize(base + n);
    Record* recs = out->data() + base;
    for (std::size_t j = 0; j < n; ++j) {
      if (!unpack_one(staging.data() + j * expected_record_size, &recs[j])) {
        return Status::error(std::string("corrupt ") + what + " record");
      }
    }
    remaining -= n;
  }
  return Status::ok();
}

}  // namespace

Result<Trace> read_trace(std::istream& in) {
  const std::uint64_t stream_bound = remaining_bytes_bound(in);
  Cursor cur(in);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  Trace trace;

  if (!cur.get(&magic) || magic != kTraceMagic) {
    return Result<Trace>::error("not a Tempest trace (bad magic)");
  }
  if (!cur.get(&version)) {
    return Result<Trace>::error("truncated trace header (no version)");
  }
  if (version != kTraceVersion) {
    return Result<Trace>::error(
        "unsupported trace version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kTraceVersion) +
        "; re-record the trace with a matching Tempest build)");
  }
  if (!cur.get(&trace.tsc_ticks_per_second) || !cur.get_string(&trace.executable) ||
      !cur.get(&trace.load_bias)) {
    return Result<Trace>::error("truncated trace header");
  }

  std::uint32_t n32 = 0;
  if (!cur.get(&n32)) return Result<Trace>::error("truncated node section");
  trace.nodes.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    NodeInfo n;
    if (!cur.get(&n.node_id) || !cur.get_string(&n.hostname)) {
      return Result<Trace>::error("truncated node record");
    }
    trace.nodes.push_back(std::move(n));
  }

  if (!cur.get(&n32)) return Result<Trace>::error("truncated sensor section");
  trace.sensors.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    SensorMeta s;
    if (!cur.get(&s.node_id) || !cur.get(&s.sensor_id) || !cur.get(&s.quant_step_c) ||
        !cur.get_string(&s.name)) {
      return Result<Trace>::error("truncated sensor record");
    }
    trace.sensors.push_back(std::move(s));
  }

  if (!cur.get(&n32)) return Result<Trace>::error("truncated thread section");
  trace.threads.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    ThreadInfo t;
    if (!cur.get(&t.thread_id) || !cur.get(&t.node_id) || !cur.get(&t.core)) {
      return Result<Trace>::error("truncated thread record");
    }
    trace.threads.push_back(t);
  }

  if (!cur.get(&n32)) return Result<Trace>::error("truncated synthetic-symbol section");
  trace.synthetic_symbols.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    SyntheticSymbol s;
    if (!cur.get(&s.addr) || !cur.get_string(&s.name)) {
      return Result<Trace>::error("truncated synthetic symbol");
    }
    trace.synthetic_symbols.push_back(std::move(s));
  }

  Status section = read_section(
      cur, &trace.fn_events, kFnEventRecordSize, "fn event", stream_bound,
      [](const char* p, FnEvent* e) {
        e->tsc = unpack_u64(p);
        e->addr = unpack_u64(p + 8);
        e->thread_id = unpack_u32(p + 16);
        e->node_id = unpack_u16(p + 20);
        const auto kind = static_cast<unsigned char>(p[22]);
        if (kind != 1 && kind != 2) return false;
        e->kind = static_cast<FnEventKind>(kind);
        return true;
      });
  if (!section) return Result<Trace>::error(section.message());

  section = read_section(cur, &trace.temp_samples, kTempSampleRecordSize,
                         "temp sample", stream_bound,
                         [](const char* p, TempSample* s) {
                           s->tsc = unpack_u64(p);
                           s->temp_c = unpack_f64(p + 8);
                           s->node_id = unpack_u16(p + 16);
                           s->sensor_id = unpack_u16(p + 18);
                           return true;
                         });
  if (!section) return Result<Trace>::error(section.message());

  section = read_section(cur, &trace.clock_syncs, kClockSyncRecordSize,
                         "clock sync", stream_bound,
                         [](const char* p, ClockSync* c) {
                           c->node_tsc = unpack_u64(p);
                           c->global_tsc = unpack_u64(p + 8);
                           c->node_id = unpack_u16(p + 16);
                           return true;
                         });
  if (!section) return Result<Trace>::error(section.message());

  return trace;
}

Result<Trace> read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Result<Trace>::error("cannot open trace file: " + path);
  return read_trace(in);
}

}  // namespace tempest::trace
