// Trace data model.
//
// A Tempest run produces, per node: function entry/exit events stamped
// with the node's TSC, temperature samples from tempd, and metadata
// (hostname, sensor inventory, thread->core binding). Clock-sync records
// pair node-local with global timestamps so the merger can align
// unsynchronised counters (§3.3). The profiled process keeps everything
// in this in-memory form and serialises once at exit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tempest::trace {

enum class FnEventKind : std::uint8_t { kEnter = 1, kExit = 2 };

/// Function entry or exit, stamped in the owning node's clock domain.
struct FnEvent {
  std::uint64_t tsc = 0;
  std::uint64_t addr = 0;       ///< function address (symbolised later)
  std::uint32_t thread_id = 0;  ///< dense per-process thread index
  std::uint16_t node_id = 0;
  FnEventKind kind = FnEventKind::kEnter;
};

/// One tempd reading.
struct TempSample {
  std::uint64_t tsc = 0;
  double temp_c = 0.0;
  std::uint16_t node_id = 0;
  std::uint16_t sensor_id = 0;
};

/// (node clock, global clock) observation used for alignment.
struct ClockSync {
  std::uint64_t node_tsc = 0;
  std::uint64_t global_tsc = 0;
  std::uint16_t node_id = 0;
};

struct NodeInfo {
  std::uint16_t node_id = 0;
  std::string hostname;
};

struct SensorMeta {
  std::uint16_t node_id = 0;
  std::uint16_t sensor_id = 0;
  std::string name;
  double quant_step_c = 0.0;
};

struct ThreadInfo {
  std::uint32_t thread_id = 0;
  std::uint16_t node_id = 0;
  std::uint16_t core = 0;
};

/// Name for a synthetic "function" address minted by the explicit
/// region / per-block API (no ELF symbol exists for those).
struct SyntheticSymbol {
  std::uint64_t addr = 0;
  std::string name;
};

/// Synthetic addresses live far above any plausible text segment.
inline constexpr std::uint64_t kSyntheticAddrBase = 0xFFFF'F000'0000'0000ULL;

/// A contiguous, already time-sorted slice of `fn_events`. Each thread's
/// buffer is appended as one run by ThreadRegistry::drain_into, which
/// lets sort_by_time replace the global stable_sort with a k-way merge.
struct SortedRun {
  std::size_t begin = 0;
  std::size_t count = 0;
};

/// Runtime self-measurement written by the recording process at session
/// end (trace v2 RUNSTATS trailer). Answers "can I trust this trace?":
/// were events dropped, did tempd keep its cadence, what did the
/// instrumentation itself cost. Optional — `present` is false for
/// traces written before the section existed, and the field order here
/// is the serialised field order (20 x 8 bytes, little-endian; readers
/// also accept the original 15-field record, zero-filling the admission
/// counters appended by the adaptive-recording runtime).
struct RunStats {
  std::uint64_t events_recorded = 0;   ///< fn events captured
  std::uint64_t events_dropped = 0;    ///< fn events lost to buffer caps
  std::uint64_t buffer_flushes = 0;    ///< thread-buffer chunk allocations
  std::uint64_t threads_registered = 0;
  std::uint64_t tempd_ticks = 0;        ///< sampler wakeups taken
  std::uint64_t tempd_missed_ticks = 0; ///< deadlines skipped (overrun)
  std::uint64_t tempd_samples = 0;      ///< temperature samples pushed
  std::uint64_t tempd_read_errors = 0;  ///< per-tick whole-node failures
  std::uint64_t sensor_read_failures = 0;  ///< individual read_celsius fails
  std::uint64_t heartbeats = 0;         ///< telemetry snapshots emitted
  std::uint64_t peak_rss_kb = 0;        ///< process peak RSS at session end
  double wall_seconds = 0.0;            ///< session start..stop wall time
  double tempd_cpu_seconds = 0.0;       ///< CPU burnt by the sampler thread
  double probe_cost_ns_mean = 0.0;      ///< self-measured mean probe cost
  double cadence_jitter_us_mean = 0.0;  ///< mean |tick - deadline|

  // Admission-pipeline accounting (zero in pre-admission traces). The
  // conservation invariant lint checks:
  //   calls_observed == events_recorded + events_suppressed
  //                     + events_throttled + events_dropped
  //                     + events_overwritten
  std::uint64_t events_suppressed = 0;   ///< rejected by the TEMPEST_FILTER set
  std::uint64_t events_throttled = 0;    ///< rejected by rate caps / min-duration
  std::uint64_t events_overwritten = 0;  ///< discarded by the flight-recorder ring
  std::uint64_t calls_observed = 0;      ///< every hook invocation seen
  std::uint64_t ring_snapshots = 0;      ///< flight-recorder snapshots written

  bool present = false;  ///< section existed in the trace (not serialised)

  /// Fold another run's stats in (multi-rank fan-in): counts add, wall
  /// time takes the max (ranks overlap), CPU adds, means combine
  /// weighted by their populations.
  void append(const RunStats& other);
};

/// The suppression filter that was active while the trace was
/// recorded (trace v2 FLTR trailer, optional). Declaring the filter in
/// the trace lets tempest-lint's --symtab coverage cross-check tell
/// "function instrumented but deliberately suppressed" apart from
/// "function instrumented but mysteriously absent" — without this a
/// filtered run would drown in instrumentation-unused false positives.
struct FilterDecl {
  bool present = false;           ///< trailer existed (not serialised)
  std::string source;             ///< path of the consumed filter file
  std::uint64_t resolved = 0;     ///< rules resolved to runtime addresses
  std::vector<std::string> suppressed;  ///< raw symbol names, file order

  /// Merge another rank's declaration (multi-rank fan-in): union of
  /// suppressed names, first non-empty source wins, resolved takes max.
  void append(const FilterDecl& other);
};

/// Run-level metadata: everything in a trace except the bulk record
/// sections. Small (O(nodes + threads + sensors)), so the streaming
/// pipeline materialises it eagerly while events stream through in
/// bounded batches.
struct TraceHeader {
  double tsc_ticks_per_second = 0.0;
  std::string executable;       ///< path used for symbol resolution
  std::uint64_t load_bias = 0;  ///< runtime - link-time address delta (PIE)

  std::vector<NodeInfo> nodes;
  std::vector<SensorMeta> sensors;
  std::vector<ThreadInfo> threads;
  std::vector<SyntheticSymbol> synthetic_symbols;

  /// Recording-side self-measurement (absent in pre-RUNSTATS traces).
  RunStats run_stats;

  /// Suppression filter active during recording (absent when none).
  FilterDecl filter;

  /// Append another run's metadata in declaration order (multi-rank
  /// fan-in). Ids are not remapped: ranks are expected to carry
  /// globally unique node/thread ids, and tempest-lint's duplicate-id
  /// checks flag violations after a merge.
  void append(const TraceHeader& other);
};

/// A complete run's worth of profiling data: header plus the bulk
/// record sections.
struct Trace : TraceHeader {
  std::vector<FnEvent> fn_events;
  std::vector<TempSample> temp_samples;
  std::vector<ClockSync> clock_syncs;

  /// In-memory run metadata over `fn_events` (not serialised). When the
  /// runs tile the event vector and each run is time-ordered,
  /// sort_by_time merges them instead of re-sorting from scratch; after
  /// any sort the whole vector is one run.
  std::vector<SortedRun> fn_event_runs;

  /// Sort events and samples by (timestamp, enter-before-exit ties kept
  /// stable); callers run this after concatenating per-thread buffers.
  /// Exploits `fn_event_runs` (k-way merge) when present and valid,
  /// falling back to a stable sort otherwise. Also caches start/end
  /// timestamps; mutating events or samples afterwards requires calling
  /// sort_by_time again (true anyway, since mutation breaks the order).
  void sort_by_time();

  /// Earliest timestamp across events and samples (0 when empty).
  /// O(1) after sort_by_time, O(n) scan otherwise.
  std::uint64_t start_tsc() const;
  /// Latest timestamp across events and samples (0 when empty).
  /// O(1) after sort_by_time, O(n) scan otherwise.
  std::uint64_t end_tsc() const;

  /// Seconds between start and a given tsc, using the recorded rate.
  double seconds_from_start(std::uint64_t tsc) const;

 private:
  bool bounds_cached_ = false;
  std::uint64_t cached_start_ = 0;
  std::uint64_t cached_end_ = 0;
};

}  // namespace tempest::trace
