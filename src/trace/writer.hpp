// Binary trace serialisation.
//
// Format: fixed header (magic, version, tsc rate, executable path),
// then length-prefixed sections per record class. All integers are
// little-endian; the format is the on-disk hand-off between the
// profiled run and the Tempest parser, mirroring the paper's
// "profiling information ... is aggregated into a trace file".
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "common/status.hpp"
#include "trace/trace.hpp"

namespace tempest::trace {

inline constexpr std::uint64_t kTraceMagic = 0x5443'5254'5350'4d54ULL;  // "TMPSTRCT"
inline constexpr std::uint32_t kTraceVersion = 1;

/// Serialise a complete trace to a stream. Returns error on I/O failure.
Status write_trace(std::ostream& out, const Trace& trace);

/// Convenience: write to a file path (truncates).
Status write_trace_file(const std::string& path, const Trace& trace);

}  // namespace tempest::trace
