// Binary trace serialisation.
//
// Format v2: fixed header (magic, version, tsc rate, executable path),
// length-prefixed metadata sections (nodes, sensors, threads, synthetic
// symbols), then three bulk record sections (fn_events, temp_samples,
// clock_syncs). Each bulk section is framed as
//
//   count        u64
//   record_size  u32   (must match the layout below; corruption check)
//   payload      count * record_size bytes, packed little-endian
//
// and is written/read through a 256 KiB staging buffer in chunks
// instead of per-field stream calls — the fn_events section of a
// multi-node MPI run holds millions of records and dominates trace I/O. All integers
// are little-endian; doubles are IEEE-754 bit patterns stored as u64.
// The format is the on-disk hand-off between the profiled run and the
// Tempest parser, mirroring the paper's "profiling information ... is
// aggregated into a trace file".
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "common/status.hpp"
#include "trace/trace.hpp"

namespace tempest::trace {

inline constexpr std::uint64_t kTraceMagic = 0x5443'5254'5350'4d54ULL;  // "TMPSTRCT"
/// v1: per-field records. v2: bulk packed record sections (see above).
/// Readers reject any version other than the one they were built for.
inline constexpr std::uint32_t kTraceVersion = 2;

/// Packed on-disk record sizes (bytes) for the bulk sections.
inline constexpr std::uint32_t kFnEventRecordSize = 8 + 8 + 4 + 2 + 1;    // 23
inline constexpr std::uint32_t kTempSampleRecordSize = 8 + 8 + 2 + 2;     // 20
inline constexpr std::uint32_t kClockSyncRecordSize = 8 + 8 + 2;          // 18

/// Optional RUNSTATS trailer after the clock-sync section:
///
///   marker       u32   'RSTA' (absent in older v2 traces — readers
///                       treat a missing marker as "no runstats")
///   record_size  u32   (corruption check, like the bulk sections)
///   payload      20 x 8 bytes, RunStats fields in declaration order
///
/// The marker's little-endian bytes ("RSTA") cannot be confused with
/// the start of another trace (magic begins "TMPS"), so a reader that
/// peeks 4 bytes and finds neither can still report trailing garbage
/// byte-exactly. The record grew from 15 to 20 fields when the
/// admission pipeline landed; readers accept both sizes and zero-fill
/// the admission counters for the legacy one.
inline constexpr std::uint32_t kRunStatsMarker = 0x4154'5352;             // "RSTA"
inline constexpr std::uint32_t kRunStatsRecordSize = 20 * 8;              // 160
inline constexpr std::uint32_t kRunStatsRecordSizeLegacy = 15 * 8;        // 120

/// Optional FLTR trailer after RUNSTATS, present when a TEMPEST_FILTER
/// suppression set was active during recording:
///
///   marker       u32   'FLTR'
///   resolved     u64   rules resolved to runtime addresses
///   source       u32 length + bytes (filter file path)
///   count        u32
///   count x      u32 length + bytes (raw suppressed symbol names)
///
/// Trailers are self-describing by marker, so RUNSTATS-less traces can
/// still carry a filter declaration and readers dispatch on the peeked
/// marker until EOF.
inline constexpr std::uint32_t kFilterMarker = 0x5254'4C46;               // "FLTR"

/// Serialise a complete trace to a stream. Returns error on I/O failure.
Status write_trace(std::ostream& out, const Trace& trace);

/// Convenience: write to a file path (truncates).
Status write_trace_file(const std::string& path, const Trace& trace);

}  // namespace tempest::trace
