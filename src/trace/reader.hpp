// Binary trace deserialisation with bounds checking.
//
// Truncated or corrupt files come back as Status errors, never UB —
// the parser is routinely pointed at files from interrupted runs.
//
// Two entry points share one implementation:
//
//   * read_trace / read_trace_file materialise the whole trace (the
//     batch path). read_trace_file additionally rejects trailing bytes
//     after the last section — a healthy pipeline never writes them.
//   * TraceStreamReader streams the bulk sections in bounded batches
//     through the same 256 KiB staged chunk reader, so a consumer can
//     analyse a trace far larger than RAM (src/pipeline builds on it).
#pragma once

#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "trace/trace.hpp"

namespace tempest {
class WorkerPool;
}

namespace tempest::trace {

/// Incremental trace-v2 reader. `open` consumes the fixed header and
/// the (small) metadata sections eagerly; the three bulk sections are
/// then drained strictly in file order — fn events, temp samples,
/// clock syncs — in caller-bounded batches. Each next_* call appends
/// up to `max_records` records of its section to `out` and returns the
/// number appended; 0 means the section is exhausted (or not yet
/// reached / already passed — the calls are safe to issue in the
/// canonical order with no extra bookkeeping).
///
/// The reader never allocates more than one staging chunk plus the
/// caller's batch, regardless of the counts claimed by the file.
class TraceStreamReader {
 public:
  TraceStreamReader(TraceStreamReader&&) = default;
  TraceStreamReader& operator=(TraceStreamReader&&) = default;

  static Result<TraceStreamReader> open(std::istream& in);

  const TraceHeader& header() const { return header_; }

  Status next_fn_events(std::vector<FnEvent>* out, std::size_t max_records,
                        std::size_t* appended);
  Status next_temp_samples(std::vector<TempSample>* out, std::size_t max_records,
                           std::size_t* appended);
  Status next_clock_syncs(std::vector<ClockSync>* out, std::size_t max_records,
                          std::size_t* appended);

  /// True once every bulk section has been drained.
  bool done() const;

  /// Decode the staged record chunks on `pool`'s workers instead of the
  /// calling thread (nullptr restores serial decode). Purely a decode
  /// fan-out: stream reads stay on the caller and records land in `out`
  /// at the same positions, so the produced batches are byte-identical
  /// to serial. When a pool is set the staging chunk grows with the
  /// worker count so each slice stays worth a hand-off.
  void set_decode_pool(WorkerPool* pool) { decode_pool_ = pool; }

  /// Read the whole clock-sync section without consuming the stream
  /// position, by seeking over the event/sample payloads (their framing
  /// gives exact byte sizes). Only valid on seekable streams and before
  /// any bulk section has been touched; the clock-alignment pre-pass of
  /// the streaming pipeline uses this to fit clocks before the first
  /// event batch.
  Result<std::vector<ClockSync>> read_clock_syncs_ahead();

  /// After done(): OK on clean EOF, error naming the trailing byte
  /// count otherwise (concatenated or partially overwritten file).
  Status expect_eof();

 private:
  explicit TraceStreamReader(std::istream& in) : in_(&in) {}

  /// `unpack_bulk(src, n, dst)` converts `n` packed records at once
  /// (src/trace/codec.hpp) and returns false on a corrupt record.
  template <typename Record, typename UnpackFn>
  Status next_section(int section, std::uint32_t record_size, const char* what,
                      std::vector<Record>* out, std::size_t max_records,
                      std::size_t* appended, UnpackFn unpack_bulk);
  Status read_section_frame(std::uint32_t expected_record_size, const char* what);

  /// Invoked once when the last bulk section completes: parse the
  /// optional trailers (RUNSTATS into header_.run_stats, FLTR into
  /// header_.filter), dispatching on their 4-byte markers until the
  /// peeked bytes match none. A missing marker is not an error
  /// (pre-RUNSTATS trace, or unrelated trailing bytes — the stream
  /// position is restored so expect_eof still counts them exactly); a
  /// present marker with bad framing is. Non-seekable streams skip the
  /// probe and report the trailers absent, because a failed match could
  /// not give the bytes back.
  Status try_read_runstats();
  Status read_runstats_trailer();
  Status read_filter_trailer();

  std::istream* in_;
  TraceHeader header_;
  WorkerPool* decode_pool_ = nullptr;  ///< optional parallel record decode
  std::uint64_t stream_bound_ = 0;  ///< byte bound for reserve sizing
  int section_ = 0;                 ///< 0 events, 1 samples, 2 syncs, 3 done
  bool frame_read_ = false;         ///< current section's framing consumed
  std::uint64_t remaining_ = 0;     ///< records left in the current section
  std::uint64_t section_count_ = 0; ///< declared record count (diagnostics)
};

/// Materialise a whole trace from a stream. Tolerates trailing bytes
/// (the stream may carry more than one payload; tempest-lint reports
/// them as a finding instead).
Result<Trace> read_trace(std::istream& in);

/// Materialise a whole trace file. Unlike the stream overload this
/// rejects trailing bytes after the last section with an actionable
/// error — a lone trace file has exactly one well-formed payload.
Result<Trace> read_trace_file(const std::string& path);

}  // namespace tempest::trace
