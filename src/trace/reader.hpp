// Binary trace deserialisation with bounds checking.
//
// Truncated or corrupt files come back as Status errors, never UB —
// the parser is routinely pointed at files from interrupted runs.
#pragma once

#include <istream>
#include <string>

#include "common/status.hpp"
#include "trace/trace.hpp"

namespace tempest::trace {

Result<Trace> read_trace(std::istream& in);
Result<Trace> read_trace_file(const std::string& path);

}  // namespace tempest::trace
