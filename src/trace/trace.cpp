#include "trace/trace.hpp"

#include <algorithm>

namespace tempest::trace {
namespace {

/// True when the runs tile [0, n) in order and each run is internally
/// time-ordered — the precondition for merging instead of sorting.
bool runs_are_mergeable(const std::vector<FnEvent>& events,
                        const std::vector<SortedRun>& runs) {
  std::size_t expected = 0;
  for (const auto& r : runs) {
    if (r.begin != expected) return false;
    expected += r.count;
  }
  if (expected != events.size()) return false;
  for (const auto& r : runs) {
    for (std::size_t i = r.begin + 1; i < r.begin + r.count; ++i) {
      if (events[i].tsc < events[i - 1].tsc) return false;
    }
  }
  return true;
}

/// Fan-in per merge pass. Four wins on real traces: the selection scan
/// over the run heads costs more per element at wider fan-ins than the
/// extra streaming pass it would save.
constexpr std::size_t kMergeFanIn = 4;

/// Merge up to kMergeFanIn adjacent time-sorted runs of `src` into
/// `dst` at offset `out`. Stable with respect to run order: on equal
/// timestamps the run with the lower index wins, and adjacent grouping
/// means lower run index == lower original indices.
void merge_group(const std::vector<FnEvent>& src, const SortedRun* runs,
                 std::size_t k, std::vector<FnEvent>* dst, std::size_t out) {
  if (k == 1) {
    std::copy(src.begin() + static_cast<std::ptrdiff_t>(runs[0].begin),
              src.begin() + static_cast<std::ptrdiff_t>(runs[0].begin + runs[0].count),
              dst->begin() + static_cast<std::ptrdiff_t>(out));
    return;
  }
  if (k == 2) {
    // Branchless two-run merge: the pointer select compiles to a
    // conditional move, sidestepping the mispredicted branch per
    // element a naive merge pays on interleaved thread timelines.
    // Strict < keeps stability (left run wins ties).
    const FnEvent* a = src.data() + runs[0].begin;
    const FnEvent* aend = a + runs[0].count;
    const FnEvent* b = src.data() + runs[1].begin;
    const FnEvent* bend = b + runs[1].count;
    FnEvent* o = dst->data() + out;
    while (a != aend && b != bend) {
      const bool take_b = b->tsc < a->tsc;
      const FnEvent* p = take_b ? b : a;
      *o++ = *p;
      b += static_cast<std::ptrdiff_t>(take_b);
      a += static_cast<std::ptrdiff_t>(!take_b);
    }
    o = std::copy(a, aend, o);
    std::copy(b, bend, o);
    return;
  }
  struct Head {
    const FnEvent* p;
    const FnEvent* end;
  };
  Head cur[kMergeFanIn];
  std::size_t active = 0;
  for (std::size_t i = 0; i < k; ++i) {
    cur[active].p = src.data() + runs[i].begin;
    cur[active].end = cur[active].p + runs[i].count;
    ++active;
  }
  FnEvent* o = dst->data() + out;
  while (active > 1) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < active; ++j) {
      if (cur[j].p->tsc < cur[best].p->tsc) best = j;  // strict: ties keep lower run
    }
    *o++ = *cur[best].p++;
    if (cur[best].p == cur[best].end) {
      for (std::size_t j = best; j + 1 < active; ++j) cur[j] = cur[j + 1];
      --active;
    }
  }
  std::copy(cur[0].p, cur[0].end, o);
}

/// Stable k-way merge of per-thread runs, done as ceil(log4 k) passes
/// of 4-way adjacent merges ping-ponging between the event array and
/// one scratch buffer. Each pass streams the whole array once, so the
/// 4-way fan-in cuts memory traffic versus pairwise passes (8 runs:
/// two passes instead of three); a tournament heap over all k runs
/// would do fewer passes still but loses far more to its per-element
/// comparison cascade and cache-hostile indirection.
void merge_runs(std::vector<FnEvent>* events, const std::vector<SortedRun>& runs) {
  std::vector<SortedRun> cur;
  cur.reserve(runs.size());
  for (const auto& r : runs) {
    if (r.count > 0) cur.push_back(r);
  }
  if (cur.size() <= 1) return;

  std::vector<FnEvent> scratch(events->size());
  std::vector<FnEvent>* src = events;
  std::vector<FnEvent>* dst = &scratch;
  std::vector<SortedRun> next;
  while (cur.size() > 1) {
    next.clear();
    std::size_t out = 0;
    for (std::size_t i = 0; i < cur.size(); i += kMergeFanIn) {
      const std::size_t k = std::min(kMergeFanIn, cur.size() - i);
      merge_group(*src, cur.data() + i, k, dst, out);
      std::size_t total = 0;
      for (std::size_t j = 0; j < k; ++j) total += cur[i + j].count;
      next.push_back({out, total});
      out += total;
    }
    std::swap(src, dst);
    cur.swap(next);
  }
  if (src != events) *events = std::move(scratch);
}

}  // namespace

void RunStats::append(const RunStats& other) {
  if (!other.present) return;
  // Population-weighted means must combine before the counts fold.
  const double events =
      static_cast<double>(events_recorded + other.events_recorded);
  if (events > 0.0) {
    probe_cost_ns_mean =
        (probe_cost_ns_mean * static_cast<double>(events_recorded) +
         other.probe_cost_ns_mean * static_cast<double>(other.events_recorded)) /
        events;
  }
  const double ticks = static_cast<double>(tempd_ticks + other.tempd_ticks);
  if (ticks > 0.0) {
    cadence_jitter_us_mean =
        (cadence_jitter_us_mean * static_cast<double>(tempd_ticks) +
         other.cadence_jitter_us_mean * static_cast<double>(other.tempd_ticks)) /
        ticks;
  }
  events_recorded += other.events_recorded;
  events_dropped += other.events_dropped;
  buffer_flushes += other.buffer_flushes;
  threads_registered += other.threads_registered;
  tempd_ticks += other.tempd_ticks;
  tempd_missed_ticks += other.tempd_missed_ticks;
  tempd_samples += other.tempd_samples;
  tempd_read_errors += other.tempd_read_errors;
  sensor_read_failures += other.sensor_read_failures;
  heartbeats += other.heartbeats;
  events_suppressed += other.events_suppressed;
  events_throttled += other.events_throttled;
  events_overwritten += other.events_overwritten;
  calls_observed += other.calls_observed;
  ring_snapshots += other.ring_snapshots;
  peak_rss_kb = std::max(peak_rss_kb, other.peak_rss_kb);
  // Ranks run concurrently: wall time is the longest rank, CPU adds up.
  wall_seconds = std::max(wall_seconds, other.wall_seconds);
  tempd_cpu_seconds += other.tempd_cpu_seconds;
  present = true;
}

void FilterDecl::append(const FilterDecl& other) {
  if (!other.present) return;
  if (source.empty()) source = other.source;
  resolved = std::max(resolved, other.resolved);
  for (const std::string& name : other.suppressed) {
    if (std::find(suppressed.begin(), suppressed.end(), name) ==
        suppressed.end()) {
      suppressed.push_back(name);
    }
  }
  present = true;
}

void TraceHeader::append(const TraceHeader& other) {
  if (!(tsc_ticks_per_second > 0.0)) tsc_ticks_per_second = other.tsc_ticks_per_second;
  if (executable.empty()) {
    executable = other.executable;
    load_bias = other.load_bias;
  }
  nodes.insert(nodes.end(), other.nodes.begin(), other.nodes.end());
  sensors.insert(sensors.end(), other.sensors.begin(), other.sensors.end());
  threads.insert(threads.end(), other.threads.begin(), other.threads.end());
  synthetic_symbols.insert(synthetic_symbols.end(), other.synthetic_symbols.begin(),
                           other.synthetic_symbols.end());
  run_stats.append(other.run_stats);
  filter.append(other.filter);
}

void Trace::sort_by_time() {
  const auto event_before = [](const FnEvent& a, const FnEvent& b) {
    return a.tsc < b.tsc;
  };
  if (!fn_event_runs.empty() && runs_are_mergeable(fn_events, fn_event_runs)) {
    merge_runs(&fn_events, fn_event_runs);
  } else if (!std::is_sorted(fn_events.begin(), fn_events.end(), event_before)) {
    std::stable_sort(fn_events.begin(), fn_events.end(), event_before);
  }
  // After any sort the whole vector is one run; repeated sorts (e.g.
  // align_clocks on an in-process trace) validate in O(n) and return.
  if (fn_events.empty()) {
    fn_event_runs.clear();
  } else {
    fn_event_runs.assign(1, {0, fn_events.size()});
  }

  const auto sample_before = [](const TempSample& a, const TempSample& b) {
    return a.tsc < b.tsc;
  };
  if (!std::is_sorted(temp_samples.begin(), temp_samples.end(), sample_before)) {
    std::stable_sort(temp_samples.begin(), temp_samples.end(), sample_before);
  }

  // Everything is ordered now: bounds come from the ends, cached so
  // start_tsc/end_tsc (and seconds_from_start) stop rescanning.
  bounds_cached_ = true;
  cached_start_ = UINT64_MAX;
  cached_end_ = 0;
  if (!fn_events.empty()) {
    cached_start_ = std::min(cached_start_, fn_events.front().tsc);
    cached_end_ = std::max(cached_end_, fn_events.back().tsc);
  }
  if (!temp_samples.empty()) {
    cached_start_ = std::min(cached_start_, temp_samples.front().tsc);
    cached_end_ = std::max(cached_end_, temp_samples.back().tsc);
  }
  if (cached_start_ == UINT64_MAX) cached_start_ = 0;
}

std::uint64_t Trace::start_tsc() const {
  if (bounds_cached_) return cached_start_;
  std::uint64_t start = UINT64_MAX;
  for (const auto& e : fn_events) start = std::min(start, e.tsc);
  for (const auto& s : temp_samples) start = std::min(start, s.tsc);
  return start == UINT64_MAX ? 0 : start;
}

std::uint64_t Trace::end_tsc() const {
  if (bounds_cached_) return cached_end_;
  std::uint64_t end = 0;
  for (const auto& e : fn_events) end = std::max(end, e.tsc);
  for (const auto& s : temp_samples) end = std::max(end, s.tsc);
  return end;
}

double Trace::seconds_from_start(std::uint64_t tsc) const {
  const std::uint64_t start = start_tsc();
  if (tsc <= start || tsc_ticks_per_second <= 0.0) return 0.0;
  return static_cast<double>(tsc - start) / tsc_ticks_per_second;
}

}  // namespace tempest::trace
