#include "trace/trace.hpp"

#include <algorithm>

namespace tempest::trace {

void Trace::sort_by_time() {
  std::stable_sort(fn_events.begin(), fn_events.end(),
                   [](const FnEvent& a, const FnEvent& b) { return a.tsc < b.tsc; });
  std::stable_sort(temp_samples.begin(), temp_samples.end(),
                   [](const TempSample& a, const TempSample& b) { return a.tsc < b.tsc; });
}

std::uint64_t Trace::start_tsc() const {
  std::uint64_t start = UINT64_MAX;
  for (const auto& e : fn_events) start = std::min(start, e.tsc);
  for (const auto& s : temp_samples) start = std::min(start, s.tsc);
  return start == UINT64_MAX ? 0 : start;
}

std::uint64_t Trace::end_tsc() const {
  std::uint64_t end = 0;
  for (const auto& e : fn_events) end = std::max(end, e.tsc);
  for (const auto& s : temp_samples) end = std::max(end, s.tsc);
  return end;
}

double Trace::seconds_from_start(std::uint64_t tsc) const {
  const std::uint64_t start = start_tsc();
  if (tsc <= start || tsc_ticks_per_second <= 0.0) return 0.0;
  return static_cast<double>(tsc - start) / tsc_ticks_per_second;
}

}  // namespace tempest::trace
