// Bulk pack/unpack for the trace-v2 record sections.
//
// The reader and writer used to convert one field at a time through
// byte loops — correct everywhere, but the dominant cost of draining a
// section once the I/O is staged. On little-endian hosts the wire
// layout of each record is exactly the leading bytes of its in-memory
// struct (static_asserts in codec.cpp pin the offsets), so a record
// converts with two overlapping vector copies. This header exposes
// whole-section converters: the default entry points dispatch at build
// time to SSE2, NEON, or a plain little-endian copy loop, and the
// portable byte-loop implementation stays available under codec::scalar
// both as the big-endian fallback and as the reference the fuzz tests
// compare against.
#pragma once

#include <cstddef>

#include "trace/trace.hpp"

namespace tempest::trace::codec {

/// Which bulk implementation the build selected: "sse2", "neon",
/// "le-copy" (little-endian without vector intrinsics), or "scalar".
const char* backend();

/// Convert `n` tightly packed wire records at `src` into structs.
/// unpack_fn_events returns false when any record carries an invalid
/// kind byte (dst contents are unspecified then) — the per-record
/// validation the scalar reader used to do, hoisted out of the copy.
bool unpack_fn_events(const char* src, std::size_t n, FnEvent* dst);
void unpack_temp_samples(const char* src, std::size_t n, TempSample* dst);
void unpack_clock_syncs(const char* src, std::size_t n, ClockSync* dst);

/// Convert `n` structs into tightly packed wire records at `dst`.
void pack_fn_events(const FnEvent* src, std::size_t n, char* dst);
void pack_temp_samples(const TempSample* src, std::size_t n, char* dst);
void pack_clock_syncs(const ClockSync* src, std::size_t n, char* dst);

/// Portable byte-loop reference implementations (endian-independent).
/// The default entry points above are required to produce field-wise
/// identical results; test_codec_fuzz holds them to that.
namespace scalar {
bool unpack_fn_events(const char* src, std::size_t n, FnEvent* dst);
void unpack_temp_samples(const char* src, std::size_t n, TempSample* dst);
void unpack_clock_syncs(const char* src, std::size_t n, ClockSync* dst);
void pack_fn_events(const FnEvent* src, std::size_t n, char* dst);
void pack_temp_samples(const TempSample* src, std::size_t n, char* dst);
void pack_clock_syncs(const ClockSync* src, std::size_t n, char* dst);
}  // namespace scalar

}  // namespace tempest::trace::codec
