#include "trace/writer.hpp"

#include <cstring>
#include <fstream>

namespace tempest::trace {
namespace {

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void put_string(std::ostream& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

}  // namespace

Status write_trace(std::ostream& out, const Trace& trace) {
  put(out, kTraceMagic);
  put(out, kTraceVersion);
  put(out, trace.tsc_ticks_per_second);
  put_string(out, trace.executable);
  put(out, trace.load_bias);

  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.nodes.size()));
  for (const auto& n : trace.nodes) {
    put(out, n.node_id);
    put_string(out, n.hostname);
  }

  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.sensors.size()));
  for (const auto& s : trace.sensors) {
    put(out, s.node_id);
    put(out, s.sensor_id);
    put(out, s.quant_step_c);
    put_string(out, s.name);
  }

  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.threads.size()));
  for (const auto& t : trace.threads) {
    put(out, t.thread_id);
    put(out, t.node_id);
    put(out, t.core);
  }

  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.synthetic_symbols.size()));
  for (const auto& s : trace.synthetic_symbols) {
    put(out, s.addr);
    put_string(out, s.name);
  }

  put<std::uint64_t>(out, trace.fn_events.size());
  for (const auto& e : trace.fn_events) {
    put(out, e.tsc);
    put(out, e.addr);
    put(out, e.thread_id);
    put(out, e.node_id);
    put(out, static_cast<std::uint8_t>(e.kind));
  }

  put<std::uint64_t>(out, trace.temp_samples.size());
  for (const auto& s : trace.temp_samples) {
    put(out, s.tsc);
    put(out, s.temp_c);
    put(out, s.node_id);
    put(out, s.sensor_id);
  }

  put<std::uint64_t>(out, trace.clock_syncs.size());
  for (const auto& c : trace.clock_syncs) {
    put(out, c.node_tsc);
    put(out, c.global_tsc);
    put(out, c.node_id);
  }

  if (!out) return Status::error("trace write failed (stream error)");
  return Status::ok();
}

Status write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::error("cannot open trace file for writing: " + path);
  return write_trace(out, trace);
}

}  // namespace tempest::trace
