#include "trace/writer.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <vector>

#include "trace/codec.hpp"

namespace tempest::trace {
namespace {

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void put_string(std::ostream& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

// Explicit little-endian packing for the bulk record sections; compiles
// to plain stores on LE hosts, stays correct elsewhere.
inline char* pack_u16(char* p, std::uint16_t v) {
  p[0] = static_cast<char>(v);
  p[1] = static_cast<char>(v >> 8);
  return p + 2;
}

inline char* pack_u32(char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>(v >> (8 * i));
  return p + 4;
}

inline char* pack_u64(char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>(v >> (8 * i));
  return p + 8;
}

inline char* pack_f64(char* p, double v) {
  return pack_u64(p, std::bit_cast<std::uint64_t>(v));
}

/// Staging-buffer budget per bulk write; a 10^7-event section flushes in
/// ~900 sizeable writes instead of 5*10^7 per-field stream calls. Kept
/// under 1 MiB: several-MiB write() calls trip per-call dirty-page
/// throttling on common kernels and lose an order of magnitude.
constexpr std::size_t kStagingBytes = std::size_t{256} << 10;

/// Frame + stream a bulk section: `pack_bulk(src, n, dst)` converts
/// whole chunks into the staging buffer (src/trace/codec.hpp), which
/// flushes in sizeable writes.
template <typename Record, typename PackFn>
void write_section(std::ostream& out, const std::vector<Record>& records,
                   std::uint32_t record_size, PackFn pack_bulk) {
  put<std::uint64_t>(out, records.size());
  put<std::uint32_t>(out, record_size);
  if (records.empty()) return;

  const std::size_t per_chunk =
      std::max<std::size_t>(1, kStagingBytes / record_size);
  std::vector<char> staging(per_chunk * record_size);
  std::size_t i = 0;
  while (i < records.size()) {
    const std::size_t n = std::min(per_chunk, records.size() - i);
    pack_bulk(records.data() + i, n, staging.data());
    out.write(staging.data(), static_cast<std::streamsize>(n * record_size));
    i += n;
  }
}

}  // namespace

Status write_trace(std::ostream& out, const Trace& trace) {
  put(out, kTraceMagic);
  put(out, kTraceVersion);
  put(out, trace.tsc_ticks_per_second);
  put_string(out, trace.executable);
  put(out, trace.load_bias);

  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.nodes.size()));
  for (const auto& n : trace.nodes) {
    put(out, n.node_id);
    put_string(out, n.hostname);
  }

  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.sensors.size()));
  for (const auto& s : trace.sensors) {
    put(out, s.node_id);
    put(out, s.sensor_id);
    put(out, s.quant_step_c);
    put_string(out, s.name);
  }

  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.threads.size()));
  for (const auto& t : trace.threads) {
    put(out, t.thread_id);
    put(out, t.node_id);
    put(out, t.core);
  }

  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.synthetic_symbols.size()));
  for (const auto& s : trace.synthetic_symbols) {
    put(out, s.addr);
    put_string(out, s.name);
  }

  write_section(out, trace.fn_events, kFnEventRecordSize,
                codec::pack_fn_events);
  write_section(out, trace.temp_samples, kTempSampleRecordSize,
                codec::pack_temp_samples);
  write_section(out, trace.clock_syncs, kClockSyncRecordSize,
                codec::pack_clock_syncs);

  // RUNSTATS trailer — only when the recorder populated it, so traces
  // assembled by tools (tests, converters) stay byte-identical to the
  // pre-RUNSTATS format.
  if (trace.run_stats.present) {
    const RunStats& rs = trace.run_stats;
    char buf[4 + 4 + kRunStatsRecordSize];
    char* p = buf;
    p = pack_u32(p, kRunStatsMarker);
    p = pack_u32(p, kRunStatsRecordSize);
    p = pack_u64(p, rs.events_recorded);
    p = pack_u64(p, rs.events_dropped);
    p = pack_u64(p, rs.buffer_flushes);
    p = pack_u64(p, rs.threads_registered);
    p = pack_u64(p, rs.tempd_ticks);
    p = pack_u64(p, rs.tempd_missed_ticks);
    p = pack_u64(p, rs.tempd_samples);
    p = pack_u64(p, rs.tempd_read_errors);
    p = pack_u64(p, rs.sensor_read_failures);
    p = pack_u64(p, rs.heartbeats);
    p = pack_u64(p, rs.peak_rss_kb);
    p = pack_f64(p, rs.wall_seconds);
    p = pack_f64(p, rs.tempd_cpu_seconds);
    p = pack_f64(p, rs.probe_cost_ns_mean);
    p = pack_f64(p, rs.cadence_jitter_us_mean);
    p = pack_u64(p, rs.events_suppressed);
    p = pack_u64(p, rs.events_throttled);
    p = pack_u64(p, rs.events_overwritten);
    p = pack_u64(p, rs.calls_observed);
    p = pack_u64(p, rs.ring_snapshots);
    out.write(buf, sizeof(buf));
  }

  // FLTR trailer — the suppression filter active during recording.
  if (trace.filter.present) {
    char buf[4 + 8];
    char* p = buf;
    p = pack_u32(p, kFilterMarker);
    p = pack_u64(p, trace.filter.resolved);
    out.write(buf, sizeof(buf));
    put_string(out, trace.filter.source);
    put<std::uint32_t>(out,
                       static_cast<std::uint32_t>(trace.filter.suppressed.size()));
    for (const std::string& name : trace.filter.suppressed) {
      put_string(out, name);
    }
  }

  if (!out) return Status::error("trace write failed (stream error)");
  return Status::ok();
}

Status write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::error("cannot open trace file for writing: " + path);
  return write_trace(out, trace);
}

}  // namespace tempest::trace
