#include "core/perblk.hpp"

#include <string>

#include "core/session.hpp"

namespace {

std::uint64_t block_addr(const char* function, const char* block) {
  return tempest::core::Session::instance().synthetic_addr(
      std::string(function) + ":" + block);
}

}  // namespace

extern "C" {

void tempest_blk_begin(const char* function, const char* block) {
  tempest::core::Session::instance().record_enter(block_addr(function, block));
}

void tempest_blk_end(const char* function, const char* block) {
  tempest::core::Session::instance().record_exit(block_addr(function, block));
}

}  // extern "C"
