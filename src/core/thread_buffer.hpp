// Per-thread event buffers.
//
// The instrumentation hot path (every function entry/exit) appends a
// fixed-size record to a thread-local chunked buffer: no locks, no
// branching beyond a chunk-full check, and allocation only once per
// 64Ki events. This is what keeps Tempest's overhead under the paper's
// 7% bound. Buffers are drained once, at session stop.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/tsc.hpp"
#include "trace/trace.hpp"

namespace tempest::core {

/// Append-only chunked store of FnEvents for a single thread.
class EventBuffer {
 public:
  static constexpr std::size_t kChunkSize = 64 * 1024;

  void push(const trace::FnEvent& e) {
    if (pos_ == kChunkSize || chunks_.empty()) new_chunk();
    chunks_.back()[pos_++] = e;
  }

  std::size_t size() const {
    if (chunks_.empty()) return 0;
    return (chunks_.size() - 1) * kChunkSize + pos_;
  }

  /// Copy all events out (drain happens once, post-run).
  void append_to(std::vector<trace::FnEvent>* out) const;

 private:
  void new_chunk();
  std::vector<std::unique_ptr<trace::FnEvent[]>> chunks_;
  std::size_t pos_ = kChunkSize;
};

/// Everything the hooks need per thread, reachable via one TLS pointer.
struct ThreadState {
  std::uint32_t thread_id = 0;
  std::uint16_t node_id = 0;
  std::uint16_t core = 0;
  const VirtualTsc* clock = nullptr;  ///< node clock; nullptr = global
  EventBuffer events;

  std::uint64_t now() const {
    const std::uint64_t t = rdtsc();
    return clock != nullptr ? clock->translate(t) : t;
  }
};

/// Owns ThreadStates for every thread that ever recorded an event.
/// Registration takes a mutex once per thread; the hot path never does.
class ThreadRegistry {
 public:
  /// Get (or create) the calling thread's state.
  ThreadState* current();

  /// Rebind the calling thread to a node/clock (used by the
  /// message-passing runtime when a rank starts on a simulated node).
  void bind_current(std::uint16_t node_id, std::uint16_t core, const VirtualTsc* clock);

  /// Drain all buffers into a trace (call only when threads are quiesced).
  void drain_into(trace::Trace* trace);

  /// Total buffered events across threads (diagnostics).
  std::size_t total_events();

  /// Forget all thread states; events recorded afterwards register fresh
  /// states. Existing TLS pointers are invalidated — only safe between
  /// sessions when worker threads have exited.
  void reset();

 private:
  ThreadState* register_thread();

  std::mutex mu_;
  std::vector<std::unique_ptr<ThreadState>> threads_;
  std::uint32_t next_id_ = 0;
};

}  // namespace tempest::core
