// Per-thread event buffers.
//
// The instrumentation hot path (every function entry/exit) appends a
// fixed-size record to a thread-local chunked buffer: no locks, no
// branching beyond a chunk-full check, and allocation only once per
// 64Ki events. This is what keeps Tempest's overhead under the paper's
// 7% bound. Buffers are drained once, at session stop.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/tsc.hpp"
#include "core/admission.hpp"
#include "trace/trace.hpp"

namespace tempest::core {

/// Append-only chunked store of FnEvents for a single thread. Events
/// are pushed with monotonically increasing timestamps (one thread, one
/// clock domain), so each buffer is a pre-sorted run that the trace
/// merger can exploit.
///
/// Optionally bounded (set_limit): once the cap is reached the buffer
/// switches to a single scratch chunk that newer events overwrite, so a
/// runaway workload costs bounded memory instead of OOM — and the drop
/// is *loud*: every lost event is counted (exactly), published to the
/// telemetry registry, surfaced in the trace's RUNSTATS trailer, and
/// flagged by tempest-lint. The hot path stays one compare + one store
/// either way; all cap logic lives in the cold new_chunk path.
///
/// Alternatively a flight-recorder ring (set_ring): the buffer keeps at
/// most N chunks and recycles the *oldest* when full, so what survives
/// is always the most recent window — the opposite drop policy from the
/// cap (which keeps the head and drops the tail). Overwritten events
/// are counted exactly, for the same conservation story.
class EventBuffer {
 public:
  static constexpr std::size_t kChunkSize = 64 * 1024;

  void push(const trace::FnEvent& e) {
    // pos_ starts at kChunkSize, so the empty buffer takes the same
    // (predictable, almost-never-taken) branch as a full chunk: exactly
    // one compare on the instrumentation hot path.
    if (pos_ == kChunkSize) new_chunk();
    active_[pos_++] = e;
  }

  /// Bulk append: chunk-wise memcpy instead of per-event pushes.
  void append(const trace::FnEvent* events, std::size_t n);

  /// Cap stored events at roughly `max_events` (rounded up to whole
  /// chunks; 0 = unbounded, the default). Call before recording starts.
  void set_limit(std::size_t max_events);

  /// Flight-recorder posture: retain roughly `max_events` (rounded up
  /// to whole chunks, min 2 so there is always a full chunk behind the
  /// write head), recycling the oldest chunk when full. 0 disables.
  /// Mutually exclusive with set_limit; ring wins when both are set.
  void set_ring(std::size_t max_events);

  bool ring() const { return ring_chunks_ != 0; }

  /// Events retained (excludes dropped ones).
  std::size_t size() const {
    if (chunks_.empty()) return 0;
    const std::size_t last = dropping_ ? kChunkSize : pos_;
    return (chunks_.size() - 1) * kChunkSize + last;
  }

  /// Events lost to the cap so far (exact).
  std::uint64_t dropped() const { return dropped_ + (dropping_ ? pos_ : 0); }

  /// Events recycled by the ring so far (exact; excludes trim at drain).
  std::uint64_t overwritten() const { return overwritten_; }

  /// Write-head position as an opaque monotonic value: advances on
  /// every push, never repeats within a session. The throttle's shadow
  /// stack snapshots it after an enter push; an unchanged cursor at the
  /// matching exit proves the enter is still the newest event (leaf
  /// call), making try_pop_last safe.
  std::uint64_t cursor() const {
    // kChunkSize = 2^16 and pos_ ranges 0..kChunkSize inclusive.
    return (chunk_seq_ << 17) | pos_;
  }

  /// Retract the newest event iff it is an *enter* for `addr` (the
  /// min-duration elision). Only sound straight after a cursor match.
  bool try_pop_last(std::uint64_t addr) {
    if (active_ == nullptr || pos_ == 0) return false;
    const trace::FnEvent& last = active_[pos_ - 1];
    if (last.addr != addr || last.kind != trace::FnEventKind::kEnter) {
      return false;
    }
    --pos_;
    return true;
  }

  /// Copy all retained events out (drain happens once, post-run);
  /// reserves the destination before inserting.
  void append_to(std::vector<trace::FnEvent>* out) const;

  /// Time-trimmed copy for TEMPEST_RING_SECONDS: events stamped before
  /// `min_tsc` are skipped (binary search inside the boundary chunk —
  /// per-thread buffers are time-ordered) and counted into *trimmed.
  void append_to(std::vector<trace::FnEvent>* out, std::uint64_t min_tsc,
                 std::uint64_t* trimmed) const;

  /// Publish not-yet-published stored/dropped counts to the telemetry
  /// registry (chunk boundaries publish eagerly; this flushes the
  /// remainder). Idempotent; called at drain.
  void publish_telemetry();

 private:
  void new_chunk();

  trace::FnEvent* active_ = nullptr;  ///< current write target chunk
  std::size_t pos_ = kChunkSize;
  std::vector<std::unique_ptr<trace::FnEvent[]>> chunks_;
  std::unique_ptr<trace::FnEvent[]> scratch_;  ///< overwrite target once capped
  std::size_t max_chunks_ = 0;                 ///< 0 = unbounded
  std::size_t ring_chunks_ = 0;                ///< 0 = not a ring
  bool dropping_ = false;
  std::uint64_t chunk_seq_ = 0;          ///< new_chunk calls (cursor epoch)
  std::uint64_t dropped_ = 0;            ///< completed scratch wraps only
  std::uint64_t overwritten_ = 0;        ///< events recycled by the ring
  std::uint64_t published_stored_ = 0;   ///< kEventsRecorded already counted
  std::uint64_t published_dropped_ = 0;  ///< kEventsDropped already counted
  std::uint64_t published_overwritten_ = 0;  ///< kEventsOverwritten counted
};

/// Everything the hooks need per thread, reachable via one TLS pointer.
struct ThreadState {
  std::uint32_t thread_id = 0;
  std::uint16_t node_id = 0;
  std::uint16_t core = 0;
  const VirtualTsc* clock = nullptr;  ///< node clock; nullptr = global
  /// Phase counter for 1-in-1024 probe-cost self-sampling. Plain (not
  /// atomic): TLS-confined like the buffer, never read cross-thread
  /// until drain.
  std::uint32_t probe_tick = 0;
  EventBuffer events;

  // Admission accounting. Plain u64s, TLS-confined (single writer);
  // read cross-thread only at drain/snapshot when the recorder is
  // quiesced. `admitted` counts events that reached the buffer (elision
  // retracts), `suppressed` the filter rejections, `throttled` the rate
  // cap / min-duration rejections; calls_observed is their sum.
  std::uint64_t admitted = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t throttled = 0;
  std::uint64_t published_suppressed = 0;  ///< telemetry already counted
  std::uint64_t published_throttled = 0;

  /// Per-thread throttle machinery, created lazily on the first hook
  /// call that reaches the throttle layer.
  std::unique_ptr<ThrottleState> throttle;

  std::uint64_t now() const {
    const std::uint64_t t = rdtsc();
    return clock != nullptr ? clock->translate(t) : t;
  }
};

/// Exact per-process admission totals, summed at drain/snapshot time
/// from the quiesced per-thread counters. RUNSTATS uses these rather
/// than the telemetry counters: the counters are published at chunk /
/// block granularity for the live heartbeat and over-count retained
/// events in ring mode (a recycled chunk was already published).
struct DrainTotals {
  std::uint64_t retained = 0;     ///< events that made it into the trace
  std::uint64_t dropped = 0;      ///< lost to the cap
  std::uint64_t overwritten = 0;  ///< recycled by the ring + trimmed at drain
  std::uint64_t admitted = 0;     ///< = retained + dropped + overwritten
  std::uint64_t suppressed = 0;
  std::uint64_t throttled = 0;

  std::uint64_t observed() const { return admitted + suppressed + throttled; }
};

/// Owns ThreadStates for every thread that ever recorded an event.
/// Registration takes a mutex once per thread; the hot path never does.
///
/// Concurrency model: each ThreadState is written only by its owning
/// thread (TLS-confined); `mu_` protects the registry containers. A
/// reset() retires — but never destroys — the states of the previous
/// generation, so a thread that is mid-record while another thread
/// resets keeps writing into a retired (leaked-until-registry-death)
/// buffer instead of freed memory; its next current() call
/// re-registers under the new generation.
class ThreadRegistry {
 public:
  /// Get (or create) the calling thread's state.
  ThreadState* current() EXCLUDES(mu_);

  /// Rebind the calling thread to a node/clock (used by the
  /// message-passing runtime when a rank starts on a simulated node).
  void bind_current(std::uint16_t node_id, std::uint16_t core, const VirtualTsc* clock)
      EXCLUDES(mu_);

  /// Per-thread event cap applied to every subsequently registered
  /// thread (0 = unbounded). Threads registered before the call keep
  /// their old limit — set it before the session records.
  void set_buffer_limit(std::size_t max_events_per_thread) EXCLUDES(mu_);

  /// Flight-recorder ring size applied to every subsequently registered
  /// thread (0 = off). Wins over set_buffer_limit. Set before recording.
  void set_buffer_ring(std::size_t ring_events_per_thread) EXCLUDES(mu_);

  /// Drain all buffers into a trace (call only when threads are
  /// quiesced). Reserves the destination once for the total event count
  /// and records one Trace::fn_event_runs entry per thread, so
  /// Trace::sort_by_time can k-way-merge the per-thread runs instead of
  /// re-sorting from scratch.
  ///
  /// `ring_ticks` (nonzero only in TEMPEST_RING_SECONDS mode) trims each
  /// thread's buffer to events newer than its clock's "now minus the
  /// window"; trimmed events count as overwritten. `totals`, when
  /// non-null, receives the exact admission accounting for RUNSTATS.
  void drain_into(trace::Trace* trace, std::uint64_t ring_ticks,
                  DrainTotals* totals) EXCLUDES(mu_);
  void drain_into(trace::Trace* trace) EXCLUDES(mu_) {
    drain_into(trace, 0, nullptr);
  }

  /// Like drain_into but non-destructive and without telemetry flushes:
  /// copies the retained window out for a flight-recorder snapshot while
  /// the session is merely paused (active flag cleared), not stopped.
  /// Thread ids/cores are appended to trace->threads as in drain_into.
  void snapshot_into(trace::Trace* trace, std::uint64_t ring_ticks,
                     DrainTotals* totals) EXCLUDES(mu_);

  /// Total buffered events across threads. Call only when recording
  /// threads are quiesced — it reads every live buffer (diagnostics).
  std::size_t total_events() EXCLUDES(mu_);

  /// Start a new registration generation: subsequent events register
  /// fresh states with ids from 0. Previous-generation states are
  /// retired (kept alive until the registry dies) so concurrent
  /// recorders never touch freed memory; their in-flight events are
  /// dropped, not drained.
  void reset() EXCLUDES(mu_);

 private:
  ThreadState* register_thread() EXCLUDES(mu_);

  /// Shared body of drain_into/snapshot_into. REQUIRES(mu_) via callers.
  void collect_into(trace::Trace* trace, std::uint64_t ring_ticks,
                    DrainTotals* totals, bool publish) REQUIRES(mu_);

  common::Mutex mu_;
  std::vector<std::unique_ptr<ThreadState>> threads_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<ThreadState>> retired_ GUARDED_BY(mu_);
  std::uint32_t next_id_ GUARDED_BY(mu_) = 0;
  std::size_t buffer_limit_ GUARDED_BY(mu_) = 0;
  std::size_t buffer_ring_ GUARDED_BY(mu_) = 0;
};

}  // namespace tempest::core
