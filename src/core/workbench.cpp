#include "core/workbench.hpp"

#include <chrono>
#include <thread>

#include "common/tsc.hpp"
#include "core/session.hpp"

namespace tempest::core {
namespace {

// Spin sink: opaque to the optimizer so the burn loop does real work.
volatile std::uint64_t g_burn_sink = 0;

/// Busy-spin for roughly `seconds` of wall time.
void spin_for(double seconds) {
  const std::uint64_t start = rdtsc();
  const std::uint64_t ticks = seconds_to_tsc(seconds);
  std::uint64_t x = g_burn_sink + 0x9e3779b97f4a7c15ULL;
  while (rdtsc() - start < ticks) {
    for (int i = 0; i < 64; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
  }
  g_burn_sink = x;
}

}  // namespace

Workbench::Workbench(simnode::SimNode* node, std::uint16_t node_id, std::uint16_t core)
    : node_(node), node_id_(node_id), core_(core) {}

void Workbench::attach() {
  (void)Session::instance().attach_current_thread(node_id_, core_);
  node_->core_meter(core_).set_busy(rdtsc());
}

void Workbench::detach() { node_->core_meter(core_).set_idle(rdtsc()); }

void Workbench::burn(double work_seconds) {
  node_->core_meter(core_).set_busy(rdtsc());
  // Integrate work in small slices: each slice of wall time dt completes
  // dt * speed_factor of work, so a throttled node takes longer. The
  // credit uses measured elapsed time so preemption does not inflate
  // the burn (the scheduler stretching a slice still counts as work).
  constexpr double kSlice = 0.002;
  double done = 0.0;
  while (done < work_seconds) {
    const std::uint64_t t0 = rdtsc();
    spin_for(kSlice);
    done += tsc_to_seconds(rdtsc() - t0) * node_->speed_factor();
  }
}

void Workbench::idle(double wall_seconds) {
  simnode::IdleScope idle(node_->core_meter(core_), rdtsc());
  std::this_thread::sleep_for(std::chrono::duration<double>(wall_seconds));
}

}  // namespace tempest::core
