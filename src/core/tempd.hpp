// tempd: the temperature-measuring sampler.
//
// The paper launches a light-weight process that samples every thermal
// sensor four times per second for the lifetime of the profiled
// application, and validates that it uses < 1% CPU. Here tempd is a
// dedicated thread (a documented substitution: same sampling loop, same
// data path, no IPC needed because the trace is in-process); it also
// advances each simulated node's thermal model to "now" before reading,
// and emits the clock-sync observations used for cross-node alignment.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "sensors/backend.hpp"
#include "simnode/node.hpp"
#include "trace/trace.hpp"

namespace tempest::core {

/// One profiled node as tempd sees it.
struct NodeBinding {
  std::uint16_t node_id = 0;
  std::string hostname;
  sensors::SensorBackend* backend = nullptr;              ///< never null
  std::unique_ptr<sensors::SensorBackend> owned_backend;  ///< set when session-owned
  simnode::SimNode* sim = nullptr;                        ///< null for physical nodes
  std::vector<sensors::SensorInfo> sensors;               ///< enumerated at registration
  /// Invoked at each sampling tick before the node advances; the
  /// transparent auto-profiling mode uses it to feed the node the
  /// process's measured CPU utilisation.
  std::function<void()> on_tick;
};

class Tempd {
 public:
  struct Stats {
    std::uint64_t ticks = 0;
    std::uint64_t samples = 0;
    std::uint64_t read_errors = 0;
    /// Deadlines skipped because a sweep overran whole periods. The
    /// loop schedules against absolute deadlines (start + n*period), so
    /// an overrun skips forward instead of compressing later gaps —
    /// missed ticks are counted, never smeared into drift.
    std::uint64_t missed_ticks = 0;
    double cpu_seconds = 0.0;  ///< tempd thread CPU time
  };

  ~Tempd() { stop(); }

  /// Install a hook the sampler thread invokes once per tick, after the
  /// sensor sweep (the session uses it to service flight-recorder
  /// snapshot requests and the adaptive controller from a thread that
  /// safely owns the sample vectors). Set while stopped; a running
  /// sampler keeps its current hook.
  void set_tick_hook(std::function<void()> hook) EXCLUDES(lifecycle_mu_);

  /// Begin sampling `nodes` at `hz`. The bindings must outlive the run.
  /// No-op when already running.
  void start(double hz, std::vector<NodeBinding>* nodes) EXCLUDES(lifecycle_mu_);

  /// Stop and join. Idempotent: safe to call repeatedly, from multiple
  /// threads concurrently, and when the sampler thread never started.
  void stop() EXCLUDES(lifecycle_mu_);

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Results; valid after stop() (or before start()). The join inside
  /// stop() is the happens-before edge that publishes them.
  std::vector<trace::TempSample>& samples() { return samples_; }
  std::vector<trace::ClockSync>& clock_syncs() { return clock_syncs_; }
  const Stats& stats() const { return stats_; }

 private:
  void run_loop(double hz);
  void sample_all_nodes();

  // Lifecycle lock: serialises start/stop (including concurrent stop()
  // racing the destructor) and guards the thread handle. The sampler
  // thread itself never takes it — it owns samples_/clock_syncs_/stats_
  // exclusively between start() and the join in stop(), and reads
  // nodes_ published by the thread-creation edge in start().
  common::Mutex lifecycle_mu_;
  std::thread thread_ GUARDED_BY(lifecycle_mu_);
  std::vector<NodeBinding>* nodes_ = nullptr;
  std::function<void()> tick_hook_;  ///< read only by the sampler thread
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::vector<trace::TempSample> samples_;
  std::vector<trace::ClockSync> clock_syncs_;
  Stats stats_;
};

}  // namespace tempest::core
