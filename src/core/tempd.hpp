// tempd: the temperature-measuring sampler.
//
// The paper launches a light-weight process that samples every thermal
// sensor four times per second for the lifetime of the profiled
// application, and validates that it uses < 1% CPU. Here tempd is a
// dedicated thread (a documented substitution: same sampling loop, same
// data path, no IPC needed because the trace is in-process); it also
// advances each simulated node's thermal model to "now" before reading,
// and emits the clock-sync observations used for cross-node alignment.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sensors/backend.hpp"
#include "simnode/node.hpp"
#include "trace/trace.hpp"

namespace tempest::core {

/// One profiled node as tempd sees it.
struct NodeBinding {
  std::uint16_t node_id = 0;
  std::string hostname;
  sensors::SensorBackend* backend = nullptr;              ///< never null
  std::unique_ptr<sensors::SensorBackend> owned_backend;  ///< set when session-owned
  simnode::SimNode* sim = nullptr;                        ///< null for physical nodes
  std::vector<sensors::SensorInfo> sensors;               ///< enumerated at registration
  /// Invoked at each sampling tick before the node advances; the
  /// transparent auto-profiling mode uses it to feed the node the
  /// process's measured CPU utilisation.
  std::function<void()> on_tick;
};

class Tempd {
 public:
  struct Stats {
    std::uint64_t ticks = 0;
    std::uint64_t samples = 0;
    std::uint64_t read_errors = 0;
    double cpu_seconds = 0.0;  ///< tempd thread CPU time
  };

  ~Tempd() { stop(); }

  /// Begin sampling `nodes` at `hz`. The bindings must outlive the run.
  void start(double hz, std::vector<NodeBinding>* nodes);

  /// Stop and join. Safe to call repeatedly.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Results; valid after stop() (or before start()).
  std::vector<trace::TempSample>& samples() { return samples_; }
  std::vector<trace::ClockSync>& clock_syncs() { return clock_syncs_; }
  const Stats& stats() const { return stats_; }

 private:
  void run_loop(double hz);
  void sample_all_nodes();

  std::vector<NodeBinding>* nodes_ = nullptr;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::vector<trace::TempSample> samples_;
  std::vector<trace::ClockSync> clock_syncs_;
  Stats stats_;
};

}  // namespace tempest::core
