// The Tempest profiling session.
//
// One per process (like the paper's shared library): owns the node
// bindings, the tempd sampler, the per-thread event buffers, and the
// synthetic-symbol registry for the explicit API. Lifecycle mirrors the
// paper: start before the workload (the library constructor launches
// tempd "before the main function of the profiled application is
// invoked"), stop at exit ("the destructor ... sends a signal to tempd
// for termination and performs cleanup"), then the parser takes over.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "core/admission.hpp"
#include "core/config.hpp"
#include "core/tempd.hpp"
#include "core/thread_buffer.hpp"
#include "simnode/node.hpp"
#include "telemetry/heartbeat.hpp"
#include "trace/trace.hpp"

namespace tempest::collectd {
class CollectClient;
}  // namespace tempest::collectd

namespace tempest::core {

class Session {
 public:
  /// The process-wide session (function-local static; never destroyed
  /// before hooks can fire).
  static Session& instance();

  // -- setup (only while inactive) --------------------------------------

  /// Register a simulated node; returns its node id. The node must
  /// outlive the session run.
  std::uint16_t register_sim_node(simnode::SimNode* node);

  /// Register this host as a node using real hwmon sensors. Fails when
  /// the host exposes none (callers then fall back to a simulated node).
  Result<std::uint16_t> register_hwmon_node(const std::string& hostname = "localhost");

  /// Drop all node bindings (between runs in one process).
  void clear_nodes();

  /// Install a per-sampling-tick hook on a registered node (used by the
  /// auto-profiling mode to feed measured CPU utilisation to the
  /// simulated node). Only while inactive.
  Status set_node_tick_hook(std::uint16_t node_id, std::function<void()> hook);

  // -- lifecycle ---------------------------------------------------------

  /// Start profiling: binds affinity per config, starts tempd, arms the
  /// instrumentation hooks. Error if already active or no nodes.
  Status start(const SessionConfig& config);

  /// Stop: disarms hooks, stops tempd, assembles the trace (events,
  /// samples, metadata, synthetic symbols) and writes it to
  /// config.output_path when set.
  Status stop();

  bool active() const { return active_.load(std::memory_order_acquire); }
  const SessionConfig& config() const { return config_; }

  /// The assembled trace of the last completed run.
  const trace::Trace& last_trace() const { return trace_; }
  trace::Trace take_trace() { return std::move(trace_); }

  const Tempd::Stats& tempd_stats() const { return tempd_.stats(); }

  /// Ask the tempd thread to write a flight-recorder snapshot and wait
  /// (polling) until it lands or `timeout_s` passes. Returns the
  /// snapshot file path. Requires an active session with an output path
  /// and a running sampler.
  Result<std::string> request_snapshot(double timeout_s = 5.0);

  /// Flight-recorder snapshots written so far this run.
  std::uint64_t snapshots_written() const {
    return snapshots_written_.load(std::memory_order_acquire);
  }

  // -- hot path (called by hooks / explicit API) --------------------------

  void record_enter(std::uint64_t addr) {
    if (!active_.load(std::memory_order_relaxed)) return;
    ThreadState* ts = registry_.current();
    const AdmissionPlan* plan = admission_.load(std::memory_order_acquire);
    if (plan != nullptr) {
      if (plan->filter.contains(addr)) {
        count_suppressed(ts);
        return;
      }
      if (plan->throttling) {
        record_throttled(ts, plan, addr, trace::FnEventKind::kEnter);
        return;
      }
    }
    ++ts->admitted;
    if ((++ts->probe_tick & (kProbeSamplePeriod - 1)) == 0) {
      record_probed(ts, addr, trace::FnEventKind::kEnter);
      return;
    }
    ts->events.push({ts->now(), addr, ts->thread_id, ts->node_id,
                     trace::FnEventKind::kEnter});
  }

  void record_exit(std::uint64_t addr) {
    if (!active_.load(std::memory_order_relaxed)) return;
    ThreadState* ts = registry_.current();
    const AdmissionPlan* plan = admission_.load(std::memory_order_acquire);
    if (plan != nullptr) {
      if (plan->filter.contains(addr)) {
        count_suppressed(ts);
        return;
      }
      if (plan->throttling) {
        record_throttled(ts, plan, addr, trace::FnEventKind::kExit);
        return;
      }
    }
    ++ts->admitted;
    if ((++ts->probe_tick & (kProbeSamplePeriod - 1)) == 0) {
      record_probed(ts, addr, trace::FnEventKind::kExit);
      return;
    }
    ts->events.push({ts->now(), addr, ts->thread_id, ts->node_id,
                     trace::FnEventKind::kExit});
  }

  // -- thread/node association -------------------------------------------

  /// Bind the calling thread's future events to a registered node and
  /// core (the message-passing runtime calls this as each rank starts).
  Status attach_current_thread(std::uint16_t node_id, std::uint16_t core);

  /// Synthetic address for a named region (explicit/per-block API).
  /// Stable for the process lifetime; same name -> same address.
  std::uint64_t synthetic_addr(const std::string& name) EXCLUDES(synth_mu_);

  ThreadRegistry& registry() { return registry_; }
  simnode::SimNode* sim_node(std::uint16_t node_id);

 private:
  Session() = default;

  /// Every kProbeSamplePeriod-th record_* call routes here: the push is
  /// bracketed by rdtsc reads and the measured cost lands in the
  /// kProbeCostNs histogram. Power of two so the hot-path check is a
  /// mask; 1-in-1024 keeps the self-measurement's own cost negligible.
  static constexpr std::uint32_t kProbeSamplePeriod = 1024;
  void record_probed(ThreadState* ts, std::uint64_t addr, trace::FnEventKind kind);

  /// Rejection counters publish to telemetry in blocks so the rejected
  /// hook path stays a TLS increment plus one predictable compare; the
  /// exact remainder flushes at drain.
  static constexpr std::uint64_t kAdmissionPublishBlock = 4096;

  void count_suppressed(ThreadState* ts) {
    ++ts->suppressed;
    if (ts->suppressed - ts->published_suppressed >= kAdmissionPublishBlock) {
      publish_suppressed(ts);
    }
  }
  void publish_suppressed(ThreadState* ts);    ///< cold: telemetry flush
  void count_throttled(ThreadState* ts, std::uint64_t n);

  /// Slow lane for sessions with throttling enabled: rate-cap table,
  /// shadow stack for paired decisions, min-duration leaf elision.
  void record_throttled(ThreadState* ts, const AdmissionPlan* plan,
                        std::uint64_t addr, trace::FnEventKind kind);

  /// Push an admitted event stamped `now`, keeping the 1-in-1024
  /// probe-cost self-sampling alive on the throttled lane.
  void push_admitted(ThreadState* ts, std::uint64_t now, std::uint64_t addr,
                     trace::FnEventKind kind);

  /// Consume config_.filter_path: parse, resolve names against the ELF
  /// symtab (+ already-minted synthetic regions), build the suppression
  /// set into `plan`. Unresolved names wait in filter_names_ for
  /// synthetic_addr to mint them.
  void load_filter(AdmissionPlan* plan) EXCLUDES(synth_mu_);

  /// Runs on the tempd thread once per sampling tick: services snapshot
  /// requests (signal/API/watchdog) and the adaptive boost controller.
  void on_tempd_tick();
  void adaptive_tick();

  /// Write the current flight-recorder window as a standalone trace-v2
  /// file next to the output path. Called only from the tempd thread
  /// (which owns the sample vectors). Recording is paused around the
  /// buffer copy and re-armed unless stop() is underway.
  void write_snapshot(const char* trigger);

  /// Fold exact drain totals + telemetry + tempd stats into `rs`.
  void assemble_run_stats(trace::RunStats* rs, const DrainTotals& totals);

  // Lifecycle members (config_, nodes_, trace_, ...) are mutated only
  // from the controlling thread while the session is inactive, or
  // published to worker threads through active_ / thread creation.
  // synthetic_ is the one structure the explicit API mutates from
  // arbitrary threads mid-run, hence its lock.
  SessionConfig config_;
  std::atomic<bool> active_{false};
  std::vector<NodeBinding> nodes_;
  Tempd tempd_;
  ThreadRegistry registry_;
  /// Live stream to a tempest-collectd daemon (TEMPEST_COLLECT); null
  /// when unset or unreachable — recording then stays file-only.
  /// Declared before heartbeat_ on purpose: the emitter's line sink
  /// captures this client raw, so the emitter must be destroyed (final
  /// snapshot emitted, thread joined) while the client is still alive —
  /// members destroy in reverse declaration order.
  std::unique_ptr<collectd::CollectClient> collect_;
  telemetry::HeartbeatEmitter heartbeat_;
  trace::Trace trace_;
  std::uint64_t start_tsc_ = 0;

  // -- admission pipeline -----------------------------------------------
  // plan_ is built at start() and published to the hooks through
  // admission_ (null = admit everything). Old plans are retired, never
  // freed mid-process, for the same reason retired ThreadStates are: a
  // hook that loaded the pointer just before stop() may still probe it.
  std::unique_ptr<AdmissionPlan> plan_;
  std::vector<std::unique_ptr<AdmissionPlan>> retired_plans_;
  std::atomic<const AdmissionPlan*> admission_{nullptr};
  trace::FilterDecl filter_decl_ GUARDED_BY(synth_mu_);
  /// Filter rules that did not match an ELF symbol: candidate synthetic
  /// region names, consulted (under synth_mu_) when regions are minted.
  std::vector<std::string> filter_names_ GUARDED_BY(synth_mu_);
  /// Global sampling boost: the throttle admits 1 in 2^(shift+boost).
  /// Written by the tempd-thread controller, read relaxed by hooks.
  std::atomic<std::uint32_t> boost_{0};
  double tsc_hz_ = 0.0;
  std::uint64_t ring_trim_ticks_ = 0;  ///< TEMPEST_RING_SECONDS in ticks

  // -- flight recorder ----------------------------------------------------
  std::atomic<bool> snapshot_requested_{false};
  std::atomic<std::uint64_t> snapshots_written_{0};
  std::atomic<bool> stopping_{false};  ///< stop() underway: don't re-arm
  bool watchdog_snapped_ = false;      ///< tempd thread only
  bool signal_installed_ = false;
  common::Mutex snap_mu_;
  std::string last_snapshot_path_ GUARDED_BY(snap_mu_);

  common::Mutex synth_mu_;
  std::vector<trace::SyntheticSymbol> synthetic_ GUARDED_BY(synth_mu_);
};

}  // namespace tempest::core
