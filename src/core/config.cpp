#include "core/config.hpp"

#include "common/env.hpp"

namespace tempest::core {

SessionConfig SessionConfig::from_env() {
  SessionConfig c;
  c.sample_hz = env_double("TEMPEST_HZ", c.sample_hz);
  if (c.sample_hz <= 0.0) c.sample_hz = 4.0;
  c.output_path = env_string("TEMPEST_OUT", c.output_path);
  TempUnit unit = c.unit;
  if (parse_temp_unit(env_string("TEMPEST_UNIT", "F"), &unit)) c.unit = unit;
  c.bind_affinity = env_bool("TEMPEST_BIND", c.bind_affinity);
  c.bind_cpu = static_cast<int>(env_long("TEMPEST_CPU", c.bind_cpu));
  c.auto_report = env_bool("TEMPEST_REPORT", c.auto_report);
  const long min_samples = env_long("TEMPEST_MIN_SAMPLES", 2);
  c.min_samples_significant = min_samples < 0 ? 0 : static_cast<std::size_t>(min_samples);
  return c;
}

}  // namespace tempest::core
