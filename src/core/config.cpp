#include "core/config.hpp"

#include "common/env.hpp"

namespace tempest::core {

SessionConfig SessionConfig::from_env() {
  SessionConfig c;
  c.sample_hz = env_double("TEMPEST_HZ", c.sample_hz);
  if (c.sample_hz <= 0.0) c.sample_hz = 4.0;
  c.output_path = env_string("TEMPEST_OUT", c.output_path);
  TempUnit unit = c.unit;
  if (parse_temp_unit(env_string("TEMPEST_UNIT", "F"), &unit)) c.unit = unit;
  c.bind_affinity = env_bool("TEMPEST_BIND", c.bind_affinity);
  c.bind_cpu = static_cast<int>(env_long("TEMPEST_CPU", c.bind_cpu));
  c.auto_report = env_bool("TEMPEST_REPORT", c.auto_report);
  const long min_samples = env_long("TEMPEST_MIN_SAMPLES", 2);
  c.min_samples_significant = min_samples < 0 ? 0 : static_cast<std::size_t>(min_samples);
  c.heartbeat_period_s = env_double("TEMPEST_HEARTBEAT", c.heartbeat_period_s);
  if (c.heartbeat_period_s < 0.0) c.heartbeat_period_s = 0.0;
  const long max_events = env_long("TEMPEST_MAX_EVENTS", 0);
  c.max_events_per_thread = max_events < 0 ? 0 : static_cast<std::size_t>(max_events);
  c.watchdog = env_bool("TEMPEST_WATCHDOG", c.watchdog);
  c.watchdog_budget = env_double("TEMPEST_WATCHDOG_BUDGET", c.watchdog_budget);
  if (c.watchdog_budget <= 0.0) c.watchdog_budget = 0.01;
  return c;
}

}  // namespace tempest::core
