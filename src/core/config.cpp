#include "core/config.hpp"

#include <csignal>
#include <mutex>
#include <set>
#include <string>

#include "common/env.hpp"
#include "telemetry/log.hpp"

namespace tempest::core {
namespace {

/// Warn once per (variable, complaint) per process: from_env runs on
/// every session start, and a constructor-started session in a test
/// loop must not spam stderr with the same rejection hundreds of times.
void warn_limited(const std::string& name, const std::string& what) {
  static std::mutex mu;
  static std::set<std::string>* warned = new std::set<std::string>();
  const std::string key = name + "\x1f" + what;
  {
    const std::lock_guard<std::mutex> lock(mu);
    if (!warned->insert(key).second) return;
  }
  telemetry::log_warn("config", name + ": " + what);
}

/// Checked numeric parse with the rejection policy the satellites ask
/// for: malformed values warn (once) and keep the default; values below
/// `min_ok` warn and keep the default.
long env_long_or(const char* name, long fallback, long min_ok) {
  long v = fallback;
  switch (env_long_checked(name, &v)) {
    case EnvParse::kAbsent:
      return fallback;
    case EnvParse::kMalformed:
      warn_limited(name, "malformed numeric value; using default " +
                             std::to_string(fallback));
      return fallback;
    case EnvParse::kOk:
      break;
  }
  if (v < min_ok) {
    warn_limited(name, "value " + std::to_string(v) + " out of range (min " +
                           std::to_string(min_ok) + "); using default " +
                           std::to_string(fallback));
    return fallback;
  }
  return v;
}

double env_double_or(const char* name, double fallback, double min_ok) {
  double v = fallback;
  switch (env_double_checked(name, &v)) {
    case EnvParse::kAbsent:
      return fallback;
    case EnvParse::kMalformed:
      warn_limited(name, "malformed numeric value; using default");
      return fallback;
    case EnvParse::kOk:
      break;
  }
  if (v < min_ok) {
    warn_limited(name, "value " + std::to_string(v) +
                           " below the minimum; using default");
    return fallback;
  }
  return v;
}

/// "USR1", "SIGUSR2", or a raw signal number. -1 when unset/unknown.
int parse_signal(const std::string& spec) {
  if (spec.empty()) return -1;
  std::string name = spec;
  if (name.rfind("SIG", 0) == 0) name = name.substr(3);
  if (name == "USR1") return SIGUSR1;
  if (name == "USR2") return SIGUSR2;
  if (name == "HUP") return SIGHUP;
  try {
    std::size_t pos = 0;
    const int n = std::stoi(spec, &pos);
    if (pos == spec.size() && n > 0 && n < 64) return n;
  } catch (...) {
  }
  warn_limited("TEMPEST_SNAPSHOT_SIGNAL",
               "unrecognised signal '" + spec + "'; snapshots disabled");
  return -1;
}

}  // namespace

SessionConfig SessionConfig::from_env() {
  SessionConfig c;
  c.sample_hz = env_double_or("TEMPEST_HZ", c.sample_hz, 1e-6);
  c.output_path = env_string("TEMPEST_OUT", c.output_path);
  TempUnit unit = c.unit;
  if (parse_temp_unit(env_string("TEMPEST_UNIT", "F"), &unit)) c.unit = unit;
  c.bind_affinity = env_bool("TEMPEST_BIND", c.bind_affinity);
  c.bind_cpu = static_cast<int>(env_long("TEMPEST_CPU", c.bind_cpu));
  c.auto_report = env_bool("TEMPEST_REPORT", c.auto_report);
  c.min_samples_significant =
      static_cast<std::size_t>(env_long_or("TEMPEST_MIN_SAMPLES", 2, 0));
  c.heartbeat_period_s = env_double("TEMPEST_HEARTBEAT", c.heartbeat_period_s);
  if (c.heartbeat_period_s < 0.0) c.heartbeat_period_s = 0.0;
  c.collect_spec = env_string("TEMPEST_COLLECT", c.collect_spec);
  // An explicit cap of 0 is never what anyone meant (it reads as
  // "record nothing"); reject it — and negatives, and garbage — with a
  // warning and stay on the default (unbounded).
  c.max_events_per_thread =
      static_cast<std::size_t>(env_long_or("TEMPEST_MAX_EVENTS", 0, 1));
  c.watchdog = env_bool("TEMPEST_WATCHDOG", c.watchdog);
  c.watchdog_budget =
      env_double_or("TEMPEST_WATCHDOG_BUDGET", c.watchdog_budget, 1e-9);

  c.filter_path = env_string("TEMPEST_FILTER", c.filter_path);
  c.min_duration_ns = env_long_or("TEMPEST_MIN_DURATION_NS", 0, 0);
  c.rate_cap = env_long_or("TEMPEST_RATE_CAP", 0, 0);
  c.adaptive = env_bool("TEMPEST_ADAPTIVE", c.adaptive);
  c.ring_events =
      static_cast<std::size_t>(env_long_or("TEMPEST_RING_EVENTS", 0, 0));
  c.ring_seconds = env_double_or("TEMPEST_RING_SECONDS", 0.0, 0.0);
  c.snapshot_signal =
      parse_signal(env_string("TEMPEST_SNAPSHOT_SIGNAL", ""));
  return c;
}

}  // namespace tempest::core
