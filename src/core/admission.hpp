// Admission pipeline for the recording runtime.
//
// PR-6's tempest-audit emits TEMPEST_FILTER suppression files; this is
// the runtime half that consumes them (the ROADMAP's "adaptive
// instrumentation" loop, after ScALPEL in PAPERS.md). Every hook call
// now passes through a layered admission decision before any buffer
// write:
//
//   suppression set  ->  throttle (rate cap / min-duration)  ->  buffer
//
// Layer 1 is an open-addressing set of suppressed function addresses,
// probed lock-free on the hot path (the set is immutable after session
// start except for synthetic-region addresses, which are CAS-inserted).
// Layer 2 is per-thread state: a per-function call-rate table with
// hot-function auto-promotion to coarser sampling, and a shadow stack
// that keeps enter/exit decisions paired and elides leaf calls shorter
// than the min-duration cutoff.
//
// Everything rejected is counted exactly (single-writer per-thread
// counters), so RUNSTATS can state the conservation invariant
//   calls_observed == recorded + suppressed + throttled
//                     + dropped + overwritten
// and tempest-lint can check it.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace tempest::core {

/// Lock-free open-addressing hash set of function addresses. Fixed
/// capacity (sized at build for a <= 50% load factor); lookups are
/// wait-free and insertion is a CAS loop, so synthetic-region addresses
/// minted mid-run can join the set while hooks probe it.
class AddrSet {
 public:
  /// Capacity is rounded up to a power of two holding at least
  /// 2 * expected entries (min 64 slots).
  explicit AddrSet(std::size_t expected = 0);

  AddrSet(const AddrSet&) = delete;
  AddrSet& operator=(const AddrSet&) = delete;

  /// Hot path: one multiply-mix, then a linear probe that in practice
  /// terminates on the first or second slot at <= 50% load.
  bool contains(std::uint64_t addr) const {
    const std::size_t m = mask_;
    std::size_t i = mix(addr) & m;
    for (;;) {
      const std::uint64_t k = slots_[i].load(std::memory_order_relaxed);
      if (k == addr) return true;
      if (k == 0) return false;
      i = (i + 1) & m;
    }
  }

  /// Thread-safe. False when the set is at its load-factor limit or
  /// `addr` is 0 (the empty-slot sentinel; no real function lives
  /// there). Inserting a present address is a no-op returning true.
  bool insert(std::uint64_t addr);

  std::size_t size() const { return used_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x *= 0x9E37'79B9'7F4A'7C15ULL;  // Fibonacci hashing; addr low bits are 0-ish
    return x ^ (x >> 29);
  }

  std::vector<std::atomic<std::uint64_t>> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> used_{0};
};

/// Immutable-after-start throttle knobs, in TSC ticks so the hot path
/// never converts units.
struct ThrottleSettings {
  std::uint64_t min_duration_ticks = 0;  ///< elide leaf pairs shorter than this
  std::uint64_t window_ticks = 0;        ///< rate-cap accounting window
  std::uint32_t rate_cap = 0;  ///< admitted calls per fn/thread/window (0 = off)
  bool adaptive = false;       ///< tempd adjusts a global sampling boost

  bool enabled() const {
    return min_duration_ticks != 0 || rate_cap != 0 || adaptive;
  }
};

/// Per-function call-rate cell (one thread's view of one function).
struct FnThrottle {
  std::uint64_t addr = 0;
  std::uint64_t window_start = 0;
  std::uint32_t calls = 0;     ///< hook calls observed this window
  std::uint32_t admitted = 0;  ///< calls admitted this window
  std::uint8_t shift = 0;      ///< admit 1 in 2^shift (auto-promotion)
};

/// One frame of the per-thread shadow stack: remembers the admission
/// decision made at enter so the matching exit follows it (a dropped
/// enter must drop its exit, or the trace fills with orphan exits).
struct PendingFrame {
  std::uint64_t addr = 0;
  std::uint64_t enter_tsc = 0;
  std::uint64_t cursor = 0;  ///< EventBuffer::cursor() right after the enter push
  bool admitted = false;
};

/// Per-thread throttle state, created lazily on the first throttled
/// hook call. TLS-confined like the event buffer: no locks.
class ThrottleState {
 public:
  /// Beyond this depth frames are not tracked; calls are admitted
  /// unconditionally and unmatched exits are recorded conservatively.
  static constexpr std::size_t kMaxDepth = 4096;

  /// How far below the top an exit searches for its frame before being
  /// treated as unmatched (longjmp / exception unwind tolerance).
  static constexpr std::size_t kUnwindScan = 8;

  /// Find-or-create the cell for `addr`. Never fails: when the table
  /// would exceed its load factor it grows (cold path, own thread).
  FnThrottle* cell(std::uint64_t addr);

  std::vector<PendingFrame> stack;

 private:
  void grow();

  std::vector<FnThrottle> table_;
  std::size_t mask_ = 0;
  std::size_t used_ = 0;
};

/// The whole admission configuration, built once at session start and
/// published to the hooks through one atomic pointer (null = everything
/// admitted, the zero-cost default).
struct AdmissionPlan {
  AddrSet filter;  ///< suppression set (possibly empty)
  ThrottleSettings throttle;
  bool throttling = false;  ///< throttle.enabled(), cached for the hot path

  explicit AdmissionPlan(std::size_t filter_capacity = 0)
      : filter(filter_capacity) {}
};

}  // namespace tempest::core
