// Tempest session configuration.
//
// Everything is settable programmatically and overridable from the
// environment so a transparently-instrumented binary (compile with
// -finstrument-functions, link libtempest, run) needs no code changes:
//
//   TEMPEST_HZ      sampling rate (default 4, the paper's rate)
//   TEMPEST_OUT     trace file path ("" keeps the trace in memory)
//   TEMPEST_UNIT    C or F for reports (paper prints Fahrenheit)
//   TEMPEST_BIND    bind the main thread to a CPU (default 1, see §3.3)
//   TEMPEST_CPU     which CPU to bind to (default 0)
//   TEMPEST_REPORT  print the standard-output profile at exit (default 1)
#pragma once

#include <cstddef>
#include <string>

#include "common/units.hpp"

namespace tempest::core {

struct SessionConfig {
  double sample_hz = 4.0;
  std::string output_path;
  TempUnit unit = TempUnit::kFahrenheit;
  bool bind_affinity = true;
  int bind_cpu = 0;
  bool auto_report = true;
  /// Minimum temperature samples inside a function's intervals for its
  /// thermal statistics to be reported as significant.
  std::size_t min_samples_significant = 2;

  /// Defaults overlaid with any TEMPEST_* environment variables.
  static SessionConfig from_env();
};

}  // namespace tempest::core
