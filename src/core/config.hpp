// Tempest session configuration.
//
// Everything is settable programmatically and overridable from the
// environment so a transparently-instrumented binary (compile with
// -finstrument-functions, link libtempest, run) needs no code changes:
//
//   TEMPEST_HZ      sampling rate (default 4, the paper's rate)
//   TEMPEST_OUT     trace file path ("" keeps the trace in memory)
//   TEMPEST_UNIT    C or F for reports (paper prints Fahrenheit)
//   TEMPEST_BIND    bind the main thread to a CPU (default 1, see §3.3)
//   TEMPEST_CPU     which CPU to bind to (default 0)
//   TEMPEST_REPORT  print the standard-output profile at exit (default 1)
//   TEMPEST_HEARTBEAT      telemetry snapshot period in seconds written
//                          to <trace>.telemetry.jsonl (0 = off, default)
//   TEMPEST_MAX_EVENTS     per-thread event-buffer cap (0 = unbounded);
//                          overflow drops newest events, loudly counted
//   TEMPEST_WATCHDOG       fail the session stop() when recording
//                          overhead exceeded the budget (default 0: log)
//   TEMPEST_WATCHDOG_BUDGET overhead budget as a share of wall time
//                          (default 0.01 — the paper's < 1%)
#pragma once

#include <cstddef>
#include <string>

#include "common/units.hpp"

namespace tempest::core {

struct SessionConfig {
  double sample_hz = 4.0;
  std::string output_path;
  TempUnit unit = TempUnit::kFahrenheit;
  bool bind_affinity = true;
  int bind_cpu = 0;
  bool auto_report = true;
  /// Minimum temperature samples inside a function's intervals for its
  /// thermal statistics to be reported as significant.
  std::size_t min_samples_significant = 2;

  /// Telemetry heartbeat period in seconds; 0 disables the emitter.
  /// Snapshots append to `<output_path>.telemetry.jsonl`.
  double heartbeat_period_s = 0.0;
  /// Per-thread event cap (0 = unbounded). Overflow switches the thread
  /// to a scratch chunk: newest events drop, every drop is counted.
  std::size_t max_events_per_thread = 0;
  /// When true, stop() returns an error if the overhead watchdog trips
  /// (tempd CPU or probe cost above watchdog_budget of wall time). The
  /// trace is still written first — the failure is a verdict, not data
  /// loss.
  bool watchdog = false;
  /// Overhead budget as a share of wall time (the paper's < 1%).
  double watchdog_budget = 0.01;

  /// Defaults overlaid with any TEMPEST_* environment variables.
  static SessionConfig from_env();
};

}  // namespace tempest::core
