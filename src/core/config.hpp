// Tempest session configuration.
//
// Everything is settable programmatically and overridable from the
// environment so a transparently-instrumented binary (compile with
// -finstrument-functions, link libtempest, run) needs no code changes:
//
//   TEMPEST_HZ      sampling rate (default 4, the paper's rate)
//   TEMPEST_OUT     trace file path ("" keeps the trace in memory)
//   TEMPEST_UNIT    C or F for reports (paper prints Fahrenheit)
//   TEMPEST_BIND    bind the main thread to a CPU (default 1, see §3.3)
//   TEMPEST_CPU     which CPU to bind to (default 0)
//   TEMPEST_REPORT  print the standard-output profile at exit (default 1)
//   TEMPEST_HEARTBEAT      telemetry snapshot period in seconds written
//                          to <trace>.telemetry.jsonl (0 = off, default)
//   TEMPEST_COLLECT        stream the session to a tempest-collectd
//                          daemon: "uds:/path" or "tcp:host:port".
//                          Heartbeats stream live; the sealed event
//                          sections ship at stop(). Degrades to
//                          file-only recording when unreachable.
//   TEMPEST_MAX_EVENTS     per-thread event-buffer cap (unset = unbounded);
//                          overflow drops newest events, loudly counted
//   TEMPEST_WATCHDOG       fail the session stop() when recording
//                          overhead exceeded the budget (default 0: log)
//   TEMPEST_WATCHDOG_BUDGET overhead budget as a share of wall time
//                          (default 0.01 — the paper's < 1%)
//
// Admission pipeline (adaptive recording; see DESIGN.md §13):
//   TEMPEST_FILTER         path to a TEMPEST_FILTER v1 suppression file
//                          (tempest-audit --filter-out emits these);
//                          listed functions are rejected before any
//                          buffer write
//   TEMPEST_MIN_DURATION_NS elide leaf call pairs shorter than this
//   TEMPEST_RATE_CAP       admitted calls per function/thread/100 ms
//                          window; hotter functions are auto-promoted
//                          to coarser 1-in-2^k sampling
//   TEMPEST_ADAPTIVE       let tempd raise/lower a global sampling
//                          boost to hold the watchdog budget (default 0)
//   TEMPEST_RING_EVENTS    flight-recorder ring: retain only the newest
//                          N events per thread (rounded up to chunks)
//   TEMPEST_RING_SECONDS   flight-recorder window in seconds (implies a
//                          ring; the trace is trimmed to the window at
//                          drain/snapshot)
//   TEMPEST_SNAPSHOT_SIGNAL signal name/number ("USR2", "12") that
//                          triggers a flight-recorder snapshot
//
// Malformed numeric values (TEMPEST_MAX_EVENTS=banana) and values that
// would silently disable recording (TEMPEST_MAX_EVENTS=0) are rejected
// with a rate-limited warning and fall back to the default.
#pragma once

#include <cstddef>
#include <string>

#include "common/units.hpp"

namespace tempest::core {

struct SessionConfig {
  double sample_hz = 4.0;
  std::string output_path;
  TempUnit unit = TempUnit::kFahrenheit;
  bool bind_affinity = true;
  int bind_cpu = 0;
  bool auto_report = true;
  /// Minimum temperature samples inside a function's intervals for its
  /// thermal statistics to be reported as significant.
  std::size_t min_samples_significant = 2;

  /// Telemetry heartbeat period in seconds; 0 disables the emitter.
  /// Snapshots append to `<output_path>.telemetry.jsonl`.
  double heartbeat_period_s = 0.0;
  /// Collector endpoint ("uds:/path" or "tcp:host:port"; "" = off).
  /// When set, the session connects at start(), streams heartbeat
  /// snapshots live, and ships the sealed trace sections at stop().
  /// An unreachable daemon degrades the run to file-only recording.
  std::string collect_spec;
  /// Per-thread event cap (0 = unbounded). Overflow switches the thread
  /// to a scratch chunk: newest events drop, every drop is counted.
  std::size_t max_events_per_thread = 0;
  /// When true, stop() returns an error if the overhead watchdog trips
  /// (tempd CPU or probe cost above watchdog_budget of wall time). The
  /// trace is still written first — the failure is a verdict, not data
  /// loss.
  bool watchdog = false;
  /// Overhead budget as a share of wall time (the paper's < 1%).
  double watchdog_budget = 0.01;

  // -- admission pipeline (DESIGN.md §13) -------------------------------

  /// TEMPEST_FILTER suppression file consumed at start ("" = none).
  std::string filter_path;
  /// Elide leaf enter/exit pairs shorter than this (0 = off).
  long min_duration_ns = 0;
  /// Admitted calls per function per thread per 100 ms window (0 = off).
  long rate_cap = 0;
  /// Let tempd's controller adjust a global sampling boost against the
  /// watchdog budget.
  bool adaptive = false;
  /// Flight-recorder ring: newest events retained per thread (0 = off).
  std::size_t ring_events = 0;
  /// Flight-recorder window in seconds (0 = off). Implies a ring sized
  /// for the window if ring_events is unset.
  double ring_seconds = 0.0;
  /// Signal that triggers a flight-recorder snapshot (-1 = none).
  int snapshot_signal = -1;

  /// Defaults overlaid with any TEMPEST_* environment variables.
  static SessionConfig from_env();
};

}  // namespace tempest::core
