// GCC instrumentation hooks.
//
// TUs compiled with -finstrument-functions call these on every function
// entry/exit. They live in their own small library (tempest_hooks) so
// the profiler never instruments itself; no_instrument_function guards
// against accidental flag leakage. The call_site argument is unused —
// Tempest keys its timeline on the function address alone.
#include <atomic>
#include <cstdint>

#include "core/session.hpp"

// Secondary consumers (the gprof-like baseline profiler) register
// themselves here so one instrumented binary can be profiled by either
// tool — the apples-to-apples setup of the paper's overhead comparison.
std::atomic<void (*)(void*)> tempest_alt_enter_hook{nullptr};
std::atomic<void (*)(void*)> tempest_alt_exit_hook{nullptr};

extern "C" {

void __cyg_profile_func_enter(void* fn, void* call_site)
    __attribute__((no_instrument_function));
void __cyg_profile_func_exit(void* fn, void* call_site)
    __attribute__((no_instrument_function));

void __cyg_profile_func_enter(void* fn, void* /*call_site*/) {
  tempest::core::Session::instance().record_enter(
      reinterpret_cast<std::uint64_t>(fn));
  if (auto* alt = tempest_alt_enter_hook.load(std::memory_order_relaxed)) alt(fn);
}

void __cyg_profile_func_exit(void* fn, void* /*call_site*/) {
  tempest::core::Session::instance().record_exit(
      reinterpret_cast<std::uint64_t>(fn));
  if (auto* alt = tempest_alt_exit_hook.load(std::memory_order_relaxed)) alt(fn);
}

}  // extern "C"
