#include "core/session.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <thread>
#include <unordered_map>

#include "collectd/client.hpp"
#include "common/affinity.hpp"
#include "common/filter_file.hpp"
#include "common/tsc.hpp"
#include "sensors/hwmon.hpp"
#include "symtab/elf.hpp"
#include "symtab/resolver.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/watchdog.hpp"
#include "trace/writer.hpp"

namespace tempest::core {
namespace {

std::string self_exe_path() {
#if defined(__linux__)
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
#endif
  return {};
}

// Snapshot-signal plumbing. The handler only flips an atomic flag
// (async-signal-safe); the tempd thread notices on its next tick and
// does the actual work. File-scope because sigaction wants a plain
// function, and there is exactly one Session per process.
std::atomic<bool> g_signal_snapshot{false};

void snapshot_signal_handler(int /*signo*/) {
  g_signal_snapshot.store(true, std::memory_order_relaxed);
}

struct sigaction g_prev_snapshot_action;

/// Estimated event rate used to size a TEMPEST_RING_SECONDS ring when
/// TEMPEST_RING_EVENTS is unset: one chunk (64Ki events) per window
/// second is plenty for instrumented code while keeping memory modest
/// (1 MiB/s of window at 16 bytes/event).
constexpr std::size_t kRingEventsPerSecond = EventBuffer::kChunkSize;

/// Auto-promotion ceiling: 1-in-2^20 sampling is already "almost off".
constexpr std::uint8_t kMaxShift = 20;
constexpr std::uint32_t kMaxBoost = 8;

/// When the probe-cost histogram is still empty (throttled lanes sample
/// it more sparsely), assume a conservative per-event cost.
constexpr double kDefaultProbeCostNs = 25.0;

}  // namespace

Session& Session::instance() {
  static Session* session = new Session();  // intentionally leaked: hooks
  return *session;                          // may fire during static dtors
}

std::uint16_t Session::register_sim_node(simnode::SimNode* node) {
  const auto id = static_cast<std::uint16_t>(nodes_.size());
  NodeBinding binding;
  binding.node_id = id;
  binding.hostname = node->hostname();
  binding.backend = &node->sensor_backend();
  binding.sim = node;
  binding.sensors = binding.backend->enumerate();
  nodes_.push_back(std::move(binding));
  return id;
}

Result<std::uint16_t> Session::register_hwmon_node(const std::string& hostname) {
  auto backend = std::make_unique<sensors::HwmonBackend>();
  if (!backend->available()) {
    return Result<std::uint16_t>::error(
        "no hwmon temperature sensors on this host (is /sys/class/hwmon populated?)");
  }
  const auto id = static_cast<std::uint16_t>(nodes_.size());
  NodeBinding binding;
  binding.node_id = id;
  binding.hostname = hostname;
  binding.backend = backend.get();
  binding.owned_backend = std::move(backend);
  binding.sensors = binding.backend->enumerate();
  nodes_.push_back(std::move(binding));
  return id;
}

void Session::clear_nodes() {
  if (active()) return;  // refuse while running
  nodes_.clear();
}

Status Session::set_node_tick_hook(std::uint16_t node_id, std::function<void()> hook) {
  if (active()) return Status::error("cannot install tick hook while active");
  if (node_id >= nodes_.size()) return Status::error("tick hook: unknown node id");
  nodes_[node_id].on_tick = std::move(hook);
  return Status::ok();
}

Status Session::start(const SessionConfig& config) {
  if (active()) return Status::error("Tempest session already active");
  if (nodes_.empty()) return Status::error("no nodes registered");
  config_ = config;

  if (config_.bind_affinity) {
    // Best effort: containers may restrict the mask; profiling proceeds
    // (with the §3.3 skew caveat) when binding fails.
    (void)bind_current_thread_to_cpu(config_.bind_cpu);
  }

  registry_.reset();
  trace_ = trace::Trace{};
  // New telemetry epoch: every counter in this run's RUNSTATS describes
  // this run only.
  telemetry::metrics().reset();
  telemetry::count(telemetry::Counter::kSessionStarts);
  // Calibrate the TSC on this thread now, so the one-time busy-spin
  // never lands on the tempd thread (it would show up as tempd CPU).
  tsc_hz_ = tsc_ticks_per_second();

  // Per-run admission/flight-recorder state. The previous run's plan is
  // retired (hooks racing the last stop() may still hold its pointer).
  if (plan_ != nullptr) retired_plans_.push_back(std::move(plan_));
  admission_.store(nullptr, std::memory_order_release);
  boost_.store(0, std::memory_order_relaxed);
  snapshot_requested_.store(false, std::memory_order_relaxed);
  g_signal_snapshot.store(false, std::memory_order_relaxed);
  snapshots_written_.store(0, std::memory_order_relaxed);
  stopping_.store(false, std::memory_order_relaxed);
  watchdog_snapped_ = false;
  {
    common::MutexLock lock(&synth_mu_);
    filter_decl_ = trace::FilterDecl{};
    filter_names_.clear();
  }

  // Buffer posture: flight-recorder ring wins over the hard cap.
  ring_trim_ticks_ = 0;
  std::size_t ring_events = config_.ring_events;
  if (config_.ring_seconds > 0.0) {
    ring_trim_ticks_ =
        static_cast<std::uint64_t>(config_.ring_seconds * tsc_hz_);
    if (ring_events == 0) {
      ring_events = static_cast<std::size_t>(config_.ring_seconds *
                                             kRingEventsPerSecond) +
                    EventBuffer::kChunkSize;
    }
  }
  if (ring_events != 0 && config_.max_events_per_thread != 0) {
    telemetry::log_warn("session",
                        "TEMPEST_MAX_EVENTS ignored: flight-recorder ring "
                        "mode bounds memory by recycling instead");
  }
  config_.ring_events = ring_events;  // effective size (window-derived)
  registry_.set_buffer_ring(ring_events);
  registry_.set_buffer_limit(config_.max_events_per_thread);

  // Build the admission plan: filter set sized for the rule count plus
  // headroom for synthetic regions minted mid-run.
  common::FilterFile filter_file;
  if (!config_.filter_path.empty()) {
    auto parsed = common::read_filter_file(config_.filter_path);
    if (parsed.is_ok()) {
      filter_file = std::move(parsed.value());
    } else {
      telemetry::log_warn("session", "TEMPEST_FILTER ignored: " +
                                         parsed.status().message());
      config_.filter_path.clear();
    }
  }
  auto plan =
      std::make_unique<AdmissionPlan>(filter_file.rules.size() + 32);
  if (!config_.filter_path.empty()) load_filter(plan.get());
  ThrottleSettings& th = plan->throttle;
  th.min_duration_ticks = static_cast<std::uint64_t>(
      static_cast<double>(config_.min_duration_ns) * tsc_hz_ * 1e-9);
  th.window_ticks = static_cast<std::uint64_t>(0.1 * tsc_hz_);
  th.rate_cap = config_.rate_cap < 0
                    ? 0
                    : static_cast<std::uint32_t>(std::min<long>(
                          config_.rate_cap, 0x7FFF'FFFFL));
  th.adaptive = config_.adaptive;
  plan->throttling = th.enabled();
  bool filter_pending = false;
  {
    common::MutexLock lock(&synth_mu_);
    filter_pending = !filter_names_.empty();
  }
  // Publish when anything can ever reject: a resolved suppression, a
  // throttle, or rules waiting for synthetic_addr to mint their region.
  if (plan->filter.size() != 0 || filter_pending || plan->throttling) {
    plan_ = std::move(plan);
    admission_.store(plan_.get(), std::memory_order_release);
  }

  // Flight-recorder snapshot triggers: signal + tempd-tick servicing.
  if (config_.snapshot_signal > 0) {
    struct sigaction sa {};
    sa.sa_handler = snapshot_signal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    signal_installed_ =
        ::sigaction(config_.snapshot_signal, &sa, &g_prev_snapshot_action) == 0;
    if (!signal_installed_) {
      telemetry::log_warn("session", "TEMPEST_SNAPSHOT_SIGNAL: sigaction "
                                     "failed; signal snapshots disabled");
    }
  }
  tempd_.set_tick_hook([this] { on_tempd_tick(); });

  // Live collector stream (TEMPEST_COLLECT). Unreachable is not an
  // error: the run degrades to file-only recording.
  collect_.reset();
  heartbeat_.set_line_sink(nullptr);
  if (!config_.collect_spec.empty()) {
    auto client = std::make_unique<collectd::CollectClient>();
    const Status conn = client->connect(config_.collect_spec);
    if (conn.is_ok()) {
      client->send_hello(static_cast<std::uint64_t>(::getpid()),
                         self_exe_path());
      collect_ = std::move(client);
      collectd::CollectClient* raw = collect_.get();
      heartbeat_.set_line_sink(
          [raw](const std::string& line) { raw->send_heartbeat(line); });
    } else {
      telemetry::log_warn("session", "TEMPEST_COLLECT unreachable (" +
                                         conn.message() +
                                         "); recording file-only");
    }
  }

  start_tsc_ = rdtsc();
  tempd_.start(config_.sample_hz, &nodes_);
  if (config_.heartbeat_period_s > 0.0 &&
      (!config_.output_path.empty() || collect_ != nullptr)) {
    const std::string hb_path =
        config_.output_path.empty()
            ? std::string()
            : telemetry::HeartbeatEmitter::path_for_trace(config_.output_path);
    const Status hb = heartbeat_.start(hb_path, config_.heartbeat_period_s);
    if (!hb.is_ok()) {
      telemetry::log_warn("session", "heartbeat disabled: " + hb.message());
    }
  }
  active_.store(true, std::memory_order_release);
  return Status::ok();
}

Status Session::stop() {
  if (!active()) return Status::error("Tempest session not active");
  // Order matters: stopping_ first so a tempd-thread snapshot that is
  // mid-write never re-arms recording after we disarm it here.
  stopping_.store(true, std::memory_order_release);
  active_.store(false, std::memory_order_release);
  tempd_.stop();
  if (signal_installed_) {
    (void)::sigaction(config_.snapshot_signal, &g_prev_snapshot_action,
                      nullptr);
    signal_installed_ = false;
  }

  trace_.tsc_ticks_per_second = tsc_ticks_per_second();
  trace_.executable = self_exe_path();
  trace_.load_bias = symtab::current_load_bias();
  for (const auto& node : nodes_) {
    trace_.nodes.push_back({node.node_id, node.hostname});
    for (const auto& s : node.sensors) {
      trace_.sensors.push_back({node.node_id, s.id, s.name, s.quant_step_c});
    }
  }
  {
    common::MutexLock lock(&synth_mu_);
    trace_.synthetic_symbols = synthetic_;
    trace_.filter = filter_decl_;
  }
  DrainTotals totals;
  registry_.drain_into(&trace_, ring_trim_ticks_, &totals);
  trace_.temp_samples = std::move(tempd_.samples());
  trace_.clock_syncs = std::move(tempd_.clock_syncs());
  trace_.sort_by_time();

  // Stop the heartbeat after the drain published exact event totals, so
  // its final JSONL line is the run's true summary; then fold the same
  // numbers into the trace's RUNSTATS section.
  heartbeat_.stop();
  telemetry::count(telemetry::Counter::kSessionStops);
  assemble_run_stats(&trace_.run_stats, totals);

  // Ship the sealed run to the collector: full metadata (with the just
  // assembled RUNSTATS) first, then the bulk sections, then BYE with
  // the exact counts so the daemon can verify it folded everything.
  // The heartbeat thread is already joined, so the stream is ours alone.
  if (collect_ != nullptr) {
    collect_->send_meta(trace_);
    collect_->send_clock_syncs(trace_.clock_syncs);
    collect_->send_fn_events(trace_.fn_events.data(), trace_.fn_events.size());
    collect_->send_temp_samples(trace_.temp_samples.data(),
                                trace_.temp_samples.size());
    collect_->send_bye(trace_.fn_events.size(), trace_.temp_samples.size());
    collect_->close();
    heartbeat_.set_line_sink(nullptr);
    collect_.reset();
  }

  Status write_status = Status::ok();
  if (!config_.output_path.empty()) {
    write_status = trace::write_trace_file(config_.output_path, trace_);
  }

  // The watchdog's verdict never blocks the trace from being written —
  // an over-budget run's data is still data, just suspect.
  const telemetry::WatchdogReport report =
      telemetry::evaluate_overhead(trace_.run_stats, config_.watchdog_budget);
  if (report.tripped()) {
    telemetry::log_warn("watchdog", report.describe());
  } else {
    telemetry::log_info("watchdog", report.describe());
  }
  if (!write_status.is_ok()) return write_status;
  if (config_.watchdog && report.tripped()) {
    return Status::error("overhead watchdog tripped: " + report.describe());
  }
  return Status::ok();
}

void Session::record_probed(ThreadState* ts, std::uint64_t addr,
                            trace::FnEventKind kind) {
  const std::uint64_t t0 = rdtsc();
  ts->events.push({ts->now(), addr, ts->thread_id, ts->node_id, kind});
  const std::uint64_t t1 = rdtsc();
  telemetry::observe(
      telemetry::Histogram::kProbeCostNs,
      static_cast<double>(t1 - t0) * 1e9 / tsc_ticks_per_second());
}

void Session::publish_suppressed(ThreadState* ts) {
  telemetry::count(telemetry::Counter::kEventsSuppressed,
                   ts->suppressed - ts->published_suppressed);
  ts->published_suppressed = ts->suppressed;
}

void Session::count_throttled(ThreadState* ts, std::uint64_t n) {
  ts->throttled += n;
  if (ts->throttled - ts->published_throttled >= kAdmissionPublishBlock) {
    telemetry::count(telemetry::Counter::kEventsThrottled,
                     ts->throttled - ts->published_throttled);
    ts->published_throttled = ts->throttled;
  }
}

void Session::push_admitted(ThreadState* ts, std::uint64_t now,
                            std::uint64_t addr, trace::FnEventKind kind) {
  ++ts->admitted;
  if ((++ts->probe_tick & (kProbeSamplePeriod - 1)) == 0) {
    const std::uint64_t t0 = rdtsc();
    ts->events.push({now, addr, ts->thread_id, ts->node_id, kind});
    const std::uint64_t t1 = rdtsc();
    telemetry::observe(
        telemetry::Histogram::kProbeCostNs,
        static_cast<double>(t1 - t0) * 1e9 / tsc_ticks_per_second());
    return;
  }
  ts->events.push({now, addr, ts->thread_id, ts->node_id, kind});
}

void Session::record_throttled(ThreadState* ts, const AdmissionPlan* plan,
                               std::uint64_t addr, trace::FnEventKind kind) {
  if (ts->throttle == nullptr) ts->throttle = std::make_unique<ThrottleState>();
  ThrottleState& th = *ts->throttle;
  const ThrottleSettings& s = plan->throttle;

  if (kind == trace::FnEventKind::kEnter) {
    if (th.stack.size() >= ThrottleState::kMaxDepth) {
      // Pathologically deep recursion: stop tracking frames and admit
      // unconditionally — losing throttling beats unbounded state.
      push_admitted(ts, ts->now(), addr, kind);
      return;
    }
    const std::uint64_t now = ts->now();
    FnThrottle* cell = th.cell(addr);
    if (s.window_ticks != 0 && now - cell->window_start >= s.window_ticks) {
      // Window roll with auto-promotion: a function whose sampled call
      // count still overflows the cap gets coarser 1-in-2^k sampling;
      // one that would fit at the next-finer level gets demoted back.
      if (s.rate_cap != 0) {
        if ((cell->calls >> cell->shift) > s.rate_cap &&
            cell->shift < kMaxShift) {
          ++cell->shift;
        } else if (cell->shift > 0 &&
                   (cell->calls >> (cell->shift - 1)) <= s.rate_cap) {
          --cell->shift;
        }
      }
      cell->window_start = now;
      cell->calls = 0;
      cell->admitted = 0;
    }
    ++cell->calls;
    const std::uint32_t shift =
        cell->shift + boost_.load(std::memory_order_relaxed);
    // Admit 1 in 2^shift of this function's calls, then apply the hard
    // per-window cap on top. The decision is remembered on the shadow
    // stack so the matching exit follows it — pairs drop together.
    bool admit = shift == 0 ||
                 (cell->calls & ((1u << std::min(shift, 31u)) - 1)) == 0;
    if (admit && s.rate_cap != 0 && cell->admitted >= s.rate_cap) {
      admit = false;
    }
    PendingFrame frame;
    frame.addr = addr;
    frame.enter_tsc = now;
    frame.admitted = admit;
    if (admit) {
      ++cell->admitted;
      push_admitted(ts, now, addr, kind);
      frame.cursor = ts->events.cursor();
    } else {
      count_throttled(ts, 1);
    }
    th.stack.push_back(frame);
    return;
  }

  // Exit: find the matching frame near the top. A short scan tolerates
  // frames abandoned by longjmp/exception unwinds; anything deeper is
  // treated as unmatched.
  std::size_t idx = th.stack.size();
  const std::size_t scan_floor =
      th.stack.size() > ThrottleState::kUnwindScan
          ? th.stack.size() - ThrottleState::kUnwindScan
          : 0;
  for (std::size_t i = th.stack.size(); i > scan_floor; --i) {
    if (th.stack[i - 1].addr == addr) {
      idx = i - 1;
      break;
    }
  }
  if (idx == th.stack.size()) {
    // Unmatched exit (over-depth enter, unwind past the scan, or an
    // unbalanced explicit region): admit conservatively — analysis
    // already tolerates unbalanced traces, silence would hide data.
    push_admitted(ts, ts->now(), addr, kind);
    return;
  }
  const PendingFrame frame = th.stack[idx];
  th.stack.resize(idx);  // frames above were unwound; their exits never come
  if (!frame.admitted) {
    count_throttled(ts, 1);
    return;
  }
  const std::uint64_t now = ts->now();
  if (s.min_duration_ticks != 0 && now - frame.enter_tsc < s.min_duration_ticks &&
      ts->events.cursor() == frame.cursor && ts->events.try_pop_last(addr)) {
    // Leaf pair shorter than the cutoff: retract the enter (the cursor
    // match proves it is still the newest event) and drop the exit.
    --ts->admitted;
    count_throttled(ts, 2);
    return;
  }
  push_admitted(ts, now, addr, kind);
}

void Session::load_filter(AdmissionPlan* plan) {
  auto parsed = common::read_filter_file(config_.filter_path);
  if (!parsed.is_ok()) return;  // start() already validated/warned
  const common::FilterFile& ff = parsed.value();

  common::MutexLock lock(&synth_mu_);
  filter_decl_.present = true;
  filter_decl_.source = config_.filter_path;
  filter_decl_.suppressed.reserve(ff.rules.size());
  for (const auto& rule : ff.rules) filter_decl_.suppressed.push_back(rule.symbol);

  // Resolve rule names to runtime addresses: ELF symtab + load bias
  // (the same translation the offline resolver applies in reverse).
  std::unordered_map<std::string, std::uint64_t> by_name;
  const std::string exe = self_exe_path();
  if (!exe.empty()) {
    auto symbols = symtab::read_function_symbols(exe);
    if (symbols.is_ok()) {
      const std::uint64_t bias = symtab::current_load_bias();
      for (const auto& sym : symbols.value()) {
        if (sym.value != 0) by_name.emplace(sym.name, sym.value + bias);
      }
    } else {
      telemetry::log_warn("session",
                          "TEMPEST_FILTER: cannot read symbols from " + exe +
                              ": " + symbols.status().message());
    }
  }
  std::uint64_t resolved = 0;
  for (const auto& rule : ff.rules) {
    const auto it = by_name.find(rule.symbol);
    if (it != by_name.end() && plan->filter.insert(it->second)) {
      ++resolved;
      continue;
    }
    // Synthetic regions live in a private address space: match any
    // already-minted name now, and remember the rest so synthetic_addr
    // can suppress regions minted later in the run.
    bool synthetic = false;
    for (const auto& s : synthetic_) {
      if (s.name == rule.symbol) {
        if (plan->filter.insert(s.addr)) ++resolved;
        synthetic = true;
        break;
      }
    }
    if (!synthetic) filter_names_.push_back(rule.symbol);
  }
  filter_decl_.resolved = resolved;
  telemetry::log_info(
      "session", "TEMPEST_FILTER " + config_.filter_path + ": " +
                     std::to_string(resolved) + "/" +
                     std::to_string(ff.rules.size()) +
                     " rules resolved to addresses");
}

void Session::on_tempd_tick() {
  if (!active() || stopping_.load(std::memory_order_acquire)) return;
  if (g_signal_snapshot.exchange(false, std::memory_order_acq_rel)) {
    write_snapshot("signal");
  } else if (snapshot_requested_.exchange(false, std::memory_order_acq_rel)) {
    write_snapshot("api");
  }
  adaptive_tick();
}

void Session::adaptive_tick() {
  const bool adaptive = plan_ != nullptr && plan_->throttle.adaptive;
  const bool watchdog_ring = config_.watchdog && config_.ring_events != 0;
  if (!adaptive && !watchdog_ring) return;

  const double wall = tsc_to_seconds(rdtsc() - start_tsc_);
  if (wall < 0.05) return;
  const telemetry::MetricsSnapshot snap = telemetry::metrics().snapshot();
  double probe_ns =
      snap.histogram(telemetry::Histogram::kProbeCostNs).mean();
  if (probe_ns <= 0.0) probe_ns = kDefaultProbeCostNs;
  const double recorded = static_cast<double>(
      snap.counter(telemetry::Counter::kEventsRecorded));
  const double probe_share = recorded * probe_ns * 1e-9 / wall;
  const double tempd_share = tempd_.stats().cpu_seconds / wall;
  const double share = probe_share + tempd_share;

  if (adaptive) {
    // Bang-bang controller with hysteresis: over budget -> coarser
    // global sampling; under half budget -> finer. One step per tick
    // keeps it stable at 4 Hz.
    const std::uint32_t boost = boost_.load(std::memory_order_relaxed);
    if (share > config_.watchdog_budget && boost < kMaxBoost) {
      boost_.store(boost + 1, std::memory_order_relaxed);
      telemetry::log_info(
          "session",
          "adaptive: overhead " + std::to_string(share * 100.0) +
              "% of wall over budget; sampling boost -> 1 in " +
              std::to_string(1u << (boost + 1)));
    } else if (share < config_.watchdog_budget * 0.5 && boost > 0) {
      boost_.store(boost - 1, std::memory_order_relaxed);
    }
  }
  if (watchdog_ring && !watchdog_snapped_ &&
      share > config_.watchdog_budget) {
    // The flight recorder's reason to exist: capture the window around
    // the moment the run went over budget, once.
    watchdog_snapped_ = true;
    write_snapshot("watchdog");
  }
}

void Session::write_snapshot(const char* trigger) {
  if (config_.output_path.empty()) {
    telemetry::log_warn("session",
                        "snapshot requested but TEMPEST_OUT is unset");
    return;
  }
  // Pause admission so recording threads quiesce; a short settle lets
  // hooks that already passed the active_ check finish their push (see
  // DESIGN.md §13 for the residual in-flight approximation).
  active_.store(false, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  trace::Trace snap;
  snap.tsc_ticks_per_second = tsc_hz_;
  snap.executable = self_exe_path();
  snap.load_bias = symtab::current_load_bias();
  for (const auto& node : nodes_) {
    snap.nodes.push_back({node.node_id, node.hostname});
    for (const auto& s : node.sensors) {
      snap.sensors.push_back({node.node_id, s.id, s.name, s.quant_step_c});
    }
  }
  {
    common::MutexLock lock(&synth_mu_);
    snap.synthetic_symbols = synthetic_;
    snap.filter = filter_decl_;
  }
  DrainTotals totals;
  registry_.snapshot_into(&snap, ring_trim_ticks_, &totals);
  // A snapshot quiesces by flag + settle, not by join, so a thread
  // descheduled mid-hook can leave `admitted` a few events out of step
  // with what the buffers actually hold. Derive it from what was
  // actually copied so the snapshot's RUNSTATS satisfy the conservation
  // invariant by construction (stop() asserts the real thing exactly).
  totals.admitted = totals.retained + totals.dropped + totals.overwritten;
  // This runs on the tempd thread, the sole owner of the sample
  // vectors between start and join — copying them here is race-free.
  snap.temp_samples = tempd_.samples();
  snap.clock_syncs = tempd_.clock_syncs();
  snap.sort_by_time();
  assemble_run_stats(&snap.run_stats, totals);
  snap.run_stats.ring_snapshots =
      snapshots_written_.load(std::memory_order_relaxed) + 1;

  const std::uint64_t n = snapshots_written_.load(std::memory_order_relaxed);
  std::string path = config_.output_path + ".snapshot";
  if (n > 0) path += "." + std::to_string(n);
  const Status written = trace::write_trace_file(path, snap);
  if (written.is_ok()) {
    {
      common::MutexLock lock(&snap_mu_);
      last_snapshot_path_ = path;
    }
    snapshots_written_.fetch_add(1, std::memory_order_acq_rel);
    telemetry::count(telemetry::Counter::kRingSnapshots);
    telemetry::log_info(
        "session", std::string("flight-recorder snapshot (") + trigger +
                       ") -> " + path + ": " +
                       std::to_string(snap.fn_events.size()) + " events");
  } else {
    telemetry::log_warn("session",
                        "snapshot write failed: " + written.message());
  }
  // Re-arm unless a concurrent stop() already disarmed for good.
  if (!stopping_.load(std::memory_order_acquire)) {
    active_.store(true, std::memory_order_release);
  }
}

Result<std::string> Session::request_snapshot(double timeout_s) {
  using Out = Result<std::string>;
  if (!active()) return Out::error("Tempest session not active");
  if (config_.output_path.empty()) {
    return Out::error("snapshot needs TEMPEST_OUT (no output path set)");
  }
  const std::uint64_t before =
      snapshots_written_.load(std::memory_order_acquire);
  snapshot_requested_.store(true, std::memory_order_release);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (snapshots_written_.load(std::memory_order_acquire) == before) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return Out::error("snapshot timed out after " +
                        std::to_string(timeout_s) +
                        "s (is the sampler thread running?)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  common::MutexLock lock(&snap_mu_);
  return Out(last_snapshot_path_);
}

void Session::assemble_run_stats(trace::RunStats* out,
                                 const DrainTotals& totals) {
  using telemetry::Counter;
  using telemetry::Histogram;
  const telemetry::MetricsSnapshot snap = telemetry::metrics().snapshot();
  const Tempd::Stats& td = tempd_.stats();
  trace::RunStats& rs = *out;
  // Admission accounting comes from the exact drain totals, not the
  // telemetry counters: those publish at chunk/block granularity for the
  // live heartbeat and, in ring mode, have already counted events that a
  // recycled chunk later destroyed. The conservation invariants
  //   calls_observed == recorded + suppressed + throttled
  //                     + dropped + overwritten
  // only hold with the quiesced per-thread numbers.
  rs.events_recorded = totals.retained;
  rs.events_dropped = totals.dropped;
  rs.events_suppressed = totals.suppressed;
  rs.events_throttled = totals.throttled;
  rs.events_overwritten = totals.overwritten;
  rs.calls_observed = totals.observed();
  rs.ring_snapshots = snapshots_written_.load(std::memory_order_acquire);
  rs.buffer_flushes = snap.counter(Counter::kBufferFlushes);
  rs.threads_registered = snap.counter(Counter::kThreadsRegistered);
  // tempd's own Stats are authoritative (single-writer, join-published);
  // the counters mirror them for the live heartbeat view.
  rs.tempd_ticks = td.ticks;
  rs.tempd_missed_ticks = td.missed_ticks;
  rs.tempd_samples = td.samples;
  rs.tempd_read_errors = td.read_errors;
  rs.sensor_read_failures = snap.counter(Counter::kSensorReadFailures);
  rs.heartbeats = snap.counter(Counter::kHeartbeats);
  rs.peak_rss_kb = static_cast<std::uint64_t>(telemetry::read_peak_rss_kb());
  rs.wall_seconds = tsc_to_seconds(rdtsc() - start_tsc_);
  rs.tempd_cpu_seconds = td.cpu_seconds;
  rs.probe_cost_ns_mean = snap.histogram(Histogram::kProbeCostNs).mean();
  rs.cadence_jitter_us_mean =
      snap.histogram(Histogram::kCadenceJitterUs).mean();
  rs.present = true;
}

Status Session::attach_current_thread(std::uint16_t node_id, std::uint16_t core) {
  if (node_id >= nodes_.size()) return Status::error("attach: unknown node id");
  const NodeBinding& node = nodes_[node_id];
  const VirtualTsc* clock = node.sim != nullptr ? &node.sim->clock() : nullptr;
  registry_.bind_current(node_id, core, clock);
  return Status::ok();
}

std::uint64_t Session::synthetic_addr(const std::string& name) {
  common::MutexLock lock(&synth_mu_);
  for (const auto& s : synthetic_) {
    if (s.name == name) return s.addr;
  }
  const std::uint64_t addr = trace::kSyntheticAddrBase + synthetic_.size();
  synthetic_.push_back({addr, name});
  // A filter rule that matched no ELF symbol may name an explicit-API
  // region; suppress it from the moment it is minted (CAS insert — the
  // hooks may be probing the set concurrently).
  if (!filter_names_.empty() && plan_ != nullptr &&
      std::find(filter_names_.begin(), filter_names_.end(), name) !=
          filter_names_.end()) {
    if (plan_->filter.insert(addr)) ++filter_decl_.resolved;
  }
  return addr;
}

simnode::SimNode* Session::sim_node(std::uint16_t node_id) {
  if (node_id >= nodes_.size()) return nullptr;
  return nodes_[node_id].sim;
}

}  // namespace tempest::core
