#include "core/session.hpp"

#include <unistd.h>

#include "common/affinity.hpp"
#include "common/tsc.hpp"
#include "sensors/hwmon.hpp"
#include "symtab/resolver.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/watchdog.hpp"
#include "trace/writer.hpp"

namespace tempest::core {
namespace {

std::string self_exe_path() {
#if defined(__linux__)
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
#endif
  return {};
}

}  // namespace

Session& Session::instance() {
  static Session* session = new Session();  // intentionally leaked: hooks
  return *session;                          // may fire during static dtors
}

std::uint16_t Session::register_sim_node(simnode::SimNode* node) {
  const auto id = static_cast<std::uint16_t>(nodes_.size());
  NodeBinding binding;
  binding.node_id = id;
  binding.hostname = node->hostname();
  binding.backend = &node->sensor_backend();
  binding.sim = node;
  binding.sensors = binding.backend->enumerate();
  nodes_.push_back(std::move(binding));
  return id;
}

Result<std::uint16_t> Session::register_hwmon_node(const std::string& hostname) {
  auto backend = std::make_unique<sensors::HwmonBackend>();
  if (!backend->available()) {
    return Result<std::uint16_t>::error(
        "no hwmon temperature sensors on this host (is /sys/class/hwmon populated?)");
  }
  const auto id = static_cast<std::uint16_t>(nodes_.size());
  NodeBinding binding;
  binding.node_id = id;
  binding.hostname = hostname;
  binding.backend = backend.get();
  binding.owned_backend = std::move(backend);
  binding.sensors = binding.backend->enumerate();
  nodes_.push_back(std::move(binding));
  return id;
}

void Session::clear_nodes() {
  if (active()) return;  // refuse while running
  nodes_.clear();
}

Status Session::set_node_tick_hook(std::uint16_t node_id, std::function<void()> hook) {
  if (active()) return Status::error("cannot install tick hook while active");
  if (node_id >= nodes_.size()) return Status::error("tick hook: unknown node id");
  nodes_[node_id].on_tick = std::move(hook);
  return Status::ok();
}

Status Session::start(const SessionConfig& config) {
  if (active()) return Status::error("Tempest session already active");
  if (nodes_.empty()) return Status::error("no nodes registered");
  config_ = config;

  if (config_.bind_affinity) {
    // Best effort: containers may restrict the mask; profiling proceeds
    // (with the §3.3 skew caveat) when binding fails.
    (void)bind_current_thread_to_cpu(config_.bind_cpu);
  }

  registry_.reset();
  trace_ = trace::Trace{};
  // New telemetry epoch: every counter in this run's RUNSTATS describes
  // this run only.
  telemetry::metrics().reset();
  telemetry::count(telemetry::Counter::kSessionStarts);
  registry_.set_buffer_limit(config_.max_events_per_thread);
  // Calibrate the TSC on this thread now, so the one-time busy-spin
  // never lands on the tempd thread (it would show up as tempd CPU).
  (void)tsc_ticks_per_second();
  start_tsc_ = rdtsc();
  tempd_.start(config_.sample_hz, &nodes_);
  if (config_.heartbeat_period_s > 0.0 && !config_.output_path.empty()) {
    const Status hb = heartbeat_.start(
        telemetry::HeartbeatEmitter::path_for_trace(config_.output_path),
        config_.heartbeat_period_s);
    if (!hb.is_ok()) {
      telemetry::log_warn("session", "heartbeat disabled: " + hb.message());
    }
  }
  active_.store(true, std::memory_order_release);
  return Status::ok();
}

Status Session::stop() {
  if (!active()) return Status::error("Tempest session not active");
  active_.store(false, std::memory_order_release);
  tempd_.stop();

  trace_.tsc_ticks_per_second = tsc_ticks_per_second();
  trace_.executable = self_exe_path();
  trace_.load_bias = symtab::current_load_bias();
  for (const auto& node : nodes_) {
    trace_.nodes.push_back({node.node_id, node.hostname});
    for (const auto& s : node.sensors) {
      trace_.sensors.push_back({node.node_id, s.id, s.name, s.quant_step_c});
    }
  }
  {
    common::MutexLock lock(&synth_mu_);
    trace_.synthetic_symbols = synthetic_;
  }
  registry_.drain_into(&trace_);
  trace_.temp_samples = std::move(tempd_.samples());
  trace_.clock_syncs = std::move(tempd_.clock_syncs());
  trace_.sort_by_time();

  // Stop the heartbeat after the drain published exact event totals, so
  // its final JSONL line is the run's true summary; then fold the same
  // numbers into the trace's RUNSTATS section.
  heartbeat_.stop();
  telemetry::count(telemetry::Counter::kSessionStops);
  assemble_run_stats();

  Status write_status = Status::ok();
  if (!config_.output_path.empty()) {
    write_status = trace::write_trace_file(config_.output_path, trace_);
  }

  // The watchdog's verdict never blocks the trace from being written —
  // an over-budget run's data is still data, just suspect.
  const telemetry::WatchdogReport report =
      telemetry::evaluate_overhead(trace_.run_stats, config_.watchdog_budget);
  if (report.tripped()) {
    telemetry::log_warn("watchdog", report.describe());
  } else {
    telemetry::log_info("watchdog", report.describe());
  }
  if (!write_status.is_ok()) return write_status;
  if (config_.watchdog && report.tripped()) {
    return Status::error("overhead watchdog tripped: " + report.describe());
  }
  return Status::ok();
}

void Session::record_probed(ThreadState* ts, std::uint64_t addr,
                            trace::FnEventKind kind) {
  const std::uint64_t t0 = rdtsc();
  ts->events.push({ts->now(), addr, ts->thread_id, ts->node_id, kind});
  const std::uint64_t t1 = rdtsc();
  telemetry::observe(
      telemetry::Histogram::kProbeCostNs,
      static_cast<double>(t1 - t0) * 1e9 / tsc_ticks_per_second());
}

void Session::assemble_run_stats() {
  using telemetry::Counter;
  using telemetry::Histogram;
  const telemetry::MetricsSnapshot snap = telemetry::metrics().snapshot();
  const Tempd::Stats& td = tempd_.stats();
  trace::RunStats& rs = trace_.run_stats;
  rs.events_recorded = snap.counter(Counter::kEventsRecorded);
  rs.events_dropped = snap.counter(Counter::kEventsDropped);
  rs.buffer_flushes = snap.counter(Counter::kBufferFlushes);
  rs.threads_registered = snap.counter(Counter::kThreadsRegistered);
  // tempd's own Stats are authoritative (single-writer, join-published);
  // the counters mirror them for the live heartbeat view.
  rs.tempd_ticks = td.ticks;
  rs.tempd_missed_ticks = td.missed_ticks;
  rs.tempd_samples = td.samples;
  rs.tempd_read_errors = td.read_errors;
  rs.sensor_read_failures = snap.counter(Counter::kSensorReadFailures);
  rs.heartbeats = snap.counter(Counter::kHeartbeats);
  rs.peak_rss_kb = static_cast<std::uint64_t>(telemetry::read_peak_rss_kb());
  rs.wall_seconds = tsc_to_seconds(rdtsc() - start_tsc_);
  rs.tempd_cpu_seconds = td.cpu_seconds;
  rs.probe_cost_ns_mean = snap.histogram(Histogram::kProbeCostNs).mean();
  rs.cadence_jitter_us_mean =
      snap.histogram(Histogram::kCadenceJitterUs).mean();
  rs.present = true;
}

Status Session::attach_current_thread(std::uint16_t node_id, std::uint16_t core) {
  if (node_id >= nodes_.size()) return Status::error("attach: unknown node id");
  const NodeBinding& node = nodes_[node_id];
  const VirtualTsc* clock = node.sim != nullptr ? &node.sim->clock() : nullptr;
  registry_.bind_current(node_id, core, clock);
  return Status::ok();
}

std::uint64_t Session::synthetic_addr(const std::string& name) {
  common::MutexLock lock(&synth_mu_);
  for (const auto& s : synthetic_) {
    if (s.name == name) return s.addr;
  }
  const std::uint64_t addr = trace::kSyntheticAddrBase + synthetic_.size();
  synthetic_.push_back({addr, name});
  return addr;
}

simnode::SimNode* Session::sim_node(std::uint16_t node_id) {
  if (node_id >= nodes_.size()) return nullptr;
  return nodes_[node_id].sim;
}

}  // namespace tempest::core
