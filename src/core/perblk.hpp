// Per-basic-block measurement API (the paper's libtempestperblk.so).
//
// "Tempest also supports measurement at basic block granularity ...
// Basic block measurement is non-transparent and requires explicit API
// calls." Blocks are named "function:block" so the parser's profile
// shows them alongside (and nested within) their enclosing function.
#pragma once

extern "C" {

/// Begin a basic block. Blocks may nest and interleave with function
/// instrumentation; begin/end must balance per thread.
void tempest_blk_begin(const char* function, const char* block);
void tempest_blk_end(const char* function, const char* block);
}

namespace tempest {

/// RAII wrapper over the C block API.
class ScopedBlock {
 public:
  ScopedBlock(const char* function, const char* block)
      : function_(function), block_(block) {
    tempest_blk_begin(function_, block_);
  }
  ~ScopedBlock() { tempest_blk_end(function_, block_); }
  ScopedBlock(const ScopedBlock&) = delete;
  ScopedBlock& operator=(const ScopedBlock&) = delete;

 private:
  const char* function_;
  const char* block_;
};

}  // namespace tempest

#define TEMPEST_BLOCK(fn, blk) ::tempest::ScopedBlock tempest_blk_##__LINE__(fn, blk)
