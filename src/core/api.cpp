#include "core/api.hpp"

namespace tempest {

Status start(const core::SessionConfig& config) {
  return core::Session::instance().start(config);
}

Status stop() { return core::Session::instance().stop(); }

bool active() { return core::Session::instance().active(); }

Result<std::string> snapshot(double timeout_s) {
  return core::Session::instance().request_snapshot(timeout_s);
}

void region_enter(const std::string& name) {
  auto& session = core::Session::instance();
  session.record_enter(session.synthetic_addr(name));
}

void region_exit(const std::string& name) {
  auto& session = core::Session::instance();
  session.record_exit(session.synthetic_addr(name));
}

}  // namespace tempest
