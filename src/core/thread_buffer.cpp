#include "core/thread_buffer.hpp"

#include <algorithm>
#include <atomic>
#include <string>

#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"

namespace tempest::core {
namespace {

struct TlsSlot {
  ThreadState* state = nullptr;
  std::uint64_t generation = 0;
};

thread_local TlsSlot tls_slot;

// Generation bumps on reset() so stale TLS pointers from a previous
// session re-register instead of recording into a retired state
// forever. Atomic: recording threads poll it without the registry lock.
std::atomic<std::uint64_t> g_generation{1};

}  // namespace

void EventBuffer::new_chunk() {
  using telemetry::Counter;
  ++chunk_seq_;  // cursor epoch: every chunk transition advances it
  if (dropping_) {
    // Scratch wrapped: the kChunkSize events it held are gone for good.
    dropped_ += kChunkSize;
    telemetry::count(Counter::kEventsDropped, kChunkSize);
    published_dropped_ += kChunkSize;
    pos_ = 0;
    return;
  }
  if (!chunks_.empty()) {
    // The chunk that just filled becomes visible to telemetry here —
    // chunk-granular publication keeps the per-event hot path free of
    // atomics while the heartbeat still tracks recording rate live. (In
    // ring mode this counts *pushes*; RUNSTATS takes the exact retained
    // count from the drain totals instead.)
    telemetry::count(Counter::kEventsRecorded, kChunkSize);
    published_stored_ += kChunkSize;
  }
  if (ring_chunks_ != 0 && chunks_.size() >= ring_chunks_) {
    // Flight-recorder posture: recycle the *oldest* chunk so the buffer
    // always holds the most recent window. The recycled events are gone;
    // count them exactly and publish so tempest-top can watch the ring
    // churn live.
    std::unique_ptr<trace::FnEvent[]> oldest = std::move(chunks_.front());
    chunks_.erase(chunks_.begin());
    chunks_.push_back(std::move(oldest));
    active_ = chunks_.back().get();
    pos_ = 0;
    overwritten_ += kChunkSize;
    published_overwritten_ += kChunkSize;
    telemetry::count(Counter::kEventsOverwritten, kChunkSize);
    return;
  }
  if (max_chunks_ != 0 && chunks_.size() >= max_chunks_) {
    if (scratch_ == nullptr) {
      scratch_ = std::make_unique<trace::FnEvent[]>(kChunkSize);
    }
    dropping_ = true;
    active_ = scratch_.get();
    pos_ = 0;
    // One warning per thread (a buffer belongs to exactly one), never
    // repeated on scratch wraps — the exact count lands in RUNSTATS.
    telemetry::log_warn(
        "buffer", "thread event buffer full at " + std::to_string(size()) +
                      " events; newer events are being dropped (raise "
                      "TEMPEST_MAX_EVENTS)");
    return;
  }
  chunks_.push_back(std::make_unique<trace::FnEvent[]>(kChunkSize));
  active_ = chunks_.back().get();
  pos_ = 0;
  telemetry::count(Counter::kBufferFlushes);
}

void EventBuffer::append(const trace::FnEvent* events, std::size_t n) {
  while (n > 0) {
    if (pos_ == kChunkSize) new_chunk();
    const std::size_t room = kChunkSize - pos_;
    const std::size_t take = n < room ? n : room;
    std::copy(events, events + take, active_ + pos_);
    pos_ += take;
    events += take;
    n -= take;
  }
}

void EventBuffer::set_limit(std::size_t max_events) {
  max_chunks_ =
      max_events == 0 ? 0 : (max_events + kChunkSize - 1) / kChunkSize;
}

void EventBuffer::set_ring(std::size_t max_events) {
  ring_chunks_ =
      max_events == 0
          ? 0
          : std::max<std::size_t>(2, (max_events + kChunkSize - 1) / kChunkSize);
}

void EventBuffer::append_to(std::vector<trace::FnEvent>* out) const {
  out->reserve(out->size() + size());
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const std::size_t n =
        (i + 1 == chunks_.size() && !dropping_) ? pos_ : kChunkSize;
    out->insert(out->end(), chunks_[i].get(), chunks_[i].get() + n);
  }
}

void EventBuffer::append_to(std::vector<trace::FnEvent>* out,
                            std::uint64_t min_tsc,
                            std::uint64_t* trimmed) const {
  if (min_tsc == 0) {
    append_to(out);
    return;
  }
  out->reserve(out->size() + size());
  std::uint64_t skipped = 0;
  bool copying = false;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const std::size_t n =
        (i + 1 == chunks_.size() && !dropping_) ? pos_ : kChunkSize;
    const trace::FnEvent* begin = chunks_[i].get();
    if (!copying) {
      if (n == 0 || begin[n - 1].tsc < min_tsc) {
        skipped += n;  // whole chunk predates the window
        continue;
      }
      // Boundary chunk: the buffer is time-ordered, so binary-search
      // the first event inside the window.
      const trace::FnEvent* first = std::lower_bound(
          begin, begin + n, min_tsc,
          [](const trace::FnEvent& e, std::uint64_t t) { return e.tsc < t; });
      skipped += static_cast<std::uint64_t>(first - begin);
      out->insert(out->end(), first, begin + n);
      copying = true;
      continue;
    }
    out->insert(out->end(), begin, begin + n);
  }
  if (trimmed != nullptr) *trimmed += skipped;
}

void EventBuffer::publish_telemetry() {
  using telemetry::Counter;
  const std::uint64_t stored = size();
  if (stored > published_stored_) {
    telemetry::count(Counter::kEventsRecorded, stored - published_stored_);
    published_stored_ = stored;
  }
  const std::uint64_t drops = dropped();
  if (drops > published_dropped_) {
    telemetry::count(Counter::kEventsDropped, drops - published_dropped_);
    published_dropped_ = drops;
  }
  if (overwritten_ > published_overwritten_) {
    telemetry::count(Counter::kEventsOverwritten,
                     overwritten_ - published_overwritten_);
    published_overwritten_ = overwritten_;
  }
}

ThreadState* ThreadRegistry::current() {
  if (tls_slot.state == nullptr ||
      tls_slot.generation != g_generation.load(std::memory_order_acquire)) {
    tls_slot.state = register_thread();
    tls_slot.generation = g_generation.load(std::memory_order_acquire);
  }
  return tls_slot.state;
}

ThreadState* ThreadRegistry::register_thread() {
  common::MutexLock lock(&mu_);
  threads_.push_back(std::make_unique<ThreadState>());
  threads_.back()->thread_id = next_id_++;
  if (buffer_ring_ != 0) {
    threads_.back()->events.set_ring(buffer_ring_);
  } else {
    threads_.back()->events.set_limit(buffer_limit_);
  }
  telemetry::count(telemetry::Counter::kThreadsRegistered);
  telemetry::gauge_set(telemetry::Gauge::kActiveThreads,
                       static_cast<std::int64_t>(threads_.size()));
  return threads_.back().get();
}

void ThreadRegistry::bind_current(std::uint16_t node_id, std::uint16_t core,
                                  const VirtualTsc* clock) {
  ThreadState* ts = current();
  ts->node_id = node_id;
  ts->core = core;
  ts->clock = clock;
}

void ThreadRegistry::set_buffer_limit(std::size_t max_events_per_thread) {
  common::MutexLock lock(&mu_);
  buffer_limit_ = max_events_per_thread;
}

void ThreadRegistry::set_buffer_ring(std::size_t ring_events_per_thread) {
  common::MutexLock lock(&mu_);
  buffer_ring_ = ring_events_per_thread;
}

void ThreadRegistry::collect_into(trace::Trace* trace, std::uint64_t ring_ticks,
                                  DrainTotals* totals, bool publish) {
  std::size_t total = 0;
  for (const auto& ts : threads_) total += ts->events.size();
  trace->fn_events.reserve(trace->fn_events.size() + total);
  trace->fn_event_runs.reserve(trace->fn_event_runs.size() + threads_.size());
  for (const auto& ts : threads_) {
    if (publish) {
      // Exact telemetry now that the thread is quiesced: the partial
      // last chunk, scratch-resident drops, and the suppressed /
      // throttled remainders below the block-publication granularity
      // all flush to the counters.
      ts->events.publish_telemetry();
      if (ts->suppressed > ts->published_suppressed) {
        telemetry::count(telemetry::Counter::kEventsSuppressed,
                         ts->suppressed - ts->published_suppressed);
        ts->published_suppressed = ts->suppressed;
      }
      if (ts->throttled > ts->published_throttled) {
        telemetry::count(telemetry::Counter::kEventsThrottled,
                         ts->throttled - ts->published_throttled);
        ts->published_throttled = ts->throttled;
      }
    }
    // TEMPEST_RING_SECONDS: trim to each thread's own clock domain —
    // "now minus the window" translated the same way its events were.
    std::uint64_t min_tsc = 0;
    if (ring_ticks != 0) {
      const std::uint64_t now = ts->now();
      min_tsc = now > ring_ticks ? now - ring_ticks : 0;
    }
    std::uint64_t trimmed = 0;
    const std::size_t begin = trace->fn_events.size();
    ts->events.append_to(&trace->fn_events, min_tsc, &trimmed);
    const std::size_t count = trace->fn_events.size() - begin;
    // Each thread stamps from one clock domain, so its buffer is a
    // time-ordered run; record it for the k-way merge in sort_by_time
    // (which re-validates the ordering before trusting it).
    if (count > 0) trace->fn_event_runs.push_back({begin, count});
    trace->threads.push_back({ts->thread_id, ts->node_id, ts->core});
    if (totals != nullptr) {
      totals->retained += count;
      totals->dropped += ts->events.dropped();
      totals->overwritten += ts->events.overwritten() + trimmed;
      totals->admitted += ts->admitted;
      totals->suppressed += ts->suppressed;
      totals->throttled += ts->throttled;
    }
  }
}

void ThreadRegistry::drain_into(trace::Trace* trace, std::uint64_t ring_ticks,
                                DrainTotals* totals) {
  common::MutexLock lock(&mu_);
  collect_into(trace, ring_ticks, totals, /*publish=*/true);
}

void ThreadRegistry::snapshot_into(trace::Trace* trace,
                                   std::uint64_t ring_ticks,
                                   DrainTotals* totals) {
  common::MutexLock lock(&mu_);
  collect_into(trace, ring_ticks, totals, /*publish=*/false);
}

std::size_t ThreadRegistry::total_events() {
  common::MutexLock lock(&mu_);
  std::size_t total = 0;
  for (const auto& ts : threads_) total += ts->events.size();
  return total;
}

void ThreadRegistry::reset() {
  common::MutexLock lock(&mu_);
  // Retire rather than destroy: a thread that fetched its state before
  // this bump may still be appending to it. The state stays alive (one
  // small leak per reset, i.e. per session) and the writer re-registers
  // on its next current() call.
  for (auto& ts : threads_) retired_.push_back(std::move(ts));
  threads_.clear();
  next_id_ = 0;
  telemetry::gauge_set(telemetry::Gauge::kActiveThreads, 0);
  g_generation.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace tempest::core
