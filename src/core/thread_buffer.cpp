#include "core/thread_buffer.hpp"

#include <algorithm>
#include <atomic>
#include <string>

#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"

namespace tempest::core {
namespace {

struct TlsSlot {
  ThreadState* state = nullptr;
  std::uint64_t generation = 0;
};

thread_local TlsSlot tls_slot;

// Generation bumps on reset() so stale TLS pointers from a previous
// session re-register instead of recording into a retired state
// forever. Atomic: recording threads poll it without the registry lock.
std::atomic<std::uint64_t> g_generation{1};

}  // namespace

void EventBuffer::new_chunk() {
  using telemetry::Counter;
  if (dropping_) {
    // Scratch wrapped: the kChunkSize events it held are gone for good.
    dropped_ += kChunkSize;
    telemetry::count(Counter::kEventsDropped, kChunkSize);
    published_dropped_ += kChunkSize;
    pos_ = 0;
    return;
  }
  if (!chunks_.empty()) {
    // The chunk that just filled becomes visible to telemetry here —
    // chunk-granular publication keeps the per-event hot path free of
    // atomics while the heartbeat still tracks recording rate live.
    telemetry::count(Counter::kEventsRecorded, kChunkSize);
    published_stored_ += kChunkSize;
  }
  if (max_chunks_ != 0 && chunks_.size() >= max_chunks_) {
    if (scratch_ == nullptr) {
      scratch_ = std::make_unique<trace::FnEvent[]>(kChunkSize);
    }
    dropping_ = true;
    active_ = scratch_.get();
    pos_ = 0;
    // One warning per thread (a buffer belongs to exactly one), never
    // repeated on scratch wraps — the exact count lands in RUNSTATS.
    telemetry::log_warn(
        "buffer", "thread event buffer full at " + std::to_string(size()) +
                      " events; newer events are being dropped (raise "
                      "TEMPEST_MAX_EVENTS)");
    return;
  }
  chunks_.push_back(std::make_unique<trace::FnEvent[]>(kChunkSize));
  active_ = chunks_.back().get();
  pos_ = 0;
  telemetry::count(Counter::kBufferFlushes);
}

void EventBuffer::append(const trace::FnEvent* events, std::size_t n) {
  while (n > 0) {
    if (pos_ == kChunkSize) new_chunk();
    const std::size_t room = kChunkSize - pos_;
    const std::size_t take = n < room ? n : room;
    std::copy(events, events + take, active_ + pos_);
    pos_ += take;
    events += take;
    n -= take;
  }
}

void EventBuffer::set_limit(std::size_t max_events) {
  max_chunks_ =
      max_events == 0 ? 0 : (max_events + kChunkSize - 1) / kChunkSize;
}

void EventBuffer::append_to(std::vector<trace::FnEvent>* out) const {
  out->reserve(out->size() + size());
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const std::size_t n =
        (i + 1 == chunks_.size() && !dropping_) ? pos_ : kChunkSize;
    out->insert(out->end(), chunks_[i].get(), chunks_[i].get() + n);
  }
}

void EventBuffer::publish_telemetry() {
  using telemetry::Counter;
  const std::uint64_t stored = size();
  if (stored > published_stored_) {
    telemetry::count(Counter::kEventsRecorded, stored - published_stored_);
    published_stored_ = stored;
  }
  const std::uint64_t drops = dropped();
  if (drops > published_dropped_) {
    telemetry::count(Counter::kEventsDropped, drops - published_dropped_);
    published_dropped_ = drops;
  }
}

ThreadState* ThreadRegistry::current() {
  if (tls_slot.state == nullptr ||
      tls_slot.generation != g_generation.load(std::memory_order_acquire)) {
    tls_slot.state = register_thread();
    tls_slot.generation = g_generation.load(std::memory_order_acquire);
  }
  return tls_slot.state;
}

ThreadState* ThreadRegistry::register_thread() {
  common::MutexLock lock(&mu_);
  threads_.push_back(std::make_unique<ThreadState>());
  threads_.back()->thread_id = next_id_++;
  threads_.back()->events.set_limit(buffer_limit_);
  telemetry::count(telemetry::Counter::kThreadsRegistered);
  telemetry::gauge_set(telemetry::Gauge::kActiveThreads,
                       static_cast<std::int64_t>(threads_.size()));
  return threads_.back().get();
}

void ThreadRegistry::bind_current(std::uint16_t node_id, std::uint16_t core,
                                  const VirtualTsc* clock) {
  ThreadState* ts = current();
  ts->node_id = node_id;
  ts->core = core;
  ts->clock = clock;
}

void ThreadRegistry::set_buffer_limit(std::size_t max_events_per_thread) {
  common::MutexLock lock(&mu_);
  buffer_limit_ = max_events_per_thread;
}

void ThreadRegistry::drain_into(trace::Trace* trace) {
  common::MutexLock lock(&mu_);
  std::size_t total = 0;
  for (const auto& ts : threads_) total += ts->events.size();
  trace->fn_events.reserve(trace->fn_events.size() + total);
  trace->fn_event_runs.reserve(trace->fn_event_runs.size() + threads_.size());
  for (const auto& ts : threads_) {
    // Exact telemetry now that the thread is quiesced: the partial last
    // chunk and any scratch-resident drops flush to the counters.
    ts->events.publish_telemetry();
    const std::size_t begin = trace->fn_events.size();
    ts->events.append_to(&trace->fn_events);
    const std::size_t count = trace->fn_events.size() - begin;
    // Each thread stamps from one clock domain, so its buffer is a
    // time-ordered run; record it for the k-way merge in sort_by_time
    // (which re-validates the ordering before trusting it).
    if (count > 0) trace->fn_event_runs.push_back({begin, count});
    trace->threads.push_back({ts->thread_id, ts->node_id, ts->core});
  }
}

std::size_t ThreadRegistry::total_events() {
  common::MutexLock lock(&mu_);
  std::size_t total = 0;
  for (const auto& ts : threads_) total += ts->events.size();
  return total;
}

void ThreadRegistry::reset() {
  common::MutexLock lock(&mu_);
  // Retire rather than destroy: a thread that fetched its state before
  // this bump may still be appending to it. The state stays alive (one
  // small leak per reset, i.e. per session) and the writer re-registers
  // on its next current() call.
  for (auto& ts : threads_) retired_.push_back(std::move(ts));
  threads_.clear();
  next_id_ = 0;
  telemetry::gauge_set(telemetry::Gauge::kActiveThreads, 0);
  g_generation.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace tempest::core
