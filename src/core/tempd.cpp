#include "core/tempd.hpp"

#include <chrono>

#include "common/tsc.hpp"

#if defined(__linux__)
#include <ctime>
#endif

namespace tempest::core {
namespace {

double thread_cpu_seconds() {
#if defined(__linux__)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

}  // namespace

void Tempd::start(double hz, std::vector<NodeBinding>* nodes) {
  common::MutexLock lock(&lifecycle_mu_);
  if (thread_.joinable()) return;  // already running
  nodes_ = nodes;
  samples_.clear();
  clock_syncs_.clear();
  stats_ = Stats{};
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this, hz] { run_loop(hz); });
}

void Tempd::stop() {
  common::MutexLock lock(&lifecycle_mu_);
  // Request-before-join, and only ever join under the lifecycle lock:
  // a second stop() (or the destructor racing an explicit stop) sees a
  // non-joinable handle and falls through. Safe when start() never ran.
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    thread_.join();
    thread_ = std::thread();
  }
  running_.store(false, std::memory_order_release);
}

void Tempd::run_loop(double hz) {
  using clock = std::chrono::steady_clock;
  const auto period = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(1.0 / hz));
  auto next = clock::now();

  // One sample immediately: short functions at the very start of a run
  // should still see a reading at-or-before their window.
  while (!stop_requested_.load(std::memory_order_acquire)) {
    sample_all_nodes();
    ++stats_.ticks;
    next += period;
    // sleep_until in small slices so stop() is responsive at low rates.
    while (!stop_requested_.load(std::memory_order_acquire)) {
      const auto now = clock::now();
      if (now >= next) break;
      const auto remaining = next - now;
      std::this_thread::sleep_for(
          std::min(remaining, clock::duration(std::chrono::milliseconds(20))));
    }
  }
  // Final sample so every function interval is bracketed by readings.
  sample_all_nodes();
  ++stats_.ticks;
  stats_.cpu_seconds = thread_cpu_seconds();
}

void Tempd::sample_all_nodes() {
  for (NodeBinding& node : *nodes_) {
    if (node.on_tick) node.on_tick();
    const std::uint64_t global_now = rdtsc();
    std::uint64_t node_now = global_now;
    if (node.sim != nullptr) {
      node.sim->advance_to(global_now);
      node_now = node.sim->clock().translate(global_now);
      clock_syncs_.push_back({node_now, global_now, node.node_id});
    }
    for (const auto& sensor : node.sensors) {
      auto reading = node.backend->read_celsius(sensor.id);
      if (!reading.is_ok()) {
        ++stats_.read_errors;
        continue;
      }
      samples_.push_back({node_now, reading.value(), node.node_id, sensor.id});
      ++stats_.samples;
    }
  }
}

}  // namespace tempest::core
