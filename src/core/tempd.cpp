#include "core/tempd.hpp"

#include <chrono>
#include <cmath>

#include "common/tsc.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"

#if defined(__linux__)
#include <ctime>
#endif

namespace tempest::core {
namespace {

double thread_cpu_seconds() {
#if defined(__linux__)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

double to_us(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

}  // namespace

void Tempd::set_tick_hook(std::function<void()> hook) {
  common::MutexLock lock(&lifecycle_mu_);
  if (thread_.joinable()) return;  // running sampler keeps its hook
  tick_hook_ = std::move(hook);
}

void Tempd::start(double hz, std::vector<NodeBinding>* nodes) {
  common::MutexLock lock(&lifecycle_mu_);
  if (thread_.joinable()) return;  // already running
  nodes_ = nodes;
  samples_.clear();
  clock_syncs_.clear();
  stats_ = Stats{};
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this, hz] { run_loop(hz); });
}

void Tempd::stop() {
  common::MutexLock lock(&lifecycle_mu_);
  // Request-before-join, and only ever join under the lifecycle lock:
  // a second stop() (or the destructor racing an explicit stop) sees a
  // non-joinable handle and falls through. Safe when start() never ran.
  stop_requested_.store(true, std::memory_order_release);
  const bool was_running = thread_.joinable();
  if (thread_.joinable()) {
    thread_.join();
    thread_ = std::thread();
  }
  running_.store(false, std::memory_order_release);
  if (was_running) {
    // The Stats used to be join-published and then silently discarded;
    // one line makes the sampler's health part of every run's record.
    telemetry::log_info(
        "tempd", "stopped: " + std::to_string(stats_.ticks) + " ticks (" +
                     std::to_string(stats_.missed_ticks) + " missed), " +
                     std::to_string(stats_.samples) + " samples, " +
                     std::to_string(stats_.read_errors) + " read errors, " +
                     std::to_string(stats_.cpu_seconds) + " cpu sec");
  }
}

void Tempd::run_loop(double hz) {
  using clock = std::chrono::steady_clock;
  using telemetry::Counter;
  using telemetry::Gauge;
  using telemetry::Histogram;
  const auto period = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(1.0 / hz));
  // Absolute deadline schedule: every deadline is start + n*period. A
  // late tick does not push later deadlines back (no cumulative drift);
  // an overrun past whole periods skips them and counts the misses.
  auto next = clock::now();

  // One sample immediately: short functions at the very start of a run
  // should still see a reading at-or-before their window.
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const auto tick_start = clock::now();
    // Jitter = how late the sweep starts relative to its deadline
    // (early wakeups clamp to 0 — the slice loop below never overshoots
    // by design, scheduling noise does).
    const double late_us = to_us(tick_start - next);
    telemetry::observe(Histogram::kCadenceJitterUs,
                       late_us < 0.0 ? 0.0 : late_us);
    sample_all_nodes();
    ++stats_.ticks;
    telemetry::count(Counter::kTempdTicks);
    // After the sweep so a snapshot taken from the hook sees samples up
    // to and including this tick.
    if (tick_hook_) tick_hook_();
    const auto tick_end = clock::now();
    telemetry::observe(Histogram::kTickWallUs, to_us(tick_end - tick_start));
    telemetry::gauge_set(
        Gauge::kTempdCpuUs,
        static_cast<std::int64_t>(std::llround(thread_cpu_seconds() * 1e6)));
    // Piggyback the RSS high-water mark on the tick so live heartbeats
    // carry it; one getrusage per period is noise.
    telemetry::gauge_set(Gauge::kPeakRssKb, telemetry::read_peak_rss_kb());

    next += period;
    while (next <= tick_end) {  // sweep overran one or more whole periods
      next += period;
      ++stats_.missed_ticks;
      telemetry::count(Counter::kTempdMissedTicks);
    }
    // sleep_until the absolute deadline in small slices so stop() is
    // responsive at low rates.
    while (!stop_requested_.load(std::memory_order_acquire)) {
      const auto now = clock::now();
      if (now >= next) break;
      std::this_thread::sleep_until(
          std::min(next, now + clock::duration(std::chrono::milliseconds(20))));
    }
  }
  // Final sample so every function interval is bracketed by readings.
  sample_all_nodes();
  ++stats_.ticks;
  telemetry::count(Counter::kTempdTicks);
  stats_.cpu_seconds = thread_cpu_seconds();
  telemetry::gauge_set(
      Gauge::kTempdCpuUs,
      static_cast<std::int64_t>(std::llround(stats_.cpu_seconds * 1e6)));
}

void Tempd::sample_all_nodes() {
  using clock = std::chrono::steady_clock;
  using telemetry::Counter;
  using telemetry::Gauge;
  using telemetry::Histogram;
  std::size_t sensor_index = 0;  // global across nodes, for the gauges
  for (NodeBinding& node : *nodes_) {
    if (node.on_tick) node.on_tick();
    const std::uint64_t global_now = rdtsc();
    std::uint64_t node_now = global_now;
    if (node.sim != nullptr) {
      node.sim->advance_to(global_now);
      node_now = node.sim->clock().translate(global_now);
      clock_syncs_.push_back({node_now, global_now, node.node_id});
    }
    for (const auto& sensor : node.sensors) {
      const auto read_start = clock::now();
      auto reading = node.backend->read_celsius(sensor.id);
      telemetry::observe(Histogram::kSensorReadUs,
                         to_us(clock::now() - read_start));
      telemetry::count(Counter::kSensorReads);
      const std::size_t idx = sensor_index++;
      if (!reading.is_ok()) {
        ++stats_.read_errors;
        telemetry::count(Counter::kSensorReadFailures);
        continue;
      }
      samples_.push_back({node_now, reading.value(), node.node_id, sensor.id});
      ++stats_.samples;
      telemetry::count(Counter::kTempdSamples);
      if (idx < 8) {
        telemetry::gauge_set(
            static_cast<Gauge>(static_cast<std::size_t>(Gauge::kSensorTemp0MilliC) + idx),
            static_cast<std::int64_t>(std::llround(reading.value() * 1000.0)));
      }
    }
  }
}

}  // namespace tempest::core
