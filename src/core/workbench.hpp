// Workbench: drives a simulated node from a serial workload.
//
// The paper's micro-benchmarks pair a "CPU burn" code (heats the die)
// with timer waits (lets it cool). On real hardware burn/wait map to
// computation and sleep; against a simulated node the workload must also
// feed the activity meter, which is what Workbench encapsulates:
// burn() genuinely spins the host CPU (so profiling overhead is real)
// while marking the core busy, idle() sleeps while marking it idle, and
// both honour the node's DVFS speed factor so throttling visibly
// stretches execution time (the §5 thermal-optimization experiment).
#pragma once

#include <cstdint>

#include "simnode/node.hpp"

namespace tempest::core {

class Workbench {
 public:
  /// `node` must be registered with the session under `node_id`.
  Workbench(simnode::SimNode* node, std::uint16_t node_id, std::uint16_t core = 0);

  /// Bind the calling thread to the node (clock + meter busy).
  void attach();
  /// Mark the core idle (end of workload).
  void detach();

  /// Burn `work_seconds` of full-speed CPU work; wall time stretches
  /// when the DVFS governor throttles the node.
  void burn(double work_seconds);

  /// Idle (sleep) for `wall_seconds`, metering the core idle.
  void idle(double wall_seconds);

  simnode::SimNode* node() { return node_; }
  std::uint16_t node_id() const { return node_id_; }

 private:
  simnode::SimNode* node_;
  std::uint16_t node_id_;
  std::uint16_t core_;
};

}  // namespace tempest::core
