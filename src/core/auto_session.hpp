// Transparent auto-profiling (link-and-run mode).
//
// This is the paper's headline usage: "Users must simply compile with
// instrumentation enabled, link to one or more Tempest libraries, run
// their code, and invoke the Tempest parser". Linking tempest_auto adds
// a constructor that starts the session before main ("the tempd process
// ... is launched before the main function of the profiled application
// is invoked") and a destructor that stops it, prints the standard
// output profile, and writes the trace file ("upon ... exiting, the
// destructor in the shared library is called which sends a signal to
// tempd for termination and performs cleanup").
//
// Sensor source: real hwmon sensors when the host exposes them;
// otherwise a simulated node whose utilisation is driven by the
// process's measured CPU time — so a CPU-bound phase genuinely heats
// the simulated die with no cooperation from the profiled code.
//
// Environment knobs (in addition to the TEMPEST_* session variables):
//   TEMPEST_AUTO=0   disable without relinking
#pragma once

namespace tempest::core {

/// True when the auto session started at process startup and is active.
bool auto_session_active();

}  // namespace tempest::core
