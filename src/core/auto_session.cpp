#include "core/auto_session.hpp"

#include <sys/resource.h>

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/env.hpp"
#include "common/tsc.hpp"
#include "core/session.hpp"
#include "parser/parse.hpp"
#include "report/stdout_format.hpp"
#include "simnode/cluster.hpp"

namespace tempest::core {
namespace {

/// Feeds a simulated node the process's CPU utilisation, sampled from
/// getrusage deltas at every tempd tick.
class RusageDriver {
 public:
  explicit RusageDriver(simnode::SimNode* node) : node_(node) {
    last_cpu_s_ = process_cpu_seconds();
    last_tsc_ = rdtsc();
  }

  void tick() {
    const double cpu = process_cpu_seconds();
    const std::uint64_t now = rdtsc();
    const double wall = tsc_to_seconds(now - last_tsc_);
    if (wall > 1e-6) {
      const double u = (cpu - last_cpu_s_) / wall;
      // Spread measured utilisation across the node's cores, capping
      // each at 1 (a 2-core node at u=1.6 runs both cores at 0.8).
      const double per_core =
          std::min(1.0, u / static_cast<double>(node_->core_count()));
      for (std::size_t c = 0; c < node_->core_count(); ++c) {
        node_->set_utilization_override(c, per_core);
      }
    }
    last_cpu_s_ = cpu;
    last_tsc_ = now;
  }

 private:
  static double process_cpu_seconds() {
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
    auto tv_s = [](const timeval& tv) {
      return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
    };
    return tv_s(usage.ru_utime) + tv_s(usage.ru_stime);
  }

  simnode::SimNode* node_;
  double last_cpu_s_ = 0.0;
  std::uint64_t last_tsc_ = 0;
};

struct AutoState {
  bool active = false;
  std::unique_ptr<simnode::SimNode> sim_node;
  std::unique_ptr<RusageDriver> driver;
};

AutoState& auto_state() {
  static AutoState* state = new AutoState();
  return *state;
}

__attribute__((constructor)) void tempest_auto_start() {
  if (!env_bool("TEMPEST_AUTO", true)) return;
  auto& session = Session::instance();
  AutoState& state = auto_state();

  auto hwmon = session.register_hwmon_node();
  if (!hwmon.is_ok()) {
    auto node_config = simnode::make_node_config(simnode::NodeKind::kX86Basic);
    node_config.hostname = "localhost(sim)";
    node_config.package.time_scale = env_double("TEMPEST_TIME_SCALE", 20.0);
    state.sim_node = std::make_unique<simnode::SimNode>(node_config);
    const auto node_id = session.register_sim_node(state.sim_node.get());
    state.driver = std::make_unique<RusageDriver>(state.sim_node.get());
    (void)session.set_node_tick_hook(node_id, [&state] { state.driver->tick(); });
  }

  if (session.start(SessionConfig::from_env())) {
    state.active = true;
  }
}

__attribute__((destructor)) void tempest_auto_stop() {
  AutoState& state = auto_state();
  if (!state.active) return;
  auto& session = Session::instance();
  const bool report = session.config().auto_report;
  if (!session.stop()) return;
  state.active = false;
  if (report) {
    auto parsed = parser::parse_trace(session.take_trace());
    if (parsed.is_ok()) {
      std::cout << "\n===== Tempest profile =====\n";
      report::print_profile(std::cout, parsed.value());
    } else {
      std::fprintf(stderr, "tempest: parse failed: %s\n", parsed.message().c_str());
    }
  }
}

}  // namespace

bool auto_session_active() { return auto_state().active; }

}  // namespace tempest::core
