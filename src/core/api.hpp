// Tempest public API.
//
// Two usage styles, as in the paper:
//  1. Transparent: compile workload TUs with -finstrument-functions and
//     link tempest_hooks — every function entry/exit is traced with no
//     source changes.
//  2. Explicit ("non-transparent profiling library independent of the
//     compiler"): ScopedRegion / TEMPEST_FUNCTION for named regions.
//
// Both feed the same session; profiles mix freely.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "core/config.hpp"
#include "core/session.hpp"

namespace tempest {

/// Start profiling with the given (or env-derived) configuration.
/// Requires at least one registered node; see Session::register_*.
Status start(const core::SessionConfig& config = core::SessionConfig::from_env());

/// Stop profiling and assemble the trace.
Status stop();

bool active();

/// Flight-recorder snapshot: ask the sampler thread to write the
/// current ring window as a standalone trace file (next to
/// TEMPEST_OUT) and wait for it. Returns the snapshot path. Most useful
/// with TEMPEST_RING_EVENTS / TEMPEST_RING_SECONDS, but works for any
/// active session with an output path.
Result<std::string> snapshot(double timeout_s = 5.0);

/// Pre-resolved synthetic address for a region name. Construct once
/// (e.g. as a function-local static) so hot call sites skip the
/// name-table lookup — the explicit-API analogue of the hooks' raw
/// function-pointer key.
class RegionHandle {
 public:
  explicit RegionHandle(const std::string& name)
      : addr_(core::Session::instance().synthetic_addr(name)) {}
  std::uint64_t addr() const { return addr_; }

 private:
  std::uint64_t addr_;
};

/// RAII explicit region: records enter at construction, exit at
/// destruction, under a stable synthetic "function" named `name`.
class ScopedRegion {
 public:
  explicit ScopedRegion(const std::string& name)
      : addr_(core::Session::instance().synthetic_addr(name)) {
    core::Session::instance().record_enter(addr_);
  }
  explicit ScopedRegion(const RegionHandle& handle) : addr_(handle.addr()) {
    core::Session::instance().record_enter(addr_);
  }
  ~ScopedRegion() { core::Session::instance().record_exit(addr_); }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  std::uint64_t addr_;
};

/// Explicit enter/exit for C-style call sites (must be balanced).
void region_enter(const std::string& name);
void region_exit(const std::string& name);

}  // namespace tempest

/// Profile the enclosing function body as a named region. The handle is
/// a function-local static, so repeated calls cost only two records.
#define TEMPEST_FUNCTION()                                       \
  static const ::tempest::RegionHandle tempest_region_handle(__func__); \
  ::tempest::ScopedRegion tempest_region_scope(tempest_region_handle)

/// Profile a named sub-scope (name must be a constant expression).
#define TEMPEST_SCOPE(name)                                          \
  static const ::tempest::RegionHandle tempest_scope_handle_##__LINE__(name); \
  ::tempest::ScopedRegion tempest_scope_##__LINE__(tempest_scope_handle_##__LINE__)
