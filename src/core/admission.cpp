#include "core/admission.hpp"

namespace tempest::core {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

AddrSet::AddrSet(std::size_t expected) {
  const std::size_t cap = round_up_pow2(expected < 32 ? 64 : expected * 2);
  slots_ = std::vector<std::atomic<std::uint64_t>>(cap);
  for (auto& s : slots_) s.store(0, std::memory_order_relaxed);
  mask_ = cap - 1;
}

bool AddrSet::insert(std::uint64_t addr) {
  if (addr == 0) return false;
  const std::size_t m = mask_;
  std::size_t i = mix(addr) & m;
  for (;;) {
    std::uint64_t k = slots_[i].load(std::memory_order_relaxed);
    if (k == addr) return true;
    if (k == 0) {
      // Half-full is the line: beyond it probe chains on the hot path
      // stop being "first or second slot" and the set refuses.
      if (used_.load(std::memory_order_relaxed) * 2 >= capacity()) return false;
      if (slots_[i].compare_exchange_strong(k, addr,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
        used_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (k == addr) return true;  // lost the race to the same address
      continue;  // lost to a different address; reprobe this slot chain
    }
    i = (i + 1) & m;
  }
}

FnThrottle* ThrottleState::cell(std::uint64_t addr) {
  if (table_.empty() || used_ * 2 >= table_.size()) grow();
  const std::size_t m = mask_;
  std::size_t i = (addr * 0x9E37'79B9'7F4A'7C15ULL >> 13) & m;
  for (;;) {
    FnThrottle& f = table_[i];
    if (f.addr == addr) return &f;
    if (f.addr == 0) {
      f.addr = addr;
      ++used_;
      return &f;
    }
    i = (i + 1) & m;
  }
}

void ThrottleState::grow() {
  const std::size_t cap = table_.empty() ? 256 : table_.size() * 2;
  std::vector<FnThrottle> old = std::move(table_);
  table_.assign(cap, FnThrottle{});
  mask_ = cap - 1;
  used_ = 0;
  for (const FnThrottle& f : old) {
    if (f.addr == 0) continue;
    std::size_t i = (f.addr * 0x9E37'79B9'7F4A'7C15ULL >> 13) & mask_;
    while (table_[i].addr != 0) i = (i + 1) & mask_;
    table_[i] = f;
    ++used_;
  }
}

}  // namespace tempest::core
