#include "simnode/activity.hpp"

#include <algorithm>

#include "common/tsc.hpp"

namespace tempest::simnode {

void ActivityMeter::set_busy(std::uint64_t now_tsc) {
  common::MutexLock lock(&mu_);
  if (!started_) {
    window_start_ = now_tsc;
    started_ = true;
  }
  if (!busy_) {
    busy_ = true;
    busy_since_ = now_tsc;
  }
}

void ActivityMeter::set_idle(std::uint64_t now_tsc) {
  common::MutexLock lock(&mu_);
  if (!started_) {
    window_start_ = now_tsc;
    started_ = true;
  }
  if (busy_) {
    // Clip to the current window so a sample between transitions does
    // not double-count ticks it already consumed.
    const std::uint64_t from = std::max(busy_since_, window_start_);
    if (now_tsc > from) busy_ticks_ += now_tsc - from;
    busy_ = false;
  }
}

double ActivityMeter::sample(std::uint64_t now_tsc) {
  common::MutexLock lock(&mu_);
  if (!started_ || now_tsc <= window_start_) {
    window_start_ = now_tsc;
    started_ = true;
    busy_ticks_ = 0;
    return busy_ ? 1.0 : 0.0;
  }
  std::uint64_t busy = busy_ticks_;
  if (busy_) {
    const std::uint64_t from = std::max(busy_since_, window_start_);
    if (now_tsc > from) busy += now_tsc - from;
  }
  const double fraction = std::min(
      1.0, static_cast<double>(busy) / static_cast<double>(now_tsc - window_start_));
  busy_ticks_ = 0;
  window_start_ = now_tsc;
  return fraction;
}

bool ActivityMeter::busy() const {
  common::MutexLock lock(&mu_);
  return busy_;
}

IdleScope::IdleScope(ActivityMeter& meter, std::uint64_t now_tsc) : meter_(meter) {
  meter_.set_idle(now_tsc);
}

IdleScope::~IdleScope() { meter_.set_busy(rdtsc()); }

}  // namespace tempest::simnode
