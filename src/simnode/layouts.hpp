// Sensor layout presets.
//
// The paper observed "as few as 3 sensors on x86 platforms from AMD and
// up to 7 sensors on PowerPC G5 systems", and its Tables 2/3 print six
// sensors per Opteron node. These presets reproduce those layouts on
// top of the CpuPackage network nodes.
#pragma once

#include <cstddef>
#include <vector>

#include "sensors/sim_backend.hpp"

namespace tempest::simnode {

/// Minimal x86 desktop: CPU diode, motherboard, heatsink. 1 C steps.
std::vector<sensors::SimSensorSpec> x86_basic_layout();

/// Paper's Opteron cluster node: six sensors (board ambients, socket,
/// per-core diodes, heatsink), 1 C quantisation — the source of the flat
/// Min=Max rows in Tables 2 and 3. `cores` must be >= 2.
std::vector<sensors::SimSensorSpec> opteron_layout(std::size_t cores);

/// PowerPC G5 (System X): seven sensors, finer 0.5 C granularity.
std::vector<sensors::SimSensorSpec> g5_layout();

}  // namespace tempest::simnode
