#include "simnode/node.hpp"

namespace tempest::simnode {

SimNode::SimNode(NodeConfig config)
    : config_(std::move(config)),
      package_(config_.package),
      clock_(config_.tsc_offset_ticks, config_.tsc_drift_ppm) {
  for (std::size_t c = 0; c < config_.package.cores; ++c) {
    meters_.push_back(std::make_unique<ActivityMeter>());
  }
  backend_ = std::make_unique<sensors::SimBackend>(&package_.network(),
                                                   config_.sensor_layout,
                                                   config_.noise_seed);
  utilization_override_.assign(config_.package.cores, -1.0);
  settle_idle();
}

double SimNode::speed_factor() const { return package_.speed_factor(); }

void SimNode::advance_to(std::uint64_t real_tsc) {
  common::MutexLock lock(&advance_mu_);
  if (!advanced_once_) {
    last_advance_tsc_ = real_tsc;
    advanced_once_ = true;
    return;
  }
  if (real_tsc <= last_advance_tsc_) return;
  const double dt = tsc_to_seconds(real_tsc - last_advance_tsc_);
  std::vector<double> utilization(meters_.size());
  for (std::size_t c = 0; c < meters_.size(); ++c) {
    const double meter_u = meters_[c]->sample(real_tsc);
    utilization[c] =
        utilization_override_[c] >= 0.0 ? utilization_override_[c] : meter_u;
  }
  package_.advance(dt, utilization);
  last_advance_tsc_ = real_tsc;
}

void SimNode::set_utilization_override(std::size_t core, double utilization) {
  common::MutexLock lock(&advance_mu_);
  utilization_override_.at(core) = utilization > 1.0 ? 1.0 : utilization;
}

void SimNode::settle_idle() {
  common::MutexLock lock(&advance_mu_);
  package_.settle_at(std::vector<double>(meters_.size(), 0.0));
}

}  // namespace tempest::simnode
