#include "simnode/layouts.hpp"

#include <stdexcept>

#include "thermal/cpu_package.hpp"

namespace tempest::simnode {

using sensors::SimSensorSpec;
using thermal::CpuPackage;

std::vector<SimSensorSpec> x86_basic_layout() {
  return {
      {"CPU", CpuPackage::die_node_name(0), 1.0, 0.0, 0.0},
      {"M/B", "chassis", 1.0, 0.0, 0.0},
      {"SINK", "sink", 1.0, 0.0, 0.0},
  };
}

std::vector<SimSensorSpec> opteron_layout(std::size_t cores) {
  if (cores < 2) throw std::invalid_argument("opteron layout expects >= 2 cores");
  // sensor1/sensor2: board ambient points (nearly flat during a run),
  // sensor3: socket/spreader, sensor4/sensor5: core diodes,
  // sensor6: heatsink. Names match the paper's anonymous sensorN style.
  return {
      {"sensor1", "chassis", 1.0, 0.0, -4.0},
      {"sensor2", "chassis", 1.0, 0.0, -2.0},
      {"sensor3", "spreader", 1.0, 0.0, 2.0},
      {"sensor4", CpuPackage::die_node_name(0), 1.0, 0.0, 0.0},
      {"sensor5", CpuPackage::die_node_name(1), 1.0, 0.0, 5.0},
      {"sensor6", "sink", 1.0, 0.0, 4.0},
  };
}

std::vector<SimSensorSpec> g5_layout() {
  return {
      {"CPU A DIODE", CpuPackage::die_node_name(0), 0.5, 0.0, 0.0},
      {"CPU B DIODE", CpuPackage::die_node_name(1), 0.5, 0.0, 0.8},
      {"U3 HEATSINK", "sink", 0.5, 0.0, 3.0},
      {"MEMORY CONTROLLER", "spreader", 0.5, 0.0, 6.0},
      {"BACKSIDE", "chassis", 0.5, 0.0, 0.0},
      {"DRIVE BAY", "chassis", 0.5, 0.0, -1.5},
      {"INLET", "chassis", 0.5, 0.0, -3.0},
  };
}

}  // namespace tempest::simnode
