// Per-core activity metering.
//
// The power model needs each core's utilisation. Worker threads mark
// busy/idle transitions (the message-passing runtime marks blocked-in-
// communication time idle — the mechanism behind the paper's observation
// that communication-bound FT runs cool); the sampler thread reads the
// busy fraction accumulated since its previous sample and resets the
// window. Transitions and samples race only on a short mutex-guarded
// critical section.
#pragma once

#include <cstdint>

#include "common/thread_annotations.hpp"

namespace tempest::simnode {

class ActivityMeter {
 public:
  /// Mark the core busy as of `now_tsc`. Idempotent when already busy.
  void set_busy(std::uint64_t now_tsc) EXCLUDES(mu_);

  /// Mark the core idle as of `now_tsc`. Idempotent when already idle.
  void set_idle(std::uint64_t now_tsc) EXCLUDES(mu_);

  /// Busy fraction in [0,1] over [last sample, now]; resets the window.
  /// A zero-length window reports the instantaneous state.
  double sample(std::uint64_t now_tsc) EXCLUDES(mu_);

  bool busy() const EXCLUDES(mu_);

 private:
  mutable common::Mutex mu_;
  bool busy_ GUARDED_BY(mu_) = false;
  std::uint64_t busy_since_ GUARDED_BY(mu_) = 0;   ///< valid while busy_
  std::uint64_t busy_ticks_ GUARDED_BY(mu_) = 0;   ///< accumulated this window
  std::uint64_t window_start_ GUARDED_BY(mu_) = 0;
  bool started_ GUARDED_BY(mu_) = false;
};

/// RAII: marks a core idle for the duration of a scope (blocking waits).
class IdleScope {
 public:
  IdleScope(ActivityMeter& meter, std::uint64_t now_tsc);
  ~IdleScope();
  IdleScope(const IdleScope&) = delete;
  IdleScope& operator=(const IdleScope&) = delete;

 private:
  ActivityMeter& meter_;
};

}  // namespace tempest::simnode
