// Cluster factory with node heterogeneity.
//
// The paper's striking finding is that identical nodes under identical
// load run at visibly different temperatures (Fig 3/4: node 3 above
// 110 F while node 2 stays below 105 F). Real causes are manufacturing
// spread, thermal-paste quality, rack position and inlet airflow. The
// factory models that by perturbing each node's thermal parameters with
// a seeded RNG, so node-to-node spread is reproducible run to run.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "simnode/node.hpp"

namespace tempest::simnode {

enum class NodeKind {
  kX86Basic,     ///< 2 cores, 3 sensors
  kOpteron,      ///< paper's cluster node: dual-processor dual-core, 6 sensors
  kPowerPcG5,    ///< System X node: 2 cores, 7 sensors
};

struct ClusterConfig {
  std::size_t nodes = 4;
  NodeKind kind = NodeKind::kOpteron;
  std::uint64_t seed = 42;
  /// 0 = identical nodes; 1 = the default realistic spread.
  double heterogeneity = 1.0;
  /// Thermal time compression applied to every node (see PackageParams).
  double time_scale = 1.0;
  /// Emulated cross-node TSC skew: max |offset| in seconds and drift ppm.
  double max_tsc_offset_s = 0.0;
  double max_tsc_drift_ppm = 0.0;
  thermal::GovernorParams governor;
};

/// Default per-kind node template (cores, sensors, package parameters).
NodeConfig make_node_config(NodeKind kind);

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  std::size_t size() const { return nodes_.size(); }
  SimNode& node(std::size_t i) { return *nodes_.at(i); }
  const SimNode& node(std::size_t i) const { return *nodes_.at(i); }
  const ClusterConfig& config() const { return config_; }

  /// Let every node return to idle steady state (paper methodology:
  /// "we allowed the system to return to a steady state after every test").
  void settle_all_idle();

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
};

}  // namespace tempest::simnode
