// A simulated cluster node.
//
// Composes the thermal package, the per-core activity meters, a virtual
// TSC (offset + drift vs the global clock, exercising the paper's clock
// skew handling), and the simulated sensor backend. Worker threads touch
// only the activity meters and clock; the tempd sampler calls
// advance_to() then reads sensors, serialised by an internal mutex.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/tsc.hpp"
#include "sensors/sim_backend.hpp"
#include "simnode/activity.hpp"
#include "thermal/cpu_package.hpp"

namespace tempest::simnode {

struct NodeConfig {
  std::string hostname = "node1";
  thermal::PackageParams package;
  std::vector<sensors::SimSensorSpec> sensor_layout;
  std::int64_t tsc_offset_ticks = 0;
  double tsc_drift_ppm = 0.0;
  std::uint64_t noise_seed = 0x7e57;
};

class SimNode {
 public:
  explicit SimNode(NodeConfig config);

  // -- worker-thread side ---------------------------------------------
  ActivityMeter& core_meter(std::size_t core) { return *meters_.at(core); }
  std::size_t core_count() const { return meters_.size(); }
  const VirtualTsc& clock() const { return clock_; }
  const std::string& hostname() const { return config_.hostname; }

  /// Current DVFS speed factor (1.0 = full speed); workloads poll this
  /// to stretch their compute when throttled.
  double speed_factor() const;

  /// Drive a core's utilisation from an external source instead of its
  /// activity meter (e.g. the process's measured CPU share in the
  /// transparent auto-profiling mode). Negative clears the override.
  void set_utilization_override(std::size_t core, double utilization)
      EXCLUDES(advance_mu_);

  // -- sampler side -----------------------------------------------------
  /// Integrate thermal state up to the given global TSC using measured
  /// per-core utilisation since the previous call.
  void advance_to(std::uint64_t real_tsc) EXCLUDES(advance_mu_);

  /// Start from thermal steady state at idle, as the paper does by
  /// letting systems return to steady state between tests.
  void settle_idle() EXCLUDES(advance_mu_);

  sensors::SensorBackend& sensor_backend() { return *backend_; }
  thermal::CpuPackage& package() { return package_; }
  const thermal::CpuPackage& package() const { return package_; }

 private:
  NodeConfig config_;
  thermal::CpuPackage package_;
  std::vector<std::unique_ptr<ActivityMeter>> meters_;
  std::unique_ptr<sensors::SimBackend> backend_;
  VirtualTsc clock_;

  // advance_mu_ serialises the sampler's thermal integration with the
  // (rare) worker-side utilisation overrides; it also guards package_
  // state transitively since only advance/settle mutate it post-ctor.
  common::Mutex advance_mu_;
  std::uint64_t last_advance_tsc_ GUARDED_BY(advance_mu_) = 0;
  bool advanced_once_ GUARDED_BY(advance_mu_) = false;
  /// Per core; < 0 = use meter.
  std::vector<double> utilization_override_ GUARDED_BY(advance_mu_);
};

}  // namespace tempest::simnode
