#include "simnode/cluster.hpp"

#include <random>

#include "simnode/layouts.hpp"

namespace tempest::simnode {

NodeConfig make_node_config(NodeKind kind) {
  NodeConfig config;
  switch (kind) {
    case NodeKind::kX86Basic:
      config.package.cores = 2;
      config.sensor_layout = x86_basic_layout();
      break;
    case NodeKind::kOpteron:
      // Dual-processor dual-core modelled as one 4-core package: the
      // phase behaviour Tempest profiles depends on core count and
      // sensor layout, not on socket topology.
      config.package.cores = 4;
      config.sensor_layout = opteron_layout(config.package.cores);
      break;
    case NodeKind::kPowerPcG5:
      config.package.cores = 2;
      // G5 ran hotter; slightly weaker sink.
      config.package.g_spreader_sink = 3.2;
      config.sensor_layout = g5_layout();
      break;
  }
  return config;
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::uniform_real_distribution<double> positive(0.0, 1.0);

  for (std::size_t i = 0; i < config.nodes; ++i) {
    NodeConfig node = make_node_config(config.kind);
    node.hostname = "node" + std::to_string(i + 1);
    node.package.time_scale = config.time_scale;
    node.package.governor = config.governor;
    node.noise_seed = config.seed * 1000003 + i;

    const double h = config.heterogeneity;
    // Rack-position ambient spread (+-1.5 C), sink attach quality
    // (+-20% conductance), fan tolerance (+-10%), leakage spread (+-10%).
    node.package.ambient_c += h * 1.5 * unit(rng);
    node.package.g_spreader_sink *= 1.0 + h * 0.20 * unit(rng);
    node.package.g_die_spreader *= 1.0 + h * 0.15 * unit(rng);
    node.package.fan.g_per_krpm *= 1.0 + h * 0.10 * unit(rng);
    node.package.power.idle_watts *= 1.0 + h * 0.10 * unit(rng);
    node.package.power.c_eff *= 1.0 + h * 0.08 * unit(rng);

    if (config.max_tsc_offset_s > 0.0) {
      node.tsc_offset_ticks = static_cast<std::int64_t>(
          unit(rng) * config.max_tsc_offset_s * tsc_ticks_per_second());
    }
    if (config.max_tsc_drift_ppm > 0.0) {
      node.tsc_drift_ppm = unit(rng) * config.max_tsc_drift_ppm;
    }
    (void)positive;
    nodes_.push_back(std::make_unique<SimNode>(std::move(node)));
  }
}

void Cluster::settle_all_idle() {
  for (auto& n : nodes_) n->settle_idle();
}

}  // namespace tempest::simnode
