// Static trace validation: the paper's structural invariants, machine-
// checked.
//
// A Tempest trace is only as trustworthy as the pipeline that produced
// it, and every piece of that pipeline is concurrent: lock-free
// per-thread event buffers, the tempd sampler thread, the
// message-passing runtime. tempest-lint validates that an emitted trace
// still satisfies what the paper's design guarantees:
//
//   * per-thread timestamps are monotonic (each thread stamps events
//     from one clock domain, §3.3);
//   * entry/exit streams balance under the parser's per-(thread,addr)
//     depth model (Table 1 interleaving/recursion semantics);
//   * inclusive time is conserved — no function's inclusive ticks on a
//     thread exceed that thread's whole span;
//   * every node/thread/sensor/synthetic-symbol reference resolves
//     against the trace's own metadata;
//   * tempd's sample cadence is plausible (~the configured Hz, 4 by
//     default in the paper).
//
// Violations that can occur in healthy traces (frames already open when
// the session started, `main` still open when it stopped, scheduling
// jitter in the cadence) are warnings; anything a correct pipeline can
// never emit is an error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "trace/trace.hpp"

namespace tempest::analysis {

enum class Severity { kWarning, kError };

/// One invariant violation.
struct Finding {
  std::string check;    ///< stable identifier, e.g. "monotonic-timestamps"
  Severity severity = Severity::kError;
  std::string message;  ///< human-readable details
};

struct LintOptions {
  /// Expected tempd sampling rate; 0 skips the absolute cadence check
  /// (the regularity check still runs).
  double expected_hz = 0.0;
  /// Median inter-sample gap may deviate from 1/expected_hz by this
  /// factor in either direction before the cadence warning fires.
  double cadence_tolerance = 2.0;
  /// Cadence checks need at least this many gaps to be meaningful.
  std::size_t min_cadence_gaps = 8;
  /// Cap on findings recorded per check (the counts are always exact).
  std::size_t max_findings_per_check = 8;
};

/// One function from a static audit of the traced binary, keyed by its
/// link-time address range. Declared here (not in src/audit) so the
/// lint engine stays free of the audit library; tempest-lint's
/// --symtab path builds these from an audit::Inventory.
struct CoverageFunction {
  std::uint64_t addr = 0;  ///< link-time entry address
  std::uint64_t size = 0;  ///< body extent
  std::string name;        ///< raw (possibly mangled)
  bool instrumented = false;
};

/// The traced binary's instrumented set, for the trace<->binary
/// cross-check rules.
struct CoverageInventory {
  std::vector<CoverageFunction> functions;
};

struct LintReport {
  std::vector<Finding> findings;
  std::size_t error_count = 0;
  std::size_t warning_count = 0;

  // Inventory of what was checked (for the report header / JSON).
  std::size_t fn_events = 0;
  std::size_t temp_samples = 0;
  std::size_t threads = 0;
  std::size_t nodes = 0;
  std::size_t sensors = 0;

  bool clean() const { return error_count == 0; }
};

/// Incremental lint engine: the streaming core behind lint_trace.
/// Metadata checks run at construction; records arrive in trace/file
/// order via the add_* calls (any interleaving of the three kinds is
/// fine — only each kind's own order matters); finish() runs the
/// end-of-stream checks (unclosed activations, time conservation,
/// cadence) and assembles the report. Feeding N batches produces the
/// same report as one batch of the concatenation, with findings in the
/// batch path's canonical check order, so lint can ride the streaming
/// pipeline with memory bounded by open activations and sample gaps
/// instead of the whole trace.
class LintEngine {
 public:
  explicit LintEngine(const trace::TraceHeader& header,
                      const LintOptions& options = {});
  ~LintEngine();
  LintEngine(LintEngine&&) noexcept;
  LintEngine& operator=(LintEngine&&) noexcept;

  void add_fn_events(const trace::FnEvent* events, std::size_t n);
  void add_temp_samples(const trace::TempSample* samples, std::size_t n);
  void add_clock_syncs(const trace::ClockSync* syncs, std::size_t n);

  /// Record that `bytes` trailing bytes followed the last trace section
  /// (concatenated or partially overwritten file) — an error finding.
  void note_trailing_bytes(std::uint64_t bytes);

  /// Enable the trace<->binary cross-check against a static audit of
  /// the traced executable. Must be called before the first
  /// add_fn_events (the engine only tracks per-address event counts
  /// once an inventory is present). finish() then reports
  ///   * "instrumentation-coverage" errors for events at addresses the
  ///     binary's instrumented set does not cover (the trace claims
  ///     probes the binary cannot have fired), and
  ///   * "instrumentation-unused" warnings for instrumented functions
  ///     with zero events (never called — or their events were
  ///     dropped).
  /// Synthetic region addresses are exempt; runtime addresses unbias
  /// through the trace header's load_bias.
  void set_coverage_inventory(CoverageInventory inventory);

  /// Provide the trace's RUNSTATS trailer (no-op when absent). finish()
  /// then cross-checks the recorder's own counters against what the
  /// trace actually contains: recorded-event count vs fn events read,
  /// tempd sample count vs samples read, samples vs ticks x sensors —
  /// a mismatch means the trace and its runtime accounting disagree,
  /// i.e. one of them lies. With admission counters present it also
  /// checks the conservation invariant
  ///   calls_observed == recorded + suppressed + throttled
  ///                     + dropped + overwritten.
  /// Callable any time before finish().
  void set_run_stats(const trace::RunStats& stats);

  /// Provide the trace's filter declaration (the FLTR trailer). A
  /// declared filter makes suppression legitimate: suppressed counts
  /// stop looking like data loss, and instrumented functions named by
  /// the filter are exempt from the "instrumentation-unused" warning
  /// (their silence is the filter working, not missing coverage).
  void set_filter_decl(const trace::FilterDecl& filter);

  /// Run end-of-stream checks and return the report. The engine is
  /// spent afterwards.
  LintReport finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Run every lint check over an in-memory trace. Batch wrapper over
/// LintEngine. A non-null `coverage` enables the trace<->binary
/// cross-check (see set_coverage_inventory).
LintReport lint_trace(const trace::Trace& trace, const LintOptions& options = {},
                      const CoverageInventory* coverage = nullptr);

/// Read a trace file and lint it; unreadable/corrupt files are an error
/// Result (distinct from a readable trace with violations). Streams the
/// file through LintEngine in bounded batches — traces larger than RAM
/// lint fine. A non-null `coverage` enables the trace<->binary
/// cross-check.
Result<LintReport> lint_trace_file(const std::string& path,
                                   const LintOptions& options = {},
                                   const CoverageInventory* coverage = nullptr);

/// Machine-readable report (stable field names; one JSON object).
std::string to_json(const LintReport& report);

/// Human-readable report, one finding per line plus a summary.
void write_human(std::ostream& out, const LintReport& report);

}  // namespace tempest::analysis
