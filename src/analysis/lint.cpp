#include "analysis/lint.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "trace/reader.hpp"

namespace tempest::analysis {
namespace {

std::string fmt_thread(std::uint32_t tid) { return "thread " + std::to_string(tid); }

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
             << "0123456789abcdef"[c & 0xF];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

/// Streaming lint state. Findings are gathered into one bucket per
/// check family and concatenated in the canonical order (metadata,
/// references, monotonic, nesting, cadence, trailing bytes) at
/// finish(), so the streamed report is indistinguishable from the batch
/// one. The per-check caps and the error/warning totals are shared
/// across buckets, exactly like the single Collector they replace.
struct LintEngine::Impl {
  /// Appends findings to one bucket while sharing the engine-wide
  /// per-check counters (counts stay exact past the message cap).
  class Collector {
   public:
    Collector(Impl* impl, std::vector<Finding>* bucket)
        : impl_(impl), bucket_(bucket) {}

    void add(const std::string& check, Severity severity, std::string message) {
      const std::size_t n = ++impl_->per_check[check];
      if (severity == Severity::kError) {
        ++impl_->error_count;
      } else {
        ++impl_->warning_count;
      }
      if (n <= impl_->options.max_findings_per_check) {
        bucket_->push_back({check, severity, std::move(message)});
      } else if (n == impl_->options.max_findings_per_check + 1) {
        bucket_->push_back(
            {check, severity, "(further " + check + " findings suppressed)"});
      }
    }

   private:
    Impl* impl_;
    std::vector<Finding>* bucket_;
  };

  LintOptions options;

  // Shared across buckets.
  std::map<std::string, std::size_t> per_check;
  std::size_t error_count = 0;
  std::size_t warning_count = 0;

  // Buckets in canonical emission order. `metadata_deferred` holds the
  // has-data-dependent findings (tsc-rate, empty-trace) that the batch
  // path emits first but streaming can only decide at finish().
  // The monotonic family keeps one sub-bucket per record kind because
  // the batch path emits them in that order with the global-sort
  // warning wedged between events and samples.
  std::vector<Finding> metadata_deferred;
  std::vector<Finding> metadata;
  std::vector<Finding> references;
  std::vector<Finding> mono_events;
  std::vector<Finding> mono_global;
  std::vector<Finding> mono_samples;
  std::vector<Finding> mono_syncs;
  std::vector<Finding> nesting;
  std::vector<Finding> cadence;
  std::vector<Finding> coverage;
  std::vector<Finding> runstats;
  std::vector<Finding> trailing;

  // RUNSTATS trailer (absent unless set_run_stats was called).
  trace::RunStats run_stats;

  // FLTR trailer (absent unless set_filter_decl was called with a
  // present declaration). filtered_names indexes the suppressed list
  // for the instrumentation-unused exemption.
  trace::FilterDecl filter;
  std::set<std::string> filtered_names;

  // Header-derived context.
  double tsc_ticks_per_second = 0.0;
  std::set<std::uint16_t> node_ids;
  std::set<std::uint32_t> thread_ids;
  std::set<std::pair<std::uint16_t, std::uint16_t>> sensor_ids;
  std::set<std::uint64_t> synthetic;
  std::size_t n_threads = 0;
  std::size_t n_nodes = 0;
  std::size_t n_sensors = 0;

  // Inventory.
  std::size_t n_events = 0;
  std::size_t n_samples = 0;

  // Monotonicity state.
  std::map<std::uint32_t, std::uint64_t> last_event;
  std::uint64_t last_global = 0;
  bool globally_sorted = true;
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::uint64_t> last_sample;
  std::map<std::uint16_t, std::pair<std::uint64_t, std::uint64_t>> last_sync;

  // Nesting / conservation state (mirror of the parser's Table 1
  // semantics: per (thread, addr) open depth with outermost-activation
  // intervals).
  struct OpenState {
    std::uint64_t depth = 0;
    std::uint64_t first_enter = 0;
  };
  struct ThreadAgg {
    std::uint64_t first_tsc = 0;
    std::uint64_t last_tsc = 0;
    bool seen = false;
    std::uint64_t unmatched_exits = 0;
  };
  std::map<std::pair<std::uint32_t, std::uint64_t>, OpenState> open;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> inclusive;
  std::map<std::uint32_t, ThreadAgg> per_thread;

  // Cadence state: per-(node, sensor) inter-sample gaps. O(samples)
  // u64s — the one per-record cost the streamed lint keeps, and samples
  // are ~1% of events in practice.
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::vector<std::uint64_t>> gaps;
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::uint64_t> last_gap_tsc;

  // Trace<->binary cross-check state (set_coverage_inventory). Sorted
  // by addr for binary search; event counts are per unique runtime
  // address, so memory stays O(functions), not O(events).
  bool coverage_enabled = false;
  std::uint64_t load_bias = 0;
  std::vector<CoverageFunction> coverage_fns;  ///< sorted by addr
  std::map<std::uint64_t, std::uint64_t> addr_events;  ///< runtime addr -> count

  /// Index of the coverage function covering a link-time address; -1
  /// when none.
  int find_coverage_fn(std::uint64_t link_addr) const {
    const auto it = std::upper_bound(
        coverage_fns.begin(), coverage_fns.end(), link_addr,
        [](std::uint64_t a, const CoverageFunction& f) { return a < f.addr; });
    if (it == coverage_fns.begin()) return -1;
    const auto prev = std::prev(it);
    if (link_addr >= prev->addr && link_addr < prev->addr + prev->size) {
      return static_cast<int>(prev - coverage_fns.begin());
    }
    return -1;
  }
};

LintEngine::LintEngine(const trace::TraceHeader& header, const LintOptions& options)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.options = options;
  im.tsc_ticks_per_second = header.tsc_ticks_per_second;
  im.load_bias = header.load_bias;
  im.n_threads = header.threads.size();
  im.n_nodes = header.nodes.size();
  im.n_sensors = header.sensors.size();

  // Metadata checks that need no record data run up front; the
  // has-data-dependent pair (tsc-rate, empty-trace) waits for finish().
  Impl::Collector out(&im, &im.metadata);
  for (const auto& n : header.nodes) {
    if (!im.node_ids.insert(n.node_id).second) {
      out.add("duplicate-node", Severity::kError,
              "node id " + std::to_string(n.node_id) + " declared twice");
    }
  }
  for (const auto& t : header.threads) {
    if (!im.thread_ids.insert(t.thread_id).second) {
      out.add("duplicate-thread", Severity::kError,
              "thread id " + std::to_string(t.thread_id) + " declared twice");
    }
    if (im.node_ids.count(t.node_id) == 0) {
      out.add("node-unresolved", Severity::kError,
              fmt_thread(t.thread_id) + " bound to unknown node " +
                  std::to_string(t.node_id));
    }
  }
  for (const auto& s : header.sensors) {
    if (!im.sensor_ids.insert({s.node_id, s.sensor_id}).second) {
      out.add("duplicate-sensor", Severity::kError,
              "sensor " + std::to_string(s.sensor_id) + " on node " +
                  std::to_string(s.node_id) + " declared twice");
    }
    if (im.node_ids.count(s.node_id) == 0) {
      out.add("node-unresolved", Severity::kError,
              "sensor '" + s.name + "' attached to unknown node " +
                  std::to_string(s.node_id));
    }
  }
  for (const auto& s : header.synthetic_symbols) im.synthetic.insert(s.addr);
}

LintEngine::~LintEngine() = default;
LintEngine::LintEngine(LintEngine&&) noexcept = default;
LintEngine& LintEngine::operator=(LintEngine&&) noexcept = default;

void LintEngine::add_fn_events(const trace::FnEvent* events, std::size_t n) {
  Impl& im = *impl_;
  im.n_events += n;
  Impl::Collector refs(&im, &im.references);
  Impl::Collector mono(&im, &im.mono_events);
  for (std::size_t i = 0; i < n; ++i) {
    const trace::FnEvent& e = events[i];

    // References.
    if (im.node_ids.count(e.node_id) == 0) {
      refs.add("node-unresolved", Severity::kError,
               "fn event references unknown node " + std::to_string(e.node_id));
    }
    if (im.thread_ids.count(e.thread_id) == 0) {
      refs.add("thread-unresolved", Severity::kError,
               "fn event references undeclared " + fmt_thread(e.thread_id));
    }
    if (e.addr >= trace::kSyntheticAddrBase && im.synthetic.count(e.addr) == 0) {
      std::ostringstream os;
      os << "synthetic address 0x" << std::hex << e.addr
         << " has no name in the synthetic symbol table";
      refs.add("synthetic-unresolved", Severity::kError, os.str());
    }
    if (im.coverage_enabled && e.addr < trace::kSyntheticAddrBase) {
      ++im.addr_events[e.addr];
    }

    // Per-thread monotonicity; each thread stamps from one clock
    // domain, so its stream must be non-decreasing.
    auto [it, inserted] = im.last_event.try_emplace(e.thread_id, e.tsc);
    if (!inserted) {
      if (e.tsc < it->second) {
        mono.add("monotonic-timestamps", Severity::kError,
                 fmt_thread(e.thread_id) + " timestamp goes backwards (" +
                     std::to_string(e.tsc) + " after " + std::to_string(it->second) +
                     ")");
      }
      it->second = std::max(it->second, e.tsc);
    }
    if (e.tsc < im.last_global) im.globally_sorted = false;
    im.last_global = std::max(im.last_global, e.tsc);

    // Nesting / conservation.
    Impl::ThreadAgg& agg = im.per_thread[e.thread_id];
    if (!agg.seen) {
      agg.first_tsc = e.tsc;
      agg.seen = true;
    }
    agg.last_tsc = std::max(agg.last_tsc, e.tsc);

    const auto key = std::make_pair(e.thread_id, e.addr);
    if (e.kind == trace::FnEventKind::kEnter) {
      Impl::OpenState& st = im.open[key];
      if (st.depth == 0) st.first_enter = e.tsc;
      ++st.depth;
    } else {
      auto oit = im.open.find(key);
      if (oit == im.open.end() || oit->second.depth == 0) {
        ++agg.unmatched_exits;  // frame already open when profiling began
        continue;
      }
      if (--oit->second.depth == 0 && e.tsc > oit->second.first_enter) {
        im.inclusive[key] += e.tsc - oit->second.first_enter;
      }
    }
  }
}

void LintEngine::add_temp_samples(const trace::TempSample* samples, std::size_t n) {
  Impl& im = *impl_;
  im.n_samples += n;
  Impl::Collector refs(&im, &im.references);
  Impl::Collector mono(&im, &im.mono_samples);
  for (std::size_t i = 0; i < n; ++i) {
    const trace::TempSample& s = samples[i];
    if (im.node_ids.count(s.node_id) == 0) {
      refs.add("node-unresolved", Severity::kError,
               "temp sample references unknown node " + std::to_string(s.node_id));
    } else if (im.sensor_ids.count({s.node_id, s.sensor_id}) == 0) {
      refs.add("sensor-unresolved", Severity::kError,
               "temp sample references unknown sensor " +
                   std::to_string(s.sensor_id) + " on node " +
                   std::to_string(s.node_id));
    }

    const auto key = std::make_pair(s.node_id, s.sensor_id);
    auto [it, inserted] = im.last_sample.try_emplace(key, s.tsc);
    if (!inserted) {
      if (s.tsc < it->second) {
        mono.add("monotonic-timestamps", Severity::kError,
                 "sensor " + std::to_string(s.sensor_id) + " on node " +
                     std::to_string(s.node_id) + " sample timestamp goes backwards");
      }
      it->second = std::max(it->second, s.tsc);
    }

    // Cadence gaps (tempd reads every sensor once per tick, so
    // per-(node,sensor) gaps measure the tick period directly).
    const auto lit = im.last_gap_tsc.find(key);
    if (lit != im.last_gap_tsc.end() && s.tsc >= lit->second) {
      im.gaps[key].push_back(s.tsc - lit->second);
    }
    im.last_gap_tsc[key] = s.tsc;
  }
}

void LintEngine::add_clock_syncs(const trace::ClockSync* syncs, std::size_t n) {
  Impl& im = *impl_;
  Impl::Collector refs(&im, &im.references);
  Impl::Collector mono(&im, &im.mono_syncs);
  for (std::size_t i = 0; i < n; ++i) {
    const trace::ClockSync& c = syncs[i];
    if (im.node_ids.count(c.node_id) == 0) {
      refs.add("node-unresolved", Severity::kError,
               "clock sync references unknown node " + std::to_string(c.node_id));
    }

    // Both domains must advance together.
    auto [it, inserted] =
        im.last_sync.try_emplace(c.node_id, std::make_pair(c.node_tsc, c.global_tsc));
    if (!inserted) {
      if (c.node_tsc < it->second.first || c.global_tsc < it->second.second) {
        mono.add("monotonic-timestamps", Severity::kError,
                 "clock sync for node " + std::to_string(c.node_id) +
                     " goes backwards in node or global domain");
      }
      it->second = {std::max(it->second.first, c.node_tsc),
                    std::max(it->second.second, c.global_tsc)};
    }
  }
}

void LintEngine::set_run_stats(const trace::RunStats& stats) {
  impl_->run_stats = stats;
}

void LintEngine::set_filter_decl(const trace::FilterDecl& filter) {
  Impl& im = *impl_;
  im.filter = filter;
  im.filtered_names.clear();
  if (filter.present) {
    im.filtered_names.insert(filter.suppressed.begin(),
                             filter.suppressed.end());
  }
}

void LintEngine::set_coverage_inventory(CoverageInventory inventory) {
  Impl& im = *impl_;
  im.coverage_enabled = true;
  im.coverage_fns = std::move(inventory.functions);
  std::sort(im.coverage_fns.begin(), im.coverage_fns.end(),
            [](const CoverageFunction& a, const CoverageFunction& b) {
              return a.addr < b.addr;
            });
}

void LintEngine::note_trailing_bytes(std::uint64_t bytes) {
  Impl& im = *impl_;
  std::ostringstream msg;
  msg << bytes << " trailing byte(s) after the trace";
  im.trailing.push_back({"file-trailing-bytes", Severity::kError, msg.str()});
  ++im.error_count;
}

LintReport LintEngine::finish() {
  Impl& im = *impl_;

  // Deferred metadata checks: only now do we know whether any record
  // arrived at all.
  {
    Impl::Collector out(&im, &im.metadata_deferred);
    const bool has_data = im.n_events > 0 || im.n_samples > 0;
    if (has_data && !(im.tsc_ticks_per_second > 0.0)) {
      out.add("tsc-rate", Severity::kError,
              "trace carries events/samples but no positive tsc_ticks_per_second");
    }
    if (!has_data) {
      out.add("empty-trace", Severity::kWarning,
              "trace contains no function events and no temperature samples");
    }
  }

  if (!im.globally_sorted) {
    Impl::Collector mono(&im, &im.mono_global);
    mono.add("global-sort", Severity::kWarning,
             "fn events are not globally time-sorted (the parser expects "
             "Trace::sort_by_time order)");
  }

  // Nesting epilogue: activations still open force-close at their
  // thread's own end for the conservation check.
  {
    Impl::Collector out(&im, &im.nesting);
    std::map<std::uint32_t, std::uint64_t> unclosed;
    for (const auto& [key, st] : im.open) {
      if (st.depth == 0) continue;
      unclosed[key.first] += st.depth;
      const auto tit = im.per_thread.find(key.first);
      if (tit != im.per_thread.end() && tit->second.last_tsc > st.first_enter) {
        im.inclusive[key] += tit->second.last_tsc - st.first_enter;
      }
    }
    for (const auto& [tid, agg] : im.per_thread) {
      if (agg.unmatched_exits > 0) {
        out.add("balanced-nesting", Severity::kWarning,
                fmt_thread(tid) + " has " + std::to_string(agg.unmatched_exits) +
                    " exit(s) without a recorded entry (frames open at session "
                    "start)");
      }
    }
    for (const auto& [tid, count] : unclosed) {
      out.add("balanced-nesting", Severity::kWarning,
              fmt_thread(tid) + " ends with " + std::to_string(count) +
                  " activation(s) still open (frames open at session stop)");
    }
    for (const auto& [key, ticks] : im.inclusive) {
      const Impl::ThreadAgg& agg = im.per_thread[key.first];
      const std::uint64_t span = agg.last_tsc - agg.first_tsc;
      if (ticks > span) {
        std::ostringstream os;
        os << fmt_thread(key.first) << " spends " << ticks
           << " inclusive ticks in addr 0x" << std::hex << key.second << std::dec
           << " but only spans " << span << " ticks";
        out.add("time-conservation", Severity::kError, os.str());
      }
    }
  }

  // Cadence epilogue.
  if (im.tsc_ticks_per_second > 0.0) {
    Impl::Collector out(&im, &im.cadence);
    for (auto& [key, g] : im.gaps) {
      if (g.size() < im.options.min_cadence_gaps) continue;
      std::sort(g.begin(), g.end());
      const std::uint64_t median = g[g.size() / 2];
      if (median == 0) continue;
      const double median_s = static_cast<double>(median) / im.tsc_ticks_per_second;
      if (im.options.expected_hz > 0.0) {
        const double expected_s = 1.0 / im.options.expected_hz;
        if (median_s > expected_s * im.options.cadence_tolerance ||
            median_s < expected_s / im.options.cadence_tolerance) {
          std::ostringstream os;
          os << "sensor " << key.second << " on node " << key.first
             << " samples every " << median_s << " s (expected ~" << expected_s
             << " s at " << im.options.expected_hz << " Hz)";
          out.add("sample-cadence", Severity::kWarning, os.str());
        }
      }
      // Regularity regardless of the configured rate: a healthy tempd tick
      // loop produces gaps clustered around the median.
      std::size_t outliers = 0;
      for (const std::uint64_t gap : g) {
        if (gap > median * 4 || gap * 4 < median) ++outliers;
      }
      if (outliers * 10 > g.size() * 3) {  // > 30 %
        std::ostringstream os;
        os << "sensor " << key.second << " on node " << key.first << ": " << outliers
           << "/" << g.size() << " inter-sample gaps deviate >4x from the median "
           << "(irregular tempd cadence)";
        out.add("sample-cadence", Severity::kWarning, os.str());
      }
    }
  }

  // Trace<->binary cross-check: every probe-generated event must land
  // inside a function the static audit classified as instrumented
  // (errors — the trace claims probes the binary cannot have fired),
  // and every instrumented function should have fired at least once
  // (warnings — never called, or its events were dropped).
  if (im.coverage_enabled) {
    Impl::Collector out(&im, &im.coverage);
    std::set<std::size_t> fns_seen;
    for (const auto& [runtime_addr, count] : im.addr_events) {
      const int fn = runtime_addr >= im.load_bias
                         ? im.find_coverage_fn(runtime_addr - im.load_bias)
                         : -1;
      if (fn < 0) {
        std::ostringstream os;
        os << "trace holds " << count << " event(s) at 0x" << std::hex
           << runtime_addr << std::dec
           << " but the binary has no function there (stale binary, wrong "
              "--symtab executable, or stripped symbol)";
        out.add("instrumentation-coverage", Severity::kError, os.str());
        continue;
      }
      const CoverageFunction& f = im.coverage_fns[static_cast<std::size_t>(fn)];
      fns_seen.insert(static_cast<std::size_t>(fn));
      if (!f.instrumented) {
        out.add("instrumentation-coverage", Severity::kError,
                "function '" + f.name + "' emits " + std::to_string(count) +
                    " trace event(s) but carries no instrumentation hooks in "
                    "the binary");
      }
    }
    for (std::size_t i = 0; i < im.coverage_fns.size(); ++i) {
      const CoverageFunction& f = im.coverage_fns[i];
      if (f.instrumented && fns_seen.count(i) == 0 &&
          im.filtered_names.count(f.name) == 0) {
        // Functions the trace's declared filter suppresses are exempt:
        // their silence is the admission pipeline working as configured.
        out.add("instrumentation-unused", Severity::kWarning,
                "function '" + f.name +
                    "' is instrumented but recorded zero events (never "
                    "called, or its events were dropped)");
      }
    }
  }

  // RUNSTATS cross-checks: the recorder's own accounting vs what the
  // trace holds. These are the "overhead of the overhead" trust anchors
  // — if the runtime says it recorded N events and the trace has M != N,
  // either the buffers lost data silently (beyond the declared drops) or
  // the trailer is stale/corrupt.
  if (im.run_stats.present) {
    Impl::Collector out(&im, &im.runstats);
    const trace::RunStats& rs = im.run_stats;
    if (rs.events_recorded != im.n_events) {
      out.add("runstats-consistency", Severity::kError,
              "runstats claim " + std::to_string(rs.events_recorded) +
                  " recorded fn events but the trace holds " +
                  std::to_string(im.n_events));
    }
    if (rs.tempd_samples != im.n_samples) {
      out.add("runstats-consistency", Severity::kError,
              "runstats claim " + std::to_string(rs.tempd_samples) +
                  " tempd samples but the trace holds " +
                  std::to_string(im.n_samples));
    }
    if (im.n_sensors > 0 &&
        rs.tempd_samples > rs.tempd_ticks * im.n_sensors) {
      out.add("runstats-consistency", Severity::kError,
              "runstats claim " + std::to_string(rs.tempd_samples) +
                  " samples from only " + std::to_string(rs.tempd_ticks) +
                  " ticks over " + std::to_string(im.n_sensors) +
                  " sensor(s) (more samples than reads)");
    }
    if (rs.events_dropped > 0) {
      out.add("events-dropped", Severity::kWarning,
              "recorder dropped " + std::to_string(rs.events_dropped) +
                  " fn event(s) at the thread-buffer cap; hot spots may be "
                  "under-counted (raise TEMPEST_MAX_EVENTS)");
    }
    // Admission conservation: every hook call must be accounted for
    // exactly once. calls_observed == 0 means a pre-admission recorder
    // (or an empty run) — nothing to check.
    if (rs.calls_observed > 0) {
      const std::uint64_t accounted = rs.events_recorded +
                                      rs.events_suppressed +
                                      rs.events_throttled + rs.events_dropped +
                                      rs.events_overwritten;
      if (rs.calls_observed != accounted) {
        out.add("admission-conservation", Severity::kError,
                "runstats observe " + std::to_string(rs.calls_observed) +
                    " hook calls but account for " +
                    std::to_string(accounted) +
                    " (recorded + suppressed + throttled + dropped + "
                    "overwritten) — the admission pipeline lost or invented "
                    "events");
      }
    }
    if (rs.events_suppressed > 0 && !im.filter.present) {
      out.add("filter-undeclared", Severity::kWarning,
              "recorder suppressed " + std::to_string(rs.events_suppressed) +
                  " event(s) but the trace declares no filter (FLTR trailer "
                  "missing) — downstream tools cannot tell suppression from "
                  "loss");
    }
    if (rs.events_overwritten > 0) {
      out.add("events-overwritten", Severity::kWarning,
              "flight-recorder ring recycled " +
                  std::to_string(rs.events_overwritten) +
                  " event(s); the trace holds only the newest window "
                  "(expected in TEMPEST_RING_* mode)");
    }
  }

  LintReport report;
  report.fn_events = im.n_events;
  report.temp_samples = im.n_samples;
  report.threads = im.n_threads;
  report.nodes = im.n_nodes;
  report.sensors = im.n_sensors;
  report.error_count = im.error_count;
  report.warning_count = im.warning_count;
  for (auto* bucket :
       {&im.metadata_deferred, &im.metadata, &im.references, &im.mono_events,
        &im.mono_global, &im.mono_samples, &im.mono_syncs, &im.nesting,
        &im.cadence, &im.coverage, &im.runstats, &im.trailing}) {
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(bucket->begin()),
                           std::make_move_iterator(bucket->end()));
  }
  return report;
}

LintReport lint_trace(const trace::Trace& trace, const LintOptions& options,
                      const CoverageInventory* coverage) {
  LintEngine engine(trace, options);
  if (coverage != nullptr) engine.set_coverage_inventory(*coverage);
  engine.add_fn_events(trace.fn_events.data(), trace.fn_events.size());
  engine.add_temp_samples(trace.temp_samples.data(), trace.temp_samples.size());
  engine.add_clock_syncs(trace.clock_syncs.data(), trace.clock_syncs.size());
  engine.set_run_stats(trace.run_stats);
  engine.set_filter_decl(trace.filter);
  return engine.finish();
}

Result<LintReport> lint_trace_file(const std::string& path,
                                   const LintOptions& options,
                                   const CoverageInventory* coverage) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Result<LintReport>::error(path + ": cannot open trace file: " + path);
  }
  auto opened = trace::TraceStreamReader::open(in);
  if (!opened.is_ok()) {
    return Result<LintReport>::error(path + ": " + opened.message());
  }
  trace::TraceStreamReader reader = std::move(opened).value();
  LintEngine engine(reader.header(), options);
  if (coverage != nullptr) engine.set_coverage_inventory(*coverage);

  // Stream the bulk sections through in bounded batches; lint wants the
  // raw file order (no alignment, no sorting — sortedness is itself one
  // of the checks).
  constexpr std::size_t kBatch = std::size_t{1} << 16;
  std::vector<trace::FnEvent> events;
  std::vector<trace::TempSample> samples;
  std::vector<trace::ClockSync> syncs;
  std::size_t appended = 0;
  while (!reader.done()) {
    events.clear();
    samples.clear();
    syncs.clear();
    Status s = reader.next_fn_events(&events, kBatch, &appended);
    if (s) {
      engine.add_fn_events(events.data(), events.size());
      s = reader.next_temp_samples(&samples, kBatch, &appended);
    }
    if (s) {
      engine.add_temp_samples(samples.data(), samples.size());
      s = reader.next_clock_syncs(&syncs, kBatch, &appended);
    }
    if (s) engine.add_clock_syncs(syncs.data(), syncs.size());
    if (!s) return Result<LintReport>::error(path + ": " + s.message());
  }
  // The RUNSTATS and FLTR trailers materialise in the reader's header
  // once the last bulk section drains.
  engine.set_run_stats(reader.header().run_stats);
  engine.set_filter_decl(reader.header().filter);

  // The reader stops after the last section; a well-formed file ends
  // there. Trailing bytes mean concatenation or partial overwrite —
  // something no healthy pipeline writes, so the file fails the lint
  // even though the leading trace parsed.
  if (in.peek() != std::char_traits<char>::eof()) {
    const auto consumed = in.tellg();
    in.seekg(0, std::ios::end);
    const auto total = in.tellg();
    engine.note_trailing_bytes(static_cast<std::uint64_t>(total - consumed));
  }
  return engine.finish();
}

std::string to_json(const LintReport& report) {
  std::ostringstream os;
  os << "{\"clean\":" << (report.clean() ? "true" : "false")
     << ",\"errors\":" << report.error_count
     << ",\"warnings\":" << report.warning_count << ",\"inventory\":{"
     << "\"fn_events\":" << report.fn_events
     << ",\"temp_samples\":" << report.temp_samples
     << ",\"threads\":" << report.threads << ",\"nodes\":" << report.nodes
     << ",\"sensors\":" << report.sensors << "},\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i > 0) os << ",";
    os << "{\"check\":\"";
    json_escape(os, f.check);
    os << "\",\"severity\":\""
       << (f.severity == Severity::kError ? "error" : "warning")
       << "\",\"message\":\"";
    json_escape(os, f.message);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

void write_human(std::ostream& out, const LintReport& report) {
  for (const Finding& f : report.findings) {
    out << (f.severity == Severity::kError ? "error" : "warning") << " ["
        << f.check << "] " << f.message << "\n";
  }
  out << (report.clean() ? "clean" : "NOT clean") << ": " << report.error_count
      << " error(s), " << report.warning_count << " warning(s) over "
      << report.fn_events << " events, " << report.temp_samples << " samples, "
      << report.threads << " threads, " << report.nodes << " node(s), "
      << report.sensors << " sensor(s)\n";
}

}  // namespace tempest::analysis
