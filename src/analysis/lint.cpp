#include "analysis/lint.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "trace/reader.hpp"

namespace tempest::analysis {
namespace {

/// Collects findings with an exact count but a capped message list.
class Collector {
 public:
  Collector(LintReport* report, const LintOptions& options)
      : report_(report), options_(options) {}

  void add(const std::string& check, Severity severity, std::string message) {
    const std::size_t n = ++per_check_[check];
    if (severity == Severity::kError) {
      ++report_->error_count;
    } else {
      ++report_->warning_count;
    }
    if (n <= options_.max_findings_per_check) {
      report_->findings.push_back({check, severity, std::move(message)});
    } else if (n == options_.max_findings_per_check + 1) {
      report_->findings.push_back(
          {check, severity, "(further " + check + " findings suppressed)"});
    }
  }

 private:
  LintReport* report_;
  const LintOptions& options_;
  std::map<std::string, std::size_t> per_check_;
};

std::string fmt_thread(std::uint32_t tid) { return "thread " + std::to_string(tid); }

void check_metadata(const trace::Trace& trace, Collector* out) {
  const bool has_data = !trace.fn_events.empty() || !trace.temp_samples.empty();
  if (has_data && !(trace.tsc_ticks_per_second > 0.0)) {
    out->add("tsc-rate", Severity::kError,
             "trace carries events/samples but no positive tsc_ticks_per_second");
  }
  if (!has_data) {
    out->add("empty-trace", Severity::kWarning,
             "trace contains no function events and no temperature samples");
  }
  std::set<std::uint16_t> node_ids;
  for (const auto& n : trace.nodes) {
    if (!node_ids.insert(n.node_id).second) {
      out->add("duplicate-node", Severity::kError,
               "node id " + std::to_string(n.node_id) + " declared twice");
    }
  }
  std::set<std::uint32_t> thread_ids;
  for (const auto& t : trace.threads) {
    if (!thread_ids.insert(t.thread_id).second) {
      out->add("duplicate-thread", Severity::kError,
               "thread id " + std::to_string(t.thread_id) + " declared twice");
    }
    if (node_ids.count(t.node_id) == 0) {
      out->add("node-unresolved", Severity::kError,
               fmt_thread(t.thread_id) + " bound to unknown node " +
                   std::to_string(t.node_id));
    }
  }
  std::set<std::pair<std::uint16_t, std::uint16_t>> sensor_ids;
  for (const auto& s : trace.sensors) {
    if (!sensor_ids.insert({s.node_id, s.sensor_id}).second) {
      out->add("duplicate-sensor", Severity::kError,
               "sensor " + std::to_string(s.sensor_id) + " on node " +
                   std::to_string(s.node_id) + " declared twice");
    }
    if (node_ids.count(s.node_id) == 0) {
      out->add("node-unresolved", Severity::kError,
               "sensor '" + s.name + "' attached to unknown node " +
                   std::to_string(s.node_id));
    }
  }
}

void check_references(const trace::Trace& trace, Collector* out) {
  std::set<std::uint16_t> node_ids;
  for (const auto& n : trace.nodes) node_ids.insert(n.node_id);
  std::set<std::uint32_t> thread_ids;
  for (const auto& t : trace.threads) thread_ids.insert(t.thread_id);
  std::set<std::pair<std::uint16_t, std::uint16_t>> sensor_ids;
  for (const auto& s : trace.sensors) sensor_ids.insert({s.node_id, s.sensor_id});
  std::set<std::uint64_t> synthetic;
  for (const auto& s : trace.synthetic_symbols) synthetic.insert(s.addr);

  for (const auto& e : trace.fn_events) {
    if (node_ids.count(e.node_id) == 0) {
      out->add("node-unresolved", Severity::kError,
               "fn event references unknown node " + std::to_string(e.node_id));
    }
    if (thread_ids.count(e.thread_id) == 0) {
      out->add("thread-unresolved", Severity::kError,
               "fn event references undeclared " + fmt_thread(e.thread_id));
    }
    if (e.addr >= trace::kSyntheticAddrBase && synthetic.count(e.addr) == 0) {
      std::ostringstream os;
      os << "synthetic address 0x" << std::hex << e.addr
         << " has no name in the synthetic symbol table";
      out->add("synthetic-unresolved", Severity::kError, os.str());
    }
  }
  for (const auto& s : trace.temp_samples) {
    if (node_ids.count(s.node_id) == 0) {
      out->add("node-unresolved", Severity::kError,
               "temp sample references unknown node " + std::to_string(s.node_id));
    } else if (sensor_ids.count({s.node_id, s.sensor_id}) == 0) {
      out->add("sensor-unresolved", Severity::kError,
               "temp sample references unknown sensor " +
                   std::to_string(s.sensor_id) + " on node " +
                   std::to_string(s.node_id));
    }
  }
  for (const auto& c : trace.clock_syncs) {
    if (node_ids.count(c.node_id) == 0) {
      out->add("node-unresolved", Severity::kError,
               "clock sync references unknown node " + std::to_string(c.node_id));
    }
  }
}

void check_monotonic(const trace::Trace& trace, Collector* out) {
  // Per-thread event timestamps: each thread stamps from one clock
  // domain, so its stream must be non-decreasing.
  std::map<std::uint32_t, std::uint64_t> last_event;
  std::uint64_t last_global = 0;
  bool globally_sorted = true;
  for (const auto& e : trace.fn_events) {
    auto [it, inserted] = last_event.try_emplace(e.thread_id, e.tsc);
    if (!inserted) {
      if (e.tsc < it->second) {
        out->add("monotonic-timestamps", Severity::kError,
                 fmt_thread(e.thread_id) + " timestamp goes backwards (" +
                     std::to_string(e.tsc) + " after " + std::to_string(it->second) +
                     ")");
      }
      it->second = std::max(it->second, e.tsc);
    }
    if (e.tsc < last_global) globally_sorted = false;
    last_global = std::max(last_global, e.tsc);
  }
  if (!globally_sorted) {
    out->add("global-sort", Severity::kWarning,
             "fn events are not globally time-sorted (the parser expects "
             "Trace::sort_by_time order)");
  }
  // Per-sensor sample streams likewise.
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::uint64_t> last_sample;
  for (const auto& s : trace.temp_samples) {
    auto [it, inserted] = last_sample.try_emplace({s.node_id, s.sensor_id}, s.tsc);
    if (!inserted) {
      if (s.tsc < it->second) {
        out->add("monotonic-timestamps", Severity::kError,
                 "sensor " + std::to_string(s.sensor_id) + " on node " +
                     std::to_string(s.node_id) + " sample timestamp goes backwards");
      }
      it->second = std::max(it->second, s.tsc);
    }
  }
  // Clock-sync observations: both domains must advance together.
  std::map<std::uint16_t, std::pair<std::uint64_t, std::uint64_t>> last_sync;
  for (const auto& c : trace.clock_syncs) {
    auto [it, inserted] =
        last_sync.try_emplace(c.node_id, std::make_pair(c.node_tsc, c.global_tsc));
    if (!inserted) {
      if (c.node_tsc < it->second.first || c.global_tsc < it->second.second) {
        out->add("monotonic-timestamps", Severity::kError,
                 "clock sync for node " + std::to_string(c.node_id) +
                     " goes backwards in node or global domain");
      }
      it->second = {std::max(it->second.first, c.node_tsc),
                    std::max(it->second.second, c.global_tsc)};
    }
  }
}

void check_nesting_and_conservation(const trace::Trace& trace, Collector* out) {
  // Mirror of the parser's Table 1 semantics: per (thread, addr) open
  // depth with outermost-activation intervals. Region interleaving is
  // legal; what a healthy pipeline can never emit is inclusive time
  // exceeding its thread's span.
  struct OpenState {
    std::uint64_t depth = 0;
    std::uint64_t first_enter = 0;
  };
  struct ThreadAgg {
    std::uint64_t first_tsc = 0;
    std::uint64_t last_tsc = 0;
    bool seen = false;
    std::uint64_t unmatched_exits = 0;
  };
  std::map<std::pair<std::uint32_t, std::uint64_t>, OpenState> open;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> inclusive;
  std::map<std::uint32_t, ThreadAgg> per_thread;

  for (const auto& e : trace.fn_events) {
    ThreadAgg& agg = per_thread[e.thread_id];
    if (!agg.seen) {
      agg.first_tsc = e.tsc;
      agg.seen = true;
    }
    agg.last_tsc = std::max(agg.last_tsc, e.tsc);

    const auto key = std::make_pair(e.thread_id, e.addr);
    if (e.kind == trace::FnEventKind::kEnter) {
      OpenState& st = open[key];
      if (st.depth == 0) st.first_enter = e.tsc;
      ++st.depth;
    } else {
      auto it = open.find(key);
      if (it == open.end() || it->second.depth == 0) {
        ++agg.unmatched_exits;  // frame already open when profiling began
        continue;
      }
      if (--it->second.depth == 0 && e.tsc > it->second.first_enter) {
        inclusive[key] += e.tsc - it->second.first_enter;
      }
    }
  }

  std::map<std::uint32_t, std::uint64_t> unclosed;
  for (const auto& [key, st] : open) {
    if (st.depth == 0) continue;
    unclosed[key.first] += st.depth;
    // Force-close at the thread's own end for the conservation check.
    const auto tit = per_thread.find(key.first);
    if (tit != per_thread.end() && tit->second.last_tsc > st.first_enter) {
      inclusive[key] += tit->second.last_tsc - st.first_enter;
    }
  }

  for (const auto& [tid, agg] : per_thread) {
    if (agg.unmatched_exits > 0) {
      out->add("balanced-nesting", Severity::kWarning,
               fmt_thread(tid) + " has " + std::to_string(agg.unmatched_exits) +
                   " exit(s) without a recorded entry (frames open at session "
                   "start)");
    }
  }
  for (const auto& [tid, count] : unclosed) {
    out->add("balanced-nesting", Severity::kWarning,
             fmt_thread(tid) + " ends with " + std::to_string(count) +
                 " activation(s) still open (frames open at session stop)");
  }
  for (const auto& [key, ticks] : inclusive) {
    const ThreadAgg& agg = per_thread[key.first];
    const std::uint64_t span = agg.last_tsc - agg.first_tsc;
    if (ticks > span) {
      std::ostringstream os;
      os << fmt_thread(key.first) << " spends " << ticks
         << " inclusive ticks in addr 0x" << std::hex << key.second << std::dec
         << " but only spans " << span << " ticks";
      out->add("time-conservation", Severity::kError, os.str());
    }
  }
}

void check_cadence(const trace::Trace& trace, const LintOptions& options,
                   Collector* out) {
  if (!(trace.tsc_ticks_per_second > 0.0)) return;
  // tempd reads every sensor once per tick, so per-(node,sensor) gaps
  // measure the tick period directly.
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::vector<std::uint64_t>> gaps;
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::uint64_t> last;
  for (const auto& s : trace.temp_samples) {
    const auto key = std::make_pair(s.node_id, s.sensor_id);
    const auto it = last.find(key);
    if (it != last.end() && s.tsc >= it->second) {
      gaps[key].push_back(s.tsc - it->second);
    }
    last[key] = s.tsc;
  }
  for (auto& [key, g] : gaps) {
    if (g.size() < options.min_cadence_gaps) continue;
    std::sort(g.begin(), g.end());
    const std::uint64_t median = g[g.size() / 2];
    if (median == 0) continue;
    const double median_s =
        static_cast<double>(median) / trace.tsc_ticks_per_second;
    if (options.expected_hz > 0.0) {
      const double expected_s = 1.0 / options.expected_hz;
      if (median_s > expected_s * options.cadence_tolerance ||
          median_s < expected_s / options.cadence_tolerance) {
        std::ostringstream os;
        os << "sensor " << key.second << " on node " << key.first
           << " samples every " << median_s << " s (expected ~" << expected_s
           << " s at " << options.expected_hz << " Hz)";
        out->add("sample-cadence", Severity::kWarning, os.str());
      }
    }
    // Regularity regardless of the configured rate: a healthy tempd tick
    // loop produces gaps clustered around the median.
    std::size_t outliers = 0;
    for (const std::uint64_t gap : g) {
      if (gap > median * 4 || gap * 4 < median) ++outliers;
    }
    if (outliers * 10 > g.size() * 3) {  // > 30 %
      std::ostringstream os;
      os << "sensor " << key.second << " on node " << key.first << ": " << outliers
         << "/" << g.size() << " inter-sample gaps deviate >4x from the median "
         << "(irregular tempd cadence)";
      out->add("sample-cadence", Severity::kWarning, os.str());
    }
  }
}

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
             << "0123456789abcdef"[c & 0xF];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

LintReport lint_trace(const trace::Trace& trace, const LintOptions& options) {
  LintReport report;
  report.fn_events = trace.fn_events.size();
  report.temp_samples = trace.temp_samples.size();
  report.threads = trace.threads.size();
  report.nodes = trace.nodes.size();
  report.sensors = trace.sensors.size();

  Collector out(&report, options);
  check_metadata(trace, &out);
  check_references(trace, &out);
  check_monotonic(trace, &out);
  check_nesting_and_conservation(trace, &out);
  check_cadence(trace, options, &out);
  return report;
}

Result<LintReport> lint_trace_file(const std::string& path,
                                   const LintOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Result<LintReport>::error(path + ": cannot open trace file: " + path);
  }
  auto trace = trace::read_trace(in);
  if (!trace.is_ok()) {
    return Result<LintReport>::error(path + ": " + trace.message());
  }
  LintReport report = lint_trace(trace.value(), options);
  // The reader stops after the last section; a well-formed file ends
  // there. Trailing bytes mean concatenation or partial overwrite —
  // something no healthy pipeline writes, so the file fails the lint
  // even though the leading trace parsed.
  if (in.peek() != std::char_traits<char>::eof()) {
    const auto consumed = in.tellg();
    in.seekg(0, std::ios::end);
    const auto total = in.tellg();
    std::ostringstream msg;
    msg << (total - consumed) << " trailing byte(s) after the trace";
    report.findings.push_back(
        {"file-trailing-bytes", Severity::kError, msg.str()});
    ++report.error_count;
  }
  return report;
}

std::string to_json(const LintReport& report) {
  std::ostringstream os;
  os << "{\"clean\":" << (report.clean() ? "true" : "false")
     << ",\"errors\":" << report.error_count
     << ",\"warnings\":" << report.warning_count << ",\"inventory\":{"
     << "\"fn_events\":" << report.fn_events
     << ",\"temp_samples\":" << report.temp_samples
     << ",\"threads\":" << report.threads << ",\"nodes\":" << report.nodes
     << ",\"sensors\":" << report.sensors << "},\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i > 0) os << ",";
    os << "{\"check\":\"";
    json_escape(os, f.check);
    os << "\",\"severity\":\""
       << (f.severity == Severity::kError ? "error" : "warning")
       << "\",\"message\":\"";
    json_escape(os, f.message);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

void write_human(std::ostream& out, const LintReport& report) {
  for (const Finding& f : report.findings) {
    out << (f.severity == Severity::kError ? "error" : "warning") << " ["
        << f.check << "] " << f.message << "\n";
  }
  out << (report.clean() ? "clean" : "NOT clean") << ": " << report.error_count
      << " error(s), " << report.warning_count << " warning(s) over "
      << report.fn_events << " events, " << report.temp_samples << " samples, "
      << report.threads << " threads, " << report.nodes << " node(s), "
      << report.sensors << " sensor(s)\n";
}

}  // namespace tempest::analysis
