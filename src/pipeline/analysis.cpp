#include "pipeline/analysis.hpp"

#include <algorithm>
#include <utility>

#include "common/fastwrite.hpp"

namespace tempest::pipeline {

AnalysisPipeline::AnalysisPipeline(AnalysisOptions options)
    : options_(std::move(options)), assembler_(options_.profile) {}

void AnalysisPipeline::set_metadata(const TraceMeta& meta) {
  meta_ = meta;
  if (!options_.exe_override.empty()) meta_.executable = options_.exe_override;
  timeline_.emplace(meta_.threads, options_.timeline_hint,
                    std::max(1u, options_.threads));
  assembler_.set_metadata(meta_);
}

void AnalysisPipeline::set_run_stats(const trace::RunStats& stats) {
  meta_.run_stats = stats;
}

void AnalysisPipeline::set_bounds(std::uint64_t start_tsc, std::uint64_t end_tsc) {
  start_tsc_ = start_tsc;
  end_tsc_ = end_tsc;
  bounds_forced_ = true;
}

void AnalysisPipeline::add_fn_events(const trace::FnEvent* events, std::size_t n) {
  if (n == 0) return;
  if (!bounds_forced_) {
    // Batches are time-sorted per kind, so the ends bound the batch.
    if (!any_records_ || events[0].tsc < start_tsc_) start_tsc_ = events[0].tsc;
    if (!any_records_ || events[n - 1].tsc > end_tsc_) end_tsc_ = events[n - 1].tsc;
  }
  any_records_ = true;
  timeline_->add_events(events, n);
}

void AnalysisPipeline::add_temp_samples(const trace::TempSample* samples,
                                        std::size_t n) {
  if (n == 0) return;
  if (!bounds_forced_) {
    if (!any_records_ || samples[0].tsc < start_tsc_) start_tsc_ = samples[0].tsc;
    if (!any_records_ || samples[n - 1].tsc > end_tsc_) end_tsc_ = samples[n - 1].tsc;
  }
  any_records_ = true;
  assembler_.add_samples(samples, n);
}

AnalysisResult AnalysisPipeline::finish(const symtab::Resolver* resolver) {
  if (!timeline_) set_metadata(meta_);  // no metadata seen: empty run

  parser::TimelineDiagnostics diag;
  const parser::TimelineMap timeline = timeline_->finish(end_tsc_, &diag);

  // Symbolise every distinct address exactly as parse_trace does:
  // synthetic names win, then the ELF resolver, then hex.
  std::optional<symtab::Resolver> own_resolver;
  if (resolver == nullptr && !meta_.executable.empty()) {
    auto built =
        symtab::Resolver::for_executable(meta_.executable, meta_.load_bias);
    if (built.is_ok()) {
      own_resolver.emplace(std::move(built).value());
      resolver = &*own_resolver;
    }
  }

  std::vector<std::pair<std::uint64_t, std::string>> names;
  names.reserve(timeline.size() + meta_.synthetic_symbols.size());
  for (const auto& s : meta_.synthetic_symbols) names.emplace_back(s.addr, s.name);
  for (const auto& [key, fi] : timeline) {
    if (fi.addr >= trace::kSyntheticAddrBase) continue;
    if (resolver != nullptr) {
      names.emplace_back(fi.addr, resolver->resolve(fi.addr));
    } else {
      std::string hex = "0x";
      fastwrite::append_hex(hex, fi.addr);
      names.emplace_back(fi.addr, std::move(hex));
    }
  }

  AnalysisResult result;
  result.run_stats = meta_.run_stats;
  result.profile = assembler_.assemble(start_tsc_, end_tsc_, timeline, names, diag);
  if (options_.want_series) {
    result.series =
        report::build_series(meta_, assembler_.samples(), start_tsc_, end_tsc_,
                             options_.profile.unit, options_.span_functions,
                             &timeline);
    result.has_series = true;
  }
  return result;
}

}  // namespace tempest::pipeline
