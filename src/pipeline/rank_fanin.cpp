#include "pipeline/rank_fanin.hpp"

#include <limits>
#include <utility>

namespace tempest::pipeline {

namespace {

/// Rewrite a timestamp through the per-node fit, if one exists (an
/// empty fit map — no syncs anywhere — leaves the single clock domain
/// untouched, matching align_clocks' early return).
std::uint64_t aligned(const std::map<std::uint16_t, trace::ClockFit>& fits,
                      std::uint16_t node_id, std::uint64_t tsc) {
  const auto it = fits.find(node_id);
  return it == fits.end() ? tsc : it->second.to_global(tsc);
}

}  // namespace

Result<RankFanIn> RankFanIn::open(const std::vector<std::string>& paths,
                                  BatchOptions options) {
  if (paths.empty()) {
    return Result<RankFanIn>::error("rank fan-in needs at least one trace file");
  }
  RankFanIn fan;
  fan.options_ = options;
  fan.ranks_.reserve(paths.size());

  // Pass 1: open every rank, combine metadata in path order, and
  // collect the sync sections (seek-ahead, position restored) in the
  // same order — fit_clocks then sees exactly the concatenation the
  // batch path would fit from.
  std::vector<trace::ClockSync>& all_syncs = fan.syncs_;
  for (const std::string& path : paths) {
    Rank rank;
    rank.path = path;
    rank.in = std::make_unique<std::ifstream>(path, std::ios::binary);
    if (!*rank.in) {
      return Result<RankFanIn>::error("cannot open trace file: " + path);
    }
    auto opened = trace::TraceStreamReader::open(*rank.in);
    if (!opened.is_ok()) {
      return Result<RankFanIn>::error(path + ": " + opened.message());
    }
    rank.reader.emplace(std::move(opened).value());
    auto syncs = rank.reader->read_clock_syncs_ahead();
    if (!syncs.is_ok()) {
      return Result<RankFanIn>::error(path + ": " + syncs.message());
    }
    const auto& rank_syncs = syncs.value();
    all_syncs.insert(all_syncs.end(), rank_syncs.begin(), rank_syncs.end());
    fan.meta_.append(rank.reader->header());
    fan.ranks_.push_back(std::move(rank));
  }
  fan.fits_ = trace::fit_clocks(all_syncs);
  return fan;
}

Status RankFanIn::fill_events(Rank* rank) {
  if (rank->event_pos < rank->events.size() || rank->events_done) {
    return Status::ok();
  }
  rank->events.clear();
  rank->event_pos = 0;
  std::size_t appended = 0;
  const Status read = rank->reader->next_fn_events(
      &rank->events, options_.batch_records, &appended);
  if (!read) return Status::error(rank->path + ": " + read.message());
  if (appended == 0) {
    rank->events_done = true;
    return Status::ok();
  }
  // Align on refill so the merge compares global timestamps directly,
  // and enforce that this rank's stream stays monotone through the fit.
  for (auto& e : rank->events) {
    e.tsc = aligned(fits_, e.node_id, e.tsc);
    if (e.tsc < rank->last_event_tsc) {
      return Status::error(
          rank->path +
          ": fn events fall out of time order after clock alignment; "
          "re-record the rank or analyse via the batch path, which sorts "
          "in memory");
    }
    rank->last_event_tsc = e.tsc;
  }
  return Status::ok();
}

Status RankFanIn::fill_samples(Rank* rank) {
  if (rank->sample_pos < rank->samples.size() || rank->samples_done) {
    return Status::ok();
  }
  rank->samples.clear();
  rank->sample_pos = 0;
  std::size_t appended = 0;
  const Status read = rank->reader->next_temp_samples(
      &rank->samples, options_.batch_records, &appended);
  if (!read) return Status::error(rank->path + ": " + read.message());
  if (appended == 0) {
    rank->samples_done = true;
    return Status::ok();
  }
  for (auto& s : rank->samples) {
    s.tsc = aligned(fits_, s.node_id, s.tsc);
    if (s.tsc < rank->last_sample_tsc) {
      return Status::error(
          rank->path +
          ": temperature samples fall out of time order after clock "
          "alignment; re-record the rank or analyse via the batch path, "
          "which sorts in memory");
    }
    rank->last_sample_tsc = s.tsc;
  }
  return Status::ok();
}

Status RankFanIn::next(EventBatch* out, bool* done) {
  *done = false;

  // Phase 0: merge fn events. Scanning ranks in path order with a
  // strict < comparison keeps ties on the lowest index — the merge is
  // a stable_sort of the concatenation.
  while (phase_ == 0 && out->fn_events.size() < options_.batch_records) {
    Rank* best = nullptr;
    for (Rank& rank : ranks_) {
      const Status filled = fill_events(&rank);
      if (!filled) return filled;
      if (rank.event_pos >= rank.events.size()) continue;
      if (best == nullptr ||
          rank.events[rank.event_pos].tsc < best->events[best->event_pos].tsc) {
        best = &rank;
      }
    }
    if (best == nullptr) {
      phase_ = 1;
      break;
    }
    out->fn_events.push_back(best->events[best->event_pos++]);
  }
  if (!out->fn_events.empty()) return Status::ok();

  // Phase 1: merge temperature samples the same way.
  while (phase_ == 1 && out->temp_samples.size() < options_.batch_records) {
    Rank* best = nullptr;
    for (Rank& rank : ranks_) {
      const Status filled = fill_samples(&rank);
      if (!filled) return filled;
      if (rank.sample_pos >= rank.samples.size()) continue;
      if (best == nullptr || rank.samples[rank.sample_pos].tsc <
                                 best->samples[best->sample_pos].tsc) {
        best = &rank;
      }
    }
    if (best == nullptr) {
      phase_ = 2;
      break;
    }
    out->temp_samples.push_back(best->samples[best->sample_pos++]);
  }
  if (!out->temp_samples.empty()) return Status::ok();

  if (phase_ == 2) {
    // Drain each rank's sync section (already consumed logically by the
    // open()-time pre-pass) so the readers reach done(), then hold
    // every rank to the single-payload rule.
    for (Rank& rank : ranks_) {
      std::vector<trace::ClockSync> scratch;
      while (!rank.reader->done()) {
        std::size_t appended = 0;
        const Status read = rank.reader->next_clock_syncs(
            &scratch, std::numeric_limits<std::size_t>::max(), &appended);
        if (!read) return Status::error(rank.path + ": " + read.message());
        scratch.clear();
      }
      const Status eof = rank.reader->expect_eof();
      if (!eof) return Status::error(rank.path + ": " + eof.message());
    }
    *done = true;
  }
  return Status::ok();
}

}  // namespace tempest::pipeline
