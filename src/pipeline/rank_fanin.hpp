// Multi-rank fan-in: merge N per-rank trace files in one pass.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pipeline/stage.hpp"
#include "trace/align.hpp"
#include "trace/reader.hpp"

namespace tempest::pipeline {

/// Source that k-way-merges per-rank trace files into one globally
/// time-ordered stream without ever materialising a combined Trace.
///
/// open() reads every header, concatenates metadata in path order
/// (TraceHeader::append — ids are not remapped, so ranks must carry
/// globally unique node/thread ids; tempest-lint's duplicate checks
/// flag violations), and pre-passes the sync sections (seek over the
/// bulk payloads and back) to fit clocks from the path-order
/// concatenation of all sync records — the same input order the batch
/// path's fit_clocks sees on a concatenated trace.
///
/// next() then merges events (and later samples) by aligned global
/// timestamp, refilling one bounded buffer per rank. Ties take the
/// lowest path index, which makes the merge equivalent to a
/// stable_sort of the concatenation — byte-identical reports to the
/// batch path. Sync records are consumed by the pre-pass and never
/// emitted; batches leave this source already aligned and sorted, so
/// no ClockAlignStage is needed downstream.
class RankFanIn : public Source {
 public:
  static Result<RankFanIn> open(const std::vector<std::string>& paths,
                                BatchOptions options = {});

  const TraceMeta& meta() const override { return meta_; }

  Status next(EventBatch* out, bool* done) override;

  /// The path-order concatenation of every rank's sync records, as
  /// collected by the open()-time pre-pass. Exporters feed these to
  /// ClockCorrelator for per-rank skew/drift metadata; the fan-in
  /// itself has already consumed them for alignment.
  const std::vector<trace::ClockSync>& sync_records() const { return syncs_; }

 private:
  struct Rank {
    std::string path;
    /// Heap-allocated so the reader's stream pointer survives moves.
    std::unique_ptr<std::ifstream> in;
    std::optional<trace::TraceStreamReader> reader;
    std::vector<trace::FnEvent> events;
    std::size_t event_pos = 0;
    bool events_done = false;
    std::vector<trace::TempSample> samples;
    std::size_t sample_pos = 0;
    bool samples_done = false;
    /// Last aligned timestamp emitted per kind — enforces that each
    /// rank's stream stays monotone after the clock fit.
    std::uint64_t last_event_tsc = 0;
    std::uint64_t last_sample_tsc = 0;
  };

  RankFanIn() = default;

  Status fill_events(Rank* rank);
  Status fill_samples(Rank* rank);

  TraceMeta meta_;
  BatchOptions options_;
  std::map<std::uint16_t, trace::ClockFit> fits_;
  std::vector<trace::ClockSync> syncs_;
  std::vector<Rank> ranks_;
  int phase_ = 0;  ///< 0 = merging events, 1 = merging samples, 2 = done
};

}  // namespace tempest::pipeline
