// Pipeline sources: incremental file reader and in-memory adapter.
#pragma once

#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "pipeline/stage.hpp"
#include "trace/align.hpp"
#include "trace/reader.hpp"

namespace tempest::pipeline {

/// Streams a trace-v2 file section by section through the 256 KiB
/// staged reader, never materialising more than one batch — the
/// bounded-memory replacement for read_trace_file + parse. Batches come
/// out in file order (events, then samples, then syncs); records are in
/// the raw recorded clock domains. Compose with ClockAlignStage (fed by
/// clock_fits()) and OrderCheckStage to reproduce the batch parser's
/// aligned, sorted stream.
class ChunkedTraceSource : public Source {
 public:
  static Result<ChunkedTraceSource> open(const std::string& path,
                                         BatchOptions options = {});

  const TraceMeta& meta() const override { return reader_->header(); }

  Status next(EventBatch* out, bool* done) override;

  /// Whole-trace clock fits from a pre-pass over the sync section
  /// (seeks over the event/sample payloads and back). Must run before
  /// the first next(). Returns an empty map when the trace has no
  /// syncs — a single clock domain.
  Result<std::map<std::uint16_t, trace::ClockFit>> clock_fits();

  /// The raw sync records behind clock_fits(), same pre-pass contract.
  /// The exporters' ClockCorrelator consumes these to report per-rank
  /// skew/drift/residual metadata alongside the fits.
  Result<std::vector<trace::ClockSync>> clock_syncs_ahead();

  /// Decode staged record chunks on `pool`'s workers (see
  /// TraceStreamReader::set_decode_pool). Batches stay byte-identical
  /// to serial decode; nullptr restores serial.
  void set_decode_pool(WorkerPool* pool) { reader_->set_decode_pool(pool); }

 private:
  ChunkedTraceSource() = default;

  std::string path_;
  BatchOptions options_;
  /// Heap-allocated so TraceStreamReader's stream pointer survives
  /// moves of the source.
  std::unique_ptr<std::ifstream> in_;
  std::optional<trace::TraceStreamReader> reader_;
};

/// Adapts an in-memory Trace to the Source interface, yielding slices
/// of its (already prepared — aligned/sorted by the caller) vectors.
/// Used by tests to drive the streaming consumers from golden traces.
class MemoryTraceSource : public Source {
 public:
  explicit MemoryTraceSource(const trace::Trace& trace, BatchOptions options = {})
      : trace_(&trace), options_(options) {}

  const TraceMeta& meta() const override { return *trace_; }

  Status next(EventBatch* out, bool* done) override;

 private:
  const trace::Trace* trace_;
  BatchOptions options_;
  std::size_t event_pos_ = 0;
  std::size_t sample_pos_ = 0;
  std::size_t sync_pos_ = 0;
};

}  // namespace tempest::pipeline
