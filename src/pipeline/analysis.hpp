// Streaming analysis: fold batches into a RunProfile (+ thermal series).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "parser/profile.hpp"
#include "parser/timeline.hpp"
#include "parser/timeline_shard.hpp"
#include "pipeline/stage.hpp"
#include "report/series.hpp"
#include "symtab/resolver.hpp"

namespace tempest::pipeline {

struct AnalysisOptions {
  parser::ProfileOptions profile;
  /// Symbolise against this path instead of the one recorded in the
  /// trace (tempest_parse --exe).
  std::string exe_override;
  /// Also extract the thermal time series (csv/plot/gnuplot outputs).
  bool want_series = false;
  std::vector<std::string> span_functions;
  /// Initial (thread, addr)-table capacity hint for the timeline
  /// accumulator; 0 picks a small default. The batch wrapper sizes it
  /// from the known event count, matching build_timeline.
  std::size_t timeline_hint = 0;
  /// Timeline fold workers. 1 (the default) folds inline on the calling
  /// thread — the exact pre-sharding code path; N > 1 shards the fold
  /// across N worker threads with bit-identical results (the ordering
  /// and merge guarantees live in parser/timeline_shard.hpp).
  unsigned threads = 1;
};

struct AnalysisResult {
  parser::RunProfile profile;
  report::ThermalSeries series;  ///< meaningful only when has_series
  bool has_series = false;
  /// The trace's RUNSTATS trailer, passed through for the report
  /// emitters (absent for pre-RUNSTATS traces).
  trace::RunStats run_stats;
};

/// The streaming counterpart of parse_trace: metadata once, then
/// aligned, time-sorted event/sample batches in any interleaving, then
/// finish(). Folds into TimelineAccumulator and ProfileAssembler, so
/// peak memory is O(timeline + samples), not O(events). Identical
/// inputs produce bit-identical profiles to the batch path — parse_trace
/// itself is a wrapper over this class.
class AnalysisPipeline {
 public:
  explicit AnalysisPipeline(AnalysisOptions options = {});

  /// Must precede the first batch. Applies exe_override.
  void set_metadata(const TraceMeta& meta);

  /// Override the inferred run bounds. Streaming sources emit
  /// time-sorted batches, so the default first/last inference is exact;
  /// the batch wrapper passes the trace's scanned bounds instead, which
  /// also covers its one unsorted corner (align with no syncs).
  void set_bounds(std::uint64_t start_tsc, std::uint64_t end_tsc);

  void add_fn_events(const trace::FnEvent* events, std::size_t n);
  void add_temp_samples(const trace::TempSample* samples, std::size_t n);

  /// Refresh the RUNSTATS trailer after set_metadata. Streaming sources
  /// only materialise the trailer once the last bulk section drains —
  /// after the sink copied the metadata — so AnalysisSink re-feeds it
  /// at on_end for stream/batch parity.
  void set_run_stats(const trace::RunStats& stats);

  /// Symbolise, attribute, assemble. When `resolver` is null one is
  /// built from the recorded executable (falling back to hex addresses,
  /// same as parse_trace). The pipeline is spent afterwards.
  AnalysisResult finish(const symtab::Resolver* resolver = nullptr);

 private:
  AnalysisOptions options_;
  TraceMeta meta_;
  std::optional<parser::ShardedTimelineAccumulator> timeline_;
  parser::ProfileAssembler assembler_;
  std::uint64_t start_tsc_ = 0;  ///< over events and samples, 0 when empty
  std::uint64_t end_tsc_ = 0;
  bool any_records_ = false;
  bool bounds_forced_ = false;
};

}  // namespace tempest::pipeline
