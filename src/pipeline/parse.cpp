// Batch entry points, rebuilt as thin wrappers over the streaming
// pipeline. parse_trace prepares the in-memory trace exactly as before
// (align or sort) and then folds it through AnalysisPipeline — the same
// consumer core the streaming sources feed — so both paths produce
// bit-identical profiles by construction.
#include "parser/parse.hpp"

#include <algorithm>

#include "pipeline/analysis.hpp"
#include "trace/align.hpp"
#include "trace/reader.hpp"

namespace tempest::parser {

Result<RunProfile> parse_trace(trace::Trace trace, const ParseOptions& options,
                               const symtab::Resolver* resolver) {
  if (options.align_clocks) {
    const Status aligned = trace::align_clocks(&trace);
    if (!aligned) return Result<RunProfile>::error(aligned.message());
  } else {
    trace.sort_by_time();
  }

  pipeline::AnalysisOptions fold_options;
  fold_options.profile = options.profile;
  fold_options.timeline_hint =
      std::min(trace.fn_events.size() / 8 + 16, std::size_t{1} << 16);
  pipeline::AnalysisPipeline fold(std::move(fold_options));
  fold.set_metadata(trace);
  // The aligned-but-syncless corner leaves the trace unsorted (the batch
  // path never sorted it either); pass the scanned bounds instead of
  // letting the fold infer them from batch ends.
  fold.set_bounds(trace.start_tsc(), trace.end_tsc());
  fold.add_fn_events(trace.fn_events.data(), trace.fn_events.size());
  fold.add_temp_samples(trace.temp_samples.data(), trace.temp_samples.size());
  return std::move(fold.finish(resolver).profile);
}

Result<RunProfile> parse_trace_file(const std::string& path,
                                    const ParseOptions& options) {
  auto loaded = trace::read_trace_file(path);
  if (!loaded.is_ok()) return Result<RunProfile>::error(loaded.message());
  return parse_trace(std::move(loaded).value(), options);
}

}  // namespace tempest::parser
