#include "pipeline/stage.hpp"

namespace tempest::pipeline {

Status run_pipeline(Source* source, const std::vector<Stage*>& stages,
                    const std::vector<BatchSink*>& sinks) {
  const TraceMeta& meta = source->meta();
  for (BatchSink* sink : sinks) {
    const Status began = sink->begin(meta);
    if (!began) return began;
  }
  EventBatch batch;
  bool done = false;
  while (!done) {
    batch.clear();
    const Status produced = source->next(&batch, &done);
    if (!produced) return produced;
    if (batch.empty()) continue;
    for (Stage* stage : stages) {
      const Status staged = stage->process(meta, &batch);
      if (!staged) return staged;
    }
    for (BatchSink* sink : sinks) {
      const Status consumed = sink->on_batch(meta, batch);
      if (!consumed) return consumed;
    }
  }
  for (BatchSink* sink : sinks) {
    const Status ended = sink->on_end(meta);
    if (!ended) return ended;
  }
  return Status::ok();
}

}  // namespace tempest::pipeline
