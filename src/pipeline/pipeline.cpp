#include <chrono>

#include "pipeline/stage.hpp"
#include "telemetry/metrics.hpp"

namespace tempest::pipeline {
namespace {

/// Wall time of one stage/sink call, fed to the shared stage-wall
/// histogram. steady_clock, not rdtsc: analysis-side code migrates
/// across cores freely and runs long enough for clock_gettime to be
/// noise.
class StageTimer {
 public:
  StageTimer() : start_(std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start_);
    telemetry::observe(telemetry::Histogram::kStageWallUs,
                       static_cast<double>(us.count()));
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Status run_pipeline(Source* source, const std::vector<Stage*>& stages,
                    const std::vector<BatchSink*>& sinks) {
  const TraceMeta& meta = source->meta();
  for (BatchSink* sink : sinks) {
    const Status began = sink->begin(meta);
    if (!began) return began;
  }
  EventBatch batch;
  bool done = false;
  while (!done) {
    batch.clear();
    const Status produced = source->next(&batch, &done);
    if (!produced) return produced;
    if (batch.empty()) continue;
    telemetry::count(telemetry::Counter::kPipelineBatches);
    telemetry::count(telemetry::Counter::kPipelineFnEvents,
                     batch.fn_events.size());
    telemetry::count(telemetry::Counter::kPipelineTempSamples,
                     batch.temp_samples.size());
    for (Stage* stage : stages) {
      StageTimer timer;
      const Status staged = stage->process(meta, &batch);
      if (!staged) return staged;
    }
    for (BatchSink* sink : sinks) {
      StageTimer timer;
      const Status consumed = sink->on_batch(meta, batch);
      if (!consumed) return consumed;
    }
  }
  for (BatchSink* sink : sinks) {
    StageTimer timer;
    const Status ended = sink->on_end(meta);
    if (!ended) return ended;
  }
  // End-of-run memory checkpoint: the analysis tools assert bounded
  // memory against this.
  telemetry::gauge_set(telemetry::Gauge::kPeakRssKb,
                       telemetry::read_peak_rss_kb());
  return Status::ok();
}

}  // namespace tempest::pipeline
