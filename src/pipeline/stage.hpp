// Composable streaming analysis pipeline: the vocabulary.
//
// The paper's parser is a post-mortem batch step — load the whole
// merged trace, rebuild the timeline, attribute samples, print. This
// library restructures that as Source -> Stage* -> BatchSink* over
// bounded record batches, so a trace (or N per-rank traces) streams
// through analysis with peak memory bounded by the batch size plus the
// consumers' own aggregates instead of the full event vector. The batch
// entry points (parser/parse.hpp) are thin wrappers over the same
// consumer cores, so both paths produce bit-identical profiles.
//
// Ordering contract: a Source emits each record kind in global time
// order across batches (events sorted, samples sorted; the two kinds
// may arrive in separate batches and need not interleave). Sources
// that cannot guarantee order fail with a Status instead of silently
// degrading — consumers fold batches under the same assumptions
// Trace::sort_by_time establishes for the batch path.
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.hpp"
#include "trace/trace.hpp"

namespace tempest::pipeline {

/// Run-level metadata travels once, out of band of the record batches.
using TraceMeta = trace::TraceHeader;

/// Default records per batch. 64 Ki events is ~1.4 MiB — big enough to
/// amortise virtual dispatch and the reader's 256 KiB staging chunks,
/// small enough that a dozen in-flight batches stay cache-friendly.
inline constexpr std::size_t kDefaultBatchRecords = std::size_t{1} << 16;

struct BatchOptions {
  std::size_t batch_records = kDefaultBatchRecords;
};

/// One bounded slice of the record streams. A batch usually carries a
/// single kind (the trace format stores kinds in separate sections);
/// consumers must not assume that.
struct EventBatch {
  std::vector<trace::FnEvent> fn_events;
  std::vector<trace::TempSample> temp_samples;
  std::vector<trace::ClockSync> clock_syncs;

  bool empty() const {
    return fn_events.empty() && temp_samples.empty() && clock_syncs.empty();
  }
  /// Clears contents, keeps capacity — run_pipeline recycles one batch.
  void clear() {
    fn_events.clear();
    temp_samples.clear();
    clock_syncs.clear();
  }
};

/// Produces the batch stream (a trace file, an in-memory trace, a
/// multi-rank fan-in merge).
class Source {
 public:
  virtual ~Source() = default;

  /// Combined run metadata, valid for the source's lifetime.
  virtual const TraceMeta& meta() const = 0;

  /// Fill `out` (cleared by the caller) with the next batch. Sets
  /// *done once the stream is exhausted; the final call may deliver
  /// both a batch and *done. An error Status aborts the run.
  virtual Status next(EventBatch* out, bool* done) = 0;
};

/// Transforms batches in flight (clock alignment, order verification).
class Stage {
 public:
  virtual ~Stage() = default;
  virtual Status process(const TraceMeta& meta, EventBatch* batch) = 0;
};

/// Consumes the (post-stage) batch stream.
class BatchSink {
 public:
  virtual ~BatchSink() = default;
  virtual Status begin(const TraceMeta& /*meta*/) { return Status::ok(); }
  virtual Status on_batch(const TraceMeta& meta, const EventBatch& batch) = 0;
  virtual Status on_end(const TraceMeta& /*meta*/) { return Status::ok(); }
};

/// Drive `source` to exhaustion: each batch flows through `stages` in
/// order, then to every sink. Stops at the first error. Sinks see
/// begin() before any batch and on_end() only if everything succeeded.
Status run_pipeline(Source* source, const std::vector<Stage*>& stages,
                    const std::vector<BatchSink*>& sinks);

}  // namespace tempest::pipeline
