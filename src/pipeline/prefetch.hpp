// Read-ahead source decorator: overlaps trace I/O + decode with the
// downstream fold.
//
// The streaming pipeline is a strict loop — read a batch, fold a batch —
// so even with the fold sharded, the reader's I/O and record decode
// serialise with analysis. PrefetchSource moves the wrapped source onto
// a producer thread that stays a bounded number of batches ahead;
// next() pops batches in production order, so consumers observe exactly
// the sequence the inner source would have produced (the ordering
// contract in stage.hpp is preserved by construction). Batch buffers
// recycle through a spare list, keeping steady-state allocation at zero.
//
// The wrapped source must not be touched by anyone else while the
// decorator exists. Metadata is served from a copy taken at
// construction and refreshed when the stream finishes — that refresh is
// what delivers the RUNSTATS trailer (which the reader can only
// materialise at the last section) to sinks at on_end, same as the
// undecorated source.
#pragma once

#include <condition_variable>
#include <deque>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "pipeline/stage.hpp"

namespace tempest::pipeline {

class PrefetchSource : public Source {
 public:
  /// `inner` must outlive the decorator. `depth` bounds the batches in
  /// flight (producer blocks when full).
  explicit PrefetchSource(Source* inner, std::size_t depth = 4);
  ~PrefetchSource() override;

  PrefetchSource(const PrefetchSource&) = delete;
  PrefetchSource& operator=(const PrefetchSource&) = delete;

  const TraceMeta& meta() const override { return meta_; }
  Status next(EventBatch* out, bool* done) override;

 private:
  struct Item {
    EventBatch batch;
    bool done = false;
    Status status = Status::ok();
  };

  void producer_loop();

  Source* inner_;
  TraceMeta meta_;
  std::size_t depth_;

  common::Mutex mu_;
  std::condition_variable_any cv_;
  std::deque<Item> queue_ GUARDED_BY(mu_);
  std::vector<EventBatch> spare_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;

  std::thread producer_;
};

}  // namespace tempest::pipeline
