#include "pipeline/stages.hpp"

namespace tempest::pipeline {

Status ClockAlignStage::process(const TraceMeta& /*meta*/, EventBatch* batch) {
  if (fits_.empty()) return Status::ok();  // single clock domain
  for (auto& e : batch->fn_events) {
    const auto it = fits_.find(e.node_id);
    if (it != fits_.end()) e.tsc = it->second.to_global(e.tsc);
  }
  for (auto& s : batch->temp_samples) {
    const auto it = fits_.find(s.node_id);
    if (it != fits_.end()) s.tsc = it->second.to_global(s.tsc);
  }
  batch->clock_syncs.clear();
  return Status::ok();
}

Status OrderCheckStage::process(const TraceMeta& /*meta*/, EventBatch* batch) {
  for (const auto& e : batch->fn_events) {
    if (e.tsc < last_event_tsc_) {
      return Status::error(
          "fn events are not in global time order after clock alignment; "
          "streaming analysis needs a time-sorted trace (use the batch path, "
          "which sorts in memory)");
    }
    last_event_tsc_ = e.tsc;
  }
  for (const auto& s : batch->temp_samples) {
    if (s.tsc < last_sample_tsc_) {
      return Status::error(
          "temperature samples are not in global time order after clock "
          "alignment; streaming analysis needs a time-sorted trace (use the "
          "batch path, which sorts in memory)");
    }
    last_sample_tsc_ = s.tsc;
  }
  return Status::ok();
}

}  // namespace tempest::pipeline
