#include "pipeline/prefetch.hpp"

#include <utility>

namespace tempest::pipeline {

PrefetchSource::PrefetchSource(Source* inner, std::size_t depth)
    : inner_(inner), meta_(inner->meta()), depth_(depth == 0 ? 1 : depth) {
  producer_ = std::thread([this] { producer_loop(); });
}

PrefetchSource::~PrefetchSource() {
  {
    common::MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (producer_.joinable()) producer_.join();
}

void PrefetchSource::producer_loop() {
  for (;;) {
    EventBatch batch;
    {
      common::MutexLock lock(&mu_);
      if (!spare_.empty()) {
        batch = std::move(spare_.back());
        spare_.pop_back();
      }
    }
    batch.clear();
    bool done = false;
    Status status = inner_->next(&batch, &done);
    const bool terminal = done || !status;
    {
      common::MutexLock lock(&mu_);
      while (queue_.size() >= depth_ && !stop_) cv_.wait(mu_);
      if (stop_) return;
      queue_.push_back(Item{std::move(batch), done, std::move(status)});
    }
    cv_.notify_all();
    if (terminal) return;
  }
}

Status PrefetchSource::next(EventBatch* out, bool* done) {
  Item item;
  {
    common::MutexLock lock(&mu_);
    while (queue_.empty()) cv_.wait(mu_);
    item = std::move(queue_.front());
    queue_.pop_front();
  }
  cv_.notify_all();
  if (item.done) {
    // Producer exited right after pushing this item (the push/pop pair
    // orders its writes before us); fold the finished header — now
    // carrying the RUNSTATS trailer — into the copy sinks reference.
    if (producer_.joinable()) producer_.join();
    meta_ = inner_->meta();
  }
  std::swap(*out, item.batch);
  {
    // Recycle the caller's previous buffers into the producer's pool.
    common::MutexLock lock(&mu_);
    if (spare_.size() < depth_) spare_.push_back(std::move(item.batch));
  }
  *done = item.done;
  return item.status;
}

}  // namespace tempest::pipeline
