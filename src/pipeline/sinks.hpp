// Batch sinks: analysis fold, lint fold, and report emitters.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lint.hpp"
#include "pipeline/analysis.hpp"
#include "pipeline/stage.hpp"
#include "report/ascii_plot.hpp"
#include "report/stdout_format.hpp"

namespace tempest::pipeline {

/// Consumes a finished AnalysisResult — the adapter between the
/// streaming fold and the report writers (text/json/csv/plot/gnuplot).
class ProfileEmitter {
 public:
  virtual ~ProfileEmitter() = default;
  virtual Status emit(const AnalysisResult& result) = 0;
};

/// The paper's Fig 2a standard output.
class TextEmitter : public ProfileEmitter {
 public:
  TextEmitter(std::ostream& out, report::StdoutOptions options = {})
      : out_(&out), options_(options) {}
  Status emit(const AnalysisResult& result) override;

 private:
  std::ostream* out_;
  report::StdoutOptions options_;
};

/// Full profile dump as one JSON object.
class JsonEmitter : public ProfileEmitter {
 public:
  explicit JsonEmitter(std::ostream& out) : out_(&out) {}
  Status emit(const AnalysisResult& result) override;

 private:
  std::ostream* out_;
};

/// Thermal time series as CSV. Needs AnalysisOptions::want_series.
class CsvSeriesEmitter : public ProfileEmitter {
 public:
  explicit CsvSeriesEmitter(std::ostream& out) : out_(&out) {}
  Status emit(const AnalysisResult& result) override;

 private:
  std::ostream* out_;
};

/// ASCII thermal profile (Fig 2b style). Needs want_series.
class AsciiPlotEmitter : public ProfileEmitter {
 public:
  AsciiPlotEmitter(std::ostream& out, report::PlotOptions options = {})
      : out_(&out), options_(std::move(options)) {}
  Status emit(const AnalysisResult& result) override;

 private:
  std::ostream* out_;
  report::PlotOptions options_;
};

/// PREFIX.dat + PREFIX.gp gnuplot pair. Needs want_series.
class GnuplotEmitter : public ProfileEmitter {
 public:
  explicit GnuplotEmitter(std::string prefix) : prefix_(std::move(prefix)) {}
  Status emit(const AnalysisResult& result) override;

 private:
  std::string prefix_;
};

/// Folds the batch stream through an AnalysisPipeline, then fans the
/// finished result out to the emitters in order. The result stays
/// available afterwards for callers that want more than the emitters
/// produce (diagnostics, exit codes).
class AnalysisSink : public BatchSink {
 public:
  explicit AnalysisSink(AnalysisOptions options = {},
                        std::vector<ProfileEmitter*> emitters = {},
                        const symtab::Resolver* resolver = nullptr)
      : pipeline_(std::move(options)),
        emitters_(std::move(emitters)),
        resolver_(resolver) {}

  Status begin(const TraceMeta& meta) override;
  Status on_batch(const TraceMeta& meta, const EventBatch& batch) override;
  Status on_end(const TraceMeta& meta) override;

  /// Valid after a successful on_end.
  const AnalysisResult& result() const { return result_; }

 private:
  AnalysisPipeline pipeline_;
  std::vector<ProfileEmitter*> emitters_;
  const symtab::Resolver* resolver_;
  AnalysisResult result_;
};

/// Runs the invariant checker over the stream; the report is available
/// after on_end. Note: sources consume clock syncs during alignment, so
/// a LintSink downstream of a fan-in or align stage lints the merged,
/// aligned stream — to lint a raw file as tempest-lint does, use
/// lint_trace_file, which shares LintEngine.
class LintSink : public BatchSink {
 public:
  explicit LintSink(analysis::LintOptions options = {}) : options_(options) {}

  Status begin(const TraceMeta& meta) override;
  Status on_batch(const TraceMeta& meta, const EventBatch& batch) override;
  Status on_end(const TraceMeta& meta) override;

  /// Valid after a successful on_end.
  const analysis::LintReport& report() const { return report_; }

 private:
  analysis::LintOptions options_;
  std::optional<analysis::LintEngine> engine_;
  analysis::LintReport report_;
};

/// Counts records and batches; the bench harness's no-op consumer
/// (isolates source/stage throughput from analysis cost).
class CountingSink : public BatchSink {
 public:
  Status on_batch(const TraceMeta& meta, const EventBatch& batch) override;

  std::uint64_t fn_events() const { return fn_events_; }
  std::uint64_t temp_samples() const { return temp_samples_; }
  std::uint64_t clock_syncs() const { return clock_syncs_; }
  std::uint64_t batches() const { return batches_; }

 private:
  std::uint64_t fn_events_ = 0;
  std::uint64_t temp_samples_ = 0;
  std::uint64_t clock_syncs_ = 0;
  std::uint64_t batches_ = 0;
};

}  // namespace tempest::pipeline
