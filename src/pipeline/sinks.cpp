#include "pipeline/sinks.hpp"

#include <fstream>

#include "report/gnuplot.hpp"
#include "report/json.hpp"
#include "report/series.hpp"

namespace tempest::pipeline {

Status TextEmitter::emit(const AnalysisResult& result) {
  report::print_profile(*out_, result.profile, options_);
  report::print_run_stats(*out_, result.run_stats);  // no-op when absent
  return Status::ok();
}

Status JsonEmitter::emit(const AnalysisResult& result) {
  report::write_profile_json(*out_, result.profile, &result.run_stats);
  *out_ << "\n";
  return Status::ok();
}

Status CsvSeriesEmitter::emit(const AnalysisResult& result) {
  if (!result.has_series) {
    return Status::error("csv output needs a series (AnalysisOptions::want_series)");
  }
  report::write_series_csv(*out_, result.series);
  return Status::ok();
}

Status AsciiPlotEmitter::emit(const AnalysisResult& result) {
  if (!result.has_series) {
    return Status::error("plot output needs a series (AnalysisOptions::want_series)");
  }
  report::plot_series(*out_, result.series, options_);
  return Status::ok();
}

Status GnuplotEmitter::emit(const AnalysisResult& result) {
  if (!result.has_series) {
    return Status::error(
        "gnuplot output needs a series (AnalysisOptions::want_series)");
  }
  const std::string dat_path = prefix_ + ".dat";
  std::ofstream dat(dat_path);
  if (!dat) return Status::error("cannot write " + dat_path);
  report::write_series_gnuplot_data(dat, result.series);
  const std::string gp_path = prefix_ + ".gp";
  std::ofstream gp(gp_path);
  if (!gp) return Status::error("cannot write " + gp_path);
  report::write_series_gnuplot_script(gp, result.series, dat_path,
                                      prefix_ + ".png");
  return Status::ok();
}

Status AnalysisSink::begin(const TraceMeta& meta) {
  pipeline_.set_metadata(meta);
  return Status::ok();
}

Status AnalysisSink::on_batch(const TraceMeta& /*meta*/, const EventBatch& batch) {
  pipeline_.add_fn_events(batch.fn_events.data(), batch.fn_events.size());
  pipeline_.add_temp_samples(batch.temp_samples.data(), batch.temp_samples.size());
  return Status::ok();
}

Status AnalysisSink::on_end(const TraceMeta& meta) {
  // Streaming sources materialise the RUNSTATS trailer only after the
  // last bulk section drains — re-feed it so stream == batch.
  pipeline_.set_run_stats(meta.run_stats);
  result_ = pipeline_.finish(resolver_);
  for (ProfileEmitter* emitter : emitters_) {
    const Status emitted = emitter->emit(result_);
    if (!emitted) return emitted;
  }
  return Status::ok();
}

Status LintSink::begin(const TraceMeta& meta) {
  engine_.emplace(meta, options_);
  return Status::ok();
}

Status LintSink::on_batch(const TraceMeta& /*meta*/, const EventBatch& batch) {
  engine_->add_fn_events(batch.fn_events.data(), batch.fn_events.size());
  engine_->add_temp_samples(batch.temp_samples.data(), batch.temp_samples.size());
  engine_->add_clock_syncs(batch.clock_syncs.data(), batch.clock_syncs.size());
  return Status::ok();
}

Status LintSink::on_end(const TraceMeta& meta) {
  engine_->set_run_stats(meta.run_stats);
  engine_->set_filter_decl(meta.filter);
  report_ = engine_->finish();
  return Status::ok();
}

Status CountingSink::on_batch(const TraceMeta& /*meta*/, const EventBatch& batch) {
  fn_events_ += batch.fn_events.size();
  temp_samples_ += batch.temp_samples.size();
  clock_syncs_ += batch.clock_syncs.size();
  ++batches_;
  return Status::ok();
}

}  // namespace tempest::pipeline
