#include "pipeline/source.hpp"

#include <algorithm>

namespace tempest::pipeline {

Result<ChunkedTraceSource> ChunkedTraceSource::open(const std::string& path,
                                                    BatchOptions options) {
  ChunkedTraceSource source;
  source.path_ = path;
  source.options_ = options;
  source.in_ = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*source.in_) {
    return Result<ChunkedTraceSource>::error("cannot open trace file: " + path);
  }
  auto opened = trace::TraceStreamReader::open(*source.in_);
  if (!opened.is_ok()) {
    return Result<ChunkedTraceSource>::error(path + ": " + opened.message());
  }
  source.reader_.emplace(std::move(opened).value());
  return source;
}

Status ChunkedTraceSource::next(EventBatch* out, bool* done) {
  *done = false;
  trace::TraceStreamReader& reader = *reader_;
  std::size_t appended = 0;

  // One batch = one slice of whichever section the file cursor is in;
  // an exhausted section falls through to the next so a call never
  // returns an empty batch mid-stream.
  Status read = reader.next_fn_events(&out->fn_events, options_.batch_records,
                                      &appended);
  if (read && appended == 0) {
    read = reader.next_temp_samples(&out->temp_samples, options_.batch_records,
                                    &appended);
  }
  if (read && appended == 0) {
    read = reader.next_clock_syncs(&out->clock_syncs, options_.batch_records,
                                   &appended);
  }
  if (!read) return Status::error(path_ + ": " + read.message());
  if (reader.done()) {
    *done = true;
    // Mirror read_trace_file: a lone trace file has exactly one payload.
    const Status eof = reader.expect_eof();
    if (!eof) return Status::error(path_ + ": " + eof.message());
  }
  return Status::ok();
}

Result<std::map<std::uint16_t, trace::ClockFit>> ChunkedTraceSource::clock_fits() {
  auto syncs = clock_syncs_ahead();
  if (!syncs.is_ok()) {
    return Result<std::map<std::uint16_t, trace::ClockFit>>::error(
        syncs.message());
  }
  return trace::fit_clocks(syncs.value());
}

Result<std::vector<trace::ClockSync>> ChunkedTraceSource::clock_syncs_ahead() {
  auto syncs = reader_->read_clock_syncs_ahead();
  if (!syncs.is_ok()) {
    return Result<std::vector<trace::ClockSync>>::error(path_ + ": " +
                                                        syncs.message());
  }
  return std::move(syncs).value();
}

Status MemoryTraceSource::next(EventBatch* out, bool* done) {
  const trace::Trace& t = *trace_;
  const std::size_t cap = options_.batch_records;

  if (event_pos_ < t.fn_events.size()) {
    const std::size_t n = std::min(cap, t.fn_events.size() - event_pos_);
    out->fn_events.assign(t.fn_events.begin() + static_cast<std::ptrdiff_t>(event_pos_),
                          t.fn_events.begin() + static_cast<std::ptrdiff_t>(event_pos_ + n));
    event_pos_ += n;
  } else if (sample_pos_ < t.temp_samples.size()) {
    const std::size_t n = std::min(cap, t.temp_samples.size() - sample_pos_);
    out->temp_samples.assign(
        t.temp_samples.begin() + static_cast<std::ptrdiff_t>(sample_pos_),
        t.temp_samples.begin() + static_cast<std::ptrdiff_t>(sample_pos_ + n));
    sample_pos_ += n;
  } else if (sync_pos_ < t.clock_syncs.size()) {
    const std::size_t n = std::min(cap, t.clock_syncs.size() - sync_pos_);
    out->clock_syncs.assign(
        t.clock_syncs.begin() + static_cast<std::ptrdiff_t>(sync_pos_),
        t.clock_syncs.begin() + static_cast<std::ptrdiff_t>(sync_pos_ + n));
    sync_pos_ += n;
  }
  *done = event_pos_ >= t.fn_events.size() &&
          sample_pos_ >= t.temp_samples.size() &&
          sync_pos_ >= t.clock_syncs.size();
  return Status::ok();
}

}  // namespace tempest::pipeline
