// In-flight batch transforms: clock alignment and order verification.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "pipeline/stage.hpp"
#include "trace/align.hpp"

namespace tempest::pipeline {

/// Rewrites event/sample timestamps into the global clock domain using
/// fits from a sync pre-pass (ChunkedTraceSource::clock_fits), then
/// drops the consumed sync records — the streaming counterpart of
/// align_clocks. With an empty fit map (no syncs: a single clock
/// domain) batches pass through untouched, matching the batch path's
/// early return.
class ClockAlignStage : public Stage {
 public:
  explicit ClockAlignStage(std::map<std::uint16_t, trace::ClockFit> fits)
      : fits_(std::move(fits)) {}

  Status process(const TraceMeta& meta, EventBatch* batch) override;

 private:
  std::map<std::uint16_t, trace::ClockFit> fits_;
};

/// Verifies the ordering contract across batches: fn_events and
/// temp_samples each non-decreasing in tsc over the whole stream. The
/// batch path sorts after alignment; streaming cannot, so a trace whose
/// aligned records come out of file order must take the batch path —
/// the error says so.
class OrderCheckStage : public Stage {
 public:
  Status process(const TraceMeta& meta, EventBatch* batch) override;

 private:
  std::uint64_t last_event_tsc_ = 0;
  std::uint64_t last_sample_tsc_ = 0;
};

}  // namespace tempest::pipeline
