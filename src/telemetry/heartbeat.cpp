#include "telemetry/heartbeat.hpp"

#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"

namespace tempest::telemetry {

Status HeartbeatEmitter::start(const std::string& path, double period_s) {
  if (thread_.joinable()) return Status::error("heartbeat already running");
  if (!(period_s > 0.0)) return Status::error("heartbeat period must be > 0");
  out_.open(path, std::ios::trunc);
  if (!out_) return Status::error("cannot open heartbeat file: " + path);
  path_ = path;
  t0_ = std::chrono::steady_clock::now();
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  emit_snapshot();  // a very short run still leaves a first line
  thread_ = std::thread([this, period_s] { run(period_s); });
  return Status::ok();
}

void HeartbeatEmitter::stop() {
  if (!thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  thread_.join();
  thread_ = std::thread();
  emit_snapshot();  // final counts, after the session folded its totals
  out_.close();
  running_.store(false, std::memory_order_release);
  log_info("heartbeat", "wrote " + path_);
}

void HeartbeatEmitter::run(double period_s) {
  using clock = std::chrono::steady_clock;
  const auto period = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(period_s));
  auto next = clock::now() + period;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const auto now = clock::now();
    if (now < next) {
      // Absolute deadlines in short slices, so stop() stays responsive
      // at multi-second periods.
      std::this_thread::sleep_until(
          std::min(next, now + std::chrono::milliseconds(20)));
      continue;
    }
    emit_snapshot();
    // Skip ahead rather than bursting if a snapshot (or a descheduled
    // stretch) blew past several deadlines.
    while (next <= clock::now()) next += period;
  }
}

void HeartbeatEmitter::emit_snapshot() {
  const double t =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  write_snapshot_json(out_, metrics().snapshot(), t);
  out_ << "\n";
  out_.flush();
  count(Counter::kHeartbeats);
}

}  // namespace tempest::telemetry
