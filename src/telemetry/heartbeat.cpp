#include "telemetry/heartbeat.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <sstream>

#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"

namespace tempest::telemetry {

Status HeartbeatEmitter::start(const std::string& path, double period_s) {
  if (thread_.joinable()) return Status::error("heartbeat already running");
  if (!(period_s > 0.0)) return Status::error("heartbeat period must be > 0");
  if (path.empty() && !sink_) {
    return Status::error("heartbeat needs a file path or a line sink");
  }
  if (!path.empty()) {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd_ < 0) return Status::error("cannot open heartbeat file: " + path);
  }
  path_ = path;
  t0_ = std::chrono::steady_clock::now();
  seq_.store(0, std::memory_order_release);
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  emit_snapshot();  // a very short run still leaves a first line
  thread_ = std::thread([this, period_s] { run(period_s); });
  return Status::ok();
}

void HeartbeatEmitter::stop() {
  if (!thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  thread_.join();
  thread_ = std::thread();
  emit_snapshot();  // final counts, after the session folded its totals
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
  if (!path_.empty()) log_info("heartbeat", "wrote " + path_);
}

void HeartbeatEmitter::run(double period_s) {
  using clock = std::chrono::steady_clock;
  const auto period = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(period_s));
  auto next = clock::now() + period;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const auto now = clock::now();
    if (now < next) {
      // Absolute deadlines in short slices, so stop() stays responsive
      // at multi-second periods.
      std::this_thread::sleep_until(
          std::min(next, now + std::chrono::milliseconds(20)));
      continue;
    }
    emit_snapshot();
    // Skip ahead rather than bursting if a snapshot (or a descheduled
    // stretch) blew past several deadlines.
    while (next <= clock::now()) next += period;
  }
}

void HeartbeatEmitter::emit_snapshot() {
  const double t =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
  std::ostringstream line;
  write_snapshot_json(line, metrics().snapshot(), t, seq);
  std::string s = line.str();
  if (sink_) sink_(s);
  if (fd_ >= 0) {
    s.push_back('\n');
    // One write() per line: stdio buffering would let a SIGKILL strand a
    // partial record, and interleaved short writes would tear lines for
    // pipe/socket readers. A line is far below PIPE_BUF, so pipe writes
    // are atomic; regular-file writes only come up short on ENOSPC.
    ssize_t n;
    do {
      n = ::write(fd_, s.data(), s.size());
    } while (n < 0 && errno == EINTR);
    if (n >= 0 && static_cast<std::size_t>(n) < s.size()) {
      // Short write (disk full): finish the line rather than tear it.
      const char* rest = s.data() + n;
      std::size_t left = s.size() - static_cast<std::size_t>(n);
      while (left > 0) {
        const ssize_t m = ::write(fd_, rest, left);
        if (m < 0 && errno == EINTR) continue;
        if (m <= 0) break;
        rest += m;
        left -= static_cast<std::size_t>(m);
      }
    }
  }
  count(Counter::kHeartbeats);
}

}  // namespace tempest::telemetry
