// Runtime self-telemetry: a lock-free metrics registry.
//
// The paper's credibility rests on Tempest being middle-weight — tempd
// holds a 4 Hz cadence at < 1% CPU and the entry/exit probes barely
// perturb the measured code. This registry lets the runtime *prove*
// that about itself while it runs: monotonic counters, gauges, and
// fixed-bucket histograms with preregistered IDs, sharded per thread so
// the instrumentation hot path never locks, never allocates, and never
// shares a cache line with another recorder.
//
// Design:
//   * Every metric ID is a compile-time enum; there is no dynamic
//     registration, so recording is an array index plus one relaxed
//     atomic RMW into the calling thread's shard.
//   * Shards are a fixed pool inside a leaked singleton. A thread picks
//     its shard once (atomic round-robin, no lock); more threads than
//     shards simply share — the atomics keep the totals exact.
//   * snapshot() folds the shards with relaxed loads. Concurrent
//     recording makes a snapshot a consistent-enough view (each cell
//     individually exact, cells mutually racy) — the same contract as
//     /proc counters.
//   * Histograms are fixed-bucket: value <= bounds[i] lands in bucket
//     i, everything above the last bound in the overflow bucket. Sum /
//     count / max ride along for cheap means.
//
// The whole layer can be disarmed with TEMPEST_TELEMETRY=0: recording
// degenerates to one predictable branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace tempest::telemetry {

// -- preregistered metric IDs ------------------------------------------

enum class Counter : std::uint16_t {
  kEventsRecorded = 0,   ///< fn events buffered (chunk-granular live, exact at drain)
  kEventsDropped,        ///< fn events rejected (buffer cap) or retired undrained
  kBufferFlushes,        ///< event-buffer chunk allocations
  kThreadsRegistered,    ///< ThreadRegistry registrations this session
  kSessionStarts,
  kSessionStops,
  kTempdTicks,
  kTempdMissedTicks,     ///< deadlines skipped to recover the absolute cadence
  kTempdSamples,
  kTempdReadErrors,
  kSensorReads,
  kSensorReadFailures,
  kPipelineBatches,
  kPipelineFnEvents,
  kPipelineTempSamples,
  kHeartbeats,           ///< JSONL snapshots appended
  kExportEvents,         ///< trace-event records written by the exporters
  kExportSpansDropped,   ///< unbalanced entry/exit events discarded on export
  kExportBytes,          ///< bytes of export output written
  kEventsSuppressed,     ///< hook calls rejected by the TEMPEST_FILTER set
  kEventsThrottled,      ///< hook calls rejected by rate caps / min-duration
  kEventsOverwritten,    ///< events discarded by the flight-recorder ring
  kRingSnapshots,        ///< flight-recorder snapshot traces written
  kStreamFramesSent,     ///< collect-client frames shipped to the daemon
  kStreamBytesSent,      ///< collect-client bytes shipped (headers + payload)
  kStreamSendFailures,   ///< collect-client sends that failed (client goes dead)
  kCollectFrames,        ///< collector: ingest frames accepted
  kCollectBytes,         ///< collector: ingest payload bytes accepted
  kCollectEvents,        ///< collector: fn events folded
  kCollectSamples,       ///< collector: temperature samples folded
  kCollectHeartbeats,    ///< collector: heartbeat lines ingested
  kCollectHeartbeatGaps, ///< collector: heartbeat seq gaps (lines lost in flight)
  kCollectRestarts,      ///< collector: heartbeat seq regressions (sender restarted)
  kCollectProtocolErrors,///< collector: malformed/oversized frames (session aborted)
  kCollectDisconnects,   ///< collector: ingest connections lost before BYE
  kCollectSessionsFolded,///< collector: sessions folded into the fleet profile
  kCollectSessionsAborted,///< collector: sessions discarded (error or disconnect)
  kCollectHttpRequests,  ///< collector: query-plane requests served
  kCollectIdleTimeouts,  ///< collector: connections reaped by the idle sweep
  kCount
};

enum class Gauge : std::uint16_t {
  kPeakRssKb = 0,        ///< getrusage high-water mark (analysis side)
  kTempdCpuUs,           ///< tempd thread CPU time so far, microseconds
  kActiveThreads,        ///< live registered recorder threads
  kSensorTemp0MilliC,    ///< last reading of the first 8 sensors, milli-°C
  kSensorTemp1MilliC,
  kSensorTemp2MilliC,
  kSensorTemp3MilliC,
  kSensorTemp4MilliC,
  kSensorTemp5MilliC,
  kSensorTemp6MilliC,
  kSensorTemp7MilliC,
  kCollectSessionsActive,  ///< collector: live ingest sessions right now
  kCollectQueueFrames,     ///< collector: frames queued across fold shards
  kCount
};

enum class Histogram : std::uint16_t {
  kProbeCostNs = 0,      ///< self-measured record_enter/exit probe cost
  kCadenceJitterUs,      ///< tempd tick lateness vs its absolute deadline
  kTickWallUs,           ///< one full tempd sensor sweep
  kSensorReadUs,         ///< one backend read_celsius call
  kStageWallUs,          ///< one pipeline stage/sink call on one batch
  kCollectFoldUs,        ///< collector: folding one ingest frame into a session
  kCount
};

inline constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kGaugeCount = static_cast<std::size_t>(Gauge::kCount);
inline constexpr std::size_t kHistogramCount =
    static_cast<std::size_t>(Histogram::kCount);
/// Buckets per histogram: 15 preregistered bounds + 1 overflow.
inline constexpr std::size_t kHistogramBuckets = 16;

/// Stable snake_case names (heartbeat JSON keys, tempest-top labels).
const char* counter_name(Counter c);
const char* gauge_name(Gauge g);
const char* histogram_name(Histogram h);
/// The 15 upper bounds of `h` (bucket i counts values <= bounds[i]).
const double* histogram_bounds(Histogram h);

// -- snapshot ----------------------------------------------------------

struct HistogramSnapshot {
  std::uint64_t buckets[kHistogramBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  ///< integer-rounded recorded values
  std::uint64_t max = 0;
  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

struct MetricsSnapshot {
  std::uint64_t counters[kCounterCount] = {};
  std::int64_t gauges[kGaugeCount] = {};
  HistogramSnapshot histograms[kHistogramCount] = {};

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  std::int64_t gauge(Gauge g) const { return gauges[static_cast<std::size_t>(g)]; }
  const HistogramSnapshot& histogram(Histogram h) const {
    return histograms[static_cast<std::size_t>(h)];
  }
};

/// One flat JSON object (no trailing newline): {"t":..., every counter,
/// every gauge, and <hist>_count/_mean/_max per histogram}. The
/// heartbeat file is lines of exactly this; tempest-top parses it back.
void write_snapshot_json(std::ostream& out, const MetricsSnapshot& snapshot,
                         double t_seconds);

/// Version of the heartbeat line schema. Bumped when a key changes
/// meaning; adding keys is not a version bump (readers scan by key and
/// tolerate absence).
inline constexpr std::uint64_t kHeartbeatSchemaVersion = 1;

/// As above, prefixed with `"schema_version"` and a monotonic `"seq"`
/// so stream consumers can tell dropped lines (seq gap) from sender
/// restarts (seq regression). Readers tolerate both keys being absent.
void write_snapshot_json(std::ostream& out, const MetricsSnapshot& snapshot,
                         double t_seconds, std::uint64_t seq);

/// Prometheus text exposition (format 0.0.4) of the same snapshot:
/// every counter/gauge under a `tempest_` prefix with TYPE comments,
/// each histogram as a native Prometheus histogram (cumulative
/// `_bucket{le=...}` series from the preregistered bounds plus `_sum`
/// and `_count`), and `tempest_uptime_seconds`. Serve it with
/// `Content-Type: text/plain; version=0.0.4; charset=utf-8`.
void write_snapshot_prometheus(std::ostream& out, const MetricsSnapshot& snapshot,
                               double t_seconds);

// -- registry ----------------------------------------------------------

class Metrics {
 public:
  /// Process-wide registry (leaked, like Session: hooks may record
  /// during static destruction).
  static Metrics& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  void add(Counter c, std::uint64_t delta = 1) {
    if (!enabled()) return;
    shard().counters[static_cast<std::size_t>(c)].fetch_add(
        delta, std::memory_order_relaxed);
  }

  void set(Gauge g, std::int64_t value) {
    if (!enabled()) return;
    gauges_[static_cast<std::size_t>(g)].store(value, std::memory_order_relaxed);
  }

  void record(Histogram h, double value);

  /// Fold all shards. Safe concurrently with recording.
  MetricsSnapshot snapshot() const;

  /// Zero everything (new session epoch). Call from the controlling
  /// thread; concurrent recorders may leak a few pre-reset increments
  /// into the new epoch, never corrupt state.
  void reset();

  /// Shards in the fixed pool (tests size their hammer against it).
  static constexpr std::size_t kShards = 64;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> counters[kCounterCount];
    std::atomic<std::uint64_t> hist_buckets[kHistogramCount][kHistogramBuckets];
    std::atomic<std::uint64_t> hist_count[kHistogramCount];
    std::atomic<std::uint64_t> hist_sum[kHistogramCount];
    std::atomic<std::uint64_t> hist_max[kHistogramCount];
  };

  Metrics();
  Shard& shard();

  Shard shards_[kShards];
  std::atomic<std::int64_t> gauges_[kGaugeCount];
  std::atomic<std::uint32_t> next_shard_{0};
  std::atomic<bool> enabled_{true};
};

// -- hot-path free functions (the API the rest of the tree uses) -------

inline Metrics& metrics() { return Metrics::instance(); }

inline void count(Counter c, std::uint64_t delta = 1) { metrics().add(c, delta); }
inline void gauge_set(Gauge g, std::int64_t value) { metrics().set(g, value); }
inline void observe(Histogram h, double value) { metrics().record(h, value); }

/// Process peak RSS in KiB from getrusage (0 where unsupported).
/// Cold-path: callers feed it into Gauge::kPeakRssKb at checkpoints.
std::int64_t read_peak_rss_kb();

}  // namespace tempest::telemetry
