#include "telemetry/metrics.hpp"

#include <cmath>
#include <ostream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/env.hpp"

namespace tempest::telemetry {
namespace {

const char* const kCounterNames[kCounterCount] = {
    "events_recorded",
    "events_dropped",
    "buffer_flushes",
    "threads_registered",
    "session_starts",
    "session_stops",
    "tempd_ticks",
    "tempd_missed_ticks",
    "tempd_samples",
    "tempd_read_errors",
    "sensor_reads",
    "sensor_read_failures",
    "pipeline_batches",
    "pipeline_fn_events",
    "pipeline_temp_samples",
    "heartbeats",
    "export_events_exported",
    "export_spans_dropped",
    "export_bytes_written",
    "events_suppressed",
    "events_throttled",
    "events_overwritten",
    "ring_snapshots",
    "stream_frames_sent",
    "stream_bytes_sent",
    "stream_send_failures",
    "collect_frames",
    "collect_bytes",
    "collect_events",
    "collect_samples",
    "collect_heartbeats",
    "collect_heartbeat_gaps",
    "collect_restarts",
    "collect_protocol_errors",
    "collect_disconnects",
    "collect_sessions_folded",
    "collect_sessions_aborted",
    "collect_http_requests",
    "collect_idle_timeouts",
};

const char* const kGaugeNames[kGaugeCount] = {
    "peak_rss_kb",
    "tempd_cpu_us",
    "active_threads",
    "sensor_temp_0_mc",
    "sensor_temp_1_mc",
    "sensor_temp_2_mc",
    "sensor_temp_3_mc",
    "sensor_temp_4_mc",
    "sensor_temp_5_mc",
    "sensor_temp_6_mc",
    "sensor_temp_7_mc",
    "collect_sessions_active",
    "collect_queue_frames",
};

const char* const kHistogramNames[kHistogramCount] = {
    "probe_cost_ns",
    "cadence_jitter_us",
    "tick_wall_us",
    "sensor_read_us",
    "stage_wall_us",
    "collect_fold_us",
};

// Nanosecond scale: covers a handful of instructions up to a pathological
// quarter millisecond.
constexpr double kNsBounds[kHistogramBuckets - 1] = {
    4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144};

// Microsecond scale: sub-tick latencies up to a quarter second (a 4 Hz
// period is 250000 us — the overflow bucket means "blew a whole period").
constexpr double kUsBounds[kHistogramBuckets - 1] = {
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000, 250000};

const double* const kHistogramBoundTable[kHistogramCount] = {
    kNsBounds,  // kProbeCostNs
    kUsBounds,  // kCadenceJitterUs
    kUsBounds,  // kTickWallUs
    kUsBounds,  // kSensorReadUs
    kUsBounds,  // kStageWallUs
    kUsBounds,  // kCollectFoldUs
};

std::size_t bucket_for(Histogram h, double value) {
  const double* bounds = kHistogramBoundTable[static_cast<std::size_t>(h)];
  for (std::size_t i = 0; i < kHistogramBuckets - 1; ++i) {
    if (value <= bounds[i]) return i;
  }
  return kHistogramBuckets - 1;
}

thread_local std::uint32_t tls_shard = UINT32_MAX;

}  // namespace

const char* counter_name(Counter c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}
const char* gauge_name(Gauge g) { return kGaugeNames[static_cast<std::size_t>(g)]; }
const char* histogram_name(Histogram h) {
  return kHistogramNames[static_cast<std::size_t>(h)];
}
const double* histogram_bounds(Histogram h) {
  return kHistogramBoundTable[static_cast<std::size_t>(h)];
}

Metrics::Metrics() {
  enabled_.store(env_bool("TEMPEST_TELEMETRY", true), std::memory_order_relaxed);
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  // Shard atomics zero-initialise via value construction of the arrays.
}

Metrics& Metrics::instance() {
  static Metrics* m = new Metrics();  // leaked: see header
  return *m;
}

Metrics::Shard& Metrics::shard() {
  std::uint32_t idx = tls_shard;
  if (idx == UINT32_MAX) {
    idx = next_shard_.fetch_add(1, std::memory_order_relaxed) % kShards;
    tls_shard = idx;
  }
  return shards_[idx];
}

void Metrics::record(Histogram h, double value) {
  if (!enabled()) return;
  if (!(value >= 0.0)) value = 0.0;  // NaN / negative: clamp, never UB
  Shard& s = shard();
  const std::size_t hi = static_cast<std::size_t>(h);
  const std::uint64_t v = static_cast<std::uint64_t>(std::llround(value));
  s.hist_buckets[hi][bucket_for(h, value)].fetch_add(1, std::memory_order_relaxed);
  s.hist_count[hi].fetch_add(1, std::memory_order_relaxed);
  s.hist_sum[hi].fetch_add(v, std::memory_order_relaxed);
  std::uint64_t prev = s.hist_max[hi].load(std::memory_order_relaxed);
  while (prev < v && !s.hist_max[hi].compare_exchange_weak(
                         prev, v, std::memory_order_relaxed)) {
  }
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot snap;
  for (const Shard& s : shards_) {
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      snap.counters[c] += s.counters[c].load(std::memory_order_relaxed);
    }
    for (std::size_t h = 0; h < kHistogramCount; ++h) {
      HistogramSnapshot& hs = snap.histograms[h];
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        hs.buckets[b] += s.hist_buckets[h][b].load(std::memory_order_relaxed);
      }
      hs.count += s.hist_count[h].load(std::memory_order_relaxed);
      hs.sum += s.hist_sum[h].load(std::memory_order_relaxed);
      hs.max = std::max(hs.max, s.hist_max[h].load(std::memory_order_relaxed));
    }
  }
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    snap.gauges[g] = gauges_[g].load(std::memory_order_relaxed);
  }
  return snap;
}

void Metrics::reset() {
  for (Shard& s : shards_) {
    for (auto& c : s.counters) c.store(0, std::memory_order_relaxed);
    for (auto& hb : s.hist_buckets) {
      for (auto& b : hb) b.store(0, std::memory_order_relaxed);
    }
    for (auto& c : s.hist_count) c.store(0, std::memory_order_relaxed);
    for (auto& c : s.hist_sum) c.store(0, std::memory_order_relaxed);
    for (auto& c : s.hist_max) c.store(0, std::memory_order_relaxed);
  }
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
}

std::int64_t read_peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(ru.ru_maxrss) / 1024;  // bytes on macOS
#else
  return static_cast<std::int64_t>(ru.ru_maxrss);  // KiB on Linux
#endif
#else
  return 0;
#endif
}

void write_snapshot_json(std::ostream& out, const MetricsSnapshot& snapshot,
                         double t_seconds, std::uint64_t seq) {
  out << "{\"t\":" << t_seconds << ",\"schema_version\":" << kHeartbeatSchemaVersion
      << ",\"seq\":" << seq;
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    out << ",\"" << kCounterNames[c] << "\":" << snapshot.counters[c];
  }
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    out << ",\"" << kGaugeNames[g] << "\":" << snapshot.gauges[g];
  }
  for (std::size_t h = 0; h < kHistogramCount; ++h) {
    const HistogramSnapshot& hs = snapshot.histograms[h];
    out << ",\"" << kHistogramNames[h] << "_count\":" << hs.count << ",\""
        << kHistogramNames[h] << "_mean\":" << hs.mean() << ",\""
        << kHistogramNames[h] << "_max\":" << hs.max;
  }
  out << "}";
}

void write_snapshot_prometheus(std::ostream& out, const MetricsSnapshot& snapshot,
                               double t_seconds) {
  out << "# TYPE tempest_uptime_seconds gauge\n"
      << "tempest_uptime_seconds " << t_seconds << "\n";
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    out << "# TYPE tempest_" << kCounterNames[c] << " counter\n"
        << "tempest_" << kCounterNames[c] << " " << snapshot.counters[c] << "\n";
  }
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    out << "# TYPE tempest_" << kGaugeNames[g] << " gauge\n"
        << "tempest_" << kGaugeNames[g] << " " << snapshot.gauges[g] << "\n";
  }
  for (std::size_t h = 0; h < kHistogramCount; ++h) {
    const HistogramSnapshot& hs = snapshot.histograms[h];
    const double* bounds = kHistogramBoundTable[h];
    out << "# TYPE tempest_" << kHistogramNames[h] << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistogramBuckets - 1; ++b) {
      cumulative += hs.buckets[b];
      out << "tempest_" << kHistogramNames[h] << "_bucket{le=\"" << bounds[b]
          << "\"} " << cumulative << "\n";
    }
    out << "tempest_" << kHistogramNames[h] << "_bucket{le=\"+Inf\"} "
        << hs.count << "\n";
    out << "tempest_" << kHistogramNames[h] << "_sum " << hs.sum << "\n";
    out << "tempest_" << kHistogramNames[h] << "_count " << hs.count << "\n";
  }
}

void write_snapshot_json(std::ostream& out, const MetricsSnapshot& snapshot,
                         double t_seconds) {
  out << "{\"t\":" << t_seconds;
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    out << ",\"" << kCounterNames[c] << "\":" << snapshot.counters[c];
  }
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    out << ",\"" << kGaugeNames[g] << "\":" << snapshot.gauges[g];
  }
  for (std::size_t h = 0; h < kHistogramCount; ++h) {
    const HistogramSnapshot& hs = snapshot.histograms[h];
    out << ",\"" << kHistogramNames[h] << "_count\":" << hs.count << ",\""
        << kHistogramNames[h] << "_mean\":" << hs.mean() << ",\""
        << kHistogramNames[h] << "_max\":" << hs.max;
  }
  out << "}";
}

}  // namespace tempest::telemetry
