// HeartbeatEmitter: periodic JSONL telemetry snapshots.
//
// A background thread appends one flat JSON object per period to
// `<trace>.telemetry.jsonl` — the live feed tempest-top tails, and a
// flight recorder for runs that die before RUNSTATS is written. One
// line is written immediately at start() and one at stop(), so even a
// very short run leaves at least two snapshots.
#pragma once

#include <atomic>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>

#include "common/status.hpp"

namespace tempest::telemetry {

class HeartbeatEmitter {
 public:
  HeartbeatEmitter() = default;
  ~HeartbeatEmitter() { stop(); }

  HeartbeatEmitter(const HeartbeatEmitter&) = delete;
  HeartbeatEmitter& operator=(const HeartbeatEmitter&) = delete;

  /// Truncate `path` and start appending a snapshot every `period_s`
  /// seconds. Error when already running or the file cannot be opened.
  Status start(const std::string& path, double period_s);

  /// Final snapshot, join, close. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& path() const { return path_; }

  /// The conventional heartbeat path for a trace output path.
  static std::string path_for_trace(const std::string& trace_path) {
    return trace_path + ".telemetry.jsonl";
  }

 private:
  void run(double period_s);
  void emit_snapshot();

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::string path_;
  std::ofstream out_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace tempest::telemetry
