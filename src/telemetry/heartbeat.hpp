// HeartbeatEmitter: periodic JSONL telemetry snapshots.
//
// A background thread appends one flat JSON object per period to
// `<trace>.telemetry.jsonl` — the live feed tempest-top tails, and a
// flight recorder for runs that die before RUNSTATS is written. One
// line is written immediately at start() and one at stop(), so even a
// very short run leaves at least two snapshots.
//
// Each line carries `"schema_version"` and a monotonic `"seq"` so a
// stream consumer (tempest-collectd) can tell dropped lines from
// emitter restarts; file readers tolerate both keys being absent in
// older files. Lines are flushed with a single write() each — a reader
// on the far end of a pipe or socket never observes a torn record,
// and a process killed mid-run never leaves a partially buffered final
// line (there is no userspace buffering to lose).
//
// Besides (or instead of) the file, an optional line sink receives
// every snapshot line — the TEMPEST_COLLECT transport forwards them to
// the collector daemon without re-reading the file.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.hpp"

namespace tempest::telemetry {

class HeartbeatEmitter {
 public:
  HeartbeatEmitter() = default;
  ~HeartbeatEmitter() { stop(); }

  HeartbeatEmitter(const HeartbeatEmitter&) = delete;
  HeartbeatEmitter& operator=(const HeartbeatEmitter&) = delete;

  /// Truncate `path` and start appending a snapshot every `period_s`
  /// seconds. An empty `path` emits to the line sink only. Error when
  /// already running, when the file cannot be opened, or when there is
  /// neither a path nor a sink.
  Status start(const std::string& path, double period_s);

  /// Final snapshot, join, close. Idempotent.
  void stop();

  /// Install (or clear, with nullptr) a per-line consumer. The sink is
  /// called on the emitter thread with the snapshot line (no trailing
  /// newline). Only while stopped.
  void set_line_sink(std::function<void(const std::string&)> sink) {
    if (!running()) sink_ = std::move(sink);
  }

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& path() const { return path_; }

  /// Sequence number of the last emitted line (1-based; 0 before the
  /// first line). Resets at every start().
  std::uint64_t seq() const { return seq_.load(std::memory_order_acquire); }

  /// The conventional heartbeat path for a trace output path.
  static std::string path_for_trace(const std::string& trace_path) {
    return trace_path + ".telemetry.jsonl";
  }

 private:
  void run(double period_s);
  void emit_snapshot();

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> seq_{0};
  std::string path_;
  int fd_ = -1;
  std::function<void(const std::string&)> sink_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace tempest::telemetry
