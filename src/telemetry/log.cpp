#include "telemetry/log.hpp"

#include <chrono>
#include <iostream>
#include <mutex>
#include <ostream>

#include "common/env.hpp"

namespace tempest::telemetry {
namespace {

using clock = std::chrono::steady_clock;

const clock::time_point g_start = clock::now();

double now_seconds() {
  return std::chrono::duration<double>(clock::now() - g_start).count();
}

LogLevel threshold_from_env() {
  const std::string v = env_string("TEMPEST_LOG", "warn");
  if (v == "off" || v == "none") return static_cast<LogLevel>(-1);
  if (v == "error") return LogLevel::kError;
  if (v == "info") return LogLevel::kInfo;
  if (v == "debug") return LogLevel::kDebug;
  return LogLevel::kWarn;
}

void write_logfmt(std::ostream& out, const LogEntry& e) {
  out << "tempest t=" << e.t_seconds << " level=" << log_level_name(e.level)
      << " comp=" << e.component << " msg=\"";
  for (const char c : e.message) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << "\"\n";
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

struct Logger::Impl {
  mutable std::mutex mu;
  LogEntry ring[kRingCapacity];
  std::uint64_t next = 0;  ///< total entries ever logged
  LogLevel threshold = LogLevel::kWarn;
  std::ostream* sink = nullptr;  ///< nullptr = stderr
};

Logger::Logger() : impl_(new Impl()) {
  impl_->threshold = threshold_from_env();
}

Logger& Logger::instance() {
  static Logger* logger = new Logger();  // leaked: usable in static dtors
  return *logger;
}

bool Logger::should_emit(LogLevel level) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return static_cast<int>(level) <= static_cast<int>(impl_->threshold);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message) {
  LogEntry entry;
  entry.t_seconds = now_seconds();
  entry.level = level;
  entry.component.assign(component);
  entry.message.assign(message);

  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->ring[impl_->next % kRingCapacity] = entry;
  ++impl_->next;
  if (static_cast<int>(level) <= static_cast<int>(impl_->threshold)) {
    std::ostream& out = impl_->sink != nullptr ? *impl_->sink : std::cerr;
    write_logfmt(out, entry);
  }
}

std::vector<LogEntry> Logger::ring() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<LogEntry> out;
  const std::uint64_t total = impl_->next;
  const std::uint64_t kept = total < kRingCapacity ? total : kRingCapacity;
  out.reserve(kept);
  for (std::uint64_t i = total - kept; i < total; ++i) {
    out.push_back(impl_->ring[i % kRingCapacity]);
  }
  return out;
}

void Logger::dump_ring(std::ostream& out) const {
  for (const LogEntry& e : ring()) write_logfmt(out, e);
}

std::uint64_t Logger::total_logged() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->next;
}

void Logger::set_threshold(LogLevel level) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->threshold = level;
}

void Logger::set_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->sink = sink;
}

}  // namespace tempest::telemetry
