// OverheadWatchdog: did we stay middle-weight?
//
// The paper budgets Tempest at < 1% sampler CPU and near-invisible
// probes. The watchdog turns that budget into a machine-checked
// post-condition: at session end it computes (a) tempd's CPU share of
// the run's wall time and (b) the probes' estimated share — self-
// measured mean probe cost times the number of recorded events — and
// reports whether either exceeded the budget. Opt-in (TEMPEST_WATCHDOG)
// it fails the session loudly instead of just logging.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace tempest::telemetry {

struct WatchdogReport {
  double budget_share = 0.01;        ///< the paper's < 1% budget
  double tempd_cpu_share = 0.0;      ///< tempd CPU seconds / wall seconds
  double probe_overhead_share = 0.0; ///< events x mean probe cost / wall
  bool tempd_over = false;
  bool probe_over = false;

  bool tripped() const { return tempd_over || probe_over; }

  /// One-line human summary, e.g.
  /// "tempd 0.04% of wall, probes ~0.31% (budget 1.00%): ok".
  std::string describe() const;
};

/// Evaluate the recorded run against `budget_share`. A run with no wall
/// time (or an absent RunStats) trivially passes — there is nothing to
/// measure, and the watchdog never invents a violation.
WatchdogReport evaluate_overhead(const trace::RunStats& stats,
                                 double budget_share = 0.01);

}  // namespace tempest::telemetry
