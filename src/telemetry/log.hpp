// Leveled structured logger with a bounded in-memory ring.
//
// The profiled process must never be chatty (it is someone else's
// program), so logging is opt-in by level: TEMPEST_LOG=error|warn|info|
// debug|off picks the stderr threshold (default warn). Every message —
// emitted or not — also lands in a fixed 256-entry ring, so a
// post-mortem (test, watchdog trip, debugger) can dump the recent
// history without the run having paid for stderr I/O.
//
// This is cold-path infrastructure: one mutex guards the ring and the
// stderr write. The instrumentation hot path never logs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace tempest::telemetry {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

const char* log_level_name(LogLevel level);

struct LogEntry {
  double t_seconds = 0.0;  ///< since process start (steady clock)
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
};

class Logger {
 public:
  /// Process-wide logger (leaked; threshold read from TEMPEST_LOG once).
  static Logger& instance();

  /// True when `level` passes the stderr threshold. Callers building
  /// expensive messages should gate on this — the ring still only keeps
  /// what is actually logged.
  bool should_emit(LogLevel level) const;

  void log(LogLevel level, std::string_view component, std::string_view message);

  /// Oldest-first copy of the ring (bounded at kRingCapacity).
  std::vector<LogEntry> ring() const;

  /// Dump the ring to a stream, one logfmt line per entry.
  void dump_ring(std::ostream& out) const;

  /// Messages ever logged (ring keeps only the last kRingCapacity).
  std::uint64_t total_logged() const;

  void set_threshold(LogLevel level);      ///< tests / tools
  void set_sink(std::ostream* sink);       ///< tests; nullptr = stderr

  static constexpr std::size_t kRingCapacity = 256;

 private:
  Logger();
  struct Impl;
  Impl* impl_;  ///< leaked with the singleton
};

inline void log_error(std::string_view component, std::string_view message) {
  Logger::instance().log(LogLevel::kError, component, message);
}
inline void log_warn(std::string_view component, std::string_view message) {
  Logger::instance().log(LogLevel::kWarn, component, message);
}
inline void log_info(std::string_view component, std::string_view message) {
  Logger::instance().log(LogLevel::kInfo, component, message);
}
inline void log_debug(std::string_view component, std::string_view message) {
  Logger::instance().log(LogLevel::kDebug, component, message);
}

}  // namespace tempest::telemetry
