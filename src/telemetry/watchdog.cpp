#include "telemetry/watchdog.hpp"

#include <cstdio>

namespace tempest::telemetry {

std::string WatchdogReport::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "tempd %.2f%% of wall, probes ~%.2f%% (budget %.2f%%): %s",
                tempd_cpu_share * 100.0, probe_overhead_share * 100.0,
                budget_share * 100.0,
                tripped() ? "OVER BUDGET" : "ok");
  return buf;
}

WatchdogReport evaluate_overhead(const trace::RunStats& stats,
                                 double budget_share) {
  WatchdogReport report;
  report.budget_share = budget_share;
  if (!stats.present || !(stats.wall_seconds > 0.0)) return report;

  report.tempd_cpu_share = stats.tempd_cpu_seconds / stats.wall_seconds;
  report.probe_overhead_share =
      static_cast<double>(stats.events_recorded) * stats.probe_cost_ns_mean /
      (stats.wall_seconds * 1e9);
  report.tempd_over = report.tempd_cpu_share > budget_share;
  report.probe_over = report.probe_overhead_share > budget_share;
  return report;
}

}  // namespace tempest::telemetry
