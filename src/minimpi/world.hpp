// Shared state of a message-passing world.
//
// The substrate under the NAS-like benchmarks: ranks are threads, and
// this object carries the mailboxes (matched by source/dest/tag, like
// MPI point-to-point semantics), the generation barrier, and the
// per-rank node/core placement. Sends are buffered (copy into the
// mailbox, never block), so symmetric exchange patterns cannot
// deadlock; receives block until a matching message arrives.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "simnode/node.hpp"

namespace minimpi {

/// Placement of one rank on the simulated cluster (nullptrs for runs
/// without a cluster — pure algorithm tests).
struct RankPlacement {
  tempest::simnode::SimNode* node = nullptr;
  std::uint16_t node_id = 0;
  std::uint16_t core = 0;
};

/// Interconnect model: messages become available to the receiver only
/// after latency + size/bandwidth. Defaults (0) deliver instantly —
/// pure algorithm tests. The FT/BT figure benches use GigE-era values
/// so communication-bound phases leave the receiving core genuinely
/// idle, as on the paper's cluster.
struct NetParams {
  double latency_s = 0.0;
  double bandwidth_bytes_per_s = 0.0;  ///< 0 = infinite
};

class World {
 public:
  explicit World(int nranks, NetParams net = {});

  int size() const { return nranks_; }

  /// Copy `bytes` into (src,dst,tag)'s mailbox and wake receivers.
  void post(int src, int dst, int tag, const void* data, std::size_t bytes)
      EXCLUDES(mu_);

  /// Block until a (src,dst,tag) message is available, then copy it
  /// out. Returns the message size; throws std::length_error when the
  /// buffer is too small (message truncation is a programming error).
  std::size_t take(int src, int dst, int tag, void* data, std::size_t capacity)
      EXCLUDES(mu_);

  /// Generation barrier over all ranks.
  void barrier() EXCLUDES(mu_);

  RankPlacement& placement(int rank) { return placements_.at(static_cast<std::size_t>(rank)); }

  /// Seconds since world construction (Comm::wtime).
  double elapsed_s() const;

  /// Message/byte counters (benchmark diagnostics).
  std::uint64_t messages_sent() const EXCLUDES(mu_);
  std::uint64_t bytes_sent() const EXCLUDES(mu_);

 private:
  using Key = std::tuple<int, int, int>;

  struct Message {
    std::vector<std::uint8_t> payload;
    std::uint64_t deliver_at_tsc = 0;
  };

  int nranks_;
  NetParams net_;
  std::vector<RankPlacement> placements_;

  mutable tempest::common::Mutex mu_;
  // _any: waits directly on the annotated Mutex (BasicLockable).
  std::condition_variable_any cv_;
  std::map<Key, std::deque<Message>> mailboxes_ GUARDED_BY(mu_);
  /// Per-dst ingress occupancy.
  std::map<int, std::uint64_t> link_free_at_ GUARDED_BY(mu_);

  int barrier_waiting_ GUARDED_BY(mu_) = 0;
  std::uint64_t barrier_generation_ GUARDED_BY(mu_) = 0;

  std::uint64_t messages_ GUARDED_BY(mu_) = 0;
  std::uint64_t bytes_ GUARDED_BY(mu_) = 0;
  std::uint64_t start_tsc_ = 0;
};

}  // namespace minimpi
