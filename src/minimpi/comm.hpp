// Per-rank communicator.
//
// The MPI-flavoured API the NAS-like benchmarks are written against:
// blocking point-to-point with tags plus the collectives the suite
// needs (barrier, bcast, reduce/allreduce, alltoall, allgather).
// Every blocking wait is wrapped in an IdleScope on the rank's core, so
// communication-bound phases genuinely cool the simulated die — the
// effect behind the paper's FT observations.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "minimpi/world.hpp"

namespace minimpi {

class Comm {
 public:
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_->size(); }
  double wtime() const { return world_->elapsed_s(); }
  World& world() { return *world_; }

  // -- point-to-point ----------------------------------------------------

  /// Buffered send: copies and returns immediately.
  void send(int dest, int tag, const void* data, std::size_t bytes);

  /// Blocking receive of exactly `bytes` (mismatch throws).
  void recv(int src, int tag, void* data, std::size_t bytes);

  template <typename T>
  void send_n(int dest, int tag, const T* data, std::size_t count) {
    send(dest, tag, data, count * sizeof(T));
  }
  template <typename T>
  void recv_n(int src, int tag, T* data, std::size_t count) {
    recv(src, tag, data, count * sizeof(T));
  }

  /// Symmetric exchange (send to `peer`, receive from `peer`).
  template <typename T>
  void sendrecv(int peer, int tag, const T* send_buf, T* recv_buf, std::size_t count) {
    send_n(peer, tag, send_buf, count);
    recv_n(peer, tag, recv_buf, count);
  }

  // -- collectives ---------------------------------------------------------
  // All ranks must call each collective in the same order (MPI rule);
  // internal tags are sequenced per rank to keep rounds separate.

  void barrier();
  void bcast(void* data, std::size_t bytes, int root);

  void reduce_sum(const double* in, double* out, std::size_t n, int root);
  void allreduce_sum(const double* in, double* out, std::size_t n);
  void allreduce_sum_inplace(double* data, std::size_t n);
  double allreduce_max(double value);

  /// Each rank contributes `block` elements per destination; receives
  /// `block` elements from each source (MPI_Alltoall).
  template <typename T>
  void alltoall(const T* send_buf, T* recv_buf, std::size_t block) {
    alltoall_bytes(send_buf, recv_buf, block * sizeof(T));
  }

  /// Gather equal-size contributions from all ranks to all ranks.
  template <typename T>
  void allgather(const T* send_buf, T* recv_buf, std::size_t count) {
    allgather_bytes(send_buf, recv_buf, count * sizeof(T));
  }

  /// Variable-size all-to-all (MPI_Alltoallv): rank r receives
  /// recv_counts[s] elements from each source s, packed contiguously in
  /// source order; sends send_counts[d] to each destination d from a
  /// contiguous send buffer in destination order. Counts are in
  /// elements; both sides must agree (exchange counts with alltoall
  /// first, as the NAS IS benchmark does).
  template <typename T>
  void alltoallv(const T* send_buf, const std::size_t* send_counts, T* recv_buf,
                 const std::size_t* recv_counts) {
    const int tag = next_collective_tag();
    std::size_t send_offset = 0;
    for (int r = 0; r < size(); ++r) {
      if (r != rank_) {
        send(r, tag, send_buf + send_offset, send_counts[r] * sizeof(T));
      }
      send_offset += send_counts[r];
    }
    std::size_t recv_offset = 0;
    std::size_t self_send_offset = 0;
    for (int r = 0; r < rank_; ++r) self_send_offset += send_counts[r];
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) {
        std::copy(send_buf + self_send_offset,
                  send_buf + self_send_offset + send_counts[rank_],
                  recv_buf + recv_offset);
      } else {
        recv(r, tag, recv_buf + recv_offset, recv_counts[r] * sizeof(T));
      }
      recv_offset += recv_counts[r];
    }
  }

 private:
  void alltoall_bytes(const void* send_buf, void* recv_buf, std::size_t block_bytes);
  void allgather_bytes(const void* send_buf, void* recv_buf, std::size_t bytes);
  int next_collective_tag() { return kCollectiveTagBase + (collective_seq_++ & 0xFFFF); }

  static constexpr int kCollectiveTagBase = 1 << 24;

  World* world_;
  int rank_;
  std::uint32_t collective_seq_ = 0;
};

}  // namespace minimpi
