#include "minimpi/comm.hpp"

#include <algorithm>
#include <cstring>

#include "common/tsc.hpp"
#include "simnode/activity.hpp"

namespace minimpi {
namespace {

/// Marks the rank's core idle for the duration of a blocking wait when
/// the rank is placed on a simulated node; no-op otherwise.
class WaitGuard {
 public:
  explicit WaitGuard(RankPlacement& placement) {
    if (placement.node != nullptr) {
      meter_ = &placement.node->core_meter(placement.core);
      meter_->set_idle(tempest::rdtsc());
    }
  }
  ~WaitGuard() {
    if (meter_ != nullptr) meter_->set_busy(tempest::rdtsc());
  }
  WaitGuard(const WaitGuard&) = delete;
  WaitGuard& operator=(const WaitGuard&) = delete;

 private:
  tempest::simnode::ActivityMeter* meter_ = nullptr;
};

}  // namespace

void Comm::send(int dest, int tag, const void* data, std::size_t bytes) {
  if (dest < 0 || dest >= size()) throw std::out_of_range("send: bad destination rank");
  world_->post(rank_, dest, tag, data, bytes);
}

void Comm::recv(int src, int tag, void* data, std::size_t bytes) {
  if (src < 0 || src >= size()) throw std::out_of_range("recv: bad source rank");
  WaitGuard idle(world_->placement(rank_));
  const std::size_t got = world_->take(src, rank_, tag, data, bytes);
  if (got != bytes) {
    throw std::length_error("recv: message size mismatch (protocol error)");
  }
}

void Comm::barrier() {
  WaitGuard idle(world_->placement(rank_));
  world_->barrier();
}

void Comm::bcast(void* data, std::size_t bytes, int root) {
  const int tag = next_collective_tag();
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, tag, data, bytes);
    }
  } else {
    recv(root, tag, data, bytes);
  }
}

void Comm::reduce_sum(const double* in, double* out, std::size_t n, int root) {
  const int tag = next_collective_tag();
  if (rank_ == root) {
    std::copy(in, in + n, out);
    std::vector<double> tmp(n);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv_n(r, tag, tmp.data(), n);
      for (std::size_t i = 0; i < n; ++i) out[i] += tmp[i];
    }
  } else {
    send_n(root, tag, in, n);
    if (out != in) std::fill(out, out + n, 0.0);
  }
}

void Comm::allreduce_sum(const double* in, double* out, std::size_t n) {
  reduce_sum(in, out, n, 0);
  bcast(out, n * sizeof(double), 0);
}

void Comm::allreduce_sum_inplace(double* data, std::size_t n) {
  std::vector<double> in(data, data + n);
  allreduce_sum(in.data(), data, n);
}

double Comm::allreduce_max(double value) {
  const int tag = next_collective_tag();
  if (rank_ == 0) {
    double result = value;
    double tmp = 0.0;
    for (int r = 1; r < size(); ++r) {
      recv_n(r, tag, &tmp, 1);
      result = std::max(result, tmp);
    }
    value = result;
  } else {
    send_n(0, tag, &value, 1);
  }
  bcast(&value, sizeof(double), 0);
  return value;
}

void Comm::alltoall_bytes(const void* send_buf, void* recv_buf, std::size_t block_bytes) {
  const int tag = next_collective_tag();
  const auto* src = static_cast<const std::uint8_t*>(send_buf);
  auto* dst = static_cast<std::uint8_t*>(recv_buf);
  // Post all sends first (buffered, non-blocking), then drain receives;
  // the self-block is a straight copy.
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    send(r, tag, src + static_cast<std::size_t>(r) * block_bytes, block_bytes);
  }
  std::memcpy(dst + static_cast<std::size_t>(rank_) * block_bytes,
              src + static_cast<std::size_t>(rank_) * block_bytes, block_bytes);
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    recv(r, tag, dst + static_cast<std::size_t>(r) * block_bytes, block_bytes);
  }
}

void Comm::allgather_bytes(const void* send_buf, void* recv_buf, std::size_t bytes) {
  const int tag = next_collective_tag();
  auto* dst = static_cast<std::uint8_t*>(recv_buf);
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    send(r, tag, send_buf, bytes);
  }
  std::memcpy(dst + static_cast<std::size_t>(rank_) * bytes, send_buf, bytes);
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    recv(r, tag, dst + static_cast<std::size_t>(r) * bytes, bytes);
  }
}

}  // namespace minimpi
