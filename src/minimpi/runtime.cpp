#include "minimpi/runtime.hpp"

#include <exception>
#include <thread>
#include <vector>

#include "common/tsc.hpp"
#include "core/session.hpp"

namespace minimpi {

void run(int nranks, const RankFn& fn, const RunOptions& options) {
  World world(nranks, options.net);

  if (options.cluster != nullptr) {
    const std::size_t nodes = options.cluster->size();
    for (int r = 0; r < nranks; ++r) {
      const std::size_t node_index = static_cast<std::size_t>(r) % nodes;
      auto& node = options.cluster->node(node_index);
      RankPlacement& placement = world.placement(r);
      placement.node = &node;
      placement.node_id = static_cast<std::uint16_t>(node_index);
      placement.core = static_cast<std::uint16_t>(
          (static_cast<std::size_t>(r) / nodes) % node.core_count());
    }
  }

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  threads.reserve(static_cast<std::size_t>(nranks));

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      RankPlacement& placement = world.placement(r);
      if (placement.node != nullptr) {
        if (options.attach_to_session) {
          (void)tempest::core::Session::instance().attach_current_thread(
              placement.node_id, placement.core);
        }
        placement.node->core_meter(placement.core).set_busy(tempest::rdtsc());
      }
      try {
        Comm comm(&world, r);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
      if (placement.node != nullptr) {
        placement.node->core_meter(placement.core).set_idle(tempest::rdtsc());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace minimpi
