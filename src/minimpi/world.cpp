#include "minimpi/world.hpp"

#include <chrono>
#include <cstring>
#include <thread>
#include <stdexcept>

#include "common/tsc.hpp"

namespace minimpi {

World::World(int nranks, NetParams net)
    : nranks_(nranks), net_(net), placements_(static_cast<std::size_t>(nranks)) {
  if (nranks <= 0) throw std::invalid_argument("world needs >= 1 rank");
  start_tsc_ = tempest::rdtsc();
}

void World::post(int src, int dst, int tag, const void* data, std::size_t bytes) {
  Message msg;
  msg.payload.resize(bytes);
  if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);
  {
    tempest::common::MutexLock lock(&mu_);
    if (net_.latency_s > 0.0 || net_.bandwidth_bytes_per_s > 0.0) {
      // Ingress-link model: each receiver's NIC drains one transfer at
      // a time, so concurrent senders to the same destination serialise
      // (the congestion that makes a real all-to-all expensive).
      // Latency is propagation on top of the link occupancy.
      const std::uint64_t now = tempest::rdtsc();
      std::uint64_t start = std::max(now, link_free_at_[dst]);
      std::uint64_t occupancy = 0;
      if (net_.bandwidth_bytes_per_s > 0.0) {
        occupancy = tempest::seconds_to_tsc(static_cast<double>(bytes) /
                                            net_.bandwidth_bytes_per_s);
      }
      link_free_at_[dst] = start + occupancy;
      msg.deliver_at_tsc =
          start + occupancy + tempest::seconds_to_tsc(net_.latency_s);
    }
    mailboxes_[{src, dst, tag}].push_back(std::move(msg));
    ++messages_;
    bytes_ += bytes;
  }
  cv_.notify_all();
}

std::size_t World::take(int src, int dst, int tag, void* data, std::size_t capacity) {
  Message msg;
  {
    tempest::common::MutexLock lock(&mu_);
    const Key key{src, dst, tag};
    // Explicit wait loop (not the predicate overload): the predicate
    // would be a separate lambda to the thread-safety analysis and
    // could not see that mu_ is held.
    auto it = mailboxes_.find(key);
    while (it == mailboxes_.end() || it->second.empty()) {
      cv_.wait(mu_);
      it = mailboxes_.find(key);
    }
    msg = std::move(it->second.front());
    it->second.pop_front();
  }

  // Model the wire: the payload is not available before its delivery
  // time, so the receiver keeps blocking (idle) until then.
  while (msg.deliver_at_tsc != 0 && tempest::rdtsc() < msg.deliver_at_tsc) {
    const double remaining =
        tempest::tsc_to_seconds(msg.deliver_at_tsc - tempest::rdtsc());
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::min(remaining, 0.001)));
  }

  if (msg.payload.size() > capacity) {
    throw std::length_error("minimpi: receive buffer smaller than message");
  }
  if (!msg.payload.empty()) std::memcpy(data, msg.payload.data(), msg.payload.size());
  return msg.payload.size();
}

void World::barrier() {
  tempest::common::MutexLock lock(&mu_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_waiting_ == nranks_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    cv_.notify_all();
    return;
  }
  while (barrier_generation_ == my_generation) cv_.wait(mu_);
}

double World::elapsed_s() const {
  return tempest::tsc_to_seconds(tempest::rdtsc() - start_tsc_);
}

std::uint64_t World::messages_sent() const {
  tempest::common::MutexLock lock(&mu_);
  return messages_;
}

std::uint64_t World::bytes_sent() const {
  tempest::common::MutexLock lock(&mu_);
  return bytes_;
}

}  // namespace minimpi
