// Rank launcher.
//
// run() spawns one thread per rank, places ranks round-robin across the
// simulated cluster's nodes (rank i -> node i % N, core (i / N) % cores
// — one rank per node for NP == cluster size, the paper's NP=4 setup),
// attaches each rank thread to the Tempest session (node clock + id for
// its trace events), and marks cores busy/idle around the rank body.
// Exceptions thrown by rank functions are captured and rethrown on the
// launching thread after all ranks join.
#pragma once

#include <functional>

#include "minimpi/comm.hpp"
#include "simnode/cluster.hpp"

namespace minimpi {

using RankFn = std::function<void(Comm&)>;

struct RunOptions {
  /// Place ranks on this cluster and meter their activity; null runs
  /// ranks unplaced (pure algorithm tests).
  tempest::simnode::Cluster* cluster = nullptr;
  /// Attach rank threads to the active Tempest session. Node ids must
  /// match the order nodes were registered with the session (register
  /// cluster nodes 0..N-1 in order).
  bool attach_to_session = true;
  /// Interconnect model (latency/bandwidth); defaults to instant.
  NetParams net;
};

/// GigE-era cluster interconnect, as on the paper's 2007 testbed.
inline NetParams gige_network() { return {50e-6, 110e6}; }

/// Run `fn` on `nranks` ranks and block until all complete.
void run(int nranks, const RankFn& fn, const RunOptions& options = {});

}  // namespace minimpi
