// Lumped-parameter RC thermal network.
//
// This is the compact-model core of the simulated-sensor substrate: the
// same modelling family as HotSpot (the heavy-weight tool the paper
// positions itself against), but deliberately small — a handful of nodes
// per CPU package (die per core, heat spreader, heatsink) coupled to an
// ambient reservoir. Heat flow between nodes i,j with conductance G_ij:
//
//   C_i dT_i/dt = P_i + sum_j G_ij (T_j - T_i) + G_i,amb (T_amb - T_i)
//
// advanced with RK4 using automatic sub-stepping bounded by the stiffest
// node time constant.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tempest::thermal {

class RcNetwork {
 public:
  /// Add a thermal node; returns its index. capacitance in J/K.
  std::size_t add_node(std::string name, double capacitance_j_per_k,
                       double initial_temp_c);

  /// Symmetric conductance [W/K] between two nodes (additive on repeat).
  void connect(std::size_t a, std::size_t b, double conductance_w_per_k);

  /// Conductance from a node to the ambient reservoir.
  void connect_ambient(std::size_t node, double conductance_w_per_k);

  /// Replace (not add to) a node's ambient conductance — used by the fan
  /// model when RPM changes.
  void set_ambient_conductance(std::size_t node, double conductance_w_per_k);

  void set_ambient_temp(double celsius) { ambient_c_ = celsius; }
  double ambient_temp() const { return ambient_c_; }

  /// Heat injected into a node [W]; persists until changed.
  void set_power(std::size_t node, double watts);

  /// Integrate the network forward by dt seconds (RK4, sub-stepped).
  void advance(double dt_seconds);

  /// Jump the whole network to its steady state for the current power
  /// vector (fixed-point iteration; used for warm starts and tests).
  void settle();

  double temperature(std::size_t node) const { return temps_.at(node); }
  void set_temperature(std::size_t node, double celsius) { temps_.at(node) = celsius; }
  std::size_t node_count() const { return temps_.size(); }
  const std::string& node_name(std::size_t node) const { return names_.at(node); }
  /// Index of a node by name; throws std::out_of_range when absent.
  std::size_t node_index(const std::string& name) const;

 private:
  struct Edge {
    std::size_t a;
    std::size_t b;
    double g;
  };

  void derivatives(const std::vector<double>& temps, std::vector<double>* out) const;
  double max_stable_step() const;

  std::vector<std::string> names_;
  std::vector<double> caps_;
  std::vector<double> temps_;
  std::vector<double> powers_;
  std::vector<double> g_ambient_;
  std::vector<Edge> edges_;
  double ambient_c_ = 25.0;
};

}  // namespace tempest::thermal
