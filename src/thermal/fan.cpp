#include "thermal/fan.hpp"

namespace tempest::thermal {

void Fan::set_fixed_rpm(double rpm) {
  auto_mode_ = false;
  rpm_ = std::clamp(rpm, params_.min_rpm, params_.max_rpm);
}

void Fan::regulate(double sink_temp_c) {
  if (!auto_mode_) return;
  const double error = sink_temp_c - params_.auto_target_c;
  const double target = params_.min_rpm + params_.auto_gain_rpm_per_k * std::max(0.0, error);
  rpm_ = std::clamp(target, params_.min_rpm, params_.max_rpm);
}

double Fan::conductance_w_per_k() const {
  return params_.g_still_air + params_.g_per_krpm * (rpm_ / 1000.0);
}

}  // namespace tempest::thermal
