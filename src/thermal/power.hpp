// CPU power model.
//
// The thermal network is driven by per-core power. We use the classic
// decomposition P = P_idle + u * C_eff * V^2 * f (utilisation-scaled
// dynamic power plus static/leakage power), which is the same family of
// model the event-driven thermal literature the paper cites (Bellosa et
// al.) fits empirically. DVFS changes (f, V) through a P-state table.
#pragma once

#include <cstddef>
#include <vector>

namespace tempest::thermal {

/// One DVFS operating point.
struct PState {
  double freq_ghz = 1.8;
  double volts = 1.35;
};

/// Ordered highest-performance-first list of operating points.
class PStateTable {
 public:
  PStateTable() : states_{{1.8, 1.35}, {1.4, 1.20}, {1.0, 1.10}} {}
  explicit PStateTable(std::vector<PState> states);

  std::size_t size() const { return states_.size(); }
  const PState& at(std::size_t i) const { return states_.at(i); }
  /// Relative performance of state i vs state 0 (frequency ratio).
  double speed_factor(std::size_t i) const;

 private:
  std::vector<PState> states_;
};

/// Per-core power parameters. Defaults are tuned jointly with the
/// CpuPackage conductances so a 2-core package idles near 34 C (93 F)
/// and saturates near 51 C (124 F) — the paper's Figure 2 range.
struct PowerParams {
  double idle_watts = 4.2;       ///< leakage + uncore share, always drawn
  double c_eff = 2.7;            ///< effective capacitance [W / (GHz * V^2)]
};

/// Computes core power from utilisation and the active P-state.
class PowerModel {
 public:
  PowerModel() = default;
  PowerModel(PowerParams params, PStateTable table)
      : params_(params), table_(std::move(table)) {}

  /// Instantaneous power [W] at utilisation u in [0,1] and P-state index.
  double watts(double utilization, std::size_t pstate) const;

  double idle_watts() const { return params_.idle_watts; }
  double busy_watts(std::size_t pstate) const { return watts(1.0, pstate); }
  const PStateTable& pstates() const { return table_; }

 private:
  PowerParams params_;
  PStateTable table_;
};

}  // namespace tempest::thermal
