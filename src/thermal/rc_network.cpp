#include "thermal/rc_network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tempest::thermal {

std::size_t RcNetwork::add_node(std::string name, double capacitance_j_per_k,
                                double initial_temp_c) {
  if (capacitance_j_per_k <= 0.0) {
    throw std::invalid_argument("thermal capacitance must be positive: " + name);
  }
  names_.push_back(std::move(name));
  caps_.push_back(capacitance_j_per_k);
  temps_.push_back(initial_temp_c);
  powers_.push_back(0.0);
  g_ambient_.push_back(0.0);
  return temps_.size() - 1;
}

void RcNetwork::connect(std::size_t a, std::size_t b, double conductance_w_per_k) {
  if (a >= temps_.size() || b >= temps_.size() || a == b) {
    throw std::out_of_range("RcNetwork::connect: bad node pair");
  }
  if (conductance_w_per_k < 0.0) throw std::invalid_argument("negative conductance");
  edges_.push_back({a, b, conductance_w_per_k});
}

void RcNetwork::connect_ambient(std::size_t node, double conductance_w_per_k) {
  if (conductance_w_per_k < 0.0) throw std::invalid_argument("negative conductance");
  g_ambient_.at(node) += conductance_w_per_k;
}

void RcNetwork::set_ambient_conductance(std::size_t node, double conductance_w_per_k) {
  if (conductance_w_per_k < 0.0) throw std::invalid_argument("negative conductance");
  g_ambient_.at(node) = conductance_w_per_k;
}

void RcNetwork::set_power(std::size_t node, double watts) { powers_.at(node) = watts; }

std::size_t RcNetwork::node_index(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  throw std::out_of_range("RcNetwork: no node named " + name);
}

void RcNetwork::derivatives(const std::vector<double>& temps,
                            std::vector<double>* out) const {
  const std::size_t n = temps.size();
  out->assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    (*out)[i] = powers_[i] + g_ambient_[i] * (ambient_c_ - temps[i]);
  }
  for (const Edge& e : edges_) {
    const double flow = e.g * (temps[e.b] - temps[e.a]);
    (*out)[e.a] += flow;
    (*out)[e.b] -= flow;
  }
  for (std::size_t i = 0; i < n; ++i) (*out)[i] /= caps_[i];
}

double RcNetwork::max_stable_step() const {
  // RK4 stays accurate well below the smallest node time constant
  // tau_i = C_i / (sum of conductances touching i); use tau_min / 4.
  double tau_min = 1e9;
  std::vector<double> g_total(g_ambient_);
  for (const Edge& e : edges_) {
    g_total[e.a] += e.g;
    g_total[e.b] += e.g;
  }
  for (std::size_t i = 0; i < caps_.size(); ++i) {
    if (g_total[i] > 0.0) tau_min = std::min(tau_min, caps_[i] / g_total[i]);
  }
  return tau_min / 4.0;
}

void RcNetwork::advance(double dt_seconds) {
  if (dt_seconds <= 0.0 || temps_.empty()) return;
  const double h_max = max_stable_step();
  const std::size_t steps = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(dt_seconds / h_max)));
  const double h = dt_seconds / static_cast<double>(steps);

  const std::size_t n = temps_.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
  for (std::size_t s = 0; s < steps; ++s) {
    derivatives(temps_, &k1);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = temps_[i] + 0.5 * h * k1[i];
    derivatives(tmp, &k2);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = temps_[i] + 0.5 * h * k2[i];
    derivatives(tmp, &k3);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = temps_[i] + h * k3[i];
    derivatives(tmp, &k4);
    for (std::size_t i = 0; i < n; ++i) {
      temps_[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
  }
}

void RcNetwork::settle() {
  // Gauss-Seidel on the steady-state balance equations; the network is
  // diagonally dominant (every node couples to ambient directly or
  // through the tree), so this converges quickly.
  const std::size_t n = temps_.size();
  for (int iter = 0; iter < 10'000; ++iter) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double g_sum = g_ambient_[i];
      double flow = powers_[i] + g_ambient_[i] * ambient_c_;
      for (const Edge& e : edges_) {
        if (e.a == i) {
          g_sum += e.g;
          flow += e.g * temps_[e.b];
        } else if (e.b == i) {
          g_sum += e.g;
          flow += e.g * temps_[e.a];
        }
      }
      if (g_sum <= 0.0) continue;  // isolated node holds its temperature
      const double next = flow / g_sum;
      max_delta = std::max(max_delta, std::fabs(next - temps_[i]));
      temps_[i] = next;
    }
    if (max_delta < 1e-9) break;
  }
}

}  // namespace tempest::thermal
