// A CPU package assembled from the RC network + power + fan + DVFS parts.
//
// Layout per socket: one die node per core -> shared heat spreader ->
// heatsink -> ambient through the fan; a chassis-air node couples the
// sink to the board sensors. Parameters default to values that put an
// idle die near 34 C (93-94 F) and a fully busy die near 51 C (124 F)
// with the fan pinned at 3000 RPM — the operating range visible in the
// paper's Figure 2 and Tables 2/3.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "thermal/dvfs.hpp"
#include "thermal/fan.hpp"
#include "thermal/power.hpp"
#include "thermal/rc_network.hpp"

namespace tempest::thermal {

struct PackageParams {
  std::size_t cores = 2;
  double ambient_c = 26.0;

  double die_cap_j_per_k = 2.0;
  double spreader_cap_j_per_k = 20.0;
  double sink_cap_j_per_k = 120.0;
  double chassis_cap_j_per_k = 400.0;

  double g_die_spreader = 3.0;   ///< per core [W/K]
  double g_spreader_sink = 4.0;  ///< [W/K]
  double g_chassis_sink = 0.5;   ///< sink warms the chassis air slightly
  double g_chassis_ambient = 2.0;

  PowerParams power;
  FanParams fan;
  GovernorParams governor;

  /// Compresses thermal time constants so dynamics that took a minute on
  /// the paper's hardware appear within a seconds-long run; implemented
  /// by dividing all capacitances by this factor.
  double time_scale = 1.0;
};

class CpuPackage {
 public:
  explicit CpuPackage(PackageParams params);

  /// Advance by dt wall seconds given per-core utilisations in [0,1].
  /// Applies power, fan regulation, and the DVFS governor.
  void advance(double dt_seconds, const std::vector<double>& core_utilization);

  /// Start from the steady state of the given utilisation (typically 0).
  void settle_at(const std::vector<double>& core_utilization);

  std::size_t core_count() const { return params_.cores; }
  double die_temp(std::size_t core) const;
  double hottest_die_temp() const;
  double spreader_temp() const { return net_.temperature(spreader_); }
  double sink_temp() const { return net_.temperature(sink_); }
  double chassis_temp() const { return net_.temperature(chassis_); }
  double ambient_temp() const { return net_.ambient_temp(); }

  RcNetwork& network() { return net_; }
  const RcNetwork& network() const { return net_; }
  Fan& fan() { return fan_; }
  DvfsGovernor& governor() { return governor_; }
  const PowerModel& power_model() const { return power_; }
  const PackageParams& params() const { return params_; }

  /// Performance multiplier of the current P-state (1.0 at full speed);
  /// workloads use this to stretch compute when throttled.
  double speed_factor() const { return power_.pstates().speed_factor(governor_.current_pstate()); }

  /// Network node names ("core0.die", "spreader", "sink", "chassis"),
  /// for sensor placement.
  static std::string die_node_name(std::size_t core);

 private:
  PackageParams params_;
  RcNetwork net_;
  PowerModel power_;
  Fan fan_;
  DvfsGovernor governor_;
  std::vector<std::size_t> die_nodes_;
  std::size_t spreader_ = 0;
  std::size_t sink_ = 0;
  std::size_t chassis_ = 0;
};

}  // namespace tempest::thermal
