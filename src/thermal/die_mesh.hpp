// HotSpot-style fine-grained die mesh — the heavy-weight comparator.
//
// The paper positions Tempest between light-weight sensor polling and
// heavy-weight thermal simulators (HotSpot, Mercury): "heavy-weight
// tools provide detail at the expense of speed". This module implements
// a compact version of that heavy end — a W x H RC mesh across the die
// with lateral conduction, per-cell power injection from a functional-
// unit floorplan, and vertical paths through spreader and sink — so the
// repository can quantify the trade-off the paper argues from:
// per-cell hot-spot detail vs orders-of-magnitude more state and work
// per step than the per-core compact model (bench_heavyweight).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "thermal/rc_network.hpp"

namespace tempest::thermal {

/// A rectangular functional unit on the floorplan, in cell coordinates.
struct FloorplanUnit {
  std::string name;     ///< e.g. "FPU", "ALU", "L2"
  int x0 = 0, y0 = 0;   ///< inclusive corner
  int x1 = 0, y1 = 0;   ///< inclusive corner
};

struct DieMeshParams {
  int width = 8, height = 8;           ///< mesh resolution
  double die_cap_j_per_k = 2.0;        ///< total die capacitance, split per cell
  double lateral_g_w_per_k = 12.0;     ///< total lateral conductance scale
  double vertical_g_w_per_k = 3.0;     ///< total die->spreader conductance
  double spreader_cap_j_per_k = 20.0;
  double sink_cap_j_per_k = 120.0;
  double g_spreader_sink = 4.0;
  double g_sink_ambient = 1.5;
  double ambient_c = 26.0;
  std::vector<FloorplanUnit> floorplan;  ///< empty = uniform power
};

/// A standard two-core floorplan: per-core ALU/FPU columns over a
/// shared L2 row.
std::vector<FloorplanUnit> default_floorplan(int width, int height);

class DieMesh {
 public:
  explicit DieMesh(DieMeshParams params);

  /// Set each functional unit's power [W]; unlisted units idle at 0.
  /// Power spreads uniformly over the unit's cells.
  void set_unit_power(const std::string& unit, double watts);

  /// Integrate forward by dt seconds.
  void advance(double dt_seconds);
  /// Jump to the steady state of the current power map.
  void settle();

  double cell_temp(int x, int y) const;
  double hottest_cell() const;
  double coolest_cell() const;
  double mean_die_temp() const;
  double spreader_temp() const { return net_.temperature(spreader_); }

  /// Location of the hottest cell (for hot-spot localisation tests).
  std::pair<int, int> hottest_xy() const;

  const DieMeshParams& params() const { return params_; }
  std::size_t state_size() const { return net_.node_count(); }

 private:
  std::size_t cell_index(int x, int y) const {
    return cells_[static_cast<std::size_t>(y * params_.width + x)];
  }

  DieMeshParams params_;
  RcNetwork net_;
  std::vector<std::size_t> cells_;
  std::size_t spreader_ = 0;
  std::size_t sink_ = 0;
};

}  // namespace tempest::thermal
