#include "thermal/die_mesh.hpp"

#include <stdexcept>

namespace tempest::thermal {

std::vector<FloorplanUnit> default_floorplan(int width, int height) {
  // Bottom band: shared L2. Upper region split into two cores, each
  // with an ALU (inner) and FPU (outer) column block.
  const int l2_top = height / 4;
  const int mid = width / 2;
  std::vector<FloorplanUnit> plan;
  plan.push_back({"L2", 0, 0, width - 1, l2_top - 1});
  plan.push_back({"core0.ALU", 0, l2_top, mid / 2 - 1, height - 1});
  plan.push_back({"core0.FPU", mid / 2, l2_top, mid - 1, height - 1});
  plan.push_back({"core1.ALU", mid, l2_top, mid + mid / 2 - 1, height - 1});
  plan.push_back({"core1.FPU", mid + mid / 2, l2_top, width - 1, height - 1});
  return plan;
}

DieMesh::DieMesh(DieMeshParams params) : params_(std::move(params)) {
  if (params_.width < 2 || params_.height < 2) {
    throw std::invalid_argument("die mesh needs at least 2x2 cells");
  }
  if (params_.floorplan.empty()) {
    params_.floorplan = default_floorplan(params_.width, params_.height);
  }
  for (const auto& unit : params_.floorplan) {
    if (unit.x0 < 0 || unit.y0 < 0 || unit.x1 >= params_.width ||
        unit.y1 >= params_.height || unit.x1 < unit.x0 || unit.y1 < unit.y0) {
      throw std::invalid_argument("floorplan unit out of mesh bounds: " + unit.name);
    }
  }

  net_.set_ambient_temp(params_.ambient_c);
  const int n_cells = params_.width * params_.height;
  const double cell_cap = params_.die_cap_j_per_k / n_cells;
  // Lateral conductance between adjacent cells; vertical share per cell.
  const double g_lat = params_.lateral_g_w_per_k / n_cells;
  const double g_vert = params_.vertical_g_w_per_k / n_cells;

  spreader_ = net_.add_node("spreader", params_.spreader_cap_j_per_k, params_.ambient_c);
  sink_ = net_.add_node("sink", params_.sink_cap_j_per_k, params_.ambient_c);
  net_.connect(spreader_, sink_, params_.g_spreader_sink);
  net_.connect_ambient(sink_, params_.g_sink_ambient);

  cells_.reserve(static_cast<std::size_t>(n_cells));
  for (int y = 0; y < params_.height; ++y) {
    for (int x = 0; x < params_.width; ++x) {
      const std::size_t cell = net_.add_node(
          "cell" + std::to_string(x) + "_" + std::to_string(y), cell_cap,
          params_.ambient_c);
      cells_.push_back(cell);
      net_.connect(cell, spreader_, g_vert);
      if (x > 0) net_.connect(cell, cell_index(x - 1, y), g_lat);
      if (y > 0) net_.connect(cell, cell_index(x, y - 1), g_lat);
    }
  }
}

void DieMesh::set_unit_power(const std::string& unit, double watts) {
  for (const auto& u : params_.floorplan) {
    if (u.name != unit) continue;
    const int cells = (u.x1 - u.x0 + 1) * (u.y1 - u.y0 + 1);
    const double per_cell = watts / cells;
    for (int y = u.y0; y <= u.y1; ++y) {
      for (int x = u.x0; x <= u.x1; ++x) {
        net_.set_power(cell_index(x, y), per_cell);
      }
    }
    return;
  }
  throw std::out_of_range("no floorplan unit named " + unit);
}

void DieMesh::advance(double dt_seconds) { net_.advance(dt_seconds); }
void DieMesh::settle() { net_.settle(); }

double DieMesh::cell_temp(int x, int y) const {
  return net_.temperature(cells_.at(static_cast<std::size_t>(y * params_.width + x)));
}

double DieMesh::hottest_cell() const {
  double best = -1e300;
  for (std::size_t c : cells_) best = std::max(best, net_.temperature(c));
  return best;
}

double DieMesh::coolest_cell() const {
  double best = 1e300;
  for (std::size_t c : cells_) best = std::min(best, net_.temperature(c));
  return best;
}

double DieMesh::mean_die_temp() const {
  double sum = 0.0;
  for (std::size_t c : cells_) sum += net_.temperature(c);
  return sum / static_cast<double>(cells_.size());
}

std::pair<int, int> DieMesh::hottest_xy() const {
  int bx = 0, by = 0;
  double best = -1e300;
  for (int y = 0; y < params_.height; ++y) {
    for (int x = 0; x < params_.width; ++x) {
      const double t = cell_temp(x, y);
      if (t > best) {
        best = t;
        bx = x;
        by = y;
      }
    }
  }
  return {bx, by};
}

}  // namespace tempest::thermal
