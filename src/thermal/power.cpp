#include "thermal/power.hpp"

#include <algorithm>
#include <stdexcept>

namespace tempest::thermal {

PStateTable::PStateTable(std::vector<PState> states) : states_(std::move(states)) {
  if (states_.empty()) throw std::invalid_argument("PStateTable requires at least one state");
}

double PStateTable::speed_factor(std::size_t i) const {
  return states_.at(i).freq_ghz / states_.front().freq_ghz;
}

double PowerModel::watts(double utilization, std::size_t pstate) const {
  const double u = std::clamp(utilization, 0.0, 1.0);
  const PState& s = table_.at(pstate);
  return params_.idle_watts + u * params_.c_eff * s.volts * s.volts * s.freq_ghz;
}

}  // namespace tempest::thermal
