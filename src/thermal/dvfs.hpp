// DVFS governor.
//
// The paper disables DVFS for profiling runs (fixed highest frequency)
// and motivates using Tempest to evaluate thermal optimisations; the
// threshold governor here is the optimisation evaluated in
// bench_thermal_opt / examples/thermal_optimization: throttle when the
// die crosses a high-water mark, restore when it cools past a low-water
// mark (hysteresis avoids oscillation).
#pragma once

#include <cstddef>

#include "thermal/power.hpp"

namespace tempest::thermal {

enum class GovernorMode {
  kPerformance,  ///< pin P-state 0 (the paper's profiling configuration)
  kThreshold,    ///< hysteresis thermal throttling
};

struct GovernorParams {
  GovernorMode mode = GovernorMode::kPerformance;
  double high_water_c = 50.0;  ///< throttle (step down) above this
  double low_water_c = 44.0;   ///< unthrottle (step up) below this
};

class DvfsGovernor {
 public:
  DvfsGovernor() = default;
  DvfsGovernor(GovernorParams params, std::size_t pstate_count)
      : params_(params), pstate_count_(pstate_count) {}

  /// Evaluate against the hottest core-die temperature; returns the
  /// (possibly unchanged) P-state index to run at.
  std::size_t evaluate(double die_temp_c);

  std::size_t current_pstate() const { return pstate_; }
  std::size_t throttle_events() const { return throttle_events_; }
  GovernorMode mode() const { return params_.mode; }

 private:
  GovernorParams params_;
  std::size_t pstate_count_ = 1;
  std::size_t pstate_ = 0;
  std::size_t throttle_events_ = 0;
};

}  // namespace tempest::thermal
