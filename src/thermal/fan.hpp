// Fan model.
//
// The heatsink-to-ambient conductance depends on airflow. The paper's
// experiments pin the fan at a constant high speed (~3000 RPM) to remove
// thermal-feedback effects; the auto mode implements the feedback
// (a proportional controller on a target temperature) so the "disable
// auto fan regulation" methodology step is itself reproducible.
#pragma once

#include <algorithm>

namespace tempest::thermal {

struct FanParams {
  double min_rpm = 900.0;
  double max_rpm = 6000.0;
  double g_still_air = 0.25;       ///< sink->ambient conductance at 0 RPM [W/K]
  double g_per_krpm = 0.40;        ///< added conductance per 1000 RPM [W/K]
  double auto_target_c = 45.0;     ///< auto mode: sink temperature target
  double auto_gain_rpm_per_k = 400.0;
};

class Fan {
 public:
  Fan() = default;
  explicit Fan(FanParams params) : params_(params), rpm_(3000.0) {}

  /// Fixed-speed mode (the paper's experimental setting).
  void set_fixed_rpm(double rpm);
  void set_auto(bool enabled) { auto_mode_ = enabled; }
  bool auto_mode() const { return auto_mode_; }

  /// In auto mode, update RPM from the observed sink temperature.
  void regulate(double sink_temp_c);

  double rpm() const { return rpm_; }
  /// Current sink->ambient conductance for the RC network.
  double conductance_w_per_k() const;

 private:
  FanParams params_;
  double rpm_ = 3000.0;
  bool auto_mode_ = false;
};

}  // namespace tempest::thermal
