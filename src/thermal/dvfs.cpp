#include "thermal/dvfs.hpp"

namespace tempest::thermal {

std::size_t DvfsGovernor::evaluate(double die_temp_c) {
  if (params_.mode == GovernorMode::kPerformance || pstate_count_ <= 1) {
    pstate_ = 0;
    return pstate_;
  }
  if (die_temp_c > params_.high_water_c && pstate_ + 1 < pstate_count_) {
    ++pstate_;
    ++throttle_events_;
  } else if (die_temp_c < params_.low_water_c && pstate_ > 0) {
    --pstate_;
  }
  return pstate_;
}

}  // namespace tempest::thermal
