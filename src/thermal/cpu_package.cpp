#include "thermal/cpu_package.hpp"

#include <algorithm>
#include <stdexcept>

namespace tempest::thermal {

std::string CpuPackage::die_node_name(std::size_t core) {
  return "core" + std::to_string(core) + ".die";
}

CpuPackage::CpuPackage(PackageParams params)
    : params_(params),
      power_(params.power, PStateTable{}),
      fan_(params.fan),
      governor_(params.governor, PStateTable{}.size()) {
  if (params_.cores == 0) throw std::invalid_argument("CpuPackage needs >= 1 core");
  const double ts = std::max(params_.time_scale, 1e-9);
  net_.set_ambient_temp(params_.ambient_c);

  spreader_ = net_.add_node("spreader", params_.spreader_cap_j_per_k / ts, params_.ambient_c);
  sink_ = net_.add_node("sink", params_.sink_cap_j_per_k / ts, params_.ambient_c);
  chassis_ = net_.add_node("chassis", params_.chassis_cap_j_per_k / ts, params_.ambient_c);

  for (std::size_t c = 0; c < params_.cores; ++c) {
    const std::size_t die =
        net_.add_node(die_node_name(c), params_.die_cap_j_per_k / ts, params_.ambient_c);
    die_nodes_.push_back(die);
    net_.connect(die, spreader_, params_.g_die_spreader);
  }
  net_.connect(spreader_, sink_, params_.g_spreader_sink);
  net_.connect(chassis_, sink_, params_.g_chassis_sink);
  net_.connect_ambient(chassis_, params_.g_chassis_ambient);
  net_.connect_ambient(sink_, fan_.conductance_w_per_k());
}

void CpuPackage::advance(double dt_seconds, const std::vector<double>& core_utilization) {
  if (core_utilization.size() != params_.cores) {
    throw std::invalid_argument("utilisation vector size != core count");
  }
  const std::size_t pstate = governor_.evaluate(hottest_die_temp());
  for (std::size_t c = 0; c < params_.cores; ++c) {
    net_.set_power(die_nodes_[c], power_.watts(core_utilization[c], pstate));
  }
  fan_.regulate(sink_temp());
  net_.set_ambient_conductance(sink_, fan_.conductance_w_per_k());
  net_.advance(dt_seconds);
}

void CpuPackage::settle_at(const std::vector<double>& core_utilization) {
  if (core_utilization.size() != params_.cores) {
    throw std::invalid_argument("utilisation vector size != core count");
  }
  for (std::size_t c = 0; c < params_.cores; ++c) {
    net_.set_power(die_nodes_[c],
                   power_.watts(core_utilization[c], governor_.current_pstate()));
  }
  net_.settle();
}

double CpuPackage::die_temp(std::size_t core) const {
  return net_.temperature(die_nodes_.at(core));
}

double CpuPackage::hottest_die_temp() const {
  double hottest = -1e9;
  for (std::size_t n : die_nodes_) hottest = std::max(hottest, net_.temperature(n));
  return hottest;
}

}  // namespace tempest::thermal
