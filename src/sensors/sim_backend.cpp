#include "sensors/sim_backend.hpp"

#include "common/units.hpp"

namespace tempest::sensors {

SimBackend::SimBackend(const thermal::RcNetwork* network, std::vector<SimSensorSpec> specs,
                       std::uint64_t noise_seed)
    : network_(network), specs_(std::move(specs)), rng_(noise_seed) {
  node_indices_.reserve(specs_.size());
  for (const auto& spec : specs_) {
    node_indices_.push_back(network_->node_index(spec.network_node));
  }
}

std::vector<SensorInfo> SimBackend::enumerate() const {
  std::vector<SensorInfo> out;
  out.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    SensorInfo info;
    info.id = static_cast<std::uint16_t>(i);
    info.name = specs_[i].name;
    info.source = "sim:" + specs_[i].network_node;
    info.quant_step_c = specs_[i].quant_step_c;
    out.push_back(std::move(info));
  }
  return out;
}

Result<double> SimBackend::read_celsius(std::uint16_t sensor_id) {
  if (sensor_id >= specs_.size()) {
    return Result<double>::error("sim: sensor id out of range");
  }
  const SimSensorSpec& spec = specs_[sensor_id];
  double t = network_->temperature(node_indices_[sensor_id]) + spec.offset_c;
  if (spec.noise_sd_c > 0.0) {
    std::normal_distribution<double> noise(0.0, spec.noise_sd_c);
    common::MutexLock lock(&rng_mu_);
    t += noise(rng_);
  }
  return quantize(t, spec.quant_step_c);
}

}  // namespace tempest::sensors
