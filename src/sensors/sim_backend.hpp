// Simulated-sensor backend.
//
// Reads temperatures out of an RC thermal network, applying per-sensor
// measurement noise and quantisation. Quantisation at 1 degree C is what
// produces the paper's characteristic flat rows (Min=Max, Sdv=Var=0) and
// the 1.8 F-stepped values (102.20, 104.00, 105.80 ...) in Tables 2/3.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "sensors/backend.hpp"
#include "thermal/rc_network.hpp"

namespace tempest::sensors {

/// Where one simulated sensor taps the network.
struct SimSensorSpec {
  std::string name;            ///< reported sensor name
  std::string network_node;    ///< RcNetwork node name to read
  double quant_step_c = 1.0;   ///< 0 disables quantisation
  double noise_sd_c = 0.0;     ///< gaussian measurement noise
  double offset_c = 0.0;       ///< calibration offset (sensor bias)
};

class SimBackend : public SensorBackend {
 public:
  /// `network` must outlive the backend. Specs naming unknown network
  /// nodes throw std::out_of_range up front (configuration bug).
  SimBackend(const thermal::RcNetwork* network, std::vector<SimSensorSpec> specs,
             std::uint64_t noise_seed = 0x7e57);

  std::vector<SensorInfo> enumerate() const override;
  Result<double> read_celsius(std::uint16_t sensor_id) override EXCLUDES(rng_mu_);

 private:
  const thermal::RcNetwork* network_;
  std::vector<SimSensorSpec> specs_;
  std::vector<std::size_t> node_indices_;
  // The noise generator is the backend's only mutable state; guard it
  // so concurrent samplers (tempd + a diagnostic read) stay defined.
  common::Mutex rng_mu_;
  std::mt19937_64 rng_ GUARDED_BY(rng_mu_);
};

}  // namespace tempest::sensors
