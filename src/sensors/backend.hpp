// Sensor abstraction.
//
// Tempest's tempd samples "all available thermal sensors" through one
// interface regardless of where they come from. On the paper's hardware
// that is lm-sensors; here the same interface is implemented by the real
// hwmon tree (when the host exposes one), by the simulated thermal
// model, and by trace replay — so every layer above tempd is identical
// to what would run on physical hardware.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace tempest::sensors {

/// Identity and characteristics of one thermal sensor.
struct SensorInfo {
  std::uint16_t id = 0;        ///< backend-local index, dense from 0
  std::string name;            ///< e.g. "core0", "sensor3", "CPU A DIODE"
  std::string source;          ///< origin, e.g. "hwmon1/temp2" or "sim:core0.die"
  double quant_step_c = 1.0;   ///< reporting granularity in Celsius
};

class SensorBackend {
 public:
  virtual ~SensorBackend() = default;

  /// Stable for the lifetime of the backend; ids dense in [0, size).
  virtual std::vector<SensorInfo> enumerate() const = 0;

  /// Current reading in Celsius. Errors are environmental (sensor
  /// unplugged, sysfs read failure) and are skipped by tempd, matching
  /// the "emergent and at times unstable" sensors note in §4.1.
  virtual Result<double> read_celsius(std::uint16_t sensor_id) = 0;
};

}  // namespace tempest::sensors
