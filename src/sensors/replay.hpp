// Replay and constant backends.
//
// ReplayBackend serves a recorded timestamped series per sensor — used
// to re-run the parser against captured traces and in tests needing
// exact sample sequences. ConstantBackend pins every sensor to a fixed
// value (steady-state baselines, unit tests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sensors/backend.hpp"

namespace tempest::sensors {

/// One recorded reading.
struct ReplayPoint {
  double time_s = 0.0;
  double temp_c = 0.0;
};

class ReplayBackend : public SensorBackend {
 public:
  /// Each series must be sorted by time; empty series are invalid reads.
  ReplayBackend(std::vector<SensorInfo> sensors,
                std::vector<std::vector<ReplayPoint>> series);

  /// Reads return the latest point at or before this time (step-hold).
  void set_time(double time_s) { time_s_ = time_s; }

  std::vector<SensorInfo> enumerate() const override { return sensors_; }
  Result<double> read_celsius(std::uint16_t sensor_id) override;

 private:
  std::vector<SensorInfo> sensors_;
  std::vector<std::vector<ReplayPoint>> series_;
  double time_s_ = 0.0;
};

class ConstantBackend : public SensorBackend {
 public:
  /// `count` sensors named sensor0..sensorN-1 all reading `temp_c`.
  ConstantBackend(std::size_t count, double temp_c);

  std::vector<SensorInfo> enumerate() const override { return sensors_; }
  Result<double> read_celsius(std::uint16_t sensor_id) override;

  void set_value(double temp_c) { temp_c_ = temp_c; }

 private:
  std::vector<SensorInfo> sensors_;
  double temp_c_;
};

}  // namespace tempest::sensors
