// Real Linux hwmon (lm-sensors) backend.
//
// Parses /sys/class/hwmon the way libsensors does: each hwmonN directory
// is a chip with a `name` file and tempM_input files in millidegrees
// Celsius, optionally labelled by tempM_label. The root is injectable so
// tests fabricate chip trees and so the backend works in containers that
// bind-mount a snapshot.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "sensors/backend.hpp"

namespace tempest::sensors {

class HwmonBackend : public SensorBackend {
 public:
  /// Scans `root` once at construction; missing root yields 0 sensors.
  explicit HwmonBackend(std::filesystem::path root = "/sys/class/hwmon");

  std::vector<SensorInfo> enumerate() const override { return sensors_; }
  Result<double> read_celsius(std::uint16_t sensor_id) override;

  /// True when the host exposes at least one readable temperature.
  bool available() const { return !sensors_.empty(); }

 private:
  std::vector<SensorInfo> sensors_;
  std::vector<std::filesystem::path> input_paths_;
};

}  // namespace tempest::sensors
