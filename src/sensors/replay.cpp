#include "sensors/replay.hpp"

#include <algorithm>
#include <stdexcept>

namespace tempest::sensors {

ReplayBackend::ReplayBackend(std::vector<SensorInfo> sensors,
                             std::vector<std::vector<ReplayPoint>> series)
    : sensors_(std::move(sensors)), series_(std::move(series)) {
  if (sensors_.size() != series_.size()) {
    throw std::invalid_argument("replay: sensor/series count mismatch");
  }
}

Result<double> ReplayBackend::read_celsius(std::uint16_t sensor_id) {
  if (sensor_id >= series_.size()) {
    return Result<double>::error("replay: sensor id out of range");
  }
  const auto& points = series_[sensor_id];
  if (points.empty()) return Result<double>::error("replay: empty series");

  const auto it = std::upper_bound(
      points.begin(), points.end(), time_s_,
      [](double t, const ReplayPoint& p) { return t < p.time_s; });
  if (it == points.begin()) {
    return Result<double>::error("replay: no sample at or before requested time");
  }
  return std::prev(it)->temp_c;
}

ConstantBackend::ConstantBackend(std::size_t count, double temp_c) : temp_c_(temp_c) {
  for (std::size_t i = 0; i < count; ++i) {
    SensorInfo info;
    info.id = static_cast<std::uint16_t>(i);
    info.name = "sensor" + std::to_string(i);
    info.source = "const";
    info.quant_step_c = 0.0;
    sensors_.push_back(std::move(info));
  }
}

Result<double> ConstantBackend::read_celsius(std::uint16_t sensor_id) {
  if (sensor_id >= sensors_.size()) {
    return Result<double>::error("const: sensor id out of range");
  }
  return temp_c_;
}

}  // namespace tempest::sensors
