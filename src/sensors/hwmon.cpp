#include "sensors/hwmon.hpp"

#include <algorithm>
#include <fstream>

namespace tempest::sensors {
namespace {

std::string read_trimmed(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::string line;
  if (!in || !std::getline(in, line)) return {};
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r' || line.back() == ' ')) {
    line.pop_back();
  }
  return line;
}

}  // namespace

HwmonBackend::HwmonBackend(std::filesystem::path root) {
  std::error_code ec;
  if (!std::filesystem::is_directory(root, ec)) return;

  std::vector<std::filesystem::path> chips;
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    chips.push_back(entry.path());
  }
  std::sort(chips.begin(), chips.end());

  for (const auto& chip : chips) {
    const std::string chip_name = read_trimmed(chip / "name");
    std::vector<std::filesystem::path> inputs;
    std::error_code chip_ec;
    for (const auto& f : std::filesystem::directory_iterator(chip, chip_ec)) {
      const std::string fname = f.path().filename().string();
      if (fname.rfind("temp", 0) == 0 && fname.size() > 5 &&
          fname.substr(fname.find('_') + 1) == "input") {
        inputs.push_back(f.path());
      }
    }
    std::sort(inputs.begin(), inputs.end());
    for (const auto& input : inputs) {
      const std::string fname = input.filename().string();  // tempM_input
      const std::string channel = fname.substr(0, fname.find('_'));
      std::string label = read_trimmed(input.parent_path() / (channel + "_label"));
      if (label.empty()) {
        label = chip_name.empty() ? channel : chip_name + "." + channel;
      }
      SensorInfo info;
      info.id = static_cast<std::uint16_t>(sensors_.size());
      info.name = label;
      info.source = chip.filename().string() + "/" + channel;
      info.quant_step_c = 1.0;  // typical diode granularity reported via hwmon
      sensors_.push_back(std::move(info));
      input_paths_.push_back(input);
    }
  }
}

Result<double> HwmonBackend::read_celsius(std::uint16_t sensor_id) {
  if (sensor_id >= input_paths_.size()) {
    return Result<double>::error("hwmon: sensor id out of range");
  }
  const std::string text = read_trimmed(input_paths_[sensor_id]);
  if (text.empty()) {
    return Result<double>::error("hwmon: empty reading from " +
                                 input_paths_[sensor_id].string());
  }
  try {
    return std::stod(text) / 1000.0;  // millidegrees -> degrees
  } catch (...) {
    return Result<double>::error("hwmon: unparsable reading '" + text + "'");
  }
}

}  // namespace tempest::sensors
