#include "parser/timeline.hpp"

#include <algorithm>

namespace tempest::parser {

bool FunctionIntervals::contains(std::uint64_t tsc) const {
  const auto it = std::upper_bound(
      merged.begin(), merged.end(), tsc,
      [](std::uint64_t t, const Interval& iv) { return t < iv.begin; });
  if (it == merged.begin()) return false;
  const Interval& iv = *std::prev(it);
  return tsc >= iv.begin && tsc < iv.end;
}

void merge_intervals(std::vector<Interval>* intervals) {
  if (intervals->empty()) return;
  std::sort(intervals->begin(), intervals->end(),
            [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  std::vector<Interval> out;
  out.reserve(intervals->size());
  out.push_back((*intervals)[0]);
  for (std::size_t i = 1; i < intervals->size(); ++i) {
    const Interval& iv = (*intervals)[i];
    if (iv.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, iv.end);
    } else {
      out.push_back(iv);
    }
  }
  *intervals = std::move(out);
}

TimelineMap build_timeline(const trace::Trace& trace, TimelineDiagnostics* diag) {
  TimelineDiagnostics local_diag;

  // Per (thread, addr): open recursion depth and outermost entry time.
  struct OpenState {
    std::uint64_t depth = 0;
    std::uint64_t first_enter = 0;
  };
  std::map<std::pair<std::uint32_t, std::uint64_t>, OpenState> open;
  std::map<std::uint32_t, std::uint16_t> thread_node;
  for (const auto& t : trace.threads) thread_node[t.thread_id] = t.node_id;

  // Per (node, addr): raw per-thread intervals before the union.
  std::map<std::pair<std::uint16_t, std::uint64_t>, std::vector<Interval>> raw;
  TimelineMap result;

  auto node_of = [&](const trace::FnEvent& e) -> std::uint16_t {
    const auto it = thread_node.find(e.thread_id);
    return it != thread_node.end() ? it->second : e.node_id;
  };

  // Events must be time-ordered per thread; Trace::sort_by_time provides
  // a stable global order which implies per-thread order.
  for (const auto& e : trace.fn_events) {
    const auto key = std::make_pair(e.thread_id, e.addr);
    const std::uint16_t node = node_of(e);
    auto& fn = result[{node, e.addr}];
    fn.addr = e.addr;
    fn.node_id = node;

    if (e.kind == trace::FnEventKind::kEnter) {
      OpenState& st = open[key];
      if (st.depth == 0) st.first_enter = e.tsc;
      ++st.depth;
      ++fn.calls;
    } else {
      const auto it = open.find(key);
      if (it == open.end() || it->second.depth == 0) {
        ++local_diag.unmatched_exits;
        continue;
      }
      --it->second.depth;
      if (it->second.depth == 0) {
        const Interval iv{it->second.first_enter, e.tsc};
        raw[{node, e.addr}].push_back(iv);
        fn.total_ticks += iv.length();
      }
    }
  }

  // Close activations still open when the trace ends (e.g. main, or a
  // run interrupted mid-function).
  const std::uint64_t end = trace.end_tsc();
  for (const auto& [key, st] : open) {
    if (st.depth == 0) continue;
    ++local_diag.force_closed;
    const std::uint32_t tid = key.first;
    const std::uint64_t addr = key.second;
    const auto nit = thread_node.find(tid);
    const std::uint16_t node = nit != thread_node.end() ? nit->second : 0;
    const Interval iv{st.first_enter, end};
    raw[{node, addr}].push_back(iv);
    result[{node, addr}].total_ticks += iv.length();
  }

  for (auto& [key, intervals] : raw) {
    merge_intervals(&intervals);
    result[key].merged = std::move(intervals);
  }
  // Drop functions that were entered but produced no interval at all
  // (possible only for unmatched-exit-only addresses).
  for (auto it = result.begin(); it != result.end();) {
    if (it->second.merged.empty()) {
      it = result.erase(it);
    } else {
      ++it;
    }
  }

  if (diag != nullptr) *diag = local_diag;
  return result;
}

}  // namespace tempest::parser
