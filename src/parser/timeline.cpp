#include "parser/timeline.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>

namespace tempest::parser {
namespace {

/// Dense thread -> node lookup; thread ids are dense per process, so
/// almost every lookup is one vector index. Ids beyond the dense window
/// (possible only in corrupt traces) fall back to a hash map.
class ThreadNodeTable {
 public:
  explicit ThreadNodeTable(const std::vector<trace::ThreadInfo>& threads) {
    std::uint32_t max_tid = 0;
    for (const auto& t : threads) max_tid = std::max(max_tid, t.thread_id);
    if (!threads.empty()) {
      dense_.assign(std::min<std::size_t>(std::size_t{max_tid} + 1, kDenseCap), -1);
    }
    for (const auto& t : threads) {
      if (t.thread_id < dense_.size()) {
        dense_[t.thread_id] = t.node_id;
      } else {
        sparse_[t.thread_id] = t.node_id;
      }
    }
  }

  std::uint16_t node_of(std::uint32_t thread_id, std::uint16_t fallback) const {
    if (thread_id < dense_.size()) {
      const std::int32_t node = dense_[thread_id];
      return node >= 0 ? static_cast<std::uint16_t>(node) : fallback;
    }
    const auto it = sparse_.find(thread_id);
    return it != sparse_.end() ? it->second : fallback;
  }

  /// Listed node for the thread, or -1 when the thread is unknown (its
  /// events then use each event's own node id as the fallback).
  std::int32_t node_or_negative(std::uint32_t thread_id) const {
    if (thread_id < dense_.size()) return dense_[thread_id];
    const auto it = sparse_.find(thread_id);
    return it != sparse_.end() ? it->second : -1;
  }

 private:
  static constexpr std::size_t kDenseCap = std::size_t{1} << 20;
  std::vector<std::int32_t> dense_;
  std::unordered_map<std::uint32_t, std::uint16_t> sparse_;
};

/// Per-(node, addr) accumulator while replaying the event stream.
/// `raw` holds the intervals before the union: an optional unsorted
/// prefix (direct pushes for unknown-thread events) followed by one
/// begin-sorted run per folded thread, each starting at an offset in
/// `run_starts`. A thread's outermost activations of one function
/// cannot overlap, so per-thread interval order == begin order — which
/// lets the union start from a linear run merge instead of a full sort.
struct FnAccum {
  std::uint64_t total_ticks = 0;
  std::uint64_t calls = 0;
  std::uint64_t activations = 0;
  unsigned __int128 ticks_sq = 0;
  std::vector<Interval> raw;
  std::vector<std::size_t> run_starts;  ///< fold offsets into `raw`
};

/// Squared activation length widened before the multiply overflows.
inline unsigned __int128 squared_ticks(std::uint64_t len) {
  return static_cast<unsigned __int128>(len) * len;
}

/// Minimal open-addressing hash map from an (a, b) key pair to a dense
/// value index. The event loop below probes these maps once or twice
/// per event; keying on the raw (addr, thread) / (addr, node) pairs
/// avoids both std::unordered_map's node indirection and a separate
/// address-interning lookup. Values live in caller-owned dense vectors,
/// which also makes the post-loop passes sequential scans.
class FlatPairIndex {
 public:
  explicit FlatPairIndex(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, kEmpty);
    keys_.resize(cap);
    mask_ = cap - 1;
  }

  /// Returns the dense index for (a, b), assigning the next one (== the
  /// current id count) on first sight; `inserted` reports which.
  std::uint32_t find_or_insert(std::uint64_t a, std::uint64_t b, bool* inserted) {
    if ((size_ + 1) * 10 > (mask_ + 1) * 7) grow();
    std::size_t pos = mix(a, b) & mask_;
    while (slots_[pos] != kEmpty) {
      if (keys_[pos].first == a && keys_[pos].second == b) {
        *inserted = false;
        return slots_[pos];
      }
      pos = (pos + 1) & mask_;
    }
    keys_[pos] = {a, b};
    slots_[pos] = static_cast<std::uint32_t>(size_);
    *inserted = true;
    return static_cast<std::uint32_t>(size_++);
  }

  /// Dense index for (a, b), or UINT32_MAX when absent.
  std::uint32_t find(std::uint64_t a, std::uint64_t b) const {
    std::size_t pos = mix(a, b) & mask_;
    while (slots_[pos] != kEmpty) {
      if (keys_[pos].first == a && keys_[pos].second == b) return slots_[pos];
      pos = (pos + 1) & mask_;
    }
    return kEmpty;
  }

  static constexpr std::uint32_t kEmpty = UINT32_MAX;

 private:
  static std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
    // splitmix64 finaliser over the folded pair: full-avalanche, so
    // nearby addresses and sequential thread ids spread over the table.
    std::uint64_t x = a + b * 0xC2B2AE3D27D4EB4FULL;
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  void grow() {
    std::vector<std::uint32_t> old_slots = std::move(slots_);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> old_keys = std::move(keys_);
    const std::size_t old_cap = mask_ + 1;
    slots_.assign(old_cap * 2, kEmpty);
    keys_.resize(old_cap * 2);
    mask_ = old_cap * 2 - 1;
    for (std::size_t i = 0; i < old_cap; ++i) {
      if (old_slots[i] == kEmpty) continue;
      std::size_t pos = mix(old_keys[i].first, old_keys[i].second) & mask_;
      while (slots_[pos] != kEmpty) pos = (pos + 1) & mask_;
      slots_[pos] = old_slots[i];
      keys_[pos] = old_keys[i];
    }
  }

  std::vector<std::uint32_t> slots_;  ///< dense value index per bucket
  std::vector<std::pair<std::uint64_t, std::uint64_t>> keys_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Union one accumulator's intervals in place. The per-thread runs are
/// already begin-sorted (see FnAccum), so ordering them is ceil(log2 k)
/// linear merge passes instead of an O(n log n) comparison sort; the
/// union sweep then runs over the ordered whole.
void merge_accum(FnAccum* a) {
  std::vector<Interval>& raw = a->raw;
  if (raw.empty()) return;
  const auto by_begin = [](const Interval& x, const Interval& y) {
    return x.begin < y.begin;
  };

  std::vector<std::pair<std::size_t, std::size_t>> runs;  // (begin, count)
  const std::size_t prefix =
      a->run_starts.empty() ? raw.size() : a->run_starts.front();
  if (prefix > 0) {
    // Direct pushes (unknown-thread events) may interleave several
    // threads; sort that prefix alone when needed.
    if (!std::is_sorted(raw.begin(),
                        raw.begin() + static_cast<std::ptrdiff_t>(prefix),
                        by_begin)) {
      std::sort(raw.begin(), raw.begin() + static_cast<std::ptrdiff_t>(prefix),
                by_begin);
    }
    runs.emplace_back(0, prefix);
  }
  for (std::size_t i = 0; i < a->run_starts.size(); ++i) {
    const std::size_t begin = a->run_starts[i];
    const std::size_t end =
        i + 1 < a->run_starts.size() ? a->run_starts[i + 1] : raw.size();
    if (end > begin) runs.emplace_back(begin, end - begin);
  }

  if (runs.size() > 1) {
    std::vector<Interval> scratch(raw.size());
    std::vector<Interval>* src = &raw;
    std::vector<Interval>* dst = &scratch;
    std::vector<std::pair<std::size_t, std::size_t>> next;
    while (runs.size() > 1) {
      next.clear();
      std::size_t out = 0;
      for (std::size_t i = 0; i < runs.size(); i += 2) {
        if (i + 1 < runs.size()) {
          std::merge(src->begin() + static_cast<std::ptrdiff_t>(runs[i].first),
                     src->begin() + static_cast<std::ptrdiff_t>(runs[i].first +
                                                                runs[i].second),
                     src->begin() + static_cast<std::ptrdiff_t>(runs[i + 1].first),
                     src->begin() + static_cast<std::ptrdiff_t>(runs[i + 1].first +
                                                                runs[i + 1].second),
                     dst->begin() + static_cast<std::ptrdiff_t>(out), by_begin);
          next.emplace_back(out, runs[i].second + runs[i + 1].second);
          out += runs[i].second + runs[i + 1].second;
        } else {
          std::copy(src->begin() + static_cast<std::ptrdiff_t>(runs[i].first),
                    src->begin() + static_cast<std::ptrdiff_t>(runs[i].first +
                                                               runs[i].second),
                    dst->begin() + static_cast<std::ptrdiff_t>(out));
          next.emplace_back(out, runs[i].second);
          out += runs[i].second;
        }
      }
      std::swap(src, dst);
      runs.swap(next);
    }
    if (src != &raw) raw = std::move(scratch);
  }

  // Union sweep over the now begin-ordered intervals.
  std::vector<Interval> out;
  out.reserve(raw.size());
  out.push_back(raw[0]);
  for (std::size_t i = 1; i < raw.size(); ++i) {
    const Interval& iv = raw[i];
    if (iv.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, iv.end);
    } else {
      out.push_back(iv);
    }
  }
  raw = std::move(out);
  a->run_starts.clear();
}

/// Coalesce every accumulator's raw intervals, fanning out over a small
/// worker pool when the interval volume justifies the thread spawns.
void merge_all(std::vector<FnAccum*>* work, std::size_t total_intervals) {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t workers = std::min<std::size_t>(
      {hw == 0 ? 1 : hw, std::size_t{8}, work->size()});
  constexpr std::size_t kParallelThreshold = 1 << 14;
  if (workers <= 1 || total_intervals < kParallelThreshold) {
    for (FnAccum* a : *work) merge_accum(a);
    return;
  }
  std::atomic<std::size_t> next{0};
  const auto run = [&] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < work->size(); i = next.fetch_add(1, std::memory_order_relaxed)) {
      merge_accum((*work)[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(run);
  run();
  for (auto& t : pool) t.join();
}

}  // namespace

bool FunctionIntervals::contains(std::uint64_t tsc) const {
  const auto it = std::upper_bound(
      merged.begin(), merged.end(), tsc,
      [](std::uint64_t t, const Interval& iv) { return t < iv.begin; });
  if (it == merged.begin()) return false;
  const Interval& iv = *std::prev(it);
  return tsc >= iv.begin && tsc < iv.end;
}

void merge_intervals(std::vector<Interval>* intervals) {
  if (intervals->empty()) return;
  std::sort(intervals->begin(), intervals->end(),
            [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  std::vector<Interval> out;
  out.reserve(intervals->size());
  out.push_back((*intervals)[0]);
  for (std::size_t i = 1; i < intervals->size(); ++i) {
    const Interval& iv = (*intervals)[i];
    if (iv.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, iv.end);
    } else {
      out.push_back(iv);
    }
  }
  *intervals = std::move(out);
}

/// All accumulator state lives behind the pimpl so the hot-loop helper
/// types (FlatPairIndex, FnAccum, ThreadNodeTable) stay file-local.
struct TimelineAccumulator::Impl {
  // Per (thread, addr): open recursion depth, outermost entry time, and
  // — for threads listed in the trace metadata — the calls and closed
  // intervals gathered so far. A listed thread's node never changes, so
  // those fold into the per-(addr, node) accumulator once at finish()
  // and the hot loop probes a single hash per event. Events of unknown
  // threads (corrupt traces) take each event's own node-id fallback and
  // go to the accumulator directly, exactly as before.
  struct OpenState {
    std::uint64_t depth = 0;
    std::uint64_t first_enter = 0;
    std::uint64_t calls = 0;
    std::uint64_t total_ticks = 0;
    std::uint64_t activations = 0;
    unsigned __int128 ticks_sq = 0;
    std::vector<Interval> raw;
  };

  Impl(const std::vector<trace::ThreadInfo>& threads, std::size_t hint)
      : thread_node(threads), open_index(hint), accum_index(hint) {}

  FnAccum& accum_at(std::uint64_t addr, std::uint16_t node) {
    bool inserted = false;
    const std::uint32_t idx = accum_index.find_or_insert(addr, node, &inserted);
    if (inserted) {
      accum_keys.emplace_back(addr, node);
      accum.emplace_back();
    }
    return accum[idx];
  }

  ThreadNodeTable thread_node;
  TimelineDiagnostics diag;
  FlatPairIndex open_index;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> open_keys;  // (addr, thread)
  std::vector<OpenState> open;
  FlatPairIndex accum_index;
  std::vector<std::pair<std::uint64_t, std::uint16_t>> accum_keys;  // (addr, node)
  std::vector<FnAccum> accum;
};

TimelineAccumulator::TimelineAccumulator(
    const std::vector<trace::ThreadInfo>& threads, std::size_t hint)
    : impl_(std::make_unique<Impl>(threads, hint == 0 ? 16 : hint)) {}

TimelineAccumulator::~TimelineAccumulator() = default;
TimelineAccumulator::TimelineAccumulator(TimelineAccumulator&&) noexcept = default;
TimelineAccumulator& TimelineAccumulator::operator=(TimelineAccumulator&&) noexcept =
    default;

void TimelineAccumulator::add_events(const trace::FnEvent* events, std::size_t n) {
  Impl& im = *impl_;
  // Events must be time-ordered per thread; Trace::sort_by_time provides
  // a stable global order which implies per-thread order, and the
  // streaming sources only hand over batches in that same order. Exits
  // that match nothing (or only pop recursion depth) never touch any
  // table — an accumulator with no interval is dropped at assembly
  // anyway, so skipping the lookup changes nothing downstream.
  for (std::size_t i = 0; i < n; ++i) {
    const trace::FnEvent& e = events[i];
    if (e.kind == trace::FnEventKind::kEnter) {
      bool inserted = false;
      const std::uint32_t oi = im.open_index.find_or_insert(e.addr, e.thread_id, &inserted);
      if (inserted) {
        im.open_keys.emplace_back(e.addr, e.thread_id);
        im.open.emplace_back();
      }
      Impl::OpenState& st = im.open[oi];
      if (st.depth == 0) st.first_enter = e.tsc;
      ++st.depth;
      if (im.thread_node.node_or_negative(e.thread_id) >= 0) {
        ++st.calls;
      } else {
        ++im.accum_at(e.addr, e.node_id).calls;
      }
    } else {
      const std::uint32_t oi = im.open_index.find(e.addr, e.thread_id);
      if (oi == FlatPairIndex::kEmpty || im.open[oi].depth == 0) {
        ++im.diag.unmatched_exits;
        continue;
      }
      Impl::OpenState& st = im.open[oi];
      --st.depth;
      if (st.depth == 0) {
        const Interval iv{st.first_enter, e.tsc};
        if (im.thread_node.node_or_negative(e.thread_id) >= 0) {
          st.raw.push_back(iv);
          st.total_ticks += iv.length();
          ++st.activations;
          st.ticks_sq += squared_ticks(iv.length());
        } else {
          FnAccum& fn = im.accum_at(e.addr, e.node_id);
          fn.raw.push_back(iv);
          fn.total_ticks += iv.length();
          ++fn.activations;
          fn.ticks_sq += squared_ticks(iv.length());
        }
      }
    }
  }
}

TimelineMap TimelineAccumulator::finish(std::uint64_t end_tsc,
                                        TimelineDiagnostics* diag,
                                        bool keep_empty) {
  Impl& im = *impl_;
  // Fold the per-(addr, thread) tallies into the per-(addr, node)
  // accumulators, and close activations still open when the trace ends
  // (e.g. main, or a run interrupted mid-function). Unknown threads
  // fall back to node 0 here (no event in hand to borrow a node id
  // from). Interval union, call counts, and tick totals are all
  // order-independent, so folding after the loop matches folding
  // per event.
  for (std::size_t oi = 0; oi < im.open.size(); ++oi) {
    Impl::OpenState& st = im.open[oi];
    const auto [addr, tid] = im.open_keys[oi];
    if (st.depth > 0) {
      ++im.diag.force_closed;
      const Interval iv{st.first_enter, end_tsc};
      st.raw.push_back(iv);
      st.total_ticks += iv.length();
      ++st.activations;
      st.ticks_sq += squared_ticks(iv.length());
    }
    if (st.calls == 0 && st.raw.empty()) continue;
    const std::uint16_t node = im.thread_node.node_of(tid, 0);
    FnAccum& fn = im.accum_at(addr, node);
    fn.calls += st.calls;
    fn.total_ticks += st.total_ticks;
    fn.activations += st.activations;
    fn.ticks_sq += st.ticks_sq;
    if (st.raw.empty()) continue;
    fn.run_starts.push_back(fn.raw.size());
    if (fn.raw.empty()) {
      fn.raw = std::move(st.raw);
    } else {
      fn.raw.insert(fn.raw.end(), st.raw.begin(), st.raw.end());
    }
  }

  std::vector<FnAccum*> work;
  work.reserve(im.accum.size());
  std::size_t total_intervals = 0;
  for (FnAccum& a : im.accum) {
    work.push_back(&a);
    total_intervals += a.raw.size();
  }
  merge_all(&work, total_intervals);

  // Assemble the ordered public map, dropping functions that produced no
  // interval at all (possible only for unmatched-exit-only addresses).
  TimelineMap result;
  for (std::size_t i = 0; i < im.accum.size(); ++i) {
    FnAccum& a = im.accum[i];
    if (a.raw.empty() && !keep_empty) continue;
    const auto [addr, node] = im.accum_keys[i];
    FunctionIntervals fi;
    fi.addr = addr;
    fi.node_id = node;
    fi.total_ticks = a.total_ticks;
    fi.calls = a.calls;
    fi.activations = a.activations;
    fi.ticks_sq = a.ticks_sq;
    fi.merged = std::move(a.raw);
    result.emplace(std::make_pair(node, addr), std::move(fi));
  }

  if (diag != nullptr) *diag = im.diag;
  return result;
}

TimelineMap build_timeline(const trace::Trace& trace, TimelineDiagnostics* diag) {
  // Both per-event lookups probe a flat hash keyed on the raw pair —
  // (addr, thread) for the open recursion state, (addr, node) for the
  // accumulator — instead of a tree-map pair comparison.
  const std::size_t hint = std::min<std::size_t>(
      trace.fn_events.size() / 8 + 16, std::size_t{1} << 16);
  TimelineAccumulator acc(trace.threads, hint);
  acc.add_events(trace.fn_events.data(), trace.fn_events.size());
  return acc.finish(trace.end_tsc(), diag);
}

}  // namespace tempest::parser
