// Function timeline reconstruction.
//
// This is the capability the paper built Tempest for instead of
// modifying gprof: gprof's buckets cannot say *which function was
// executing at time X*, but thermal samples arrive in real time and the
// same function may run at different temperatures at different moments.
// The builder replays each thread's entry/exit stream into per-function
// inclusive interval sets, handling the Table 1 cases: interleaving
// (D) and recursion with interleaving (E) — a recursive function's
// nested activations collapse into one interval per outermost call, so
// inclusive time is never double-counted.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "trace/trace.hpp"

namespace tempest::parser {

/// Half-open tick interval [begin, end).
struct Interval {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t length() const { return end > begin ? end - begin : 0; }
};

/// All activity of one function address on one node.
struct FunctionIntervals {
  std::uint64_t addr = 0;
  std::uint16_t node_id = 0;
  /// Sorted, non-overlapping union of the function's activations across
  /// the node's threads (used for sample attribution).
  std::vector<Interval> merged;
  /// Inclusive busy ticks, summed per thread before merging (so two
  /// ranks running the function concurrently both count).
  std::uint64_t total_ticks = 0;
  std::uint64_t calls = 0;
  /// Outermost activations closed (the per-call duration sample count;
  /// under recursion this is smaller than `calls`, which counts every
  /// enter).
  std::uint64_t activations = 0;
  /// Exact sum of squared activation lengths, in ticks². 128-bit integer
  /// so the per-call duration mean/variance derive exactly: integer sums
  /// commute, keeping the sharded fold bit-identical to the serial one
  /// regardless of merge order (a float Welford fold would not).
  unsigned __int128 ticks_sq = 0;

  /// True when `tsc` falls inside any merged interval.
  bool contains(std::uint64_t tsc) const;
};

struct TimelineDiagnostics {
  std::uint64_t unmatched_exits = 0;  ///< exit with no open activation
  std::uint64_t force_closed = 0;     ///< still open at trace end
};

/// Key: (node_id, function address).
using TimelineMap = std::map<std::pair<std::uint16_t, std::uint64_t>, FunctionIntervals>;

/// Incremental timeline builder: the streaming core behind
/// build_timeline. Feed time-sorted event batches with add_events (the
/// global order across calls must match what one sorted pass would
/// deliver — per-thread order is what actually matters), then finish()
/// closes still-open activations at `end_tsc` and assembles the map.
/// Folding N batches produces bit-identical output to one batch of the
/// concatenation; memory is O(open activations + closed intervals), not
/// O(events), which is what lets src/pipeline analyse traces larger
/// than RAM.
class TimelineAccumulator {
 public:
  /// `threads` maps thread ids to nodes (copied); `hint` sizes the hash
  /// tables (0 = small default, tables grow as needed).
  explicit TimelineAccumulator(const std::vector<trace::ThreadInfo>& threads,
                               std::size_t hint = 0);
  ~TimelineAccumulator();
  TimelineAccumulator(TimelineAccumulator&&) noexcept;
  TimelineAccumulator& operator=(TimelineAccumulator&&) noexcept;

  void add_events(const trace::FnEvent* events, std::size_t n);

  /// Force-close open activations at `end_tsc`, coalesce intervals and
  /// return the finished map. The accumulator is spent afterwards.
  ///
  /// `keep_empty` retains entries whose interval set came out empty
  /// (call counts recorded under one node while the intervals landed on
  /// another — possible only for threads missing from the metadata).
  /// The sharded fold needs them: the "drop empty" rule must apply to
  /// the union across shards, not to each shard alone, or calls that a
  /// sibling shard's intervals would have kept alive disappear.
  TimelineMap finish(std::uint64_t end_tsc, TimelineDiagnostics* diag = nullptr,
                     bool keep_empty = false);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Build per-function interval sets from a (time-sorted) trace.
/// Batch wrapper over TimelineAccumulator.
TimelineMap build_timeline(const trace::Trace& trace, TimelineDiagnostics* diag = nullptr);

/// Merge a sorted interval list in place (coalesce overlaps/adjacency).
void merge_intervals(std::vector<Interval>* intervals);

}  // namespace tempest::parser
