// Function timeline reconstruction.
//
// This is the capability the paper built Tempest for instead of
// modifying gprof: gprof's buckets cannot say *which function was
// executing at time X*, but thermal samples arrive in real time and the
// same function may run at different temperatures at different moments.
// The builder replays each thread's entry/exit stream into per-function
// inclusive interval sets, handling the Table 1 cases: interleaving
// (D) and recursion with interleaving (E) — a recursive function's
// nested activations collapse into one interval per outermost call, so
// inclusive time is never double-counted.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "trace/trace.hpp"

namespace tempest::parser {

/// Half-open tick interval [begin, end).
struct Interval {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t length() const { return end > begin ? end - begin : 0; }
};

/// All activity of one function address on one node.
struct FunctionIntervals {
  std::uint64_t addr = 0;
  std::uint16_t node_id = 0;
  /// Sorted, non-overlapping union of the function's activations across
  /// the node's threads (used for sample attribution).
  std::vector<Interval> merged;
  /// Inclusive busy ticks, summed per thread before merging (so two
  /// ranks running the function concurrently both count).
  std::uint64_t total_ticks = 0;
  std::uint64_t calls = 0;

  /// True when `tsc` falls inside any merged interval.
  bool contains(std::uint64_t tsc) const;
};

struct TimelineDiagnostics {
  std::uint64_t unmatched_exits = 0;  ///< exit with no open activation
  std::uint64_t force_closed = 0;     ///< still open at trace end
};

/// Key: (node_id, function address).
using TimelineMap = std::map<std::pair<std::uint16_t, std::uint64_t>, FunctionIntervals>;

/// Build per-function interval sets from a (time-sorted) trace.
TimelineMap build_timeline(const trace::Trace& trace, TimelineDiagnostics* diag = nullptr);

/// Merge a sorted interval list in place (coalesce overlaps/adjacency).
void merge_intervals(std::vector<Interval>* intervals);

}  // namespace tempest::parser
