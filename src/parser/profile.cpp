#include "parser/profile.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace tempest::parser {

const FunctionProfile* RunProfile::find(std::uint16_t node_id,
                                        const std::string& name) const {
  for (const auto& node : nodes) {
    if (node.node_id != node_id) continue;
    for (const auto& fn : node.functions) {
      if (fn.name == name) return &fn;
    }
  }
  return nullptr;
}

RunProfile ProfileBuilder::build(
    const TimelineMap& timeline,
    const std::vector<std::pair<std::uint64_t, std::string>>& names,
    TimelineDiagnostics diagnostics) const {
  RunProfile run;
  run.unit = options_.unit;
  run.diagnostics = diagnostics;

  std::map<std::uint64_t, std::string> name_map(names.begin(), names.end());

  // Sensor metadata by (node, sensor).
  std::map<std::pair<std::uint16_t, std::uint16_t>, const trace::SensorMeta*> sensor_meta;
  for (const auto& s : trace_.sensors) sensor_meta[{s.node_id, s.sensor_id}] = &s;

  // Samples grouped per node, time-sorted (trace is pre-sorted).
  std::map<std::uint16_t, std::vector<const trace::TempSample*>> node_samples;
  for (const auto& s : trace_.temp_samples) node_samples[s.node_id].push_back(&s);

  const std::uint64_t run_start = trace_.start_tsc();
  const std::uint64_t run_end = trace_.end_tsc();
  const double ticks_per_s = trace_.tsc_ticks_per_second > 0.0
                                 ? trace_.tsc_ticks_per_second
                                 : 1.0;
  run.duration_s = static_cast<double>(run_end - run_start) / ticks_per_s;

  std::map<std::uint16_t, NodeProfile> nodes;
  for (const auto& n : trace_.nodes) {
    nodes[n.node_id].node_id = n.node_id;
    nodes[n.node_id].hostname = n.hostname;
  }

  for (const auto& [key, fn_intervals] : timeline) {
    const std::uint16_t node_id = key.first;
    NodeProfile& node = nodes[node_id];  // creates on demand for unlisted nodes
    node.node_id = node_id;

    FunctionProfile fn;
    fn.addr = fn_intervals.addr;
    const auto name_it = name_map.find(fn.addr);
    fn.name = name_it != name_map.end() ? name_it->second : "<unknown>";
    fn.total_time_s = static_cast<double>(fn_intervals.total_ticks) / ticks_per_s;
    fn.calls = fn_intervals.calls;

    // Per-sensor attribution: samples landing inside the intervals.
    std::map<std::uint16_t, SampleSet> per_sensor;
    const auto samples_it = node_samples.find(node_id);
    if (samples_it != node_samples.end()) {
      for (const trace::TempSample* s : samples_it->second) {
        if (fn_intervals.contains(s->tsc)) {
          per_sensor[s->sensor_id].add(to_unit(s->temp_c, options_.unit));
        }
      }
    }

    // Significance: the paper flags functions whose execution is short
    // relative to the 4 Hz sampling interval. We require the configured
    // minimum sample count inside the intervals.
    std::size_t max_count = 0;
    for (const auto& [sid, set] : per_sensor) max_count = std::max(max_count, set.count());
    fn.significant = max_count >= options_.min_samples_significant;

    if (!fn.significant && samples_it != node_samples.end() &&
        !samples_it->second.empty() && !fn_intervals.merged.empty()) {
      // Nearest-sample snapshot: closest reading per sensor to the
      // function's first activation.
      per_sensor.clear();
      const std::uint64_t at = fn_intervals.merged.front().begin;
      std::map<std::uint16_t, std::pair<std::uint64_t, double>> best;  // id -> (dist, temp)
      for (const trace::TempSample* s : samples_it->second) {
        const std::uint64_t dist = s->tsc > at ? s->tsc - at : at - s->tsc;
        const auto it = best.find(s->sensor_id);
        if (it == best.end() || dist < it->second.first) {
          best[s->sensor_id] = {dist, to_unit(s->temp_c, options_.unit)};
        }
      }
      for (const auto& [sid, dt] : best) per_sensor[sid].add(dt.second);
    }

    for (const auto& [sid, set] : per_sensor) {
      SensorProfile sp;
      sp.sensor_id = sid;
      const auto meta_it = sensor_meta.find({node_id, sid});
      sp.name = meta_it != sensor_meta.end() ? meta_it->second->name
                                             : "sensor" + std::to_string(sid + 1);
      sp.sample_count = set.count();
      sp.stats = set.summarize();
      fn.sensors.push_back(std::move(sp));
    }
    node.functions.push_back(std::move(fn));
  }

  for (auto& [id, node] : nodes) {
    std::sort(node.functions.begin(), node.functions.end(),
              [](const FunctionProfile& a, const FunctionProfile& b) {
                return a.total_time_s > b.total_time_s;
              });
    // Node duration: span of this node's events and samples.
    std::uint64_t lo = UINT64_MAX, hi = 0;
    const auto samples_it = node_samples.find(id);
    if (samples_it != node_samples.end()) {
      for (const trace::TempSample* s : samples_it->second) {
        lo = std::min(lo, s->tsc);
        hi = std::max(hi, s->tsc);
      }
    }
    for (const auto& [key, fi] : timeline) {
      if (key.first != id || fi.merged.empty()) continue;
      lo = std::min(lo, fi.merged.front().begin);
      hi = std::max(hi, fi.merged.back().end);
    }
    node.duration_s = (hi > lo && lo != UINT64_MAX)
                          ? static_cast<double>(hi - lo) / ticks_per_s
                          : 0.0;
    run.nodes.push_back(std::move(node));
  }
  return run;
}

}  // namespace tempest::parser
